//! Pulsed triple decomposition: `push(sample) -> Option<emit>` with the
//! batch decomposition's exact bits.
//!
//! ## Equivalence contract
//!
//! Every emit of [`PulsedTriple::push`] is **bitwise identical** to
//! `ts3_signal::triple_decompose` applied to the same trailing window —
//! asserted across a seeded sweep in `tests/pulse_equivalence.rs`. The
//! contract holds because each pulse *replays* the batch arithmetic on
//! the current window (same ops, same order, same values) while the
//! streaming machinery changes only what batch recomputes per call:
//!
//! * the **CWT plan** (wavelet sampling, filter FFTs, inverse
//!   calibration — the dominant cost at `4*lambda + 2` FFTs per batch
//!   call) is built once in [`PulsedTriple::new`] and reused; the plan
//!   is provably call-invariant (`cwt.rs` asserts warm calls are
//!   byte-identical across plan instances);
//! * window assembly is an O(C) ring push plus two `memcpy`s instead of
//!   per-element tensor reads/writes;
//! * trend/seasonal/gradient land in reused scratch buffers — no tensor
//!   or padding allocation per pulse (see `trend.rs` for why the trend
//!   is replayed rather than carried across pushes).
//!
//! Per push the bookkeeping is O(C); the decomposition work itself runs
//! once per `hop` pushes, so the amortized per-sample cost is
//! `O(lambda * T log T / hop)` with a constant several times smaller
//! than the batch path's — `stream_bench` gates the ratio at >= 5x for
//! `hop = 1`.

use crate::ring::RingWindow;
use crate::trend::trend_seasonal_into;
use ts3_signal::cwt::CwtPlan;
use ts3_signal::decompose::{spectrum_gradient_rows, TripleConfig};
use ts3_signal::spectrum::{accumulate_channel_amplitude, dominant_period_from_spectrum};
use ts3_tensor::Tensor;

/// Configuration of a [`PulsedTriple`] stream operator.
#[derive(Debug, Clone)]
pub struct StreamConfig {
    /// Window length `T` each emit decomposes (the model lookback).
    pub window: usize,
    /// Channels per sample row.
    pub channels: usize,
    /// Emit cadence: decompose once every `hop` pushes after warm-up
    /// (`1` = every sample, the equivalence-harness setting).
    pub hop: usize,
    /// The batch decomposition configuration being mirrored.
    pub triple: TripleConfig,
}

impl StreamConfig {
    /// Default streaming setup: emit every push, batch defaults for the
    /// decomposition itself.
    pub fn new(window: usize, channels: usize) -> Self {
        StreamConfig { window, channels, hop: 1, triple: TripleConfig::default() }
    }
}

/// One streaming emit: the full triple decomposition of the trailing
/// window, as flat row-major buffers (shapes in the field docs).
///
/// Layouts match the batch `TripleDecomposition` tensors exactly, so
/// `emit.trend[i * c + ch] == batch.trend.at(&[i, ch])` — bit for bit.
#[derive(Debug, Clone)]
pub struct StreamDecomposition {
    /// The exact input window the emit decomposed, `[T, C]`.
    pub window: Vec<f32>,
    /// Trend part, `[T, C]` (Eq. 1).
    pub trend: Vec<f32>,
    /// Seasonal part `x - trend`, `[T, C]`.
    pub seasonal: Vec<f32>,
    /// Regular part of the seasonal component, `[T, C]` (Eq. 10).
    pub regular: Vec<f32>,
    /// `Delta_1D` fluctuation projected to 1-D, `[T, C]`.
    pub fluctuant_1d: Vec<f32>,
    /// The fluctuant part `Delta_2D`, `[lambda, T, C]` (Eq. 9–10).
    pub fluctuant_2d: Vec<f32>,
    /// TF distribution of the seasonal part, `[lambda, T, C]` (Eq. 8).
    pub tf: Vec<f32>,
    /// The dominant sub-series length `T_f` used for chunking.
    pub t_f: usize,
    /// Total samples pushed into the stream when this emit fired.
    pub samples_seen: u64,
}

impl StreamDecomposition {
    /// The decomposed window as a `[T, C]` tensor (e.g. to feed a
    /// compiled forecast plan).
    pub fn window_tensor(&self, t: usize, c: usize) -> Tensor {
        Tensor::from_vec(self.window.clone(), &[t, c])
    }
}

/// Streaming counterpart of `ts3_signal::triple_decompose`: feed one
/// `[C]` sample row at a time; once `window` rows have been seen, every
/// `hop`-th push emits the decomposition of the trailing window.
pub struct PulsedTriple {
    cfg: StreamConfig,
    plan: CwtPlan,
    ring: RingWindow,
    pushed: u64,
    // Reused scratch: the steady-state pulse allocates only its emitted
    // output buffers.
    win: Vec<f32>,
    trend_buf: Vec<f32>,
    seasonal_buf: Vec<f32>,
    ma_scratch: Vec<f32>,
    mean_amp: Vec<f32>,
    col: Vec<f32>,
    grad: Vec<f32>,
}

impl PulsedTriple {
    /// Build the stream operator, including its one-time CWT plan (the
    /// work batch `triple_decompose` repeats on every call).
    pub fn new(cfg: StreamConfig) -> Self {
        let (t, c) = (cfg.window, cfg.channels);
        assert!(c >= 1, "PulsedTriple: channels must be >= 1");
        assert!(cfg.hop >= 1, "PulsedTriple: hop must be >= 1");
        if cfg.triple.t_f.is_none() {
            assert!(t >= 4, "PulsedTriple: window too short for period detection");
        } else {
            assert!(t >= 2, "PulsedTriple: window must be >= 2");
        }
        let plan = CwtPlan::new(t, cfg.triple.lambda, cfg.triple.wavelet);
        let lambda = cfg.triple.lambda;
        PulsedTriple {
            plan,
            ring: RingWindow::new(t, c),
            pushed: 0,
            win: vec![0.0; t * c],
            trend_buf: vec![0.0; t * c],
            seasonal_buf: vec![0.0; t * c],
            ma_scratch: Vec::new(),
            mean_amp: vec![0.0; t / 2 + 1],
            col: vec![0.0; t],
            grad: vec![0.0; lambda * t],
            cfg,
        }
    }

    /// The stream configuration.
    pub fn config(&self) -> &StreamConfig {
        &self.cfg
    }

    /// True once a full window has been seen (emits are possible).
    pub fn ready(&self) -> bool {
        self.ring.is_full()
    }

    /// Total samples pushed so far.
    pub fn samples_seen(&self) -> u64 {
        self.pushed
    }

    /// Copy the current trailing window (oldest → newest, `[T, C]`)
    /// into a tensor. Returns `None` before the first full window.
    pub fn window_tensor(&self) -> Option<Tensor> {
        if !self.ring.is_full() {
            return None;
        }
        let (t, c) = (self.cfg.window, self.cfg.channels);
        let mut out = vec![0.0; t * c];
        self.ring.copy_into(&mut out);
        Some(Tensor::from_vec(out, &[t, c]))
    }

    /// Append one `[C]` sample row. Returns the decomposition of the
    /// trailing window on emit ticks (first full window, then every
    /// `hop` pushes), `None` otherwise.
    pub fn push(&mut self, row: &[f32]) -> Option<StreamDecomposition> {
        assert_eq!(row.len(), self.cfg.channels, "PulsedTriple::push: row width");
        self.ring.push(row);
        self.pushed += 1;
        ts3_obs::counter_add("stream.push.calls", 1);
        let warm = self.pushed >= self.cfg.window as u64;
        if !warm || (self.pushed - self.cfg.window as u64) % self.cfg.hop as u64 != 0 {
            return None;
        }
        Some(self.pulse())
    }

    /// Decompose the current trailing window. Mirrors the batch
    /// `triple_decompose` step for step; see the module docs for why
    /// this replay is both bitwise-exact and cheaper than the batch
    /// call.
    fn pulse(&mut self) -> StreamDecomposition {
        let (t, c) = (self.cfg.window, self.cfg.channels);
        let lambda = self.cfg.triple.lambda;
        let mut _s = ts3_obs::span("stream.pulse");
        if _s.active() {
            _s.field("t", t);
            _s.field("c", c);
            _s.field("lambda", lambda);
            ts3_obs::counter_add("stream.pulse.calls", 1);
        }
        self.ring.copy_into(&mut self.win);
        // Eq. 1: trend split, replayed bitwise (see trend.rs).
        trend_seasonal_into(
            &self.win,
            t,
            c,
            &self.cfg.triple.trend_kernels,
            &mut self.ma_scratch,
            &mut self.trend_buf,
            &mut self.seasonal_buf,
        );
        // Eq. 2: T_f from the seasonal periodogram, exactly as batch
        // (`dominant_period` is `dominant_period_from_spectrum` over the
        // channel-mean rfft amplitudes, then the same clamp).
        let t_f = match self.cfg.triple.t_f {
            Some(v) => v.clamp(2, t),
            None => {
                self.mean_amp.fill(0.0);
                for ch in 0..c {
                    for i in 0..t {
                        self.col[i] = self.seasonal_buf[i * c + ch];
                    }
                    accumulate_channel_amplitude(&self.col, c, &mut self.mean_amp);
                }
                dominant_period_from_spectrum(&self.mean_amp, t).clamp(2, t)
            }
        };
        // Eq. 8–10 per channel on the warm plan, exactly `sgd_channel`.
        let mut regular = vec![0.0; t * c];
        let mut fluct_1d = vec![0.0; t * c];
        let mut fluct_2d = vec![0.0; lambda * t * c];
        let mut tf_all = vec![0.0; lambda * t * c];
        for ch in 0..c {
            for i in 0..t {
                self.col[i] = self.seasonal_buf[i * c + ch];
            }
            let amp = self.plan.amplitude(&self.col);
            spectrum_gradient_rows(&amp, lambda, t, t_f, &mut self.grad);
            let delta_1d = self.plan.inverse(&self.grad);
            for li in 0..lambda {
                for i in 0..t {
                    tf_all[(li * t + i) * c + ch] = amp[li * t + i];
                    fluct_2d[(li * t + i) * c + ch] = self.grad[li * t + i];
                }
            }
            for i in 0..t {
                fluct_1d[i * c + ch] = delta_1d[i];
                regular[i * c + ch] = self.col[i] - delta_1d[i];
            }
        }
        StreamDecomposition {
            window: self.win.clone(),
            trend: self.trend_buf.clone(),
            seasonal: self.seasonal_buf.clone(),
            regular,
            fluctuant_1d: fluct_1d,
            fluctuant_2d: fluct_2d,
            tf: tf_all,
            t_f,
            samples_seen: self.pushed,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn warmup_then_hop_cadence() {
        let mut cfg = StreamConfig::new(8, 1);
        cfg.hop = 3;
        cfg.triple.lambda = 2;
        let mut p = PulsedTriple::new(cfg);
        let mut emits = Vec::new();
        for i in 0..20u64 {
            let out = p.push(&[(i as f32 * 0.7).sin()]);
            if out.is_some() {
                emits.push(i + 1); // 1-based push count
            }
        }
        // First emit at the full window, then every `hop`.
        assert_eq!(emits, vec![8, 11, 14, 17, 20]);
        assert!(p.ready());
        assert_eq!(p.samples_seen(), 20);
    }

    #[test]
    fn emit_window_is_the_trailing_window() {
        let cfg = StreamConfig { window: 6, channels: 2, hop: 1, triple: TripleConfig { lambda: 2, t_f: Some(3), ..Default::default() } };
        let mut p = PulsedTriple::new(cfg);
        let mut last = None;
        for i in 0..10 {
            let row = [i as f32, 100.0 + i as f32];
            if let Some(e) = p.push(&row) {
                last = Some(e);
            }
        }
        let e = last.expect("stream emitted");
        assert_eq!(e.samples_seen, 10);
        let expect: Vec<f32> =
            (4..10).flat_map(|i| [i as f32, 100.0 + i as f32]).collect();
        assert_eq!(e.window, expect);
        assert_eq!(p.window_tensor().expect("warm").as_slice(), &expect[..]);
    }

    #[test]
    fn reconstruction_is_close() {
        // trend + regular + fluctuant_1d ~= window (exact split of the
        // seasonal part up to inverse-CWT calibration error, as batch).
        let cfg = StreamConfig { window: 48, channels: 1, hop: 1, triple: TripleConfig { lambda: 8, ..Default::default() } };
        let mut p = PulsedTriple::new(cfg);
        let mut last = None;
        for i in 0..60 {
            let v = (2.0 * std::f32::consts::PI * i as f32 / 12.0).sin() + 0.02 * i as f32;
            if let Some(e) = p.push(&[v]) {
                last = Some(e);
            }
        }
        let e = last.expect("stream emitted");
        for i in 0..48 {
            let rec = e.trend[i] + e.regular[i] + e.fluctuant_1d[i];
            assert!((rec - e.window[i]).abs() < 1e-3, "idx {i}: {rec} vs {}", e.window[i]);
        }
    }
}
