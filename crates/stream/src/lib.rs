//! # ts3-stream
//!
//! Streaming ("pulsed") counterparts of the batch triple decomposition
//! for online forecasting: instead of recomputing trend, periodogram
//! and CWT from scratch for every trailing window (O(window) redundant
//! work per arriving sample), a per-stream operator keeps ring-buffered
//! state and emits decompositions on a configurable pulse cadence.
//!
//! * [`ring`] — fixed-capacity `[T, C]` ring buffer; O(C) push, no
//!   allocation in steady state;
//! * [`trend`] — rolling-sum trend split on a flat window, bitwise
//!   equal to `ts3_signal::trend_decompose`;
//! * [`sdft`] — sliding-DFT periodogram monitor feeding the batch
//!   top-k period selection, exact at resync ticks;
//! * [`pulse`] — [`PulsedTriple`]: `push(sample) -> Option<emit>` where
//!   every emit is **bitwise identical** to
//!   `ts3_signal::triple_decompose` on the same trailing window
//!   (asserted by `tests/pulse_equivalence.rs` across windows, kernel
//!   sets, lambda, channel counts, `T_f` modes and thread caps).
//!
//! The speedup over recompute-from-scratch comes from hoisting the
//! per-call CWT plan construction (wavelet sampling, filter FFTs,
//! inverse calibration), eliminating tensor packaging, and O(C)
//! window maintenance; `stream_bench` measures and `scripts/verify.sh`
//! gates it.
//!
//! ```
//! use ts3_stream::{PulsedTriple, StreamConfig};
//!
//! let mut cfg = StreamConfig::new(48, 1);
//! cfg.triple.lambda = 4;
//! let mut stream = PulsedTriple::new(cfg);
//! let mut emits = 0;
//! for i in 0..96 {
//!     let sample = (i as f32 / 12.0).sin();
//!     if let Some(d) = stream.push(&[sample]) {
//!         assert_eq!(d.trend.len(), 48);
//!         emits += 1;
//!     }
//! }
//! assert_eq!(emits, 96 - 48 + 1); // one emit per push once warm
//! ```

pub mod pulse;
pub mod ring;
pub mod sdft;
pub mod trend;

pub use pulse::{PulsedTriple, StreamConfig, StreamDecomposition};
pub use ring::RingWindow;
pub use sdft::SlidingDft;
pub use trend::{moving_avg_same_into, trend_seasonal_into};
