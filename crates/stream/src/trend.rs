//! Rolling-sum trend split on a flat window, bitwise equal to the batch
//! `ts3_signal::trend_decompose`.
//!
//! ## Why this replays the window instead of carrying sums across pushes
//!
//! The batch trend extractor is `AvgPool(ReplicatePad(X))` (paper
//! Eq. 1): the pad replicates the window's *current* first and last
//! rows, so the averages near both edges depend on which samples happen
//! to sit at the window boundary. When the window slides by one, those
//! padded lanes change wholesale — there is no per-sample state that
//! can be carried forward and still reproduce the batch output bit for
//! bit (the batch kernel also folds each lane through one running `f64`
//! accumulator whose rounding history starts at the window's first
//! sample). So the streaming path *replays* the identical rolling-sum
//! recurrence over the current window on every pulse: same `f64`
//! adds/subtracts in the same order on the same values, hence the same
//! bits — see `moving_avg_same` in `ts3-tensor` (`conv.rs`), whose
//! arithmetic this mirrors exactly. The replay is still O(T·C) per
//! kernel (rolling sum, not O(T·C·k) naive windowing) and, unlike the
//! batch path, performs no tensor or padding allocations: everything
//! lands in caller-provided scratch.

/// One replicate-padded moving average along the time axis of a flat
/// `[t, c]` window, written into `out`. Bitwise equal to
/// `ts3_tensor::moving_avg_same(x, 0, k)` on the same window.
pub fn moving_avg_same_into(window: &[f32], t: usize, c: usize, k: usize, out: &mut [f32]) {
    assert!(k >= 1, "moving_avg_same_into: window must be >= 1");
    assert!(t >= 1, "moving_avg_same_into: empty time axis");
    assert_eq!(window.len(), t * c, "moving_avg_same_into: window length");
    assert_eq!(out.len(), t * c, "moving_avg_same_into: out length");
    if k == 1 {
        out.copy_from_slice(window);
        return;
    }
    let before = (k - 1) / 2;
    // Replicate-padded row `p` of the `[t + k - 1, c]` padded axis reads
    // source row clamp(p - before, 0, t - 1) — without materializing it.
    let pad_row = |p: usize| -> usize {
        if p < before {
            0
        } else {
            (p - before).min(t - 1)
        }
    };
    for ch in 0..c {
        let mut acc = 0.0f64;
        for p in 0..k {
            acc += window[pad_row(p) * c + ch] as f64;
        }
        out[ch] = (acc / k as f64) as f32;
        for row in 1..t {
            acc += window[pad_row(row + k - 1) * c + ch] as f64;
            acc -= window[pad_row(row - 1) * c + ch] as f64;
            out[row * c + ch] = (acc / k as f64) as f32;
        }
    }
}

/// Trend split of a flat `[t, c]` window (paper Eq. 1), bitwise equal to
/// `ts3_signal::trend_decompose` on the same data: the trend is the mean
/// of one moving average per kernel, the seasonal part is the
/// elementwise remainder. `scratch` is resized as needed and reused
/// across calls so the steady-state pulse path allocates nothing.
pub fn trend_seasonal_into(
    window: &[f32],
    t: usize,
    c: usize,
    kernels: &[usize],
    scratch: &mut Vec<f32>,
    trend: &mut [f32],
    seasonal: &mut [f32],
) {
    assert!(!kernels.is_empty(), "trend_seasonal_into needs at least one kernel");
    assert_eq!(window.len(), t * c, "trend_seasonal_into: window length");
    assert_eq!(trend.len(), t * c, "trend_seasonal_into: trend length");
    assert_eq!(seasonal.len(), t * c, "trend_seasonal_into: seasonal length");
    scratch.resize(t * c, 0.0);
    trend.fill(0.0);
    // Accumulate kernels in order, then divide — matching the batch
    // add_assign / div_scalar sequence (f32 `+=` then `/`).
    for &k in kernels {
        moving_avg_same_into(window, t, c, k, scratch);
        for (dst, &m) in trend.iter_mut().zip(scratch.iter()) {
            *dst += m;
        }
    }
    let inv = kernels.len() as f32;
    for v in trend.iter_mut() {
        *v /= inv;
    }
    for ((s, &x), &tr) in seasonal.iter_mut().zip(window).zip(trend.iter()) {
        *s = x - tr;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ts3_signal::trend_decompose;
    use ts3_tensor::{moving_avg_same, Tensor};

    fn window(t: usize, c: usize) -> Vec<f32> {
        (0..t * c)
            .map(|i| ((i as f32) * 0.37).sin() + 0.01 * i as f32)
            .collect()
    }

    #[test]
    fn moving_avg_matches_tensor_kernel_bitwise() {
        for &(t, c) in &[(8usize, 1usize), (32, 3), (96, 2), (5, 4)] {
            let w = window(t, c);
            let x = Tensor::from_vec(w.clone(), &[t, c]);
            for k in [1usize, 2, 3, 13, 17, 25] {
                let mut out = vec![0.0; t * c];
                moving_avg_same_into(&w, t, c, k, &mut out);
                let reference = moving_avg_same(&x, 0, k);
                for (i, (&a, &b)) in out.iter().zip(reference.as_slice()).enumerate() {
                    assert_eq!(
                        a.to_bits(),
                        b.to_bits(),
                        "t={t} c={c} k={k} idx={i}: {a} vs {b}"
                    );
                }
            }
        }
    }

    #[test]
    fn trend_split_matches_batch_bitwise() {
        let (t, c) = (96, 2);
        let w = window(t, c);
        let x = Tensor::from_vec(w.clone(), &[t, c]);
        let kernels = [13usize, 17, 25];
        let (bt, bs) = trend_decompose(&x, &kernels);
        let mut scratch = Vec::new();
        let mut trend = vec![0.0; t * c];
        let mut seasonal = vec![0.0; t * c];
        trend_seasonal_into(&w, t, c, &kernels, &mut scratch, &mut trend, &mut seasonal);
        for i in 0..t * c {
            assert_eq!(trend[i].to_bits(), bt.as_slice()[i].to_bits(), "trend idx {i}");
            assert_eq!(seasonal[i].to_bits(), bs.as_slice()[i].to_bits(), "seasonal idx {i}");
        }
    }
}
