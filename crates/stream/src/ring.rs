//! Fixed-capacity ring buffer over multichannel sample rows.
//!
//! The ring is the per-stream state everything else in this crate hangs
//! off: one `[capacity, channels]` block of `f32`s written in place, so
//! a `push` is O(channels) with no allocation and no shifting. Readers
//! linearize the logical window (oldest → newest) on demand, which is a
//! straight two-`memcpy` operation.

/// Fixed-capacity sliding window over `[T, C]` rows, stored as a ring.
#[derive(Debug, Clone)]
pub struct RingWindow {
    /// Backing storage, `capacity * channels`, physical row-major.
    buf: Vec<f32>,
    capacity: usize,
    channels: usize,
    /// Physical index of the next row to write.
    head: usize,
    /// Number of valid rows (saturates at `capacity`).
    len: usize,
}

impl RingWindow {
    /// Empty ring holding up to `capacity` rows of `channels` values.
    pub fn new(capacity: usize, channels: usize) -> Self {
        assert!(capacity >= 1, "RingWindow: capacity must be >= 1");
        assert!(channels >= 1, "RingWindow: channels must be >= 1");
        RingWindow {
            buf: vec![0.0; capacity * channels],
            capacity,
            channels,
            head: 0,
            len: 0,
        }
    }

    /// Number of valid rows currently held.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no rows have been pushed yet.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// True once `capacity` rows have been pushed (steady state).
    pub fn is_full(&self) -> bool {
        self.len == self.capacity
    }

    /// Maximum number of rows held (the window length `T`).
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Values per row (the channel count `C`).
    pub fn channels(&self) -> usize {
        self.channels
    }

    /// The oldest row still in the window, if any.
    pub fn oldest(&self) -> Option<&[f32]> {
        if self.len == 0 {
            return None;
        }
        let phys = if self.is_full() { self.head } else { 0 };
        Some(&self.buf[phys * self.channels..(phys + 1) * self.channels])
    }

    /// Logical row `i` (0 = oldest). Panics when `i >= len()`.
    pub fn row(&self, i: usize) -> &[f32] {
        assert!(i < self.len, "RingWindow::row: index {i} out of {}", self.len);
        let start = if self.is_full() { self.head } else { 0 };
        let phys = (start + i) % self.capacity;
        &self.buf[phys * self.channels..(phys + 1) * self.channels]
    }

    /// Append one row, evicting the oldest once full. O(channels).
    pub fn push(&mut self, row: &[f32]) {
        assert_eq!(row.len(), self.channels, "RingWindow::push: row width");
        let dst = &mut self.buf[self.head * self.channels..(self.head + 1) * self.channels];
        dst.copy_from_slice(row);
        self.head = (self.head + 1) % self.capacity;
        if self.len < self.capacity {
            self.len += 1;
        }
    }

    /// Copy the full logical window (oldest → newest, `[T, C]` row-major)
    /// into `out`. Panics unless the ring is full and `out` has exactly
    /// `capacity * channels` elements.
    pub fn copy_into(&self, out: &mut [f32]) {
        assert!(self.is_full(), "RingWindow::copy_into: window not full yet");
        assert_eq!(out.len(), self.capacity * self.channels, "RingWindow::copy_into: out length");
        let c = self.channels;
        let split = self.head * c;
        let tail_len = self.buf.len() - split;
        out[..tail_len].copy_from_slice(&self.buf[split..]);
        out[tail_len..].copy_from_slice(&self.buf[..split]);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fills_then_slides() {
        let mut r = RingWindow::new(3, 2);
        assert!(r.is_empty());
        r.push(&[1.0, 10.0]);
        r.push(&[2.0, 20.0]);
        assert_eq!(r.len(), 2);
        assert!(!r.is_full());
        assert_eq!(r.oldest(), Some(&[1.0, 10.0][..]));
        r.push(&[3.0, 30.0]);
        assert!(r.is_full());
        r.push(&[4.0, 40.0]); // evicts [1, 10]
        assert_eq!(r.oldest(), Some(&[2.0, 20.0][..]));
        assert_eq!(r.row(2), &[4.0, 40.0]);
        let mut out = vec![0.0; 6];
        r.copy_into(&mut out);
        assert_eq!(out, vec![2.0, 20.0, 3.0, 30.0, 4.0, 40.0]);
    }

    #[test]
    fn copy_matches_rows_after_many_wraps() {
        let mut r = RingWindow::new(5, 1);
        for i in 0..23 {
            r.push(&[i as f32]);
        }
        let mut out = vec![0.0; 5];
        r.copy_into(&mut out);
        assert_eq!(out, vec![18.0, 19.0, 20.0, 21.0, 22.0]);
        for i in 0..5 {
            assert_eq!(r.row(i)[0], out[i]);
        }
    }

    #[test]
    #[should_panic(expected = "window not full")]
    fn copy_before_full_panics() {
        let r = RingWindow::new(4, 1);
        let mut out = vec![0.0; 4];
        r.copy_into(&mut out);
    }
}
