//! Sliding-DFT periodogram: an incrementally maintained channel-mean
//! amplitude spectrum feeding the same top-k period selection as the
//! batch path (`ts3_signal::topk_periods_from_spectrum`).
//!
//! Each `push` rotates every tracked bin by one sample —
//! `X'_f = (X_f - x_old + x_new) * e^{+2*pi*i*f/T}` — which is O(1) per
//! bin (O(T/2) for the full periodogram) instead of the O(T log T) FFT
//! the batch path pays per window. Bins are accumulated in `f64`, and
//! the monitor re-synchronizes against an exact `rfft` of its ring every
//! `resync_every` pushes, so rotation round-off cannot drift unbounded:
//! *at* a resync the spectrum is bitwise identical to the batch
//! periodogram of the same window, and between resyncs it is a
//! tight approximation (see the drift test below).
//!
//! This is deliberately a *monitor*, not part of the bitwise pulse
//! path: `PulsedTriple` re-derives `T_f` exactly per emit, while the
//! sliding DFT gives cheap per-sample visibility (period-drift
//! detection in `ts3-serve`'s online mode) without an FFT per sample.

use crate::ring::RingWindow;
use ts3_signal::fft::rfft_half;
use ts3_signal::spectrum::{
    dominant_period_from_spectrum, topk_periods_from_spectrum, PeriodComponent,
};

/// Incrementally maintained periodogram of the last `t` samples of a
/// `c`-channel stream.
#[derive(Debug, Clone)]
pub struct SlidingDft {
    t: usize,
    c: usize,
    half: usize,
    /// Bin accumulators, channel-major `[c, half + 1]`, `f64` to keep
    /// per-push rotation round-off far below `f32` resolution.
    bins_re: Vec<f64>,
    bins_im: Vec<f64>,
    /// Per-frequency rotation `e^{+2*pi*i*f/t}`.
    tw_re: Vec<f64>,
    tw_im: Vec<f64>,
    ring: RingWindow,
    pushes: u64,
    resync_every: u64,
}

impl SlidingDft {
    /// Monitor over a `[t, c]` window, re-synchronized against an exact
    /// FFT once per full window turnover (`resync_every = t`).
    pub fn new(t: usize, c: usize) -> Self {
        Self::with_resync(t, c, t as u64)
    }

    /// Monitor with an explicit resync cadence; `resync_every = 0`
    /// disables resyncs (pure rotation, useful for drift measurement).
    pub fn with_resync(t: usize, c: usize, resync_every: u64) -> Self {
        assert!(t >= 4, "SlidingDft: window too short for period detection");
        assert!(c >= 1, "SlidingDft: channels must be >= 1");
        let half = t / 2;
        let nbins = half + 1;
        let mut tw_re = Vec::with_capacity(nbins);
        let mut tw_im = Vec::with_capacity(nbins);
        for f in 0..nbins {
            let theta = 2.0 * std::f64::consts::PI * f as f64 / t as f64;
            tw_re.push(theta.cos());
            tw_im.push(theta.sin());
        }
        SlidingDft {
            t,
            c,
            half,
            bins_re: vec![0.0; c * nbins],
            bins_im: vec![0.0; c * nbins],
            tw_re,
            tw_im,
            ring: RingWindow::new(t, c),
            pushes: 0,
            resync_every,
        }
    }

    /// Window length `T`.
    pub fn window(&self) -> usize {
        self.t
    }

    /// True once a full window has been seen.
    pub fn ready(&self) -> bool {
        self.ring.is_full()
    }

    /// Total samples pushed.
    pub fn samples_seen(&self) -> u64 {
        self.pushes
    }

    /// Slide the window by one multichannel row. O(c * t/2).
    pub fn push(&mut self, row: &[f32]) {
        assert_eq!(row.len(), self.c, "SlidingDft::push: row width");
        let nbins = self.half + 1;
        for ch in 0..self.c {
            // Before the window is full the logical window is
            // zero-padded at the old end, so the evicted value is 0.
            let old = if self.ring.is_full() {
                // ts3-lint: allow(no-unwrap-in-lib) is_full implies a non-empty ring
                self.ring.oldest().unwrap()[ch] as f64
            } else {
                0.0
            };
            let delta = row[ch] as f64 - old;
            let (re, im) = (
                &mut self.bins_re[ch * nbins..(ch + 1) * nbins],
                &mut self.bins_im[ch * nbins..(ch + 1) * nbins],
            );
            for f in 0..nbins {
                let r = re[f] + delta;
                let i = im[f];
                re[f] = r * self.tw_re[f] - i * self.tw_im[f];
                im[f] = r * self.tw_im[f] + i * self.tw_re[f];
            }
        }
        self.ring.push(row);
        self.pushes += 1;
        ts3_obs::counter_add("stream.sdft.pushes", 1);
        if self.ring.is_full() && self.resync_every > 0 && self.pushes % self.resync_every == 0 {
            self.resync();
        }
    }

    /// Replace every bin with the exact `rfft` of the ring contents,
    /// discarding accumulated rotation round-off. Called automatically
    /// on the `resync_every` cadence once the window is full.
    pub fn resync(&mut self) {
        assert!(self.ring.is_full(), "SlidingDft::resync: window not full yet");
        ts3_obs::counter_add("stream.sdft.resyncs", 1);
        let nbins = self.half + 1;
        let mut col = vec![0.0f32; self.t];
        for ch in 0..self.c {
            for i in 0..self.t {
                col[i] = self.ring.row(i)[ch];
            }
            let spec = rfft_half(&col);
            for f in 0..nbins {
                self.bins_re[ch * nbins + f] = spec[f].re as f64;
                self.bins_im[ch * nbins + f] = spec[f].im as f64;
            }
        }
    }

    /// Channel-mean amplitude spectrum (bins `0..=t/2`), in the exact
    /// accumulation order of `ts3_signal::mean_amplitude_spectrum` —
    /// bitwise equal to it at a resync tick, approximate in between.
    pub fn mean_amplitude(&self) -> Vec<f32> {
        let nbins = self.half + 1;
        let mut amp = vec![0.0f32; nbins];
        for ch in 0..self.c {
            for f in 0..nbins {
                let re = self.bins_re[ch * nbins + f] as f32;
                let im = self.bins_im[ch * nbins + f] as f32;
                amp[f] += re.hypot(im) / self.c as f32;
            }
        }
        amp
    }

    /// Top-k periods of the monitored spectrum (batch tie-break rules;
    /// see `topk_periods_from_spectrum`). Panics before the first full
    /// window.
    pub fn topk(&self, k: usize) -> Vec<PeriodComponent> {
        assert!(self.ready(), "SlidingDft::topk: window not full yet");
        topk_periods_from_spectrum(&self.mean_amplitude(), self.t, k)
    }

    /// Dominant period of the monitored spectrum (batch fallback rules).
    /// Panics before the first full window.
    pub fn dominant_period(&self) -> usize {
        assert!(self.ready(), "SlidingDft::dominant_period: window not full yet");
        dominant_period_from_spectrum(&self.mean_amplitude(), self.t)
    }

    /// Period-drift check: `Some(observed)` when the window is full and
    /// the monitor's dominant period disagrees with `expected` (the
    /// exact `T_f` of the matching pulse), `None` otherwise. A detected
    /// drift bumps the `stream.sdft.drift_alerts` counter; callers
    /// (the online serving loop) feed it to the flight recorder.
    pub fn drift_against(&self, expected: usize) -> Option<usize> {
        if !self.ready() {
            return None;
        }
        let observed = self.dominant_period();
        if observed == expected {
            return None;
        }
        ts3_obs::counter_add("stream.sdft.drift_alerts", 1);
        Some(observed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ts3_signal::spectrum::mean_amplitude_spectrum;
    use ts3_tensor::Tensor;

    fn series(n: usize, c: usize, f: impl Fn(usize, usize) -> f32) -> Vec<Vec<f32>> {
        (0..n).map(|i| (0..c).map(|ch| f(i, ch)).collect()).collect()
    }

    fn batch_spectrum(rows: &[Vec<f32>], t: usize, c: usize) -> Vec<f32> {
        let tail = &rows[rows.len() - t..];
        let flat: Vec<f32> = tail.iter().flatten().copied().collect();
        mean_amplitude_spectrum(&Tensor::from_vec(flat, &[t, c]))
    }

    #[test]
    fn resync_tick_is_bitwise_equal_to_batch_periodogram() {
        let (t, c) = (48, 2);
        let rows = series(3 * t, c, |i, ch| {
            (2.0 * std::f32::consts::PI * i as f32 / 12.0).sin() + 0.3 * ch as f32
        });
        let mut s = SlidingDft::new(t, c); // resync every t pushes
        for (n, row) in rows.iter().enumerate() {
            s.push(row);
            let pushes = n as u64 + 1;
            if s.ready() && pushes % t as u64 == 0 {
                let batch = batch_spectrum(&rows[..n + 1], t, c);
                let stream = s.mean_amplitude();
                for (f, (&a, &b)) in stream.iter().zip(&batch).enumerate() {
                    assert_eq!(a.to_bits(), b.to_bits(), "bin {f} at push {pushes}");
                }
            }
        }
    }

    #[test]
    fn rotation_drift_stays_small_without_resync() {
        let (t, c) = (64, 1);
        let rows = series(6 * t, c, |i, _| {
            (2.0 * std::f32::consts::PI * i as f32 / 16.0).sin()
                + 0.5 * (2.0 * std::f32::consts::PI * i as f32 / 5.0).cos()
        });
        let mut s = SlidingDft::with_resync(t, c, 0); // never resync
        for row in &rows {
            s.push(row);
        }
        let batch = batch_spectrum(&rows, t, c);
        let stream = s.mean_amplitude();
        let scale: f32 = batch.iter().fold(0.0f32, |m, &v| m.max(v)).max(1e-6);
        for (f, (&a, &b)) in stream.iter().zip(&batch).enumerate() {
            assert!(
                (a - b).abs() <= 1e-3 * scale,
                "bin {f} drifted: stream {a} vs batch {b}"
            );
        }
    }

    #[test]
    fn tracks_dominant_period_through_a_regime_change() {
        let (t, c) = (48, 1);
        let mut s = SlidingDft::new(t, c);
        for i in 0..2 * t {
            s.push(&[(2.0 * std::f32::consts::PI * i as f32 / 12.0).sin()]);
        }
        assert_eq!(s.dominant_period(), 12);
        // Switch frequency; after a full turnover the monitor follows.
        for i in 0..2 * t {
            s.push(&[(2.0 * std::f32::consts::PI * i as f32 / 6.0).sin()]);
        }
        assert_eq!(s.dominant_period(), 6);
    }

    #[test]
    fn topk_matches_batch_selection_at_resync() {
        let (t, c) = (96, 1);
        let rows = series(2 * t, c, |i, _| {
            2.0 * (2.0 * std::f32::consts::PI * i as f32 / 24.0).sin()
                + (2.0 * std::f32::consts::PI * i as f32 / 8.0).sin()
        });
        let mut s = SlidingDft::new(t, c);
        for row in &rows {
            s.push(row);
        }
        // 2t pushes = exact resync tick; selection must agree bitwise.
        let batch = topk_periods_from_spectrum(&batch_spectrum(&rows, t, c), t, 2);
        let stream = s.topk(2);
        assert_eq!(stream.len(), 2);
        for (a, b) in stream.iter().zip(&batch) {
            assert_eq!(a.frequency, b.frequency);
            assert_eq!(a.period, b.period);
            assert_eq!(a.amplitude.to_bits(), b.amplitude.to_bits());
        }
        assert_eq!(stream[0].period, 24);
    }
}
