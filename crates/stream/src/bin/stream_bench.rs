//! Streaming-vs-batch per-sample decomposition benchmark.
//!
//!   stream_bench [--smoke] [--out-dir DIR]
//!
//! For each `(window, channels)` configuration the benchmark drives the
//! same seeded series through two per-sample paths:
//!
//! * **stream** — one warm [`PulsedTriple`]: `push(row)` emits the
//!   decomposition of the trailing window on every push (hop = 1);
//! * **batch**  — recompute-from-scratch: assemble the trailing window
//!   into a tensor and call `triple_decompose`, exactly what a server
//!   without streaming state pays per arriving sample.
//!
//! Both produce bitwise-identical decompositions (asserted here on the
//! final sample as a sanity check; the full sweep lives in
//! `tests/pulse_equivalence.rs`), so the ratio is a pure like-for-like
//! cost comparison. The run **fails** (exit 1) when the batch/stream
//! median ratio on the 96-step window drops below 5x — the streaming
//! path's reason to exist is hoisting the per-call CWT plan build and
//! tensor packaging, and losing that shows up as an order-of-magnitude
//! shift, not noise.
//!
//! Emits `ts3.bench.v1` JSON (BENCH_stream_smoke.json in smoke mode,
//! BENCH_stream.json otherwise) with `stream_push/wTcC` and
//! `batch_window/wTcC` rows for the `bench_compare` regression gate.
//! This binary measures wall time and is on the `ts3-lint` wallclock
//! allowlist; library code stays tick-based.

use std::path::PathBuf;
use std::time::Instant;
use ts3_json::Json;
use ts3_rng::rngs::StdRng;
use ts3_rng::{Rng, SeedableRng};
use ts3_signal::decompose::{triple_decompose, TripleConfig};
use ts3_stream::{PulsedTriple, StreamConfig};
use ts3_tensor::Tensor;

struct Case {
    window: usize,
    channels: usize,
    /// Timed samples per path (plus warm-up).
    iters: usize,
}

struct Row {
    op: String,
    shape: String,
    median_ns: u64,
    p25_ns: u64,
    p75_ns: u64,
    min_ns: u64,
    iters: u64,
}

fn summarize(op: &str, shape: &str, samples: &mut Vec<u64>) -> Row {
    samples.sort_unstable();
    let pct = |q: f64| -> u64 {
        let idx = ((samples.len() - 1) as f64 * q).round() as usize;
        samples[idx.min(samples.len() - 1)]
    };
    Row {
        op: op.to_string(),
        shape: shape.to_string(),
        median_ns: pct(0.50),
        p25_ns: pct(0.25),
        p75_ns: pct(0.75),
        min_ns: samples[0],
        iters: samples.len() as u64,
    }
}

fn write_bench_json(path: &PathBuf, rows: &[Row]) {
    let entries: Json = rows
        .iter()
        .map(|r| {
            Json::obj([
                ("op", Json::from(r.op.as_str())),
                ("shape", Json::from(r.shape.as_str())),
                ("median_ns", Json::Num(r.median_ns as f64)),
                ("p25_ns", Json::Num(r.p25_ns as f64)),
                ("p75_ns", Json::Num(r.p75_ns as f64)),
                ("min_ns", Json::Num(r.min_ns as f64)),
                ("iters", Json::Num(r.iters as f64)),
            ])
        })
        .collect();
    let doc = Json::obj([
        ("schema", Json::from("ts3.bench.v1")),
        ("threads", Json::Num(ts3_tensor::par::max_threads() as f64)),
        ("entries", entries),
    ]);
    std::fs::write(path, doc.to_string_pretty()).expect("cannot write bench JSON");
}

/// Seeded sample row: a drifting two-tone mix plus noise, matching the
/// flavor of the serve/sim drivers.
fn sample_row(rng: &mut StdRng, i: usize, channels: usize) -> Vec<f32> {
    (0..channels)
        .map(|ch| {
            let ti = i as f32;
            let phase = std::f32::consts::TAU * ti / 24.0 + ch as f32;
            let noise: f32 = rng.gen::<f32>() - 0.5;
            0.01 * ti + phase.sin() + 0.3 * (std::f32::consts::TAU * ti / 7.0).cos() + 0.1 * noise
        })
        .collect()
}

/// Median per-push ns of the warm streaming path, plus its final emit
/// for the bitwise cross-check.
fn run_stream(case: &Case, cfg: &TripleConfig) -> (Vec<u64>, ts3_stream::StreamDecomposition) {
    let mut rng = StdRng::seed_from_u64(7);
    let mut stream = PulsedTriple::new(StreamConfig {
        window: case.window,
        channels: case.channels,
        hop: 1,
        triple: cfg.clone(),
    });
    let warmup = case.window + 8;
    let mut i = 0usize;
    let mut last = None;
    for _ in 0..warmup {
        if let Some(d) = stream.push(&sample_row(&mut rng, i, case.channels)) {
            last = Some(d);
        }
        i += 1;
    }
    let mut out = Vec::with_capacity(case.iters);
    for _ in 0..case.iters {
        let row = sample_row(&mut rng, i, case.channels);
        let start = Instant::now();
        let emit = stream.push(&row);
        out.push(start.elapsed().as_nanos() as u64);
        if let Some(d) = emit {
            last = Some(d);
        }
        i += 1;
    }
    (out, last.expect("stream never emitted"))
}

/// Median per-sample ns of the recompute-from-scratch path on the same
/// series: per arriving sample, pack the trailing window and run the
/// full batch `triple_decompose`.
fn run_batch(
    case: &Case,
    cfg: &TripleConfig,
    iters: usize,
) -> (Vec<u64>, ts3_signal::TripleDecomposition) {
    let mut rng = StdRng::seed_from_u64(7);
    let (t, c) = (case.window, case.channels);
    let mut history: Vec<f32> = Vec::new();
    let mut i = 0usize;
    let warmup = t + 8;
    for _ in 0..warmup {
        history.extend_from_slice(&sample_row(&mut rng, i, c));
        i += 1;
    }
    let mut out = Vec::with_capacity(iters);
    let mut last = None;
    // Match run_stream's sample stream exactly: the timed region covers
    // window assembly + decomposition, i.e. what push() replaces.
    for k in 0..case.iters {
        let row = sample_row(&mut rng, i, c);
        history.extend_from_slice(&row);
        i += 1;
        if k >= case.iters - iters {
            let start = Instant::now();
            let tail = &history[history.len() - t * c..];
            let x = Tensor::from_vec(tail.to_vec(), &[t, c]);
            let d = triple_decompose(&x, cfg);
            out.push(start.elapsed().as_nanos() as u64);
            last = Some(d);
        }
    }
    (out, last.expect("batch never ran"))
}

fn main() {
    let mut smoke = false;
    let mut out_dir = PathBuf::from("results");
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--smoke" => smoke = true,
            "--out-dir" => {
                out_dir = PathBuf::from(args.next().expect("--out-dir needs an argument"));
            }
            other => {
                eprintln!("usage: stream_bench [--smoke] [--out-dir DIR] (got {other})");
                std::process::exit(2);
            }
        }
    }
    if let Ok(threads) = std::env::var("TS3_THREADS") {
        if let Ok(n) = threads.parse::<usize>() {
            ts3_tensor::par::set_max_threads(n);
        }
    }
    std::fs::create_dir_all(&out_dir).expect("cannot create --out-dir");

    // The paper's serving window is 96 steps; lambda 16 is the scaled
    // profile used across the repo's tests.
    let cfg = TripleConfig::default();
    let cases: Vec<Case> = if smoke {
        vec![Case { window: 96, channels: 1, iters: 24 }]
    } else {
        vec![
            Case { window: 96, channels: 1, iters: 120 },
            Case { window: 96, channels: 3, iters: 60 },
            Case { window: 192, channels: 1, iters: 60 },
        ]
    };

    let mut rows = Vec::new();
    let mut gate_failed = false;
    println!("== stream_bench (hop=1: one decomposition per arriving sample) ==");
    for case in &cases {
        let shape = format!("w{}c{}", case.window, case.channels);
        // Batch is ~an order of magnitude slower per sample; time fewer
        // iterations of it to keep smoke runs short.
        let batch_iters = (case.iters / 4).max(8);
        let (mut stream_ns, se) = run_stream(case, &cfg);
        let (mut batch_ns, be) = run_batch(case, &cfg, batch_iters);

        // Sanity: the two paths really computed the same thing (full
        // sweep in tests/pulse_equivalence.rs).
        assert_eq!(se.t_f, be.t_f, "{shape}: t_f diverged");
        for (i, (a, b)) in se.regular.iter().zip(be.regular.as_slice()).enumerate() {
            assert_eq!(a.to_bits(), b.to_bits(), "{shape}: regular[{i}] diverged");
        }

        let s_row = summarize("stream_push", &shape, &mut stream_ns);
        let b_row = summarize("batch_window", &shape, &mut batch_ns);
        let ratio = b_row.median_ns as f64 / s_row.median_ns.max(1) as f64;
        println!(
            "{shape:<8} stream {:>9} ns/sample   batch {:>9} ns/sample   ratio {ratio:.1}x",
            s_row.median_ns, b_row.median_ns
        );
        // The acceptance gate: streaming must beat recompute-from-
        // scratch by >= 5x on the 96-step window.
        if case.window == 96 && ratio < 5.0 {
            eprintln!("stream_bench: FAIL — {shape} ratio {ratio:.1}x is below the 5x gate");
            gate_failed = true;
        }
        rows.push(s_row);
        rows.push(b_row);
    }

    let name = if smoke { "BENCH_stream_smoke.json" } else { "BENCH_stream.json" };
    let path = out_dir.join(name);
    write_bench_json(&path, &rows);
    println!("stream_bench: wrote {}", path.display());
    if gate_failed {
        std::process::exit(1);
    }
}
