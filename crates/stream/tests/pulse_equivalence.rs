//! Batch-vs-streaming equivalence harness — the contract that makes
//! `ts3-stream` trustworthy: every pulse emitted by [`PulsedTriple`] is
//! **bitwise identical** to `ts3_signal::triple_decompose` run on the
//! same trailing window, across a seeded sweep of window lengths,
//! trend-kernel sets, lambda, channel counts, `T_f` modes, emit
//! cadences, ring-wrap alignments and worker-pool thread caps — in the
//! style of the existing par/serial and plan-equivalence suites.
//!
//! "Bitwise" means `f32::to_bits` equality on every element of every
//! component (trend, seasonal, regular, fluctuant 1-D/2-D, TF grid)
//! plus the selected `T_f`. No tolerance anywhere: the streaming path
//! replays the batch arithmetic, so any drift is a bug, not noise.

use ts3_rng::rngs::StdRng;
use ts3_rng::{Rng, SeedableRng};
use ts3_signal::decompose::{triple_decompose, TripleConfig};
use ts3_signal::wavelet::WaveletKind;
use ts3_stream::{PulsedTriple, StreamConfig};
use ts3_tensor::par::set_max_threads;
use ts3_tensor::Tensor;

/// One sweep point: the streaming config plus how long to drive it.
struct Combo {
    name: &'static str,
    window: usize,
    channels: usize,
    lambda: usize,
    kernels: Vec<usize>,
    t_f: Option<usize>,
    seed: u64,
}

fn combos() -> Vec<Combo> {
    vec![
        Combo { name: "short", window: 32, channels: 1, lambda: 4, kernels: vec![13, 17, 25], t_f: None, seed: 11 },
        Combo { name: "two_channel", window: 48, channels: 2, lambda: 8, kernels: vec![5], t_f: None, seed: 22 },
        Combo { name: "paper_window", window: 96, channels: 1, lambda: 16, kernels: vec![13, 17, 25], t_f: None, seed: 33 },
        Combo { name: "fixed_tf_wide", window: 96, channels: 3, lambda: 4, kernels: vec![13, 17, 25], t_f: Some(24), seed: 44 },
        Combo { name: "odd_bluestein", window: 33, channels: 2, lambda: 4, kernels: vec![7, 11], t_f: None, seed: 55 },
        Combo { name: "identity_kernel", window: 48, channels: 1, lambda: 4, kernels: vec![1, 25], t_f: Some(12), seed: 66 },
    ]
}

fn triple_cfg(c: &Combo) -> TripleConfig {
    TripleConfig {
        lambda: c.lambda,
        wavelet: WaveletKind::ComplexGaussian,
        trend_kernels: c.kernels.clone(),
        t_f: c.t_f,
    }
}

/// Seeded sample row: trend + two tones + noise, per channel.
fn row(rng: &mut StdRng, i: usize, channels: usize) -> Vec<f32> {
    (0..channels)
        .map(|ch| {
            let ti = i as f32;
            let noise: f32 = rng.gen::<f32>() - 0.5;
            0.02 * ti
                + (std::f32::consts::TAU * ti / 24.0 + ch as f32).sin()
                + 0.4 * (std::f32::consts::TAU * ti / 7.0).cos()
                + 0.2 * noise
        })
        .collect()
}

fn assert_bits(label: &str, combo: &str, pushed: u64, stream: &[f32], batch: &[f32]) {
    assert_eq!(stream.len(), batch.len(), "{combo}@{pushed}: {label} length");
    for (i, (a, b)) in stream.iter().zip(batch).enumerate() {
        assert_eq!(
            a.to_bits(),
            b.to_bits(),
            "{combo}@{pushed}: {label}[{i}] diverged: stream {a} vs batch {b}"
        );
    }
}

/// Assert one emit equals the batch decomposition of the same window,
/// component by component, bit for bit.
fn assert_emit_matches_batch(
    combo: &Combo,
    cfg: &TripleConfig,
    emit: &ts3_stream::StreamDecomposition,
    history: &[Vec<f32>],
) {
    let (t, c) = (combo.window, combo.channels);
    let tail: Vec<f32> = history[history.len() - t..].iter().flatten().copied().collect();
    assert_bits("window", combo.name, emit.samples_seen, &emit.window, &tail);
    let x = Tensor::from_vec(tail, &[t, c]);
    let batch = triple_decompose(&x, cfg);
    assert_eq!(emit.t_f, batch.t_f, "{}@{}: t_f diverged", combo.name, emit.samples_seen);
    let n = emit.samples_seen;
    assert_bits("trend", combo.name, n, &emit.trend, batch.trend.as_slice());
    assert_bits("seasonal", combo.name, n, &emit.seasonal, batch.seasonal.as_slice());
    assert_bits("regular", combo.name, n, &emit.regular, batch.regular.as_slice());
    assert_bits("fluctuant_1d", combo.name, n, &emit.fluctuant_1d, batch.fluctuant_1d.as_slice());
    assert_bits("fluctuant_2d", combo.name, n, &emit.fluctuant_2d, batch.fluctuant_2d.as_slice());
    assert_bits("tf", combo.name, n, &emit.tf, batch.tf.as_slice());
}

/// Drive one combo for `2.5 * window` samples, checking emits against
/// the batch decomposition at a spread of ring-wrap alignments.
fn drive(combo: &Combo, hop: usize, check_every: u64) {
    let cfg = triple_cfg(combo);
    let mut stream = PulsedTriple::new(StreamConfig {
        window: combo.window,
        channels: combo.channels,
        hop,
        triple: cfg.clone(),
    });
    let mut rng = StdRng::seed_from_u64(combo.seed);
    let total = combo.window * 5 / 2;
    let mut history: Vec<Vec<f32>> = Vec::with_capacity(total);
    let mut emits = 0u64;
    let mut checked = 0u64;
    for i in 0..total {
        let r = row(&mut rng, i, combo.channels);
        history.push(r.clone());
        if let Some(emit) = stream.push(&r) {
            assert_eq!(
                emit.samples_seen,
                (i + 1) as u64,
                "{}: emit fired off its cadence",
                combo.name
            );
            let last = i == total - 1;
            if emits % check_every == 0 || last {
                assert_emit_matches_batch(combo, &cfg, &emit, &history);
                checked += 1;
            }
            emits += 1;
        }
    }
    let expected = ((total - combo.window) / hop + 1) as u64;
    assert_eq!(emits, expected, "{}: emit count", combo.name);
    assert!(checked >= 3, "{}: sweep checked too few emits", combo.name);
}

#[test]
fn streaming_emits_are_bitwise_equal_to_batch_across_the_sweep() {
    for combo in combos() {
        // Every emit at small windows; strided checks at the larger
        // ones still cover > window distinct ring-wrap alignments.
        let check_every = if combo.window >= 96 { 7 } else { 3 };
        drive(&combo, 1, check_every);
    }
}

#[test]
fn hop_cadence_does_not_change_emit_contents() {
    // hop only thins the emit schedule; each emitted decomposition must
    // still match batch on its own trailing window.
    let combo = Combo {
        name: "hopped",
        window: 48,
        channels: 2,
        lambda: 8,
        kernels: vec![13, 17, 25],
        t_f: None,
        seed: 77,
    };
    drive(&combo, 4, 1);
    drive(&combo, 7, 1);
}

#[test]
fn equivalence_holds_at_1_and_4_worker_threads() {
    // The determinism contract says thread caps change nothing; assert
    // it end-to-end for the streaming path by comparing both thread
    // counts against batch *and* against each other.
    let combo = Combo {
        name: "threads",
        window: 64,
        channels: 2,
        lambda: 8,
        kernels: vec![13, 17, 25],
        t_f: None,
        seed: 88,
    };
    let cfg = triple_cfg(&combo);
    let run = || -> Vec<Vec<f32>> {
        let mut stream = PulsedTriple::new(StreamConfig {
            window: combo.window,
            channels: combo.channels,
            hop: 1,
            triple: cfg.clone(),
        });
        let mut rng = StdRng::seed_from_u64(combo.seed);
        let mut history: Vec<Vec<f32>> = Vec::new();
        let mut outputs = Vec::new();
        for i in 0..combo.window * 2 {
            let r = row(&mut rng, i, combo.channels);
            history.push(r.clone());
            if let Some(emit) = stream.push(&r) {
                if emit.samples_seen % 16 == 0 {
                    assert_emit_matches_batch(&combo, &cfg, &emit, &history);
                }
                let mut flat = emit.regular.clone();
                flat.extend_from_slice(&emit.fluctuant_2d);
                flat.push(emit.t_f as f32);
                outputs.push(flat);
            }
        }
        outputs
    };
    set_max_threads(1);
    let serial = run();
    set_max_threads(4);
    let threaded = run();
    set_max_threads(1);
    assert_eq!(serial.len(), threaded.len());
    for (e, (a, b)) in serial.iter().zip(&threaded).enumerate() {
        for (i, (x, y)) in a.iter().zip(b).enumerate() {
            assert_eq!(x.to_bits(), y.to_bits(), "emit {e} elem {i}: 1 vs 4 threads");
        }
    }
}

#[test]
fn restarting_midstream_converges_after_one_window() {
    // A freshly constructed stream fed only the last `window` samples
    // emits the same bits as one that saw the whole history: the
    // operator's state is exactly the trailing window.
    let combo = &combos()[1]; // two_channel
    let cfg = triple_cfg(combo);
    let mk = || {
        PulsedTriple::new(StreamConfig {
            window: combo.window,
            channels: combo.channels,
            hop: 1,
            triple: cfg.clone(),
        })
    };
    let mut rng = StdRng::seed_from_u64(99);
    let total = combo.window * 3;
    let rows: Vec<Vec<f32>> = (0..total).map(|i| row(&mut rng, i, combo.channels)).collect();
    let mut long = mk();
    let mut long_last = None;
    for r in &rows {
        if let Some(e) = long.push(r) {
            long_last = Some(e);
        }
    }
    let mut short = mk();
    let mut short_last = None;
    for r in &rows[total - combo.window..] {
        if let Some(e) = short.push(r) {
            short_last = Some(e);
        }
    }
    let (a, b) = (long_last.expect("long emitted"), short_last.expect("short emitted"));
    assert_eq!(a.t_f, b.t_f);
    assert_bits("regular", "restart", a.samples_seen, &a.regular, &b.regular);
    assert_bits("tf", "restart", a.samples_seen, &a.tf, &b.tf);
}
