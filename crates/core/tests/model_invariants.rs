//! TS3Net model-level invariants beyond the unit tests: configuration
//! clamps, component additivity, ablation structure, and input
//! sensitivity sanity.

use ts3_nn::{Ctx, Module};
use ts3_signal::CwtPlan;
use ts3_signal::WaveletKind;
use ts3_tensor::Tensor;
use ts3net_core::{
    batch_dominant_period, Ablation, ForecastModel, ImputationModel, SgdLayer, TS3Net,
    TS3NetConfig, TS3NetImputer, TfBlock,
};

fn cfg(lookback: usize, horizon: usize) -> TS3NetConfig {
    let mut c = TS3NetConfig::scaled(2, lookback, horizon);
    c.lambda = 8;
    c.d_model = 4;
    c.d_hidden = 4;
    c.dropout = 0.0;
    c
}

fn wave_batch(b: usize, t: usize, c: usize) -> Tensor {
    let mut v = Vec::with_capacity(b * t * c);
    for bi in 0..b {
        for ti in 0..t {
            for ci in 0..c {
                v.push(
                    (std::f32::consts::TAU * ti as f32 / 12.0 + (bi + ci) as f32).sin()
                        + 0.02 * ti as f32,
                );
            }
        }
    }
    Tensor::from_vec(v, &[b, t, c])
}

#[test]
fn lambda_is_clamped_for_short_lookbacks() {
    // lookback 36 / 6 = 6 < requested 8.
    let model = TS3Net::new(cfg(36, 24), 0);
    assert_eq!(model.cfg.lambda, 6);
    // lookback 96 / 6 = 16 >= 8: untouched.
    let model = TS3Net::new(cfg(96, 24), 0);
    assert_eq!(model.cfg.lambda, 8);
    let imputer = TS3NetImputer::new(cfg(36, 36), 0);
    assert_eq!(imputer.cfg.lambda, 6);
}

#[test]
fn explicit_t_f_changes_the_forecast() {
    let mut c1 = cfg(48, 12);
    c1.t_f = Some(6);
    let mut c2 = cfg(48, 12);
    c2.t_f = Some(12);
    let x = wave_batch(1, 48, 2);
    let m1 = TS3Net::new(c1, 4);
    let m2 = TS3Net::new(c2, 4);
    let mut ctx = Ctx::eval();
    let y1 = m1.forecast(&x, &mut ctx);
    let y2 = m2.forecast(&x, &mut ctx);
    assert!(
        y1.value().max_abs_diff(y2.value()) > 1e-5,
        "chunk length must influence the S-GD decomposition"
    );
}

#[test]
fn ablations_reduce_parameter_count_sensibly() {
    let full = TS3Net::new(cfg(48, 12), 0).num_parameters();
    let no_td = TS3Net::new(cfg(48, 12).with_ablation(Ablation::NO_TD), 0).num_parameters();
    let no_tf = TS3Net::new(cfg(48, 12).with_ablation(Ablation::NO_TF), 0).num_parameters();
    // w/o TD drops the trend + fluctuant heads.
    assert!(no_td < full, "no_td {no_td} vs full {full}");
    // w/o TF-Block swaps wavelet branches for small MLPs.
    assert!(no_tf < full, "no_tf {no_tf} vs full {full}");
}

#[test]
fn forecast_is_locally_stable() {
    // A small input perturbation must produce a bounded output change
    // (no chaotic blow-ups through the CWT stack).
    let model = TS3Net::new(cfg(48, 12), 1);
    let x = wave_batch(1, 48, 2);
    let mut xp = x.clone();
    xp.as_mut_slice()[40] += 1e-3;
    let mut ctx = Ctx::eval();
    let y = model.forecast(&x, &mut ctx);
    let yp = model.forecast(&xp, &mut ctx);
    let dy = y.value().max_abs_diff(yp.value());
    assert!(dy < 0.5, "output moved {dy} for a 1e-3 input perturbation");
}

#[test]
fn sgd_components_feed_distinct_heads() {
    // The fluctuant path must contribute: zeroing it (via the w/o TD
    // ablation) changes the prediction.
    let x = wave_batch(1, 48, 2);
    let full = TS3Net::new(cfg(48, 12), 9);
    let no_td = TS3Net::new(cfg(48, 12).with_ablation(Ablation::NO_TD), 9);
    let mut ctx = Ctx::eval();
    let yf = full.forecast(&x, &mut ctx);
    let yn = no_td.forecast(&x, &mut ctx);
    assert!(yf.value().max_abs_diff(yn.value()) > 1e-4);
}

#[test]
fn tf_block_branches_use_distinct_wavelets() {
    use ts3net_core::branch_plans;
    let plans = branch_plans(48, 6, &[WaveletKind::ComplexGaussian, WaveletKind::ComplexGaussian1]);
    let mut rng = <ts3_rng::rngs::StdRng as ts3_rng::SeedableRng>::seed_from_u64(0);
    let block = TfBlock::new("t", &plans, 4, 4, &mut rng);
    assert_eq!(block.num_branches(), 2);
    // Different plans produce different branch outputs even with shared
    // input; verified indirectly through the merged output being
    // sensitive to the merge weights. Params exist for both branches.
    assert!(block.params().len() > 10);
}

#[test]
fn dominant_period_sees_through_batch() {
    let x = wave_batch(3, 48, 2);
    let p = batch_dominant_period(&x);
    assert_eq!(p, 12);
}

#[test]
fn sgd_layer_rejects_wrong_plan_length() {
    let plan = std::rc::Rc::new(CwtPlan::new(32, 4, WaveletKind::ComplexGaussian));
    let layer = SgdLayer::new(plan);
    let x = ts3_autograd::Var::constant(Tensor::zeros(&[1, 32, 1]));
    // Correct length works...
    let _ = layer.forward(&x, 8);
    // ...wrong length panics with a clear message.
    let bad = ts3_autograd::Var::constant(Tensor::zeros(&[1, 16, 1]));
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        let _ = layer.forward(&bad, 8);
    }));
    assert!(result.is_err(), "length mismatch must be rejected");
}

#[test]
fn imputer_preserves_observed_points_at_init() {
    // With zero-initialised correction heads the reconstruction equals
    // the mean-filled input, so observed points pass through exactly.
    let model = TS3NetImputer::new(cfg(32, 32), 2);
    let x = wave_batch(1, 32, 2);
    let mask = Tensor::zeros(&[1, 32, 2]); // nothing hidden
    let mut ctx = Ctx::eval();
    let y = model.impute(&x, &mask, &mut ctx);
    assert!(
        y.value().allclose(&x, 1e-4),
        "max diff {}",
        y.value().max_abs_diff(&x)
    );
}
