//! Compiled inference plans: freeze a trained [`ForecastModel`] into an
//! ordered stage list that executes without an autograd tape.
//!
//! Training wants the tape; serving does not. A [`CompiledPlan`] lowers a
//! model into the ordered stage list the model itself declares
//! ([`ForecastModel::plan_stages`]), snapshots every parameter tensor,
//! and executes under [`ts3_autograd::NoGradGuard`] — each intermediate
//! op returns a parentless leaf, so no graph, no backward closures, and
//! no per-call tape allocation exist on the serving path. Intermediate
//! stage results live in a slot table preallocated at freeze time
//! ([`PlanState`]); kernel-internal scratch (matmul packing buffers, FFT
//! plan scratch) is reused through the existing thread-local caches.
//!
//! Two contracts, both enforced:
//!
//! * **Bitwise equivalence.** Every `Var` op computes its value eagerly
//!   before touching the tape, so suppressing the tape cannot change a
//!   single bit. [`CompiledPlan::freeze`] still *verifies* this on the
//!   calibration batch and refuses to build a plan whose output differs
//!   from the eager forward ([`PlanError::Diverged`]).
//! * **Frozen weights.** The plan owns a snapshot of every parameter and
//!   swaps it in (O(1) pointer swaps, no copies) around each execution,
//!   so a model that keeps training between plan runs does not perturb
//!   plans frozen earlier; re-freezing captures the new weights.
//!
//! ```
//! use std::rc::Rc;
//! use ts3net_core::{CompiledPlan, ForecastModel, TS3Net, TS3NetConfig};
//! use ts3_nn::Ctx;
//! use ts3_tensor::Tensor;
//!
//! let cfg = TS3NetConfig::scaled(/*channels*/ 2, /*lookback*/ 24, /*horizon*/ 12);
//! let model = TS3Net::new(cfg, /*seed*/ 0);
//! let calib = Tensor::randn(&[4, 24, 2], 1);
//! let eager = model.forecast(&calib, &mut Ctx::eval()).value().clone();
//!
//! let plan = CompiledPlan::freeze(Rc::new(model), &calib).unwrap();
//! let served = plan.run(&calib).unwrap();
//! assert_eq!(served.as_slice(), eager.as_slice()); // bitwise, not approximate
//! assert!(plan.stages().len() > 1); // TS3Net lowers into real stages
//! ```

use crate::traits::ForecastModel;
use std::cell::RefCell;
use std::fmt;
use std::rc::Rc;
use ts3_autograd::{NoGradGuard, Param};
use ts3_tensor::Tensor;

/// Why a plan could not be built or executed.
#[derive(Debug, Clone, PartialEq)]
pub enum PlanError {
    /// The input shape does not match the plan's frozen geometry.
    ShapeMismatch {
        /// `[lookback, c_in]` the plan was frozen for.
        expected: [usize; 2],
        /// The offending input shape.
        got: Vec<usize>,
    },
    /// Freeze-time verification found the plan output differing from the
    /// eager forward. This indicates a broken staged lowering.
    Diverged {
        /// Largest absolute element difference observed.
        max_abs_diff: f32,
    },
    /// A stage pipeline finished without writing the output slot.
    MissingOutput {
        /// Name of the final stage that should have produced it.
        last_stage: String,
    },
}

impl fmt::Display for PlanError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlanError::ShapeMismatch { expected, got } => write!(
                f,
                "plan expects [B, {}, {}] input, got {:?}",
                expected[0], expected[1], got
            ),
            PlanError::Diverged { max_abs_diff } => write!(
                f,
                "compiled plan diverged from the eager forward (max |diff| = {max_abs_diff:e})"
            ),
            PlanError::MissingOutput { last_stage } => {
                write!(f, "stage pipeline ended without an output (last stage: {last_stage})")
            }
        }
    }
}

impl std::error::Error for PlanError {}

/// Mutable execution state threaded through a plan's stages: the current
/// input, the output slot, a fixed table of intermediate tensor slots
/// (sized by [`ForecastModel::plan_slots`] at freeze time) and a small
/// bank of integer scalars (for data-dependent constants such as the
/// dominant period `T_f`).
pub struct PlanState {
    input: Tensor,
    output: Option<Tensor>,
    slots: Vec<Option<Tensor>>,
    scalars: Vec<usize>,
}

impl PlanState {
    fn new(n_slots: usize) -> PlanState {
        PlanState {
            input: Tensor::zeros(&[0]),
            output: None,
            slots: (0..n_slots).map(|_| None).collect(),
            scalars: vec![0; 4],
        }
    }

    fn reset(&mut self, input: Tensor) {
        self.input = input;
        self.output = None;
        for s in &mut self.slots {
            *s = None;
        }
        for s in &mut self.scalars {
            *s = 0;
        }
    }

    /// The batch currently being executed.
    pub fn input(&self) -> &Tensor {
        &self.input
    }

    /// Write the final forecast.
    pub fn set_output(&mut self, y: Tensor) {
        self.output = Some(y);
    }

    /// Read intermediate slot `i`.
    ///
    /// # Panics
    /// Panics if the slot was never written — a staged lowering bug.
    pub fn slot(&self, i: usize) -> &Tensor {
        match &self.slots[i] {
            Some(t) => t,
            // ts3-lint: allow(no-unwrap-in-lib) staged-lowering contract violation; documented # Panics
            None => panic!("plan stage read slot {i} before any stage wrote it"),
        }
    }

    /// Write intermediate slot `i`.
    pub fn set_slot(&mut self, i: usize, t: Tensor) {
        self.slots[i] = Some(t);
    }

    /// True if slot `i` holds a tensor.
    pub fn has_slot(&self, i: usize) -> bool {
        self.slots[i].is_some()
    }

    /// Read integer scalar `i` (0 until written).
    pub fn scalar(&self, i: usize) -> usize {
        self.scalars[i]
    }

    /// Write integer scalar `i`.
    pub fn set_scalar(&mut self, i: usize, v: usize) {
        self.scalars[i] = v;
    }
}

/// Restores the swapped-in snapshot on drop, so a panicking stage cannot
/// leave frozen weights live in the shared parameters.
struct WeightSwap<'a> {
    snapshot: &'a mut [(Param, Tensor)],
}

impl<'a> WeightSwap<'a> {
    fn engage(snapshot: &'a mut [(Param, Tensor)]) -> WeightSwap<'a> {
        for (p, frozen) in snapshot.iter_mut() {
            p.swap_value(frozen);
        }
        WeightSwap { snapshot }
    }
}

impl Drop for WeightSwap<'_> {
    fn drop(&mut self) {
        // swap is its own inverse: this puts the live weights back.
        for (p, frozen) in self.snapshot.iter_mut() {
            p.swap_value(frozen);
        }
    }
}

/// A model frozen for inference: ordered stages, snapshotted weights,
/// preallocated state, no tape. Built by [`CompiledPlan::freeze`]; run
/// with [`CompiledPlan::run`]. `!Send` by construction (models are
/// `Rc`-based graphs); a serving layer owns plans on one executor thread.
pub struct CompiledPlan {
    model: Rc<dyn ForecastModel>,
    stages: Vec<String>,
    snapshot: RefCell<Vec<(Param, Tensor)>>,
    state: RefCell<PlanState>,
    lookback: usize,
    c_in: usize,
    name: String,
}

impl CompiledPlan {
    /// Freeze `model` into a plan, verifying on `calib` (a representative
    /// `[B, T, C]` batch) that the staged execution is bitwise identical
    /// to the eager forward at the current weights.
    ///
    /// The model's parameters are snapshotted: training the model further
    /// does not change this plan's outputs.
    ///
    /// A calibration batch with `B == 0` still fixes the plan's
    /// `[lookback, c_in]` geometry but skips the eager/staged self-check
    /// (there is nothing to compare). This is the cheap-refreeze path: a
    /// serving layer that swaps updated weights in and refreezes on a
    /// live executor thread can do so without paying a forward pass,
    /// because the staged lowering was already verified by the original
    /// full-batch freeze.
    pub fn freeze(model: Rc<dyn ForecastModel>, calib: &Tensor) -> Result<CompiledPlan, PlanError> {
        let mut span = ts3_obs::span("plan.freeze");
        if span.active() {
            span.field("model", model.name().to_string());
        }
        let snapshot: Vec<(Param, Tensor)> = model
            .parameters()
            .into_iter()
            .map(|p| {
                let frozen = p.value().clone();
                (p, frozen)
            })
            .collect();
        let stages = model.plan_stages();
        debug_assert!(!stages.is_empty(), "a plan needs at least one stage");
        let plan = CompiledPlan {
            state: RefCell::new(PlanState::new(model.plan_slots())),
            lookback: calib.shape()[1],
            c_in: calib.shape()[2],
            name: model.name().to_string(),
            model,
            stages,
            snapshot: RefCell::new(snapshot),
        };
        if calib.shape()[0] == 0 {
            return Ok(plan);
        }
        // Reference output at the frozen weights, with the tape on — the
        // exact computation training and evaluation run.
        let eager = plan
            .model
            .forecast(calib, &mut ts3_nn::Ctx::eval())
            .value()
            .clone();
        let staged = plan.run(calib)?;
        if staged.as_slice() != eager.as_slice() {
            let max_abs_diff = staged
                .as_slice()
                .iter()
                .zip(eager.as_slice())
                .map(|(a, b)| (a - b).abs())
                .fold(0.0f32, f32::max);
            return Err(PlanError::Diverged { max_abs_diff });
        }
        Ok(plan)
    }

    /// Execute the plan on a `[B, lookback, c_in]` batch (any `B`).
    ///
    /// Swaps the frozen weights in, runs every stage under a
    /// [`NoGradGuard`], and swaps the live weights back — even if a
    /// stage panics.
    pub fn run(&self, x: &Tensor) -> Result<Tensor, PlanError> {
        if x.rank() != 3 || x.shape()[1] != self.lookback || x.shape()[2] != self.c_in {
            return Err(PlanError::ShapeMismatch {
                expected: [self.lookback, self.c_in],
                got: x.shape().to_vec(),
            });
        }
        let mut span = ts3_obs::span("plan.run");
        if span.active() {
            span.field("model", self.name.clone());
            span.field("b", x.shape()[0]);
            ts3_obs::counter_add("plan.run.calls", 1);
        }
        let mut snapshot = self.snapshot.borrow_mut();
        let _weights = WeightSwap::engage(&mut snapshot);
        let _no_grad = NoGradGuard::new();
        let mut state = self.state.borrow_mut();
        state.reset(x.clone());
        for (i, stage) in self.stages.iter().enumerate() {
            let mut stage_span = ts3_obs::span("plan.stage");
            if stage_span.active() {
                stage_span.field("stage", stage.clone());
                stage_span.field("idx", i);
            }
            // Files a per-stage execute segment into the serving
            // timeline when a batch scope is open on this thread; inert
            // (and allocation-free) otherwise.
            let _tl = ts3_obs::stage_scope(stage);
            self.model.run_plan_stage(i, &mut state);
        }
        state.output.take().ok_or_else(|| PlanError::MissingOutput {
            // ts3-lint: allow(no-unwrap-in-lib) stages is non-empty by the freeze-time debug_assert
            last_stage: self.stages.last().expect("non-empty stage list").clone(),
        })
    }

    /// The ordered stage names this plan executes.
    pub fn stages(&self) -> &[String] {
        &self.stages
    }

    /// The frozen model's display name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The lowered model (parameters are shared with the live model, so
    /// a trainer can keep stepping them between freezes).
    pub fn model(&self) -> &dyn ForecastModel {
        &*self.model
    }

    /// `[lookback, c_in]` geometry the plan accepts.
    pub fn geometry(&self) -> [usize; 2] {
        [self.lookback, self.c_in]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::TS3NetConfig;
    use crate::forecaster::TS3Net;
    use ts3_nn::Ctx;

    fn small_model() -> TS3Net {
        let mut cfg = TS3NetConfig::scaled(2, 24, 12);
        cfg.lambda = 4;
        cfg.d_model = 4;
        cfg.d_hidden = 4;
        TS3Net::new(cfg, 3)
    }

    #[test]
    fn freeze_and_run_matches_eager_bitwise() {
        let model = small_model();
        let x = Tensor::randn(&[3, 24, 2], 11);
        let eager = model.forecast(&x, &mut Ctx::eval()).value().clone();
        let plan = CompiledPlan::freeze(Rc::new(model), &x).expect("freeze");
        let y = plan.run(&x).expect("run");
        assert_eq!(y.as_slice(), eager.as_slice());
    }

    #[test]
    fn run_rejects_wrong_geometry() {
        let plan =
            CompiledPlan::freeze(Rc::new(small_model()), &Tensor::randn(&[2, 24, 2], 0)).unwrap();
        let err = plan.run(&Tensor::randn(&[2, 48, 2], 0)).unwrap_err();
        assert!(matches!(err, PlanError::ShapeMismatch { .. }), "{err}");
        // Batch size is free.
        assert!(plan.run(&Tensor::randn(&[7, 24, 2], 0)).is_ok());
    }

    #[test]
    fn frozen_weights_survive_training_updates() {
        let model = small_model();
        let x = Tensor::randn(&[2, 24, 2], 5);
        let params = model.parameters();
        let plan = CompiledPlan::freeze(Rc::new(model), &x).unwrap();
        let before = plan.run(&x).unwrap();
        // "Train": perturb every shared parameter.
        for p in &params {
            let bumped = p.value().map(|v| v + 0.125);
            p.set_value(bumped);
        }
        let after = plan.run(&x).unwrap();
        assert_eq!(before.as_slice(), after.as_slice(), "plan must use frozen weights");
        // And the live weights are restored after each run (swap-out).
        let eager_now = plan.model().forecast(&x, &mut Ctx::eval()).value().clone();
        assert_ne!(eager_now.as_slice(), before.as_slice());
    }

    #[test]
    fn state_panics_on_unwritten_slot_read() {
        let mut st = PlanState::new(2);
        st.reset(Tensor::zeros(&[1]));
        assert!(!st.has_slot(0));
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _ = st.slot(0);
        }));
        assert!(r.is_err());
    }
}
