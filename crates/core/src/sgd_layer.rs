//! The differentiable Spectrum-Gradient Decomposition layer (paper Eq.
//! 9–11), inserted between adjacent TF-Blocks (Fig. 2).

use crate::ops::{cwt_amplitude, iwt};
use std::rc::Rc;
use ts3_autograd::Var;
use ts3_signal::CwtPlan;

/// Output of one S-GD application.
pub struct SgdOutput {
    /// Regular part `X_r = X - Delta_1D`, `[B, T, D]`.
    pub regular: Var,
    /// Fluctuant part `Delta_2D`, `[B, D, lambda, T]`.
    pub fluctuant_2d: Var,
    /// `Delta_1D = IWT(Delta_2D)`, `[B, T, D]`.
    pub delta_1d: Var,
}

/// S-GD layer bound to one wavelet plan.
pub struct SgdLayer {
    plan: Rc<CwtPlan>,
}

impl SgdLayer {
    /// Build an S-GD layer for series of the plan's length.
    pub fn new(plan: Rc<CwtPlan>) -> Self {
        SgdLayer { plan }
    }

    /// Apply the decomposition: split the TF distribution into
    /// length-`t_f` chunks, difference adjacent chunks (`S^0 = 0`), map
    /// the difference back to 1-D, and subtract (Eq. 9–10).
    pub fn forward(&self, x: &Var, t_f: usize) -> SgdOutput {
        assert_eq!(x.shape().len(), 3, "SgdLayer expects [B, T, D]");
        let t = x.shape()[1];
        let t_f = t_f.clamp(1, t);
        let tf = cwt_amplitude(x, &self.plan); // [B, D, lambda, T]
        // Delta[t] = TF[t] - TF[t - t_f] (zero for t < t_f): shift the TF
        // grid right by t_f along the time axis and subtract.
        let delta_2d = if t_f >= t {
            tf.clone()
        } else {
            let shifted = tf.narrow(3, 0, t - t_f).pad_axis(3, t_f, 0);
            tf.sub(&shifted)
        };
        let delta_1d = iwt(&delta_2d, &self.plan);
        let regular = x.sub(&delta_1d);
        SgdOutput { regular, fluctuant_2d: delta_2d, delta_1d }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ts3_signal::{spectrum_gradient, WaveletKind};
    use ts3_tensor::Tensor;

    fn plan(t: usize, lambda: usize) -> Rc<CwtPlan> {
        Rc::new(CwtPlan::new(t, lambda, WaveletKind::ComplexGaussian))
    }

    #[test]
    fn sgd_shapes() {
        let p = plan(32, 4);
        let layer = SgdLayer::new(p);
        let x = Var::constant(Tensor::randn(&[2, 32, 3], 1));
        let out = layer.forward(&x, 8);
        assert_eq!(out.regular.shape(), &[2, 32, 3]);
        assert_eq!(out.fluctuant_2d.shape(), &[2, 3, 4, 32]);
        assert_eq!(out.delta_1d.shape(), &[2, 32, 3]);
    }

    #[test]
    fn sgd_identity_decomposition() {
        // regular + delta_1d == x exactly (Eq. 10 is an exact split).
        let p = plan(24, 4);
        let layer = SgdLayer::new(p);
        let x = Tensor::randn(&[1, 24, 2], 2);
        let out = layer.forward(&Var::constant(x.clone()), 6);
        let rec = out.regular.value().add(out.delta_1d.value());
        assert!(rec.allclose(&x, 1e-4));
    }

    #[test]
    fn sgd_matches_reference_spectrum_gradient() {
        // The Var-side chunk-difference must agree with the data-side
        // reference implementation in ts3-signal.
        let t = 20;
        let t_f = 6;
        let p = plan(t, 3);
        let layer = SgdLayer::new(p.clone());
        let x = Tensor::randn(&[1, t, 1], 3);
        let out = layer.forward(&Var::constant(x.clone()), t_f);
        let col: Vec<f32> = (0..t).map(|ti| x.at(&[0, ti, 0])).collect();
        let tf_ref = p.amplitude_tensor(&col);
        // Add the epsilon guard the Var op uses before differencing.
        let tf_ref = tf_ref.map(|v| (v * v + 1e-8).sqrt());
        let want = spectrum_gradient(&tf_ref, t_f);
        for li in 0..3 {
            for ti in 0..t {
                let got = out.fluctuant_2d.value().at(&[0, 0, li, ti]);
                let w = want.at(&[li, ti]);
                assert!((got - w).abs() < 1e-3, "({li},{ti}): {got} vs {w}");
            }
        }
    }

    #[test]
    fn sgd_periodic_input_has_small_fluctuant_tail() {
        let t = 48;
        let period = 12;
        let p = plan(t, 6);
        let layer = SgdLayer::new(p);
        let x: Vec<f32> = (0..t)
            .map(|i| (std::f32::consts::TAU * i as f32 / period as f32).sin())
            .collect();
        let xt = Tensor::from_vec(x, &[1, t, 1]);
        let out = layer.forward(&Var::constant(xt), period);
        // Beyond the first chunk the TF grid repeats -> small delta.
        let d = out.fluctuant_2d.value();
        let tail: f32 = (period..t)
            .flat_map(|ti| (0..6).map(move |li| (li, ti)))
            .map(|(li, ti)| d.at(&[0, 0, li, ti]).abs())
            .sum();
        let head: f32 = (0..period)
            .flat_map(|ti| (0..6).map(move |li| (li, ti)))
            .map(|(li, ti)| d.at(&[0, 0, li, ti]).abs())
            .sum();
        assert!(tail < head, "tail {tail} should be smaller than head {head}");
    }

    #[test]
    fn sgd_gradient_flows_to_input() {
        let p = plan(16, 3);
        let layer = SgdLayer::new(p);
        let x = Var::constant(Tensor::randn(&[1, 16, 2], 4));
        let out = layer.forward(&x, 4);
        out.regular.square().sum().backward();
        let g = x.grad().unwrap();
        assert!(g.norm() > 0.0);
        assert!(g.all_finite());
    }

    #[test]
    fn sgd_tf_larger_than_t_passes_whole_grid() {
        let p = plan(10, 2);
        let layer = SgdLayer::new(p.clone());
        let x = Tensor::randn(&[1, 10, 1], 5);
        let out = layer.forward(&Var::constant(x.clone()), 999);
        // t_f >= T: single chunk, Delta = TF itself.
        let col: Vec<f32> = (0..10).map(|ti| x.at(&[0, ti, 0])).collect();
        let want = p.amplitude(&col);
        for li in 0..2 {
            for ti in 0..10 {
                let got = out.fluctuant_2d.value().at(&[0, 0, li, ti]);
                let w = (want[li * 10 + ti].powi(2) + 1e-8).sqrt();
                assert!((got - w).abs() < 1e-4);
            }
        }
    }
}
