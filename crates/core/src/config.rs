//! TS3Net hyper-parameter configuration (paper Table III), with the
//! paper-scale profile and the CPU-scaled default profile used by the
//! reproduction harness.

use ts3_signal::WaveletKind;

/// Ablation switches (paper Table VI).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Ablation {
    /// Remove the Triple Decomposition (trend split + S-GD layers).
    pub without_td: bool,
    /// Replace the TF-Block's wavelet 2-D expansion with a plain residual
    /// MLP block (the paper's "replicate-and-concatenate only" control).
    pub without_tf_block: bool,
}

impl Ablation {
    /// Full model.
    pub const FULL: Ablation = Ablation { without_td: false, without_tf_block: false };
    /// `w/o TD` row.
    pub const NO_TD: Ablation = Ablation { without_td: true, without_tf_block: false };
    /// `w/o TF-Block` row.
    pub const NO_TF: Ablation = Ablation { without_td: false, without_tf_block: true };
    /// `w/o Both` row.
    pub const NO_BOTH: Ablation = Ablation { without_td: true, without_tf_block: true };
}

/// Full model configuration.
#[derive(Debug, Clone)]
pub struct TS3NetConfig {
    /// Number of input channels `C`.
    pub c_in: usize,
    /// Lookback length `T`.
    pub lookback: usize,
    /// Prediction horizon `T_pred`.
    pub horizon: usize,
    /// Model width `d_model` (paper: `min(max(2^ceil(log C), d_min), d_max)`).
    pub d_model: usize,
    /// Number of spectral sub-bands (the paper's lambda; 100 at paper
    /// scale).
    pub lambda: usize,
    /// Number of stacked TF-Blocks (paper default 2).
    pub n_blocks: usize,
    /// Wavelet generating functions, one per TF-Block branch (the paper's
    /// `m` branches).
    pub branches: Vec<WaveletKind>,
    /// Sub-series length `T_f`; `None` = dominant FFT period per batch.
    pub t_f: Option<usize>,
    /// Dropout probability.
    pub dropout: f32,
    /// Hidden width of the inception conv backbone.
    pub d_hidden: usize,
    /// Ablation switches.
    pub ablation: Ablation,
}

impl TS3NetConfig {
    /// The paper's `d_model` rule: `min(max(2^ceil(log2 C), d_min), d_max)`.
    pub fn paper_d_model(c_in: usize, d_min: usize, d_max: usize) -> usize {
        let pow = (c_in.max(1) as f32).log2().ceil() as u32;
        (1usize << pow).clamp(d_min, d_max)
    }

    /// CPU-scaled profile: small widths so a full table sweep fits the
    /// single-core budget (DESIGN.md §1 documents the substitution).
    pub fn scaled(c_in: usize, lookback: usize, horizon: usize) -> TS3NetConfig {
        TS3NetConfig {
            c_in,
            lookback,
            horizon,
            d_model: Self::paper_d_model(c_in, 8, 16),
            lambda: 8,
            n_blocks: 2,
            branches: vec![WaveletKind::ComplexGaussian, WaveletKind::ComplexGaussian1],
            t_f: None,
            dropout: 0.1,
            d_hidden: 8,
            ablation: Ablation::FULL,
        }
    }

    /// Paper-scale profile (Table III, long-term forecasting row).
    pub fn paper(c_in: usize, lookback: usize, horizon: usize) -> TS3NetConfig {
        TS3NetConfig {
            c_in,
            lookback,
            horizon,
            d_model: Self::paper_d_model(c_in, 32, 512),
            lambda: 100,
            n_blocks: 2,
            branches: vec![WaveletKind::ComplexGaussian, WaveletKind::ComplexGaussian1],
            t_f: None,
            dropout: 0.1,
            d_hidden: 32,
            ablation: Ablation::FULL,
        }
    }

    /// Override the ablation switches.
    pub fn with_ablation(mut self, ablation: Ablation) -> Self {
        self.ablation = ablation;
        self
    }

    /// Override lambda (Table IX sweep).
    pub fn with_lambda(mut self, lambda: usize) -> Self {
        self.lambda = lambda;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_d_model_rule() {
        // C=7 -> 2^3 = 8, clamped to [32, 512] -> 32.
        assert_eq!(TS3NetConfig::paper_d_model(7, 32, 512), 32);
        // C=321 -> 2^9 = 512.
        assert_eq!(TS3NetConfig::paper_d_model(321, 32, 512), 512);
        // C=862 -> 2^10 = 1024, clamped to 512.
        assert_eq!(TS3NetConfig::paper_d_model(862, 32, 512), 512);
        // Scaled: C=7 -> 8 within [8, 16].
        assert_eq!(TS3NetConfig::paper_d_model(7, 8, 16), 8);
    }

    #[test]
    fn scaled_profile_is_small() {
        let cfg = TS3NetConfig::scaled(7, 96, 96);
        assert!(cfg.d_model <= 16);
        assert!(cfg.lambda <= 16);
        assert_eq!(cfg.n_blocks, 2);
        assert_eq!(cfg.branches.len(), 2);
    }

    #[test]
    fn paper_profile_matches_table3() {
        let cfg = TS3NetConfig::paper(7, 96, 192);
        assert_eq!(cfg.lambda, 100);
        assert_eq!(cfg.d_model, 32);
        assert_eq!(cfg.horizon, 192);
    }

    #[test]
    fn ablation_builders() {
        let cfg = TS3NetConfig::scaled(7, 96, 96).with_ablation(Ablation::NO_TD);
        assert!(cfg.ablation.without_td);
        assert!(!cfg.ablation.without_tf_block);
        let cfg = cfg.with_lambda(4);
        assert_eq!(cfg.lambda, 4);
    }
}
