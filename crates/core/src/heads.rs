//! Prediction heads (paper Eq. 14–16): time-axis linear/MLP maps that
//! turn length-`T` representations into length-`H` forecasts.

use ts3_rng::rngs::StdRng;
use ts3_autograd::{Param, Var};
use ts3_nn::{Activation, Ctx, Linear, Mlp, Module};

/// Shared-across-channels linear map over the **time** axis:
/// `[B, T, C] -> [B, H, C]`.
pub struct TimeLinear {
    proj: Linear,
}

impl TimeLinear {
    /// Build a `T -> H` time projection.
    pub fn new(name: &str, t_in: usize, t_out: usize, rng: &mut StdRng) -> Self {
        TimeLinear { proj: Linear::new(name, t_in, t_out, true, rng) }
    }
}

impl Module for TimeLinear {
    fn forward(&self, x: &Var, ctx: &mut Ctx) -> Var {
        assert_eq!(x.shape().len(), 3, "TimeLinear expects [B, T, C]");
        let h = x.permute(&[0, 2, 1]); // [B, C, T]
        let h = self.proj.forward(&h, ctx); // [B, C, H]
        h.permute(&[0, 2, 1])
    }

    fn params(&self) -> Vec<Param> {
        self.proj.params()
    }
}

/// The prediction head of the regular/fluctuant parts (Eq. 14–15): a time
/// MLP `T -> H` followed by a feature projection `D -> C`.
pub struct PredictionHead {
    time: TimeLinear,
    out: Linear,
}

impl PredictionHead {
    /// Build a head mapping `[B, T, D] -> [B, H, C]`.
    pub fn new(
        name: &str,
        t_in: usize,
        t_out: usize,
        d_model: usize,
        c_out: usize,
        rng: &mut StdRng,
    ) -> Self {
        PredictionHead {
            time: TimeLinear::new(&format!("{name}.time"), t_in, t_out, rng),
            out: Linear::new(&format!("{name}.out"), d_model, c_out, true, rng),
        }
    }
}

impl PredictionHead {
    /// Zero-initialise the final projection so the head starts as an
    /// exact zero map — used by residual-reconstruction consumers (the
    /// imputer) that want training to start from a known baseline.
    pub fn zero_init_output(&self) {
        let shape = self.out.weight.shape();
        self.out.weight.set_value(ts3_tensor::Tensor::zeros(&shape));
    }
}

impl Module for PredictionHead {
    fn forward(&self, x: &Var, ctx: &mut Ctx) -> Var {
        let h = self.time.forward(x, ctx); // [B, H, D]
        self.out.forward(&h, ctx) // [B, H, C]
    }

    fn params(&self) -> Vec<Param> {
        let mut p = self.time.params();
        p.extend(self.out.params());
        p
    }
}

/// The trend Autoregression head (Eq. 16): an MLP over the time axis,
/// shared across channels: `[B, T, C] -> [B, H, C]`.
///
/// The head is **level-invariant**: it forecasts offsets relative to the
/// window's final trend value (`y = last + MLP(x - last)`), so unseen
/// absolute levels at test time extrapolate as a proper autoregression
/// instead of saturating the MLP.
pub struct Autoregression {
    mlp: Mlp,
    horizon: usize,
}

impl Autoregression {
    /// Build a `T -> H` autoregressive trend head with hidden width
    /// `hidden`.
    pub fn new(name: &str, t_in: usize, t_out: usize, hidden: usize, rng: &mut StdRng) -> Self {
        Autoregression {
            mlp: Mlp::new(name, t_in, hidden, t_out, Activation::Gelu, 0.0, rng),
            horizon: t_out,
        }
    }
}

impl Module for Autoregression {
    fn forward(&self, x: &Var, ctx: &mut Ctx) -> Var {
        assert_eq!(x.shape().len(), 3, "Autoregression expects [B, T, C]");
        let t = x.shape()[1];
        let last = x.narrow(1, t - 1, 1); // [B, 1, C]
        let anchored = x.sub(&last);
        let h = anchored.permute(&[0, 2, 1]); // [B, C, T]
        let h = self.mlp.forward(&h, ctx); // [B, C, H]
        let y = h.permute(&[0, 2, 1]); // [B, H, C]
        y.add(&last.repeat_axis(1, self.horizon))
    }

    fn params(&self) -> Vec<Param> {
        self.mlp.params()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ts3_rng::SeedableRng;
    use ts3_tensor::Tensor;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(33)
    }

    #[test]
    fn time_linear_maps_horizon() {
        let h = TimeLinear::new("tl", 24, 12, &mut rng());
        let mut ctx = Ctx::eval();
        let y = h.forward(&Var::constant(Tensor::randn(&[2, 24, 5], 1)), &mut ctx);
        assert_eq!(y.shape(), &[2, 12, 5]);
    }

    #[test]
    fn time_linear_is_channel_shared() {
        // Two channels with identical content must produce identical
        // outputs (weights shared over channels).
        let h = TimeLinear::new("tl", 8, 4, &mut rng());
        let mut ctx = Ctx::eval();
        let col = Tensor::randn(&[1, 8, 1], 2);
        let x = Tensor::concat(&[&col, &col], 2);
        let y = h.forward(&Var::constant(x), &mut ctx);
        let c0 = y.value().index_axis(2, 0);
        let c1 = y.value().index_axis(2, 1);
        assert!(c0.allclose(&c1, 1e-6));
    }

    #[test]
    fn prediction_head_shapes() {
        let h = PredictionHead::new("ph", 24, 48, 8, 7, &mut rng());
        let mut ctx = Ctx::eval();
        let y = h.forward(&Var::constant(Tensor::randn(&[3, 24, 8], 3)), &mut ctx);
        assert_eq!(y.shape(), &[3, 48, 7]);
    }

    #[test]
    fn autoregression_is_level_invariant_at_init() {
        // A constant trend forecasts itself exactly with zero training:
        // y = last + MLP(0) and the MLP's biases start at zero.
        let h = Autoregression::new("ar", 16, 8, 32, &mut rng());
        let mut ctx = Ctx::eval();
        let x = Var::constant(Tensor::full(&[2, 16, 3], 123.0));
        let y = h.forward(&x, &mut ctx);
        assert_eq!(y.shape(), &[2, 8, 3]);
        assert!(y.value().allclose(&Tensor::full(&[2, 8, 3], 123.0), 1e-4));
    }

    #[test]
    fn autoregression_learns_ramp_extrapolation() {
        let h = Autoregression::new("ar", 16, 8, 32, &mut rng());
        let mut ctx = Ctx::train(0);
        // Linear ramp: continuation keeps climbing with slope 0.1.
        let ramp = |start: f32, n: usize| -> Vec<f32> {
            (0..n).flat_map(|t| std::iter::repeat_n(start + 0.1 * t as f32, 3)).collect()
        };
        let x = Var::constant(Tensor::from_vec(ramp(0.0, 16), &[1, 16, 3]));
        let target = Tensor::from_vec(ramp(1.6, 8), &[1, 8, 3]);
        let mut first = 0.0;
        let mut last = 0.0;
        for step in 0..40 {
            let loss = h.forward(&x, &mut ctx).mse_loss(&target);
            if step == 0 {
                first = loss.value().item();
            }
            last = loss.value().item();
            for p in h.params() {
                p.zero_grad();
            }
            loss.backward();
            for p in h.params() {
                p.update_with(|v, g| v.axpy(-0.05, g));
            }
        }
        assert!(last < first * 0.5, "loss {first} -> {last}");
    }
}
