//! Task-level model interfaces shared by TS3Net and every baseline.

use ts3_autograd::{Param, Var};
use ts3_nn::Ctx;
use ts3_tensor::Tensor;

/// A multivariate forecaster: `[B, T, C] -> [B, H, C]`.
pub trait ForecastModel {
    /// Produce the forecast as a graph node (so training and evaluation
    /// share one code path).
    fn forecast(&self, x: &Tensor, ctx: &mut Ctx) -> Var;

    /// Trainable parameters.
    fn parameters(&self) -> Vec<Param>;

    /// Display name for result tables.
    fn name(&self) -> &str;

    /// Total scalar weight count.
    fn num_parameters(&self) -> usize {
        self.parameters().iter().map(|p| p.numel()).sum()
    }
}

/// A pointwise imputer: reconstruct `[B, T, C]` from a masked input.
pub trait ImputationModel {
    /// Reconstruct the series. `masked` has hidden points zeroed; `mask`
    /// is 1 at hidden points.
    fn impute(&self, masked: &Tensor, mask: &Tensor, ctx: &mut Ctx) -> Var;

    /// Trainable parameters.
    fn parameters(&self) -> Vec<Param>;

    /// Display name for result tables.
    fn name(&self) -> &str;
}
