//! Task-level model interfaces shared by TS3Net and every baseline.

use crate::plan::PlanState;
use ts3_autograd::{Param, Var};
use ts3_nn::Ctx;
use ts3_tensor::Tensor;

/// A multivariate forecaster: `[B, T, C] -> [B, H, C]`.
pub trait ForecastModel {
    /// Produce the forecast as a graph node (so training and evaluation
    /// share one code path).
    fn forecast(&self, x: &Tensor, ctx: &mut Ctx) -> Var;

    /// Trainable parameters.
    fn parameters(&self) -> Vec<Param>;

    /// Display name for result tables.
    fn name(&self) -> &str;

    /// Total scalar weight count.
    fn num_parameters(&self) -> usize {
        self.parameters().iter().map(|p| p.numel()).sum()
    }

    // --- staged lowering (consumed by `CompiledPlan::freeze`) ---
    //
    // The default lowering is a single stage that replays the whole
    // eager forward; because plan execution happens under a
    // `NoGradGuard`, even that degenerate plan is tape-free and bitwise
    // identical to training-path evaluation. Models with meaningful
    // internal structure override the three hooks to expose per-stage
    // `ts3-obs` spans and intermediate slots (TS3Net and DLinear do).

    /// How many intermediate tensor slots the staged lowering uses.
    fn plan_slots(&self) -> usize {
        0
    }

    /// Ordered stage names of this model's lowering. Must be non-empty;
    /// stage `i` is executed by [`ForecastModel::run_plan_stage`]`(i)`.
    fn plan_stages(&self) -> Vec<String> {
        vec!["forecast".to_string()]
    }

    /// Execute stage `idx` against the plan state. The final stage must
    /// call [`PlanState::set_output`].
    fn run_plan_stage(&self, idx: usize, st: &mut PlanState) {
        debug_assert_eq!(idx, 0, "the default lowering has a single stage");
        let y = self.forecast(st.input(), &mut Ctx::eval());
        st.set_output(y.value().clone());
    }
}

/// A pointwise imputer: reconstruct `[B, T, C]` from a masked input.
pub trait ImputationModel {
    /// Reconstruct the series. `masked` has hidden points zeroed; `mask`
    /// is 1 at hidden points.
    fn impute(&self, masked: &Tensor, mask: &Tensor, ctx: &mut Ctx) -> Var;

    /// Trainable parameters.
    fn parameters(&self) -> Vec<Param>;

    /// Display name for result tables.
    fn name(&self) -> &str;
}
