//! The full TS3Net forecaster (paper Algorithm 1 / Section III-D): triple
//! decomposition, stacked TF-Blocks with interleaved S-GD, and three
//! prediction heads whose outputs sum into the final forecast (Eq. 17).

use crate::config::TS3NetConfig;
use crate::heads::{Autoregression, PredictionHead};
use crate::ops::iwt;
use crate::plan::PlanState;
use crate::sgd_layer::SgdLayer;
use crate::tf_block::{branch_plans, TfBlock};
use crate::traits::ForecastModel;
use ts3_rng::rngs::StdRng;
use ts3_rng::SeedableRng;
use std::rc::Rc;
use ts3_autograd::{Param, Var};
use ts3_nn::{Activation, Ctx, DataEmbedding, Mlp, Module};
use ts3_signal::decompose::DEFAULT_TREND_KERNELS;
use ts3_signal::{dominant_period, CwtPlan};
use ts3_tensor::{moving_avg_same, Tensor};

/// Compute the dominant period of a `[B, T, C]` batch by averaging FFT
/// amplitudes over batch and channels (Eq. 2's top-1).
pub fn batch_dominant_period(x: &Tensor) -> usize {
    let (b, t, c) = (x.shape()[0], x.shape()[1], x.shape()[2]);
    // View as [T, B*C]: permute batch/channel lanes into columns.
    let flat = x.permute(&[1, 0, 2]).reshape(&[t, b * c]);
    dominant_period(&flat)
}

/// Multi-kernel moving-average trend split on a `[B, T, C]` batch
/// (Eq. 1), on plain tensors (the input is data, not a learned quantity).
pub fn batch_trend_split(x: &Tensor, kernels: &[usize]) -> (Tensor, Tensor) {
    let mut trend = Tensor::zeros(x.shape());
    for &k in kernels {
        trend.add_assign(&moving_avg_same(x, 1, k));
    }
    let trend = trend.div_scalar(kernels.len() as f32);
    let seasonal = x.sub(&trend);
    (trend, seasonal)
}

/// The TS3Net model.
pub struct TS3Net {
    /// Model configuration.
    pub cfg: TS3NetConfig,
    embed: DataEmbedding,
    plans: Vec<Rc<CwtPlan>>,
    sgd: SgdLayer,
    blocks: Vec<TfBlock>,
    mlp_blocks: Vec<Mlp>,
    regular_head: PredictionHead,
    fluct_head: PredictionHead,
    trend_head: Autoregression,
    display_name: String,
}

impl TS3Net {
    /// Build a TS3Net from its configuration, seeded deterministically.
    ///
    /// The effective number of sub-bands is clamped to `lookback / 6`:
    /// beyond that the largest-scale wavelets (support `8 * s_1 = 16
    /// lambda` samples) are entirely boundary-dominated for the window
    /// and only add noise — the short-lookback ILI setting is where this
    /// matters.
    pub fn new(mut cfg: TS3NetConfig, seed: u64) -> Self {
        cfg.lambda = cfg.lambda.min((cfg.lookback / 6).max(2));
        let mut rng = StdRng::seed_from_u64(seed);
        let plans = branch_plans(cfg.lookback, cfg.lambda, &cfg.branches);
        let embed = DataEmbedding::new("ts3.embed", cfg.c_in, cfg.d_model, cfg.dropout, &mut rng);
        let sgd = SgdLayer::new(plans[0].clone());
        let mut blocks = Vec::new();
        let mut mlp_blocks = Vec::new();
        for l in 0..cfg.n_blocks {
            if cfg.ablation.without_tf_block {
                mlp_blocks.push(Mlp::new(
                    &format!("ts3.mlp{l}"),
                    cfg.d_model,
                    cfg.d_model * 2,
                    cfg.d_model,
                    Activation::Gelu,
                    cfg.dropout,
                    &mut rng,
                ));
            } else {
                blocks.push(TfBlock::new(
                    &format!("ts3.block{l}"),
                    &plans,
                    cfg.d_model,
                    cfg.d_hidden,
                    &mut rng,
                ));
            }
        }
        let regular_head = PredictionHead::new(
            "ts3.head_r",
            cfg.lookback,
            cfg.horizon,
            cfg.d_model,
            cfg.c_in,
            &mut rng,
        );
        let fluct_head = PredictionHead::new(
            "ts3.head_f",
            cfg.lookback,
            cfg.horizon,
            cfg.d_model,
            cfg.c_in,
            &mut rng,
        );
        let trend_head = Autoregression::new(
            "ts3.head_t",
            cfg.lookback,
            cfg.horizon,
            cfg.lookback.max(32),
            &mut rng,
        );
        let display_name = match (cfg.ablation.without_td, cfg.ablation.without_tf_block) {
            (false, false) => "TS3Net".to_string(),
            (true, false) => "TS3Net w/o TD".to_string(),
            (false, true) => "TS3Net w/o TF-Block".to_string(),
            (true, true) => "TS3Net w/o Both".to_string(),
        };
        TS3Net {
            cfg,
            embed,
            plans,
            sgd,
            blocks,
            mlp_blocks,
            regular_head,
            fluct_head,
            trend_head,
            display_name,
        }
    }

    /// Run the backbone (S-GD + TF-Blocks) on an embedded representation,
    /// returning the final features and the accumulated fluctuant parts.
    fn backbone(&self, h0: Var, t_f: usize, ctx: &mut Ctx) -> (Var, Option<Var>) {
        let mut h = h0;
        let mut fluct_sum: Option<Var> = None;
        let n = self.cfg.n_blocks;
        for l in 0..n {
            let h_in = if self.cfg.ablation.without_td {
                h.clone()
            } else {
                let out = self.sgd.forward(&h, t_f);
                fluct_sum = Some(match fluct_sum {
                    Some(acc) => acc.add(&out.fluctuant_2d),
                    None => out.fluctuant_2d,
                });
                out.regular
            };
            h = if self.cfg.ablation.without_tf_block {
                self.mlp_blocks[l].forward(&h_in, ctx).add(&h_in)
            } else {
                self.blocks[l].forward(&h_in, ctx)
            };
        }
        (h, fluct_sum)
    }

    /// The CWT plans (exposed for the imputer and diagnostics).
    pub fn plans(&self) -> &[Rc<CwtPlan>] {
        &self.plans
    }
}

impl ForecastModel for TS3Net {
    fn forecast(&self, x: &Tensor, ctx: &mut Ctx) -> Var {
        assert_eq!(x.rank(), 3, "TS3Net expects [B, T, C]");
        assert_eq!(x.shape()[1], self.cfg.lookback, "lookback mismatch");
        assert_eq!(x.shape()[2], self.cfg.c_in, "channel mismatch");
        let mut _s = ts3_obs::span("ts3net.forecast");
        if _s.active() {
            _s.field("b", x.shape()[0]);
            _s.field("lookback", self.cfg.lookback);
            _s.field("horizon", self.cfg.horizon);
            ts3_obs::counter_add("ts3net.forecast.calls", 1);
        }
        if self.cfg.ablation.without_td {
            // Ablation: no decomposition at all — plain backbone + head.
            let h0 = self.embed.forward(&Var::constant(x.clone()), ctx);
            let (h, _) = self.backbone(h0, 0, ctx);
            return self.regular_head.forward(&h, ctx);
        }
        // (1) Trend decomposition (Eq. 1).
        let (trend, seasonal) = batch_trend_split(x, &DEFAULT_TREND_KERNELS);
        // (2) Dominant sub-series length T_f (Eq. 2). Clamped to T/2: the
        // spectrum gradient needs u = T / T_f >= 2 sub-series to have any
        // chunk difference at all.
        let t_f = self
            .cfg
            .t_f
            .unwrap_or_else(|| batch_dominant_period(&seasonal))
            .clamp(2, (self.cfg.lookback / 2).max(2));
        // (3) Seasonal branch through the S-GD / TF-Block stack.
        let h0 = self.embed.forward(&Var::constant(seasonal), ctx);
        let (h, fluct_sum) = self.backbone(h0, t_f, ctx);
        // (4) Heads (Eq. 14-16).
        let y_regular = self.regular_head.forward(&h, ctx);
        let y_trend = self.trend_head.forward(&Var::constant(trend), ctx);
        let mut y = y_regular.add(&y_trend);
        if let Some(f2d) = fluct_sum {
            let f1d = iwt(&f2d, &self.plans[0]);
            let y_fluct = self.fluct_head.forward(&f1d, ctx);
            y = y.add(&y_fluct);
        }
        // (5) Eq. 17: sum of the three component forecasts.
        y
    }

    fn parameters(&self) -> Vec<Param> {
        let mut p = self.embed.params();
        for b in &self.blocks {
            p.extend(b.params());
        }
        for m in &self.mlp_blocks {
            p.extend(m.params());
        }
        p.extend(self.regular_head.params());
        if !self.cfg.ablation.without_td {
            p.extend(self.fluct_head.params());
            p.extend(self.trend_head.params());
        }
        p
    }

    fn name(&self) -> &str {
        &self.display_name
    }

    // Staged lowering for `CompiledPlan`: the eager forward above, cut at
    // its natural seams. Slot layout: 0 = trend, 1 = seasonal, 2 = the
    // running feature map `h`, 3 = the accumulated fluctuant 2-D part;
    // scalar 0 = the dominant sub-series length `T_f`. Each stage re-runs
    // exactly the tensor computation the eager path runs on the same
    // values, so plan outputs stay bitwise identical.

    fn plan_slots(&self) -> usize {
        4
    }

    fn plan_stages(&self) -> Vec<String> {
        let mut stages = Vec::new();
        if !self.cfg.ablation.without_td {
            stages.push("trend_split".to_string());
            stages.push("select_t_f".to_string());
        }
        stages.push("embed".to_string());
        for l in 0..self.cfg.n_blocks {
            stages.push(format!("block{l}"));
        }
        stages.push("heads".to_string());
        stages
    }

    fn run_plan_stage(&self, idx: usize, st: &mut PlanState) {
        let mut ctx = Ctx::eval();
        let pre = if self.cfg.ablation.without_td { 0 } else { 2 };
        if !self.cfg.ablation.without_td && idx == 0 {
            // Stage "trend_split" (Eq. 1).
            let (trend, seasonal) = batch_trend_split(st.input(), &DEFAULT_TREND_KERNELS);
            st.set_slot(0, trend);
            st.set_slot(1, seasonal);
            return;
        }
        if !self.cfg.ablation.without_td && idx == 1 {
            // Stage "select_t_f" (Eq. 2), same clamp as the eager path.
            let t_f = self
                .cfg
                .t_f
                .unwrap_or_else(|| batch_dominant_period(st.slot(1)))
                .clamp(2, (self.cfg.lookback / 2).max(2));
            st.set_scalar(0, t_f);
            return;
        }
        if idx == pre {
            // Stage "embed".
            let x = if self.cfg.ablation.without_td {
                st.input().clone()
            } else {
                st.slot(1).clone()
            };
            let h0 = self.embed.forward(&Var::constant(x), &mut ctx);
            st.set_slot(2, h0.value().clone());
            return;
        }
        let block_idx = idx - pre - 1;
        if block_idx < self.cfg.n_blocks {
            // Stage "block{l}": one S-GD + TF-Block (or MLP) step of the
            // backbone loop.
            let h = Var::constant(st.slot(2).clone());
            let h_in = if self.cfg.ablation.without_td {
                h
            } else {
                let out = self.sgd.forward(&h, st.scalar(0));
                let acc = if st.has_slot(3) {
                    Var::constant(st.slot(3).clone()).add(&out.fluctuant_2d)
                } else {
                    out.fluctuant_2d
                };
                st.set_slot(3, acc.value().clone());
                out.regular
            };
            let h_next = if self.cfg.ablation.without_tf_block {
                self.mlp_blocks[block_idx].forward(&h_in, &mut ctx).add(&h_in)
            } else {
                self.blocks[block_idx].forward(&h_in, &mut ctx)
            };
            st.set_slot(2, h_next.value().clone());
            return;
        }
        // Stage "heads" (Eq. 14-17).
        let h = Var::constant(st.slot(2).clone());
        let y_regular = self.regular_head.forward(&h, &mut ctx);
        if self.cfg.ablation.without_td {
            st.set_output(y_regular.value().clone());
            return;
        }
        let y_trend = self.trend_head.forward(&Var::constant(st.slot(0).clone()), &mut ctx);
        let mut y = y_regular.add(&y_trend);
        if st.has_slot(3) {
            let f1d = iwt(&Var::constant(st.slot(3).clone()), &self.plans[0]);
            let y_fluct = self.fluct_head.forward(&f1d, &mut ctx);
            y = y.add(&y_fluct);
        }
        st.set_output(y.value().clone());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Ablation;

    fn small_cfg() -> TS3NetConfig {
        let mut cfg = TS3NetConfig::scaled(3, 24, 12);
        cfg.lambda = 4;
        cfg.d_model = 4;
        cfg.d_hidden = 4;
        cfg
    }

    fn batch(b: usize, t: usize, c: usize, seed: u64) -> Tensor {
        // Periodic + trend mixture so decomposition paths are exercised.
        let mut data = Vec::with_capacity(b * t * c);
        for bi in 0..b {
            for ti in 0..t {
                for ci in 0..c {
                    let tf = ti as f32 + seed as f32;
                    data.push(
                        0.02 * tf
                            + (std::f32::consts::TAU * tf / 8.0 + bi as f32 + ci as f32).sin(),
                    );
                }
            }
        }
        Tensor::from_vec(data, &[b, t, c])
    }

    #[test]
    fn forecast_shape() {
        let model = TS3Net::new(small_cfg(), 1);
        let mut ctx = Ctx::eval();
        let y = model.forecast(&batch(2, 24, 3, 0), &mut ctx);
        assert_eq!(y.shape(), &[2, 12, 3]);
        assert!(y.value().all_finite());
    }

    #[test]
    fn batch_dominant_period_finds_cycle() {
        let t = 48;
        let mut data = Vec::new();
        for _b in 0..2 {
            for ti in 0..t {
                data.push((std::f32::consts::TAU * ti as f32 / 12.0).sin());
            }
        }
        let x = Tensor::from_vec(data, &[2, t, 1]);
        assert_eq!(batch_dominant_period(&x), 12);
    }

    #[test]
    fn batch_trend_split_is_exact() {
        let x = batch(2, 30, 2, 3);
        let (trend, seasonal) = batch_trend_split(&x, &[13, 17]);
        assert!(trend.add(&seasonal).allclose(&x, 1e-4));
    }

    #[test]
    fn all_parameters_receive_gradients() {
        let model = TS3Net::new(small_cfg(), 2);
        let mut ctx = Ctx::train(0);
        let x = batch(1, 24, 3, 1);
        let target = Tensor::zeros(&[1, 12, 3]);
        let loss = model.forecast(&x, &mut ctx).mse_loss(&target);
        for p in model.parameters() {
            p.zero_grad();
        }
        loss.backward();
        for p in model.parameters() {
            assert!(p.grad_norm() > 0.0, "no gradient for {}", p.name());
        }
    }

    #[test]
    fn training_reduces_loss() {
        let model = TS3Net::new(small_cfg(), 3);
        let mut ctx = Ctx::train(0);
        let x = batch(2, 24, 3, 2);
        let target = batch(2, 12, 3, 9).mul_scalar(0.5);
        let mut first = 0.0;
        let mut last = 0.0;
        for step in 0..5 {
            let loss = model.forecast(&x, &mut ctx).mse_loss(&target);
            if step == 0 {
                first = loss.value().item();
            }
            last = loss.value().item();
            for p in model.parameters() {
                p.zero_grad();
            }
            loss.backward();
            for p in model.parameters() {
                p.update_with(|v, g| v.axpy(-0.01, g));
            }
        }
        assert!(last < first, "loss did not decrease: {first} -> {last}");
    }

    #[test]
    fn ablations_build_and_run() {
        for ab in [Ablation::NO_TD, Ablation::NO_TF, Ablation::NO_BOTH] {
            let cfg = small_cfg().with_ablation(ab);
            let model = TS3Net::new(cfg, 4);
            let mut ctx = Ctx::eval();
            let y = model.forecast(&batch(1, 24, 3, 0), &mut ctx);
            assert_eq!(y.shape(), &[1, 12, 3], "{ab:?}");
            assert!(y.value().all_finite(), "{ab:?}");
        }
    }

    #[test]
    fn ablation_names_are_distinct() {
        let names: Vec<String> = [
            Ablation::FULL,
            Ablation::NO_TD,
            Ablation::NO_TF,
            Ablation::NO_BOTH,
        ]
        .iter()
        .map(|&ab| TS3Net::new(small_cfg().with_ablation(ab), 0).name().to_string())
        .collect();
        assert_eq!(names.len(), 4);
        for i in 0..4 {
            for j in i + 1..4 {
                assert_ne!(names[i], names[j]);
            }
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let a = TS3Net::new(small_cfg(), 5);
        let b = TS3Net::new(small_cfg(), 5);
        let mut ctx1 = Ctx::eval();
        let mut ctx2 = Ctx::eval();
        let x = batch(1, 24, 3, 4);
        let ya = a.forecast(&x, &mut ctx1);
        let yb = b.forecast(&x, &mut ctx2);
        assert!(ya.value().allclose(yb.value(), 1e-6));
    }
}
