//! Differentiable wavelet operators: the fixed linear CWT amplitude map
//! and the inverse wavelet transform, wired into autograd through the
//! [`CustomOp`] extension point with hand-written adjoints.

use std::cell::RefCell;
use std::rc::Rc;
use ts3_autograd::{apply_custom, CustomOp, Var};
use ts3_signal::CwtPlan;
use ts3_tensor::Tensor;

const AMP_EPS: f32 = 1e-8;

/// `Amp(WT(x))` over a `[B, T, D]` input, producing `[B, D, lambda, T]`
/// (channel-major layout ready for 2-D convolution).
///
/// Forward caches the complex coefficients so the backward pass reuses
/// them: with `a = sqrt(re^2 + im^2 + eps)`, the VJP is
/// `adjoint(g * re / a, g * im / a)` per (batch, channel) lane.
struct CwtAmpOp {
    plan: Rc<CwtPlan>,
    cache: RefCell<Option<(Vec<f32>, Vec<f32>)>>, // flattened re/im, [B*D][lambda*T]
}

impl CustomOp for CwtAmpOp {
    fn name(&self) -> &str {
        "cwt_amp"
    }

    fn forward(&self, inputs: &[&Tensor]) -> Tensor {
        let x = inputs[0];
        assert_eq!(x.rank(), 3, "cwt_amp expects [B, T, D]");
        let (b, t, d) = (x.shape()[0], x.shape()[1], x.shape()[2]);
        assert_eq!(t, self.plan.t_len, "cwt_amp: plan built for T={}, got {t}", self.plan.t_len);
        let lambda = self.plan.lambda;
        let lanes = b * d;
        let lane_len = lambda * t;
        let mut re_all = vec![0.0f32; lanes * lane_len];
        let mut im_all = vec![0.0f32; lanes * lane_len];
        let mut out = vec![0.0f32; b * d * lambda * t];
        let xs = x.as_slice();
        for bi in 0..b {
            for di in 0..d {
                let lane = bi * d + di;
                let col: Vec<f32> = (0..t).map(|ti| xs[(bi * t + ti) * d + di]).collect();
                let (re, im) = self.plan.forward_complex(&col);
                let base = lane * lane_len;
                re_all[base..base + lane_len].copy_from_slice(&re);
                im_all[base..base + lane_len].copy_from_slice(&im);
                let out_base = (bi * d + di) * lane_len;
                for j in 0..lane_len {
                    out[out_base + j] = (re[j] * re[j] + im[j] * im[j] + AMP_EPS).sqrt();
                }
            }
        }
        *self.cache.borrow_mut() = Some((re_all, im_all));
        Tensor::from_vec(out, &[b, d, lambda, t])
    }

    fn backward(&self, grad: &Tensor, inputs: &[&Tensor]) -> Vec<Option<Tensor>> {
        let x = inputs[0];
        let (b, t, d) = (x.shape()[0], x.shape()[1], x.shape()[2]);
        let lambda = self.plan.lambda;
        let lane_len = lambda * t;
        let cache = self.cache.borrow();
        let (re_all, im_all) = cache
            .as_ref()
            // ts3-lint: allow(no-unwrap-in-lib) autograd runs backward only after forward, which populates this cache
            .expect("cwt_amp backward called before forward");
        let gs = grad.as_slice();
        let mut gx = vec![0.0f32; b * t * d];
        for bi in 0..b {
            for di in 0..d {
                let lane = bi * d + di;
                let base = lane * lane_len;
                let gbase = (bi * d + di) * lane_len;
                let mut g_re = vec![0.0f32; lane_len];
                let mut g_im = vec![0.0f32; lane_len];
                for j in 0..lane_len {
                    let re = re_all[base + j];
                    let im = im_all[base + j];
                    let a = (re * re + im * im + AMP_EPS).sqrt();
                    let g = gs[gbase + j];
                    g_re[j] = g * re / a;
                    g_im[j] = g * im / a;
                }
                let lane_grad = self.plan.adjoint(&g_re, &g_im);
                for (ti, &v) in lane_grad.iter().enumerate() {
                    gx[(bi * t + ti) * d + di] += v;
                }
            }
        }
        vec![Some(Tensor::from_vec(gx, &[b, t, d]))]
    }
}

/// Differentiable `Amp(WT(x))`: `[B, T, D] -> [B, D, lambda, T]`.
pub fn cwt_amplitude(x: &Var, plan: &Rc<CwtPlan>) -> Var {
    apply_custom(
        Rc::new(CwtAmpOp { plan: plan.clone(), cache: RefCell::new(None) }),
        &[x],
    )
}

/// Linear inverse wavelet transform `IWT` (Eq. 9) over `[B, D, lambda, T]`
/// coefficients, producing `[B, T, D]`.
struct IwtOp {
    plan: Rc<CwtPlan>,
}

impl CustomOp for IwtOp {
    fn name(&self) -> &str {
        "iwt"
    }

    fn forward(&self, inputs: &[&Tensor]) -> Tensor {
        let w = inputs[0];
        assert_eq!(w.rank(), 4, "iwt expects [B, D, lambda, T]");
        let (b, d, lambda, t) = (w.shape()[0], w.shape()[1], w.shape()[2], w.shape()[3]);
        assert_eq!(lambda, self.plan.lambda, "iwt: lambda mismatch");
        assert_eq!(t, self.plan.t_len, "iwt: T mismatch");
        let ws = w.as_slice();
        let lane_len = lambda * t;
        let mut out = vec![0.0f32; b * t * d];
        for bi in 0..b {
            for di in 0..d {
                let base = (bi * d + di) * lane_len;
                let x = self.plan.inverse(&ws[base..base + lane_len]);
                for (ti, &v) in x.iter().enumerate() {
                    out[(bi * t + ti) * d + di] = v;
                }
            }
        }
        Tensor::from_vec(out, &[b, t, d])
    }

    fn backward(&self, grad: &Tensor, inputs: &[&Tensor]) -> Vec<Option<Tensor>> {
        let w = inputs[0];
        let (b, d, lambda, t) = (w.shape()[0], w.shape()[1], w.shape()[2], w.shape()[3]);
        let gs = grad.as_slice();
        let lane_len = lambda * t;
        let mut gw = vec![0.0f32; b * d * lane_len];
        for bi in 0..b {
            for di in 0..d {
                let lane: Vec<f32> = (0..t).map(|ti| gs[(bi * t + ti) * d + di]).collect();
                let back = self.plan.inverse_adjoint(&lane);
                let base = (bi * d + di) * lane_len;
                gw[base..base + lane_len].copy_from_slice(&back);
            }
        }
        vec![Some(Tensor::from_vec(gw, &[b, d, lambda, t]))]
    }
}

/// Differentiable `IWT`: `[B, D, lambda, T] -> [B, T, D]`.
pub fn iwt(w: &Var, plan: &Rc<CwtPlan>) -> Var {
    apply_custom(Rc::new(IwtOp { plan: plan.clone() }), &[w])
}

#[cfg(test)]
mod tests {
    use super::*;
    use ts3_autograd::gradcheck_var;
    use ts3_signal::WaveletKind;

    fn plan(t: usize, lambda: usize) -> Rc<CwtPlan> {
        Rc::new(CwtPlan::new(t, lambda, WaveletKind::ComplexGaussian))
    }

    #[test]
    fn cwt_amplitude_shape_and_positivity() {
        let p = plan(32, 4);
        let x = Var::constant(Tensor::randn(&[2, 32, 3], 1));
        let y = cwt_amplitude(&x, &p);
        assert_eq!(y.shape(), &[2, 3, 4, 32]);
        assert!(y.value().min() >= 0.0);
        assert!(y.value().all_finite());
    }

    #[test]
    fn cwt_amplitude_matches_plan_per_lane() {
        let p = plan(24, 3);
        let x = Tensor::randn(&[1, 24, 2], 2);
        let y = cwt_amplitude(&Var::constant(x.clone()), &p);
        // Channel 1 lane must equal the plan's amplitude of that column.
        let col: Vec<f32> = (0..24).map(|t| x.at(&[0, t, 1])).collect();
        let want = p.amplitude(&col);
        for li in 0..3 {
            for ti in 0..24 {
                let got = y.value().at(&[0, 1, li, ti]);
                let w = (want[li * 24 + ti].powi(2) + AMP_EPS).sqrt();
                assert!((got - w).abs() < 1e-4, "({li},{ti}): {got} vs {w}");
            }
        }
    }

    #[test]
    fn cwt_amplitude_gradcheck() {
        let p = plan(16, 3);
        let x = Tensor::randn(&[1, 16, 2], 3).mul_scalar(0.5);
        let report = gradcheck_var(
            |v| {
                let w = Var::constant(Tensor::randn(&[1, 2, 3, 16], 4));
                cwt_amplitude(v, &p).mul(&w).sum()
            },
            &x,
            1e-2,
        );
        assert!(report.max_rel_err < 5e-2, "rel err {}", report.max_rel_err);
    }

    #[test]
    fn iwt_shape_and_linearity() {
        let p = plan(20, 4);
        let a = Tensor::randn(&[1, 2, 4, 20], 5);
        let b = Tensor::randn(&[1, 2, 4, 20], 6);
        let ya = iwt(&Var::constant(a.clone()), &p);
        let yb = iwt(&Var::constant(b.clone()), &p);
        let yab = iwt(&Var::constant(a.add(&b)), &p);
        assert_eq!(ya.shape(), &[1, 20, 2]);
        assert!(ya.value().add(yb.value()).allclose(yab.value(), 1e-4));
    }

    #[test]
    fn iwt_gradcheck() {
        let p = plan(12, 3);
        let w = Tensor::randn(&[1, 1, 3, 12], 7).mul_scalar(0.5);
        let report = gradcheck_var(
            |v| {
                let m = Var::constant(Tensor::randn(&[1, 12, 1], 8));
                iwt(v, &p).mul(&m).sum()
            },
            &w,
            1e-2,
        );
        assert!(report.max_rel_err < 2e-2, "rel err {}", report.max_rel_err);
    }

    #[test]
    fn iwt_of_wt_reconstructs_bandlimited() {
        // Through the Var ops: IWT(Re-part surrogate) uses amplitude, so
        // instead test adjoint-consistency: <IWT(w), g> == <w, IWT^T(g)>.
        let p = plan(16, 4);
        let w = Tensor::randn(&[1, 1, 4, 16], 9);
        let g = Tensor::randn(&[1, 16, 1], 10);
        let y = iwt(&Var::constant(w.clone()), &p);
        let lhs: f32 = y
            .value()
            .as_slice()
            .iter()
            .zip(g.as_slice())
            .map(|(a, b)| a * b)
            .sum();
        let yv = iwt(&Var::constant(w.clone()), &p);
        yv.backward_with(g.clone());
        // lhs should equal <w, grad_w> by linearity.
        let gw = {
            let v = Var::constant(w.clone());
            let out = iwt(&v, &p);
            out.backward_with(g);
            v.grad().unwrap()
        };
        let rhs: f32 = w.as_slice().iter().zip(gw.as_slice()).map(|(a, b)| a * b).sum();
        assert!((lhs - rhs).abs() < 1e-3 * lhs.abs().max(1.0), "{lhs} vs {rhs}");
    }
}
