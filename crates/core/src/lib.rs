//! # ts3net-core
//!
//! The paper's primary contribution: **TS3Net — Triple Decomposition with
//! Spectrum Gradient for Long-Term Time Series Analysis** (ICDE 2024),
//! implemented from scratch on the `ts3-tensor` / `ts3-autograd` /
//! `ts3-nn` / `ts3-signal` substrates.
//!
//! * [`ops`] — differentiable `Amp(WT(.))` and `IWT(.)` operators with
//!   hand-written adjoints (Eq. 5–9);
//! * [`sgd_layer`] — the Spectrum-Gradient Decomposition layer
//!   (Eq. 9–11);
//! * [`tf_block`] — the multi-branch Temporal-Frequency Block (Eq. 13);
//! * [`heads`] — prediction heads and the trend Autoregression (Eq.
//!   14–16);
//! * [`forecaster`] — the full TS3Net (Algorithm 1, Eq. 17) with the
//!   ablation variants of Table VI;
//! * [`imputer`] — the imputation-task variant (Table V);
//! * [`config`] — hyper-parameters (Table III) at paper scale and at the
//!   CPU-scaled reproduction profile;
//! * [`traits`] — the [`ForecastModel`] / [`ImputationModel`] interfaces
//!   shared with every baseline;
//! * [`plan`] — compiled inference plans ([`CompiledPlan`]): a frozen
//!   model lowered into ordered tape-free stages with snapshotted
//!   weights, bitwise identical to the eager forward.
//!
//! ```
//! use ts3net_core::{TS3Net, TS3NetConfig, ForecastModel};
//! use ts3_nn::Ctx;
//! use ts3_tensor::Tensor;
//!
//! let mut cfg = TS3NetConfig::scaled(3, 24, 12);
//! cfg.lambda = 4; cfg.d_model = 4; cfg.d_hidden = 4;
//! let model = TS3Net::new(cfg, 0);
//! let x = Tensor::randn(&[1, 24, 3], 7);
//! let y = model.forecast(&x, &mut Ctx::eval());
//! assert_eq!(y.shape(), &[1, 12, 3]);
//! ```

pub mod config;
pub mod forecaster;
pub mod heads;
pub mod imputer;
pub mod ops;
pub mod plan;
pub mod sgd_layer;
pub mod tf_block;
pub mod traits;

pub use config::{Ablation, TS3NetConfig};
pub use forecaster::{batch_dominant_period, batch_trend_split, TS3Net};
pub use heads::{Autoregression, PredictionHead, TimeLinear};
pub use imputer::TS3NetImputer;
pub use ops::{cwt_amplitude, iwt};
pub use plan::{CompiledPlan, PlanError, PlanState};
pub use sgd_layer::{SgdLayer, SgdOutput};
pub use tf_block::{branch_plans, TfBlock};
pub use traits::{ForecastModel, ImputationModel};
