//! The Temporal-Frequency Block (paper Eq. 13 / Fig. 2): a multi-branch
//! structure that expands the series into 2-D temporal-frequency
//! distributions under different wavelet generating functions, learns 2-D
//! representations with an inception conv backbone, folds them back to
//! 1-D, and merges the branches with learned softmax weights plus a
//! residual connection.

use crate::ops::cwt_amplitude;
use ts3_rng::rngs::StdRng;
use std::rc::Rc;
use ts3_autograd::{Param, Var};
use ts3_nn::{Ctx, InceptionBlock, Linear, Module};
use ts3_signal::{CwtPlan, WaveletKind};
use ts3_tensor::Tensor;

/// One wavelet branch: TF expansion -> conv backbone -> feed-forward fold.
struct Branch {
    plan: Rc<CwtPlan>,
    conv: InceptionBlock,
    fold: Linear,
}

impl Branch {
    fn forward(&self, x: &Var, ctx: &mut Ctx) -> Var {
        let (b, t, d) = (x.shape()[0], x.shape()[1], x.shape()[2]);
        let lambda = self.plan.lambda;
        // TF Learning Layer (Eq. 13, line 2): 1-D -> 2-D expansion.
        let tf = cwt_amplitude(x, &self.plan); // [B, D, lambda, T]
        // ConvBackbone (inception over the TF plane).
        let h = self.conv.forward(&tf, ctx); // [B, D, lambda, T]
        // FeedForward Layer: fold (D, lambda) per timestep back to D.
        let h = h.permute(&[0, 3, 1, 2]); // [B, T, D, lambda]
        let h = h.reshape(&[b, t, d * lambda]);
        self.fold.forward(&h, ctx) // [B, T, D]
    }
}

/// The TF-Block: `m` wavelet branches merged by learned softmax weights,
/// with a residual connection (Eq. 12–13).
pub struct TfBlock {
    branches: Vec<Branch>,
    merge_logits: Param,
}

impl TfBlock {
    /// Build a TF-Block for `[B, T, d_model]` inputs.
    ///
    /// `plans` supplies one prepared CWT plan per branch (they may differ
    /// in wavelet kind; all must share `T` and `lambda`).
    pub fn new(
        name: &str,
        plans: &[Rc<CwtPlan>],
        d_model: usize,
        d_hidden: usize,
        rng: &mut StdRng,
    ) -> Self {
        assert!(!plans.is_empty(), "TfBlock needs at least one branch");
        let branches = plans
            .iter()
            .enumerate()
            .map(|(i, plan)| Branch {
                plan: plan.clone(),
                conv: InceptionBlock::new(&format!("{name}.b{i}.conv"), d_model, d_hidden, rng),
                fold: Linear::new(
                    &format!("{name}.b{i}.fold"),
                    d_model * plan.lambda,
                    d_model,
                    true,
                    rng,
                ),
            })
            .collect();
        TfBlock {
            branches,
            merge_logits: Param::new(
                format!("{name}.merge"),
                Tensor::zeros(&[plans.len()]),
            ),
        }
    }

    /// Number of branches `m`.
    pub fn num_branches(&self) -> usize {
        self.branches.len()
    }
}

impl Module for TfBlock {
    fn forward(&self, x: &Var, ctx: &mut Ctx) -> Var {
        let outs: Vec<Var> = self.branches.iter().map(|br| br.forward(x, ctx)).collect();
        // Weight-learned Merge Layer: softmax over branch logits.
        let weights = self.merge_logits.var().softmax_last(); // [m]
        let mut merged: Option<Var> = None;
        for (i, out) in outs.iter().enumerate() {
            let w = weights.narrow(0, i, 1); // [1], broadcasts over [B,T,D]
            let term = out.mul(&w);
            merged = Some(match merged {
                Some(acc) => acc.add(&term),
                None => term,
            });
        }
        // Residual connection (Eq. 12).
        // ts3-lint: allow(no-unwrap-in-lib) the branch list is non-empty by construction, so the fold always produces a value
        merged.expect("at least one branch").add(x)
    }

    fn params(&self) -> Vec<Param> {
        let mut p: Vec<Param> = self
            .branches
            .iter()
            .flat_map(|b| {
                let mut v = b.conv.params();
                v.extend(b.fold.params());
                v
            })
            .collect();
        p.push(self.merge_logits.clone());
        p
    }
}

/// Build one CWT plan per requested wavelet kind.
pub fn branch_plans(t: usize, lambda: usize, kinds: &[WaveletKind]) -> Vec<Rc<CwtPlan>> {
    kinds
        .iter()
        .map(|&k| Rc::new(CwtPlan::new(t, lambda, k)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ts3_rng::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(21)
    }

    fn block(t: usize, lambda: usize, d: usize, m: usize) -> TfBlock {
        let kinds = &WaveletKind::ALL[..m];
        let plans = branch_plans(t, lambda, kinds);
        TfBlock::new("tf", &plans, d, 4, &mut rng())
    }

    #[test]
    fn tf_block_preserves_shape() {
        let b = block(24, 4, 6, 2);
        let mut ctx = Ctx::eval();
        let x = Var::constant(Tensor::randn(&[2, 24, 6], 1));
        let y = b.forward(&x, &mut ctx);
        assert_eq!(y.shape(), &[2, 24, 6]);
        assert!(y.value().all_finite());
        assert_eq!(b.num_branches(), 2);
    }

    #[test]
    fn tf_block_initial_output_is_residual_plus_learned() {
        // With zero merge logits the weights are uniform; output must not
        // equal the input (the branches contribute).
        let b = block(16, 3, 4, 2);
        let mut ctx = Ctx::eval();
        let x = Var::constant(Tensor::randn(&[1, 16, 4], 2));
        let y = b.forward(&x, &mut ctx);
        assert!(y.value().max_abs_diff(x.value()) > 1e-4);
    }

    #[test]
    fn tf_block_gradients_reach_all_params() {
        let b = block(16, 3, 4, 2);
        let mut ctx = Ctx::train(0);
        let x = Var::constant(Tensor::randn(&[1, 16, 4], 3).mul_scalar(0.5));
        let loss = b.forward(&x, &mut ctx).square().sum();
        for p in b.params() {
            p.zero_grad();
        }
        loss.backward();
        for p in b.params() {
            assert!(
                p.grad_norm() > 0.0,
                "parameter {} received no gradient",
                p.name()
            );
        }
    }

    #[test]
    fn tf_block_trains_toward_target() {
        let b = block(12, 3, 4, 1);
        let mut ctx = Ctx::train(0);
        let x = Var::constant(Tensor::randn(&[1, 12, 4], 4).mul_scalar(0.3));
        let target = Tensor::zeros(&[1, 12, 4]);
        let mut last = f32::INFINITY;
        let mut first = 0.0;
        for step in 0..6 {
            let loss = b.forward(&x, &mut ctx).mse_loss(&target);
            if step == 0 {
                first = loss.value().item();
            }
            last = loss.value().item();
            for p in b.params() {
                p.zero_grad();
            }
            loss.backward();
            for p in b.params() {
                p.update_with(|v, g| v.axpy(-0.05, g));
            }
        }
        assert!(last < first, "loss {first} -> {last}");
    }

    #[test]
    fn single_branch_weight_is_one() {
        let b = block(12, 2, 3, 1);
        // softmax of a single logit is 1.0 regardless of value.
        let w = b.merge_logits.var().softmax_last();
        assert_eq!(w.value().as_slice(), &[1.0]);
    }
}
