//! TS3Net for the imputation task (paper Table V): reconstruct randomly
//! masked points of a length-96 window using the same S-GD + TF-Block
//! backbone, with the reconstruction projected back to the channel space.

use crate::config::TS3NetConfig;
use crate::heads::PredictionHead;
use crate::ops::iwt;
use crate::sgd_layer::SgdLayer;
use crate::tf_block::{branch_plans, TfBlock};
use crate::traits::ImputationModel;
use ts3_rng::rngs::StdRng;
use ts3_rng::SeedableRng;
use std::rc::Rc;
use ts3_autograd::{Param, Var};
use ts3_nn::{Ctx, DataEmbedding, Module};
use ts3_signal::CwtPlan;
use ts3_tensor::Tensor;

/// TS3Net imputer: embedding -> (S-GD + TF-Block) x N -> channel
/// projection, with a parallel fluctuant reconstruction path.
pub struct TS3NetImputer {
    /// Model configuration (horizon is ignored; output length = lookback).
    pub cfg: TS3NetConfig,
    embed: DataEmbedding,
    plans: Vec<Rc<CwtPlan>>,
    sgd: SgdLayer,
    blocks: Vec<TfBlock>,
    head: PredictionHead,
    head_fluct: PredictionHead,
}

impl TS3NetImputer {
    /// Build the imputer, seeded deterministically. The sub-band count is
    /// clamped exactly as in [`crate::TS3Net::new`].
    pub fn new(mut cfg: TS3NetConfig, seed: u64) -> Self {
        cfg.lambda = cfg.lambda.min((cfg.lookback / 6).max(2));
        let mut rng = StdRng::seed_from_u64(seed);
        let plans = branch_plans(cfg.lookback, cfg.lambda, &cfg.branches);
        let embed =
            DataEmbedding::new("ts3i.embed", cfg.c_in, cfg.d_model, cfg.dropout, &mut rng);
        let sgd = SgdLayer::new(plans[0].clone());
        let blocks = (0..cfg.n_blocks)
            .map(|l| {
                TfBlock::new(&format!("ts3i.block{l}"), &plans, cfg.d_model, cfg.d_hidden, &mut rng)
            })
            .collect();
        // Zero-initialised time-mixing correction heads (Eq. 14 shape,
        // T -> T): the model starts exactly at the mean-fill
        // reconstruction and learns residual corrections.
        let head = PredictionHead::new(
            "ts3i.head",
            cfg.lookback,
            cfg.lookback,
            cfg.d_model,
            cfg.c_in,
            &mut rng,
        );
        head.zero_init_output();
        let head_fluct = PredictionHead::new(
            "ts3i.head_f",
            cfg.lookback,
            cfg.lookback,
            cfg.d_model,
            cfg.c_in,
            &mut rng,
        );
        head_fluct.zero_init_output();
        TS3NetImputer { cfg, embed, plans, sgd, blocks, head, head_fluct }
    }
}

impl ImputationModel for TS3NetImputer {
    fn impute(&self, masked: &Tensor, mask: &Tensor, ctx: &mut Ctx) -> Var {
        assert_eq!(masked.rank(), 3, "imputer expects [B, T, C]");
        assert_eq!(masked.shape(), mask.shape(), "mask shape mismatch");
        let mut _s = ts3_obs::span("ts3net.impute");
        if _s.active() {
            _s.field("b", masked.shape()[0]);
            _s.field("t", masked.shape()[1]);
            _s.field("c", masked.shape()[2]);
            ts3_obs::counter_add("ts3net.impute.calls", 1);
        }
        // Observed-mean fill: replace hidden zeros with each channel's
        // observed mean so the spectral analysis is not biased toward 0.
        let t = masked.shape()[1];
        let filled = ts3_nn::mean_fill(masked, mask);
        // Clamp to T/2 so the spectrum gradient has >= 2 chunks to
        // difference (see TS3Net::forecast).
        let t_f = crate::forecaster::batch_dominant_period(&filled).clamp(2, (t / 2).max(2));
        let h0 = self.embed.forward(&Var::constant(filled.clone()), ctx);
        let mut h = h0;
        let mut fluct_sum: Option<Var> = None;
        for block in &self.blocks {
            let out = self.sgd.forward(&h, t_f);
            fluct_sum = Some(match fluct_sum {
                Some(acc) => acc.add(&out.fluctuant_2d),
                None => out.fluctuant_2d,
            });
            h = block.forward(&out.regular, ctx);
        }
        // Residual reconstruction: start from the mean-filled input and
        // learn corrections — observed points only need the identity.
        let mut y = Var::constant(filled).add(&self.head.forward(&h, ctx));
        if let Some(f2d) = fluct_sum {
            let f1d = iwt(&f2d, &self.plans[0]);
            y = y.add(&self.head_fluct.forward(&f1d, ctx));
        }
        y
    }

    fn parameters(&self) -> Vec<Param> {
        let mut p = self.embed.params();
        for b in &self.blocks {
            p.extend(b.params());
        }
        p.extend(self.head.params());
        p.extend(self.head_fluct.params());
        p
    }

    fn name(&self) -> &str {
        "TS3Net"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::TS3NetConfig;

    fn cfg() -> TS3NetConfig {
        let mut c = TS3NetConfig::scaled(2, 24, 24);
        c.lambda = 4;
        c.d_model = 4;
        c.d_hidden = 4;
        c.n_blocks = 1;
        c.dropout = 0.0; // deterministic loss for the training test
        c
    }

    fn masked_pair(b: usize, t: usize, c: usize) -> (Tensor, Tensor) {
        let mut x = Vec::new();
        for _ in 0..b {
            for ti in 0..t {
                for ci in 0..c {
                    x.push((std::f32::consts::TAU * ti as f32 / 8.0 + ci as f32).sin());
                }
            }
        }
        let x = Tensor::from_vec(x, &[b, t, c]);
        let mask = Tensor::from_vec(
            (0..b * t * c).map(|i| if i % 4 == 0 { 1.0 } else { 0.0 }).collect(),
            &[b, t, c],
        );
        let keep = mask.map(|m| 1.0 - m);
        (x.mul(&keep), mask)
    }

    #[test]
    fn impute_output_shape() {
        let model = TS3NetImputer::new(cfg(), 1);
        let (masked, mask) = masked_pair(2, 24, 2);
        let mut ctx = Ctx::eval();
        let y = model.impute(&masked, &mask, &mut ctx);
        assert_eq!(y.shape(), &[2, 24, 2]);
        assert!(y.value().all_finite());
    }

    #[test]
    fn imputer_trains_on_masked_loss() {
        let model = TS3NetImputer::new(cfg(), 2);
        let (masked, mask) = masked_pair(1, 24, 2);
        let target = {
            // Reconstruct the original (periodic) series.
            let mut x = Vec::new();
            for ti in 0..24 {
                for ci in 0..2 {
                    x.push((std::f32::consts::TAU * ti as f32 / 8.0 + ci as f32).sin());
                }
            }
            Tensor::from_vec(x, &[1, 24, 2])
        };
        let mut ctx = Ctx::train(0);
        let mut first = 0.0;
        let mut last = 0.0;
        for step in 0..10 {
            let loss = model
                .impute(&masked, &mask, &mut ctx)
                .masked_mse_loss(&target, &mask);
            if step == 0 {
                first = loss.value().item();
            }
            last = loss.value().item();
            for p in model.parameters() {
                p.zero_grad();
            }
            loss.backward();
            for p in model.parameters() {
                p.update_with(|v, g| v.axpy(-0.005, g));
            }
        }
        assert!(last < first, "masked loss {first} -> {last}");
    }

    #[test]
    fn parameters_are_nonempty_and_named() {
        let model = TS3NetImputer::new(cfg(), 3);
        let params = model.parameters();
        assert!(params.len() > 4);
        assert_eq!(model.name(), "TS3Net");
    }
}
