//! The [`Json`] value tree and its constructors / accessors.

/// A parsed or under-construction JSON document.
///
/// Objects preserve insertion order (a plain `Vec` of pairs — the
/// documents in this workspace are small and ordered output diffs
/// cleanly); key lookup is linear.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (see the crate docs for the f32 round-trip policy).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object: ordered key → value pairs.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Build an object from `(key, value)` pairs.
    pub fn obj<K: Into<String>, const N: usize>(pairs: [(K, Json); N]) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.into(), v)).collect())
    }

    /// Append a key → value pair. No-op unless `self` is an object.
    pub fn insert(&mut self, key: impl Into<String>, value: Json) {
        if let Json::Obj(pairs) = self {
            pairs.push((key.into(), value));
        }
    }

    /// Object field lookup (first match; `None` for non-objects).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The boolean payload, if this is a `Bool`.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The numeric payload, if this is a `Num`.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(v) => Some(*v),
            _ => None,
        }
    }

    /// The numeric payload narrowed to `f32`.
    pub fn as_f32(&self) -> Option<f32> {
        self.as_f64().map(|v| v as f32)
    }

    /// The numeric payload as a `usize`, if it is a non-negative integer.
    pub fn as_usize(&self) -> Option<usize> {
        match self {
            Json::Num(v) if *v >= 0.0 && v.fract() == 0.0 && *v <= usize::MAX as f64 => {
                Some(*v as usize)
            }
            _ => None,
        }
    }

    /// The string payload, if this is a `Str`.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The element list, if this is an `Arr`.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The key → value pairs, if this is an `Obj`.
    pub fn as_object(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(pairs) => Some(pairs),
            _ => None,
        }
    }
}

impl From<bool> for Json {
    fn from(v: bool) -> Json {
        Json::Bool(v)
    }
}

impl From<f64> for Json {
    fn from(v: f64) -> Json {
        Json::Num(v)
    }
}

impl From<f32> for Json {
    fn from(v: f32) -> Json {
        Json::Num(v as f64)
    }
}

impl From<usize> for Json {
    fn from(v: usize) -> Json {
        Json::Num(v as f64)
    }
}

impl From<u64> for Json {
    fn from(v: u64) -> Json {
        Json::Num(v as f64)
    }
}

impl From<i64> for Json {
    fn from(v: i64) -> Json {
        Json::Num(v as f64)
    }
}

impl From<&str> for Json {
    fn from(v: &str) -> Json {
        Json::Str(v.to_string())
    }
}

impl From<String> for Json {
    fn from(v: String) -> Json {
        Json::Str(v)
    }
}

impl<T: Into<Json>> FromIterator<T> for Json {
    fn from_iter<I: IntoIterator<Item = T>>(iter: I) -> Json {
        Json::Arr(iter.into_iter().map(Into::into).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors_match_variants() {
        let doc = Json::obj([
            ("b", Json::from(true)),
            ("n", Json::from(1.5f32)),
            ("i", Json::from(7usize)),
            ("s", Json::from("hi")),
            ("a", Json::from_iter([1.0f32, 2.0])),
        ]);
        assert_eq!(doc.get("b").unwrap().as_bool(), Some(true));
        assert_eq!(doc.get("n").unwrap().as_f32(), Some(1.5));
        assert_eq!(doc.get("i").unwrap().as_usize(), Some(7));
        assert_eq!(doc.get("s").unwrap().as_str(), Some("hi"));
        assert_eq!(doc.get("a").unwrap().as_array().unwrap().len(), 2);
        assert!(doc.get("missing").is_none());
        assert_eq!(doc.as_object().unwrap().len(), 5);
    }

    #[test]
    fn as_usize_rejects_fractions_and_negatives() {
        assert_eq!(Json::Num(2.5).as_usize(), None);
        assert_eq!(Json::Num(-1.0).as_usize(), None);
        assert_eq!(Json::Num(0.0).as_usize(), Some(0));
    }

    #[test]
    fn insert_extends_objects_only() {
        let mut o = Json::obj::<&str, 0>([]);
        o.insert("k", Json::Null);
        assert_eq!(o.get("k"), Some(&Json::Null));
        let mut not_obj = Json::Null;
        not_obj.insert("k", Json::Null);
        assert_eq!(not_obj, Json::Null);
    }
}
