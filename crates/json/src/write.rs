//! Serialisation: compact and pretty writers.

use crate::value::Json;
use std::fmt;

impl Json {
    /// Compact serialisation (no whitespace).
    #[allow(clippy::inherent_to_string_shadow_display)] // same output as Display
    pub fn to_string(&self) -> String {
        let mut out = String::new();
        write_value(self, None, 0, &mut out);
        out
    }

    /// Pretty serialisation: two-space indentation, one key or element
    /// per line.
    pub fn to_string_pretty(&self) -> String {
        let mut out = String::new();
        write_value(self, Some(2), 0, &mut out);
        out
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_string())
    }
}

/// Shortest decimal for `v` under the crate's f32 round-trip policy:
/// exact-`f32` values print via `f32`'s shortest representation,
/// non-finite values print as `null`.
fn write_number(v: f64, out: &mut String) {
    use fmt::Write as _;
    if !v.is_finite() {
        out.push_str("null");
    } else if (v as f32) as f64 == v {
        let _ = write!(out, "{}", v as f32);
    } else {
        let _ = write!(out, "{v}");
    }
}

fn write_string(s: &str, out: &mut String) {
    use fmt::Write as _;
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn newline_indent(indent: Option<usize>, depth: usize, out: &mut String) {
    if let Some(width) = indent {
        out.push('\n');
        out.extend(std::iter::repeat(' ').take(width * depth));
    }
}

fn write_value(v: &Json, indent: Option<usize>, depth: usize, out: &mut String) {
    match v {
        Json::Null => out.push_str("null"),
        Json::Bool(true) => out.push_str("true"),
        Json::Bool(false) => out.push_str("false"),
        Json::Num(n) => write_number(*n, out),
        Json::Str(s) => write_string(s, out),
        Json::Arr(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(indent, depth + 1, out);
                write_value(item, indent, depth + 1, out);
            }
            if !items.is_empty() {
                newline_indent(indent, depth, out);
            }
            out.push(']');
        }
        Json::Obj(pairs) => {
            out.push('{');
            for (i, (k, item)) in pairs.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(indent, depth + 1, out);
                write_string(k, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(item, indent, depth + 1, out);
            }
            if !pairs.is_empty() {
                newline_indent(indent, depth, out);
            }
            out.push('}');
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compact_output_shapes() {
        let doc = Json::obj([
            ("a", Json::from_iter([1.0f32, 2.5])),
            ("s", Json::from("x\"y\n")),
            ("z", Json::Null),
        ]);
        assert_eq!(doc.to_string(), r#"{"a":[1,2.5],"s":"x\"y\n","z":null}"#);
    }

    #[test]
    fn f32_values_print_shortest() {
        // 0.1f32 as f64 is 0.10000000149011612; the writer must still
        // print "0.1" because the value is an exact f32.
        assert_eq!(Json::from(0.1f32).to_string(), "0.1");
        assert_eq!(Json::from(1.0f32).to_string(), "1");
        // A genuine f64 that is not an exact f32 keeps f64 precision.
        assert_eq!(Json::from(0.1f64).to_string(), "0.1");
        let fine = 1.0f64 + f64::EPSILON;
        assert_eq!(Json::from(fine).to_string(), format!("{fine}"));
    }

    #[test]
    fn non_finite_numbers_become_null() {
        assert_eq!(Json::from(f32::NAN).to_string(), "null");
        assert_eq!(Json::from(f64::INFINITY).to_string(), "null");
    }

    #[test]
    fn control_chars_escape_as_unicode() {
        let expected = String::from_utf8(vec![34, 92, 117, 48, 48, 48, 49, 34]).unwrap();
        assert_eq!(Json::from("\u{01}").to_string(), expected);
    }

    #[test]
    fn pretty_indents_nested_structures() {
        let doc = Json::obj([("k", Json::from_iter([1.0f32]))]);
        assert_eq!(doc.to_string_pretty(), "{\n  \"k\": [\n    1\n  ]\n}");
        assert_eq!(Json::obj::<&str, 0>([]).to_string_pretty(), "{}");
    }
}
