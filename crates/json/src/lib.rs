//! # ts3-json
//!
//! A deliberately small JSON library — one value type ([`Json`]), a
//! writer, and a strict recursive-descent parser — replacing
//! `serde`/`serde_json` so the workspace builds offline. It backs the
//! two places this repository speaks JSON:
//!
//! * **checkpoints** (`ts3-nn`): model weights as
//!   `{"params": {name: {"shape": [...], "data": [...]}}}`,
//! * **results emission** (`ts3-bench`): result tables mirrored to
//!   `results/<stem>.json` next to the canonical CSVs.
//!
//! ## Number round-trip policy
//!
//! Every numeric value in this workspace is an `f32`. [`Json::Num`]
//! stores `f64`, and the writer picks the **shortest decimal that
//! round-trips at `f32` precision** whenever the stored value is
//! exactly an `f32` (e.g. `0.1` instead of `0.10000000149011612`).
//! Consequence: parse → [`Json::as_f32`] returns bit-identical `f32`s
//! for checkpoint data, while genuine `f64`s that are *not* exact
//! `f32`s still print with full `f64` shortest-round-trip precision.
//! The parser applies the inverse mapping — a token that is exactly the
//! writer's rendering of an f32-promoted value parses back to that
//! promotion — so `parse(write(doc)) == doc` holds for f32-sourced
//! documents. Ambiguous tokens (`0.1` is both the shortest `f32` *and*
//! shortest `f64` rendering) resolve in favour of the `f32` reading.
//! Non-finite numbers serialise as `null` (as `serde_json` did).
//!
//! ## Example
//!
//! ```
//! use ts3_json::Json;
//!
//! let doc = Json::obj([
//!     ("name", Json::from("ts3")),
//!     ("shape", Json::from_iter([2usize, 3])),
//!     ("ok", Json::from(true)),
//! ]);
//! let text = doc.to_string();
//! let back = Json::parse(&text).unwrap();
//! assert_eq!(back.get("shape").unwrap().as_array().unwrap().len(), 2);
//! assert_eq!(back, doc);
//! ```

mod parse;
mod value;
mod write;

pub use parse::ParseError;
pub use value::Json;
