//! Strict recursive-descent JSON parser.
//!
//! Accepts exactly the JSON grammar (RFC 8259): one top-level value,
//! no trailing garbage, no comments, no trailing commas. Nesting depth
//! is capped so hostile inputs cannot overflow the stack.

use crate::value::Json;
use std::fmt;

/// Maximum array/object nesting depth.
const MAX_DEPTH: usize = 128;

/// A parse failure: byte offset plus message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset into the input at which parsing failed.
    pub pos: usize,
    /// Human-readable description.
    pub msg: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON parse error at byte {}: {}", self.pos, self.msg)
    }
}

impl std::error::Error for ParseError {}

impl Json {
    /// Parse a complete JSON document.
    pub fn parse(text: &str) -> Result<Json, ParseError> {
        let mut p = Parser { bytes: text.as_bytes(), pos: 0 };
        p.skip_ws();
        let value = p.value(0)?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after document"));
        }
        Ok(value)
    }
}

/// Inverse of the writer's f32-shortest number policy: if the token is
/// exactly how the writer renders an f32-promoted value, store that
/// promotion so `parse(write(doc)) == doc` for f32-sourced documents
/// (the only kind this workspace writes). Ambiguous tokens like `0.1`
/// resolve in favour of the f32 reading, as documented in the crate
/// root.
fn normalise_number(text: &str, v: f64) -> f64 {
    let narrowed = v as f32;
    if narrowed.is_finite() && format!("{narrowed}") == text {
        narrowed as f64
    } else {
        v
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: impl Into<String>) -> ParseError {
        ParseError { pos: self.pos, msg: msg.into() }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect_byte(&mut self, b: u8) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected `{}`", b as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, ParseError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(format!("expected `{word}`")))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, ParseError> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object(depth),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(c) => Err(self.err(format!("unexpected `{}`", c as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn array(&mut self, depth: usize) -> Result<Json, ParseError> {
        self.expect_byte(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, ParseError> {
        self.expect_byte(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect_byte(b':')?;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }

    fn number(&mut self) -> Result<Json, ParseError> {
        let start = self.pos;
        while matches!(
            self.peek(),
            Some(b'-' | b'+' | b'.' | b'e' | b'E' | b'0'..=b'9')
        ) {
            self.pos += 1;
        }
        // ts3-lint: allow(no-unwrap-in-lib) the scanned span holds only ASCII number bytes, always valid UTF-8
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii span");
        match text.parse::<f64>() {
            // `f64::parse` accepts "inf"/"nan" spellings, but those
            // never make it here: the scanner only consumes JSON number
            // characters.
            Ok(v) => Ok(Json::Num(normalise_number(text, v))),
            Err(_) => Err(ParseError { pos: start, msg: format!("invalid number `{text}`") }),
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect_byte(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{08}'),
                        Some(b'f') => out.push('\u{0C}'),
                        Some(b'u') => {
                            self.pos += 1;
                            let c = self.unicode_escape()?;
                            out.push(c);
                            continue;
                        }
                        _ => return Err(self.err("invalid escape sequence")),
                    }
                    self.pos += 1;
                }
                Some(c) if c < 0x20 => {
                    return Err(self.err("unescaped control character in string"));
                }
                Some(_) => {
                    // Consume one full UTF-8 scalar (input is &str, so
                    // the byte stream is valid UTF-8 by construction).
                    // ts3-lint: allow(no-unwrap-in-lib) input arrived as &str, so the remaining bytes are valid UTF-8
                    let rest = std::str::from_utf8(&self.bytes[self.pos..]).expect("valid utf8");
                    // ts3-lint: allow(no-unwrap-in-lib) peek() returned Some, so the decoded remainder is non-empty
                    let c = rest.chars().next().expect("non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    /// Four hex digits after `\u`, combining surrogate pairs.
    fn unicode_escape(&mut self) -> Result<char, ParseError> {
        let first = self.hex4()?;
        let code = if (0xD800..0xDC00).contains(&first) {
            // High surrogate: a low surrogate escape must follow.
            if self.peek() == Some(b'\\') && self.bytes.get(self.pos + 1) == Some(&b'u') {
                self.pos += 2;
                let low = self.hex4()?;
                if !(0xDC00..0xE000).contains(&low) {
                    return Err(self.err("invalid low surrogate"));
                }
                0x10000 + ((first - 0xD800) << 10) + (low - 0xDC00)
            } else {
                return Err(self.err("lone high surrogate"));
            }
        } else if (0xDC00..0xE000).contains(&first) {
            return Err(self.err("lone low surrogate"));
        } else {
            first
        };
        char::from_u32(code).ok_or_else(|| self.err("invalid unicode scalar"))
    }

    fn hex4(&mut self) -> Result<u32, ParseError> {
        let mut code = 0u32;
        for _ in 0..4 {
            let d = match self.peek() {
                Some(c @ b'0'..=b'9') => (c - b'0') as u32,
                Some(c @ b'a'..=b'f') => (c - b'a' + 10) as u32,
                Some(c @ b'A'..=b'F') => (c - b'A' + 10) as u32,
                _ => return Err(self.err("expected 4 hex digits")),
            };
            code = code * 16 + d;
            self.pos += 1;
        }
        Ok(code)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(Json::parse("null").unwrap(), Json::Null);
        assert_eq!(Json::parse(" true ").unwrap(), Json::Bool(true));
        assert_eq!(Json::parse("false").unwrap(), Json::Bool(false));
        assert_eq!(Json::parse("-2.5e2").unwrap(), Json::Num(-250.0));
        assert_eq!(Json::parse("\"a b\"").unwrap(), Json::Str("a b".into()));
    }

    #[test]
    fn parses_nested_documents() {
        let doc = Json::parse(r#"{"a": [1, 2, {"b": null}], "c": "d"}"#).unwrap();
        let a = doc.get("a").unwrap().as_array().unwrap();
        assert_eq!(a[1].as_f64(), Some(2.0));
        assert_eq!(a[2].get("b"), Some(&Json::Null));
        assert_eq!(doc.get("c").unwrap().as_str(), Some("d"));
    }

    #[test]
    fn escape_sequences_round_trip() {
        let original = Json::from("quote\" back\\ nl\n tab\t é 🦀");
        let back = Json::parse(&original.to_string()).unwrap();
        assert_eq!(back, original);
        // Explicit \u escapes, including a surrogate pair (U+1F980).
        let escaped: String = ['"', 'A', '\\', 'u', 'd', '8', '3', 'e', '\\', 'u', 'd', 'd', '8', '0', '"']
            .iter()
            .collect();
        assert_eq!(Json::parse(&escaped).unwrap(), Json::Str("A🦀".into()));
    }

    #[test]
    fn numbers_prefer_the_f32_reading() {
        // `0.1` is the writer's rendering of 0.1f32, so it parses back
        // to the f32 promotion (bit-exact f32 round trips)...
        assert_eq!(Json::parse("0.1").unwrap().as_f64(), Some(0.1f32 as f64));
        // ...while tokens no f32 can produce keep full f64 precision.
        let fine = 1.0f64 + f64::EPSILON;
        let text = format!("{fine}");
        assert_eq!(Json::parse(&text).unwrap().as_f64(), Some(fine));
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "", "tru", "[1,", "[1,]", "{\"a\" 1}", "{\"a\":1,}", "1 2", "{'a':1}",
            "\"unterminated", "\"bad \\x escape\"", "[1] trailing", "nan", "1..2",
            r#""\ud800""#,
        ] {
            assert!(Json::parse(bad).is_err(), "should reject: {bad}");
        }
    }

    #[test]
    fn depth_limit_holds() {
        let deep = "[".repeat(200) + &"]".repeat(200);
        assert!(Json::parse(&deep).is_err());
        let ok = "[".repeat(100) + &"]".repeat(100);
        assert!(Json::parse(&ok).is_ok());
    }

    #[test]
    fn error_reports_position() {
        let e = Json::parse("[1, x]").unwrap_err();
        assert_eq!(e.pos, 4);
        assert!(e.to_string().contains("byte 4"));
    }
}
