//! Write → parse round-trip contract, focused on what the workspace
//! actually stores: big arrays of arbitrary f32 bit patterns
//! (checkpoints) and mixed metric records (results emission).

use ts3_json::Json;
use ts3_rng::rngs::StdRng;
use ts3_rng::{normal_f32, Rng, SeedableRng};

#[test]
fn arbitrary_f32s_round_trip_bit_exactly() {
    let mut rng = StdRng::seed_from_u64(2024);
    let mut values: Vec<f32> = (0..2000).map(|_| normal_f32(&mut rng) * 1e3).collect();
    // Adversarial cases: denormals, extremes, exact powers of two.
    values.extend([
        0.0,
        -0.0,
        f32::MIN_POSITIVE,
        f32::MAX,
        f32::MIN,
        1e-40, // subnormal
        std::f32::consts::PI,
        1.0 / 3.0,
    ]);
    values.extend((0..1000).map(|_| f32::from_bits(rng.gen::<u32>() & 0x7F7F_FFFF)));
    let doc = Json::from_iter(values.iter().copied());
    let text = doc.to_string();
    let back = Json::parse(&text).unwrap();
    let got: Vec<f32> = back
        .as_array()
        .unwrap()
        .iter()
        .map(|v| v.as_f32().unwrap())
        .collect();
    assert_eq!(got.len(), values.len());
    for (i, (a, b)) in values.iter().zip(&got).enumerate() {
        assert!(
            a.to_bits() == b.to_bits() || (a == b), // -0.0 == 0.0 tolerated
            "index {i}: {a:?} ({:#x}) came back as {b:?} ({:#x})",
            a.to_bits(),
            b.to_bits()
        );
    }
}

#[test]
fn checkpoint_shaped_document_round_trips() {
    let doc = Json::obj([(
        "params",
        Json::obj([
            (
                "encoder.weight",
                Json::obj([
                    ("shape", Json::from_iter([2usize, 3])),
                    ("data", Json::from_iter([0.1f32, -2.5, 3e-8, 4.0, 5.5, -0.0])),
                ]),
            ),
            (
                "head.bias",
                Json::obj([
                    ("shape", Json::from_iter([2usize])),
                    ("data", Json::from_iter([1.0f32, -1.0])),
                ]),
            ),
        ]),
    )]);
    for text in [doc.to_string(), doc.to_string_pretty()] {
        let back = Json::parse(&text).unwrap();
        assert_eq!(back, doc);
        let params = back.get("params").unwrap().as_object().unwrap();
        assert_eq!(params.len(), 2);
        let w = &params[0].1;
        assert_eq!(
            w.get("shape").unwrap().as_array().unwrap()[1].as_usize(),
            Some(3)
        );
        assert_eq!(
            w.get("data").unwrap().as_array().unwrap()[0].as_f32(),
            Some(0.1)
        );
    }
}
