//! Cross-run determinism contract for ts3-rng: same seed, same stream —
//! for the raw u64 stream and for every derived sampler. These tests
//! pin concrete values so any accidental change to the stream contract
//! (which would silently invalidate frozen datasets, checkpoints and
//! test expectations across the workspace) fails loudly.

use ts3_rng::rngs::{SmallRng, StdRng};
use ts3_rng::seq::SliceRandom;
use ts3_rng::{normal_f32, Rng, RngCore, SeedableRng};

#[test]
fn same_seed_same_u64_stream() {
    let mut a = StdRng::seed_from_u64(0xDEAD_BEEF);
    let mut b = StdRng::seed_from_u64(0xDEAD_BEEF);
    for _ in 0..1024 {
        assert_eq!(a.next_u64(), b.next_u64());
    }
}

#[test]
fn different_seeds_diverge_immediately() {
    // SplitMix64 expansion decorrelates even adjacent seeds.
    let first: Vec<u64> = (0..64)
        .map(|s| StdRng::seed_from_u64(s).next_u64())
        .collect();
    let mut sorted = first.clone();
    sorted.sort_unstable();
    sorted.dedup();
    assert_eq!(sorted.len(), 64, "adjacent seeds must give distinct streams");
}

#[test]
fn derived_samplers_are_deterministic() {
    let sample = |seed: u64| {
        let mut rng = StdRng::seed_from_u64(seed);
        let floats: Vec<f32> = (0..32).map(|_| rng.gen::<f32>()).collect();
        let ints: Vec<usize> = (0..32).map(|_| rng.gen_range(0..1000usize)).collect();
        let normals: Vec<f32> = (0..32).map(|_| normal_f32(&mut rng)).collect();
        let mut perm: Vec<usize> = (0..16).collect();
        perm.shuffle(&mut rng);
        (floats, ints, normals, perm)
    };
    assert_eq!(sample(11), sample(11));
    assert_ne!(sample(11).0, sample(12).0);
}

#[test]
fn stdrng_stream_is_frozen() {
    // The first three u64s of seed 1, pinned forever. If this test ever
    // fails, the change breaks every frozen seed in the workspace.
    let mut rng = StdRng::seed_from_u64(1);
    let got = [rng.next_u64(), rng.next_u64(), rng.next_u64()];
    let mut reference = SmallRng::seed_from_u64(1);
    let want = [
        reference.next_u64(),
        reference.next_u64(),
        reference.next_u64(),
    ];
    assert_eq!(got, want, "StdRng and SmallRng must share the pinned stream");
    // And the stream is the raw xoshiro256++ stream (known-answer tests
    // for the concrete values live in the unit tests of each generator).
    let mut raw = ts3_rng::Xoshiro256PlusPlus::seed_from_u64(1);
    assert_eq!(StdRng::seed_from_u64(1).next_u64(), raw.next_u64());
}

#[test]
fn f32_unit_draws_cover_the_interval() {
    // Statistical sanity: mean ~0.5, min near 0, max near 1.
    let mut rng = StdRng::seed_from_u64(3);
    let xs: Vec<f32> = (0..100_000).map(|_| rng.gen::<f32>()).collect();
    let mean = xs.iter().sum::<f32>() / xs.len() as f32;
    assert!((mean - 0.5).abs() < 0.005, "mean {mean}");
    let min = xs.iter().cloned().fold(f32::INFINITY, f32::min);
    let max = xs.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
    assert!(min < 0.001 && max > 0.999, "range [{min}, {max}]");
}
