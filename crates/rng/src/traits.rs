//! The rand-shaped trait facade: [`RngCore`] (raw `u64` stream),
//! [`SeedableRng`] (explicit-seed construction), and [`Rng`] (typed
//! sampling: `gen`, `gen_range`, `gen_bool`), plus the two sampling
//! traits they dispatch through.

use core::ops::Range;

/// A source of raw 64-bit randomness. Everything else derives from this.
pub trait RngCore {
    /// Next value of the underlying `u64` stream.
    fn next_u64(&mut self) -> u64;

    /// Next 32 bits, taken from the **high** half of `next_u64` (the
    /// high bits of xoshiro256++ output have the best equidistribution).
    #[inline]
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction from an explicit `u64` seed — the only seeding path in
/// this workspace (no OS entropy, see crate docs).
pub trait SeedableRng: Sized {
    /// Build a generator whose stream is a pure function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types samplable "from the standard distribution" (`rng.gen::<T>()`):
/// uniform `[0, 1)` for floats, full-range uniform for integers, fair
/// coin for `bool`.
pub trait StandardSample: Sized {
    /// Draw one value from `rng`'s stream.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for f32 {
    /// Uniform `[0, 1)` with 24 bits of precision (`n / 2^24`), so every
    /// representable output is an exact multiple of `2^-24` and `1.0` is
    /// never returned.
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        ((rng.next_u32() >> 8) as f32) * (1.0 / (1u32 << 24) as f32)
    }
}

impl StandardSample for f64 {
    /// Uniform `[0, 1)` with 53 bits of precision (`n / 2^53`).
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        ((rng.next_u64() >> 11) as f64) * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for u64 {
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl StandardSample for u32 {
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> u32 {
        rng.next_u32()
    }
}

impl StandardSample for bool {
    /// Fair coin from the top bit of the stream.
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() >> 63 == 1
    }
}

/// Types usable with `rng.gen_range(lo..hi)`.
pub trait SampleUniform: Copy + PartialOrd {
    /// Uniform draw from `[lo, hi)`. Callers guarantee `lo < hi`.
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

/// Largest float strictly below finite `hi` (used to keep float ranges
/// half-open when `lo + u * (hi - lo)` rounds up to `hi`).
fn next_down_f32(hi: f32) -> f32 {
    if hi == 0.0 {
        -f32::from_bits(1)
    } else if hi > 0.0 {
        f32::from_bits(hi.to_bits() - 1)
    } else {
        f32::from_bits(hi.to_bits() + 1)
    }
}

fn next_down_f64(hi: f64) -> f64 {
    if hi == 0.0 {
        -f64::from_bits(1)
    } else if hi > 0.0 {
        f64::from_bits(hi.to_bits() - 1)
    } else {
        f64::from_bits(hi.to_bits() + 1)
    }
}

impl SampleUniform for f32 {
    #[inline]
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: f32, hi: f32) -> f32 {
        let u = f32::sample_standard(rng);
        let v = lo + u * (hi - lo);
        if v < hi {
            v
        } else {
            next_down_f32(hi)
        }
    }
}

impl SampleUniform for f64 {
    #[inline]
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: f64, hi: f64) -> f64 {
        let u = f64::sample_standard(rng);
        let v = lo + u * (hi - lo);
        if v < hi {
            v
        } else {
            next_down_f64(hi)
        }
    }
}

/// Unbiased uniform draw from `[0, n)` by rejection: accept `x` only
/// below the largest multiple of `n` representable in 64 bits, then
/// reduce. Rejection probability is `< 2^-32` for any `n < 2^32`.
#[inline]
fn uniform_u64<R: RngCore + ?Sized>(rng: &mut R, n: u64) -> u64 {
    debug_assert!(n >= 1);
    // zone + 1 is the largest multiple of n that fits in 2^64.
    let zone = u64::MAX - (u64::MAX % n + 1) % n;
    loop {
        let x = rng.next_u64();
        if x <= zone {
            return x % n;
        }
    }
}

macro_rules! impl_sample_uniform_int {
    // `$u` is the same-width unsigned type: the span `hi - lo` must wrap
    // through it so signed ranges spanning zero don't sign-extend.
    ($($t:ty => $u:ty),*) => {$(
        impl SampleUniform for $t {
            #[inline]
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: $t, hi: $t) -> $t {
                let span = hi.wrapping_sub(lo) as $u as u64;
                lo.wrapping_add(uniform_u64(rng, span) as $t)
            }
        }
    )*};
}

impl_sample_uniform_int!(usize => usize, u64 => u64, u32 => u32, i64 => u64, i32 => u32);

/// Typed sampling sugar over any [`RngCore`], mirroring `rand::Rng`.
///
/// Blanket-implemented for every generator, so `use ts3_rng::Rng;`
/// brings `gen` / `gen_range` / `gen_bool` into scope exactly like the
/// `rand` prelude did.
pub trait Rng: RngCore {
    /// Standard-distribution draw: `[0, 1)` floats, full-range ints,
    /// fair-coin bools.
    #[inline]
    fn gen<T: StandardSample>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    /// Uniform draw from the half-open range `lo..hi`.
    ///
    /// # Panics
    /// Panics if the range is empty.
    #[inline]
    fn gen_range<T: SampleUniform>(&mut self, range: Range<T>) -> T
    where
        Self: Sized,
    {
        assert!(range.start < range.end, "gen_range: empty range");
        T::sample_range(self, range.start, range.end)
    }

    /// Bernoulli draw: `true` with probability `p` (clamped to [0, 1]).
    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::sample_standard(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;

    #[test]
    fn f32_standard_is_half_open_unit() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v: f32 = rng.gen();
            assert!((0.0..1.0).contains(&v), "{v}");
        }
    }

    #[test]
    fn float_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..10_000 {
            let v = rng.gen_range(-2.5f32..7.5);
            assert!((-2.5..7.5).contains(&v), "{v}");
        }
    }

    #[test]
    fn int_range_hits_every_value() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut seen = [0usize; 7];
        for _ in 0..7_000 {
            seen[rng.gen_range(0usize..7)] += 1;
        }
        for (i, &c) in seen.iter().enumerate() {
            assert!(c > 700, "value {i} drawn only {c} times");
        }
    }

    #[test]
    fn negative_int_range() {
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..1_000 {
            let v = rng.gen_range(-5i64..-2);
            assert!((-5..-2).contains(&v), "{v}");
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(5);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((hits as f64 / 10_000.0 - 0.3).abs() < 0.02, "{hits}");
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let mut rng = StdRng::seed_from_u64(0);
        let _ = rng.gen_range(3usize..3);
    }
}
