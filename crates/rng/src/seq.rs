//! Sequence helpers (`rand::seq` facade): in-place slice shuffling.

use crate::traits::{RngCore, SampleUniform};

/// Randomised slice operations, mirroring `rand::seq::SliceRandom`.
pub trait SliceRandom {
    /// Uniform in-place shuffle (Fisher–Yates, back-to-front).
    /// Consumes one stream draw per element beyond the first.
    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
}

impl<T> SliceRandom for [T] {
    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            let j = usize::sample_range(rng, 0, i + 1);
            self.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;
    use crate::SeedableRng;

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut v: Vec<usize> = (0..100).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, sorted, "100 elements should not shuffle to identity");
    }

    #[test]
    fn shuffle_is_deterministic_per_seed() {
        let run = |seed| {
            let mut rng = StdRng::seed_from_u64(seed);
            let mut v: Vec<usize> = (0..32).collect();
            v.shuffle(&mut rng);
            v
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7), run(8));
    }

    #[test]
    fn tiny_slices_are_fine() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut empty: [u8; 0] = [];
        empty.shuffle(&mut rng);
        let mut one = [42];
        one.shuffle(&mut rng);
        assert_eq!(one, [42]);
    }
}
