//! Standard-normal sampling via the Box–Muller transform.

use crate::traits::{RngCore, StandardSample};

/// One standard-normal (`N(0, 1)`) deviate.
///
/// Box–Muller on two uniform draws, keeping only the cosine branch: two
/// `u32` stream values are consumed per call (the rejection of `u1 == 0`
/// re-draws, which happens with probability `2^-24`). Deterministic per
/// stream; shared by tensor initialisers, synthetic-data generators and
/// noise injection so they all agree on one normal sampler.
pub fn normal_f32<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
    loop {
        let u1: f32 = f32::sample_standard(rng);
        if u1 <= f32::MIN_POSITIVE {
            continue;
        }
        let u2: f32 = f32::sample_standard(rng);
        return (-2.0 * u1.ln()).sqrt() * (core::f32::consts::TAU * u2).cos();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;
    use crate::SeedableRng;

    #[test]
    fn moments_are_roughly_standard() {
        let mut rng = StdRng::seed_from_u64(9);
        let n = 50_000;
        let xs: Vec<f32> = (0..n).map(|_| normal_f32(&mut rng)).collect();
        let mean: f32 = xs.iter().sum::<f32>() / n as f32;
        let var: f32 = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f32>() / n as f32;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }

    #[test]
    fn all_values_finite() {
        let mut rng = StdRng::seed_from_u64(10);
        assert!((0..10_000).all(|_| normal_f32(&mut rng).is_finite()));
    }
}
