//! # ts3-rng
//!
//! Self-contained pseudo-random number generation for the TS3Net
//! reproduction. Replaces the external `rand` crate so the workspace
//! builds with **zero network access**: every bit of randomness in this
//! repository flows through the two generators defined here.
//!
//! ## Algorithms
//!
//! * [`SplitMix64`] — Steele, Lea & Flood's 64-bit mixing generator.
//!   Used only for **seeding**: it expands a single `u64` seed into the
//!   256-bit state of the main generator, guaranteeing that nearby seeds
//!   (0, 1, 2, …) produce statistically unrelated streams.
//! * [`Xoshiro256PlusPlus`] — Blackman & Vigna's xoshiro256++, the
//!   general-purpose generator behind [`rngs::StdRng`] and
//!   [`rngs::SmallRng`]. 256 bits of state, period `2^256 - 1`, passes
//!   BigCrush; `next_u64` is a handful of shifts/rotates and is trivially
//!   inlined into sampling loops.
//!
//! Both implementations are pinned by known-answer tests (vectors
//! generated from the authors' published reference code), so the exact
//! bit streams are a frozen contract — checkpoints, synthetic datasets
//! and test expectations seeded today reproduce forever.
//!
//! ## Seeding discipline
//!
//! The only supported entry point is [`SeedableRng::seed_from_u64`].
//! There is deliberately **no** `from_entropy` / OS-randomness path:
//! every RNG in the workspace must be constructed from an explicit seed
//! so that whole training runs, dataset generations and shuffles are
//! reproducible from a single integer. All-zero expanded state is
//! impossible because SplitMix64 never returns four consecutive zeros.
//!
//! ## Determinism guarantee
//!
//! For a fixed seed, the `u64` stream — and everything derived from it
//! (`gen::<f32>()`, `gen_range`, shuffles, normal deviates) — is
//! identical across runs, platforms and thread counts. Derived samplers
//! consume a fixed number of stream values per call (rejection loops in
//! integer `gen_range` are the only data-dependent consumers, and they
//! depend solely on the stream itself, not on timing).
//!
//! ## Migrating from `rand`
//!
//! The facade mirrors the subset of `rand` 0.8 this workspace used, so
//! call sites migrate by swapping the crate root in imports:
//!
//! ```
//! use ts3_rng::rngs::StdRng;        // was: rand::rngs::StdRng
//! use ts3_rng::{Rng, SeedableRng};  // was: rand::{Rng, SeedableRng}
//! use ts3_rng::seq::SliceRandom;    // was: rand::seq::SliceRandom
//!
//! let mut rng = StdRng::seed_from_u64(7);
//! let u: f32 = rng.gen();                 // uniform [0, 1)
//! let k = rng.gen_range(0..10usize);      // uniform integer
//! let x = rng.gen_range(-1.0f32..1.0);    // uniform float
//! let mut v = vec![1, 2, 3, 4];
//! v.shuffle(&mut rng);                    // Fisher–Yates
//! assert!((0.0..1.0).contains(&u) && k < 10 && (-1.0..1.0).contains(&x));
//! ```
//!
//! Note that the *streams* differ from `rand`'s ChaCha-based `StdRng`;
//! only the API shape is preserved. Nothing in the workspace depends on
//! the historical `rand` bit streams.

mod normal;
pub mod rngs;
pub mod seq;
mod splitmix64;
mod traits;
mod xoshiro256pp;

pub use normal::normal_f32;
pub use splitmix64::SplitMix64;
pub use traits::{Rng, RngCore, SampleUniform, SeedableRng, StandardSample};
pub use xoshiro256pp::Xoshiro256PlusPlus;
