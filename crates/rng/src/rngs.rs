//! Named generator wrappers (`rand::rngs` facade).
//!
//! Both [`StdRng`] and [`SmallRng`] wrap [`Xoshiro256PlusPlus`]: at this
//! workspace's scale there is no reason to maintain two algorithms, but
//! keeping both names lets call sites express intent (`StdRng` for
//! model/data streams that must stay frozen, `SmallRng` for throwaway
//! draws) and keeps the `rand` migration mechanical. The two types are
//! distinct on purpose — code cannot accidentally feed one where the
//! other is expected.

use crate::traits::{RngCore, SeedableRng};
use crate::xoshiro256pp::Xoshiro256PlusPlus;

macro_rules! wrapper_rng {
    ($(#[$doc:meta])* $name:ident) => {
        $(#[$doc])*
        #[derive(Debug, Clone, PartialEq, Eq)]
        pub struct $name(Xoshiro256PlusPlus);

        impl RngCore for $name {
            #[inline]
            fn next_u64(&mut self) -> u64 {
                self.0.next_u64()
            }
        }

        impl SeedableRng for $name {
            #[inline]
            fn seed_from_u64(seed: u64) -> $name {
                $name(Xoshiro256PlusPlus::seed_from_u64(seed))
            }
        }
    };
}

wrapper_rng! {
    /// The workspace's standard generator (xoshiro256++ behind the
    /// `rand::rngs::StdRng` name). Streams are a frozen contract:
    /// see the crate-level determinism guarantee.
    StdRng
}

wrapper_rng! {
    /// Small/cheap generator name for incidental randomness. Currently
    /// the same algorithm as [`StdRng`] (xoshiro256++ is already as
    /// small as practical); a distinct type so intent stays visible.
    SmallRng
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn std_and_small_share_the_stream_algorithm() {
        let mut a = StdRng::seed_from_u64(5);
        let mut b = SmallRng::seed_from_u64(5);
        for _ in 0..8 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn clone_forks_the_state() {
        let mut a = StdRng::seed_from_u64(1);
        let _ = a.next_u64();
        let mut b = a.clone();
        assert_eq!(a.next_u64(), b.next_u64());
    }
}
