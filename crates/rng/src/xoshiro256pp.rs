//! xoshiro256++: the workhorse generator.
//!
//! Blackman & Vigna's xoshiro256++ — 256 bits of state, period
//! `2^256 - 1`, all-purpose output scrambling via `rotl(s0 + s3, 23) +
//! s0`. Seeded exclusively through SplitMix64 expansion of a `u64`
//! (see the crate docs for the seeding discipline).

use crate::splitmix64::SplitMix64;
use crate::traits::{RngCore, SeedableRng};

/// xoshiro256++ generator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Xoshiro256PlusPlus {
    s: [u64; 4],
}

impl Xoshiro256PlusPlus {
    /// Construct from a raw 256-bit state.
    ///
    /// # Panics
    /// Panics if the state is all zeros (the one fixed point of the
    /// transition function — the generator would emit zeros forever).
    pub fn from_state(s: [u64; 4]) -> Xoshiro256PlusPlus {
        assert!(s.iter().any(|&w| w != 0), "xoshiro256++ state must be non-zero");
        Xoshiro256PlusPlus { s }
    }
}

impl RngCore for Xoshiro256PlusPlus {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0]
            .wrapping_add(s[3])
            .rotate_left(23)
            .wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }
}

impl SeedableRng for Xoshiro256PlusPlus {
    /// Expand `seed` into the 256-bit state with four SplitMix64 draws,
    /// the initialisation recommended by the xoshiro authors.
    fn seed_from_u64(seed: u64) -> Xoshiro256PlusPlus {
        let mut sm = SplitMix64::new(seed);
        Xoshiro256PlusPlus::from_state([
            sm.next_u64(),
            sm.next_u64(),
            sm.next_u64(),
            sm.next_u64(),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_answer_seed_zero() {
        // Stream pinned against an independent implementation of the
        // published xoshiro256plusplus.c seeded via splitmix64.
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(0);
        let want = [
            0x5317_5D61_490B_23DF_u64,
            0x61DA_6F3D_C380_D507,
            0x5C0F_DF91_EC9A_7BFC,
            0x02EE_BF8C_3BBE_5E1A,
            0x7ECA_04EB_AF4A_5EEA,
        ];
        for w in want {
            assert_eq!(rng.next_u64(), w);
        }
    }

    #[test]
    fn known_answer_seed_42() {
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(42);
        let want = [
            0xD076_4D4F_4476_689F_u64,
            0x519E_4174_576F_3791,
            0xFBE0_7CFB_0C24_ED8C,
            0xB37D_9F60_0CD8_35B8,
            0xCB23_1C38_7484_6A73,
        ];
        for w in want {
            assert_eq!(rng.next_u64(), w);
        }
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn all_zero_state_rejected() {
        let _ = Xoshiro256PlusPlus::from_state([0; 4]);
    }
}
