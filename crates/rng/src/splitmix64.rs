//! SplitMix64: the seeding generator.
//!
//! A 64-bit state walked by a Weyl sequence (`+= 0x9E3779B97F4A7C15`,
//! the golden-ratio increment) and finalised by a variant of the
//! MurmurHash3 mixer. Equidistributed over `u64` with period `2^64`;
//! its job here is purely to expand one `u64` seed into larger state
//! blocks for [`crate::Xoshiro256PlusPlus`], as recommended by the
//! xoshiro authors.

use crate::traits::{RngCore, SeedableRng};

/// Steele–Lea–Flood SplitMix64 generator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Construct directly from the raw 64-bit state.
    pub fn new(seed: u64) -> SplitMix64 {
        SplitMix64 { state: seed }
    }
}

impl RngCore for SplitMix64 {
    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

impl SeedableRng for SplitMix64 {
    fn seed_from_u64(seed: u64) -> SplitMix64 {
        SplitMix64::new(seed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_answer_seed_zero() {
        // Reference stream from the published splitmix64.c (Vigna).
        let mut rng = SplitMix64::new(0);
        let want = [
            0xE220_A839_7B1D_CDAF_u64,
            0x6E78_9E6A_A1B9_65F4,
            0x06C4_5D18_8009_454F,
            0xF88B_B8A8_724C_81EC,
            0x1B39_896A_51A8_749B,
        ];
        for w in want {
            assert_eq!(rng.next_u64(), w);
        }
    }

    #[test]
    fn known_answer_nonzero_seed() {
        let mut rng = SplitMix64::new(0x0123_4567_89AB_CDEF);
        let want = [
            0x157A_3807_A48F_AA9D_u64,
            0xD573_529B_34A1_D093,
            0x2F90_B72E_996D_CCBE,
            0xA2D4_1933_4C46_67EC,
            0x0140_4CE9_1493_8008,
        ];
        for w in want {
            assert_eq!(rng.next_u64(), w);
        }
    }
}
