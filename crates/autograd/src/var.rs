//! The [`Var`] graph node and the reverse-mode backward pass.
//!
//! Every operation on `Var`s builds a fresh node holding its output value,
//! its parents, and a backward closure mapping the output cotangent to
//! parent cotangents. [`Var::backward`] runs a topological traversal in
//! reverse creation order (creation ids are strictly increasing, so a
//! simple sort by id yields a valid topological order) and accumulates
//! gradients; parameter leaves additionally flush their gradient into the
//! persistent [`crate::Param`] storage so optimisers can see it across
//! steps.

use crate::param::Param;
use std::cell::{Cell, RefCell};
use std::collections::BTreeMap;
use std::rc::Rc;
use ts3_tensor::Tensor;

thread_local! {
    static NEXT_ID: Cell<u64> = const { Cell::new(0) };
}

fn fresh_id() -> u64 {
    NEXT_ID.with(|c| {
        let id = c.get();
        c.set(id + 1);
        id
    })
}

/// Backward closure: given the output cotangent and the parent values,
/// produce one optional cotangent per parent (None = no gradient flows).
pub(crate) type BackwardFn = Box<dyn Fn(&Tensor, &[Var]) -> Vec<Option<Tensor>>>;

pub(crate) enum NodeKind {
    /// Constant input (no gradient tracked beyond the node itself).
    Leaf,
    /// Leaf bound to a persistent parameter.
    ParamLeaf(Param),
    /// Interior node with parents and a backward rule.
    Node { parents: Vec<Var>, backward: BackwardFn },
}

pub(crate) struct VarInner {
    pub(crate) id: u64,
    pub(crate) value: Tensor,
    pub(crate) grad: RefCell<Option<Tensor>>,
    pub(crate) kind: NodeKind,
}

/// A node in the dynamic autodiff graph. Cloning is cheap (`Rc`).
#[derive(Clone)]
pub struct Var(pub(crate) Rc<VarInner>);

impl Var {
    /// Wrap a constant tensor (gradient is tracked to this node but goes
    /// nowhere further).
    pub fn constant(value: Tensor) -> Var {
        Var(Rc::new(VarInner {
            id: fresh_id(),
            value,
            grad: RefCell::new(None),
            kind: NodeKind::Leaf,
        }))
    }

    /// Leaf bound to a parameter; used by [`Param::var`].
    pub(crate) fn param_leaf(value: Tensor, param: Param) -> Var {
        if !crate::nograd::is_recording() {
            return Var::constant(value);
        }
        Var(Rc::new(VarInner {
            id: fresh_id(),
            value,
            grad: RefCell::new(None),
            kind: NodeKind::ParamLeaf(param),
        }))
    }

    /// Build an interior node.
    ///
    /// Every op computes `value` eagerly before calling this, so under a
    /// [`crate::NoGradGuard`] the node degenerates to a leaf — same
    /// value, no parents, no backward closure — and the upstream graph
    /// is released immediately.
    pub(crate) fn node(value: Tensor, parents: Vec<Var>, backward: BackwardFn) -> Var {
        if !crate::nograd::is_recording() {
            drop(parents);
            drop(backward);
            return Var::constant(value);
        }
        Var(Rc::new(VarInner {
            id: fresh_id(),
            value,
            grad: RefCell::new(None),
            kind: NodeKind::Node { parents, backward },
        }))
    }

    /// The node's value.
    pub fn value(&self) -> &Tensor {
        &self.0.value
    }

    /// Shape of the node's value.
    pub fn shape(&self) -> &[usize] {
        self.0.value.shape()
    }

    /// The gradient accumulated at this node by the last `backward` call,
    /// if any.
    pub fn grad(&self) -> Option<Tensor> {
        self.0.grad.borrow().clone()
    }

    /// Unique creation id (monotonically increasing).
    pub fn id(&self) -> u64 {
        self.0.id
    }

    /// Run reverse-mode differentiation from this node, seeding with ones
    /// (the node is usually a scalar loss).
    pub fn backward(&self) {
        self.backward_with(Tensor::ones(self.shape()));
    }

    /// Run reverse-mode differentiation with an explicit seed cotangent.
    ///
    /// # Panics
    /// Panics if the seed shape does not match the node's value shape.
    pub fn backward_with(&self, seed: Tensor) {
        assert_eq!(
            seed.shape(),
            self.shape(),
            "backward seed shape {:?} does not match value shape {:?}",
            seed.shape(),
            self.shape()
        );
        // Collect the reachable subgraph. A BTreeMap keyed by creation
        // id: iteration order is the topological order's reverse for
        // free, and stays deterministic (no-hashmap-in-lib contract).
        let mut nodes: BTreeMap<u64, Var> = BTreeMap::new();
        let mut stack = vec![self.clone()];
        while let Some(v) = stack.pop() {
            if nodes.contains_key(&v.0.id) {
                continue;
            }
            if let NodeKind::Node { parents, .. } = &v.0.kind {
                for p in parents {
                    if !nodes.contains_key(&p.0.id) {
                        stack.push(p.clone());
                    }
                }
            }
            nodes.insert(v.0.id, v);
        }
        // Clear stale gradients from any previous pass over shared nodes.
        for v in nodes.values() {
            *v.0.grad.borrow_mut() = None;
        }
        *self.0.grad.borrow_mut() = Some(seed);
        // Reverse topological order = descending creation id; the
        // BTreeMap iterates ascending, so reversing its keys replaces
        // the explicit sort the HashMap needed.
        let order: Vec<u64> = nodes.keys().rev().copied().collect();
        for id in order {
            let v = &nodes[&id];
            let grad = match v.0.grad.borrow().clone() {
                Some(g) => g,
                None => continue, // no cotangent reached this node
            };
            match &v.0.kind {
                NodeKind::Leaf => {}
                NodeKind::ParamLeaf(param) => param.accumulate_grad(&grad),
                NodeKind::Node { parents, backward } => {
                    let parent_grads = backward(&grad, parents);
                    assert_eq!(
                        parent_grads.len(),
                        parents.len(),
                        "backward rule returned {} gradients for {} parents",
                        parent_grads.len(),
                        parents.len()
                    );
                    for (p, pg) in parents.iter().zip(parent_grads) {
                        if let Some(pg) = pg {
                            assert_eq!(
                                pg.shape(),
                                p.shape(),
                                "backward produced grad of shape {:?} for parent of shape {:?}",
                                pg.shape(),
                                p.shape()
                            );
                            let mut slot = p.0.grad.borrow_mut();
                            match slot.as_mut() {
                                Some(acc) => acc.add_assign(&pg),
                                None => *slot = Some(pg),
                            }
                        }
                    }
                }
            }
        }
    }
}

/// Reduce `grad` (shaped like the broadcast output) back to `shape` by
/// summing over broadcast axes — the adjoint of broadcasting.
pub(crate) fn reduce_grad_to_shape(grad: &Tensor, shape: &[usize]) -> Tensor {
    if grad.shape() == shape {
        return grad.clone();
    }
    let mut g = grad.clone();
    // Sum away leading axes that were added by broadcasting.
    while g.rank() > shape.len() {
        g = g.sum_axis(0);
    }
    // Sum (keepdim) over axes where the original had length 1.
    #[allow(clippy::needless_range_loop)] // parallel index into g.shape()
    for ax in 0..shape.len() {
        if shape[ax] == 1 && g.shape()[ax] != 1 {
            g = g.sum_axis_keepdim(ax);
        }
    }
    assert_eq!(g.shape(), shape, "reduce_grad_to_shape failed: {:?} -> {:?}", grad.shape(), shape);
    g
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_has_value_and_no_initial_grad() {
        let v = Var::constant(Tensor::from_vec(vec![1.0, 2.0], &[2]));
        assert_eq!(v.value().as_slice(), &[1.0, 2.0]);
        assert!(v.grad().is_none());
    }

    #[test]
    fn ids_increase() {
        let a = Var::constant(Tensor::zeros(&[1]));
        let b = Var::constant(Tensor::zeros(&[1]));
        assert!(b.id() > a.id());
    }

    #[test]
    fn reduce_grad_identity_when_shapes_match() {
        let g = Tensor::ones(&[2, 3]);
        assert_eq!(reduce_grad_to_shape(&g, &[2, 3]), g);
    }

    #[test]
    fn reduce_grad_sums_leading_axes() {
        let g = Tensor::ones(&[4, 3]);
        let r = reduce_grad_to_shape(&g, &[3]);
        assert_eq!(r.as_slice(), &[4.0, 4.0, 4.0]);
    }

    #[test]
    fn reduce_grad_sums_unit_axes() {
        let g = Tensor::ones(&[2, 3]);
        let r = reduce_grad_to_shape(&g, &[2, 1]);
        assert_eq!(r.as_slice(), &[3.0, 3.0]);
    }

    #[test]
    fn reduce_grad_to_scalar() {
        let g = Tensor::ones(&[2, 2]);
        let r = reduce_grad_to_shape(&g, &[]);
        assert_eq!(r.item(), 4.0);
    }
}
