//! Differentiable reductions and normalisation primitives.

use crate::var::Var;
use ts3_tensor::Tensor;

impl Var {
    /// Sum of all elements (scalar output).
    pub fn sum(&self) -> Var {
        let value = Tensor::scalar(self.value().sum());
        let shape: Vec<usize> = self.shape().to_vec();
        Var::node(
            value,
            vec![self.clone()],
            Box::new(move |g, _| vec![Some(Tensor::full(&shape, g.item()))]),
        )
    }

    /// Mean of all elements (scalar output).
    pub fn mean(&self) -> Var {
        let n = self.value().numel() as f32;
        self.sum().mul_scalar(1.0 / n)
    }

    /// Sum over one axis, keeping it as length 1.
    pub fn sum_axis_keepdim(&self, axis: usize) -> Var {
        let value = self.value().sum_axis_keepdim(axis);
        let n = self.shape()[axis];
        Var::node(
            value,
            vec![self.clone()],
            Box::new(move |g, _| vec![Some(g.repeat_axis(axis, n))]),
        )
    }

    /// Mean over one axis, keeping it as length 1.
    pub fn mean_axis_keepdim(&self, axis: usize) -> Var {
        let n = self.shape()[axis] as f32;
        self.sum_axis_keepdim(axis).mul_scalar(1.0 / n)
    }

    /// Sum over one axis, removing it.
    pub fn sum_axis(&self, axis: usize) -> Var {
        let kept = self.sum_axis_keepdim(axis);
        kept.squeeze(axis)
    }

    /// Mean over one axis, removing it.
    pub fn mean_axis(&self, axis: usize) -> Var {
        let n = self.shape()[axis] as f32;
        self.sum_axis(axis).mul_scalar(1.0 / n)
    }

    /// Numerically stable softmax over the last axis.
    pub fn softmax_last(&self) -> Var {
        let value = self.value().softmax_last();
        let out = value.clone();
        Var::node(
            value,
            vec![self.clone()],
            Box::new(move |g, _| {
                // dL/dx = s * (g - sum_j g_j s_j), rowwise over last axis.
                let gs = g.mul(&out);
                let rank = out.rank();
                let dot = gs.sum_axis_keepdim(rank - 1);
                let adj = g.sub(&dot).mul(&out);
                vec![Some(adj)]
            }),
        )
    }

    /// Layer normalisation over the last axis with learnable gain/bias
    /// supplied as separate `Var`s (shape `[d]`).
    pub fn layer_norm_last(&self, gain: &Var, bias: &Var, eps: f32) -> Var {
        let rank = self.shape().len();
        let mean = self.mean_axis_keepdim(rank - 1);
        let centered = self.sub(&mean);
        let var = centered.square().mean_axis_keepdim(rank - 1);
        let std = var.add_scalar(eps).sqrt();
        let normed = centered.div(&std);
        normed.mul(gain).add(bias)
    }

    /// Mean squared error against a constant target.
    pub fn mse_loss(&self, target: &Tensor) -> Var {
        assert_eq!(self.shape(), target.shape(), "mse_loss: shape mismatch");
        let t = Var::constant(target.clone());
        self.sub(&t).square().mean()
    }

    /// Mean absolute error against a constant target.
    pub fn mae_loss(&self, target: &Tensor) -> Var {
        assert_eq!(self.shape(), target.shape(), "mae_loss: shape mismatch");
        let t = Var::constant(target.clone());
        self.sub(&t).abs().mean()
    }

    /// Masked MSE: error counted only where `mask == 1`, normalised by the
    /// mask weight (used by the imputation task).
    pub fn masked_mse_loss(&self, target: &Tensor, mask: &Tensor) -> Var {
        assert_eq!(self.shape(), target.shape(), "masked_mse_loss: shape mismatch");
        assert_eq!(self.shape(), mask.shape(), "masked_mse_loss: mask shape mismatch");
        let weight = mask.sum().max(1.0);
        let t = Var::constant(target.clone());
        self.sub(&t)
            .square()
            .apply_mask(mask)
            .sum()
            .mul_scalar(1.0 / weight)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn leaf(v: Vec<f32>, s: &[usize]) -> Var {
        Var::constant(Tensor::from_vec(v, s))
    }

    #[test]
    fn sum_grad_is_ones() {
        let x = leaf(vec![1.0, 2.0, 3.0], &[3]);
        x.sum().backward();
        assert_eq!(x.grad().unwrap().as_slice(), &[1.0, 1.0, 1.0]);
    }

    #[test]
    fn mean_grad_is_uniform() {
        let x = leaf(vec![1.0, 2.0, 3.0, 4.0], &[4]);
        x.mean().backward();
        assert_eq!(x.grad().unwrap().as_slice(), &[0.25, 0.25, 0.25, 0.25]);
    }

    #[test]
    fn sum_axis_keepdim_broadcasts_grad() {
        let x = leaf((0..6).map(|v| v as f32).collect(), &[2, 3]);
        let y = x.sum_axis_keepdim(1);
        assert_eq!(y.shape(), &[2, 1]);
        y.backward_with(Tensor::from_vec(vec![1.0, 2.0], &[2, 1]));
        assert_eq!(x.grad().unwrap().as_slice(), &[1.0, 1.0, 1.0, 2.0, 2.0, 2.0]);
    }

    #[test]
    fn sum_axis_drops_dim() {
        let x = leaf((0..6).map(|v| v as f32).collect(), &[2, 3]);
        let y = x.sum_axis(0);
        assert_eq!(y.shape(), &[3]);
        assert_eq!(y.value().as_slice(), &[3.0, 5.0, 7.0]);
    }

    #[test]
    fn softmax_value_and_grad_sum_zero() {
        let x = leaf(vec![1.0, 2.0, 3.0], &[3]);
        let s = x.softmax_last();
        let total: f32 = s.value().as_slice().iter().sum();
        assert!((total - 1.0).abs() < 1e-5);
        // Gradient of any function through softmax sums to ~0 per row
        // (softmax is shift-invariant).
        s.backward_with(Tensor::from_vec(vec![1.0, 0.0, 0.0], &[3]));
        let g = x.grad().unwrap();
        assert!(g.sum().abs() < 1e-5, "grad sum {}", g.sum());
    }

    #[test]
    fn mse_loss_value_and_grad() {
        let x = leaf(vec![1.0, 3.0], &[2]);
        let target = Tensor::from_vec(vec![0.0, 0.0], &[2]);
        let l = x.mse_loss(&target);
        assert!((l.value().item() - 5.0).abs() < 1e-6);
        l.backward();
        // d/dx mean((x-t)^2) = 2(x-t)/n = [1.0, 3.0]
        assert_eq!(x.grad().unwrap().as_slice(), &[1.0, 3.0]);
    }

    #[test]
    fn mae_loss_value() {
        let x = leaf(vec![2.0, -2.0], &[2]);
        let target = Tensor::zeros(&[2]);
        let l = x.mae_loss(&target);
        assert!((l.value().item() - 2.0).abs() < 1e-6);
        l.backward();
        assert_eq!(x.grad().unwrap().as_slice(), &[0.5, -0.5]);
    }

    #[test]
    fn masked_mse_only_counts_masked() {
        let x = leaf(vec![1.0, 100.0], &[2]);
        let target = Tensor::zeros(&[2]);
        let mask = Tensor::from_vec(vec![1.0, 0.0], &[2]);
        let l = x.masked_mse_loss(&target, &mask);
        assert!((l.value().item() - 1.0).abs() < 1e-6);
        l.backward();
        let g = x.grad().unwrap();
        assert!((g.as_slice()[0] - 2.0).abs() < 1e-6);
        assert_eq!(g.as_slice()[1], 0.0);
    }

    #[test]
    fn layer_norm_normalises() {
        let x = leaf(vec![1.0, 2.0, 3.0, 4.0], &[1, 4]);
        let gain = Var::constant(Tensor::ones(&[4]));
        let bias = Var::constant(Tensor::zeros(&[4]));
        let y = x.layer_norm_last(&gain, &bias, 1e-5);
        let v = y.value();
        assert!(v.mean().abs() < 1e-5);
        assert!((v.std() - 1.0).abs() < 1e-2);
        // Gradient flows.
        y.sum().backward();
        assert!(x.grad().is_some());
    }

    #[test]
    fn mean_axis_matches_tensor_op() {
        let x = leaf((0..6).map(|v| v as f32).collect(), &[2, 3]);
        let y = x.mean_axis(1);
        assert_eq!(y.value().as_slice(), &[1.0, 4.0]);
    }
}
