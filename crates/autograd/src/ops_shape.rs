//! Differentiable shape manipulation: reshape, permute, narrow, pad,
//! concat, squeeze/unsqueeze, stacking.

use crate::var::Var;
use ts3_tensor::Tensor;

/// Inverse of a permutation.
fn invert_permutation(axes: &[usize]) -> Vec<usize> {
    let mut inv = vec![0; axes.len()];
    for (i, &a) in axes.iter().enumerate() {
        inv[a] = i;
    }
    inv
}

impl Var {
    /// Reshape; the gradient is reshaped back.
    pub fn reshape(&self, shape: &[usize]) -> Var {
        let value = self.value().reshape(shape);
        let orig: Vec<usize> = self.shape().to_vec();
        Var::node(
            value,
            vec![self.clone()],
            Box::new(move |g, _| vec![Some(g.reshape(&orig))]),
        )
    }

    /// Axis permutation; the gradient applies the inverse permutation.
    pub fn permute(&self, axes: &[usize]) -> Var {
        let value = self.value().permute(axes);
        let inv = invert_permutation(axes);
        Var::node(
            value,
            vec![self.clone()],
            Box::new(move |g, _| vec![Some(g.permute(&inv))]),
        )
    }

    /// Batched/2-D transpose of the last two axes.
    pub fn transpose(&self) -> Var {
        let rank = self.shape().len();
        let mut axes: Vec<usize> = (0..rank).collect();
        axes.swap(rank - 1, rank - 2);
        self.permute(&axes)
    }

    /// Insert a length-1 axis.
    pub fn unsqueeze(&self, axis: usize) -> Var {
        let mut shape = self.shape().to_vec();
        shape.insert(axis, 1);
        self.reshape(&shape)
    }

    /// Remove a length-1 axis.
    pub fn squeeze(&self, axis: usize) -> Var {
        assert_eq!(self.shape()[axis], 1, "squeeze: axis {axis} is not length 1");
        let mut shape = self.shape().to_vec();
        shape.remove(axis);
        self.reshape(&shape)
    }

    /// Contiguous slice along an axis; the gradient zero-pads back.
    pub fn narrow(&self, axis: usize, start: usize, len: usize) -> Var {
        let value = self.value().narrow(axis, start, len);
        let full = self.shape()[axis];
        Var::node(
            value,
            vec![self.clone()],
            Box::new(move |g, _| {
                vec![Some(g.pad_axis(axis, start, full - start - len))]
            }),
        )
    }

    /// Zero-pad along an axis; the gradient narrows back.
    pub fn pad_axis(&self, axis: usize, before: usize, after: usize) -> Var {
        let value = self.value().pad_axis(axis, before, after);
        let len = self.shape()[axis];
        Var::node(
            value,
            vec![self.clone()],
            Box::new(move |g, _| vec![Some(g.narrow(axis, before, len))]),
        )
    }

    /// Concatenate along an existing axis; the gradient splits back.
    pub fn concat(vars: &[&Var], axis: usize) -> Var {
        assert!(!vars.is_empty(), "concat: empty input list");
        let tensors: Vec<&Tensor> = vars.iter().map(|v| v.value()).collect();
        let value = Tensor::concat(&tensors, axis);
        let lens: Vec<usize> = vars.iter().map(|v| v.shape()[axis]).collect();
        let parents: Vec<Var> = vars.iter().map(|v| (*v).clone()).collect();
        Var::node(
            value,
            parents,
            Box::new(move |g, _| {
                let mut out = Vec::with_capacity(lens.len());
                let mut start = 0;
                for &len in &lens {
                    out.push(Some(g.narrow(axis, start, len)));
                    start += len;
                }
                out
            }),
        )
    }

    /// Stack along a new axis.
    pub fn stack(vars: &[&Var], axis: usize) -> Var {
        let unsq: Vec<Var> = vars.iter().map(|v| v.unsqueeze(axis)).collect();
        let refs: Vec<&Var> = unsq.iter().collect();
        Var::concat(&refs, axis)
    }

    /// Select one index along an axis, dropping it.
    pub fn index_axis(&self, axis: usize, index: usize) -> Var {
        self.narrow(axis, index, 1).squeeze(axis)
    }

    /// Tile the tensor `times` along `axis`; gradients from all copies sum.
    pub fn repeat_axis(&self, axis: usize, times: usize) -> Var {
        let copies: Vec<&Var> = std::iter::repeat_n(self as &Var, times).collect();
        Var::concat(&copies, axis)
    }

    /// Split along `axis` into chunks of at most `chunk`.
    pub fn split_axis(&self, axis: usize, chunk: usize) -> Vec<Var> {
        let n = self.shape()[axis];
        let mut out = Vec::new();
        let mut start = 0;
        while start < n {
            let len = chunk.min(n - start);
            out.push(self.narrow(axis, start, len));
            start += len;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn leaf(v: Vec<f32>, s: &[usize]) -> Var {
        Var::constant(Tensor::from_vec(v, s))
    }

    #[test]
    fn reshape_grad_round_trips() {
        let x = leaf(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]);
        let y = x.reshape(&[4]);
        y.backward_with(Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[4]));
        assert_eq!(x.grad().unwrap().shape(), &[2, 2]);
        assert_eq!(x.grad().unwrap().as_slice(), &[1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    fn permute_grad_uses_inverse() {
        let x = leaf((0..6).map(|v| v as f32).collect(), &[2, 3]);
        let y = x.permute(&[1, 0]);
        let mut seed = Tensor::zeros(&[3, 2]);
        seed.set(&[2, 1], 5.0); // corresponds to x[1, 2]
        y.backward_with(seed);
        let g = x.grad().unwrap();
        assert_eq!(g.at(&[1, 2]), 5.0);
        assert_eq!(g.sum(), 5.0);
    }

    #[test]
    fn permute_3d_inverse() {
        let x = leaf((0..24).map(|v| v as f32).collect(), &[2, 3, 4]);
        let y = x.permute(&[2, 0, 1]);
        y.backward_with(Tensor::ones(&[4, 2, 3]));
        assert_eq!(x.grad().unwrap().shape(), &[2, 3, 4]);
        assert_eq!(x.grad().unwrap().sum(), 24.0);
    }

    #[test]
    fn narrow_grad_zero_pads() {
        let x = leaf(vec![1.0, 2.0, 3.0, 4.0], &[4]);
        let y = x.narrow(0, 1, 2);
        y.backward_with(Tensor::from_vec(vec![5.0, 6.0], &[2]));
        assert_eq!(x.grad().unwrap().as_slice(), &[0.0, 5.0, 6.0, 0.0]);
    }

    #[test]
    fn pad_grad_narrows() {
        let x = leaf(vec![1.0, 2.0], &[2]);
        let y = x.pad_axis(0, 1, 3);
        assert_eq!(y.shape(), &[6]);
        y.backward_with(Tensor::from_vec(vec![9.0, 1.0, 2.0, 9.0, 9.0, 9.0], &[6]));
        assert_eq!(x.grad().unwrap().as_slice(), &[1.0, 2.0]);
    }

    #[test]
    fn concat_grad_splits() {
        let a = leaf(vec![1.0, 2.0], &[2]);
        let b = leaf(vec![3.0], &[1]);
        let c = Var::concat(&[&a, &b], 0);
        c.backward_with(Tensor::from_vec(vec![10.0, 20.0, 30.0], &[3]));
        assert_eq!(a.grad().unwrap().as_slice(), &[10.0, 20.0]);
        assert_eq!(b.grad().unwrap().as_slice(), &[30.0]);
    }

    #[test]
    fn stack_and_index() {
        let a = leaf(vec![1.0, 2.0], &[2]);
        let b = leaf(vec![3.0, 4.0], &[2]);
        let s = Var::stack(&[&a, &b], 0);
        assert_eq!(s.shape(), &[2, 2]);
        let row = s.index_axis(0, 1);
        row.backward_with(Tensor::ones(&[2]));
        assert_eq!(a.grad().unwrap().as_slice(), &[0.0, 0.0]);
        assert_eq!(b.grad().unwrap().as_slice(), &[1.0, 1.0]);
    }

    #[test]
    fn repeat_axis_sums_gradients() {
        let x = leaf(vec![1.0, 2.0], &[2]);
        let y = x.repeat_axis(0, 3);
        y.backward_with(Tensor::ones(&[6]));
        assert_eq!(x.grad().unwrap().as_slice(), &[3.0, 3.0]);
    }

    #[test]
    fn split_axis_partitions() {
        let x = leaf((0..5).map(|v| v as f32).collect(), &[5]);
        let parts = x.split_axis(0, 2);
        assert_eq!(parts.len(), 3);
        parts[1].backward_with(Tensor::ones(&[2]));
        assert_eq!(x.grad().unwrap().as_slice(), &[0.0, 0.0, 1.0, 1.0, 0.0]);
    }

    #[test]
    fn transpose_batched() {
        let x = leaf((0..12).map(|v| v as f32).collect(), &[2, 2, 3]);
        let y = x.transpose();
        assert_eq!(y.shape(), &[2, 3, 2]);
        y.backward_with(Tensor::ones(&[2, 3, 2]));
        assert_eq!(x.grad().unwrap().sum(), 12.0);
    }
}
