//! Tape suppression for inference: a thread-local guard under which no
//! graph is recorded.
//!
//! Every `Var` operation computes its output tensor eagerly (via
//! `ts3-tensor` kernels) *before* registering a graph node, so
//! suppressing the node — dropping the parent edges and the backward
//! closure and returning a plain leaf — cannot change any value. While a
//! [`NoGradGuard`] is alive on the current thread, a forward pass
//! therefore produces outputs **bitwise identical** to the recorded
//! version while keeping the live graph bounded: each intermediate `Var`
//! is a parentless leaf, freed as soon as the last handle to it drops.
//!
//! This is the mechanism behind `ts3net_core`'s `CompiledPlan`: compiled
//! execution is the eager forward with the tape switched off, which is
//! how the plan's bitwise-equivalence contract is met by construction.
//!
//! Guards nest; recording resumes when the outermost guard drops. The
//! flag is per-thread, so parallel kernel workers (which never touch
//! `Var`s) and other threads' training loops are unaffected.
//!
//! ```
//! use ts3_autograd::{no_grad, NoGradGuard, Param, Var};
//! use ts3_tensor::Tensor;
//!
//! let w = Param::new("w", Tensor::from_vec(vec![2.0], &[1]));
//! let x = Var::constant(Tensor::from_vec(vec![3.0], &[1]));
//!
//! // Recorded: gradient flows back to the parameter.
//! let y = w.var().mul(&x);
//! y.backward();
//! assert_eq!(w.grad().as_slice(), &[3.0]);
//!
//! // Suppressed: identical value, no tape, no gradient.
//! w.zero_grad();
//! let y2 = no_grad(|| w.var().mul(&x));
//! assert_eq!(y2.value().as_slice(), y.value().as_slice());
//! y2.backward(); // a leaf: backward is a no-op
//! assert_eq!(w.grad().as_slice(), &[0.0]);
//!
//! // RAII form:
//! {
//!     let _guard = NoGradGuard::new();
//!     assert!(!ts3_autograd::is_recording());
//! }
//! assert!(ts3_autograd::is_recording());
//! ```

use std::cell::Cell;
use std::marker::PhantomData;

thread_local! {
    static NO_GRAD_DEPTH: Cell<u32> = const { Cell::new(0) };
}

/// True when operations on this thread currently record the autodiff
/// tape (i.e. no [`NoGradGuard`] is alive).
pub fn is_recording() -> bool {
    NO_GRAD_DEPTH.with(|c| c.get()) == 0
}

/// RAII guard suppressing tape recording on the current thread. Nests:
/// recording resumes when the outermost guard drops.
pub struct NoGradGuard {
    // !Send: the guard manipulates thread-local state and must be
    // dropped on the thread that created it.
    _not_send: PhantomData<*const ()>,
}

impl NoGradGuard {
    /// Engage tape suppression on the current thread.
    #[allow(clippy::new_without_default)] // acquiring a guard is an effect, not a default value
    pub fn new() -> NoGradGuard {
        NO_GRAD_DEPTH.with(|c| c.set(c.get() + 1));
        NoGradGuard { _not_send: PhantomData }
    }
}

impl Drop for NoGradGuard {
    fn drop(&mut self) {
        NO_GRAD_DEPTH.with(|c| c.set(c.get().saturating_sub(1)));
    }
}

/// Run `f` with tape recording suppressed on the current thread.
pub fn no_grad<R>(f: impl FnOnce() -> R) -> R {
    let _guard = NoGradGuard::new();
    f()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Param, Var};
    use ts3_tensor::Tensor;

    #[test]
    fn guard_toggles_recording() {
        assert!(is_recording());
        {
            let _g = NoGradGuard::new();
            assert!(!is_recording());
            {
                let _g2 = NoGradGuard::new();
                assert!(!is_recording());
            }
            assert!(!is_recording()); // still inside the outer guard
        }
        assert!(is_recording());
    }

    #[test]
    fn values_identical_with_and_without_tape() {
        let w = Param::new("w", Tensor::randn(&[4, 4], 7));
        let x = Var::constant(Tensor::randn(&[4, 4], 8));
        let eager = w.var().matmul(&x).relu().sum();
        let frozen = no_grad(|| w.var().matmul(&x).relu().sum());
        assert_eq!(
            eager.value().as_slice(),
            frozen.value().as_slice(),
            "no-grad execution must be bitwise identical"
        );
    }

    #[test]
    fn no_grad_output_is_a_leaf() {
        let w = Param::new("w", Tensor::from_vec(vec![1.0, 2.0], &[2]));
        let y = no_grad(|| w.var().mul(&w.var()).sum());
        y.backward();
        assert_eq!(w.grad().as_slice(), &[0.0, 0.0], "no gradient may flow under no_grad");
    }

    #[test]
    fn recording_resumes_after_guard() {
        let w = Param::new("w", Tensor::from_vec(vec![3.0], &[1]));
        no_grad(|| {
            let _ = w.var().mul(&w.var());
        });
        let y = w.var().mul(&w.var());
        y.backward();
        assert_eq!(w.grad().as_slice(), &[6.0]);
    }
}
