//! Persistent trainable parameters.
//!
//! A [`Param`] owns a value tensor and a gradient accumulator that survive
//! across training steps: each forward pass creates a fresh graph leaf via
//! [`Param::var`], and `backward` flushes the leaf's cotangent into the
//! parameter's accumulator, where the optimiser reads (and then clears) it.

use crate::var::Var;
use std::cell::{Ref, RefCell};
use std::rc::Rc;
use ts3_tensor::Tensor;

struct ParamInner {
    name: String,
    value: RefCell<Tensor>,
    grad: RefCell<Tensor>,
}

/// A named, persistent, trainable tensor. Cloning shares storage.
#[derive(Clone)]
pub struct Param(Rc<ParamInner>);

impl Param {
    /// Create a parameter with the given initial value.
    pub fn new(name: impl Into<String>, value: Tensor) -> Param {
        let grad = Tensor::zeros(value.shape());
        Param(Rc::new(ParamInner {
            name: name.into(),
            value: RefCell::new(value),
            grad: RefCell::new(grad),
        }))
    }

    /// The parameter's name (for diagnostics and serialization).
    pub fn name(&self) -> &str {
        &self.0.name
    }

    /// Borrow the current value.
    pub fn value(&self) -> Ref<'_, Tensor> {
        self.0.value.borrow()
    }

    /// Shape of the parameter.
    pub fn shape(&self) -> Vec<usize> {
        self.0.value.borrow().shape().to_vec()
    }

    /// Number of scalar weights.
    pub fn numel(&self) -> usize {
        self.0.value.borrow().numel()
    }

    /// Replace the value (used by optimisers and checkpoint loading).
    ///
    /// # Panics
    /// Panics if the new value changes the shape.
    pub fn set_value(&self, value: Tensor) {
        assert_eq!(
            value.shape(),
            self.0.value.borrow().shape(),
            "set_value must preserve the parameter shape"
        );
        *self.0.value.borrow_mut() = value;
    }

    /// Swap the stored value with `other` in O(1), without allocating.
    ///
    /// This is the snapshot mechanism behind compiled inference plans: a
    /// plan swaps its frozen weights in, runs, and swaps them back out,
    /// so a shared parameter can keep training between plan executions
    /// without either side copying tensors.
    ///
    /// # Panics
    /// Panics if the two tensors differ in shape.
    pub fn swap_value(&self, other: &mut Tensor) {
        let mut value = self.0.value.borrow_mut();
        assert_eq!(
            value.shape(),
            other.shape(),
            "swap_value must preserve the parameter shape"
        );
        std::mem::swap(&mut *value, other);
    }

    /// Apply an in-place update `value <- f(value, grad)`.
    pub fn update_with(&self, f: impl FnOnce(&mut Tensor, &Tensor)) {
        let grad = self.0.grad.borrow();
        let mut value = self.0.value.borrow_mut();
        f(&mut value, &grad);
    }

    /// Borrow the accumulated gradient.
    pub fn grad(&self) -> Ref<'_, Tensor> {
        self.0.grad.borrow()
    }

    /// Add `g` into the gradient accumulator (called by `backward`).
    pub(crate) fn accumulate_grad(&self, g: &Tensor) {
        self.0.grad.borrow_mut().add_assign(g);
    }

    /// Reset the gradient accumulator to zero.
    pub fn zero_grad(&self) {
        let shape = self.shape();
        *self.0.grad.borrow_mut() = Tensor::zeros(&shape);
    }

    /// Create a graph leaf carrying the current value. Each forward pass
    /// should call this anew.
    pub fn var(&self) -> Var {
        Var::param_leaf(self.0.value.borrow().clone(), self.clone())
    }

    /// L2 norm of the accumulated gradient.
    pub fn grad_norm(&self) -> f32 {
        self.0.grad.borrow().norm()
    }

    /// Scale the accumulated gradient in place (used by gradient clipping).
    pub fn scale_grad(&self, s: f32) {
        self.0.grad.borrow_mut().map_inplace(|v| v * s);
    }

    /// True if two handles share the same storage.
    pub fn ptr_eq(&self, other: &Param) -> bool {
        Rc::ptr_eq(&self.0, &other.0)
    }
}

impl std::fmt::Debug for Param {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Param({}, shape={:?})", self.0.name, self.shape())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn param_roundtrip() {
        let p = Param::new("w", Tensor::from_vec(vec![1.0, 2.0], &[2]));
        assert_eq!(p.name(), "w");
        assert_eq!(p.value().as_slice(), &[1.0, 2.0]);
        assert_eq!(p.grad().as_slice(), &[0.0, 0.0]);
        assert_eq!(p.numel(), 2);
    }

    #[test]
    fn grad_accumulates_across_backward_calls() {
        let p = Param::new("w", Tensor::from_vec(vec![3.0], &[1]));
        let loss1 = p.var();
        loss1.backward_with(Tensor::ones(&[1]));
        let loss2 = p.var();
        loss2.backward_with(Tensor::ones(&[1]));
        assert_eq!(p.grad().as_slice(), &[2.0]);
        p.zero_grad();
        assert_eq!(p.grad().as_slice(), &[0.0]);
    }

    #[test]
    #[should_panic(expected = "preserve the parameter shape")]
    fn set_value_rejects_shape_change() {
        let p = Param::new("w", Tensor::zeros(&[2]));
        p.set_value(Tensor::zeros(&[3]));
    }

    #[test]
    fn update_with_sees_grad() {
        let p = Param::new("w", Tensor::from_vec(vec![1.0], &[1]));
        p.var().backward_with(Tensor::from_vec(vec![0.5], &[1]));
        p.update_with(|v, g| v.axpy(-1.0, g));
        assert_eq!(p.value().as_slice(), &[0.5]);
    }

    #[test]
    fn clone_shares_storage() {
        let p = Param::new("w", Tensor::zeros(&[1]));
        let q = p.clone();
        assert!(p.ptr_eq(&q));
        q.set_value(Tensor::from_vec(vec![7.0], &[1]));
        assert_eq!(p.value().as_slice(), &[7.0]);
    }

    #[test]
    fn scale_grad_applies() {
        let p = Param::new("w", Tensor::zeros(&[2]));
        p.var().backward_with(Tensor::from_vec(vec![2.0, 4.0], &[2]));
        p.scale_grad(0.5);
        assert_eq!(p.grad().as_slice(), &[1.0, 2.0]);
        assert!((p.grad_norm() - 5.0f32.sqrt()).abs() < 1e-6);
    }
}
