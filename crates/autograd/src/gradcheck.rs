//! Numerical gradient checking with central differences, used by property
//! tests across the workspace to validate every backward rule.

use crate::var::Var;
use ts3_tensor::Tensor;

/// Result of a gradient check.
#[derive(Debug)]
pub struct GradCheckReport {
    /// Largest relative error seen across checked coordinates.
    pub max_rel_err: f32,
    /// Coordinate with the largest error.
    pub worst_index: usize,
    /// Analytic gradient at the worst coordinate.
    pub analytic: f32,
    /// Numerical gradient at the worst coordinate.
    pub numeric: f32,
}

/// Compare the analytic gradient of a scalar-valued function against
/// central finite differences. `f` receives the graph input `Var` and must
/// return a scalar `Var`; every coordinate of `x` is perturbed, so keep
/// inputs small. `eps = 1e-2` is appropriate for `f32`.
pub fn gradcheck_var(f: impl Fn(&Var) -> Var, x: &Tensor, eps: f32) -> GradCheckReport {
    let leaf = Var::constant(x.clone());
    let out = f(&leaf);
    assert_eq!(out.shape(), &[] as &[usize], "gradcheck requires a scalar output");
    out.backward();
    let analytic = leaf
        .grad()
        // ts3-lint: allow(no-unwrap-in-lib) a function with no dependence on its input is a harness misuse; failing fast is the point
        .expect("gradcheck: function must depend on its input");

    let mut max_rel_err = 0.0f32;
    let mut worst = (0usize, 0.0f32, 0.0f32);
    for i in 0..x.numel() {
        let mut xp = x.clone();
        xp.as_mut_slice()[i] += eps;
        let mut xm = x.clone();
        xm.as_mut_slice()[i] -= eps;
        let fp = f(&Var::constant(xp)).value().item();
        let fm = f(&Var::constant(xm)).value().item();
        let num = (fp - fm) / (2.0 * eps);
        let ana = analytic.as_slice()[i];
        let denom = num.abs().max(ana.abs()).max(1.0);
        let rel = (num - ana).abs() / denom;
        if rel > max_rel_err {
            max_rel_err = rel;
            worst = (i, ana, num);
        }
    }
    GradCheckReport {
        max_rel_err,
        worst_index: worst.0,
        analytic: worst.1,
        numeric: worst.2,
    }
}

/// Assert helper: fail with a descriptive message when the relative error
/// exceeds `tol`.
pub fn assert_gradcheck(f: impl Fn(&Var) -> Var, x: &Tensor, eps: f32, tol: f32) {
    let report = gradcheck_var(f, x, eps);
    assert!(
        report.max_rel_err <= tol,
        "gradcheck failed: rel err {} at index {} (analytic {}, numeric {})",
        report.max_rel_err,
        report.worst_index,
        report.analytic,
        report.numeric
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gradcheck_passes_for_polynomial() {
        let x = Tensor::from_vec(vec![0.5, -0.3, 1.2], &[3]);
        assert_gradcheck(
            |v| v.square().mul(v).sum(), // sum(x^3)
            &x,
            1e-2,
            1e-2,
        );
    }

    #[test]
    fn gradcheck_passes_for_activations() {
        let x = Tensor::from_vec(vec![0.4, -0.8, 0.1, 1.5], &[4]);
        assert_gradcheck(|v| v.tanh().sum(), &x, 1e-2, 1e-2);
        assert_gradcheck(|v| v.sigmoid().sum(), &x, 1e-2, 1e-2);
        assert_gradcheck(|v| v.gelu().sum(), &x, 1e-2, 2e-2);
        assert_gradcheck(|v| v.exp().sum(), &x, 1e-2, 1e-2);
    }

    #[test]
    fn gradcheck_passes_for_softmax() {
        let x = Tensor::from_vec(vec![0.1, 0.9, -0.4, 0.2, 0.0, 0.3], &[2, 3]);
        assert_gradcheck(
            |v| {
                let w = Var::constant(Tensor::from_vec(
                    vec![1.0, -2.0, 0.5, 0.7, 1.3, -0.2],
                    &[2, 3],
                ));
                v.softmax_last().mul(&w).sum()
            },
            &x,
            1e-2,
            2e-2,
        );
    }

    #[test]
    fn gradcheck_detects_wrong_gradient() {
        // A deliberately wrong backward: treat y = 2x as y = x.
        let x = Tensor::from_vec(vec![1.0], &[1]);
        let report = gradcheck_var(
            |v| {
                Var::node(
                    v.value().mul_scalar(2.0),
                    vec![v.clone()],
                    Box::new(|g, _| vec![Some(g.clone())]), // wrong: should be 2g
                )
                .sum()
            },
            &x,
            1e-2,
        );
        assert!(report.max_rel_err > 0.3);
    }

    #[test]
    fn gradcheck_through_matmul_layer_norm() {
        let x = Tensor::randn(&[2, 4], 9).mul_scalar(0.5);
        assert_gradcheck(
            |v| {
                let w = Var::constant(Tensor::randn(&[4, 3], 10).mul_scalar(0.3));
                let gain = Var::constant(Tensor::ones(&[3]));
                let bias = Var::constant(Tensor::zeros(&[3]));
                v.matmul(&w).layer_norm_last(&gain, &bias, 1e-5).square().sum()
            },
            &x,
            1e-2,
            5e-2,
        );
    }
}
