//! Differentiable matrix multiplication for the rank combinations the
//! model zoo uses: `[m,k]@[k,n]`, `[b,m,k]@[k,n]` and `[b,m,k]@[b,k,n]`.

use crate::var::Var;

impl Var {
    /// Matrix multiplication; see [`ts3_tensor::Tensor::try_matmul`] for
    /// the supported rank combinations.
    pub fn matmul(&self, rhs: &Var) -> Var {
        let value = self.value().matmul(rhs.value());
        Var::node(
            value,
            vec![self.clone(), rhs.clone()],
            Box::new(|g, parents| {
                let a = parents[0].value();
                let b = parents[1].value();
                // The transposed GEMM entry points (`matmul_tb`/`matmul_ta`)
                // consume A/B through strided views, so no transpose is
                // ever materialised on the backward path.
                match (a.rank(), b.rank()) {
                    (2, 2) => {
                        let ga = g.matmul_tb(b); // G @ Bᵀ
                        let gb = a.matmul_ta(g); // Aᵀ @ G
                        vec![Some(ga), Some(gb)]
                    }
                    (3, 2) => {
                        // A: [bt,m,k], B: [k,n], G: [bt,m,n]
                        let ga = g.matmul_tb(b); // [bt,m,k]
                        let (bt, m, k) = (a.shape()[0], a.shape()[1], a.shape()[2]);
                        let n = b.shape()[1];
                        let a2 = a.reshape(&[bt * m, k]);
                        let g2 = g.reshape(&[bt * m, n]);
                        let gb = a2.matmul_ta(&g2); // [k,n]
                        vec![Some(ga), Some(gb)]
                    }
                    (3, 3) => {
                        let ga = g.matmul_tb(b); // batched G @ Bᵀ
                        let gb = a.matmul_ta(g); // batched Aᵀ @ G
                        vec![Some(ga), Some(gb)]
                    }
                    // ts3-lint: allow(no-unwrap-in-lib) rank combinations are fixed by the forward op; this arm is a documented contract violation
                    (ra, rb) => panic!("matmul backward: unsupported ranks {ra}/{rb}"),
                }
            }),
        )
    }

    /// `self @ rhsᵀ` without materialising the transpose, forward or
    /// backward; see [`ts3_tensor::Tensor::try_matmul_tb`] for the
    /// supported rank combinations. Bit-identical to
    /// `self.matmul(&rhs.transpose())` with a cheaper graph (no
    /// transpose node, strided GEMM views in both directions).
    pub fn matmul_tb(&self, rhs: &Var) -> Var {
        let value = self.value().matmul_tb(rhs.value());
        Var::node(
            value,
            vec![self.clone(), rhs.clone()],
            Box::new(|g, parents| {
                let a = parents[0].value();
                let b = parents[1].value();
                // y = A @ Bᵀ  =>  dA = G @ B, dB = Gᵀ @ A.
                match (a.rank(), b.rank()) {
                    (2, 2) | (3, 3) => {
                        let ga = g.matmul(b);
                        let gb = g.matmul_ta(a);
                        vec![Some(ga), Some(gb)]
                    }
                    (3, 2) => {
                        // A: [bt,m,k], B: [n,k], G: [bt,m,n]
                        let ga = g.matmul(b); // [bt,m,k]
                        let (bt, m, k) = (a.shape()[0], a.shape()[1], a.shape()[2]);
                        let n = b.shape()[0];
                        let g2 = g.reshape(&[bt * m, n]);
                        let a2 = a.reshape(&[bt * m, k]);
                        let gb = g2.matmul_ta(&a2); // [n,k]
                        vec![Some(ga), Some(gb)]
                    }
                    // ts3-lint: allow(no-unwrap-in-lib) rank combinations are fixed by the forward op; this arm is a documented contract violation
                    (ra, rb) => panic!("matmul_tb backward: unsupported ranks {ra}/{rb}"),
                }
            }),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ts3_tensor::Tensor;

    fn leaf(v: Vec<f32>, s: &[usize]) -> Var {
        Var::constant(Tensor::from_vec(v, s))
    }

    #[test]
    fn matmul_2d_grads() {
        // y = sum(A @ B); dA = 1 @ B^T, dB = A^T @ 1.
        let a = leaf(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]);
        let b = leaf(vec![5.0, 6.0, 7.0, 8.0], &[2, 2]);
        a.matmul(&b).sum().backward();
        // dA[i][p] = sum_j B[p][j]
        assert_eq!(a.grad().unwrap().as_slice(), &[11.0, 15.0, 11.0, 15.0]);
        // dB[p][j] = sum_i A[i][p]
        assert_eq!(b.grad().unwrap().as_slice(), &[4.0, 4.0, 6.0, 6.0]);
    }

    #[test]
    fn matmul_3d_2d_grads() {
        let a = leaf((0..12).map(|v| v as f32).collect(), &[2, 2, 3]);
        let b = leaf(vec![1.0; 6], &[3, 2]);
        let y = a.matmul(&b);
        assert_eq!(y.shape(), &[2, 2, 2]);
        y.sum().backward();
        // Each element of A contributes to 2 outputs with weight 1.
        assert_eq!(a.grad().unwrap().as_slice(), &[2.0; 12]);
        // dB[p][j] = sum over batch & rows of A[.,.,p] = (0+3+6+9, 1+4+7+10, 2+5+8+11)
        assert_eq!(b.grad().unwrap().as_slice(), &[18.0, 18.0, 22.0, 22.0, 26.0, 26.0]);
    }

    #[test]
    fn matmul_3d_3d_grads() {
        let a = leaf(vec![1.0, 2.0, 3.0, 4.0], &[2, 1, 2]);
        let b = leaf(vec![1.0, 0.0, 0.0, 2.0], &[2, 2, 1]);
        let y = a.matmul(&b);
        assert_eq!(y.shape(), &[2, 1, 1]);
        assert_eq!(y.value().as_slice(), &[1.0, 8.0]);
        y.sum().backward();
        assert_eq!(a.grad().unwrap().as_slice(), &[1.0, 0.0, 0.0, 2.0]);
        assert_eq!(b.grad().unwrap().as_slice(), &[1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    fn matmul_tb_grads_match_explicit_transpose() {
        // y = A @ Bᵀ via the fused op must give the same value and
        // parent gradients as the materialised-transpose formulation.
        let av: Vec<f32> = (0..12).map(|v| (v as f32 * 0.7).sin()).collect();
        let bv: Vec<f32> = (0..8).map(|v| (v as f32 * 0.3).cos()).collect();
        let a1 = leaf(av.clone(), &[3, 4]);
        let b1 = leaf(bv.clone(), &[2, 4]);
        let y1 = a1.matmul_tb(&b1);
        y1.sum().backward();
        let a2 = leaf(av, &[3, 4]);
        let b2 = leaf(bv, &[2, 4]);
        let y2 = a2.matmul(&b2.transpose());
        y2.sum().backward();
        assert_eq!(y1.value().as_slice(), y2.value().as_slice());
        assert_eq!(a1.grad().unwrap().as_slice(), a2.grad().unwrap().as_slice());
        assert_eq!(b1.grad().unwrap().as_slice(), b2.grad().unwrap().as_slice());

        // Batched (3,3) arm, as used by attention scores.
        let qv: Vec<f32> = (0..24).map(|v| (v as f32 * 0.11).sin()).collect();
        let kv: Vec<f32> = (0..30).map(|v| (v as f32 * 0.17).cos()).collect();
        let q1 = leaf(qv.clone(), &[2, 4, 3]);
        let k1 = leaf(kv.clone(), &[2, 5, 3]);
        let s1 = q1.matmul_tb(&k1);
        s1.sum().backward();
        let q2 = leaf(qv, &[2, 4, 3]);
        let k2 = leaf(kv, &[2, 5, 3]);
        let s2 = q2.matmul(&k2.transpose());
        s2.sum().backward();
        assert_eq!(s1.value().as_slice(), s2.value().as_slice());
        assert_eq!(q1.grad().unwrap().as_slice(), q2.grad().unwrap().as_slice());
        assert_eq!(k1.grad().unwrap().as_slice(), k2.grad().unwrap().as_slice());
    }

    #[test]
    fn linear_regression_converges_one_step_direction() {
        // Check the gradient points downhill: loss must drop after a small
        // step along -grad.
        let w = crate::Param::new("w", Tensor::from_vec(vec![0.0, 0.0], &[2, 1]));
        let x = Tensor::from_vec(vec![1.0, 0.0, 0.0, 1.0, 1.0, 1.0], &[3, 2]);
        let t = Tensor::from_vec(vec![1.0, 2.0, 3.0], &[3, 1]);
        let loss = |wp: &crate::Param| {
            let xv = Var::constant(x.clone());
            xv.matmul(&wp.var()).mse_loss(&t)
        };
        let l0 = loss(&w);
        l0.backward();
        w.update_with(|v, g| v.axpy(-0.1, g));
        let l1 = loss(&w);
        assert!(l1.value().item() < l0.value().item());
    }
}
