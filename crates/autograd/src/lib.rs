//! # ts3-autograd
//!
//! Reverse-mode automatic differentiation over [`ts3_tensor::Tensor`].
//! This is the training substrate for the TS3Net reproduction: a dynamic
//! graph rebuilt on every forward pass ([`Var`]), persistent trainable
//! parameters with cross-step gradient accumulation ([`Param`]), a small
//! but complete set of differentiable primitives (elementwise ops, shape
//! manipulation, reductions, matmul, conv1d/conv2d, softmax, layer norm),
//! an extension point for fixed linear operators with hand-written
//! adjoints ([`CustomOp`], used for the wavelet transform), a
//! finite-difference gradient checker ([`gradcheck_var`]), and a
//! thread-local tape-suppression guard for inference ([`NoGradGuard`] /
//! [`no_grad`]) whose outputs are bitwise identical to the recorded
//! forward.
//!
//! ```
//! use ts3_autograd::{Param, Var};
//! use ts3_tensor::Tensor;
//!
//! // One gradient step of least squares y = x w.
//! let w = Param::new("w", Tensor::zeros(&[1, 1]));
//! let x = Var::constant(Tensor::from_vec(vec![1.0, 2.0], &[2, 1]));
//! let target = Tensor::from_vec(vec![2.0, 4.0], &[2, 1]);
//! let loss = x.matmul(&w.var()).mse_loss(&target);
//! loss.backward();
//! w.update_with(|v, g| v.axpy(-0.1, g));
//! assert!(w.value().item() > 0.0);
//! ```

mod custom;
mod gradcheck;
mod nograd;
mod ops_basic;
mod ops_conv;
mod ops_matmul;
mod ops_reduce;
mod ops_shape;
mod param;
mod var;

pub use custom::{apply_custom, CustomOp};
pub use gradcheck::{assert_gradcheck, gradcheck_var, GradCheckReport};
pub use nograd::{is_recording, no_grad, NoGradGuard};
pub use param::Param;
pub use var::Var;
