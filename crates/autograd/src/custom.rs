//! Extension point for fixed (non-learnable) linear operators with
//! hand-written adjoints — used by `ts3net-core` to push the FFT-planned
//! continuous wavelet transform into the autograd graph without this crate
//! depending on `ts3-signal`.

use crate::var::Var;
use std::rc::Rc;
use ts3_tensor::Tensor;

/// A custom differentiable operation over `Var` inputs.
///
/// Implementations must satisfy the vector-Jacobian convention: `backward`
/// receives the output cotangent and returns one optional cotangent per
/// input, each shaped like that input.
pub trait CustomOp {
    /// Human-readable name for diagnostics.
    fn name(&self) -> &str;
    /// Forward computation over the input values.
    fn forward(&self, inputs: &[&Tensor]) -> Tensor;
    /// Vector-Jacobian product.
    fn backward(&self, grad: &Tensor, inputs: &[&Tensor]) -> Vec<Option<Tensor>>;
}

/// Apply a custom op to a list of graph inputs.
pub fn apply_custom(op: Rc<dyn CustomOp>, inputs: &[&Var]) -> Var {
    let values: Vec<&Tensor> = inputs.iter().map(|v| v.value()).collect();
    let value = op.forward(&values);
    let parents: Vec<Var> = inputs.iter().map(|v| (*v).clone()).collect();
    Var::node(
        value,
        parents,
        Box::new(move |g, parents| {
            let values: Vec<&Tensor> = parents.iter().map(|p| p.value()).collect();
            let grads = op.backward(g, &values);
            assert_eq!(
                grads.len(),
                parents.len(),
                "custom op `{}` returned {} gradients for {} inputs",
                op.name(),
                grads.len(),
                parents.len()
            );
            grads
        }),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Toy custom op: y = 3x (adjoint 3g).
    struct Triple;

    impl CustomOp for Triple {
        fn name(&self) -> &str {
            "triple"
        }
        fn forward(&self, inputs: &[&Tensor]) -> Tensor {
            inputs[0].mul_scalar(3.0)
        }
        fn backward(&self, grad: &Tensor, _inputs: &[&Tensor]) -> Vec<Option<Tensor>> {
            vec![Some(grad.mul_scalar(3.0))]
        }
    }

    #[test]
    fn custom_op_forwards_and_backwards() {
        let x = Var::constant(Tensor::from_vec(vec![1.0, 2.0], &[2]));
        let y = apply_custom(Rc::new(Triple), &[&x]);
        assert_eq!(y.value().as_slice(), &[3.0, 6.0]);
        y.sum().backward();
        assert_eq!(x.grad().unwrap().as_slice(), &[3.0, 3.0]);
    }

    /// Two-input custom op: concat-like sum y = a + 2b.
    struct AffinePair;

    impl CustomOp for AffinePair {
        fn name(&self) -> &str {
            "affine-pair"
        }
        fn forward(&self, inputs: &[&Tensor]) -> Tensor {
            inputs[0].add(&inputs[1].mul_scalar(2.0))
        }
        fn backward(&self, grad: &Tensor, _inputs: &[&Tensor]) -> Vec<Option<Tensor>> {
            vec![Some(grad.clone()), Some(grad.mul_scalar(2.0))]
        }
    }

    #[test]
    fn custom_op_multiple_inputs() {
        let a = Var::constant(Tensor::from_vec(vec![1.0], &[1]));
        let b = Var::constant(Tensor::from_vec(vec![5.0], &[1]));
        let y = apply_custom(Rc::new(AffinePair), &[&a, &b]);
        assert_eq!(y.value().as_slice(), &[11.0]);
        y.backward();
        assert_eq!(a.grad().unwrap().as_slice(), &[1.0]);
        assert_eq!(b.grad().unwrap().as_slice(), &[2.0]);
    }

    #[test]
    fn custom_op_composes_with_builtin_ops() {
        let x = Var::constant(Tensor::from_vec(vec![2.0], &[1]));
        let y = apply_custom(Rc::new(Triple), &[&x]).square(); // (3x)^2
        y.backward();
        // d/dx 9x^2 = 18x = 36.
        assert_eq!(x.grad().unwrap().as_slice(), &[36.0]);
    }
}
