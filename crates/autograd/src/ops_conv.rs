//! Differentiable 1-D/2-D convolution. The forward uses the `im2col`
//! kernels from `ts3-tensor`; backward derives the input gradient through
//! `col2im` (the adjoint of `im2col`) and the weight gradient through a
//! matmul against the recomputed column matrix.

use crate::var::Var;
use ts3_tensor::conv::{col2im, im2col};
use ts3_tensor::Tensor;

impl Var {
    /// 2-D convolution (stride 1): input `[B,Ci,H,W]`, weight
    /// `[Co,Ci,KH,KW]`, symmetric zero padding `(ph, pw)`.
    pub fn conv2d(&self, weight: &Var, ph: usize, pw: usize) -> Var {
        let value = ts3_tensor::conv2d(self.value(), weight.value(), ph, pw);
        Var::node(
            value,
            vec![self.clone(), weight.clone()],
            Box::new(move |g, parents| {
                let x = parents[0].value();
                let w = parents[1].value();
                let (b, cin, h, wd) =
                    (x.shape()[0], x.shape()[1], x.shape()[2], x.shape()[3]);
                let (cout, _, kh, kw) =
                    (w.shape()[0], w.shape()[1], w.shape()[2], w.shape()[3]);
                let oh = h + 2 * ph + 1 - kh;
                let ow = wd + 2 * pw + 1 - kw;
                let wmat = w.reshape(&[cout, cin * kh * kw]);
                let mut gx = Tensor::zeros(&[b, cin, h, wd]);
                let mut gw_mat = Tensor::zeros(&[cout, cin * kh * kw]);
                for bi in 0..b {
                    let gy = g.index_axis(0, bi).reshape(&[cout, oh * ow]);
                    // Input gradient: fold W^T . gy back through col2im.
                    let gcols = wmat.matmul_ta(&gy);
                    let gxb = col2im(&gcols, cin, h, wd, kh, kw, ph, pw);
                    gx.assign_narrow(0, bi, &gxb.reshape(&[1, cin, h, wd]));
                    // Weight gradient: gy . cols^T (cols recomputed).
                    let cols = im2col(&x.index_axis(0, bi), kh, kw, ph, pw);
                    gw_mat.add_assign(&gy.matmul_tb(&cols));
                }
                vec![Some(gx), Some(gw_mat.reshape(&[cout, cin, kh, kw]))]
            }),
        )
    }

    /// 1-D convolution (stride 1): input `[B,Ci,L]`, weight `[Co,Ci,K]`.
    pub fn conv1d(&self, weight: &Var, pad: usize) -> Var {
        let (b, c, l) = (self.shape()[0], self.shape()[1], self.shape()[2]);
        let (co, ci, k) = (weight.shape()[0], weight.shape()[1], weight.shape()[2]);
        let x4 = self.reshape(&[b, c, 1, l]);
        let w4 = weight.reshape(&[co, ci, 1, k]);
        let y = x4.conv2d(&w4, 0, pad);
        let ol = y.shape()[3];
        y.reshape(&[b, co, ol])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn leaf(t: Tensor) -> Var {
        Var::constant(t)
    }

    #[test]
    fn conv2d_forward_matches_tensor_kernel() {
        let x = Tensor::randn(&[2, 3, 5, 5], 1);
        let w = Tensor::randn(&[4, 3, 3, 3], 2);
        let y = leaf(x.clone()).conv2d(&leaf(w.clone()), 1, 1);
        let want = ts3_tensor::conv2d(&x, &w, 1, 1);
        assert!(y.value().allclose(&want, 1e-5));
    }

    #[test]
    fn conv2d_weight_grad_identity_case() {
        // y = conv(x, w) with 1x1 kernel is y = w * x; d sum(y) / dw = sum(x).
        let x = leaf(Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[1, 1, 2, 2]));
        let w = leaf(Tensor::from_vec(vec![1.0], &[1, 1, 1, 1]));
        x.conv2d(&w, 0, 0).sum().backward();
        assert_eq!(w.grad().unwrap().item(), 10.0);
        assert_eq!(x.grad().unwrap().as_slice(), &[1.0, 1.0, 1.0, 1.0]);
    }

    #[test]
    fn conv2d_input_grad_counts_kernel_coverage() {
        // With a 3x3 all-ones kernel, no padding on a 3x3 input, only one
        // output exists; every input position gets gradient 1.
        let x = leaf(Tensor::zeros(&[1, 1, 3, 3]));
        let w = leaf(Tensor::ones(&[1, 1, 3, 3]));
        x.conv2d(&w, 0, 0).sum().backward();
        assert_eq!(x.grad().unwrap().as_slice(), &[1.0; 9]);
    }

    #[test]
    fn conv2d_gradcheck_small() {
        let x0 = Tensor::randn(&[1, 2, 4, 4], 3).mul_scalar(0.5);
        let w0 = Tensor::randn(&[2, 2, 3, 3], 4).mul_scalar(0.5);
        // Analytic gradient for loss = sum(conv(x, w)^2) / 2.
        let x = leaf(x0.clone());
        let w = leaf(w0.clone());
        let y = x.conv2d(&w, 1, 1);
        y.square().sum().mul_scalar(0.5).backward();
        let gw = w.grad().unwrap();
        // Finite difference on one weight element.
        let f = |wt: &Tensor| -> f32 {
            let y = ts3_tensor::conv2d(&x0, wt, 1, 1);
            0.5 * y.as_slice().iter().map(|v| v * v).sum::<f32>()
        };
        let eps = 1e-2;
        for idx in [0usize, 7, 17] {
            let mut wp = w0.clone();
            wp.as_mut_slice()[idx] += eps;
            let mut wm = w0.clone();
            wm.as_mut_slice()[idx] -= eps;
            let num = (f(&wp) - f(&wm)) / (2.0 * eps);
            let ana = gw.as_slice()[idx];
            assert!(
                (num - ana).abs() < 2e-2 * num.abs().max(1.0),
                "idx {idx}: numeric {num} vs analytic {ana}"
            );
        }
    }

    #[test]
    fn conv1d_forward_and_grad() {
        let x = leaf(Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[1, 1, 4]));
        let w = leaf(Tensor::from_vec(vec![1.0, -1.0], &[1, 1, 2]));
        let y = x.conv1d(&w, 0);
        assert_eq!(y.value().as_slice(), &[-1.0, -1.0, -1.0]);
        y.sum().backward();
        // Each interior x gets +1 (as lead) and -1 (as lag); ends get one.
        assert_eq!(x.grad().unwrap().as_slice(), &[1.0, 0.0, 0.0, -1.0]);
        // dW = [sum(x[0..3]), -... ] -> [1+2+3, 2+3+4] with signs from seed 1.
        assert_eq!(w.grad().unwrap().as_slice(), &[6.0, 9.0]);
    }
}
