//! Differentiable elementwise and scalar operations on [`Var`].

use crate::var::{reduce_grad_to_shape, Var};
use ts3_tensor::Tensor;

impl Var {
    /// Broadcasting addition.
    pub fn add(&self, rhs: &Var) -> Var {
        let value = self.value().add(rhs.value());
        Var::node(
            value,
            vec![self.clone(), rhs.clone()],
            Box::new(|g, parents| {
                vec![
                    Some(reduce_grad_to_shape(g, parents[0].shape())),
                    Some(reduce_grad_to_shape(g, parents[1].shape())),
                ]
            }),
        )
    }

    /// Broadcasting subtraction.
    pub fn sub(&self, rhs: &Var) -> Var {
        let value = self.value().sub(rhs.value());
        Var::node(
            value,
            vec![self.clone(), rhs.clone()],
            Box::new(|g, parents| {
                vec![
                    Some(reduce_grad_to_shape(g, parents[0].shape())),
                    Some(reduce_grad_to_shape(&g.neg(), parents[1].shape())),
                ]
            }),
        )
    }

    /// Broadcasting multiplication.
    pub fn mul(&self, rhs: &Var) -> Var {
        let value = self.value().mul(rhs.value());
        Var::node(
            value,
            vec![self.clone(), rhs.clone()],
            Box::new(|g, parents| {
                let ga = g.mul(parents[1].value());
                let gb = g.mul(parents[0].value());
                vec![
                    Some(reduce_grad_to_shape(&ga, parents[0].shape())),
                    Some(reduce_grad_to_shape(&gb, parents[1].shape())),
                ]
            }),
        )
    }

    /// Broadcasting division.
    pub fn div(&self, rhs: &Var) -> Var {
        let value = self.value().div(rhs.value());
        Var::node(
            value,
            vec![self.clone(), rhs.clone()],
            Box::new(|g, parents| {
                let b = parents[1].value();
                let ga = g.div(b);
                // d/db (a/b) = -a / b^2
                let gb = g.mul(parents[0].value()).neg().div(&b.square());
                vec![
                    Some(reduce_grad_to_shape(&ga, parents[0].shape())),
                    Some(reduce_grad_to_shape(&gb, parents[1].shape())),
                ]
            }),
        )
    }

    /// Negation.
    pub fn neg(&self) -> Var {
        Var::node(
            self.value().neg(),
            vec![self.clone()],
            Box::new(|g, _| vec![Some(g.neg())]),
        )
    }

    /// Add a scalar constant.
    pub fn add_scalar(&self, s: f32) -> Var {
        Var::node(
            self.value().add_scalar(s),
            vec![self.clone()],
            Box::new(|g, _| vec![Some(g.clone())]),
        )
    }

    /// Multiply by a scalar constant.
    pub fn mul_scalar(&self, s: f32) -> Var {
        Var::node(
            self.value().mul_scalar(s),
            vec![self.clone()],
            Box::new(move |g, _| vec![Some(g.mul_scalar(s))]),
        )
    }

    /// Elementwise square.
    pub fn square(&self) -> Var {
        Var::node(
            self.value().square(),
            vec![self.clone()],
            Box::new(|g, parents| vec![Some(g.mul(&parents[0].value().mul_scalar(2.0)))]),
        )
    }

    /// Elementwise square root (gradient guarded by a small epsilon).
    pub fn sqrt(&self) -> Var {
        let value = self.value().sqrt();
        let out = value.clone();
        Var::node(
            value,
            vec![self.clone()],
            Box::new(move |g, _| {
                // d sqrt(x) = 1 / (2 sqrt(x)); guard the denominator.
                let denom = out.add_scalar(1e-12).mul_scalar(2.0);
                vec![Some(g.div(&denom))]
            }),
        )
    }

    /// Elementwise exponential.
    pub fn exp(&self) -> Var {
        let value = self.value().exp();
        let out = value.clone();
        Var::node(
            value,
            vec![self.clone()],
            Box::new(move |g, _| vec![Some(g.mul(&out))]),
        )
    }

    /// Elementwise natural logarithm.
    pub fn ln(&self) -> Var {
        Var::node(
            self.value().ln(),
            vec![self.clone()],
            Box::new(|g, parents| vec![Some(g.div(parents[0].value()))]),
        )
    }

    /// Rectified linear unit.
    pub fn relu(&self) -> Var {
        Var::node(
            self.value().relu(),
            vec![self.clone()],
            Box::new(|g, parents| {
                let mask = parents[0].value().map(|v| if v > 0.0 { 1.0 } else { 0.0 });
                vec![Some(g.mul(&mask))]
            }),
        )
    }

    /// GELU activation (tanh approximation), differentiated analytically.
    pub fn gelu(&self) -> Var {
        Var::node(
            self.value().gelu(),
            vec![self.clone()],
            Box::new(|g, parents| {
                const C: f32 = 0.797_884_6; // sqrt(2/pi)
                const A: f32 = 0.044_715;
                let dx = parents[0].value().map(|x| {
                    let u = C * (x + A * x * x * x);
                    let t = u.tanh();
                    let du = C * (1.0 + 3.0 * A * x * x);
                    0.5 * (1.0 + t) + 0.5 * x * (1.0 - t * t) * du
                });
                vec![Some(g.mul(&dx))]
            }),
        )
    }

    /// Hyperbolic tangent.
    pub fn tanh(&self) -> Var {
        let value = self.value().tanh();
        let out = value.clone();
        Var::node(
            value,
            vec![self.clone()],
            Box::new(move |g, _| {
                let d = out.map(|t| 1.0 - t * t);
                vec![Some(g.mul(&d))]
            }),
        )
    }

    /// Logistic sigmoid.
    pub fn sigmoid(&self) -> Var {
        let value = self.value().sigmoid();
        let out = value.clone();
        Var::node(
            value,
            vec![self.clone()],
            Box::new(move |g, _| {
                let d = out.map(|s| s * (1.0 - s));
                vec![Some(g.mul(&d))]
            }),
        )
    }

    /// Elementwise absolute value (subgradient 0 at the kink).
    pub fn abs(&self) -> Var {
        Var::node(
            self.value().abs(),
            vec![self.clone()],
            Box::new(|g, parents| {
                let sign = parents[0].value().map(|v| {
                    if v > 0.0 {
                        1.0
                    } else if v < 0.0 {
                        -1.0
                    } else {
                        0.0
                    }
                });
                vec![Some(g.mul(&sign))]
            }),
        )
    }

    /// Apply a dropout mask (precomputed by the caller; identity at eval).
    /// The same mask scales the gradient.
    pub fn apply_mask(&self, mask: &Tensor) -> Var {
        assert_eq!(self.shape(), mask.shape(), "apply_mask: shape mismatch");
        let value = self.value().mul(mask);
        let mask = mask.clone();
        Var::node(
            value,
            vec![self.clone()],
            Box::new(move |g, _| vec![Some(g.mul(&mask))]),
        )
    }

    /// Stop-gradient: passes the value through, blocks the cotangent.
    pub fn detach(&self) -> Var {
        Var::constant(self.value().clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn leaf(v: Vec<f32>, s: &[usize]) -> Var {
        Var::constant(Tensor::from_vec(v, s))
    }

    #[test]
    fn add_grads_are_ones() {
        let a = leaf(vec![1.0, 2.0], &[2]);
        let b = leaf(vec![3.0, 4.0], &[2]);
        let c = a.add(&b);
        c.backward_with(Tensor::from_vec(vec![1.0, 10.0], &[2]));
        assert_eq!(a.grad().unwrap().as_slice(), &[1.0, 10.0]);
        assert_eq!(b.grad().unwrap().as_slice(), &[1.0, 10.0]);
    }

    #[test]
    fn sub_grad_negates_rhs() {
        let a = leaf(vec![5.0], &[1]);
        let b = leaf(vec![2.0], &[1]);
        let c = a.sub(&b);
        c.backward();
        assert_eq!(a.grad().unwrap().as_slice(), &[1.0]);
        assert_eq!(b.grad().unwrap().as_slice(), &[-1.0]);
    }

    #[test]
    fn mul_grad_swaps_operands() {
        let a = leaf(vec![3.0], &[1]);
        let b = leaf(vec![7.0], &[1]);
        a.mul(&b).backward();
        assert_eq!(a.grad().unwrap().as_slice(), &[7.0]);
        assert_eq!(b.grad().unwrap().as_slice(), &[3.0]);
    }

    #[test]
    fn div_grad() {
        let a = leaf(vec![6.0], &[1]);
        let b = leaf(vec![2.0], &[1]);
        a.div(&b).backward();
        assert_eq!(a.grad().unwrap().as_slice(), &[0.5]);
        assert_eq!(b.grad().unwrap().as_slice(), &[-1.5]);
    }

    #[test]
    fn broadcast_add_reduces_grad() {
        let a = leaf(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]);
        let b = leaf(vec![10.0, 20.0, 30.0], &[3]);
        let c = a.add(&b);
        c.backward_with(Tensor::ones(&[2, 3]));
        assert_eq!(b.grad().unwrap().as_slice(), &[2.0, 2.0, 2.0]);
    }

    #[test]
    fn chain_rule_through_square() {
        // y = (2x)^2 -> dy/dx = 8x = 24 at x = 3.
        let x = leaf(vec![3.0], &[1]);
        let y = x.mul_scalar(2.0).square();
        y.backward();
        assert_eq!(x.grad().unwrap().as_slice(), &[24.0]);
    }

    #[test]
    fn diamond_graph_accumulates() {
        // y = x*x + x -> dy/dx = 2x + 1 = 7 at x = 3.
        let x = leaf(vec![3.0], &[1]);
        let y = x.mul(&x).add(&x);
        y.backward();
        assert_eq!(x.grad().unwrap().as_slice(), &[7.0]);
    }

    #[test]
    fn relu_masks_gradient() {
        let x = leaf(vec![-1.0, 2.0], &[2]);
        x.relu().backward_with(Tensor::ones(&[2]));
        assert_eq!(x.grad().unwrap().as_slice(), &[0.0, 1.0]);
    }

    #[test]
    fn tanh_grad_at_zero_is_one() {
        let x = leaf(vec![0.0], &[1]);
        x.tanh().backward();
        assert!((x.grad().unwrap().item() - 1.0).abs() < 1e-6);
    }

    #[test]
    fn sigmoid_grad_at_zero_is_quarter() {
        let x = leaf(vec![0.0], &[1]);
        x.sigmoid().backward();
        assert!((x.grad().unwrap().item() - 0.25).abs() < 1e-6);
    }

    #[test]
    fn exp_ln_roundtrip_grad() {
        // y = ln(exp(x)) = x -> grad 1.
        let x = leaf(vec![0.7], &[1]);
        x.exp().ln().backward();
        assert!((x.grad().unwrap().item() - 1.0).abs() < 1e-4);
    }

    #[test]
    fn detach_blocks_gradient() {
        let x = leaf(vec![2.0], &[1]);
        let y = x.detach().mul(&x);
        y.backward();
        // Only the non-detached path contributes: dy/dx = detach(x) = 2.
        assert_eq!(x.grad().unwrap().as_slice(), &[2.0]);
    }

    #[test]
    fn backward_clears_stale_grads() {
        let x = leaf(vec![1.0], &[1]);
        let y = x.mul_scalar(3.0);
        y.backward();
        assert_eq!(x.grad().unwrap().as_slice(), &[3.0]);
        y.backward();
        // Re-running over the same graph must not double-count.
        assert_eq!(x.grad().unwrap().as_slice(), &[3.0]);
    }

    #[test]
    fn abs_subgradient() {
        let x = leaf(vec![-2.0, 0.0, 5.0], &[3]);
        x.abs().backward_with(Tensor::ones(&[3]));
        assert_eq!(x.grad().unwrap().as_slice(), &[-1.0, 0.0, 1.0]);
    }

    #[test]
    fn apply_mask_scales_both_ways() {
        let x = leaf(vec![1.0, 2.0], &[2]);
        let m = Tensor::from_vec(vec![0.0, 2.0], &[2]);
        let y = x.apply_mask(&m);
        assert_eq!(y.value().as_slice(), &[0.0, 4.0]);
        y.backward_with(Tensor::ones(&[2]));
        assert_eq!(x.grad().unwrap().as_slice(), &[0.0, 2.0]);
    }
}
