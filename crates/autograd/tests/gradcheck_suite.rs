//! Exhaustive finite-difference gradient checks across the primitive op
//! set — every backward rule the model zoo relies on.

use ts3_autograd::{assert_gradcheck, Var};
use ts3_tensor::Tensor;

fn small(shape: &[usize], seed: u64) -> Tensor {
    Tensor::randn(shape, seed).mul_scalar(0.4)
}

#[test]
fn gradcheck_binary_ops() {
    let x = small(&[2, 3], 1);
    let other = small(&[2, 3], 2).add_scalar(2.0); // keep away from 0 for div
    let o1 = other.clone();
    assert_gradcheck(move |v| v.mul(&Var::constant(o1.clone())).sum(), &x, 1e-2, 2e-2);
    let o2 = other.clone();
    assert_gradcheck(move |v| v.div(&Var::constant(o2.clone())).sum(), &x, 1e-2, 2e-2);
    let o3 = other.clone();
    assert_gradcheck(
        move |v| Var::constant(o3.clone()).div(&v.add_scalar(3.0)).sum(),
        &x,
        1e-2,
        2e-2,
    );
    assert_gradcheck(|v| v.sub(&v.mul_scalar(0.3)).square().sum(), &x, 1e-2, 2e-2);
}

#[test]
fn gradcheck_broadcast_ops() {
    let x = small(&[3], 3);
    let big = small(&[4, 3], 4);
    assert_gradcheck(
        move |v| v.add(&Var::constant(big.clone())).square().sum(),
        &x,
        1e-2,
        2e-2,
    );
    let col = small(&[2, 1], 5);
    let wide = small(&[2, 5], 6);
    assert_gradcheck(
        move |v| v.mul(&Var::constant(wide.clone())).sum(),
        &col,
        1e-2,
        2e-2,
    );
}

#[test]
fn gradcheck_reductions() {
    let x = small(&[2, 4], 7);
    assert_gradcheck(|v| v.mean(), &x, 1e-2, 2e-2);
    assert_gradcheck(|v| v.sum_axis_keepdim(1).square().sum(), &x, 1e-2, 2e-2);
    assert_gradcheck(|v| v.mean_axis(0).square().sum(), &x, 1e-2, 2e-2);
}

#[test]
fn gradcheck_shape_ops() {
    let x = small(&[2, 3, 4], 8);
    let w = small(&[4, 3, 2], 9);
    assert_gradcheck(
        move |v| v.permute(&[2, 1, 0]).mul(&Var::constant(w.clone())).sum(),
        &x,
        1e-2,
        2e-2,
    );
    assert_gradcheck(|v| v.reshape(&[6, 4]).narrow(0, 1, 3).square().sum(), &x, 1e-2, 2e-2);
    assert_gradcheck(
        |v| {
            let parts = v.split_axis(2, 2);
            let refs: Vec<&Var> = parts.iter().collect();
            Var::concat(&refs, 2).pad_axis(1, 1, 1).square().sum()
        },
        &x,
        1e-2,
        2e-2,
    );
    assert_gradcheck(|v| v.repeat_axis(0, 3).square().sum(), &x, 1e-2, 2e-2);
}

#[test]
fn gradcheck_matmul_variants() {
    let a = small(&[3, 4], 10);
    let b2 = small(&[4, 2], 11);
    assert_gradcheck(
        move |v| v.matmul(&Var::constant(b2.clone())).square().sum(),
        &a,
        1e-2,
        3e-2,
    );
    let a3 = small(&[2, 3, 4], 12);
    let b3 = small(&[2, 4, 2], 13);
    assert_gradcheck(
        move |v| v.matmul(&Var::constant(b3.clone())).square().sum(),
        &a3,
        1e-2,
        3e-2,
    );
    // Gradient wrt the right operand.
    let a_fixed = small(&[3, 4], 14);
    let b = small(&[4, 2], 15);
    assert_gradcheck(
        move |v| Var::constant(a_fixed.clone()).matmul(v).square().sum(),
        &b,
        1e-2,
        3e-2,
    );
}

#[test]
fn gradcheck_conv_ops() {
    let x = small(&[1, 2, 5, 5], 16);
    let w = small(&[2, 2, 3, 3], 17);
    let wc = w.clone();
    assert_gradcheck(
        move |v| v.conv2d(&Var::constant(wc.clone()), 1, 1).square().sum(),
        &x,
        1e-2,
        4e-2,
    );
    let xc = x.clone();
    assert_gradcheck(
        move |v| Var::constant(xc.clone()).conv2d(v, 1, 1).square().sum(),
        &w,
        1e-2,
        4e-2,
    );
    let x1 = small(&[1, 2, 9], 18);
    let w1 = small(&[3, 2, 3], 19);
    assert_gradcheck(
        move |v| v.conv1d(&Var::constant(w1.clone()), 1).square().sum(),
        &x1,
        1e-2,
        4e-2,
    );
}

#[test]
fn gradcheck_losses() {
    let x = small(&[6], 20);
    let target = small(&[6], 21);
    let t1 = target.clone();
    assert_gradcheck(move |v| v.mse_loss(&t1), &x, 1e-2, 2e-2);
    // MAE has kinks; keep inputs away from them.
    let far = x.add_scalar(3.0);
    let t2 = target.clone();
    assert_gradcheck(move |v| v.mae_loss(&t2), &far, 1e-2, 2e-2);
    let mask = Tensor::from_vec(vec![1.0, 0.0, 1.0, 1.0, 0.0, 1.0], &[6]);
    assert_gradcheck(
        move |v| v.masked_mse_loss(&target, &mask),
        &x,
        1e-2,
        2e-2,
    );
}

#[test]
fn gradcheck_deep_composite() {
    // A miniature TF-block-like composite: conv -> gelu -> fold -> norm.
    let x = small(&[1, 2, 3, 6], 22);
    assert_gradcheck(
        |v| {
            let w = Var::constant(small(&[2, 2, 3, 3], 23));
            let gain = Var::constant(Tensor::ones(&[6]));
            let bias = Var::constant(Tensor::zeros(&[6]));
            v.conv2d(&w, 1, 1)
                .gelu()
                .reshape(&[1, 6, 6])
                .layer_norm_last(&gain, &bias, 1e-5)
                .softmax_last()
                .square()
                .sum()
        },
        &x,
        1e-2,
        6e-2,
    );
}
