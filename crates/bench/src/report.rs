//! Result tables: fixed-width console rendering (mirroring the paper's
//! row/column layout) and CSV + JSON persistence under `results/`, plus
//! the shared [`Progress`] reporter used by every table/figure binary.

use crate::profile::RunProfile;
use std::fs;
use std::io::Write as _;
use std::path::PathBuf;
use std::time::Instant;
use ts3_json::Json;

/// A rectangular result table.
#[derive(Debug, Clone)]
pub struct Table {
    /// Table title (printed above the header).
    pub title: String,
    /// Column headers (first column is the row label).
    pub columns: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Start a table with the given title and column headers.
    pub fn new(title: impl Into<String>, columns: &[&str]) -> Self {
        Table {
            title: title.into(),
            columns: columns.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (must match the column count).
    pub fn push_row(&mut self, cells: Vec<String>) {
        assert_eq!(
            cells.len(),
            self.columns.len(),
            "row width {} != column count {}",
            cells.len(),
            self.columns.len()
        );
        self.rows.push(cells);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True if the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Render as an aligned console table.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.columns.iter().map(|c| c.len()).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        out.push_str(&format!("== {} ==\n", self.title));
        let header: Vec<String> = self
            .columns
            .iter()
            .zip(&widths)
            .map(|(c, w)| format!("{c:<w$}"))
            .collect();
        out.push_str(&header.join("  "));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * widths.len()));
        out.push('\n');
        for row in &self.rows {
            let line: Vec<String> = row
                .iter()
                .zip(&widths)
                .map(|(c, w)| format!("{c:<w$}"))
                .collect();
            out.push_str(&line.join("  "));
            out.push('\n');
        }
        out
    }

    /// Write the table as CSV into `results/<stem>.csv` (searching for the
    /// workspace `results/` directory from the current directory upward).
    pub fn write_csv(&self, stem: &str) -> std::io::Result<PathBuf> {
        let dir = results_dir();
        fs::create_dir_all(&dir)?;
        let path = dir.join(format!("{stem}.csv"));
        let mut f = fs::File::create(&path)?;
        writeln!(f, "{}", self.columns.join(","))?;
        for row in &self.rows {
            writeln!(f, "{}", row.join(","))?;
        }
        Ok(path)
    }

    /// Mirror the table as JSON into `results/<stem>.json`: the title,
    /// the column list, and one object per row keyed by column header.
    /// Cells stay strings, exactly as rendered to console/CSV.
    pub fn write_json(&self, stem: &str) -> std::io::Result<PathBuf> {
        let dir = results_dir();
        fs::create_dir_all(&dir)?;
        let path = dir.join(format!("{stem}.json"));
        let rows: Json = self
            .rows
            .iter()
            .map(|row| {
                Json::Obj(
                    self.columns
                        .iter()
                        .zip(row)
                        .map(|(c, cell)| (c.clone(), Json::from(cell.as_str())))
                        .collect(),
                )
            })
            .collect();
        let doc = Json::obj([
            ("title", Json::from(self.title.as_str())),
            (
                "columns",
                self.columns.iter().map(|c| Json::from(c.as_str())).collect(),
            ),
            ("rows", rows),
        ]);
        fs::write(&path, doc.to_string_pretty())?;
        Ok(path)
    }
}

/// Locate the workspace `results/` directory (falls back to `./results`).
pub fn results_dir() -> PathBuf {
    for base in ["results", "../results", "../../results"] {
        let p = PathBuf::from(base);
        if p.exists() {
            return p;
        }
    }
    PathBuf::from("results")
}

/// Locate the workspace root: the nearest ancestor whose `Cargo.toml`
/// declares `[workspace]` (bench binaries run from the package dir, the
/// CLI from the root). Falls back to the current directory.
pub fn workspace_root() -> PathBuf {
    for base in [".", "..", "../.."] {
        let p = PathBuf::from(base);
        if fs::read_to_string(p.join("Cargo.toml"))
            .map(|s| s.contains("[workspace]"))
            .unwrap_or(false)
        {
            return p;
        }
    }
    PathBuf::from(".")
}

/// The progress reporter shared by every table/figure binary: a run
/// banner, elapsed-stamped step lines on stderr, and result persistence
/// (table render + CSV/JSON + trace manifest) in one call. Each step
/// also fires a `progress` obs event, so traces carry the same timeline
/// the console showed. Setting `TS3_TRACE=0` explicitly silences the
/// banner and step lines (silent CI); tables and `wrote ...` lines
/// always print.
pub struct Progress {
    t0: Instant,
    quiet: bool,
}

impl Default for Progress {
    fn default() -> Self {
        Self::new()
    }
}

impl Progress {
    /// Start the clock; reads the `TS3_TRACE=0` silencer once.
    pub fn new() -> Self {
        Progress { t0: Instant::now(), quiet: ts3_obs::explicitly_silent() }
    }

    /// Print the run headline (what is being regenerated + profile).
    pub fn banner(&self, what: &str, profile: &RunProfile) {
        if !self.quiet {
            println!("TS3Net reproduction - {what}, profile `{}`\n", profile.name);
        }
    }

    /// One progress step: `[  12.3s] msg` on stderr + a `progress` event.
    pub fn step(&self, msg: &str) {
        if !self.quiet {
            eprintln!("[{:>7.1}s] {msg}", self.t0.elapsed().as_secs_f32());
        }
        ts3_obs::event("progress", |f| {
            f.set("msg", msg.to_string());
            f.set("elapsed_s", self.t0.elapsed().as_secs_f64());
        });
    }

    /// Print an info line on stdout (figure summaries etc.), honouring
    /// the silencer.
    pub fn info(&self, msg: &str) {
        if !self.quiet {
            println!("{msg}");
        }
    }

    /// Render the finished table, persist CSV + JSON under `results/`,
    /// and write the trace manifest when tracing is on.
    pub fn finish_table(&self, table: &Table, base: &str, profile: &RunProfile) {
        print!("{}", table.render());
        println!();
        let stem = csv_stem(base, profile.name);
        for res in [table.write_csv(&stem), table.write_json(&stem)] {
            match res {
                Ok(p) => println!("wrote {}", p.display()),
                Err(e) => eprintln!("result write failed: {e}"),
            }
        }
        self.finish_trace(base, profile);
    }

    /// Write just the trace manifest (for the figure binaries, which
    /// persist their CSVs themselves).
    pub fn finish_trace(&self, base: &str, profile: &RunProfile) {
        let stem = csv_stem(base, profile.name);
        match crate::manifest::write_trace_manifest(&stem, profile) {
            Ok(Some(p)) => println!("wrote {}", p.display()),
            Ok(None) => {}
            Err(e) => eprintln!("trace manifest write failed: {e}"),
        }
    }
}


/// CSV stem for a profile: the default `quick` profile owns the canonical
/// `<base>.csv`; other profiles write `<base>_<profile>.csv` so probe and
/// smoke runs never clobber real results.
pub fn csv_stem(base: &str, profile_name: &str) -> String {
    if profile_name == "quick" {
        base.to_string()
    } else {
        format!("{base}_{profile_name}")
    }
}

/// Format an f32 metric with the paper's 3-decimal convention.
pub fn fmt_metric(v: f32) -> String {
    format!("{v:.3}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new("Demo", &["Model", "MSE", "MAE"]);
        t.push_row(vec!["TS3Net".into(), "0.324".into(), "0.362".into()]);
        t.push_row(vec!["VeryLongModelName".into(), "1.0".into(), "2.0".into()]);
        let s = t.render();
        assert!(s.contains("Demo"));
        assert!(s.contains("TS3Net"));
        assert!(!t.is_empty());
        assert_eq!(t.len(), 2);
        // Column alignment: both rows have the metric at the same offset.
        let lines: Vec<&str> = s.lines().collect();
        let i1 = lines[3].find("0.324").unwrap();
        let i2 = lines[4].find("1.0").unwrap();
        assert_eq!(i1, i2);
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn mismatched_row_panics() {
        let mut t = Table::new("x", &["a", "b"]);
        t.push_row(vec!["only-one".into()]);
    }

    #[test]
    fn json_mirror_matches_table() {
        let mut t = Table::new("J", &["Model", "MSE"]);
        t.push_row(vec!["TS3Net".into(), "0.324".into()]);
        let path = t.write_json("report_json_test").unwrap();
        let doc = Json::parse(&std::fs::read_to_string(&path).unwrap()).unwrap();
        assert_eq!(doc.get("title").unwrap().as_str(), Some("J"));
        let rows = doc.get("rows").unwrap().as_array().unwrap();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].get("MSE").unwrap().as_str(), Some("0.324"));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn fmt_metric_three_decimals() {
        assert_eq!(fmt_metric(0.32449), "0.324");
        assert_eq!(fmt_metric(1.5), "1.500");
    }
}
