//! Regenerates **Table IX** — sensitivity to the number of spectral
//! sub-bands lambda. The paper sweeps {50, 100, 150, 200} at scale; the
//! CPU-scaled analog sweeps {4, 8, 12, 16} (same x2 spacing around the
//! default), verifying the same plateau.

use ts3_baselines::build_forecaster;
use ts3_bench::{
    cell_configs, fmt_metric, lookback_for, prepare_task, spec, train_forecaster, Progress,
    RunProfile, Table,
};

const DATASETS: [&str; 3] = ["ETTh1", "ETTh2", "Exchange"];
const LAMBDAS: [usize; 4] = [4, 8, 12, 16];


fn main() {
    let args: Vec<String> = std::env::args().collect();
    let profile = RunProfile::from_args(&args);
    let progress = Progress::new();
    progress.banner(
        "Table IX (lambda sensitivity; paper {50,100,150,200} -> scaled {4,8,12,16})",
        &profile,
    );
    let datasets: Vec<&str> = if profile.name == "smoke" {
        vec![DATASETS[0]]
    } else {
        DATASETS.to_vec()
    };
    let mut columns = vec!["lambda".to_string(), "Metric".to_string()];
    for d in &datasets {
        for h in ts3_bench::sweep_horizons(d, &profile) {
            columns.push(format!("{d}-{h}"));
        }
        columns.push(format!("{d}-Avg"));
    }
    let col_refs: Vec<&str> = columns.iter().map(|s| s.as_str()).collect();
    let mut table = Table::new("Table IX: Hyper-parameter sensitivity (lambda)", &col_refs);
    for &lambda in &LAMBDAS {
        let default_marker = if lambda == 8 { " (default)" } else { "" };
        let mut mse_row = vec![format!("{lambda}{default_marker}"), "MSE".to_string()];
        let mut mae_row = vec![format!("{lambda}{default_marker}"), "MAE".to_string()];
        for dataset in &datasets {
            let s = spec(dataset);
            let lookback = lookback_for(dataset);
            let horizons = ts3_bench::sweep_horizons(dataset, &profile);
            let mut sum = (0.0f32, 0.0f32);
            for &h in &horizons {
                let task = prepare_task(&s, lookback, h, &profile);
                let (cfg, ts3) = cell_configs(task.channels(), lookback, h, &profile);
                let ts3 = ts3.with_lambda(lambda);
                let model = build_forecaster("TS3Net", &cfg, &ts3, profile.seed);
                let r = train_forecaster(model.as_ref(), &task, &profile);
                progress.step(&format!(
                    "lambda={lambda} {dataset} H={h}: mse={:.3} mae={:.3}",
                    r.mse, r.mae
                ));
                mse_row.push(fmt_metric(r.mse));
                mae_row.push(fmt_metric(r.mae));
                sum.0 += r.mse / horizons.len() as f32;
                sum.1 += r.mae / horizons.len() as f32;
            }
            mse_row.push(fmt_metric(sum.0));
            mae_row.push(fmt_metric(sum.1));
        }
        table.push_row(mse_row);
        table.push_row(mae_row);
    }
    progress.finish_table(&table, "table9", &profile);
}
