//! CI validator for the telemetry artifacts the workspace emits:
//!
//! * `ts3.trace.v1` run manifests (`results/<stem>.trace.json`) —
//!   schema tag, optional training-epoch events and instrumented
//!   kernel spans; **warns** (does not fail) when the collector
//!   reports dropped spans, so capped benchmark runs are visible in CI
//!   logs without gating on them.
//! * `ts3.timeline.v1` request timelines (`--timeline <path>`) — every
//!   request carries the queue-wait/hold/respond/total segments and a
//!   per-tenant latency summary exists.
//! * `ts3.flight.v1` postmortems (`--flight <path>`) — the SLO trigger
//!   actually fired and the event ring is non-empty.
//! * `ts3.lint.v2` lint reports (`--lint <path>`) — files were walked,
//!   every reported rule carries a timing entry, and the resolved crate
//!   DAG is non-empty and internally closed (every dependency is
//!   itself a workspace crate).
//!
//! Exits non-zero (with a message on stderr) on any failure, so
//! `scripts/verify.sh` can gate on it.
//!
//! Usage:
//!
//! ```text
//! trace_check <path> [--require-epoch] [--require-kernel-span] [--require-counter NAME]...
//! trace_check --timeline <path>
//! trace_check --flight <path>
//! trace_check --lint <path>
//! ```
//!
//! `--require-counter NAME` (repeatable) fails unless the manifest's
//! `metrics.counters` holds a non-zero `NAME` — used by `verify.sh` to
//! assert the AVX2 dispatch counters actually ticked on hosts that
//! advertise the feature.

use ts3_json::Json;

/// Recursively count events named `name` in a span subtree.
fn count_events(span: &Json, name: &str) -> usize {
    let mut n = 0;
    if let Some(events) = span.get("events").and_then(|e| e.as_array()) {
        n += events
            .iter()
            .filter(|e| e.get("name").and_then(|v| v.as_str()) == Some(name))
            .count();
    }
    if let Some(children) = span.get("children").and_then(|c| c.as_array()) {
        for c in children {
            n += count_events(c, name);
        }
    }
    n
}

/// Recursively count spans whose name starts with one of `prefixes`.
fn count_kernel_spans(span: &Json, prefixes: &[&str]) -> usize {
    let mut n = 0;
    if let Some(name) = span.get("name").and_then(|v| v.as_str()) {
        if prefixes.iter().any(|p| name.starts_with(p)) {
            n += 1;
        }
    }
    if let Some(children) = span.get("children").and_then(|c| c.as_array()) {
        for c in children {
            n += count_kernel_spans(c, prefixes);
        }
    }
    n
}

fn fail(msg: &str) -> ! {
    eprintln!("trace_check: FAIL: {msg}");
    std::process::exit(1);
}

fn load(path: &str) -> Json {
    let text = std::fs::read_to_string(path)
        .unwrap_or_else(|e| fail(&format!("cannot read {path}: {e}")));
    Json::parse(&text).unwrap_or_else(|e| fail(&format!("{path} is not valid JSON: {e:?}")))
}

fn check_schema(doc: &Json, path: &str, want: &str) {
    if doc.get("schema").and_then(|v| v.as_str()) != Some(want) {
        fail(&format!("{path}: missing or wrong schema tag (want {want})"));
    }
}

/// Validate a `ts3.timeline.v1` document: every request record carries
/// the four latency segments, and the per-tenant summary is present.
fn check_timeline(path: &str) {
    let doc = load(path);
    check_schema(&doc, path, "ts3.timeline.v1");
    let requests = doc
        .get("requests")
        .and_then(|r| r.as_array())
        .unwrap_or_else(|| fail(&format!("{path}: no requests array")));
    if requests.is_empty() {
        fail(&format!("{path}: timeline holds zero requests"));
    }
    for (i, r) in requests.iter().enumerate() {
        let segments = r
            .get("segments")
            .unwrap_or_else(|| fail(&format!("{path}: request {i} has no segments")));
        for seg in ["queue_wait", "hold", "respond", "total"] {
            if segments.get(seg).and_then(|v| v.as_f64()).is_none() {
                fail(&format!("{path}: request {i} missing segment {seg}"));
            }
        }
    }
    let tenants = doc
        .get("tenants")
        .and_then(|t| t.as_array())
        .unwrap_or_else(|| fail(&format!("{path}: no tenants summary")));
    for t in tenants {
        for key in ["tenant", "responded", "p50_ticks", "p99_ticks"] {
            if t.get(key).and_then(|v| v.as_f64()).is_none() {
                fail(&format!("{path}: tenant summary missing {key}"));
            }
        }
    }
    let batches = doc.get("batches").and_then(|b| b.as_array()).map_or(0, |b| b.len());
    println!(
        "trace_check: OK {path} ({} requests, {batches} batches, {} tenants)",
        requests.len(),
        tenants.len()
    );
}

/// Validate a `ts3.flight.v1` postmortem: the trigger fired and the
/// event ring holds something to read.
fn check_flight(path: &str) {
    let doc = load(path);
    check_schema(&doc, path, "ts3.flight.v1");
    let trigger = doc
        .get("trigger")
        .unwrap_or_else(|| fail(&format!("{path}: no trigger object")));
    let fired = trigger
        .get("fired_at_tick")
        .unwrap_or_else(|| fail(&format!("{path}: trigger has no fired_at_tick")));
    if matches!(fired, Json::Null) {
        fail(&format!("{path}: flight recorder never fired (fired_at_tick is null)"));
    }
    let events = doc
        .get("events")
        .and_then(|e| e.as_array())
        .unwrap_or_else(|| fail(&format!("{path}: no events array")));
    if events.is_empty() {
        fail(&format!("{path}: postmortem event ring is empty"));
    }
    let misses = doc
        .get("totals")
        .and_then(|t| t.get("deadline_misses"))
        .and_then(|v| v.as_f64())
        .unwrap_or(0.0);
    println!(
        "trace_check: OK {path} (fired at tick {}, {} events, {misses:.0} deadline misses)",
        fired.as_f64().unwrap_or(-1.0),
        events.len()
    );
}

/// Validate a `ts3.lint.v2` report: the walk saw files, the rule list
/// is non-empty and fully timed, and the crate DAG is a closed graph
/// over workspace crates.
fn check_lint(path: &str) {
    let doc = load(path);
    check_schema(&doc, path, "ts3.lint.v2");
    let checked = doc
        .get("checked_files")
        .and_then(|v| v.as_f64())
        .unwrap_or_else(|| fail(&format!("{path}: no checked_files count")));
    if checked <= 0.0 {
        fail(&format!("{path}: lint run walked zero files"));
    }
    let rules = doc
        .get("rules")
        .and_then(|r| r.as_array())
        .unwrap_or_else(|| fail(&format!("{path}: no rules array")));
    if rules.is_empty() {
        fail(&format!("{path}: rules array is empty"));
    }
    let timing = doc
        .get("rule_timing_us")
        .and_then(|t| t.as_object())
        .unwrap_or_else(|| fail(&format!("{path}: no rule_timing_us object")));
    for r in rules {
        let name = r
            .as_str()
            .unwrap_or_else(|| fail(&format!("{path}: non-string rule id in rules array")));
        let timed = timing
            .iter()
            .any(|(k, v)| k == name && v.as_f64().is_some());
        if !timed {
            fail(&format!("{path}: rule {name} has no numeric rule_timing_us entry"));
        }
    }
    let dag = doc
        .get("crate_dag")
        .and_then(|d| d.as_object())
        .unwrap_or_else(|| fail(&format!("{path}: no crate_dag object")));
    if dag.is_empty() {
        fail(&format!("{path}: crate_dag is empty (no workspace manifests parsed)"));
    }
    let mut edges = 0usize;
    for (name, deps) in dag {
        let deps = deps
            .as_array()
            .unwrap_or_else(|| fail(&format!("{path}: crate_dag[{name}] is not an array")));
        for d in deps {
            let dep = d
                .as_str()
                .unwrap_or_else(|| fail(&format!("{path}: non-string dep under {name}")));
            if !dag.iter().any(|(k, _)| k == dep) {
                fail(&format!(
                    "{path}: crate_dag edge {name} -> {dep} points outside the workspace"
                ));
            }
            edges += 1;
        }
    }
    if doc.get("diagnostics").and_then(|d| d.as_array()).is_none() {
        fail(&format!("{path}: no diagnostics array"));
    }
    let summary = doc
        .get("summary")
        .unwrap_or_else(|| fail(&format!("{path}: no summary object")));
    for key in ["errors", "warnings"] {
        if summary.get(key).and_then(|v| v.as_f64()).is_none() {
            fail(&format!("{path}: summary missing numeric {key}"));
        }
    }
    println!(
        "trace_check: OK {path} ({checked:.0} files, {} rules timed, {} crates, {edges} dag edges)",
        rules.len(),
        dag.len()
    );
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if let Some(i) = args.iter().position(|a| a == "--lint") {
        let path = args.get(i + 1).unwrap_or_else(|| fail("--lint needs a path"));
        check_lint(path);
        return;
    }
    if let Some(i) = args.iter().position(|a| a == "--timeline") {
        let path = args
            .get(i + 1)
            .unwrap_or_else(|| fail("--timeline needs a path"));
        check_timeline(path);
        return;
    }
    if let Some(i) = args.iter().position(|a| a == "--flight") {
        let path = args.get(i + 1).unwrap_or_else(|| fail("--flight needs a path"));
        check_flight(path);
        return;
    }
    let path = args.iter().find(|a| !a.starts_with("--")).unwrap_or_else(|| {
        fail("usage: trace_check <path> [--require-epoch] [--require-kernel-span] | --timeline <path> | --flight <path>")
    });
    let require_epoch = args.iter().any(|a| a == "--require-epoch");
    let require_kernel = args.iter().any(|a| a == "--require-kernel-span");
    let required_counters: Vec<&String> = args
        .iter()
        .enumerate()
        .filter(|(_, a)| *a == "--require-counter")
        .map(|(i, _)| {
            args.get(i + 1)
                .filter(|v| !v.starts_with("--"))
                .unwrap_or_else(|| fail("--require-counter needs a counter name"))
        })
        .collect();

    let doc = load(path);
    check_schema(&doc, path, ts3_bench::TRACE_SCHEMA);
    let spans = doc
        .get("trace")
        .and_then(|t| t.get("spans"))
        .and_then(|s| s.as_array())
        .unwrap_or_else(|| fail(&format!("{path}: no trace.spans array")));
    let metrics = doc
        .get("metrics")
        .unwrap_or_else(|| fail(&format!("{path}: no metrics object")));

    let epochs: usize = spans.iter().map(|s| count_events(s, "epoch")).sum();
    let kernels: usize = spans
        .iter()
        .map(|s| count_kernel_spans(s, &["tensor.", "signal."]))
        .sum();
    let flops = metrics
        .get("counters")
        .and_then(|c| c.get("tensor.matmul.flops"))
        .and_then(|v| v.as_f64())
        .unwrap_or(0.0);

    if require_epoch && epochs == 0 {
        fail(&format!("{path}: expected >= 1 training epoch event, found none"));
    }
    if require_kernel {
        if kernels == 0 {
            fail(&format!("{path}: expected >= 1 kernel span (tensor.*/signal.*), found none"));
        }
        if flops <= 0.0 {
            fail(&format!("{path}: tensor.matmul.flops counter missing or zero"));
        }
    }
    for name in &required_counters {
        let value = metrics
            .get("counters")
            .and_then(|c| c.get(name))
            .and_then(|v| v.as_f64())
            .unwrap_or(0.0);
        if value <= 0.0 {
            fail(&format!("{path}: required counter {name} missing or zero"));
        }
    }
    // Split drop counters landed with obs v2; older manifests only have
    // the dropped_records sum — tolerate absence, warn on overflow.
    let dropped_spans = doc.get("dropped_spans").and_then(|v| v.as_f64()).unwrap_or(0.0);
    let dropped_events = doc.get("dropped_events").and_then(|v| v.as_f64()).unwrap_or(0.0);
    if dropped_spans > 0.0 {
        eprintln!(
            "trace_check: WARN {path}: {dropped_spans:.0} spans dropped at the collector cap \
             (raise TS3_TRACE_MAX_SPANS for a complete tree)"
        );
    }
    if dropped_events > 0.0 {
        eprintln!("trace_check: WARN {path}: {dropped_events:.0} events dropped at the collector cap");
    }
    println!(
        "trace_check: OK {path} ({} root spans, {epochs} epoch events, {kernels} kernel spans, {flops:.0} matmul flops)",
        spans.len()
    );
}
