//! CI validator for `results/<stem>.trace.json` run manifests: parses
//! the file with `ts3-json`, checks the `ts3.trace.v1` schema tag, and
//! optionally asserts the presence of training epoch events and
//! instrumented kernel spans. Exits non-zero (with a message on stderr)
//! on any failure, so `scripts/verify.sh` can gate on it.
//!
//! Usage: `trace_check <path> [--require-epoch] [--require-kernel-span]`

use ts3_json::Json;

/// Recursively count events named `name` in a span subtree.
fn count_events(span: &Json, name: &str) -> usize {
    let mut n = 0;
    if let Some(events) = span.get("events").and_then(|e| e.as_array()) {
        n += events
            .iter()
            .filter(|e| e.get("name").and_then(|v| v.as_str()) == Some(name))
            .count();
    }
    if let Some(children) = span.get("children").and_then(|c| c.as_array()) {
        for c in children {
            n += count_events(c, name);
        }
    }
    n
}

/// Recursively count spans whose name starts with one of `prefixes`.
fn count_kernel_spans(span: &Json, prefixes: &[&str]) -> usize {
    let mut n = 0;
    if let Some(name) = span.get("name").and_then(|v| v.as_str()) {
        if prefixes.iter().any(|p| name.starts_with(p)) {
            n += 1;
        }
    }
    if let Some(children) = span.get("children").and_then(|c| c.as_array()) {
        for c in children {
            n += count_kernel_spans(c, prefixes);
        }
    }
    n
}

fn fail(msg: &str) -> ! {
    eprintln!("trace_check: FAIL: {msg}");
    std::process::exit(1);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let path = args
        .iter()
        .find(|a| !a.starts_with("--"))
        .unwrap_or_else(|| fail("usage: trace_check <path> [--require-epoch] [--require-kernel-span]"));
    let require_epoch = args.iter().any(|a| a == "--require-epoch");
    let require_kernel = args.iter().any(|a| a == "--require-kernel-span");

    let text = std::fs::read_to_string(path)
        .unwrap_or_else(|e| fail(&format!("cannot read {path}: {e}")));
    let doc = Json::parse(&text)
        .unwrap_or_else(|e| fail(&format!("{path} is not valid JSON: {e:?}")));

    if doc.get("schema").and_then(|v| v.as_str()) != Some(ts3_bench::TRACE_SCHEMA) {
        fail(&format!("{path}: missing or wrong schema tag (want {})", ts3_bench::TRACE_SCHEMA));
    }
    let spans = doc
        .get("trace")
        .and_then(|t| t.get("spans"))
        .and_then(|s| s.as_array())
        .unwrap_or_else(|| fail(&format!("{path}: no trace.spans array")));
    let metrics = doc
        .get("metrics")
        .unwrap_or_else(|| fail(&format!("{path}: no metrics object")));

    let epochs: usize = spans.iter().map(|s| count_events(s, "epoch")).sum();
    let kernels: usize = spans
        .iter()
        .map(|s| count_kernel_spans(s, &["tensor.", "signal."]))
        .sum();
    let flops = metrics
        .get("counters")
        .and_then(|c| c.get("tensor.matmul.flops"))
        .and_then(|v| v.as_f64())
        .unwrap_or(0.0);

    if require_epoch && epochs == 0 {
        fail(&format!("{path}: expected >= 1 training epoch event, found none"));
    }
    if require_kernel {
        if kernels == 0 {
            fail(&format!("{path}: expected >= 1 kernel span (tensor.*/signal.*), found none"));
        }
        if flops <= 0.0 {
            fail(&format!("{path}: tensor.matmul.flops counter missing or zero"));
        }
    }
    println!(
        "trace_check: OK {path} ({} root spans, {epochs} epoch events, {kernels} kernel spans, {flops:.0} matmul flops)",
        spans.len()
    );
}
