//! Regenerates **Figure 3** — long-horizon forecast showcase on the
//! ETTm1-like benchmark: TS3Net's prediction vs ground truth for one
//! variate, rendered as an ASCII plot and dumped to CSV.

use ts3_baselines::build_forecaster;
use ts3_bench::viz::line_plot;
use ts3_bench::{
    cell_configs, horizons_for, lookback_for, prepare_task, results_dir, spec, train_forecaster,
    Progress, RunProfile,
};
use ts3_data::Split;
use ts3_nn::Ctx;

fn main() {
    run_forecast_figure("fig3", "ETTm1", 0);
}

/// Shared driver for Figures 3 and 4.
pub fn run_forecast_figure(stem: &str, dataset: &str, channel: usize) {
    let args: Vec<String> = std::env::args().collect();
    let profile = RunProfile::from_args(&args);
    let lookback = lookback_for(dataset);
    let horizon = *horizons_for(dataset, &profile).last().unwrap();
    let progress = Progress::new();
    progress.banner(&format!("{stem} ({dataset} predict-{horizon} showcase)"), &profile);
    let s = spec(dataset);
    let task = prepare_task(&s, lookback, horizon, &profile);
    let (cfg, ts3) = cell_configs(task.channels(), lookback, horizon, &profile);
    let model = build_forecaster("TS3Net", &cfg, &ts3, profile.seed);
    let r = train_forecaster(model.as_ref(), &task, &profile);
    progress.step(&format!("trained TS3Net: test mse={:.3} mae={:.3}", r.mse, r.mae));
    // Showcase window: middle of the test split.
    let idx = task.len(Split::Test) / 2;
    let (x, y) = task.window(Split::Test, idx);
    let xb = x.reshape(&[1, lookback, task.channels()]);
    let mut ctx = Ctx::eval();
    let pred = model.forecast(&xb, &mut ctx);
    let truth: Vec<f32> = (0..horizon).map(|t| y.at(&[t, channel])).collect();
    let predicted: Vec<f32> = (0..horizon)
        .map(|t| pred.value().at(&[0, t, channel]))
        .collect();
    let history: Vec<f32> = (0..lookback).map(|t| x.at(&[t, channel])).collect();
    println!(
        "{}",
        line_plot(
            &[("GroundTruth", &truth), ("Prediction", &predicted)],
            14
        )
    );
    // CSV: t, history/truth, prediction.
    let dir = results_dir();
    std::fs::create_dir_all(&dir).expect("results dir");
    let path = dir.join(format!("{}.csv", ts3_bench::csv_stem(stem, profile.name)));
    let mut out = String::from("t,series,prediction\n");
    for (t, v) in history.iter().enumerate() {
        out.push_str(&format!("{t},{v},\n"));
    }
    for t in 0..horizon {
        out.push_str(&format!(
            "{},{},{}\n",
            lookback + t,
            truth[t],
            predicted[t]
        ));
    }
    std::fs::write(&path, out).expect("write csv");
    println!("wrote {}", path.display());
    progress.finish_trace(stem, &profile);
}
