//! Compare two `ts3.bench.v1` JSON files and fail on regressions.
//!
//! ```text
//! bench_compare <baseline.json> <current.json> [--threshold PCT]
//! ```
//!
//! Entries are matched by their `(op, shape)` pair. For each pair the
//! tool prints the baseline median, the current median and the speedup
//! factor (`baseline / current`, so >1.0 is faster). The run **fails**
//! (exit 1) when either
//!
//! * any matched kernel's current median exceeds the baseline median by
//!   more than `--threshold` percent (default 10), or
//! * a baseline entry is missing from the current file — silently
//!   losing coverage must not read as "no regression".
//!
//! Entries only present in the current file are reported but never
//! fail the run (new benchmarks have no baseline yet).
//!
//! Medians are wall-clock and therefore machine-specific: only compare
//! files produced on the same host and target CPU (see
//! `.cargo/config.toml`). `scripts/verify.sh` runs this against the
//! committed smoke baseline with a generous threshold; use the default
//! threshold for full-budget runs (`scripts/bench.sh`).

use std::process::ExitCode;
use ts3_json::Json;

struct Entry {
    op: String,
    shape: String,
    median_ns: f64,
}

fn load(path: &str) -> Result<Vec<Entry>, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    let doc = Json::parse(&text).map_err(|e| format!("{path}: parse error: {e:?}"))?;
    let schema = doc.get("schema").and_then(|s| s.as_str());
    if schema != Some("ts3.bench.v1") {
        return Err(format!("{path}: schema is {schema:?}, expected ts3.bench.v1"));
    }
    let entries = doc
        .get("entries")
        .and_then(|e| e.as_array())
        .ok_or_else(|| format!("{path}: missing entries array"))?;
    entries
        .iter()
        .map(|e| {
            let field = |k: &str| {
                e.get(k)
                    .ok_or_else(|| format!("{path}: entry missing {k}"))
            };
            Ok(Entry {
                op: field("op")?.as_str().unwrap_or_default().to_string(),
                shape: field("shape")?.as_str().unwrap_or_default().to_string(),
                median_ns: field("median_ns")?
                    .as_f64()
                    .ok_or_else(|| format!("{path}: median_ns is not a number"))?,
            })
        })
        .collect()
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1e3 {
        format!("{ns:.0} ns")
    } else if ns < 1e6 {
        format!("{:.2} µs", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.2} ms", ns / 1e6)
    } else {
        format!("{:.2} s", ns / 1e9)
    }
}

fn usage() -> ExitCode {
    eprintln!("usage: bench_compare <baseline.json> <current.json> [--threshold PCT]");
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut paths: Vec<&str> = Vec::new();
    let mut threshold_pct = 10.0f64;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--threshold" => match it.next().and_then(|v| v.parse::<f64>().ok()) {
                Some(v) if v >= 0.0 => threshold_pct = v,
                _ => return usage(),
            },
            "--help" | "-h" => return usage(),
            p if !p.starts_with('-') => paths.push(p),
            _ => return usage(),
        }
    }
    let [baseline_path, current_path] = paths[..] else {
        return usage();
    };
    let (baseline, current) = match (load(baseline_path), load(current_path)) {
        (Ok(b), Ok(c)) => (b, c),
        (b, c) => {
            for r in [b.err(), c.err()].into_iter().flatten() {
                eprintln!("bench_compare: {r}");
            }
            return ExitCode::from(2);
        }
    };

    println!(
        "bench_compare: {current_path} vs baseline {baseline_path} (threshold +{threshold_pct:.0}%)"
    );
    println!(
        "{:<40} {:>12} {:>12} {:>9}  verdict",
        "op/shape", "baseline", "current", "speedup"
    );
    let mut regressions = 0usize;
    let mut missing = 0usize;
    for b in &baseline {
        let label = if b.shape.is_empty() {
            b.op.clone()
        } else {
            format!("{}/{}", b.op, b.shape)
        };
        let Some(c) = current
            .iter()
            .find(|c| c.op == b.op && c.shape == b.shape)
        else {
            println!("{label:<40} {:>12} {:>12} {:>9}  MISSING", fmt_ns(b.median_ns), "-", "-");
            missing += 1;
            continue;
        };
        let speedup = b.median_ns / c.median_ns;
        let regressed = c.median_ns > b.median_ns * (1.0 + threshold_pct / 100.0);
        let verdict = if regressed { "REGRESSED" } else { "ok" };
        println!(
            "{label:<40} {:>12} {:>12} {:>8.2}x  {verdict}",
            fmt_ns(b.median_ns),
            fmt_ns(c.median_ns),
            speedup
        );
        if regressed {
            regressions += 1;
        }
    }
    for c in &current {
        if !baseline.iter().any(|b| b.op == c.op && b.shape == c.shape) {
            let label = if c.shape.is_empty() {
                c.op.clone()
            } else {
                format!("{}/{}", c.op, c.shape)
            };
            println!("{label:<40} {:>12} {:>12} {:>9}  new (no baseline)", "-", fmt_ns(c.median_ns), "-");
        }
    }
    if regressions > 0 || missing > 0 {
        eprintln!(
            "bench_compare: FAIL — {regressions} regression(s) beyond +{threshold_pct:.0}%, {missing} baseline entr{} missing from current run",
            if missing == 1 { "y" } else { "ies" }
        );
        return ExitCode::from(1);
    }
    println!("bench_compare: ok — no kernel regressed beyond +{threshold_pct:.0}%");
    ExitCode::SUCCESS
}
