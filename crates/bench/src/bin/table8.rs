//! Regenerates **Table VIII** — robustness to noise injection: TS3Net
//! trained on series where a fraction rho of the points carries injected
//! noise matching the signal's own distribution (ETTh1, ETTh2, Exchange).

use ts3_baselines::build_forecaster;
use ts3_bench::{
    cell_configs, fmt_metric, lookback_for, spec, train_forecaster, Progress, RunProfile,
    Table,
};
use ts3_data::{inject_noise, ForecastTask};

const DATASETS: [&str; 3] = ["ETTh1", "ETTh2", "Exchange"];
const RHOS: [f32; 4] = [0.0, 0.01, 0.05, 0.10];


fn main() {
    let args: Vec<String> = std::env::args().collect();
    let profile = RunProfile::from_args(&args);
    let progress = Progress::new();
    progress.banner("Table VIII (noise robustness)", &profile);
    let datasets: Vec<&str> = if profile.name == "smoke" {
        vec![DATASETS[0]]
    } else {
        DATASETS.to_vec()
    };
    let mut columns = vec!["rho".to_string(), "Metric".to_string()];
    for d in &datasets {
        for h in ts3_bench::sweep_horizons(d, &profile) {
            columns.push(format!("{d}-{h}"));
        }
        columns.push(format!("{d}-Avg"));
    }
    let col_refs: Vec<&str> = columns.iter().map(|s| s.as_str()).collect();
    let mut table = Table::new("Table VIII: Robustness analysis (noise injection)", &col_refs);
    for &rho in &RHOS {
        let mut mse_row = vec![format!("{:.0}%", rho * 100.0), "MSE".to_string()];
        let mut mae_row = vec![format!("{:.0}%", rho * 100.0), "MAE".to_string()];
        for dataset in &datasets {
            let s = spec(dataset);
            let lookback = lookback_for(dataset);
            let horizons = ts3_bench::sweep_horizons(dataset, &profile);
            let mut sum = (0.0f32, 0.0f32);
            for &h in &horizons {
                // Generate the scaled series, inject noise, re-window.
                let mut sp = s.clone();
                sp.len = ((sp.len as f32 * profile.data_scale) as usize)
                    .max(((lookback + h + 1) as f32 * 13.0).ceil() as usize);
                let raw = sp.generate(profile.seed);
                let raw = if raw.shape()[1] > profile.max_channels {
                    raw.narrow(1, 0, profile.max_channels)
                } else {
                    raw
                };
                let noisy = inject_noise(&raw, rho, profile.seed + 77);
                let task = ForecastTask::new(&noisy, lookback, h, sp.split);
                let (cfg, ts3) = cell_configs(task.channels(), lookback, h, &profile);
                let model = build_forecaster("TS3Net", &cfg, &ts3, profile.seed);
                let r = train_forecaster(model.as_ref(), &task, &profile);
                progress.step(&format!(
                    "rho={rho} {dataset} H={h}: mse={:.3} mae={:.3}",
                    r.mse, r.mae
                ));
                mse_row.push(fmt_metric(r.mse));
                mae_row.push(fmt_metric(r.mae));
                sum.0 += r.mse / horizons.len() as f32;
                sum.1 += r.mae / horizons.len() as f32;
            }
            mse_row.push(fmt_metric(sum.0));
            mae_row.push(fmt_metric(sum.1));
        }
        table.push_row(mse_row);
        table.push_row(mae_row);
    }
    progress.finish_table(&table, "table8", &profile);
}
