//! Regenerates **Figure 4** — forecast showcase on the ETTm2-like
//! benchmark (normalised OT variate, the last channel), predict-long
//! setting.

use ts3_baselines::build_forecaster;
use ts3_bench::viz::line_plot;
use ts3_bench::{
    cell_configs, horizons_for, lookback_for, prepare_task, results_dir, spec, train_forecaster,
    Progress, RunProfile,
};
use ts3_data::Split;
use ts3_nn::Ctx;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let profile = RunProfile::from_args(&args);
    let dataset = "ETTm2";
    let lookback = lookback_for(dataset);
    let horizon = *horizons_for(dataset, &profile).last().unwrap();
    let progress = Progress::new();
    progress.banner(&format!("fig4 ({dataset} OT predict-{horizon} showcase)"), &profile);
    let s = spec(dataset);
    let task = prepare_task(&s, lookback, horizon, &profile);
    let channel = task.channels() - 1; // the OT (last) variate
    let (cfg, ts3) = cell_configs(task.channels(), lookback, horizon, &profile);
    let model = build_forecaster("TS3Net", &cfg, &ts3, profile.seed);
    let r = train_forecaster(model.as_ref(), &task, &profile);
    progress.step(&format!("trained TS3Net: test mse={:.3} mae={:.3}", r.mse, r.mae));
    let idx = task.len(Split::Test) / 2;
    let (x, y) = task.window(Split::Test, idx);
    let xb = x.reshape(&[1, lookback, task.channels()]);
    let mut ctx = Ctx::eval();
    let pred = model.forecast(&xb, &mut ctx);
    let truth: Vec<f32> = (0..horizon).map(|t| y.at(&[t, channel])).collect();
    let predicted: Vec<f32> = (0..horizon)
        .map(|t| pred.value().at(&[0, t, channel]))
        .collect();
    println!(
        "{}",
        line_plot(&[("GroundTruth", &truth), ("Prediction", &predicted)], 14)
    );
    let dir = results_dir();
    std::fs::create_dir_all(&dir).expect("results dir");
    let path = dir.join(format!("{}.csv", ts3_bench::csv_stem("fig4", profile.name)));
    let mut out = String::from("t,truth,prediction\n");
    for t in 0..horizon {
        out.push_str(&format!("{t},{},{}\n", truth[t], predicted[t]));
    }
    std::fs::write(&path, out).expect("write csv");
    println!("wrote {}", path.display());
    progress.finish_trace("fig4", &profile);
}
