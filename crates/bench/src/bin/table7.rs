//! Regenerates **Table VII** — triple decomposition vs the conventional
//! trend-seasonal decomposition: TSD-CNN and TSD-Trans against TS3Net on
//! ETTm1, ETTm2 and Exchange.

use ts3_bench::{fmt_metric, horizons_for, run_forecast_cell, Progress, RunProfile, Table};

const DATASETS: [&str; 3] = ["ETTm1", "ETTm2", "Exchange"];
const MODELS: [&str; 3] = ["TSD-CNN", "TSD-Trans", "TS3Net"];

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let profile = RunProfile::from_args(&args);
    let progress = Progress::new();
    progress.banner("Table VII (triple vs trend-seasonal decomposition)", &profile);
    let datasets: Vec<&str> = if profile.name == "smoke" {
        vec![DATASETS[0]]
    } else {
        DATASETS.to_vec()
    };
    let mut columns = vec!["Dataset".to_string(), "Metric".to_string()];
    for m in MODELS {
        for h in horizons_for(datasets[0], &profile) {
            columns.push(format!("{m}-{h}"));
        }
        columns.push(format!("{m}-Avg"));
    }
    let col_refs: Vec<&str> = columns.iter().map(|s| s.as_str()).collect();
    let mut table = Table::new(
        "Table VII: Triple Decomposition vs Trend-Seasonal Decomposition",
        &col_refs,
    );
    for dataset in &datasets {
        let horizons = horizons_for(dataset, &profile);
        let mut mse_row = vec![dataset.to_string(), "MSE".to_string()];
        let mut mae_row = vec![dataset.to_string(), "MAE".to_string()];
        for model in MODELS {
            let mut sum = (0.0f32, 0.0f32);
            for &h in &horizons {
                let r = run_forecast_cell(model, dataset, h, &profile);
                progress.step(&format!(
                    "{dataset} {model} H={h}: mse={:.3} mae={:.3}",
                    r.mse, r.mae
                ));
                mse_row.push(fmt_metric(r.mse));
                mae_row.push(fmt_metric(r.mae));
                sum.0 += r.mse / horizons.len() as f32;
                sum.1 += r.mae / horizons.len() as f32;
            }
            mse_row.push(fmt_metric(sum.0));
            mae_row.push(fmt_metric(sum.1));
        }
        table.push_row(mse_row);
        table.push_row(mae_row);
    }
    progress.finish_table(&table, "table7", &profile);
}
