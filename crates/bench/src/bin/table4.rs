//! Regenerates **Table IV** — long-term forecasting MSE/MAE for all nine
//! benchmarks and all eleven models. The quick profile runs two horizons
//! per dataset; `--full` runs the paper's four. Rows stream as they
//! complete; a `1st-count` summary (the paper's bottom row) is printed at
//! the end.

use ts3_baselines::TABLE4_MODELS;
use ts3_bench::{fmt_metric, horizons_for, run_forecast_cell, Progress, RunProfile, Table, TABLE4_DATASETS};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let profile = RunProfile::from_args(&args);
    // Optional dataset filter: any non-flag args select datasets.
    let filter: Vec<String> = args
        .iter()
        .skip(1)
        .filter(|a| !a.starts_with("--"))
        .cloned()
        .collect();
    for f in &filter {
        if !TABLE4_DATASETS.iter().any(|d| d.eq_ignore_ascii_case(f)) {
            eprintln!(
                "error: unknown dataset `{f}` (expected one of: {})",
                TABLE4_DATASETS.join(", ")
            );
            std::process::exit(2);
        }
    }
    let datasets: Vec<&str> = TABLE4_DATASETS
        .iter()
        .copied()
        .filter(|d| filter.is_empty() || filter.iter().any(|f| f.eq_ignore_ascii_case(d)))
        .collect();
    let progress = Progress::new();
    progress.banner("Table IV (long-term forecasting)", &profile);
    progress.info(&format!("models: {}\n", TABLE4_MODELS.join(", ")));
    let mut columns = vec!["Dataset".to_string(), "H".to_string()];
    for m in TABLE4_MODELS {
        columns.push(format!("{m} MSE"));
        columns.push(format!("{m} MAE"));
    }
    let col_refs: Vec<&str> = columns.iter().map(|s| s.as_str()).collect();
    let mut table = Table::new("Table IV: Long-term forecasting (MSE / MAE)", &col_refs);
    let mut first_counts = vec![0usize; TABLE4_MODELS.len()];
    for dataset in &datasets {
        let mut avg = vec![(0.0f32, 0.0f32); TABLE4_MODELS.len()];
        let horizons = horizons_for(dataset, &profile);
        for &h in &horizons {
            let mut row = vec![dataset.to_string(), h.to_string()];
            let mut cells = Vec::new();
            for (mi, model) in TABLE4_MODELS.iter().enumerate() {
                let r = run_forecast_cell(model, dataset, h, &profile);
                progress.step(&format!(
                    "{dataset} H={h} {model}: mse={:.3} mae={:.3}",
                    r.mse, r.mae
                ));
                row.push(fmt_metric(r.mse));
                row.push(fmt_metric(r.mae));
                avg[mi].0 += r.mse / horizons.len() as f32;
                avg[mi].1 += r.mae / horizons.len() as f32;
                cells.push(r);
            }
            // Count firsts per row (MSE and MAE separately, paper-style).
            let best_mse = cells.iter().map(|c| c.mse).fold(f32::INFINITY, f32::min);
            let best_mae = cells.iter().map(|c| c.mae).fold(f32::INFINITY, f32::min);
            for (mi, c) in cells.iter().enumerate() {
                if c.mse <= best_mse + 1e-6 {
                    first_counts[mi] += 1;
                }
                if c.mae <= best_mae + 1e-6 {
                    first_counts[mi] += 1;
                }
            }
            table.push_row(row);
        }
        let mut row = vec![dataset.to_string(), "Avg".to_string()];
        for (mse, mae) in &avg {
            row.push(fmt_metric(*mse));
            row.push(fmt_metric(*mae));
        }
        table.push_row(row);
    }
    let mut row = vec!["1st".to_string(), "Count".to_string()];
    for c in &first_counts {
        row.push(c.to_string());
        row.push(String::new());
    }
    table.push_row(row);
    progress.finish_table(&table, "table4", &profile);
}
