//! Regenerates **Table VI** — architecture ablations: TS3Net vs `w/o TD`,
//! `w/o TF-Block` and `w/o Both` on ETTm1, Electricity, Traffic and
//! Exchange.

use ts3_bench::{fmt_metric, horizons_for, run_forecast_cell, Progress, RunProfile, Table};

const DATASETS: [&str; 4] = ["ETTm1", "Electricity", "Traffic", "Exchange"];
const VARIANTS: [&str; 4] = [
    "TS3Net w/o TD",
    "TS3Net w/o TF-Block",
    "TS3Net w/o Both",
    "TS3Net",
];

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let profile = RunProfile::from_args(&args);
    let progress = Progress::new();
    progress.banner("Table VI (architecture ablations)", &profile);
    let mut columns = vec!["Variant".to_string(), "Metric".to_string()];
    let datasets: Vec<&str> = if profile.name == "smoke" {
        vec![DATASETS[0]]
    } else {
        DATASETS.to_vec()
    };
    for d in &datasets {
        for h in horizons_for(d, &profile) {
            columns.push(format!("{d}-{h}"));
        }
        columns.push(format!("{d}-Avg"));
    }
    let col_refs: Vec<&str> = columns.iter().map(|s| s.as_str()).collect();
    let mut table = Table::new("Table VI: Ablations on model architecture", &col_refs);
    for variant in VARIANTS {
        let mut mse_row = vec![variant.to_string(), "MSE".to_string()];
        let mut mae_row = vec![variant.to_string(), "MAE".to_string()];
        for dataset in &datasets {
            let horizons = horizons_for(dataset, &profile);
            let mut sum = (0.0f32, 0.0f32);
            for &h in &horizons {
                let r = run_forecast_cell(variant, dataset, h, &profile);
                progress.step(&format!(
                    "{variant} {dataset} H={h}: mse={:.3} mae={:.3}",
                    r.mse, r.mae
                ));
                mse_row.push(fmt_metric(r.mse));
                mae_row.push(fmt_metric(r.mae));
                sum.0 += r.mse / horizons.len() as f32;
                sum.1 += r.mae / horizons.len() as f32;
            }
            mse_row.push(fmt_metric(sum.0));
            mae_row.push(fmt_metric(sum.1));
        }
        table.push_row(mse_row);
        table.push_row(mae_row);
    }
    progress.finish_table(&table, "table6", &profile);
}
