//! Regenerates **Table II** — dataset descriptions. Prints the paper's
//! columns for the generated (or real, if CSVs are present) benchmarks,
//! with the (train, val, test) sizes produced under the active profile.

use ts3_bench::{horizons_for, lookback_for, prepare_task, Progress, RunProfile, Table, TABLE4_DATASETS};
use ts3_data::{spec_by_name, Split};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let profile = RunProfile::from_args(&args);
    let progress = Progress::new();
    progress.banner("Table II (dataset descriptions)", &profile);
    let mut table = Table::new(
        "Table II: Description of datasets (synthetic stand-ins; sizes under this profile)",
        &[
            "Dataset",
            "Dim",
            "SeriesLength(horizons)",
            "DatasetSize(train,val,test windows)",
            "Information(Frequency)",
        ],
    );
    for name in TABLE4_DATASETS {
        let spec = spec_by_name(name).expect("catalog dataset");
        let lookback = lookback_for(name);
        let horizon = horizons_for(name, &profile)[0];
        let task = prepare_task(&spec, lookback, horizon, &profile);
        let sizes = format!(
            "({}, {}, {})",
            task.len(Split::Train),
            task.len(Split::Val),
            task.len(Split::Test)
        );
        let horizons: Vec<String> = ts3_bench::paper_horizons(name)
            .iter()
            .map(|h| h.to_string())
            .collect();
        table.push_row(vec![
            name.to_string(),
            task.channels().to_string(),
            format!("{{{}}}", horizons.join(", ")),
            sizes,
            format!("{} ({})", spec.info_label, spec.freq_label),
        ]);
    }
    progress.finish_table(&table, "table2", &profile);
}
