//! Regenerates **Table V** — imputation MSE/MAE on length-96 windows
//! with mask ratios {12.5%, 25%, 37.5%, 50%}, for all eleven models.
//!
//! Budget note (documented in DESIGN.md): each model is trained once per
//! dataset at the middle mask ratio (25%) and evaluated at all four
//! ratios with fresh masks; the paper trains one model per ratio. The
//! pointwise-masking objective is ratio-agnostic, so the comparison shape
//! is preserved.

use ts3_baselines::{build_imputer, TABLE4_MODELS};
use ts3_bench::{
    cell_configs, eval_imputer, fmt_metric, prepare_task, spec, train_imputer, Progress,
    RunProfile, Table, TABLE5_DATASETS,
};
use ts3_data::Split;

const RATIOS: [f32; 4] = [0.125, 0.25, 0.375, 0.5];

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let mut profile = RunProfile::from_args(&args);
    // Table III prescribes LR 1e-3 for the imputation task (vs the
    // forecasting rows' rate); keep that cap here.
    profile.lr = profile.lr.min(1e-3);
    let window = 96usize;
    let progress = Progress::new();
    progress.banner(&format!("Table V (imputation, length-{window} windows)"), &profile);
    let mut columns = vec!["Dataset".to_string(), "MaskRatio".to_string()];
    for m in TABLE4_MODELS {
        columns.push(format!("{m} MSE"));
        columns.push(format!("{m} MAE"));
    }
    let col_refs: Vec<&str> = columns.iter().map(|s| s.as_str()).collect();
    let mut table = Table::new("Table V: Imputation (MSE / MAE on masked points)", &col_refs);
    let mut first_counts = vec![0usize; TABLE4_MODELS.len()];
    let datasets: Vec<&str> = if profile.name == "smoke" {
        vec![TABLE5_DATASETS[0]]
    } else {
        TABLE5_DATASETS.to_vec()
    };
    for dataset in &datasets {
        let s = spec(dataset);
        let task = prepare_task(&s, window, window, &profile);
        let (cfg, ts3) = cell_configs(task.channels(), window, window, &profile);
        // Train each model once at the middle ratio, then sweep ratios.
        let mut per_model: Vec<Vec<(f32, f32)>> = Vec::new();
        for model_name in TABLE4_MODELS {
            let model = build_imputer(model_name, &cfg, &ts3, profile.seed);
            train_imputer(model.as_ref(), &task, 0.25, &profile);
            let mut rows = Vec::new();
            for &ratio in &RATIOS {
                let r = eval_imputer(model.as_ref(), &task, Split::Test, ratio, &profile);
                rows.push((r.mse, r.mae));
            }
            progress.step(&format!(
                "{dataset} {model_name}: {}",
                rows.iter()
                    .map(|(a, b)| format!("{a:.3}/{b:.3}"))
                    .collect::<Vec<_>>()
                    .join("  ")
            ));
            per_model.push(rows);
        }
        let mut avg = vec![(0.0f32, 0.0f32); TABLE4_MODELS.len()];
        for (ri, &ratio) in RATIOS.iter().enumerate() {
            let mut row = vec![dataset.to_string(), format!("{:.1}%", ratio * 100.0)];
            let best_mse = per_model
                .iter()
                .map(|m| m[ri].0)
                .fold(f32::INFINITY, f32::min);
            let best_mae = per_model
                .iter()
                .map(|m| m[ri].1)
                .fold(f32::INFINITY, f32::min);
            for (mi, m) in per_model.iter().enumerate() {
                row.push(fmt_metric(m[ri].0));
                row.push(fmt_metric(m[ri].1));
                avg[mi].0 += m[ri].0 / RATIOS.len() as f32;
                avg[mi].1 += m[ri].1 / RATIOS.len() as f32;
                if m[ri].0 <= best_mse + 1e-6 {
                    first_counts[mi] += 1;
                }
                if m[ri].1 <= best_mae + 1e-6 {
                    first_counts[mi] += 1;
                }
            }
            table.push_row(row);
        }
        let mut row = vec![dataset.to_string(), "Avg".to_string()];
        for (mse, mae) in &avg {
            row.push(fmt_metric(*mse));
            row.push(fmt_metric(*mae));
        }
        table.push_row(row);
    }
    let mut row = vec!["1st".to_string(), "Count".to_string()];
    for c in &first_counts {
        row.push(c.to_string());
        row.push(String::new());
    }
    table.push_row(row);
    progress.finish_table(&table, "table5", &profile);
}
