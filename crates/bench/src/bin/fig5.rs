//! Regenerates **Figure 5** — the triple-decomposition visualisation:
//! for ETTh1-like and ETTh2-like windows of length 192, show the original
//! series, the TF distribution (warm heat map in the paper), the spectrum
//! gradient (cool heat map) and the three parts (trend / regular /
//! fluctuant), as ASCII renderings plus CSV dumps.

use ts3_bench::viz::{downsample_grid, heat_map, line_plot};
use ts3_bench::{results_dir, Progress, RunProfile};
use ts3_data::spec_by_name;
use ts3_signal::{triple_decompose, TripleConfig};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let profile = RunProfile::from_args(&args);
    let progress = Progress::new();
    progress.banner("fig5 (triple decomposition visualisation)", &profile);
    let window = 192usize;
    let dir = results_dir();
    std::fs::create_dir_all(&dir).expect("results dir");
    for dataset in ["ETTh1", "ETTh2"] {
        let spec = spec_by_name(dataset).unwrap();
        let raw = spec.generate(profile.seed);
        // A window from the middle of the series, channel 0, standardised.
        let start = raw.shape()[0] / 2;
        let col: Vec<f32> = (0..window).map(|t| raw.at(&[start + t, 0])).collect();
        let mean: f32 = col.iter().sum::<f32>() / window as f32;
        let std = (col.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / window as f32)
            .sqrt()
            .max(1e-6);
        let col: Vec<f32> = col.iter().map(|v| (v - mean) / std).collect();
        let x = ts3_tensor::Tensor::from_vec(col.clone(), &[window, 1]);
        let cfg = TripleConfig { lambda: 16, ..Default::default() };
        let d = triple_decompose(&x, &cfg);
        println!("--- {dataset}: original series (length {window}, T_f = {}) ---", d.t_f);
        println!("{}", line_plot(&[("original", &col)], 10));
        // TF distribution [lambda, T].
        let tf: Vec<f32> = d.tf.as_slice().to_vec();
        let (g, r, c) = downsample_grid(&tf, cfg.lambda, window, 16, 96);
        println!("--- {dataset}: TF distribution Amp(WT(seasonal)) [lambda x T] ---");
        println!("{}", heat_map(&g, r, c));
        // Spectrum gradient.
        let sg: Vec<f32> = d.fluctuant_2d.as_slice().iter().map(|v| v.abs()).collect();
        let (g, r, c) = downsample_grid(&sg, cfg.lambda, window, 16, 96);
        println!("--- {dataset}: |spectrum gradient| [lambda x T] ---");
        println!("{}", heat_map(&g, r, c));
        // The three parts.
        let trend: Vec<f32> = (0..window).map(|t| d.trend.at(&[t, 0])).collect();
        let regular: Vec<f32> = (0..window).map(|t| d.regular.at(&[t, 0])).collect();
        let fluct: Vec<f32> = (0..window).map(|t| d.fluctuant_1d.at(&[t, 0])).collect();
        println!("--- {dataset}: decomposed parts ---");
        println!(
            "{}",
            line_plot(
                &[("trend", &trend), ("regular", &regular), ("fluctuant", &fluct)],
                12
            )
        );
        // CSV dump.
        let path = dir.join(format!("{}_{}.csv", ts3_bench::csv_stem("fig5", profile.name), dataset.to_lowercase()));
        let mut out = String::from("t,original,trend,regular,fluctuant\n");
        for t in 0..window {
            out.push_str(&format!(
                "{t},{},{},{},{}\n",
                col[t], trend[t], regular[t], fluct[t]
            ));
        }
        std::fs::write(&path, out).expect("write csv");
        println!("wrote {}", path.display());
        progress.step(&format!("decomposed {dataset}"));
    }
    progress.finish_trace("fig5", &profile);
}
