//! Regenerates **Table III** — the experiment configuration of TS3Net,
//! paper scale vs the active reproduction profile.

use ts3_bench::{Progress, RunProfile, Table};
use ts3net_core::TS3NetConfig;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let profile = RunProfile::from_args(&args);
    let progress = Progress::new();
    progress.banner("Table III (experiment configuration)", &profile);
    let scaled = TS3NetConfig::scaled(7, 96, 96);
    let paper = TS3NetConfig::paper(7, 96, 96);
    let mut table = Table::new(
        "Table III: Experiment configuration of TS3Net (Adam beta = (0.9, 0.999))",
        &["Setting", "Paper (forecasting)", "Paper (imputation)", "This run"],
    );
    let rows: Vec<(&str, String, String, String)> = vec![
        ("lambda", paper.lambda.to_string(), "100".into(), scaled.lambda.to_string()),
        ("Layers (TF-Blocks)", paper.n_blocks.to_string(), "2".into(), scaled.n_blocks.to_string()),
        ("d_min", "32".into(), "64".into(), "8".into()),
        ("d_max", "512".into(), "128".into(), "16".into()),
        ("LR", "1e-4".into(), "1e-3".into(), format!("{:.0e}", profile.lr)),
        ("Loss", "MSE".into(), "MSE".into(), "MSE".into()),
        ("Batch size", "32".into(), "16".into(), profile.batch_size.to_string()),
        ("Epochs", "10".into(), "10".into(), profile.epochs.to_string()),
        ("Patience", "3".into(), "3".into(), profile.patience.to_string()),
        ("Branches (wavelets)", "m".into(), "m".into(), scaled.branches.len().to_string()),
    ];
    for (k, a, b, c) in rows {
        table.push_row(vec![k.to_string(), a, b, c]);
    }
    progress.finish_table(&table, "table3", &profile);
}
