//! Internal calibration probe: wall-clock for one (model, dataset,
//! horizon) cell per model at the selected profile.

use std::time::Instant;
use ts3_baselines::{build_forecaster, BaselineConfig};
use ts3_bench::{persistence_baseline, prepare_task, train_forecaster, Progress, RunProfile};
use ts3_data::spec_by_name;
use ts3net_core::TS3NetConfig;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let profile = RunProfile::from_args(&args);
    let progress = Progress::new();
    let dataset = std::env::var("TS3_DATASET").unwrap_or_else(|_| "ETTh1".into());
    let spec = spec_by_name(&dataset).unwrap();
    let (lookback, horizon) = (96, 96);
    let task = prepare_task(&spec, lookback, horizon, &profile);
    let c = task.channels();
    let cfg = BaselineConfig::scaled(c, lookback, horizon);
    let ts3 = TS3NetConfig::scaled(c, lookback, horizon);
    let p = persistence_baseline(&task, &profile);
    progress.step(&format!("[{dataset}] persistence: mse={:.3} mae={:.3}", p.mse, p.mae));
    for name in args.iter().skip(1).filter(|a| !a.starts_with("--")) {
        let t0 = Instant::now();
        let model = build_forecaster(name, &cfg, &ts3, 0);
        let r = train_forecaster(model.as_ref(), &task, &profile);
        progress.step(&format!(
            "[{dataset}] {name}: {:.1}s  mse={:.3} mae={:.3}",
            t0.elapsed().as_secs_f32(),
            r.mse,
            r.mae,
        ));
    }
    progress.finish_trace("timing_probe", &profile);
}
