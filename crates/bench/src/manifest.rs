//! Run-manifest writer: when tracing is on (`TS3_TRACE>=1`), every
//! table/figure binary ends its run by dumping everything `ts3-obs`
//! recorded — the span tree, per-epoch events, metrics and a per-phase
//! wall-time summary — to `results/<stem>.trace.json`.
//!
//! The schema (`ts3.trace.v1`) is documented in README §Observability;
//! `crates/bench/src/bin/trace_check.rs` validates it in CI.

use crate::profile::RunProfile;
use crate::report::results_dir;
use std::path::PathBuf;
use ts3_json::Json;

/// Schema tag written at the top of every trace manifest.
pub const TRACE_SCHEMA: &str = "ts3.trace.v1";

/// Per-phase wall time: root spans grouped by name, with total duration
/// and occurrence count. A "phase" is any top-level span (e.g. one
/// `bench.train_forecaster` per table cell).
fn phases_json(spans: &[ts3_obs::SpanRec]) -> Json {
    let mut phases: Vec<(&'static str, f64, u64)> = Vec::new();
    for s in spans.iter().filter(|s| s.parent.is_none()) {
        match phases.iter_mut().find(|(n, _, _)| *n == s.name) {
            Some(p) => {
                p.1 += s.dur_ns as f64 / 1e3;
                p.2 += 1;
            }
            None => phases.push((s.name, s.dur_ns as f64 / 1e3, 1)),
        }
    }
    phases
        .into_iter()
        .map(|(name, total_us, count)| {
            Json::obj([
                ("name", Json::from(name)),
                ("total_us", Json::Num(total_us)),
                ("count", Json::Num(count as f64)),
            ])
        })
        .collect()
}

/// Write `results/<stem>.trace.json` for the run that just finished and
/// honour `TS3_METRICS_OUT`. Returns `None` (and records nothing) when
/// tracing is disabled, so untraced runs stay byte-identical to the
/// pre-observability harness.
pub fn write_trace_manifest(
    stem: &str,
    profile: &RunProfile,
) -> std::io::Result<Option<PathBuf>> {
    if !ts3_obs::enabled() {
        return Ok(None);
    }
    let (spans, events, dropped) = ts3_obs::snapshot_records();
    let (dropped_spans, dropped_events) = ts3_obs::dropped_counts();
    let threads_env = std::env::var("TS3_THREADS").ok();
    let simd_env = std::env::var("TS3_SIMD").ok();
    let doc = Json::obj([
        ("schema", Json::from(TRACE_SCHEMA)),
        ("stem", Json::from(stem)),
        (
            "profile",
            Json::obj([
                ("name", Json::from(profile.name)),
                ("seed", Json::Num(profile.seed as f64)),
                ("epochs", Json::Num(profile.epochs as f64)),
                ("batch_size", Json::Num(profile.batch_size as f64)),
            ]),
        ),
        (
            "threads",
            Json::obj([
                ("max_threads", Json::Num(ts3_tensor::par::max_threads() as f64)),
                (
                    "ts3_threads_env",
                    threads_env.map_or(Json::Null, Json::Str),
                ),
            ]),
        ),
        (
            "simd",
            Json::obj([
                ("kernel", Json::from(ts3_tensor::simd::kernel_name())),
                ("ts3_simd_env", simd_env.map_or(Json::Null, Json::Str)),
            ]),
        ),
        ("phases", phases_json(&spans)),
        ("trace", ts3_obs::trace_to_json(&spans, &events)),
        ("metrics", ts3_obs::metrics_to_json(&ts3_obs::metrics_snapshot())),
        ("dropped_records", Json::Num(dropped as f64)),
        ("dropped_spans", Json::Num(dropped_spans as f64)),
        ("dropped_events", Json::Num(dropped_events as f64)),
    ]);
    let dir = results_dir();
    std::fs::create_dir_all(&dir)?;
    let path = dir.join(format!("{stem}.trace.json"));
    std::fs::write(&path, doc.to_string_pretty())?;
    // Span self-time in folded-stacks format rides along for flamegraph
    // tooling (`results/<stem>.folded`).
    std::fs::write(dir.join(format!("{stem}.folded")), ts3_obs::folded_stacks(&spans))?;
    ts3_obs::export::write_metrics_out()?;
    Ok(Some(path))
}

#[cfg(test)]
mod tests {
    use super::*;

    // The gate level is process-global; keep the two manifest tests (the
    // only bench unit tests that flip it) from interleaving.
    static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

    #[test]
    fn disabled_manifest_is_noop() {
        let _g = LOCK.lock().unwrap();
        ts3_obs::set_level(0);
        let profile = RunProfile::smoke();
        let out = write_trace_manifest("manifest_noop_test", &profile).unwrap();
        assert!(out.is_none());
    }

    #[test]
    fn enabled_manifest_round_trips() {
        let _g = LOCK.lock().unwrap();
        ts3_obs::set_level(1);
        ts3_obs::reset();
        {
            let _s = ts3_obs::span("bench.train_forecaster");
            ts3_obs::event("epoch", |f| {
                f.set("epoch", 0usize);
                f.set("loss", 0.5f32);
            });
        }
        ts3_obs::counter_add("tensor.matmul.calls", 2);
        let profile = RunProfile::smoke();
        let path = write_trace_manifest("manifest_unit_test", &profile)
            .unwrap()
            .expect("manifest written");
        let doc = Json::parse(&std::fs::read_to_string(&path).unwrap()).unwrap();
        assert_eq!(doc.get("schema").unwrap().as_str(), Some(TRACE_SCHEMA));
        assert_eq!(
            doc.get("profile").unwrap().get("name").unwrap().as_str(),
            Some("smoke")
        );
        let phases = doc.get("phases").unwrap().as_array().unwrap();
        assert!(phases
            .iter()
            .any(|p| p.get("name").unwrap().as_str() == Some("bench.train_forecaster")));
        // Other tests may record concurrently, so look for *our* span
        // (a bench.train_forecaster root with an epoch event) rather
        // than assuming the dump holds nothing else.
        let spans = doc
            .get("trace")
            .unwrap()
            .get("spans")
            .unwrap()
            .as_array()
            .unwrap();
        assert!(spans.iter().any(|s| {
            s.get("name").unwrap().as_str() == Some("bench.train_forecaster")
                && s.get("events")
                    .and_then(|e| e.as_array())
                    .is_some_and(|evs| {
                        evs.iter().any(|e| e.get("name").unwrap().as_str() == Some("epoch"))
                    })
        }));
        assert!(
            doc.get("metrics")
                .unwrap()
                .get("counters")
                .unwrap()
                .get("tensor.matmul.calls")
                .unwrap()
                .as_usize()
                .unwrap()
                >= 2
        );
        // The SIMD dispatch section names the selected kernel family.
        let kernel = doc
            .get("simd")
            .unwrap()
            .get("kernel")
            .unwrap()
            .as_str()
            .unwrap();
        assert!(kernel == "avx2" || kernel == "scalar", "kernel = {kernel}");
        // Split drop counters are surfaced (zero in a short run) and the
        // folded-stacks sidecar exists with our root span in it.
        assert_eq!(doc.get("dropped_spans").unwrap().as_usize(), Some(0));
        assert_eq!(doc.get("dropped_events").unwrap().as_usize(), Some(0));
        let folded_path = path.with_extension("").with_extension("folded");
        let folded = std::fs::read_to_string(&folded_path).unwrap();
        assert!(folded.contains("bench.train_forecaster"));
        std::fs::remove_file(&folded_path).ok();
        std::fs::remove_file(&path).ok();
        ts3_obs::set_level(0);
        ts3_obs::reset();
    }
}
