//! Experiment definitions shared by the table binaries: which datasets,
//! horizons and models each paper table uses, and a one-call "run one
//! cell" entry point.

use crate::profile::RunProfile;
use crate::runner::{prepare_task, train_forecaster, CellResult};
use ts3_baselines::{build_forecaster, BaselineConfig};
use ts3_data::{spec_by_name, SeriesSpec};
use ts3net_core::TS3NetConfig;

/// The forecasting benchmark list of Table IV (ILI uses lookback 36 and
/// short horizons, everything else lookback 96).
pub const TABLE4_DATASETS: [&str; 9] = [
    "ETTm1", "ETTm2", "ETTh1", "ETTh2", "Electricity", "Traffic", "Weather", "Exchange", "ILI",
];

/// The imputation benchmark list of Table V.
pub const TABLE5_DATASETS: [&str; 5] = ["ETTm1", "ETTm2", "ETTh1", "ETTh2", "Weather"];

/// Lookback for a dataset (paper: 36 for ILI, 96 otherwise).
pub fn lookback_for(dataset: &str) -> usize {
    if dataset == "ILI" {
        36
    } else {
        96
    }
}

/// The paper's horizon grid for a dataset.
pub fn paper_horizons(dataset: &str) -> Vec<usize> {
    if dataset == "ILI" {
        vec![24, 36, 48, 60]
    } else {
        vec![96, 192, 336, 720]
    }
}

/// The horizon grid actually run under a profile (quick trims to the
/// ends of the range; full runs the paper grid).
pub fn horizons_for(dataset: &str, profile: &RunProfile) -> Vec<usize> {
    let all = paper_horizons(dataset);
    match profile.name {
        "smoke" => vec![all[0]],
        "quick" => vec![all[0], all[2]],
        _ => all,
    }
}


/// Horizon grid for the TS3Net-only sweep tables (VIII, IX): these grids
/// multiply rows x rhos/lambdas, so `quick` keeps a single horizon
/// (use `--full` for the paper grid).
pub fn sweep_horizons(dataset: &str, profile: &RunProfile) -> Vec<usize> {
    let all = horizons_for(dataset, profile);
    if profile.name == "quick" {
        vec![all[0]]
    } else {
        all
    }
}

/// Build the per-cell model configurations for a dataset with `c`
/// channels under a profile.
pub fn cell_configs(
    c: usize,
    lookback: usize,
    horizon: usize,
    profile: &RunProfile,
) -> (BaselineConfig, TS3NetConfig) {
    if profile.name == "full" {
        let mut ts3 = TS3NetConfig::scaled(c, lookback, horizon);
        ts3.lambda = 12;
        ts3.d_model = TS3NetConfig::paper_d_model(c, 8, 32);
        (BaselineConfig::scaled(c, lookback, horizon), ts3)
    } else {
        (
            BaselineConfig::scaled(c, lookback, horizon),
            TS3NetConfig::scaled(c, lookback, horizon),
        )
    }
}

/// Dataset spec by name (panics on unknown — the lists above are fixed).
pub fn spec(dataset: &str) -> SeriesSpec {
    // ts3-lint: allow(no-unwrap-in-lib) dataset names come from the fixed spec list; unknown names are a documented # Panics contract
    spec_by_name(dataset).unwrap_or_else(|| panic!("unknown dataset `{dataset}`"))
}

/// Train + evaluate one (model, dataset, horizon) forecasting cell.
pub fn run_forecast_cell(
    model_name: &str,
    dataset: &str,
    horizon: usize,
    profile: &RunProfile,
) -> CellResult {
    let s = spec(dataset);
    let lookback = lookback_for(dataset);
    let task = prepare_task(&s, lookback, horizon, profile);
    let (cfg, ts3) = cell_configs(task.channels(), lookback, horizon, profile);
    let model = build_forecaster(model_name, &cfg, &ts3, profile.seed);
    train_forecaster(model.as_ref(), &task, profile)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn horizon_grids_match_paper() {
        assert_eq!(paper_horizons("ETTh1"), vec![96, 192, 336, 720]);
        assert_eq!(paper_horizons("ILI"), vec![24, 36, 48, 60]);
        assert_eq!(lookback_for("ILI"), 36);
        assert_eq!(lookback_for("Traffic"), 96);
    }

    #[test]
    fn quick_profile_trims_horizons() {
        let q = RunProfile::quick();
        assert_eq!(horizons_for("ETTh1", &q), vec![96, 336]);
        let f = RunProfile::full();
        assert_eq!(horizons_for("ETTh1", &f).len(), 4);
        let s = RunProfile::smoke();
        assert_eq!(horizons_for("ILI", &s), vec![24]);
    }

    #[test]
    fn smoke_cell_runs_end_to_end() {
        let profile = RunProfile::smoke();
        let r = run_forecast_cell("DLinear", "ETTh1", 24, &profile);
        assert!(r.mse.is_finite() && r.mse > 0.0);
    }
}
