//! Run profiles: how much compute each table regeneration spends.
//!
//! The paper trains on a V100; this reproduction runs on whatever CPU is
//! available, so every binary accepts three profiles:
//!
//! * `smoke` — seconds; CI-grade sanity (tiny data, one epoch, few steps);
//! * `quick` — the default; minutes per table, preserves orderings;
//! * `full`  — closest to the paper's protocol that the CPU budget allows.
//!
//! Select with `--smoke` / `--full` CLI flags or `TS3_PROFILE=smoke|quick|full`.

/// Compute/duration profile for experiment runs.
#[derive(Debug, Clone)]
pub struct RunProfile {
    /// Human-readable profile name.
    pub name: &'static str,
    /// Synthetic data length multiplier (1.0 = default catalog sizes).
    pub data_scale: f32,
    /// Training epochs (paper: 10 with patience 3).
    pub epochs: usize,
    /// Early-stopping patience (paper: 3).
    pub patience: usize,
    /// Cap on train batches per epoch (None = full epoch).
    pub max_train_batches: Option<usize>,
    /// Cap on eval batches (None = full split).
    pub max_eval_batches: Option<usize>,
    /// Mini-batch size (paper: 32 forecasting / 16 imputation).
    pub batch_size: usize,
    /// Initial learning rate (paper: 1e-4 forecasting / 1e-3 imputation;
    /// the scaled models are far smaller so a larger rate converges in
    /// the step budget).
    pub lr: f32,
    /// Channel cap applied to wide datasets (compute guard).
    pub max_channels: usize,
    /// Base RNG seed.
    pub seed: u64,
}

impl RunProfile {
    /// CI-grade smoke profile.
    pub fn smoke() -> Self {
        RunProfile {
            name: "smoke",
            data_scale: 0.08,
            epochs: 1,
            patience: 1,
            max_train_batches: Some(2),
            max_eval_batches: Some(2),
            batch_size: 4,
            lr: 2e-3,
            max_channels: 4,
            seed: 2024,
        }
    }

    /// Default profile: minutes per table, orderings preserved.
    pub fn quick() -> Self {
        RunProfile {
            name: "quick",
            data_scale: 0.35,
            epochs: 3,
            patience: 2,
            max_train_batches: Some(30),
            max_eval_batches: Some(12),
            batch_size: 8,
            lr: 5e-3,
            max_channels: 8,
            seed: 2024,
        }
    }

    /// Heaviest profile the CPU budget supports.
    pub fn full() -> Self {
        RunProfile {
            name: "full",
            data_scale: 1.0,
            epochs: 6,
            patience: 3,
            max_train_batches: Some(120),
            max_eval_batches: Some(60),
            batch_size: 16,
            lr: 1e-3,
            max_channels: 16,
            seed: 2024,
        }
    }

    /// Resolve the profile from CLI args + environment.
    pub fn from_args(args: &[String]) -> Self {
        let flag = args.iter().find_map(|a| match a.as_str() {
            "--smoke" => Some("smoke"),
            "--quick" => Some("quick"),
            "--full" => Some("full"),
            _ => None,
        });
        let env = std::env::var("TS3_PROFILE").ok();
        let mut profile = match flag.or(env.as_deref()) {
            Some("smoke") => Self::smoke(),
            Some("full") => Self::full(),
            _ => Self::quick(),
        };
        // Fine-grained overrides for calibration runs.
        if let Ok(v) = std::env::var("TS3_EPOCHS") {
            if let Ok(n) = v.parse() {
                profile.epochs = n;
            }
        }
        if let Ok(v) = std::env::var("TS3_MAX_TRAIN") {
            if let Ok(n) = v.parse() {
                profile.max_train_batches = Some(n);
            }
        }
        if let Ok(v) = std::env::var("TS3_LR") {
            if let Ok(n) = v.parse() {
                profile.lr = n;
            }
        }
        profile
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profiles_order_by_cost() {
        let s = RunProfile::smoke();
        let q = RunProfile::quick();
        let f = RunProfile::full();
        assert!(s.data_scale < q.data_scale && q.data_scale < f.data_scale);
        assert!(s.epochs <= q.epochs && q.epochs <= f.epochs);
    }

    #[test]
    fn from_args_flags() {
        assert_eq!(RunProfile::from_args(&["--smoke".into()]).name, "smoke");
        assert_eq!(RunProfile::from_args(&["--full".into()]).name, "full");
        assert_eq!(RunProfile::from_args(&[]).name, "quick");
    }
}
