//! # ts3-bench
//!
//! Experiment harness for the TS3Net reproduction. Each binary in
//! `src/bin/` regenerates one table or figure from the paper's
//! evaluation section; the shared pieces live here:
//!
//! * [`profile`] — smoke / quick / full compute profiles;
//! * [`runner`] — the train/early-stop/evaluate loop (Adam, patience 3,
//!   MSE/MAE) for forecasting and imputation, with per-epoch `ts3-obs`
//!   events;
//! * [`report`] — aligned console tables + CSV/JSON persistence into
//!   `results/`, and the shared [`report::Progress`] reporter;
//! * [`manifest`] — the `results/<stem>.trace.json` run-manifest writer
//!   (active when `TS3_TRACE>=1`);
//! * [`timing`] — the wall-clock harness behind the opt-in `benches/`
//!   targets (`--features bench-harness`);
//! * [`viz`] — ASCII line plots and heat maps for the figures.

pub mod experiments;
pub mod manifest;
pub mod profile;
pub mod report;
pub mod runner;
pub mod timing;
pub mod viz;

pub use experiments::{cell_configs, horizons_for, lookback_for, paper_horizons, run_forecast_cell, spec, sweep_horizons, TABLE4_DATASETS, TABLE5_DATASETS};
pub use manifest::{write_trace_manifest, TRACE_SCHEMA};
pub use profile::RunProfile;
pub use report::{csv_stem, fmt_metric, results_dir, workspace_root, Progress, Table};
pub use runner::{
    eval_forecaster, eval_imputer, mean_fill_baseline, persistence_baseline, prepare_task,
    train_forecaster, train_imputer, CellResult,
};
