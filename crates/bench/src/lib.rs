//! # ts3-bench
//!
//! Experiment harness for the TS3Net reproduction. Each binary in
//! `src/bin/` regenerates one table or figure from the paper's
//! evaluation section; the shared pieces live here:
//!
//! * [`profile`] — smoke / quick / full compute profiles;
//! * [`runner`] — the train/early-stop/evaluate loop (Adam, patience 3,
//!   MSE/MAE) for forecasting and imputation;
//! * [`report`] — aligned console tables + CSV/JSON persistence into
//!   `results/`;
//! * [`timing`] — the wall-clock harness behind the opt-in `benches/`
//!   targets (`--features bench-harness`);
//! * [`viz`] — ASCII line plots and heat maps for the figures.

pub mod experiments;
pub mod profile;
pub mod report;
pub mod runner;
pub mod timing;
pub mod viz;

pub use experiments::{cell_configs, horizons_for, lookback_for, paper_horizons, run_forecast_cell, spec, sweep_horizons, TABLE4_DATASETS, TABLE5_DATASETS};
pub use profile::RunProfile;
pub use report::{csv_stem, fmt_metric, results_dir, Table};
pub use runner::{
    eval_forecaster, eval_imputer, mean_fill_baseline, persistence_baseline, prepare_task,
    train_forecaster, train_imputer, CellResult,
};
