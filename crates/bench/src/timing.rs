//! Minimal wall-clock timing harness for the opt-in benchmarks under
//! `benches/` (replacing criterion so the workspace stays free of
//! external dependencies).
//!
//! Methodology: each benchmark is warmed up for a fixed duration, then
//! measured in batches — the per-call iteration count is auto-scaled so
//! one sample lasts at least `MIN_SAMPLE` (1 ms), which keeps `Instant`
//! quantisation noise well below 1%. We report the **minimum** and
//! median per-iteration time across samples; the minimum is the
//! standard low-noise estimator for CPU-bound kernels (any run can only
//! be slowed down by interference, never sped up).
//!
//! Knobs: `TS3_BENCH_MS` overrides the per-benchmark measurement budget
//! in milliseconds (default 300).

use std::hint::black_box as hint_black_box;
use std::time::{Duration, Instant};

/// Re-export of [`std::hint::black_box`] under the name benchmark
/// bodies conventionally use.
pub fn black_box<T>(x: T) -> T {
    hint_black_box(x)
}

const WARMUP: Duration = Duration::from_millis(100);
const MIN_SAMPLE: Duration = Duration::from_millis(1);
const MAX_SAMPLES: usize = 50;

fn measure_budget() -> Duration {
    std::env::var("TS3_BENCH_MS")
        .ok()
        .and_then(|v| v.trim().parse::<u64>().ok())
        .map_or(Duration::from_millis(300), Duration::from_millis)
}

/// Timing summary of one benchmark (per-iteration durations).
#[derive(Debug, Clone, Copy)]
pub struct Stats {
    /// Fastest observed sample — the headline number.
    pub min: Duration,
    /// Median sample.
    pub median: Duration,
    /// Total iterations executed during measurement.
    pub iters: u64,
}

/// Collects named benchmark results and renders a summary table.
#[derive(Default)]
pub struct Harness {
    results: Vec<(String, Stats)>,
}

impl Harness {
    /// Fresh harness; labels are printed in registration order.
    pub fn new() -> Self {
        Harness::default()
    }

    /// Measure `f` and record it under `label`. Prints one progress
    /// line immediately so long runs show liveness.
    pub fn bench<R>(&mut self, label: &str, mut f: impl FnMut() -> R) {
        let stats = run_one(&mut f);
        println!(
            "{label:<40} min {:>12}  median {:>12}  ({} iters)",
            fmt_duration(stats.min),
            fmt_duration(stats.median),
            stats.iters
        );
        self.results.push((label.to_string(), stats));
    }

    /// Render the final summary table (sorted as registered).
    pub fn finish(self) {
        println!("\n== benchmark summary ({} entries) ==", self.results.len());
        for (label, s) in &self.results {
            println!("{label:<40} {:>12}", fmt_duration(s.min));
        }
    }
}

fn run_one<R>(f: &mut impl FnMut() -> R) -> Stats {
    // Warm-up: also discovers how many iterations fill MIN_SAMPLE.
    let mut per_sample = 1u64;
    let warm_start = Instant::now();
    loop {
        let t0 = Instant::now();
        for _ in 0..per_sample {
            hint_black_box(f());
        }
        let dt = t0.elapsed();
        if dt < MIN_SAMPLE {
            per_sample = per_sample.saturating_mul(2);
        } else if warm_start.elapsed() >= WARMUP {
            break;
        }
    }
    // Measurement.
    let budget = measure_budget();
    let mut samples: Vec<Duration> = Vec::new();
    let mut total_iters = 0u64;
    let run_start = Instant::now();
    while run_start.elapsed() < budget && samples.len() < MAX_SAMPLES {
        let t0 = Instant::now();
        for _ in 0..per_sample {
            hint_black_box(f());
        }
        samples.push(t0.elapsed() / per_sample as u32);
        total_iters += per_sample;
    }
    samples.sort();
    Stats {
        min: samples[0],
        median: samples[samples.len() / 2],
        iters: total_iters,
    }
}

/// Human format with µs/ms/s auto-ranging.
pub fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.2} s", ns as f64 / 1e9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fmt_duration_ranges() {
        assert_eq!(fmt_duration(Duration::from_nanos(500)), "500 ns");
        assert_eq!(fmt_duration(Duration::from_micros(1500)), "1.50 ms");
        assert_eq!(fmt_duration(Duration::from_secs(2)), "2.00 s");
    }

    #[test]
    fn harness_records_each_bench() {
        // Keep the budget tiny so the unit test stays fast.
        std::env::set_var("TS3_BENCH_MS", "5");
        let mut h = Harness::new();
        h.bench("noop", || black_box(1 + 1));
        assert_eq!(h.results.len(), 1);
        assert!(h.results[0].1.iters > 0);
        h.finish();
        std::env::remove_var("TS3_BENCH_MS");
    }
}
