//! Minimal wall-clock timing harness for the opt-in benchmarks under
//! `benches/` (replacing criterion so the workspace stays free of
//! external dependencies).
//!
//! Methodology: each benchmark body is first run once explicitly (paying
//! any lazy initialisation — thread-pool spawn, plan caches — outside the
//! measurement), then warmed up for a fixed duration while the per-call
//! iteration count is auto-scaled so one sample lasts at least
//! `MIN_SAMPLE` (1 ms), which keeps [`Instant`] quantisation noise well
//! below 1%. All deltas are monotonic `Instant` differences. We report
//! the **median** per-iteration time with its inter-quartile range
//! (p25..p75): the median is robust to interference spikes, and the IQR
//! makes run-to-run noise visible instead of averaging it away.
//!
//! Knobs: `TS3_BENCH_MS` overrides the per-benchmark measurement budget
//! in milliseconds (default 300).

use std::hint::black_box as hint_black_box;
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};
use ts3_json::Json;

/// Re-export of [`std::hint::black_box`] under the name benchmark
/// bodies conventionally use.
pub fn black_box<T>(x: T) -> T {
    hint_black_box(x)
}

const WARMUP: Duration = Duration::from_millis(100);
const MIN_SAMPLE: Duration = Duration::from_millis(1);
const MAX_SAMPLES: usize = 50;

fn measure_budget() -> Duration {
    std::env::var("TS3_BENCH_MS")
        .ok()
        .and_then(|v| v.trim().parse::<u64>().ok())
        .map_or(Duration::from_millis(300), Duration::from_millis)
}

/// Timing summary of one benchmark (per-iteration durations).
#[derive(Debug, Clone, Copy)]
pub struct Stats {
    /// Fastest observed sample (the classic low-noise estimator).
    pub min: Duration,
    /// 25th-percentile sample (lower edge of the IQR).
    pub p25: Duration,
    /// Median sample — the headline number.
    pub median: Duration,
    /// 75th-percentile sample (upper edge of the IQR).
    pub p75: Duration,
    /// Total iterations executed during measurement.
    pub iters: u64,
}

/// Collects named benchmark results and renders a summary table.
#[derive(Default)]
pub struct Harness {
    results: Vec<(String, Stats)>,
}

impl Harness {
    /// Fresh harness; labels are printed in registration order.
    pub fn new() -> Self {
        Harness::default()
    }

    /// Measure `f` and record it under `label` (by convention
    /// `op/shape`, which the JSON export splits apart). Prints one
    /// progress line immediately so long runs show liveness.
    pub fn bench<R>(&mut self, label: &str, mut f: impl FnMut() -> R) {
        let stats = run_one(&mut f);
        println!(
            "{label:<40} median {:>12}  IQR [{:>10} .. {:>10}]  ({} iters)",
            fmt_duration(stats.median),
            fmt_duration(stats.p25),
            fmt_duration(stats.p75),
            stats.iters
        );
        self.results.push((label.to_string(), stats));
    }

    /// All recorded results in registration order.
    pub fn results(&self) -> &[(String, Stats)] {
        &self.results
    }

    /// Write the results as machine-readable JSON: one entry per
    /// benchmark with the label's `op`/`shape` halves, nanosecond
    /// timing percentiles and the thread cap the run used.
    pub fn write_json(&self, path: &Path) -> std::io::Result<PathBuf> {
        let entries: Json = self
            .results
            .iter()
            .map(|(label, s)| {
                let (op, shape) = label.split_once('/').unwrap_or((label.as_str(), ""));
                Json::obj([
                    ("op", Json::from(op)),
                    ("shape", Json::from(shape)),
                    ("median_ns", Json::Num(s.median.as_nanos() as f64)),
                    ("p25_ns", Json::Num(s.p25.as_nanos() as f64)),
                    ("p75_ns", Json::Num(s.p75.as_nanos() as f64)),
                    ("min_ns", Json::Num(s.min.as_nanos() as f64)),
                    ("iters", Json::Num(s.iters as f64)),
                ])
            })
            .collect();
        let doc = Json::obj([
            ("schema", Json::from("ts3.bench.v1")),
            ("threads", Json::Num(ts3_tensor::par::max_threads() as f64)),
            ("entries", entries),
        ]);
        std::fs::write(path, doc.to_string_pretty())?;
        Ok(path.to_path_buf())
    }

    /// Render the final summary table (sorted as registered).
    pub fn finish(self) {
        println!("\n== benchmark summary ({} entries) ==", self.results.len());
        for (label, s) in &self.results {
            println!(
                "{label:<40} {:>12} (IQR {:>10} .. {:>10})",
                fmt_duration(s.median),
                fmt_duration(s.p25),
                fmt_duration(s.p75)
            );
        }
    }
}

/// Nearest-rank percentile of an ascending-sorted sample list.
fn percentile(sorted: &[Duration], q: f64) -> Duration {
    let idx = ((sorted.len() - 1) as f64 * q).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

fn run_one<R>(f: &mut impl FnMut() -> R) -> Stats {
    // One explicit warm-up iteration before anything is timed: the first
    // call pays one-off lazy costs that must not skew calibration.
    hint_black_box(f());
    // Warm-up: also discovers how many iterations fill MIN_SAMPLE.
    let mut per_sample = 1u64;
    let warm_start = Instant::now();
    loop {
        let t0 = Instant::now();
        for _ in 0..per_sample {
            hint_black_box(f());
        }
        let dt = t0.elapsed();
        if dt < MIN_SAMPLE {
            per_sample = per_sample.saturating_mul(2);
        } else if warm_start.elapsed() >= WARMUP {
            break;
        }
    }
    // Measurement: monotonic Instant deltas only.
    let budget = measure_budget();
    let mut samples: Vec<Duration> = Vec::new();
    let mut total_iters = 0u64;
    let run_start = Instant::now();
    while run_start.elapsed() < budget && samples.len() < MAX_SAMPLES {
        let t0 = Instant::now();
        for _ in 0..per_sample {
            hint_black_box(f());
        }
        samples.push(t0.elapsed() / per_sample as u32);
        total_iters += per_sample;
    }
    samples.sort();
    Stats {
        min: samples[0],
        p25: percentile(&samples, 0.25),
        median: percentile(&samples, 0.50),
        p75: percentile(&samples, 0.75),
        iters: total_iters,
    }
}

/// Human format with µs/ms/s auto-ranging.
pub fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.2} s", ns as f64 / 1e9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fmt_duration_ranges() {
        assert_eq!(fmt_duration(Duration::from_nanos(500)), "500 ns");
        assert_eq!(fmt_duration(Duration::from_micros(1500)), "1.50 ms");
        assert_eq!(fmt_duration(Duration::from_secs(2)), "2.00 s");
    }

    #[test]
    fn percentiles_are_ordered() {
        let samples: Vec<Duration> = (1..=9).map(Duration::from_micros).collect();
        let p25 = percentile(&samples, 0.25);
        let p50 = percentile(&samples, 0.50);
        let p75 = percentile(&samples, 0.75);
        assert!(p25 <= p50 && p50 <= p75);
        assert_eq!(p50, Duration::from_micros(5));
    }

    #[test]
    fn harness_records_each_bench() {
        // Keep the budget tiny so the unit test stays fast.
        std::env::set_var("TS3_BENCH_MS", "5");
        let mut h = Harness::new();
        h.bench("noop/1", || black_box(1 + 1));
        assert_eq!(h.results().len(), 1);
        let s = h.results()[0].1;
        assert!(s.iters > 0);
        assert!(s.min <= s.p25 && s.p25 <= s.median && s.median <= s.p75);
        h.finish();
        std::env::remove_var("TS3_BENCH_MS");
    }

    #[test]
    fn json_export_round_trips() {
        std::env::set_var("TS3_BENCH_MS", "5");
        let mut h = Harness::new();
        h.bench("fft/96", || black_box(2 * 2));
        let path = std::env::temp_dir().join("ts3_bench_json_test.json");
        h.write_json(&path).unwrap();
        let doc = Json::parse(&std::fs::read_to_string(&path).unwrap()).unwrap();
        assert_eq!(doc.get("schema").unwrap().as_str(), Some("ts3.bench.v1"));
        assert!(doc.get("threads").unwrap().as_usize().unwrap() >= 1);
        let entries = doc.get("entries").unwrap().as_array().unwrap();
        assert_eq!(entries[0].get("op").unwrap().as_str(), Some("fft"));
        assert_eq!(entries[0].get("shape").unwrap().as_str(), Some("96"));
        assert!(entries[0].get("median_ns").unwrap().as_f64().unwrap() >= 0.0);
        std::fs::remove_file(&path).ok();
        std::env::remove_var("TS3_BENCH_MS");
    }
}
