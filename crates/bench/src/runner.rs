//! The train/evaluate loop shared by every experiment: Adam with the
//! paper's schedule, early stopping on validation loss (patience 3), and
//! MSE/MAE test metrics.

use crate::profile::RunProfile;
use ts3_data::{mask_batch, ForecastTask, SeriesSpec, Split};
use ts3_nn::{lr_type1, mae, masked_mae, masked_mse, mse, Adam, Average, Ctx, Optimizer};
use ts3_tensor::Tensor;
use ts3net_core::{ForecastModel, ImputationModel};

/// Result of one (model, dataset, horizon) cell.
#[derive(Debug, Clone, Copy)]
pub struct CellResult {
    /// Test mean squared error.
    pub mse: f32,
    /// Test mean absolute error.
    pub mae: f32,
}

/// Prepare a forecasting task from a dataset spec under a profile:
/// generate (or load) the raw series, cap wide channel counts, and window
/// it.
pub fn prepare_task(
    spec: &SeriesSpec,
    lookback: usize,
    horizon: usize,
    profile: &RunProfile,
) -> ForecastTask {
    let mut spec = spec.clone();
    // Every split must host at least one (lookback + horizon) window; the
    // validation/test regions are extended backwards by `lookback`, so
    // they need `horizon + 1` own points. Add 30% margin for real
    // batches.
    let (ft, fv, fte) = spec.split;
    let needed = [
        (lookback + horizon + 1) as f32 / ft,
        (horizon + 1) as f32 / fv,
        (horizon + 1) as f32 / fte,
    ]
    .into_iter()
    .fold(0.0f32, f32::max)
        * 1.3;
    spec.len = ((spec.len as f32 * profile.data_scale) as usize).max(needed.ceil() as usize);
    let raw = match ts3_data::try_load_benchmark(spec.name) {
        Some(real) => real,
        None => spec.generate(profile.seed),
    };
    let raw = if raw.shape()[1] > profile.max_channels {
        raw.narrow(1, 0, profile.max_channels)
    } else {
        raw
    };
    ForecastTask::new(&raw, lookback, horizon, spec.split)
}

/// Evaluate a forecaster on one split.
pub fn eval_forecaster(
    model: &dyn ForecastModel,
    task: &ForecastTask,
    split: Split,
    profile: &RunProfile,
) -> CellResult {
    let _s = ts3_obs::span("bench.eval_forecaster");
    let mut ctx = Ctx::eval();
    let mut m1 = Average::new();
    let mut m2 = Average::new();
    let batches = task.epoch_batches(split, profile.batch_size, 0, profile.max_eval_batches);
    for idx in &batches {
        let (x, y) = task.batch(split, idx);
        let pred = model.forecast(&x, &mut ctx);
        m1.push_weighted(mse(pred.value(), &y), idx.len() as f32);
        m2.push_weighted(mae(pred.value(), &y), idx.len() as f32);
    }
    CellResult { mse: m1.mean(), mae: m2.mean() }
}

/// Train a forecaster with early stopping and return test metrics.
pub fn train_forecaster(
    model: &dyn ForecastModel,
    task: &ForecastTask,
    profile: &RunProfile,
) -> CellResult {
    let mut _s = ts3_obs::span("bench.train_forecaster");
    if _s.active() {
        _s.field("epochs", profile.epochs);
        _s.field("lr", profile.lr);
    }
    let mut opt = Adam::new(model.parameters(), profile.lr);
    let mut ctx = Ctx::train(profile.seed);
    let mut best_val = f32::INFINITY;
    let mut bad_epochs = 0usize;
    let mut stop_reason = "epochs_exhausted";
    let mut stop_epoch = 0usize;
    for epoch in 0..profile.epochs {
        stop_epoch = epoch;
        let lr = lr_type1(profile.lr, epoch);
        opt.set_lr(lr);
        let batches = task.epoch_batches(
            Split::Train,
            profile.batch_size,
            profile.seed + epoch as u64,
            profile.max_train_batches,
        );
        let mut train_loss = Average::new();
        for idx in &batches {
            let (x, y) = task.batch(Split::Train, idx);
            let loss = model.forecast(&x, &mut ctx).mse_loss(&y);
            train_loss.push_weighted(loss.value().item(), idx.len() as f32);
            opt.zero_grad();
            loss.backward();
            opt.clip_grad_norm(5.0);
            opt.step();
        }
        let val = eval_forecaster(model, task, Split::Val, profile);
        if val.mse < best_val - 1e-6 {
            best_val = val.mse;
            bad_epochs = 0;
        } else {
            bad_epochs += 1;
        }
        ts3_obs::event("epoch", |f| {
            f.set("epoch", epoch);
            f.set("loss", train_loss.mean());
            f.set("lr", lr);
            f.set("val_mse", val.mse);
            f.set("bad_epochs", bad_epochs);
        });
        if bad_epochs >= profile.patience {
            stop_reason = "patience"; // early stopping (paper: patience 3)
            break;
        }
    }
    ts3_obs::event("early_stop", |f| {
        f.set("reason", stop_reason);
        f.set("epoch", stop_epoch);
        f.set("best_val", best_val);
    });
    eval_forecaster(model, task, Split::Test, profile)
}

/// Evaluate an imputer on one split at a mask ratio.
pub fn eval_imputer(
    model: &dyn ImputationModel,
    task: &ForecastTask,
    split: Split,
    ratio: f32,
    profile: &RunProfile,
) -> CellResult {
    let _s = ts3_obs::span("bench.eval_imputer");
    let mut ctx = Ctx::eval();
    let mut m1 = Average::new();
    let mut m2 = Average::new();
    let batches = task.epoch_batches(split, profile.batch_size, 0, profile.max_eval_batches);
    for (bi, idx) in batches.iter().enumerate() {
        let (x, _) = task.batch(split, idx);
        let mb = mask_batch(&x, ratio, profile.seed + bi as u64);
        let pred = model.impute(&mb.masked, &mb.mask, &mut ctx);
        m1.push_weighted(masked_mse(pred.value(), &mb.target, &mb.mask), idx.len() as f32);
        m2.push_weighted(masked_mae(pred.value(), &mb.target, &mb.mask), idx.len() as f32);
    }
    CellResult { mse: m1.mean(), mae: m2.mean() }
}

/// Train an imputer at a mask ratio and return masked test metrics.
pub fn train_imputer(
    model: &dyn ImputationModel,
    task: &ForecastTask,
    ratio: f32,
    profile: &RunProfile,
) -> CellResult {
    let mut _s = ts3_obs::span("bench.train_imputer");
    if _s.active() {
        _s.field("epochs", profile.epochs);
        _s.field("lr", profile.lr);
        _s.field("ratio", ratio);
    }
    let mut opt = Adam::new(model.parameters(), profile.lr);
    let mut ctx = Ctx::train(profile.seed);
    let mut best_val = f32::INFINITY;
    let mut bad_epochs = 0usize;
    let mut stop_reason = "epochs_exhausted";
    let mut stop_epoch = 0usize;
    for epoch in 0..profile.epochs {
        stop_epoch = epoch;
        let lr = lr_type1(profile.lr, epoch);
        opt.set_lr(lr);
        let batches = task.epoch_batches(
            Split::Train,
            profile.batch_size,
            profile.seed + 31 * epoch as u64,
            profile.max_train_batches,
        );
        let mut train_loss = Average::new();
        for (bi, idx) in batches.iter().enumerate() {
            let (x, _) = task.batch(Split::Train, idx);
            let mb = mask_batch(&x, ratio, profile.seed + (epoch * 1000 + bi) as u64);
            let loss = model
                .impute(&mb.masked, &mb.mask, &mut ctx)
                .masked_mse_loss(&mb.target, &mb.mask);
            train_loss.push_weighted(loss.value().item(), idx.len() as f32);
            opt.zero_grad();
            loss.backward();
            opt.clip_grad_norm(5.0);
            opt.step();
        }
        let val = eval_imputer(model, task, Split::Val, ratio, profile);
        if val.mse < best_val - 1e-6 {
            best_val = val.mse;
            bad_epochs = 0;
        } else {
            bad_epochs += 1;
        }
        ts3_obs::event("epoch", |f| {
            f.set("epoch", epoch);
            f.set("loss", train_loss.mean());
            f.set("lr", lr);
            f.set("val_mse", val.mse);
            f.set("bad_epochs", bad_epochs);
        });
        if bad_epochs >= profile.patience {
            stop_reason = "patience";
            break;
        }
    }
    ts3_obs::event("early_stop", |f| {
        f.set("reason", stop_reason);
        f.set("epoch", stop_epoch);
        f.set("best_val", best_val);
    });
    eval_imputer(model, task, Split::Test, ratio, profile)
}

/// Mean-fill reference error for imputation (the "do nothing smart"
/// floor used in sanity tests).
pub fn mean_fill_baseline(task: &ForecastTask, ratio: f32, profile: &RunProfile) -> CellResult {
    let mut m1 = Average::new();
    let mut m2 = Average::new();
    let batches = task.epoch_batches(Split::Test, profile.batch_size, 0, profile.max_eval_batches);
    for (bi, idx) in batches.iter().enumerate() {
        let (x, _) = task.batch(Split::Test, idx);
        let mb = mask_batch(&x, ratio, profile.seed + bi as u64);
        let filled = ts3_baselines::mean_fill(&mb.masked, &mb.mask);
        m1.push_weighted(masked_mse(&filled, &mb.target, &mb.mask), idx.len() as f32);
        m2.push_weighted(masked_mae(&filled, &mb.target, &mb.mask), idx.len() as f32);
    }
    CellResult { mse: m1.mean(), mae: m2.mean() }
}

/// Persistence (repeat-last-value) forecasting reference.
pub fn persistence_baseline(task: &ForecastTask, profile: &RunProfile) -> CellResult {
    let mut m1 = Average::new();
    let mut m2 = Average::new();
    let horizon = task.horizon;
    let batches = task.epoch_batches(Split::Test, profile.batch_size, 0, profile.max_eval_batches);
    for idx in &batches {
        let (x, y) = task.batch(Split::Test, idx);
        let last = x.narrow(1, x.shape()[1] - 1, 1);
        let pred: Tensor = last.repeat_axis(1, horizon);
        m1.push_weighted(mse(&pred, &y), idx.len() as f32);
        m2.push_weighted(mae(&pred, &y), idx.len() as f32);
    }
    CellResult { mse: m1.mean(), mae: m2.mean() }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ts3_baselines::{BaselineConfig, DLinear};
    use ts3_data::spec_by_name;

    #[test]
    fn prepare_task_caps_channels_and_scales_length() {
        let spec = spec_by_name("Electricity").unwrap();
        let profile = RunProfile::smoke();
        let task = prepare_task(&spec, 24, 12, &profile);
        assert!(task.channels() <= profile.max_channels);
        assert!(!task.is_empty(Split::Test));
    }

    #[test]
    fn train_forecaster_beats_untrained() {
        let spec = spec_by_name("ETTh1").unwrap();
        let mut profile = RunProfile::smoke();
        profile.max_train_batches = Some(10);
        profile.epochs = 2;
        let task = prepare_task(&spec, 24, 12, &profile);
        let cfg = BaselineConfig::scaled(task.channels(), 24, 12);
        let model = DLinear::new(&cfg, 7);
        let before = eval_forecaster(&model, &task, Split::Test, &profile);
        let after = train_forecaster(&model, &task, &profile);
        assert!(
            after.mse < before.mse,
            "training did not help: {} -> {}",
            before.mse,
            after.mse
        );
    }

    #[test]
    fn persistence_baseline_is_finite() {
        let spec = spec_by_name("Exchange").unwrap();
        let profile = RunProfile::smoke();
        let task = prepare_task(&spec, 24, 12, &profile);
        let r = persistence_baseline(&task, &profile);
        assert!(r.mse.is_finite() && r.mae.is_finite());
        assert!(r.mse > 0.0);
    }

    #[test]
    fn mean_fill_baseline_is_finite() {
        let spec = spec_by_name("ETTh1").unwrap();
        let profile = RunProfile::smoke();
        let task = prepare_task(&spec, 24, 24, &profile);
        let r = mean_fill_baseline(&task, 0.25, &profile);
        assert!(r.mse.is_finite());
        assert!(r.mse > 0.0);
    }
}
