//! Terminal visualisation for the paper's figures: ASCII line plots
//! (Fig. 3–4 forecast showcases) and heat maps (Fig. 5 TF distribution /
//! spectrum gradient), plus CSV dumps for external plotting.

/// Render one or more series as an ASCII line plot. Each series gets its
/// own glyph; later series overwrite earlier ones on collisions.
pub fn line_plot(series: &[(&str, &[f32])], height: usize) -> String {
    assert!(!series.is_empty(), "line_plot needs at least one series");
    let width = series.iter().map(|(_, s)| s.len()).max().unwrap_or(0);
    if width == 0 {
        return String::new();
    }
    let min = series
        .iter()
        .flat_map(|(_, s)| s.iter())
        .cloned()
        .fold(f32::INFINITY, f32::min);
    let max = series
        .iter()
        .flat_map(|(_, s)| s.iter())
        .cloned()
        .fold(f32::NEG_INFINITY, f32::max);
    let span = (max - min).max(1e-9);
    let glyphs = ['*', '+', 'o', 'x', '#'];
    let mut grid = vec![vec![' '; width]; height];
    for (si, (_, s)) in series.iter().enumerate() {
        let g = glyphs[si % glyphs.len()];
        for (x, &v) in s.iter().enumerate() {
            let row = ((max - v) / span * (height - 1) as f32).round() as usize;
            grid[row.min(height - 1)][x] = g;
        }
    }
    let mut out = String::new();
    out.push_str(&format!("max {max:.3}\n"));
    for row in grid {
        out.push('|');
        out.extend(row);
        out.push('\n');
    }
    out.push_str(&format!("min {min:.3}\n"));
    for (si, (name, _)) in series.iter().enumerate() {
        out.push_str(&format!("  {} = {}\n", glyphs[si % glyphs.len()], name));
    }
    out
}

/// Render a `[rows, cols]` grid as an ASCII heat map using density
/// characters (low -> high: ` .:-=+*#%@`).
pub fn heat_map(values: &[f32], rows: usize, cols: usize) -> String {
    assert_eq!(values.len(), rows * cols, "heat_map: size mismatch");
    const RAMP: [char; 10] = [' ', '.', ':', '-', '=', '+', '*', '#', '%', '@'];
    let min = values.iter().cloned().fold(f32::INFINITY, f32::min);
    let max = values.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
    let span = (max - min).max(1e-9);
    let mut out = String::new();
    for r in 0..rows {
        out.push('|');
        for c in 0..cols {
            let v = (values[r * cols + c] - min) / span;
            let idx = (v * (RAMP.len() - 1) as f32).round() as usize;
            out.push(RAMP[idx.min(RAMP.len() - 1)]);
        }
        out.push('\n');
    }
    out.push_str(&format!("range [{min:.3}, {max:.3}]\n"));
    out
}

/// Downsample a grid to at most `max_rows x max_cols` by block averaging
/// (so wide TF distributions fit a terminal).
pub fn downsample_grid(
    values: &[f32],
    rows: usize,
    cols: usize,
    max_rows: usize,
    max_cols: usize,
) -> (Vec<f32>, usize, usize) {
    let rstep = rows.div_ceil(max_rows).max(1);
    let cstep = cols.div_ceil(max_cols).max(1);
    let out_rows = rows.div_ceil(rstep);
    let out_cols = cols.div_ceil(cstep);
    let mut out = vec![0.0f32; out_rows * out_cols];
    for orow in 0..out_rows {
        for ocol in 0..out_cols {
            let mut acc = 0.0f32;
            let mut n = 0.0f32;
            for r in orow * rstep..((orow + 1) * rstep).min(rows) {
                for c in ocol * cstep..((ocol + 1) * cstep).min(cols) {
                    acc += values[r * cols + c];
                    n += 1.0;
                }
            }
            out[orow * out_cols + ocol] = acc / n.max(1.0);
        }
    }
    (out, out_rows, out_cols)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_plot_contains_all_legends() {
        let a: Vec<f32> = (0..20).map(|i| (i as f32 * 0.4).sin()).collect();
        let b: Vec<f32> = (0..20).map(|i| (i as f32 * 0.4).cos()).collect();
        let s = line_plot(&[("truth", &a), ("pred", &b)], 8);
        assert!(s.contains("truth"));
        assert!(s.contains("pred"));
        assert!(s.lines().count() > 8);
    }

    #[test]
    fn line_plot_constant_series_is_finite() {
        let a = vec![1.0f32; 10];
        let s = line_plot(&[("flat", &a)], 4);
        assert!(s.contains('*'));
    }

    #[test]
    fn heat_map_uses_ramp_extremes() {
        let v = vec![0.0, 1.0, 0.5, 0.25];
        let s = heat_map(&v, 2, 2);
        assert!(s.contains('@'));
        assert!(s.contains(' '));
        assert!(s.contains("range"));
    }

    #[test]
    fn downsample_grid_averages_blocks() {
        let v: Vec<f32> = (0..16).map(|i| i as f32).collect();
        let (d, r, c) = downsample_grid(&v, 4, 4, 2, 2);
        assert_eq!((r, c), (2, 2));
        // Top-left block: mean of {0,1,4,5} = 2.5
        assert!((d[0] - 2.5).abs() < 1e-6);
        // Bottom-right block: mean of {10,11,14,15} = 12.5
        assert!((d[3] - 12.5).abs() < 1e-6);
    }

    #[test]
    fn downsample_noop_when_small() {
        let v = vec![1.0, 2.0];
        let (d, r, c) = downsample_grid(&v, 1, 2, 10, 10);
        assert_eq!((r, c), (1, 2));
        assert_eq!(d, v);
    }
}
