//! The ts3-obs determinism contract, checked end-to-end: a smoke
//! training run must produce the SAME metrics dump (counter values) and
//! the SAME span tree shape (names + nesting + event names, durations
//! excluded) whether the tensor kernels run on 1 thread or 4.
//!
//! This is its own integration-test binary (not a unit test) so it owns
//! the process-global collector and thread-cap state outright.

use ts3_bench::{prepare_task, train_forecaster, RunProfile};
use ts3_baselines::{build_forecaster, BaselineConfig};
use ts3_data::spec_by_name;
use ts3net_core::TS3NetConfig;

/// One smoke training cell (TS3Net so the signal/CWT kernels are
/// exercised too), returning (sorted counters, span tree shape).
fn traced_smoke_run() -> (Vec<(&'static str, u64)>, String) {
    ts3_obs::reset();
    let mut profile = RunProfile::smoke();
    profile.max_train_batches = Some(2);
    let spec = spec_by_name("ETTh1").unwrap();
    let task = prepare_task(&spec, 24, 12, &profile);
    let cfg = BaselineConfig::scaled(task.channels(), 24, 12);
    let ts3 = TS3NetConfig::scaled(task.channels(), 24, 12);
    let model = build_forecaster("TS3Net", &cfg, &ts3, profile.seed);
    let r = train_forecaster(model.as_ref(), &task, &profile);
    assert!(r.mse.is_finite());
    let snap = ts3_obs::metrics_snapshot();
    (snap.counters, ts3_obs::tree_shape())
}

#[test]
fn metrics_and_tree_shape_ignore_thread_count() {
    ts3_obs::set_level(1);

    ts3_tensor::par::set_max_threads(1);
    let (counters_1, shape_1) = traced_smoke_run();

    ts3_tensor::par::set_max_threads(4);
    let (counters_4, shape_4) = traced_smoke_run();

    ts3_obs::set_level(0);
    ts3_obs::reset();

    assert!(!counters_1.is_empty(), "smoke run recorded no counters");
    assert!(
        counters_1.iter().any(|(k, _)| *k == "tensor.matmul.flops"),
        "matmul flop counter missing: {counters_1:?}"
    );
    assert_eq!(
        counters_1, counters_4,
        "metrics dump differs between TS3_THREADS=1 and TS3_THREADS=4"
    );
    assert!(!shape_1.is_empty(), "smoke run recorded no spans");
    assert_eq!(
        shape_1, shape_4,
        "span tree shape differs between TS3_THREADS=1 and TS3_THREADS=4"
    );
}
