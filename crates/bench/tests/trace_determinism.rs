//! The ts3-obs determinism contract, checked end-to-end: a smoke
//! training run must produce the SAME metrics dump (counter values) and
//! the SAME span tree shape (names + nesting + event names, durations
//! excluded) whether the tensor kernels run on 1 thread or 4.
//!
//! Scheduling counters (any name containing `".sched."`, e.g.
//! `tensor.par.sched.pool_dispatches` vs `...inline_runs`) are excluded
//! from the comparison by design: they describe HOW work was scheduled,
//! which legitimately varies with the thread cap, while every other
//! counter describes WHAT work was done and must not. See the ts3-obs
//! crate docs for the convention.
//!
//! This is its own integration-test binary (not a unit test) so it owns
//! the process-global collector and thread-cap state outright; the
//! tests all flip the global thread cap, so they serialise on a mutex.

use std::sync::Mutex;

use ts3_bench::{prepare_task, train_forecaster, RunProfile};
use ts3_baselines::{build_forecaster, BaselineConfig};
use ts3_data::spec_by_name;
use ts3_signal::{CwtPlan, WaveletKind};
use ts3_tensor::par::set_max_threads;
use ts3_tensor::Tensor;
use ts3net_core::TS3NetConfig;

/// All tests mutate the process-global thread cap; run them one at a
/// time. `lock_poison_ok` keeps later tests running even if an earlier
/// one panicked while holding the lock (the panic test does so on
/// purpose — in a worker, not under the lock, but stay robust).
static CAP_LOCK: Mutex<()> = Mutex::new(());

fn cap_lock() -> std::sync::MutexGuard<'static, ()> {
    CAP_LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

/// One smoke training cell (TS3Net so the signal/CWT kernels are
/// exercised too), returning (sorted work counters, span tree shape).
/// `.sched.` counters are filtered out per the determinism contract.
fn traced_smoke_run() -> (Vec<(&'static str, u64)>, String) {
    ts3_obs::reset();
    let mut profile = RunProfile::smoke();
    profile.max_train_batches = Some(2);
    let spec = spec_by_name("ETTh1").unwrap();
    let task = prepare_task(&spec, 24, 12, &profile);
    let cfg = BaselineConfig::scaled(task.channels(), 24, 12);
    let ts3 = TS3NetConfig::scaled(task.channels(), 24, 12);
    let model = build_forecaster("TS3Net", &cfg, &ts3, profile.seed);
    let r = train_forecaster(model.as_ref(), &task, &profile);
    assert!(r.mse.is_finite());
    let snap = ts3_obs::metrics_snapshot();
    let counters = snap
        .counters
        .into_iter()
        .filter(|(k, _)| !k.contains(".sched."))
        .collect();
    (counters, ts3_obs::tree_shape())
}

#[test]
fn metrics_and_tree_shape_ignore_thread_count() {
    let _guard = cap_lock();
    ts3_obs::set_level(1);

    set_max_threads(1);
    let (counters_1, shape_1) = traced_smoke_run();

    set_max_threads(4);
    let (counters_4, shape_4) = traced_smoke_run();

    ts3_obs::set_level(0);
    ts3_obs::reset();

    assert!(!counters_1.is_empty(), "smoke run recorded no counters");
    assert!(
        counters_1.iter().any(|(k, _)| *k == "tensor.matmul.flops"),
        "matmul flop counter missing: {counters_1:?}"
    );
    assert_eq!(
        counters_1, counters_4,
        "metrics dump differs between TS3_THREADS=1 and TS3_THREADS=4"
    );
    assert!(!shape_1.is_empty(), "smoke run recorded no spans");
    assert_eq!(
        shape_1, shape_4,
        "span tree shape differs between TS3_THREADS=1 and TS3_THREADS=4"
    );
}

fn bits(v: &[f32]) -> Vec<u32> {
    v.iter().map(|x| x.to_bits()).collect()
}

/// Pool-warm determinism sweep: run matmul / conv2d / CWT once to warm
/// the worker pool (and, for the FFT, the plan cache), then demand
/// byte-identical outputs across thread caps 1 / 2 / 7 / 16 on warm
/// re-runs — not just on the first dispatch.
#[test]
fn kernel_outputs_byte_identical_across_warm_pool_caps() {
    let _guard = cap_lock();

    let a = Tensor::randn(&[45, 37], 21);
    let b = Tensor::randn(&[37, 53], 22);
    let x = Tensor::randn(&[6, 3, 9, 11], 23);
    let w = Tensor::randn(&[4, 3, 3, 3], 24);
    let plan = CwtPlan::new(96, 16, WaveletKind::ComplexGaussian);
    let sig: Vec<f32> = (0..96).map(|t| (t as f32 * 0.21).sin() + 0.3 * (t as f32 * 1.7).cos()).collect();
    let grad: Vec<f32> = (0..16 * 96).map(|i| ((i * 13 + 5) as f32 * 0.017).sin()).collect();

    // Warm the pool at the largest cap first so every later run hits
    // already-spawned, parked workers.
    set_max_threads(16);
    let _ = a.matmul(&b);
    let _ = ts3_tensor::conv2d(&x, &w, 1, 1);
    let _ = plan.amplitude(&sig);

    let reference = {
        set_max_threads(1);
        (
            a.matmul(&b),
            ts3_tensor::conv2d(&x, &w, 1, 1),
            plan.amplitude(&sig),
            plan.adjoint(&grad, &grad),
        )
    };

    for cap in [2usize, 7, 16] {
        set_max_threads(cap);
        // Two warm repetitions per cap: the second catches any
        // state carried over from the first (scratch reuse, caches).
        for rep in 0..2 {
            let mm = a.matmul(&b);
            let cv = ts3_tensor::conv2d(&x, &w, 1, 1);
            let amp = plan.amplitude(&sig);
            let adj = plan.adjoint(&grad, &grad);
            assert_eq!(bits(reference.0.as_slice()), bits(mm.as_slice()), "matmul cap={cap} rep={rep}");
            assert_eq!(bits(reference.1.as_slice()), bits(cv.as_slice()), "conv2d cap={cap} rep={rep}");
            assert_eq!(bits(&reference.2), bits(&amp), "cwt amplitude cap={cap} rep={rep}");
            assert_eq!(bits(&reference.3), bits(&adj), "cwt adjoint cap={cap} rep={rep}");
        }
    }
    set_max_threads(1);
}

/// Gauge last-write-wins semantics must survive the worker pool: with
/// the pool dispatching kernels between driver-thread writes, the final
/// gauge value (plain and labeled) is the program-order last write at
/// every thread cap — workers never write gauges, so LWW stays
/// deterministic.
#[test]
fn gauge_last_write_wins_under_pool_caps() {
    let _guard = cap_lock();
    ts3_obs::set_level(1);
    let a = Tensor::randn(&[45, 37], 41);
    let b = Tensor::randn(&[37, 53], 42);
    for cap in [1usize, 4] {
        set_max_threads(cap);
        ts3_obs::reset();
        for step in 0..8u64 {
            let _ = a.matmul(&b); // keep the pool busy between writes
            ts3_obs::gauge_set("test.progress", step as f64);
            ts3_obs::gauge_set_l("test.progress", &[("tenant", "7")], (step * 2) as f64);
        }
        let m = ts3_obs::metrics_snapshot();
        let plain = m.gauges.iter().find(|(k, _)| *k == "test.progress").map(|(_, v)| *v);
        assert_eq!(plain, Some(7.0), "plain gauge LWW at cap={cap}");
        let l = ts3_obs::labeled_snapshot();
        let labeled = l
            .gauges
            .iter()
            .find(|((k, _), _)| *k == "test.progress")
            .map(|(_, v)| *v);
        assert_eq!(labeled, Some(14.0), "labeled gauge LWW at cap={cap}");
    }
    ts3_obs::set_level(0);
    ts3_obs::reset();
    set_max_threads(1);
}

/// A panicking worker block must propagate its payload to the caller
/// (not hang the latch or get swallowed), and the pool must stay usable
/// afterwards.
#[test]
fn poisoned_worker_panic_propagates_to_caller() {
    let _guard = cap_lock();
    set_max_threads(4);

    let caught = std::panic::catch_unwind(|| {
        let mut out = vec![0.0f32; 64];
        ts3_tensor::par::par_rows_mut(&mut out, 8, 1, |row0, block| {
            if row0 >= 4 {
                panic!("poisoned pool block at row {row0}");
            }
            block.fill(row0 as f32);
        });
    });
    let payload = caught.expect_err("worker panic must reach the caller");
    let msg = payload
        .downcast_ref::<String>()
        .cloned()
        .or_else(|| payload.downcast_ref::<&str>().map(|s| s.to_string()))
        .unwrap_or_default();
    assert!(msg.contains("poisoned pool block"), "unexpected payload: {msg}");

    // Pool still healthy: a normal dispatch after the panic succeeds
    // and matches the serial result bit-for-bit.
    let a = Tensor::randn(&[19, 23], 31);
    let b = Tensor::randn(&[23, 17], 32);
    set_max_threads(1);
    let serial = a.matmul(&b);
    set_max_threads(4);
    let par = a.matmul(&b);
    assert_eq!(bits(serial.as_slice()), bits(par.as_slice()));
    set_max_threads(1);
}
