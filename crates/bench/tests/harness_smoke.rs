//! Harness integration tests: every (dataset, horizon) combination of
//! the paper's grid must produce a well-formed task even at smoke scale,
//! and the training loop must beat naive references where learning is
//! possible.

use ts3_bench::{
    lookback_for, paper_horizons, persistence_baseline, prepare_task, run_forecast_cell,
    RunProfile, TABLE4_DATASETS,
};
use ts3_data::{spec_by_name, Split};

#[test]
fn every_dataset_horizon_pair_windows_cleanly() {
    // Includes the paper's longest horizon (720), which forces the
    // length floor logic in prepare_task.
    let profile = RunProfile::smoke();
    for dataset in TABLE4_DATASETS {
        let spec = spec_by_name(dataset).unwrap();
        let lookback = lookback_for(dataset);
        for h in paper_horizons(dataset) {
            let task = prepare_task(&spec, lookback, h, &profile);
            for split in [Split::Train, Split::Val, Split::Test] {
                assert!(
                    task.len(split) >= 1,
                    "{dataset} H={h}: empty {split:?} split"
                );
            }
            let (x, y) = task.window(Split::Test, 0);
            assert_eq!(x.shape(), &[lookback, task.channels()]);
            assert_eq!(y.shape(), &[h, task.channels()]);
        }
    }
}

#[test]
fn trained_linear_model_beats_persistence_on_periodic_data() {
    let mut profile = RunProfile::smoke();
    profile.max_train_batches = Some(12);
    profile.epochs = 2;
    let spec = spec_by_name("Electricity").unwrap();
    let task = prepare_task(&spec, 96, 96, &profile);
    let floor = persistence_baseline(&task, &profile);
    let trained = run_forecast_cell("DLinear", "Electricity", 96, &profile);
    assert!(
        trained.mse < floor.mse,
        "DLinear ({}) should beat persistence ({}) on strongly periodic data",
        trained.mse,
        floor.mse
    );
}

#[test]
fn profile_env_overrides_apply() {
    std::env::set_var("TS3_EPOCHS", "7");
    std::env::set_var("TS3_LR", "0.0123");
    let p = RunProfile::from_args(&["--smoke".to_string()]);
    std::env::remove_var("TS3_EPOCHS");
    std::env::remove_var("TS3_LR");
    assert_eq!(p.epochs, 7);
    assert!((p.lr - 0.0123).abs() < 1e-6);
}

#[test]
fn cell_runner_is_deterministic() {
    let profile = RunProfile::smoke();
    let a = run_forecast_cell("DLinear", "ETTh1", 24, &profile);
    let b = run_forecast_cell("DLinear", "ETTh1", 24, &profile);
    assert_eq!(a.mse, b.mse);
    assert_eq!(a.mae, b.mae);
}
