//! Benchmarks at model granularity: forward and forward+backward of
//! TS3Net and representative baselines at the scaled profile, plus the
//! data-side triple decomposition. These are the unit costs behind
//! every cell of Tables IV–IX.
//!
//! Run with: `cargo bench -p ts3-bench --features bench-harness`.

use ts3_baselines::{build_forecaster, BaselineConfig};
use ts3_bench::timing::{black_box, Harness};
use ts3_nn::Ctx;
use ts3_signal::{triple_decompose, TripleConfig};
use ts3_tensor::Tensor;
use ts3net_core::TS3NetConfig;

fn batch(b: usize, t: usize, c: usize) -> Tensor {
    let mut v = Vec::with_capacity(b * t * c);
    for bi in 0..b {
        for ti in 0..t {
            for ci in 0..c {
                v.push((ti as f32 / 12.0 + bi as f32 + ci as f32).sin() + 0.01 * ti as f32);
            }
        }
    }
    Tensor::from_vec(v, &[b, t, c])
}

fn bench_models(h: &mut Harness) {
    let (b, t, ch, hz) = (8usize, 96usize, 7usize, 96usize);
    let x = batch(b, t, ch);
    let y = Tensor::zeros(&[b, hz, ch]);
    let cfg = BaselineConfig::scaled(ch, t, hz);
    let ts3 = TS3NetConfig::scaled(ch, t, hz);
    for name in ["TS3Net", "DLinear", "PatchTST", "TimesNet", "Informer"] {
        let model = build_forecaster(name, &cfg, &ts3, 0);
        h.bench(&format!("model_step/{name}_forward"), || {
            let mut ctx = Ctx::eval();
            black_box(model.forecast(black_box(&x), &mut ctx))
        });
        h.bench(&format!("model_step/{name}_train_step"), || {
            let mut ctx = Ctx::train(0);
            let loss = model.forecast(black_box(&x), &mut ctx).mse_loss(&y);
            for p in model.parameters() {
                p.zero_grad();
            }
            loss.backward();
            black_box(loss.value().item())
        });
    }
}

fn bench_triple_decomposition(h: &mut Harness) {
    let x = batch(1, 192, 1).reshape(&[192, 1]);
    for lambda in [8usize, 16] {
        let cfg = TripleConfig { lambda, ..Default::default() };
        h.bench(&format!("triple_decomposition/lambda_{lambda}_192x1"), || {
            triple_decompose(black_box(&x), &cfg)
        });
    }
}

fn main() {
    let mut h = Harness::new();
    bench_models(&mut h);
    bench_triple_decomposition(&mut h);
    let path = match std::env::var_os("TS3_BENCH_OUT") {
        Some(p) => std::path::PathBuf::from(p),
        None => ts3_bench::workspace_root().join("BENCH_model.json"),
    };
    match h.write_json(&path) {
        Ok(p) => println!("wrote {}", p.display()),
        Err(e) => eprintln!("bench JSON write failed: {e}"),
    }
    let profile = ts3_bench::RunProfile {
        name: "bench",
        ..ts3_bench::RunProfile::smoke()
    };
    match ts3_bench::write_trace_manifest("BENCH_model", &profile) {
        Ok(Some(p)) => println!("wrote {}", p.display()),
        Ok(None) => {}
        Err(e) => eprintln!("trace manifest write failed: {e}"),
    }
    h.finish();
}
