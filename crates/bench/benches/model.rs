//! Criterion benchmarks at model granularity: forward and
//! forward+backward of TS3Net and representative baselines at the scaled
//! profile, plus the data-side triple decomposition. These are the unit
//! costs behind every cell of Tables IV–IX.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use ts3_baselines::{build_forecaster, BaselineConfig};
use ts3_nn::Ctx;
use ts3_signal::{triple_decompose, TripleConfig};
use ts3_tensor::Tensor;
use ts3net_core::TS3NetConfig;

fn batch(b: usize, t: usize, c: usize) -> Tensor {
    let mut v = Vec::with_capacity(b * t * c);
    for bi in 0..b {
        for ti in 0..t {
            for ci in 0..c {
                v.push((ti as f32 / 12.0 + bi as f32 + ci as f32).sin() + 0.01 * ti as f32);
            }
        }
    }
    Tensor::from_vec(v, &[b, t, c])
}

fn bench_models(c: &mut Criterion) {
    let mut group = c.benchmark_group("model_step");
    group.sample_size(10);
    let (b, t, ch, h) = (8usize, 96usize, 7usize, 96usize);
    let x = batch(b, t, ch);
    let y = Tensor::zeros(&[b, h, ch]);
    let cfg = BaselineConfig::scaled(ch, t, h);
    let ts3 = TS3NetConfig::scaled(ch, t, h);
    for name in ["TS3Net", "DLinear", "PatchTST", "TimesNet", "Informer"] {
        let model = build_forecaster(name, &cfg, &ts3, 0);
        group.bench_function(format!("{name}_forward"), |bch| {
            bch.iter(|| {
                let mut ctx = Ctx::eval();
                black_box(model.forecast(black_box(&x), &mut ctx))
            })
        });
        group.bench_function(format!("{name}_train_step"), |bch| {
            bch.iter(|| {
                let mut ctx = Ctx::train(0);
                let loss = model.forecast(black_box(&x), &mut ctx).mse_loss(&y);
                for p in model.parameters() {
                    p.zero_grad();
                }
                loss.backward();
                black_box(loss.value().item())
            })
        });
    }
    group.finish();
}

fn bench_triple_decomposition(c: &mut Criterion) {
    let mut group = c.benchmark_group("triple_decomposition");
    group.sample_size(10);
    let x = batch(1, 192, 1).reshape(&[192, 1]);
    for lambda in [8usize, 16] {
        let cfg = TripleConfig { lambda, ..Default::default() };
        group.bench_function(format!("lambda_{lambda}_192x1"), |b| {
            b.iter(|| triple_decompose(black_box(&x), &cfg))
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().warm_up_time(std::time::Duration::from_millis(300)).measurement_time(std::time::Duration::from_secs(2));
    targets = bench_models, bench_triple_decomposition
}
criterion_main!(benches);
