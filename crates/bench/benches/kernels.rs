//! Micro-benchmarks for the numeric substrate: FFT, CWT, matmul, conv2d,
//! trend decomposition and spectrum-gradient kernels — the building
//! blocks whose cost dominates every table run.
//!
//! Run with: `cargo bench -p ts3-bench --features bench-harness`
//! (off by default so plain `cargo test` never builds these), or via
//! `scripts/bench.sh` which also persists the JSON mirror.
//!
//! Knobs (beyond the harness's own `TS3_BENCH_MS`):
//!
//! * `TS3_BENCH_SMOKE=1` — run the reduced CI subset only. Labels are
//!   byte-identical to the full run's so `bench_compare` can match the
//!   committed smoke baseline (`results/BENCH_kernels_smoke.json`).
//! * `TS3_BENCH_OUT=<path>` — write the JSON mirror there instead of
//!   `<workspace>/BENCH_kernels.json`.

use ts3_bench::timing::{black_box, Harness};
use ts3_bench::RunProfile;
use ts3_signal::decompose::{spectrum_gradient, trend_decompose, DEFAULT_TREND_KERNELS};
use ts3_signal::fft::{rfft, rfft_half};
use ts3_signal::{CwtPlan, WaveletKind};
use ts3_tensor::{conv2d, Tensor};

/// Reduced-subset switch for the `verify.sh` bench gate.
fn smoke() -> bool {
    std::env::var("TS3_BENCH_SMOKE").is_ok_and(|v| v.trim() == "1")
}

fn bench_fft(h: &mut Harness) {
    // `fft/{n}` tracks the cost of "full spectrum of one length-n real
    // window" — the operation every spectral consumer in the workspace
    // performs. It now runs through the packed real-input transform
    // (rfft), so the time series across commits shows the rfft win
    // directly; `rfft_half/{n}` additionally tracks the half-spectrum
    // entry the periodogram/sliding-DFT paths use.
    let sizes: &[usize] = if smoke() { &[96, 256] } else { &[96, 256, 1024] };
    for &n in sizes {
        let x: Vec<f32> = (0..n)
            .map(|i| (i as f32 * 0.37).sin() + 0.5 * (i as f32 * 0.11).cos())
            .collect();
        h.bench(&format!("fft/{n}"), || rfft(black_box(&x)));
        h.bench(&format!("rfft_half/{n}"), || rfft_half(black_box(&x)));
    }
}

fn bench_cwt(h: &mut Harness) {
    let x: Vec<f32> = (0..96).map(|i| (i as f32 * 0.3).sin()).collect();
    let lambdas: &[usize] = if smoke() { &[16] } else { &[8, 16, 32] };
    for &lambda in lambdas {
        let plan = CwtPlan::new(96, lambda, WaveletKind::ComplexGaussian);
        h.bench(&format!("cwt/forward_amp/{lambda}"), || {
            plan.amplitude(black_box(&x))
        });
    }
    if smoke() {
        return;
    }
    let plan = CwtPlan::new(96, 16, WaveletKind::ComplexGaussian);
    let w: Vec<f32> = (0..16 * 96).map(|i| (i as f32 * 0.01).sin()).collect();
    h.bench("cwt/inverse_16", || plan.inverse(black_box(&w)));
    let g_re = w.clone();
    let g_im = w.clone();
    h.bench("cwt/adjoint_16", || {
        plan.adjoint(black_box(&g_re), black_box(&g_im))
    });
}

fn bench_matmul(h: &mut Harness) {
    let sizes: &[usize] = if smoke() { &[32, 64] } else { &[32, 64, 128] };
    for &n in sizes {
        let a = Tensor::randn(&[n, n], 1);
        let b_t = Tensor::randn(&[n, n], 2);
        h.bench(&format!("matmul/{n}"), || a.matmul(black_box(&b_t)));
    }
}

fn bench_conv2d(h: &mut Harness) {
    // The TF-Block's inception shape: [B=8, C=8, lambda=8, T=96].
    let x = Tensor::randn(&[8, 8, 8, 96], 3);
    let kernels: &[usize] = if smoke() { &[3] } else { &[1, 3, 5] };
    for &k in kernels {
        let w = Tensor::randn(&[8, 8, k, k], 4);
        h.bench(&format!("conv2d/{k}"), || {
            conv2d(black_box(&x), black_box(&w), k / 2, k / 2)
        });
    }
}

fn bench_decomposition(h: &mut Harness) {
    let x = Tensor::randn(&[96, 7], 5);
    h.bench("decomposition/trend_decompose_96x7", || {
        trend_decompose(black_box(&x), &DEFAULT_TREND_KERNELS)
    });
    let tf = Tensor::randn(&[16, 96], 6);
    h.bench("decomposition/spectrum_gradient_16x96", || {
        spectrum_gradient(black_box(&tf), 24)
    });
}

/// Thread-scaling sweep (gated by `TS3_BENCH_THREAD_SWEEP`, a comma
/// list of thread caps, e.g. `1,2,4`): re-runs representative
/// parallel kernels under each cap via the runtime override
/// `set_max_threads`, producing `sweep/<kernel>/t<n>` rows. The rows
/// land in the same `ts3.bench.v1` mirror, so `bench_compare` gates
/// the scaling curve like any other kernel — a cap that stops helping
/// (or a kernel whose parallel path regressed at some width) shows up
/// as a row regression against the committed baseline. Outputs are
/// bitwise identical across caps (workspace determinism contract), so
/// the sweep measures pure scheduling cost.
fn bench_thread_sweep(h: &mut Harness) {
    let spec = std::env::var("TS3_BENCH_THREAD_SWEEP").unwrap_or_default();
    let counts: Vec<usize> = spec
        .split(',')
        .filter_map(|s| s.trim().parse().ok())
        .filter(|&n| n >= 1)
        .collect();
    if counts.is_empty() {
        return;
    }
    let restore = ts3_tensor::par::max_threads();
    let a = Tensor::randn(&[128, 128], 7);
    let b = Tensor::randn(&[128, 128], 8);
    let x = Tensor::randn(&[8, 8, 8, 96], 9);
    let w = Tensor::randn(&[8, 8, 3, 3], 10);
    for &n in &counts {
        ts3_tensor::par::set_max_threads(n);
        h.bench(&format!("sweep/matmul_128/t{n}"), || a.matmul(black_box(&b)));
        if !smoke() {
            h.bench(&format!("sweep/conv2d_3/t{n}"), || {
                conv2d(black_box(&x), black_box(&w), 1, 1)
            });
        }
    }
    // Restore the ambient cap: the JSON mirror records `threads` at
    // write time and later benches must run at the configured width.
    ts3_tensor::par::set_max_threads(restore);
}

fn main() {
    let mut h = Harness::new();
    bench_fft(&mut h);
    bench_cwt(&mut h);
    bench_matmul(&mut h);
    bench_conv2d(&mut h);
    bench_decomposition(&mut h);
    bench_thread_sweep(&mut h);
    // Machine-readable mirror (op, shape, median ns + IQR, thread cap)
    // for regression tracking across commits via `bench_compare`.
    let path = match std::env::var_os("TS3_BENCH_OUT") {
        Some(p) => std::path::PathBuf::from(p),
        None => ts3_bench::workspace_root().join("BENCH_kernels.json"),
    };
    match h.write_json(&path) {
        Ok(p) => println!("wrote {}", p.display()),
        Err(e) => eprintln!("bench JSON write failed: {e}"),
    }
    // Under TS3_TRACE>=1 the instrumented kernels have been recording
    // spans/counters the whole run; persist the ts3.trace.v1 manifest
    // next to the table-run ones so bench runs are auditable too.
    let profile = RunProfile {
        name: "bench",
        ..RunProfile::smoke()
    };
    let stem = if smoke() { "BENCH_kernels_smoke" } else { "BENCH_kernels" };
    match ts3_bench::write_trace_manifest(stem, &profile) {
        Ok(Some(p)) => println!("wrote {}", p.display()),
        Ok(None) => {}
        Err(e) => eprintln!("trace manifest write failed: {e}"),
    }
    h.finish();
}
