//! Micro-benchmarks for the numeric substrate: FFT, CWT, matmul, conv2d,
//! trend decomposition and spectrum-gradient kernels — the building
//! blocks whose cost dominates every table run.
//!
//! Run with: `cargo bench -p ts3-bench --features bench-harness`
//! (off by default so plain `cargo test` never builds these).

use ts3_bench::timing::{black_box, Harness};
use ts3_signal::complex::Complex32;
use ts3_signal::decompose::{spectrum_gradient, trend_decompose, DEFAULT_TREND_KERNELS};
use ts3_signal::fft::fft;
use ts3_signal::{CwtPlan, WaveletKind};
use ts3_tensor::{conv2d, Tensor};

fn bench_fft(h: &mut Harness) {
    for n in [96usize, 256, 1024] {
        let x: Vec<Complex32> = (0..n)
            .map(|i| Complex32::new((i as f32 * 0.37).sin(), (i as f32 * 0.11).cos()))
            .collect();
        h.bench(&format!("fft/{n}"), || fft(black_box(&x)));
    }
}

fn bench_cwt(h: &mut Harness) {
    let x: Vec<f32> = (0..96).map(|i| (i as f32 * 0.3).sin()).collect();
    for lambda in [8usize, 16, 32] {
        let plan = CwtPlan::new(96, lambda, WaveletKind::ComplexGaussian);
        h.bench(&format!("cwt/forward_amp/{lambda}"), || {
            plan.amplitude(black_box(&x))
        });
    }
    let plan = CwtPlan::new(96, 16, WaveletKind::ComplexGaussian);
    let w: Vec<f32> = (0..16 * 96).map(|i| (i as f32 * 0.01).sin()).collect();
    h.bench("cwt/inverse_16", || plan.inverse(black_box(&w)));
    let g_re = w.clone();
    let g_im = w.clone();
    h.bench("cwt/adjoint_16", || {
        plan.adjoint(black_box(&g_re), black_box(&g_im))
    });
}

fn bench_matmul(h: &mut Harness) {
    for n in [32usize, 64, 128] {
        let a = Tensor::randn(&[n, n], 1);
        let b_t = Tensor::randn(&[n, n], 2);
        h.bench(&format!("matmul/{n}"), || a.matmul(black_box(&b_t)));
    }
}

fn bench_conv2d(h: &mut Harness) {
    // The TF-Block's inception shape: [B=8, C=8, lambda=8, T=96].
    let x = Tensor::randn(&[8, 8, 8, 96], 3);
    for k in [1usize, 3, 5] {
        let w = Tensor::randn(&[8, 8, k, k], 4);
        h.bench(&format!("conv2d/{k}"), || {
            conv2d(black_box(&x), black_box(&w), k / 2, k / 2)
        });
    }
}

fn bench_decomposition(h: &mut Harness) {
    let x = Tensor::randn(&[96, 7], 5);
    h.bench("decomposition/trend_decompose_96x7", || {
        trend_decompose(black_box(&x), &DEFAULT_TREND_KERNELS)
    });
    let tf = Tensor::randn(&[16, 96], 6);
    h.bench("decomposition/spectrum_gradient_16x96", || {
        spectrum_gradient(black_box(&tf), 24)
    });
}

fn main() {
    let mut h = Harness::new();
    bench_fft(&mut h);
    bench_cwt(&mut h);
    bench_matmul(&mut h);
    bench_conv2d(&mut h);
    bench_decomposition(&mut h);
    // Machine-readable mirror at the workspace root (op, shape, median
    // ns + IQR, thread cap) for regression tracking across commits.
    let path = ts3_bench::workspace_root().join("BENCH_kernels.json");
    match h.write_json(&path) {
        Ok(p) => println!("wrote {}", p.display()),
        Err(e) => eprintln!("BENCH_kernels.json write failed: {e}"),
    }
    h.finish();
}
