//! Criterion micro-benchmarks for the numeric substrate: FFT, CWT,
//! matmul, conv2d, trend decomposition and spectrum-gradient kernels —
//! the building blocks whose cost dominates every table run.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use ts3_signal::complex::Complex32;
use ts3_signal::decompose::{spectrum_gradient, trend_decompose, DEFAULT_TREND_KERNELS};
use ts3_signal::fft::fft;
use ts3_signal::{CwtPlan, WaveletKind};
use ts3_tensor::{conv2d, Tensor};

fn bench_fft(c: &mut Criterion) {
    let mut group = c.benchmark_group("fft");
    for n in [96usize, 256, 1024] {
        let x: Vec<Complex32> = (0..n)
            .map(|i| Complex32::new((i as f32 * 0.37).sin(), (i as f32 * 0.11).cos()))
            .collect();
        group.bench_with_input(BenchmarkId::from_parameter(n), &x, |b, x| {
            b.iter(|| fft(black_box(x)))
        });
    }
    group.finish();
}

fn bench_cwt(c: &mut Criterion) {
    let mut group = c.benchmark_group("cwt");
    let x: Vec<f32> = (0..96).map(|i| (i as f32 * 0.3).sin()).collect();
    for lambda in [8usize, 16, 32] {
        let plan = CwtPlan::new(96, lambda, WaveletKind::ComplexGaussian);
        group.bench_with_input(
            BenchmarkId::new("forward_amp", lambda),
            &plan,
            |b, plan| b.iter(|| plan.amplitude(black_box(&x))),
        );
    }
    let plan = CwtPlan::new(96, 16, WaveletKind::ComplexGaussian);
    let w: Vec<f32> = (0..16 * 96).map(|i| (i as f32 * 0.01).sin()).collect();
    group.bench_function("inverse_16", |b| b.iter(|| plan.inverse(black_box(&w))));
    let g_re = w.clone();
    let g_im = w.clone();
    group.bench_function("adjoint_16", |b| {
        b.iter(|| plan.adjoint(black_box(&g_re), black_box(&g_im)))
    });
    group.finish();
}

fn bench_matmul(c: &mut Criterion) {
    let mut group = c.benchmark_group("matmul");
    for n in [32usize, 64, 128] {
        let a = Tensor::randn(&[n, n], 1);
        let b_t = Tensor::randn(&[n, n], 2);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |bch, _| {
            bch.iter(|| a.matmul(black_box(&b_t)))
        });
    }
    group.finish();
}

fn bench_conv2d(c: &mut Criterion) {
    let mut group = c.benchmark_group("conv2d");
    // The TF-Block's inception shape: [B=8, C=8, lambda=8, T=96].
    let x = Tensor::randn(&[8, 8, 8, 96], 3);
    for k in [1usize, 3, 5] {
        let w = Tensor::randn(&[8, 8, k, k], 4);
        group.bench_with_input(BenchmarkId::from_parameter(k), &k, |bch, &k| {
            bch.iter(|| conv2d(black_box(&x), black_box(&w), k / 2, k / 2))
        });
    }
    group.finish();
}

fn bench_decomposition(c: &mut Criterion) {
    let mut group = c.benchmark_group("decomposition");
    let x = Tensor::randn(&[96, 7], 5);
    group.bench_function("trend_decompose_96x7", |b| {
        b.iter(|| trend_decompose(black_box(&x), &DEFAULT_TREND_KERNELS))
    });
    let tf = Tensor::randn(&[16, 96], 6);
    group.bench_function("spectrum_gradient_16x96", |b| {
        b.iter(|| spectrum_gradient(black_box(&tf), 24))
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20).warm_up_time(std::time::Duration::from_millis(300)).measurement_time(std::time::Duration::from_secs(1));
    targets = bench_fft, bench_cwt, bench_matmul, bench_conv2d, bench_decomposition
}
criterion_main!(benches);
