//! The Table VII comparison models: **TSD-CNN** (conventional
//! trend-seasonal decomposition with the same conv backbone as TS3Net)
//! and **TSD-Trans** (trend-seasonal decomposition with a vanilla
//! Transformer backbone). Both isolate the value of the *triple*
//! decomposition against the conventional two-way split.

use crate::config::BaselineConfig;
use ts3_rng::rngs::StdRng;
use ts3_rng::SeedableRng;
use ts3_autograd::{Param, Var};
use ts3_nn::{AttentionKind, Ctx, DataEmbedding, EncoderLayer, Module};
use ts3_signal::WaveletKind;
use ts3_tensor::{moving_avg_same, Tensor};
use ts3net_core::{branch_plans, Autoregression, ForecastModel, PredictionHead, TfBlock};

/// Backbone selector for the TSD models.
enum TsdBackbone {
    Cnn(Vec<TfBlock>),
    Trans(Vec<EncoderLayer>),
}

/// Trend-seasonal decomposition forecaster with a pluggable backbone.
pub struct TsdModel {
    embed: DataEmbedding,
    backbone: TsdBackbone,
    seasonal_head: PredictionHead,
    trend_head: Autoregression,
    name: &'static str,
    kernel: usize,
}

impl TsdModel {
    /// TSD-CNN: trend-seasonal split + the TS3Net TF-Block backbone
    /// (without S-GD — that is exactly what Table VII isolates).
    pub fn cnn(cfg: &BaselineConfig, lambda: usize, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let plans = branch_plans(cfg.lookback, lambda, &[WaveletKind::ComplexGaussian]);
        let blocks = (0..cfg.layers)
            .map(|l| TfBlock::new(&format!("tsdcnn.block{l}"), &plans, cfg.d_model, cfg.d_model, &mut rng))
            .collect();
        Self::build("TSD-CNN", cfg, TsdBackbone::Cnn(blocks), &mut rng)
    }

    /// TSD-Trans: trend-seasonal split + vanilla Transformer backbone.
    pub fn transformer(cfg: &BaselineConfig, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let layers = (0..cfg.layers)
            .map(|l| {
                EncoderLayer::new(
                    &format!("tsdtrans.enc{l}"),
                    cfg.d_model,
                    cfg.heads,
                    cfg.d_model * 2,
                    AttentionKind::Full,
                    cfg.dropout,
                    &mut rng,
                )
            })
            .collect();
        Self::build("TSD-Trans", cfg, TsdBackbone::Trans(layers), &mut rng)
    }

    fn build(
        name: &'static str,
        cfg: &BaselineConfig,
        backbone: TsdBackbone,
        rng: &mut StdRng,
    ) -> Self {
        TsdModel {
            embed: DataEmbedding::new(
                &format!("{name}.embed"),
                cfg.c_in,
                cfg.d_model,
                cfg.dropout,
                rng,
            ),
            backbone,
            seasonal_head: PredictionHead::new(
                &format!("{name}.head_s"),
                cfg.lookback,
                cfg.horizon,
                cfg.d_model,
                cfg.c_in,
                rng,
            ),
            trend_head: Autoregression::new(
                &format!("{name}.head_t"),
                cfg.lookback,
                cfg.horizon,
                cfg.lookback.max(32),
                rng,
            ),
            name,
            kernel: 25.min(cfg.lookback | 1),
        }
    }
}

impl ForecastModel for TsdModel {
    fn forecast(&self, x: &Tensor, ctx: &mut Ctx) -> Var {
        let trend = moving_avg_same(x, 1, self.kernel);
        let seasonal = x.sub(&trend);
        let mut h = self.embed.forward(&Var::constant(seasonal), ctx);
        match &self.backbone {
            TsdBackbone::Cnn(blocks) => {
                for b in blocks {
                    h = b.forward(&h, ctx);
                }
            }
            TsdBackbone::Trans(layers) => {
                for l in layers {
                    h = l.forward(&h, ctx);
                }
            }
        }
        let y_seasonal = self.seasonal_head.forward(&h, ctx);
        let y_trend = self.trend_head.forward(&Var::constant(trend), ctx);
        y_seasonal.add(&y_trend)
    }

    fn parameters(&self) -> Vec<Param> {
        let mut p = self.embed.params();
        match &self.backbone {
            TsdBackbone::Cnn(blocks) => {
                for b in blocks {
                    p.extend(b.params());
                }
            }
            TsdBackbone::Trans(layers) => {
                for l in layers {
                    p.extend(l.params());
                }
            }
        }
        p.extend(self.seasonal_head.params());
        p.extend(self.trend_head.params());
        p
    }

    fn name(&self) -> &str {
        self.name
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> BaselineConfig {
        BaselineConfig::scaled(3, 24, 12)
    }

    #[test]
    fn tsd_cnn_shape() {
        let m = TsdModel::cnn(&cfg(), 4, 1);
        let mut ctx = Ctx::eval();
        let y = m.forecast(&Tensor::randn(&[2, 24, 3], 1), &mut ctx);
        assert_eq!(y.shape(), &[2, 12, 3]);
        assert!(y.value().all_finite());
        assert_eq!(m.name(), "TSD-CNN");
    }

    #[test]
    fn tsd_trans_shape() {
        let m = TsdModel::transformer(&cfg(), 2);
        let mut ctx = Ctx::eval();
        let y = m.forecast(&Tensor::randn(&[2, 24, 3], 2), &mut ctx);
        assert_eq!(y.shape(), &[2, 12, 3]);
        assert!(y.value().all_finite());
        assert_eq!(m.name(), "TSD-Trans");
    }

    #[test]
    fn both_backbones_get_gradients() {
        for m in [TsdModel::cnn(&cfg(), 4, 3), TsdModel::transformer(&cfg(), 4)] {
            let mut ctx = Ctx::train(0);
            let loss = m
                .forecast(&Tensor::randn(&[1, 24, 3], 5), &mut ctx)
                .mse_loss(&Tensor::zeros(&[1, 12, 3]));
            for p in m.parameters() {
                p.zero_grad();
            }
            loss.backward();
            let live = m.parameters().iter().filter(|p| p.grad_norm() > 0.0).count();
            assert!(live > m.parameters().len() / 2, "{}: {live}", m.name());
        }
    }
}
