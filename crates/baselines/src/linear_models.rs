//! MLP/linear-family baselines: **DLinear** (Zeng et al., AAAI 2023) and
//! **LightTS** (Zhang et al., 2022).

use crate::config::BaselineConfig;
use ts3_rng::rngs::StdRng;
use ts3_rng::SeedableRng;
use ts3_autograd::{Param, Var};
use ts3_nn::{Activation, Ctx, Mlp, Module};
use ts3_tensor::{moving_avg_same, Tensor};
use ts3net_core::{ForecastModel, PlanState, TimeLinear};

/// DLinear: decompose into trend (moving average, kernel 25) + remainder
/// and forecast each part with a single linear layer over the time axis.
pub struct DLinear {
    trend: TimeLinear,
    seasonal: TimeLinear,
    kernel: usize,
}

impl DLinear {
    /// Build a DLinear baseline.
    pub fn new(cfg: &BaselineConfig, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        DLinear {
            trend: TimeLinear::new("dlinear.trend", cfg.lookback, cfg.horizon, &mut rng),
            seasonal: TimeLinear::new("dlinear.seasonal", cfg.lookback, cfg.horizon, &mut rng),
            kernel: 25.min(cfg.lookback | 1),
        }
    }
}

impl ForecastModel for DLinear {
    fn forecast(&self, x: &Tensor, ctx: &mut Ctx) -> Var {
        let trend = moving_avg_same(x, 1, self.kernel);
        let seasonal = x.sub(&trend);
        let yt = self.trend.forward(&Var::constant(trend), ctx);
        let ys = self.seasonal.forward(&Var::constant(seasonal), ctx);
        yt.add(&ys)
    }

    fn parameters(&self) -> Vec<Param> {
        let mut p = self.trend.params();
        p.extend(self.seasonal.params());
        p
    }

    fn name(&self) -> &str {
        "DLinear"
    }

    // Staged lowering for `CompiledPlan`: the two-branch structure cut at
    // its seams. Slots: 0 = trend, 1 = seasonal, 2 = trend forecast.

    fn plan_slots(&self) -> usize {
        3
    }

    fn plan_stages(&self) -> Vec<String> {
        vec![
            "decompose".to_string(),
            "trend_linear".to_string(),
            "seasonal_linear".to_string(),
        ]
    }

    fn run_plan_stage(&self, idx: usize, st: &mut PlanState) {
        let mut ctx = Ctx::eval();
        match idx {
            0 => {
                let trend = moving_avg_same(st.input(), 1, self.kernel);
                let seasonal = st.input().sub(&trend);
                st.set_slot(0, trend);
                st.set_slot(1, seasonal);
            }
            1 => {
                let yt = self.trend.forward(&Var::constant(st.slot(0).clone()), &mut ctx);
                st.set_slot(2, yt.value().clone());
            }
            _ => {
                let ys = self.seasonal.forward(&Var::constant(st.slot(1).clone()), &mut ctx);
                let y = Var::constant(st.slot(2).clone()).add(&ys);
                st.set_output(y.value().clone());
            }
        }
    }
}

/// LightTS: light sampling-oriented MLPs. The lookback window is viewed
/// as a `[chunks, w]` grid; a **continuous** path applies a tiny shared
/// MLP over each contiguous chunk (local detail) and an **interval** path
/// applies a tiny shared MLP over each strided column (one sample per
/// chunk — the downsampled skeleton). Both paths stay "light": no
/// full-length dense layer ever touches the raw window, exactly the
/// sampling-oriented design of the original paper.
pub struct LightTS {
    continuous: Mlp,
    interval: Mlp,
    merge: TimeLinear,
    chunk: usize,
    lookback: usize,
}

impl LightTS {
    /// Build a LightTS baseline (chunk width 8 or smaller).
    pub fn new(cfg: &BaselineConfig, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let chunk = 8.min(cfg.lookback).max(1);
        let n_chunks = cfg.lookback.div_ceil(chunk);
        LightTS {
            continuous: Mlp::new(
                "lightts.cont",
                chunk,
                chunk,
                chunk,
                Activation::Gelu,
                cfg.dropout,
                &mut rng,
            ),
            interval: Mlp::new(
                "lightts.int",
                n_chunks,
                n_chunks,
                n_chunks,
                Activation::Gelu,
                cfg.dropout,
                &mut rng,
            ),
            merge: TimeLinear::new("lightts.merge", cfg.lookback, cfg.horizon, &mut rng),
            chunk,
            lookback: cfg.lookback,
        }
    }
}

impl ForecastModel for LightTS {
    fn forecast(&self, x: &Tensor, ctx: &mut Ctx) -> Var {
        assert_eq!(x.shape()[1], self.lookback, "lookback mismatch");
        let (b, t, c) = (x.shape()[0], x.shape()[1], x.shape()[2]);
        let n_chunks = t.div_ceil(self.chunk);
        let padded_len = n_chunks * self.chunk;
        let xv = Var::constant(x.clone());
        let xt = xv.permute(&[0, 2, 1]); // [B, C, T]
        let xt = if padded_len > t {
            xt.pad_axis(2, 0, padded_len - t)
        } else {
            xt
        };
        // Continuous path: shared tiny MLP within each chunk.
        let grid = xt.reshape(&[b, c * n_chunks, self.chunk]);
        let cont = self
            .continuous
            .forward(&grid, ctx)
            .reshape(&[b, c, padded_len])
            .narrow(2, 0, t);
        // Interval path: shared tiny MLP across chunks at fixed offset.
        let cols = xt
            .reshape(&[b, c, n_chunks, self.chunk])
            .permute(&[0, 1, 3, 2]) // [B, C, w, chunks]
            .reshape(&[b, c * self.chunk, n_chunks]);
        let inter = self
            .interval
            .forward(&cols, ctx)
            .reshape(&[b, c, self.chunk, n_chunks])
            .permute(&[0, 1, 3, 2])
            .reshape(&[b, c, padded_len])
            .narrow(2, 0, t);
        let h = cont.add(&inter).permute(&[0, 2, 1]); // [B, T, C]
        self.merge.forward(&h, ctx)
    }

    fn parameters(&self) -> Vec<Param> {
        let mut p = self.continuous.params();
        p.extend(self.interval.params());
        p.extend(self.merge.params());
        p
    }

    fn name(&self) -> &str {
        "LightTS"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> BaselineConfig {
        BaselineConfig::scaled(3, 24, 12)
    }

    fn batch() -> Tensor {
        Tensor::randn(&[2, 24, 3], 1)
    }

    #[test]
    fn dlinear_shape_and_grad() {
        let m = DLinear::new(&cfg(), 1);
        let mut ctx = Ctx::eval();
        let y = m.forecast(&batch(), &mut ctx);
        assert_eq!(y.shape(), &[2, 12, 3]);
        let loss = y.square().sum();
        for p in m.parameters() {
            p.zero_grad();
        }
        loss.backward();
        assert!(m.parameters().iter().all(|p| p.grad_norm() > 0.0));
        assert_eq!(m.name(), "DLinear");
    }

    #[test]
    fn dlinear_learns_persistence() {
        // A constant series forecast: DLinear should fit quickly.
        let m = DLinear::new(&cfg(), 2);
        let x = Tensor::full(&[1, 24, 3], 2.0);
        let t = Tensor::full(&[1, 12, 3], 2.0);
        let mut ctx = Ctx::train(0);
        let mut first = 0.0;
        let mut last = 0.0;
        for step in 0..40 {
            let loss = m.forecast(&x, &mut ctx).mse_loss(&t);
            if step == 0 {
                first = loss.value().item();
            }
            last = loss.value().item();
            for p in m.parameters() {
                p.zero_grad();
            }
            loss.backward();
            for p in m.parameters() {
                p.update_with(|v, g| v.axpy(-0.05, g));
            }
        }
        assert!(last < first * 0.2, "{first} -> {last}");
    }

    #[test]
    fn lightts_shape_and_grad() {
        let m = LightTS::new(&cfg(), 3);
        let mut ctx = Ctx::eval();
        let y = m.forecast(&batch(), &mut ctx);
        assert_eq!(y.shape(), &[2, 12, 3]);
        assert!(y.value().all_finite());
        let loss = y.square().sum();
        for p in m.parameters() {
            p.zero_grad();
        }
        loss.backward();
        assert!(m.parameters().iter().all(|p| p.grad_norm() > 0.0));
    }

    #[test]
    fn models_have_param_counts() {
        assert!(DLinear::new(&cfg(), 0).num_parameters() > 0);
        // LightTS is "light": its sampling MLPs are tiny, so it carries
        // fewer weights than DLinear's two full time-linear maps.
        assert!(LightTS::new(&cfg(), 0).num_parameters() < DLinear::new(&cfg(), 0).num_parameters());
    }
}
