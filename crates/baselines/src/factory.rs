//! Model factory: construct any model in the zoo by its paper name, so
//! the bench harness iterates over the full Table IV/V column set with
//! one code path.

use crate::adapter::ReconstructionAdapter;
use crate::config::BaselineConfig;
use crate::decomposition_transformers::{Autoformer, FedFormer};
use crate::linear_models::{DLinear, LightTS};
use crate::micn::Micn;
use crate::timesnet::TimesNet;
use crate::transformers::{Informer, PatchTst, Pyraformer, Stationary};
use crate::tsd::TsdModel;
use ts3net_core::{
    Ablation, ForecastModel, ImputationModel, TS3Net, TS3NetConfig, TS3NetImputer,
};

/// The Table IV column order (ours first, then the ten baselines).
pub const TABLE4_MODELS: [&str; 11] = [
    "TS3Net",
    "PatchTST",
    "TimesNet",
    "MICN",
    "LightTS",
    "DLinear",
    "FEDformer",
    "Stationary",
    "Autoformer",
    "Pyraformer",
    "Informer",
];

/// Build a forecaster by paper name. `ts3_cfg` parameterises TS3Net (and
/// its ablations); everything else is built from `cfg`.
///
/// # Panics
/// Panics on an unknown model name.
pub fn build_forecaster(
    name: &str,
    cfg: &BaselineConfig,
    ts3_cfg: &TS3NetConfig,
    seed: u64,
) -> Box<dyn ForecastModel> {
    match name {
        "TS3Net" => Box::new(TS3Net::new(ts3_cfg.clone(), seed)),
        "TS3Net w/o TD" => {
            Box::new(TS3Net::new(ts3_cfg.clone().with_ablation(Ablation::NO_TD), seed))
        }
        "TS3Net w/o TF-Block" => {
            Box::new(TS3Net::new(ts3_cfg.clone().with_ablation(Ablation::NO_TF), seed))
        }
        "TS3Net w/o Both" => {
            Box::new(TS3Net::new(ts3_cfg.clone().with_ablation(Ablation::NO_BOTH), seed))
        }
        "PatchTST" => Box::new(PatchTst::new(cfg, seed)),
        "TimesNet" => Box::new(TimesNet::new(cfg, seed)),
        "MICN" => Box::new(Micn::new(cfg, seed)),
        "LightTS" => Box::new(LightTS::new(cfg, seed)),
        "DLinear" => Box::new(DLinear::new(cfg, seed)),
        "FEDformer" => Box::new(FedFormer::new(cfg, seed)),
        "Stationary" => Box::new(Stationary::new(cfg, seed)),
        "Autoformer" => Box::new(Autoformer::new(cfg, seed)),
        "Pyraformer" => Box::new(Pyraformer::new(cfg, seed)),
        "Informer" => Box::new(Informer::new(cfg, seed)),
        "TSD-CNN" => Box::new(TsdModel::cnn(cfg, ts3_cfg.lambda, seed)),
        "TSD-Trans" => Box::new(TsdModel::transformer(cfg, seed)),
        // ts3-lint: allow(no-unwrap-in-lib) model names come from the fixed benchmark lists; unknown names are a documented # Panics contract
        other => panic!("unknown model name `{other}`"),
    }
}

/// Build an imputer by paper name: TS3Net uses its dedicated imputer; all
/// baselines are wrapped through the reconstruction adapter (requires
/// `horizon == lookback` in `cfg`).
pub fn build_imputer(
    name: &str,
    cfg: &BaselineConfig,
    ts3_cfg: &TS3NetConfig,
    seed: u64,
) -> Box<dyn ImputationModel> {
    assert_eq!(
        cfg.lookback, cfg.horizon,
        "imputation requires horizon == lookback"
    );
    match name {
        "TS3Net" => Box::new(TS3NetImputer::new(ts3_cfg.clone(), seed)),
        "PatchTST" => Box::new(ReconstructionAdapter::new(PatchTst::new(cfg, seed))),
        "TimesNet" => Box::new(ReconstructionAdapter::new(TimesNet::new(cfg, seed))),
        "MICN" => Box::new(ReconstructionAdapter::new(Micn::new(cfg, seed))),
        "LightTS" => Box::new(ReconstructionAdapter::new(LightTS::new(cfg, seed))),
        "DLinear" => Box::new(ReconstructionAdapter::new(DLinear::new(cfg, seed))),
        "FEDformer" => Box::new(ReconstructionAdapter::new(FedFormer::new(cfg, seed))),
        "Stationary" => Box::new(ReconstructionAdapter::new(Stationary::new(cfg, seed))),
        "Autoformer" => Box::new(ReconstructionAdapter::new(Autoformer::new(cfg, seed))),
        "Pyraformer" => Box::new(ReconstructionAdapter::new(Pyraformer::new(cfg, seed))),
        "Informer" => Box::new(ReconstructionAdapter::new(Informer::new(cfg, seed))),
        // ts3-lint: allow(no-unwrap-in-lib) model names come from the fixed benchmark lists; unknown names are a documented # Panics contract
        other => panic!("unknown model name `{other}`"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ts3_nn::Ctx;
    use ts3_tensor::Tensor;

    fn cfgs() -> (BaselineConfig, TS3NetConfig) {
        let cfg = BaselineConfig::scaled(3, 24, 12);
        let mut ts3 = TS3NetConfig::scaled(3, 24, 12);
        ts3.lambda = 4;
        ts3.d_model = 4;
        ts3.d_hidden = 4;
        (cfg, ts3)
    }

    #[test]
    fn every_table4_model_builds_and_runs() {
        let (cfg, ts3) = cfgs();
        let x = Tensor::randn(&[1, 24, 3], 9);
        for name in TABLE4_MODELS {
            let m = build_forecaster(name, &cfg, &ts3, 0);
            assert_eq!(m.name(), name);
            let mut ctx = Ctx::eval();
            let y = m.forecast(&x, &mut ctx);
            assert_eq!(y.shape(), &[1, 12, 3], "{name}");
            assert!(y.value().all_finite(), "{name}");
        }
    }

    #[test]
    fn tsd_models_build() {
        let (cfg, ts3) = cfgs();
        for name in ["TSD-CNN", "TSD-Trans"] {
            let m = build_forecaster(name, &cfg, &ts3, 1);
            assert_eq!(m.name(), name);
        }
    }

    #[test]
    fn ablation_variants_build() {
        let (cfg, ts3) = cfgs();
        for name in ["TS3Net w/o TD", "TS3Net w/o TF-Block", "TS3Net w/o Both"] {
            let m = build_forecaster(name, &cfg, &ts3, 2);
            assert_eq!(m.name(), name);
        }
    }

    #[test]
    fn every_model_builds_as_imputer() {
        let cfg = BaselineConfig::scaled(2, 16, 16);
        let mut ts3 = TS3NetConfig::scaled(2, 16, 16);
        ts3.lambda = 4;
        ts3.d_model = 4;
        ts3.d_hidden = 4;
        let x = Tensor::randn(&[1, 16, 2], 9);
        let mask = Tensor::zeros(&[1, 16, 2]);
        for name in TABLE4_MODELS {
            let m = build_imputer(name, &cfg, &ts3, 0);
            let mut ctx = Ctx::eval();
            let y = m.impute(&x, &mask, &mut ctx);
            assert_eq!(y.shape(), &[1, 16, 2], "{name}");
        }
    }

    #[test]
    #[should_panic(expected = "unknown model")]
    fn unknown_name_panics() {
        let (cfg, ts3) = cfgs();
        let _ = build_forecaster("NotAModel", &cfg, &ts3, 0);
    }
}
