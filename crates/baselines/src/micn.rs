//! **MICN** (Wang et al., ICLR 2023): multi-scale local-global context
//! modelling with isometric convolution — local features from
//! downsampling convolutions, global correlations from an "isometric"
//! conv whose kernel spans the whole downsampled sequence, all at linear
//! complexity, plus a linear-regression trend branch.

use crate::config::BaselineConfig;
use ts3_rng::rngs::StdRng;
use ts3_rng::SeedableRng;
use ts3_autograd::{Param, Var};
use ts3_nn::{Conv1d, Ctx, DataEmbedding, Linear, Module};
use ts3_tensor::{moving_avg_same, Tensor};
use ts3net_core::{ForecastModel, PredictionHead, TimeLinear};

/// One MIC scale branch: local downsampling conv -> isometric (causal,
/// full-length kernel) conv on the downsampled sequence -> upsample back.
struct MicBranch {
    local: Conv1d,
    /// Isometric conv weights: `[D, D, Ld]` where `Ld` is the downsampled
    /// length (kernel spans the whole sequence).
    isometric: Param,
    scale: usize,
}

impl MicBranch {
    fn forward(&self, x: &Var, ctx: &mut Ctx) -> Var {
        let (b, t, d) = (x.shape()[0], x.shape()[1], x.shape()[2]);
        // Local conv over time.
        let h = x.permute(&[0, 2, 1]); // [B, D, T]
        let h = self.local.forward(&h, ctx).gelu();
        // Downsample by averaging non-overlapping windows of `scale`.
        let rows = t.div_ceil(self.scale);
        let padded = if rows * self.scale > t {
            h.pad_axis(2, 0, rows * self.scale - t)
        } else {
            h
        };
        let down = padded
            .reshape(&[b, d, rows, self.scale])
            .mean_axis(3); // [B, D, rows]
        // Isometric conv: causal conv with kernel length = rows (global
        // receptive field on the coarse scale).
        let iso = down.pad_axis(2, rows - 1, 0).conv1d(&self.isometric.var(), 0); // [B, D, rows]
        let mixed = down.add(&iso.tanh());
        // Upsample back to T by repeating each coarse step.
        let up = mixed
            .reshape(&[b, d, rows, 1])
            .repeat_axis(3, self.scale)
            .reshape(&[b, d, rows * self.scale])
            .narrow(2, 0, t);
        up.permute(&[0, 2, 1]) // [B, T, D]
    }

    fn params(&self) -> Vec<Param> {
        let mut p = self.local.params();
        p.push(self.isometric.clone());
        p
    }
}

/// The MICN forecaster.
pub struct Micn {
    embed: DataEmbedding,
    branches: Vec<MicBranch>,
    merge: Linear,
    head: PredictionHead,
    trend_head: TimeLinear,
}

impl Micn {
    /// Build a MICN baseline with scales `{4, 8}`.
    pub fn new(cfg: &BaselineConfig, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let embed = DataEmbedding::new("micn.embed", cfg.c_in, cfg.d_model, cfg.dropout, &mut rng);
        let scales = [4usize, 8];
        let branches = scales
            .iter()
            .map(|&scale| {
                let rows = cfg.lookback.div_ceil(scale);
                MicBranch {
                    local: Conv1d::new(
                        &format!("micn.s{scale}.local"),
                        cfg.d_model,
                        cfg.d_model,
                        3,
                        &mut rng,
                    ),
                    isometric: Param::new(
                        format!("micn.s{scale}.iso"),
                        Tensor::kaiming_normal(&[cfg.d_model, cfg.d_model, rows], &mut rng),
                    ),
                    scale,
                }
            })
            .collect();
        Micn {
            embed,
            branches,
            merge: Linear::new(
                "micn.merge",
                cfg.d_model * scales.len(),
                cfg.d_model,
                true,
                &mut rng,
            ),
            head: PredictionHead::new(
                "micn.head",
                cfg.lookback,
                cfg.horizon,
                cfg.d_model,
                cfg.c_in,
                &mut rng,
            ),
            trend_head: TimeLinear::new("micn.trend", cfg.lookback, cfg.horizon, &mut rng),
        }
    }
}

impl ForecastModel for Micn {
    fn forecast(&self, x: &Tensor, ctx: &mut Ctx) -> Var {
        // Trend-seasonal split; the trend goes through linear regression.
        let trend = moving_avg_same(x, 1, 25.min(x.shape()[1] | 1));
        let seasonal = x.sub(&trend);
        let h = self.embed.forward(&Var::constant(seasonal), ctx);
        let branch_outs: Vec<Var> = self.branches.iter().map(|br| br.forward(&h, ctx)).collect();
        let refs: Vec<&Var> = branch_outs.iter().collect();
        let merged = Var::concat(&refs, 2); // [B, T, D*m]
        let merged = self.merge.forward(&merged, ctx).add(&h);
        let y_seasonal = self.head.forward(&merged, ctx);
        let y_trend = self.trend_head.forward(&Var::constant(trend), ctx);
        y_seasonal.add(&y_trend)
    }

    fn parameters(&self) -> Vec<Param> {
        let mut p = self.embed.params();
        for b in &self.branches {
            p.extend(b.params());
        }
        p.extend(self.merge.params());
        p.extend(self.head.params());
        p.extend(self.trend_head.params());
        p
    }

    fn name(&self) -> &str {
        "MICN"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> BaselineConfig {
        BaselineConfig::scaled(3, 24, 12)
    }

    #[test]
    fn micn_shape_and_finite() {
        let m = Micn::new(&cfg(), 1);
        let mut ctx = Ctx::eval();
        let y = m.forecast(&Tensor::randn(&[2, 24, 3], 1), &mut ctx);
        assert_eq!(y.shape(), &[2, 12, 3]);
        assert!(y.value().all_finite());
        assert_eq!(m.name(), "MICN");
    }

    #[test]
    fn micn_gradients_flow() {
        let m = Micn::new(&cfg(), 2);
        let mut ctx = Ctx::train(0);
        let loss = m
            .forecast(&Tensor::randn(&[1, 24, 3], 2), &mut ctx)
            .mse_loss(&Tensor::zeros(&[1, 12, 3]));
        for p in m.parameters() {
            p.zero_grad();
        }
        loss.backward();
        let live = m.parameters().iter().filter(|p| p.grad_norm() > 0.0).count();
        assert!(live > m.parameters().len() * 3 / 4, "{live}/{}", m.parameters().len());
    }

    #[test]
    fn micn_trains() {
        let m = Micn::new(&cfg(), 3);
        let mut ctx = Ctx::train(0);
        let x = Tensor::randn(&[1, 24, 3], 3).mul_scalar(0.5);
        let t = Tensor::zeros(&[1, 12, 3]);
        let mut first = 0.0;
        let mut last = 0.0;
        for step in 0..5 {
            let loss = m.forecast(&x, &mut ctx).mse_loss(&t);
            if step == 0 {
                first = loss.value().item();
            }
            last = loss.value().item();
            for p in m.parameters() {
                p.zero_grad();
            }
            loss.backward();
            for p in m.parameters() {
                p.update_with(|v, g| v.axpy(-0.02, g));
            }
        }
        assert!(last < first, "{first} -> {last}");
    }
}
