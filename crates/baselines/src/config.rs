//! Shared baseline configuration: every model in the zoo is built from
//! the same (channels, lookback, horizon, width) tuple, mirroring the
//! paper's "same input embedding and final prediction layer for all base
//! models" protocol.

/// Common hyper-parameters for baseline construction.
#[derive(Debug, Clone)]
pub struct BaselineConfig {
    /// Input channels `C`.
    pub c_in: usize,
    /// Lookback length `T`.
    pub lookback: usize,
    /// Prediction horizon `H`.
    pub horizon: usize,
    /// Model width `d_model`.
    pub d_model: usize,
    /// Attention heads (transformer-family models).
    pub heads: usize,
    /// Encoder depth.
    pub layers: usize,
    /// Dropout probability.
    pub dropout: f32,
}

impl BaselineConfig {
    /// CPU-scaled default matching the TS3Net scaled profile.
    pub fn scaled(c_in: usize, lookback: usize, horizon: usize) -> Self {
        BaselineConfig {
            c_in,
            lookback,
            horizon,
            d_model: 8,
            heads: 2,
            layers: 2,
            dropout: 0.1,
        }
    }

    /// Paper-scale profile (Table III).
    pub fn paper(c_in: usize, lookback: usize, horizon: usize) -> Self {
        BaselineConfig {
            c_in,
            lookback,
            horizon,
            d_model: 64,
            heads: 8,
            layers: 2,
            dropout: 0.1,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profiles_differ_in_width() {
        let s = BaselineConfig::scaled(7, 96, 96);
        let p = BaselineConfig::paper(7, 96, 96);
        assert!(s.d_model < p.d_model);
        assert_eq!(s.layers, 2);
    }
}
