//! **TimesNet** (Wu et al., ICLR 2023): fold the series by its top-k FFT
//! periods into 2-D (intra-period x inter-period) grids, learn with an
//! inception conv backbone, and aggregate the period branches weighted by
//! their FFT amplitudes. The paper's strongest general baseline and the
//! architecture TS3Net's TF-Block generalises.

use crate::config::BaselineConfig;
use ts3_rng::rngs::StdRng;
use ts3_rng::SeedableRng;
use ts3_autograd::{Param, Var};
use ts3_nn::{Ctx, DataEmbedding, InceptionBlock, Module};
use ts3_signal::topk_periods_multi;
use ts3_tensor::Tensor;
use ts3net_core::{ForecastModel, PredictionHead};

/// One TimesBlock: period folding + 2-D inception + amplitude-weighted
/// aggregation, with residual.
struct TimesBlock {
    conv: InceptionBlock,
    top_k: usize,
}

impl TimesBlock {
    fn forward(&self, x: &Var, ctx: &mut Ctx) -> Var {
        let (b, t, d) = (x.shape()[0], x.shape()[1], x.shape()[2]);
        // Period detection on the current features (mean over batch &
        // feature lanes), treated as a data-dependent constant.
        let flat = x.value().permute(&[1, 0, 2]).reshape(&[t, b * d]);
        let comps = topk_periods_multi(&flat, self.top_k);
        let mut outs: Vec<Var> = Vec::new();
        let mut weights: Vec<f32> = Vec::new();
        for comp in &comps {
            let p = comp.period.clamp(2, t);
            let rows = t.div_ceil(p);
            let padded_len = rows * p;
            // Pad along time, fold to [B, D, rows, p].
            let h = if padded_len > t {
                x.pad_axis(1, 0, padded_len - t)
            } else {
                x.clone()
            };
            let grid = h
                .permute(&[0, 2, 1]) // [B, D, T']
                .reshape(&[b, d, rows, p]);
            let conv = self.conv.forward(&grid, ctx);
            let back = conv.reshape(&[b, d, padded_len]).permute(&[0, 2, 1]);
            outs.push(back.narrow(1, 0, t));
            weights.push(comp.amplitude.max(1e-6));
        }
        if outs.is_empty() {
            return x.clone();
        }
        // Amplitude-softmax aggregation (constants).
        let wmax = weights.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
        let exps: Vec<f32> = weights.iter().map(|w| (w - wmax).exp()).collect();
        let z: f32 = exps.iter().sum();
        let mut agg: Option<Var> = None;
        for (o, w) in outs.iter().zip(exps) {
            let term = o.mul_scalar(w / z);
            agg = Some(match agg {
                Some(a) => a.add(&term),
                None => term,
            });
        }
        // ts3-lint: allow(no-unwrap-in-lib) top_k >= 1 guarantees at least one aggregated period
        agg.expect("nonempty").add(x)
    }
}

/// The TimesNet forecaster.
pub struct TimesNet {
    embed: DataEmbedding,
    blocks: Vec<TimesBlock>,
    head: PredictionHead,
    horizon: usize,
}

impl TimesNet {
    /// Build a TimesNet baseline (top-2 periods at the scaled profile).
    pub fn new(cfg: &BaselineConfig, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let embed = DataEmbedding::new("timesnet.embed", cfg.c_in, cfg.d_model, cfg.dropout, &mut rng);
        let blocks = (0..cfg.layers)
            .map(|l| TimesBlock {
                conv: InceptionBlock::new(
                    &format!("timesnet.block{l}"),
                    cfg.d_model,
                    cfg.d_model,
                    &mut rng,
                ),
                top_k: 2,
            })
            .collect();
        let head = PredictionHead::new(
            "timesnet.head",
            cfg.lookback,
            cfg.horizon,
            cfg.d_model,
            cfg.c_in,
            &mut rng,
        );
        TimesNet { embed, blocks, head, horizon: cfg.horizon }
    }
}

impl ForecastModel for TimesNet {
    fn forecast(&self, x: &Tensor, ctx: &mut Ctx) -> Var {
        // Instance normalisation (the Non-stationary trick the official
        // TimesNet applies around its backbone).
        let horizon = self.horizon;
        let mean = x.mean_axis_keepdim(1);
        let std = x.sub(&mean).square().mean_axis_keepdim(1).add_scalar(1e-5).sqrt();
        let normed = x.sub(&mean).div(&std);
        let mut h = self.embed.forward(&Var::constant(normed), ctx);
        for block in &self.blocks {
            h = block.forward(&h, ctx);
        }
        let y = self.head.forward(&h, ctx);
        let mean_h = mean.repeat_axis(1, horizon);
        let std_h = std.repeat_axis(1, horizon);
        y.mul(&Var::constant(std_h)).add(&Var::constant(mean_h))
    }

    fn parameters(&self) -> Vec<Param> {
        let mut p = self.embed.params();
        for b in &self.blocks {
            p.extend(b.conv.params());
        }
        p.extend(self.head.params());
        p
    }

    fn name(&self) -> &str {
        "TimesNet"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> BaselineConfig {
        BaselineConfig::scaled(3, 24, 12)
    }

    fn periodic_batch() -> Tensor {
        let mut v = Vec::new();
        for bi in 0..2 {
            for ti in 0..24 {
                for ci in 0..3 {
                    v.push(
                        (std::f32::consts::TAU * ti as f32 / 8.0 + (bi + ci) as f32).sin(),
                    );
                }
            }
        }
        Tensor::from_vec(v, &[2, 24, 3])
    }

    #[test]
    fn timesnet_shape_and_finite() {
        let m = TimesNet::new(&cfg(), 1);
        let mut ctx = Ctx::eval();
        let y = m.forecast(&periodic_batch(), &mut ctx);
        assert_eq!(y.shape(), &[2, 12, 3]);
        assert!(y.value().all_finite());
        assert_eq!(m.name(), "TimesNet");
    }

    #[test]
    fn timesnet_gradients_flow() {
        let m = TimesNet::new(&cfg(), 2);
        let mut ctx = Ctx::train(0);
        let loss = m
            .forecast(&periodic_batch(), &mut ctx)
            .mse_loss(&Tensor::zeros(&[2, 12, 3]));
        for p in m.parameters() {
            p.zero_grad();
        }
        loss.backward();
        let live = m.parameters().iter().filter(|p| p.grad_norm() > 0.0).count();
        assert!(live > m.parameters().len() / 2, "{live}");
    }

    #[test]
    fn timesnet_trains() {
        let m = TimesNet::new(&cfg(), 3);
        let mut ctx = Ctx::train(0);
        let x = periodic_batch();
        let t = Tensor::zeros(&[2, 12, 3]);
        let mut first = 0.0;
        let mut last = 0.0;
        for step in 0..5 {
            let loss = m.forecast(&x, &mut ctx).mse_loss(&t);
            if step == 0 {
                first = loss.value().item();
            }
            last = loss.value().item();
            for p in m.parameters() {
                p.zero_grad();
            }
            loss.backward();
            for p in m.parameters() {
                p.update_with(|v, g| v.axpy(-0.02, g));
            }
        }
        assert!(last < first);
    }
}
