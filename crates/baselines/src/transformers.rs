//! Transformer-family baselines built on the shared attention stack:
//! **Informer** (ProbSparse attention + distilling), **Pyraformer**
//! (pyramidal attention), the **Non-stationary Transformer**
//! (stationarisation wrapper) and **PatchTST** (channel-independent
//! patching).

use crate::config::BaselineConfig;
use ts3_rng::rngs::StdRng;
use ts3_rng::SeedableRng;
use ts3_autograd::{Param, Var};
use ts3_nn::{
    AttentionKind, Conv1d, Ctx, DataEmbedding, EncoderLayer, Linear, Module,
};
use ts3_tensor::Tensor;
use ts3net_core::{ForecastModel, PredictionHead};

/// Generic encoder-style forecaster: embedding -> encoder layers ->
/// prediction head, parameterised by the attention kind.
struct EncoderForecaster {
    embed: DataEmbedding,
    layers: Vec<EncoderLayer>,
    /// Optional distilling convs between layers (Informer).
    distill: Vec<Conv1d>,
    head: PredictionHead,
    name: &'static str,
    /// Per-window stationarisation (Non-stationary Transformer).
    stationarise: bool,
    horizon: usize,
}

impl EncoderForecaster {
    #[allow(clippy::too_many_arguments)]
    fn new(
        name: &'static str,
        cfg: &BaselineConfig,
        kind: AttentionKind,
        distilling: bool,
        stationarise: bool,
        seed: u64,
    ) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let embed = DataEmbedding::new(
            &format!("{name}.embed"),
            cfg.c_in,
            cfg.d_model,
            cfg.dropout,
            &mut rng,
        );
        let layers = (0..cfg.layers)
            .map(|l| {
                EncoderLayer::new(
                    &format!("{name}.enc{l}"),
                    cfg.d_model,
                    cfg.heads,
                    cfg.d_model * 2,
                    kind,
                    cfg.dropout,
                    &mut rng,
                )
            })
            .collect();
        let distill = if distilling {
            (0..cfg.layers.saturating_sub(1))
                .map(|l| {
                    Conv1d::new(&format!("{name}.distill{l}"), cfg.d_model, cfg.d_model, 3, &mut rng)
                })
                .collect()
        } else {
            Vec::new()
        };
        let head = PredictionHead::new(
            &format!("{name}.head"),
            cfg.lookback,
            cfg.horizon,
            cfg.d_model,
            cfg.c_in,
            &mut rng,
        );
        EncoderForecaster {
            embed,
            layers,
            distill,
            head,
            name,
            stationarise,
            horizon: cfg.horizon,
        }
    }

    fn stats(x: &Tensor) -> (Tensor, Tensor) {
        // Per (batch, channel) mean and std over the time axis.
        let mean = x.mean_axis_keepdim(1); // [B, 1, C]
        let centered = x.sub(&mean);
        let std = centered
            .square()
            .mean_axis_keepdim(1)
            .add_scalar(1e-5)
            .sqrt();
        (mean, std)
    }
}

impl ForecastModel for EncoderForecaster {
    fn forecast(&self, x: &Tensor, ctx: &mut Ctx) -> Var {
        let (input, denorm) = if self.stationarise {
            let (mean, std) = Self::stats(x);
            let normed = x.sub(&mean).div(&std);
            (normed, Some((mean, std)))
        } else {
            (x.clone(), None)
        };
        let mut h = self.embed.forward(&Var::constant(input), ctx);
        for (l, layer) in self.layers.iter().enumerate() {
            h = layer.forward(&h, ctx);
            if let Some(conv) = self.distill.get(l) {
                // Distilling conv over time (keep length): [B,T,D]->[B,D,T].
                let ht = h.permute(&[0, 2, 1]);
                let ht = conv.forward(&ht, ctx).gelu();
                h = ht.permute(&[0, 2, 1]);
            }
        }
        let mut y = self.head.forward(&h, ctx);
        if let Some((mean, std)) = denorm {
            // Broadcast train-window statistics over the horizon.
            let mean_h = mean.repeat_axis(1, self.horizon);
            let std_h = std.repeat_axis(1, self.horizon);
            y = y.mul(&Var::constant(std_h)).add(&Var::constant(mean_h));
        }
        y
    }

    fn parameters(&self) -> Vec<Param> {
        let mut p = self.embed.params();
        for l in &self.layers {
            p.extend(l.params());
        }
        for d in &self.distill {
            p.extend(d.params());
        }
        p.extend(self.head.params());
        p
    }

    fn name(&self) -> &str {
        self.name
    }
}

/// Informer (Zhou et al., AAAI 2021): ProbSparse attention + distilling.
pub struct Informer(EncoderForecaster);

impl Informer {
    /// Build an Informer baseline.
    pub fn new(cfg: &BaselineConfig, seed: u64) -> Self {
        Informer(EncoderForecaster::new(
            "Informer",
            cfg,
            AttentionKind::ProbSparse { factor: 5 },
            true,
            false,
            seed,
        ))
    }
}

impl ForecastModel for Informer {
    fn forecast(&self, x: &Tensor, ctx: &mut Ctx) -> Var {
        self.0.forecast(x, ctx)
    }
    fn parameters(&self) -> Vec<Param> {
        self.0.parameters()
    }
    fn name(&self) -> &str {
        self.0.name()
    }
}

/// Pyraformer (Liu et al., ICLR 2022): pyramidal sparse attention.
pub struct Pyraformer(EncoderForecaster);

impl Pyraformer {
    /// Build a Pyraformer baseline.
    pub fn new(cfg: &BaselineConfig, seed: u64) -> Self {
        Pyraformer(EncoderForecaster::new(
            "Pyraformer",
            cfg,
            AttentionKind::Pyramidal { window: 3, stride: cfg.lookback.div_ceil(8).max(2) },
            false,
            false,
            seed,
        ))
    }
}

impl ForecastModel for Pyraformer {
    fn forecast(&self, x: &Tensor, ctx: &mut Ctx) -> Var {
        self.0.forecast(x, ctx)
    }
    fn parameters(&self) -> Vec<Param> {
        self.0.parameters()
    }
    fn name(&self) -> &str {
        self.0.name()
    }
}

/// Non-stationary Transformer (Liu et al., NeurIPS 2022): per-window
/// stationarisation around a vanilla attention encoder.
pub struct Stationary(EncoderForecaster);

impl Stationary {
    /// Build a Non-stationary Transformer baseline.
    pub fn new(cfg: &BaselineConfig, seed: u64) -> Self {
        Stationary(EncoderForecaster::new(
            "Stationary",
            cfg,
            AttentionKind::Full,
            false,
            true,
            seed,
        ))
    }
}

impl ForecastModel for Stationary {
    fn forecast(&self, x: &Tensor, ctx: &mut Ctx) -> Var {
        self.0.forecast(x, ctx)
    }
    fn parameters(&self) -> Vec<Param> {
        self.0.parameters()
    }
    fn name(&self) -> &str {
        self.0.name()
    }
}

/// PatchTST (Nie et al., ICLR 2023): channel-independent patch tokens +
/// Transformer encoder + flatten head, with instance normalisation.
pub struct PatchTst {
    patch_embed: Linear,
    layers: Vec<EncoderLayer>,
    head: Linear,
    patch_len: usize,
    stride: usize,
    n_patches: usize,
    horizon: usize,
    d_model: usize,
}

impl PatchTst {
    /// Build a PatchTST baseline (the original's lookback-96 settings:
    /// patch length 16, stride 8).
    pub fn new(cfg: &BaselineConfig, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let patch_len = 16.min(cfg.lookback);
        let stride = (patch_len / 2).max(1);
        let n_patches = (cfg.lookback - patch_len) / stride + 1;
        let layers = (0..cfg.layers)
            .map(|l| {
                EncoderLayer::new(
                    &format!("patchtst.enc{l}"),
                    cfg.d_model,
                    cfg.heads,
                    cfg.d_model * 2,
                    AttentionKind::Full,
                    cfg.dropout,
                    &mut rng,
                )
            })
            .collect();
        PatchTst {
            patch_embed: Linear::new("patchtst.embed", patch_len, cfg.d_model, true, &mut rng),
            layers,
            head: Linear::new(
                "patchtst.head",
                n_patches * cfg.d_model,
                cfg.horizon,
                true,
                &mut rng,
            ),
            patch_len,
            stride,
            n_patches,
            horizon: cfg.horizon,
            d_model: cfg.d_model,
        }
    }
}

impl ForecastModel for PatchTst {
    fn forecast(&self, x: &Tensor, ctx: &mut Ctx) -> Var {
        let (b, t, c) = (x.shape()[0], x.shape()[1], x.shape()[2]);
        // Instance normalisation per (batch, channel).
        let mean = x.mean_axis_keepdim(1);
        let std = x.sub(&mean).square().mean_axis_keepdim(1).add_scalar(1e-5).sqrt();
        let normed = x.sub(&mean).div(&std);
        // Build patch tokens channel-independently: [B*C, N, P].
        let mut tokens = vec![0.0f32; b * c * self.n_patches * self.patch_len];
        for bi in 0..b {
            for ci in 0..c {
                for pi in 0..self.n_patches {
                    for j in 0..self.patch_len {
                        let ti = pi * self.stride + j;
                        let _ = t;
                        tokens[(((bi * c + ci) * self.n_patches + pi) * self.patch_len) + j] =
                            normed.at(&[bi, ti, ci]);
                    }
                }
            }
        }
        let tokens = Var::constant(Tensor::from_vec(
            tokens,
            &[b * c, self.n_patches, self.patch_len],
        ));
        let mut h = self.patch_embed.forward(&tokens, ctx); // [B*C, N, D]
        for layer in &self.layers {
            h = layer.forward(&h, ctx);
        }
        let flat = h.reshape(&[b * c, self.n_patches * self.d_model]);
        let y = self.head.forward(&flat, ctx); // [B*C, H]
        let y = y.reshape(&[b, c, self.horizon]).permute(&[0, 2, 1]); // [B, H, C]
        // De-normalise.
        let mean_h = mean.repeat_axis(1, self.horizon);
        let std_h = std.repeat_axis(1, self.horizon);
        y.mul(&Var::constant(std_h)).add(&Var::constant(mean_h))
    }

    fn parameters(&self) -> Vec<Param> {
        let mut p = self.patch_embed.params();
        for l in &self.layers {
            p.extend(l.params());
        }
        p.extend(self.head.params());
        p
    }

    fn name(&self) -> &str {
        "PatchTST"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> BaselineConfig {
        BaselineConfig::scaled(3, 24, 12)
    }

    fn batch() -> Tensor {
        Tensor::randn(&[2, 24, 3], 5)
    }

    fn check_model(m: &dyn ForecastModel) {
        let mut ctx = Ctx::eval();
        let y = m.forecast(&batch(), &mut ctx);
        assert_eq!(y.shape(), &[2, 12, 3], "{}", m.name());
        assert!(y.value().all_finite(), "{}", m.name());
        let loss = y.square().sum();
        for p in m.parameters() {
            p.zero_grad();
        }
        loss.backward();
        let live = m
            .parameters()
            .iter()
            .filter(|p| p.grad_norm() > 0.0)
            .count();
        assert!(
            live * 10 >= m.parameters().len() * 9,
            "{}: only {live}/{} params got gradients",
            m.name(),
            m.parameters().len()
        );
    }

    #[test]
    fn informer_works() {
        check_model(&Informer::new(&cfg(), 1));
    }

    #[test]
    fn pyraformer_works() {
        check_model(&Pyraformer::new(&cfg(), 2));
    }

    #[test]
    fn stationary_works() {
        check_model(&Stationary::new(&cfg(), 3));
    }

    #[test]
    fn patchtst_works() {
        check_model(&PatchTst::new(&cfg(), 4));
    }

    #[test]
    fn stationary_denormalises_scale() {
        // A large-offset constant input should produce predictions near
        // that offset immediately (the normalisation handles the shift).
        let m = Stationary::new(&cfg(), 5);
        let x = Tensor::full(&[1, 24, 3], 100.0);
        let mut ctx = Ctx::eval();
        let y = m.forecast(&x, &mut ctx);
        // Mean restored by de-normalisation.
        assert!((y.value().mean() - 100.0).abs() < 5.0, "mean {}", y.value().mean());
    }

    #[test]
    fn patchtst_names_and_counts() {
        let m = PatchTst::new(&cfg(), 6);
        assert_eq!(m.name(), "PatchTST");
        assert!(m.num_parameters() > 100);
    }
}
