//! Imputation adapter: turn any forecaster with `horizon == lookback`
//! into a pointwise imputer by mean-filling the hidden positions and
//! reconstructing the full window — the protocol TimesNet uses to run
//! forecasting architectures on the imputation benchmark.

use ts3_autograd::{Param, Var};
use ts3_nn::Ctx;
use ts3_tensor::Tensor;
use ts3net_core::{ForecastModel, ImputationModel};

/// Wraps a `T -> T` forecaster as an imputer.
pub struct ReconstructionAdapter<M: ForecastModel> {
    inner: M,
}

impl<M: ForecastModel> ReconstructionAdapter<M> {
    /// Wrap a forecaster whose horizon equals its lookback.
    pub fn new(inner: M) -> Self {
        ReconstructionAdapter { inner }
    }

    /// Access the wrapped model.
    pub fn inner(&self) -> &M {
        &self.inner
    }
}

/// Mean-fill hidden positions per (batch, channel) from observed values
/// (re-export of the canonical helper in `ts3_nn::metrics`).
pub use ts3_nn::mean_fill;

impl<M: ForecastModel> ImputationModel for ReconstructionAdapter<M> {
    fn impute(&self, masked: &Tensor, mask: &Tensor, ctx: &mut Ctx) -> Var {
        let filled = mean_fill(masked, mask);
        let y = self.inner.forecast(&filled, ctx);
        assert_eq!(
            y.shape(),
            masked.shape(),
            "ReconstructionAdapter requires horizon == lookback (model {})",
            self.inner.name()
        );
        y
    }

    fn parameters(&self) -> Vec<Param> {
        self.inner.parameters()
    }

    fn name(&self) -> &str {
        self.inner.name()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::BaselineConfig;
    use crate::linear_models::DLinear;

    #[test]
    fn mean_fill_uses_observed_mean() {
        let x = Tensor::from_vec(vec![1.0, 0.0, 3.0], &[1, 3, 1]);
        let mask = Tensor::from_vec(vec![0.0, 1.0, 0.0], &[1, 3, 1]);
        let f = mean_fill(&x, &mask);
        assert_eq!(f.at(&[0, 1, 0]), 2.0);
        assert_eq!(f.at(&[0, 0, 0]), 1.0);
    }

    #[test]
    fn mean_fill_all_masked_channel_is_zero() {
        let x = Tensor::zeros(&[1, 2, 1]);
        let mask = Tensor::ones(&[1, 2, 1]);
        let f = mean_fill(&x, &mask);
        assert_eq!(f.as_slice(), &[0.0, 0.0]);
    }

    #[test]
    fn adapter_reconstructs_full_window() {
        let cfg = BaselineConfig::scaled(2, 16, 16);
        let m = ReconstructionAdapter::new(DLinear::new(&cfg, 1));
        let x = Tensor::randn(&[1, 16, 2], 1);
        let mask = Tensor::zeros(&[1, 16, 2]);
        let mut ctx = Ctx::eval();
        let y = m.impute(&x, &mask, &mut ctx);
        assert_eq!(y.shape(), &[1, 16, 2]);
        assert_eq!(m.name(), "DLinear");
        assert!(!m.parameters().is_empty());
    }

    #[test]
    #[should_panic(expected = "horizon == lookback")]
    fn adapter_rejects_mismatched_horizon() {
        let cfg = BaselineConfig::scaled(2, 16, 8);
        let m = ReconstructionAdapter::new(DLinear::new(&cfg, 1));
        let x = Tensor::zeros(&[1, 16, 2]);
        let mask = Tensor::zeros(&[1, 16, 2]);
        let mut ctx = Ctx::eval();
        let _ = m.impute(&x, &mask, &mut ctx);
    }
}
