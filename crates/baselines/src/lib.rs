//! # ts3-baselines
//!
//! Compact, faithful re-implementations of the paper's ten comparison
//! models plus the two Table VII decomposition controls, all sharing the
//! [`ts3net_core::ForecastModel`] interface and the same embedding/head
//! protocol the paper prescribes for fair comparison:
//!
//! | Model | Signature mechanism kept |
//! |---|---|
//! | DLinear | trend/remainder split + per-part time linear |
//! | LightTS | continuous + interval sampling MLPs |
//! | PatchTST | channel-independent patch tokens + Transformer |
//! | Informer | ProbSparse attention + distilling convs |
//! | Pyraformer | pyramidal (local + strided-coarse) attention |
//! | Stationary | per-window stationarisation around attention |
//! | Autoformer | auto-correlation delays + progressive decomposition |
//! | FEDformer | Fourier-enhanced frequency-domain mixing |
//! | TimesNet | FFT-period folding + 2-D inception |
//! | MICN | multi-scale local conv + isometric global conv |
//! | TSD-CNN | trend-seasonal split + TS3Net's conv backbone |
//! | TSD-Trans | trend-seasonal split + vanilla Transformer |

pub mod adapter;
pub mod config;
pub mod decomposition_transformers;
pub mod factory;
pub mod linear_models;
pub mod micn;
pub mod timesnet;
pub mod transformers;
pub mod tsd;

pub use adapter::{mean_fill, ReconstructionAdapter};
pub use config::BaselineConfig;
pub use decomposition_transformers::{Autoformer, FedFormer};
pub use factory::{build_forecaster, build_imputer, TABLE4_MODELS};
pub use linear_models::{DLinear, LightTS};
pub use micn::Micn;
pub use timesnet::TimesNet;
pub use transformers::{Informer, PatchTst, Pyraformer, Stationary};
pub use tsd::TsdModel;
