//! Decomposition-transformer baselines: **Autoformer** (auto-correlation +
//! progressive series decomposition) and **FEDformer** (Fourier-enhanced
//! blocks + decomposition).

use crate::config::BaselineConfig;
use ts3_rng::rngs::StdRng;
use ts3_rng::SeedableRng;
use ts3_autograd::{Param, Var};
use ts3_nn::{
    Activation, AutoCorrelationBlock, Ctx, DataEmbedding, FourierBlock, LayerNorm, Mlp, Module,
};
use ts3_tensor::{moving_avg_same, Tensor};
use ts3net_core::{ForecastModel, PredictionHead, TimeLinear};

/// Differentiable moving-average split of a `[B, T, D]` Var: the trend is
/// extracted with a fixed averaging conv expressed through narrow/concat
/// ops (cheap for the small kernel used here).
fn var_series_decomp(x: &Var, kernel: usize) -> (Var, Var) {
    // Replicate-pad along time then average k shifted copies.
    let before = (kernel - 1) / 2;
    let after = kernel - 1 - before;
    let first = x.narrow(1, 0, 1);
    let t = x.shape()[1];
    let last = x.narrow(1, t - 1, 1);
    let mut parts: Vec<Var> = Vec::with_capacity(kernel);
    let mut padded = x.clone();
    if before > 0 {
        let mut head = first.clone();
        for _ in 1..before {
            head = Var::concat(&[&head, &first], 1);
        }
        padded = Var::concat(&[&head, &padded], 1);
    }
    if after > 0 {
        let mut tail = last.clone();
        for _ in 1..after {
            tail = Var::concat(&[&tail, &last], 1);
        }
        padded = Var::concat(&[&padded, &tail], 1);
    }
    for k in 0..kernel {
        parts.push(padded.narrow(1, k, t));
    }
    let refs: Vec<&Var> = parts.iter().collect();
    let mut acc = refs[0].clone();
    for r in &refs[1..] {
        acc = acc.add(r);
    }
    let trend = acc.mul_scalar(1.0 / kernel as f32);
    let seasonal = x.sub(&trend);
    (trend, seasonal)
}

/// One Autoformer/FEDformer-style encoder block: a mixing mechanism
/// (auto-correlation or Fourier), progressive decomposition, and an FFN.
enum Mixer {
    Auto(AutoCorrelationBlock),
    Fourier(FourierBlock),
}

struct DecompEncoderLayer {
    mixer: Mixer,
    ffn: Mlp,
    norm: LayerNorm,
    kernel: usize,
}

impl DecompEncoderLayer {
    fn forward(&self, x: &Var, ctx: &mut Ctx) -> (Var, Var) {
        let mixed = match &self.mixer {
            Mixer::Auto(b) => b.forward(x, ctx),
            Mixer::Fourier(b) => b.forward(x, ctx),
        };
        let (trend1, s1) = var_series_decomp(&x.add(&mixed), self.kernel);
        let h = self.norm.forward(&s1, ctx);
        let (trend2, s2) = var_series_decomp(&h.add(&self.ffn.forward(&h, ctx)), self.kernel);
        (s2, trend1.add(&trend2))
    }

    fn params(&self) -> Vec<Param> {
        let mut p = match &self.mixer {
            Mixer::Auto(b) => b.params(),
            Mixer::Fourier(b) => b.params(),
        };
        p.extend(self.ffn.params());
        p.extend(self.norm.params());
        p
    }
}

/// Shared skeleton for the two decomposition transformers.
struct DecompForecaster {
    embed: DataEmbedding,
    layers: Vec<DecompEncoderLayer>,
    seasonal_head: PredictionHead,
    trend_head: TimeLinear,
    input_trend_head: TimeLinear,
    name: &'static str,
}

impl DecompForecaster {
    fn new(name: &'static str, cfg: &BaselineConfig, fourier: bool, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let embed = DataEmbedding::new(
            &format!("{name}.embed"),
            cfg.c_in,
            cfg.d_model,
            cfg.dropout,
            &mut rng,
        );
        let layers = (0..cfg.layers)
            .map(|l| DecompEncoderLayer {
                mixer: if fourier {
                    Mixer::Fourier(FourierBlock::new(
                        &format!("{name}.f{l}"),
                        (cfg.lookback / 4).max(4),
                        cfg.d_model,
                        &mut rng,
                    ))
                } else {
                    Mixer::Auto(AutoCorrelationBlock::new(3))
                },
                ffn: Mlp::new(
                    &format!("{name}.ffn{l}"),
                    cfg.d_model,
                    cfg.d_model * 2,
                    cfg.d_model,
                    Activation::Gelu,
                    cfg.dropout,
                    &mut rng,
                ),
                norm: LayerNorm::new(&format!("{name}.norm{l}"), cfg.d_model),
                kernel: 25.min(cfg.lookback | 1),
            })
            .collect();
        DecompForecaster {
            embed,
            layers,
            seasonal_head: PredictionHead::new(
                &format!("{name}.head_s"),
                cfg.lookback,
                cfg.horizon,
                cfg.d_model,
                cfg.c_in,
                &mut rng,
            ),
            trend_head: TimeLinear::new(
                &format!("{name}.head_t"),
                cfg.lookback,
                cfg.horizon,
                &mut rng,
            ),
            input_trend_head: TimeLinear::new(
                &format!("{name}.head_it"),
                cfg.lookback,
                cfg.horizon,
                &mut rng,
            ),
            name,
        }
    }
}

impl ForecastModel for DecompForecaster {
    fn forecast(&self, x: &Tensor, ctx: &mut Ctx) -> Var {
        // Input-level decomposition: the raw trend is forecast linearly.
        let input_trend = moving_avg_same(x, 1, 25.min(x.shape()[1] | 1));
        let seasonal_in = x.sub(&input_trend);
        let mut h = self.embed.forward(&Var::constant(seasonal_in), ctx);
        let mut trend_acc: Option<Var> = None;
        for layer in &self.layers {
            let (s, t) = layer.forward(&h, ctx);
            h = s;
            trend_acc = Some(match trend_acc {
                Some(acc) => acc.add(&t),
                None => t,
            });
        }
        let y_seasonal = self.seasonal_head.forward(&h, ctx);
        let y_input_trend = self
            .input_trend_head
            .forward(&Var::constant(input_trend), ctx);
        let mut y = y_seasonal.add(&y_input_trend);
        if let Some(tr) = trend_acc {
            // Progressive trend lives in feature space; fold to channels
            // via the seasonal head's feature projection is avoided — use
            // a dedicated time-linear over the mean feature instead.
            let tr_c = tr.mean_axis_keepdim(2).repeat_axis(2, x.shape()[2]);
            y = y.add(&self.trend_head.forward(&tr_c, ctx));
        }
        y
    }

    fn parameters(&self) -> Vec<Param> {
        let mut p = self.embed.params();
        for l in &self.layers {
            p.extend(l.params());
        }
        p.extend(self.seasonal_head.params());
        p.extend(self.trend_head.params());
        p.extend(self.input_trend_head.params());
        p
    }

    fn name(&self) -> &str {
        self.name
    }
}

/// Autoformer (Wu et al., NeurIPS 2021).
pub struct Autoformer(DecompForecaster);

impl Autoformer {
    /// Build an Autoformer baseline.
    pub fn new(cfg: &BaselineConfig, seed: u64) -> Self {
        Autoformer(DecompForecaster::new("Autoformer", cfg, false, seed))
    }
}

impl ForecastModel for Autoformer {
    fn forecast(&self, x: &Tensor, ctx: &mut Ctx) -> Var {
        self.0.forecast(x, ctx)
    }
    fn parameters(&self) -> Vec<Param> {
        self.0.parameters()
    }
    fn name(&self) -> &str {
        self.0.name()
    }
}

/// FEDformer (Zhou et al., ICML 2022).
pub struct FedFormer(DecompForecaster);

impl FedFormer {
    /// Build a FEDformer baseline.
    pub fn new(cfg: &BaselineConfig, seed: u64) -> Self {
        FedFormer(DecompForecaster::new("FEDformer", cfg, true, seed))
    }
}

impl ForecastModel for FedFormer {
    fn forecast(&self, x: &Tensor, ctx: &mut Ctx) -> Var {
        self.0.forecast(x, ctx)
    }
    fn parameters(&self) -> Vec<Param> {
        self.0.parameters()
    }
    fn name(&self) -> &str {
        self.0.name()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> BaselineConfig {
        BaselineConfig::scaled(3, 24, 12)
    }

    #[test]
    fn var_series_decomp_is_exact_split() {
        let x = Var::constant(Tensor::randn(&[1, 20, 2], 1));
        let (t, s) = var_series_decomp(&x, 5);
        assert!(t.value().add(s.value()).allclose(x.value(), 1e-4));
    }

    #[test]
    fn var_series_decomp_matches_tensor_kernel() {
        let x = Tensor::randn(&[1, 16, 2], 2);
        let (t, _) = var_series_decomp(&Var::constant(x.clone()), 5);
        let want = moving_avg_same(&x, 1, 5);
        assert!(t.value().allclose(&want, 1e-4));
    }

    #[test]
    fn var_series_decomp_gradient_flows() {
        let x = Var::constant(Tensor::randn(&[1, 12, 1], 3));
        let (t, s) = var_series_decomp(&x, 3);
        t.add(&s).sum().backward();
        let g = x.grad().unwrap();
        // trend + seasonal = x exactly -> gradient of sum is all-ones.
        for v in g.as_slice() {
            assert!((v - 1.0).abs() < 1e-4);
        }
    }

    #[test]
    fn autoformer_shape_and_grads() {
        let m = Autoformer::new(&cfg(), 1);
        let mut ctx = Ctx::eval();
        let x = Tensor::randn(&[2, 24, 3], 4);
        let y = m.forecast(&x, &mut ctx);
        assert_eq!(y.shape(), &[2, 12, 3]);
        assert!(y.value().all_finite());
        let loss = y.square().sum();
        for p in m.parameters() {
            p.zero_grad();
        }
        loss.backward();
        let live = m.parameters().iter().filter(|p| p.grad_norm() > 0.0).count();
        assert!(live > m.parameters().len() / 2);
        assert_eq!(m.name(), "Autoformer");
    }

    #[test]
    fn fedformer_shape_and_grads() {
        let m = FedFormer::new(&cfg(), 2);
        let mut ctx = Ctx::eval();
        let x = Tensor::randn(&[2, 24, 3], 5);
        let y = m.forecast(&x, &mut ctx);
        assert_eq!(y.shape(), &[2, 12, 3]);
        assert!(y.value().all_finite());
        let loss = y.square().sum();
        for p in m.parameters() {
            p.zero_grad();
        }
        loss.backward();
        let live = m.parameters().iter().filter(|p| p.grad_norm() > 0.0).count();
        assert!(live > m.parameters().len() / 2);
        assert_eq!(m.name(), "FEDformer");
    }
}
