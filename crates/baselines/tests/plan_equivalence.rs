//! Compiled-plan equivalence contract across the whole model zoo: for
//! TS3Net (all ablations), every Table IV baseline and both TSD
//! controls, `CompiledPlan::run` must be **bitwise identical** to the
//! eager `forecast` — at batch 1 and batch 64, and at 1 and N worker
//! threads (the pool's bit-identical-to-serial contract composes with
//! the plan's no-tape execution).
//!
//! Also covers the freeze-semantics edge cases: freezing an untrained
//! model, re-freezing after further training steps (the old plan must
//! keep its old outputs), and the batch-of-1-vs-batch-of-N consistency
//! sweep for models without cross-batch data dependence.

use std::rc::Rc;
use ts3_baselines::{build_forecaster, BaselineConfig, TABLE4_MODELS};
use ts3_nn::Ctx;
use ts3_tensor::par::set_max_threads;
use ts3_tensor::Tensor;
use ts3net_core::{CompiledPlan, ForecastModel, TS3NetConfig};

const ALL_MODELS: [&str; 16] = [
    "TS3Net",
    "TS3Net w/o TD",
    "TS3Net w/o TF-Block",
    "TS3Net w/o Both",
    "PatchTST",
    "TimesNet",
    "MICN",
    "LightTS",
    "DLinear",
    "FEDformer",
    "Stationary",
    "Autoformer",
    "Pyraformer",
    "Informer",
    "TSD-CNN",
    "TSD-Trans",
];

fn cfgs() -> (BaselineConfig, TS3NetConfig) {
    let cfg = BaselineConfig::scaled(2, 24, 12);
    let mut ts3 = TS3NetConfig::scaled(2, 24, 12);
    ts3.lambda = 4;
    ts3.d_model = 4;
    ts3.d_hidden = 4;
    (cfg, ts3)
}

/// Periodic + trend mixture so the decomposition paths do real work.
fn batch(b: usize, t: usize, c: usize, seed: u64) -> Tensor {
    let mut data = Vec::with_capacity(b * t * c);
    for bi in 0..b {
        for ti in 0..t {
            for ci in 0..c {
                let tf = ti as f32 + seed as f32;
                data.push(
                    0.02 * tf + (std::f32::consts::TAU * tf / 8.0 + bi as f32 + 0.5 * ci as f32).sin(),
                );
            }
        }
    }
    Tensor::from_vec(data, &[b, t, c])
}

fn assert_bitwise(a: &Tensor, b: &Tensor, what: &str) {
    assert_eq!(a.shape(), b.shape(), "{what}: shape mismatch");
    assert_eq!(a.as_slice(), b.as_slice(), "{what}: values differ");
}

#[test]
fn every_model_plan_matches_eager_bitwise_across_batches_and_threads() {
    let (cfg, ts3) = cfgs();
    // Make sure the factory list and this file's list cannot drift apart.
    for name in TABLE4_MODELS {
        assert!(ALL_MODELS.contains(&name), "missing {name} from the sweep");
    }
    for name in ALL_MODELS {
        let model: Rc<dyn ForecastModel> = Rc::from(build_forecaster(name, &cfg, &ts3, 7));
        let calib = batch(2, 24, 2, 1);
        let plan = CompiledPlan::freeze(model, &calib)
            .unwrap_or_else(|e| panic!("{name}: freeze failed: {e}"));
        for b in [1usize, 64] {
            let x = batch(b, 24, 2, 3);
            set_max_threads(1);
            let eager_serial = plan.model().forecast(&x, &mut Ctx::eval()).value().clone();
            let plan_serial = plan.run(&x).unwrap_or_else(|e| panic!("{name}: run failed: {e}"));
            assert_bitwise(&plan_serial, &eager_serial, &format!("{name} b={b} threads=1"));
            set_max_threads(4);
            let plan_par = plan.run(&x).unwrap_or_else(|e| panic!("{name}: run failed: {e}"));
            assert_bitwise(&plan_par, &eager_serial, &format!("{name} b={b} threads=4"));
        }
    }
    set_max_threads(1);
}

#[test]
fn freezing_an_untrained_model_works() {
    let (cfg, ts3) = cfgs();
    // Fresh seed, zero training steps: freeze must succeed and verify.
    let model: Rc<dyn ForecastModel> = Rc::from(build_forecaster("TS3Net", &cfg, &ts3, 99));
    let calib = batch(1, 24, 2, 0);
    let plan = CompiledPlan::freeze(model, &calib).expect("untrained freeze");
    assert!(plan.run(&calib).unwrap().all_finite());
}

#[test]
fn refreezing_after_training_captures_new_weights_and_keeps_old_plan_intact() {
    let (cfg, ts3) = cfgs();
    let model: Rc<dyn ForecastModel> = Rc::from(build_forecaster("DLinear", &cfg, &ts3, 5));
    let x = batch(2, 24, 2, 4);
    let target = batch(2, 12, 2, 8);
    let plan_v1 = CompiledPlan::freeze(model.clone(), &x).expect("freeze v1");
    let y_v1 = plan_v1.run(&x).unwrap();

    // A few real SGD steps on the shared parameters.
    for _ in 0..3 {
        let loss = model.forecast(&x, &mut Ctx::train(0)).mse_loss(&target);
        for p in model.parameters() {
            p.zero_grad();
        }
        loss.backward();
        for p in model.parameters() {
            p.update_with(|v, g| v.axpy(-0.05, g));
        }
    }

    let plan_v2 = CompiledPlan::freeze(model.clone(), &x).expect("freeze v2");
    let y_v2 = plan_v2.run(&x).unwrap();
    let eager_now = model.forecast(&x, &mut Ctx::eval()).value().clone();

    // The new plan serves the trained weights; the old plan is unmoved.
    assert_bitwise(&y_v2, &eager_now, "refrozen plan vs current eager");
    assert_bitwise(&plan_v1.run(&x).unwrap(), &y_v1, "old plan after training");
    assert_ne!(y_v1.as_slice(), y_v2.as_slice(), "training changed nothing?");
}

#[test]
fn empty_calibration_refreeze_after_swap_value_under_no_grad() {
    use ts3_autograd::NoGradGuard;
    let (cfg, ts3) = cfgs();
    let model: Rc<dyn ForecastModel> = Rc::from(build_forecaster("DLinear", &cfg, &ts3, 13));
    let x = batch(2, 24, 2, 6);
    let plan_v1 = CompiledPlan::freeze(model.clone(), &x).expect("freeze v1");
    let y_v1 = plan_v1.run(&x).unwrap();

    // A weight-update service installs new tensors with `swap_value`
    // under a no-grad guard — the same primitive the plan itself uses to
    // swap snapshots around execution.
    {
        let _no_grad = NoGradGuard::new();
        for p in model.parameters() {
            let mut incoming = p.value().map(|v| v * 1.5 + 0.0625);
            p.swap_value(&mut incoming);
        }
    }

    // Refreeze on a zero-row calibration batch: fixes geometry and
    // snapshots the swapped-in weights, but skips the self-check forward
    // (nothing to verify on an empty batch).
    let plan_v2 =
        CompiledPlan::freeze(model.clone(), &Tensor::zeros(&[0, 24, 2])).expect("empty refreeze");
    assert_eq!(plan_v2.geometry(), [24, 2]);

    let y_v2 = plan_v2.run(&x).unwrap();
    let eager_now = model.forecast(&x, &mut Ctx::eval()).value().clone();
    assert_bitwise(&y_v2, &eager_now, "empty-calib refrozen plan vs current eager");
    assert_bitwise(&plan_v1.run(&x).unwrap(), &y_v1, "old plan after swap_value");
    assert_ne!(y_v1.as_slice(), y_v2.as_slice(), "swap_value changed nothing?");
    // The refrozen plan still enforces its frozen geometry.
    assert!(plan_v2.run(&Tensor::zeros(&[1, 48, 2])).is_err());
}

/// Batch-of-1 vs batch-of-N: stacking N windows into one batch must give
/// each window the same forecast it gets alone. This holds only for
/// models without cross-batch data dependence — TS3Net needs `t_f`
/// pinned (its dominant-period estimate averages FFT amplitudes over the
/// whole batch), and TimesNet / Autoformer-family models are excluded
/// because their period/lag selection is legitimately batch-global.
#[test]
fn batch_composition_sweep_for_batch_independent_models() {
    let (cfg, mut ts3) = cfgs();
    ts3.t_f = Some(8); // pin Eq. 2's data-dependent period selection
    for name in ["TS3Net", "DLinear", "LightTS"] {
        let model: Rc<dyn ForecastModel> = Rc::from(build_forecaster(name, &cfg, &ts3, 11));
        let n = 6;
        let stacked = batch(n, 24, 2, 2);
        let plan = CompiledPlan::freeze(model, &stacked).expect("freeze");
        let y_stacked = plan.run(&stacked).unwrap();
        for i in 0..n {
            let xi = stacked.narrow(0, i, 1);
            let yi = plan.run(&xi).unwrap();
            assert_bitwise(
                &yi,
                &y_stacked.narrow(0, i, 1),
                &format!("{name}: window {i} alone vs in batch"),
            );
        }
    }
}
