use std::fmt;

/// Errors produced by fallible tensor operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TensorError {
    /// The provided data length does not match the product of the shape.
    LengthMismatch { expected: usize, actual: usize },
    /// Two shapes that must agree (exactly or by broadcasting) do not.
    ShapeMismatch { lhs: Vec<usize>, rhs: Vec<usize>, op: &'static str },
    /// A requested axis is out of range for the tensor rank.
    AxisOutOfRange { axis: usize, rank: usize },
    /// A slice/narrow range falls outside the tensor bounds.
    IndexOutOfRange { index: usize, len: usize },
    /// An operation-specific invariant was violated.
    Invalid(String),
}

impl fmt::Display for TensorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TensorError::LengthMismatch { expected, actual } => write!(
                f,
                "data length {actual} does not match shape product {expected}"
            ),
            TensorError::ShapeMismatch { lhs, rhs, op } => {
                write!(f, "shape mismatch in `{op}`: {lhs:?} vs {rhs:?}")
            }
            TensorError::AxisOutOfRange { axis, rank } => {
                write!(f, "axis {axis} out of range for rank-{rank} tensor")
            }
            TensorError::IndexOutOfRange { index, len } => {
                write!(f, "index {index} out of range for length {len}")
            }
            TensorError::Invalid(msg) => write!(f, "{msg}"),
        }
    }
}

impl std::error::Error for TensorError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_descriptive() {
        let e = TensorError::LengthMismatch { expected: 6, actual: 5 };
        assert!(e.to_string().contains("5"));
        assert!(e.to_string().contains("6"));
        let e = TensorError::ShapeMismatch { lhs: vec![2, 3], rhs: vec![4], op: "add" };
        assert!(e.to_string().contains("add"));
        let e = TensorError::AxisOutOfRange { axis: 3, rank: 2 };
        assert!(e.to_string().contains("axis 3"));
        let e = TensorError::IndexOutOfRange { index: 9, len: 4 };
        assert!(e.to_string().contains("9"));
        let e = TensorError::Invalid("bad".into());
        assert_eq!(e.to_string(), "bad");
    }
}
