//! Shape manipulation: reshape, narrow/slice, concat, stack, pad, repeat,
//! flip, and axis selection.

use crate::shape::{check_axis, numel};
use crate::{Result, Tensor, TensorError};

impl Tensor {
    /// Reshape without changing element count.
    pub fn try_reshape(&self, shape: &[usize]) -> Result<Tensor> {
        let expected = numel(shape);
        if expected != self.numel() {
            return Err(TensorError::LengthMismatch { expected, actual: self.numel() });
        }
        Ok(Tensor { data: self.data.clone(), shape: shape.to_vec() })
    }

    /// Panicking wrapper over [`Tensor::try_reshape`].
    pub fn reshape(&self, shape: &[usize]) -> Tensor {
        // ts3-lint: allow(no-unwrap-in-lib) documented panicking convenience wrapper; the bounds contract is this method's # Panics section
        self.try_reshape(shape).expect("reshape: element count mismatch")
    }

    /// Flatten to 1-D.
    pub fn flatten(&self) -> Tensor {
        Tensor { data: self.data.clone(), shape: vec![self.numel()] }
    }

    /// Insert a length-1 axis at `axis`.
    pub fn unsqueeze(&self, axis: usize) -> Tensor {
        assert!(axis <= self.rank(), "unsqueeze: axis {axis} > rank {}", self.rank());
        let mut shape = self.shape.clone();
        shape.insert(axis, 1);
        Tensor { data: self.data.clone(), shape }
    }

    /// Remove a length-1 axis at `axis`.
    ///
    /// # Panics
    /// Panics if the axis length is not 1.
    pub fn squeeze(&self, axis: usize) -> Tensor {
        assert!(axis < self.rank(), "squeeze: axis out of range");
        assert_eq!(self.shape[axis], 1, "squeeze: axis {axis} has length {}", self.shape[axis]);
        let mut shape = self.shape.clone();
        shape.remove(axis);
        Tensor { data: self.data.clone(), shape }
    }

    /// Take the sub-tensor `[start, start+len)` along `axis` (like
    /// `torch.narrow`), materialising a contiguous copy.
    pub fn try_narrow(&self, axis: usize, start: usize, len: usize) -> Result<Tensor> {
        check_axis(axis, self.rank())?;
        if start + len > self.shape[axis] {
            return Err(TensorError::IndexOutOfRange { index: start + len, len: self.shape[axis] });
        }
        let outer: usize = self.shape[..axis].iter().product();
        let n = self.shape[axis];
        let inner: usize = self.shape[axis + 1..].iter().product();
        let mut data = Vec::with_capacity(outer * len * inner);
        for o in 0..outer {
            let base = (o * n + start) * inner;
            data.extend_from_slice(&self.data[base..base + len * inner]);
        }
        let mut shape = self.shape.clone();
        shape[axis] = len;
        Ok(Tensor { data, shape })
    }

    /// Panicking wrapper over [`Tensor::try_narrow`].
    pub fn narrow(&self, axis: usize, start: usize, len: usize) -> Tensor {
        // ts3-lint: allow(no-unwrap-in-lib) documented panicking convenience wrapper; the bounds contract is this method's # Panics section
        self.try_narrow(axis, start, len).expect("narrow: range out of bounds")
    }

    /// Select a single index along `axis`, removing the axis.
    pub fn index_axis(&self, axis: usize, index: usize) -> Tensor {
        self.narrow(axis, index, 1).squeeze(axis)
    }

    /// Gather a list of indices along `axis` (duplicates allowed).
    pub fn select(&self, axis: usize, indices: &[usize]) -> Tensor {
        assert!(axis < self.rank(), "select: axis out of range");
        let outer: usize = self.shape[..axis].iter().product();
        let n = self.shape[axis];
        let inner: usize = self.shape[axis + 1..].iter().product();
        let mut data = Vec::with_capacity(outer * indices.len() * inner);
        for o in 0..outer {
            for &idx in indices {
                assert!(idx < n, "select: index {idx} out of range for axis length {n}");
                let base = (o * n + idx) * inner;
                data.extend_from_slice(&self.data[base..base + inner]);
            }
        }
        let mut shape = self.shape.clone();
        shape[axis] = indices.len();
        Tensor { data, shape }
    }

    /// Concatenate tensors along an existing axis.
    pub fn try_concat(tensors: &[&Tensor], axis: usize) -> Result<Tensor> {
        if tensors.is_empty() {
            return Err(TensorError::Invalid("concat: empty tensor list".into()));
        }
        let rank = tensors[0].rank();
        check_axis(axis, rank)?;
        for t in tensors {
            if t.rank() != rank {
                return Err(TensorError::Invalid("concat: rank mismatch".into()));
            }
            for ax in 0..rank {
                if ax != axis && t.shape[ax] != tensors[0].shape[ax] {
                    return Err(TensorError::ShapeMismatch {
                        lhs: tensors[0].shape.clone(),
                        rhs: t.shape.clone(),
                        op: "concat",
                    });
                }
            }
        }
        let outer: usize = tensors[0].shape[..axis].iter().product();
        let inner: usize = tensors[0].shape[axis + 1..].iter().product();
        let total_axis: usize = tensors.iter().map(|t| t.shape[axis]).sum();
        let mut data = Vec::with_capacity(outer * total_axis * inner);
        for o in 0..outer {
            for t in tensors {
                let n = t.shape[axis];
                let base = o * n * inner;
                data.extend_from_slice(&t.data[base..base + n * inner]);
            }
        }
        let mut shape = tensors[0].shape.clone();
        shape[axis] = total_axis;
        Ok(Tensor { data, shape })
    }

    /// Panicking wrapper over [`Tensor::try_concat`].
    pub fn concat(tensors: &[&Tensor], axis: usize) -> Tensor {
        // ts3-lint: allow(no-unwrap-in-lib) documented panicking convenience wrapper; the bounds contract is this method's # Panics section
        Self::try_concat(tensors, axis).expect("concat: incompatible inputs")
    }

    /// Stack tensors of identical shape along a **new** leading-or-interior
    /// axis.
    pub fn stack(tensors: &[&Tensor], axis: usize) -> Tensor {
        assert!(!tensors.is_empty(), "stack: empty tensor list");
        let unsqueezed: Vec<Tensor> = tensors.iter().map(|t| t.unsqueeze(axis)).collect();
        let refs: Vec<&Tensor> = unsqueezed.iter().collect();
        Self::concat(&refs, axis)
    }

    /// Zero-pad `axis` with `before` leading and `after` trailing slots.
    pub fn pad_axis(&self, axis: usize, before: usize, after: usize) -> Tensor {
        self.pad_axis_with(axis, before, after, 0.0)
    }

    /// Pad `axis` with a constant value.
    pub fn pad_axis_with(&self, axis: usize, before: usize, after: usize, value: f32) -> Tensor {
        assert!(axis < self.rank(), "pad_axis: axis out of range");
        let outer: usize = self.shape[..axis].iter().product();
        let n = self.shape[axis];
        let inner: usize = self.shape[axis + 1..].iter().product();
        let new_n = n + before + after;
        let mut data = vec![value; outer * new_n * inner];
        for o in 0..outer {
            let src = o * n * inner;
            let dst = (o * new_n + before) * inner;
            data[dst..dst + n * inner].copy_from_slice(&self.data[src..src + n * inner]);
        }
        let mut shape = self.shape.clone();
        shape[axis] = new_n;
        Tensor { data, shape }
    }

    /// Replicate-pad `axis` (edge values repeated), as used by the paper's
    /// trend decomposition `AvgPool(Padding(X))`.
    pub fn pad_axis_replicate(&self, axis: usize, before: usize, after: usize) -> Tensor {
        assert!(axis < self.rank(), "pad_axis_replicate: axis out of range");
        assert!(self.shape[axis] > 0, "pad_axis_replicate: cannot pad empty axis");
        let first = self.index_axis(axis, 0).unsqueeze(axis);
        let last = self.index_axis(axis, self.shape[axis] - 1).unsqueeze(axis);
        let mut parts: Vec<&Tensor> = Vec::with_capacity(before + after + 1);
        for _ in 0..before {
            parts.push(&first);
        }
        parts.push(self);
        for _ in 0..after {
            parts.push(&last);
        }
        Tensor::concat(&parts, axis)
    }

    /// Repeat the whole tensor `times` along `axis` (tile).
    pub fn repeat_axis(&self, axis: usize, times: usize) -> Tensor {
        assert!(times > 0, "repeat_axis: times must be > 0");
        let copies: Vec<&Tensor> = std::iter::repeat_n(self, times).collect();
        Tensor::concat(&copies, axis)
    }

    /// Reverse element order along `axis`.
    pub fn flip(&self, axis: usize) -> Tensor {
        assert!(axis < self.rank(), "flip: axis out of range");
        let n = self.shape[axis];
        let indices: Vec<usize> = (0..n).rev().collect();
        self.select(axis, &indices)
    }

    /// Split along `axis` into chunks of size `chunk` (last chunk may be
    /// shorter).
    pub fn split_axis(&self, axis: usize, chunk: usize) -> Vec<Tensor> {
        assert!(chunk > 0, "split_axis: chunk must be > 0");
        let n = self.shape[axis];
        let mut out = Vec::new();
        let mut start = 0;
        while start < n {
            let len = chunk.min(n - start);
            out.push(self.narrow(axis, start, len));
            start += len;
        }
        out
    }

    /// Write `src` into `self` at `[start, start+len)` along `axis`.
    pub fn assign_narrow(&mut self, axis: usize, start: usize, src: &Tensor) {
        assert!(axis < self.rank(), "assign_narrow: axis out of range");
        assert_eq!(src.rank(), self.rank(), "assign_narrow: rank mismatch");
        let len = src.shape[axis];
        assert!(start + len <= self.shape[axis], "assign_narrow: range out of bounds");
        for ax in 0..self.rank() {
            if ax != axis {
                assert_eq!(self.shape[ax], src.shape[ax], "assign_narrow: shape mismatch on axis {ax}");
            }
        }
        let outer: usize = self.shape[..axis].iter().product();
        let n = self.shape[axis];
        let inner: usize = self.shape[axis + 1..].iter().product();
        for o in 0..outer {
            let dst = (o * n + start) * inner;
            let sb = o * len * inner;
            self.data[dst..dst + len * inner].copy_from_slice(&src.data[sb..sb + len * inner]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(v: Vec<f32>, s: &[usize]) -> Tensor {
        Tensor::from_vec(v, s)
    }

    #[test]
    fn reshape_roundtrip() {
        let a = Tensor::arange(6);
        let b = a.reshape(&[2, 3]);
        assert_eq!(b.shape(), &[2, 3]);
        assert_eq!(b.flatten().as_slice(), a.as_slice());
        assert!(a.try_reshape(&[4, 2]).is_err());
    }

    #[test]
    fn squeeze_unsqueeze() {
        let a = Tensor::arange(4).unsqueeze(0);
        assert_eq!(a.shape(), &[1, 4]);
        let b = a.unsqueeze(2);
        assert_eq!(b.shape(), &[1, 4, 1]);
        assert_eq!(b.squeeze(2).squeeze(0).shape(), &[4]);
    }

    #[test]
    fn narrow_middle_axis() {
        let a = Tensor::from_vec((0..24).map(|v| v as f32).collect(), &[2, 3, 4]);
        let n = a.narrow(1, 1, 2);
        assert_eq!(n.shape(), &[2, 2, 4]);
        assert_eq!(n.at(&[0, 0, 0]), a.at(&[0, 1, 0]));
        assert_eq!(n.at(&[1, 1, 3]), a.at(&[1, 2, 3]));
        assert!(a.try_narrow(1, 2, 2).is_err());
    }

    #[test]
    fn index_axis_removes_dim() {
        let a = t(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]);
        let row = a.index_axis(0, 1);
        assert_eq!(row.shape(), &[2]);
        assert_eq!(row.as_slice(), &[3.0, 4.0]);
        let col = a.index_axis(1, 0);
        assert_eq!(col.as_slice(), &[1.0, 3.0]);
    }

    #[test]
    fn select_with_duplicates() {
        let a = t(vec![1.0, 2.0, 3.0], &[3]);
        let s = a.select(0, &[2, 0, 2]);
        assert_eq!(s.as_slice(), &[3.0, 1.0, 3.0]);
    }

    #[test]
    fn concat_axis0_and_axis1() {
        let a = t(vec![1.0, 2.0], &[1, 2]);
        let b = t(vec![3.0, 4.0], &[1, 2]);
        let c0 = Tensor::concat(&[&a, &b], 0);
        assert_eq!(c0.shape(), &[2, 2]);
        assert_eq!(c0.as_slice(), &[1.0, 2.0, 3.0, 4.0]);
        let c1 = Tensor::concat(&[&a, &b], 1);
        assert_eq!(c1.shape(), &[1, 4]);
        assert_eq!(c1.as_slice(), &[1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    fn concat_rejects_mismatched() {
        let a = Tensor::ones(&[1, 2]);
        let b = Tensor::ones(&[1, 3]);
        assert!(Tensor::try_concat(&[&a, &b], 0).is_err());
        assert!(Tensor::try_concat(&[], 0).is_err());
    }

    #[test]
    fn stack_creates_new_axis() {
        let a = t(vec![1.0, 2.0], &[2]);
        let b = t(vec![3.0, 4.0], &[2]);
        let s = Tensor::stack(&[&a, &b], 0);
        assert_eq!(s.shape(), &[2, 2]);
        let s1 = Tensor::stack(&[&a, &b], 1);
        assert_eq!(s1.shape(), &[2, 2]);
        assert_eq!(s1.as_slice(), &[1.0, 3.0, 2.0, 4.0]);
    }

    #[test]
    fn pad_zero_and_constant() {
        let a = t(vec![1.0, 2.0], &[2]);
        let p = a.pad_axis(0, 1, 2);
        assert_eq!(p.as_slice(), &[0.0, 1.0, 2.0, 0.0, 0.0]);
        let pc = a.pad_axis_with(0, 0, 1, 9.0);
        assert_eq!(pc.as_slice(), &[1.0, 2.0, 9.0]);
    }

    #[test]
    fn pad_replicate_repeats_edges() {
        let a = t(vec![1.0, 2.0, 3.0], &[3]);
        let p = a.pad_axis_replicate(0, 2, 1);
        assert_eq!(p.as_slice(), &[1.0, 1.0, 1.0, 2.0, 3.0, 3.0]);
    }

    #[test]
    fn pad_2d_time_axis() {
        let a = t(vec![1.0, 10.0, 2.0, 20.0], &[2, 2]); // T=2, C=2
        let p = a.pad_axis_replicate(0, 1, 1);
        assert_eq!(p.shape(), &[4, 2]);
        assert_eq!(p.as_slice(), &[1.0, 10.0, 1.0, 10.0, 2.0, 20.0, 2.0, 20.0]);
    }

    #[test]
    fn repeat_and_flip() {
        let a = t(vec![1.0, 2.0], &[2]);
        assert_eq!(a.repeat_axis(0, 3).as_slice(), &[1.0, 2.0, 1.0, 2.0, 1.0, 2.0]);
        assert_eq!(a.flip(0).as_slice(), &[2.0, 1.0]);
    }

    #[test]
    fn split_axis_covers_all_with_ragged_tail() {
        let a = Tensor::arange(7);
        let parts = a.split_axis(0, 3);
        assert_eq!(parts.len(), 3);
        assert_eq!(parts[0].as_slice(), &[0.0, 1.0, 2.0]);
        assert_eq!(parts[2].as_slice(), &[6.0]);
    }

    #[test]
    fn assign_narrow_writes_block() {
        let mut a = Tensor::zeros(&[3, 2]);
        let src = t(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]);
        a.assign_narrow(0, 1, &src);
        assert_eq!(a.as_slice(), &[0.0, 0.0, 1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    fn narrow_concat_roundtrip() {
        let a = Tensor::from_vec((0..12).map(|v| v as f32).collect(), &[3, 4]);
        let l = a.narrow(1, 0, 2);
        let r = a.narrow(1, 2, 2);
        assert_eq!(Tensor::concat(&[&l, &r], 1), a);
    }
}
