//! Reductions: full-tensor and per-axis sums, means, extrema, variance,
//! plus softmax/log-softmax over the last axis.

use crate::shape::check_axis;
use crate::{Result, Tensor};

impl Tensor {
    /// Sum of all elements (f64 accumulation).
    pub fn sum(&self) -> f32 {
        self.data.iter().map(|&v| v as f64).sum::<f64>() as f32
    }

    /// Mean of all elements (f64 accumulation). Returns 0 for empty tensors.
    pub fn mean(&self) -> f32 {
        if self.data.is_empty() {
            return 0.0;
        }
        (self.data.iter().map(|&v| v as f64).sum::<f64>() / self.data.len() as f64) as f32
    }

    /// Maximum element. Returns `f32::NEG_INFINITY` for empty tensors.
    pub fn max(&self) -> f32 {
        self.data.iter().copied().fold(f32::NEG_INFINITY, f32::max)
    }

    /// Minimum element. Returns `f32::INFINITY` for empty tensors.
    pub fn min(&self) -> f32 {
        self.data.iter().copied().fold(f32::INFINITY, f32::min)
    }

    /// Population variance of all elements.
    pub fn variance(&self) -> f32 {
        if self.data.is_empty() {
            return 0.0;
        }
        let mean = self.mean() as f64;
        let var = self
            .data
            .iter()
            .map(|&v| {
                let d = v as f64 - mean;
                d * d
            })
            .sum::<f64>()
            / self.data.len() as f64;
        var as f32
    }

    /// Population standard deviation of all elements.
    pub fn std(&self) -> f32 {
        self.variance().sqrt()
    }

    /// Index of the maximum element in the flattened tensor.
    pub fn argmax(&self) -> usize {
        self.data
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap_or(std::cmp::Ordering::Equal))
            .map(|(i, _)| i)
            .unwrap_or(0)
    }

    /// Reduce one axis with `f`, starting each lane from `init`.
    ///
    /// The output keeps the same rank with the reduced axis set to 1 when
    /// `keepdim` is true, otherwise the axis is removed.
    pub fn try_reduce_axis(
        &self,
        axis: usize,
        keepdim: bool,
        init: f32,
        f: impl Fn(f32, f32) -> f32,
    ) -> Result<Tensor> {
        check_axis(axis, self.rank())?;
        let outer: usize = self.shape[..axis].iter().product();
        let n = self.shape[axis];
        let inner: usize = self.shape[axis + 1..].iter().product();
        let mut data = vec![init; outer * inner];
        for o in 0..outer {
            for k in 0..n {
                let base = (o * n + k) * inner;
                let out_base = o * inner;
                for i in 0..inner {
                    data[out_base + i] = f(data[out_base + i], self.data[base + i]);
                }
            }
        }
        let mut shape = self.shape.clone();
        if keepdim {
            shape[axis] = 1;
        } else {
            shape.remove(axis);
        }
        Ok(Tensor { data, shape })
    }

    /// Sum over one axis (axis removed).
    pub fn sum_axis(&self, axis: usize) -> Tensor {
        self.try_reduce_axis(axis, false, 0.0, |a, b| a + b)
            // ts3-lint: allow(no-unwrap-in-lib) axis bounds are this method's documented # Panics contract
            .expect("sum_axis: axis out of range")
    }

    /// Sum over one axis, keeping it as a length-1 dim.
    pub fn sum_axis_keepdim(&self, axis: usize) -> Tensor {
        self.try_reduce_axis(axis, true, 0.0, |a, b| a + b)
            // ts3-lint: allow(no-unwrap-in-lib) axis bounds are this method's documented # Panics contract
            .expect("sum_axis_keepdim: axis out of range")
    }

    /// Mean over one axis (axis removed).
    pub fn mean_axis(&self, axis: usize) -> Tensor {
        let n = self.shape[axis] as f32;
        self.sum_axis(axis).div_scalar(n)
    }

    /// Mean over one axis, keeping it as a length-1 dim.
    pub fn mean_axis_keepdim(&self, axis: usize) -> Tensor {
        let n = self.shape[axis] as f32;
        self.sum_axis_keepdim(axis).div_scalar(n)
    }

    /// Maximum over one axis (axis removed).
    pub fn max_axis(&self, axis: usize) -> Tensor {
        self.try_reduce_axis(axis, false, f32::NEG_INFINITY, f32::max)
            // ts3-lint: allow(no-unwrap-in-lib) axis bounds are this method's documented # Panics contract
            .expect("max_axis: axis out of range")
    }

    /// Minimum over one axis (axis removed).
    pub fn min_axis(&self, axis: usize) -> Tensor {
        self.try_reduce_axis(axis, false, f32::INFINITY, f32::min)
            // ts3-lint: allow(no-unwrap-in-lib) axis bounds are this method's documented # Panics contract
            .expect("min_axis: axis out of range")
    }

    /// Population variance over one axis, keeping the dim.
    pub fn var_axis_keepdim(&self, axis: usize) -> Tensor {
        let mean = self.mean_axis_keepdim(axis);
        let centered = self.sub(&mean);
        centered.square().mean_axis_keepdim(axis)
    }

    /// Numerically stable softmax over the **last** axis.
    pub fn softmax_last(&self) -> Tensor {
        // ts3-lint: allow(no-unwrap-in-lib) rank >= 1 is this method's documented # Panics contract
        let cols = *self.shape.last().expect("softmax_last: rank must be >= 1");
        let mut out = self.clone();
        for row in out.data.chunks_mut(cols) {
            let m = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
            let mut sum = 0.0f32;
            for v in row.iter_mut() {
                *v = (*v - m).exp();
                sum += *v;
            }
            for v in row.iter_mut() {
                *v /= sum;
            }
        }
        out
    }

    /// Numerically stable log-softmax over the **last** axis.
    pub fn log_softmax_last(&self) -> Tensor {
        // ts3-lint: allow(no-unwrap-in-lib) rank >= 1 is this method's documented # Panics contract
        let cols = *self.shape.last().expect("log_softmax_last: rank must be >= 1");
        let mut out = self.clone();
        for row in out.data.chunks_mut(cols) {
            let m = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
            let lse = m + row.iter().map(|&v| (v - m).exp()).sum::<f32>().ln();
            for v in row.iter_mut() {
                *v -= lse;
            }
        }
        out
    }

    /// Per-row (last axis) argmax indices.
    pub fn argmax_last(&self) -> Vec<usize> {
        // ts3-lint: allow(no-unwrap-in-lib) rank >= 1 is this method's documented # Panics contract
        let cols = *self.shape.last().expect("argmax_last: rank must be >= 1");
        self.data
            .chunks(cols)
            .map(|row| {
                row.iter()
                    .enumerate()
                    .max_by(|a, b| a.1.partial_cmp(b.1).unwrap_or(std::cmp::Ordering::Equal))
                    .map(|(i, _)| i)
                    .unwrap_or(0)
            })
            .collect()
    }

    /// L2 norm of the whole tensor.
    pub fn norm(&self) -> f32 {
        self.data
            .iter()
            .map(|&v| (v as f64) * (v as f64))
            .sum::<f64>()
            .sqrt() as f32
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(v: Vec<f32>, s: &[usize]) -> Tensor {
        Tensor::from_vec(v, s)
    }

    #[test]
    fn full_reductions() {
        let x = t(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]);
        assert_eq!(x.sum(), 10.0);
        assert_eq!(x.mean(), 2.5);
        assert_eq!(x.max(), 4.0);
        assert_eq!(x.min(), 1.0);
        assert!((x.variance() - 1.25).abs() < 1e-6);
        assert!((x.norm() - 30.0f32.sqrt()).abs() < 1e-5);
    }

    #[test]
    fn sum_axis_rows_and_cols() {
        let x = t(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]);
        assert_eq!(x.sum_axis(0).as_slice(), &[5.0, 7.0, 9.0]);
        assert_eq!(x.sum_axis(1).as_slice(), &[6.0, 15.0]);
        assert_eq!(x.sum_axis_keepdim(1).shape(), &[2, 1]);
    }

    #[test]
    fn mean_axis_matches_manual() {
        let x = t(vec![2.0, 4.0, 6.0, 8.0], &[2, 2]);
        assert_eq!(x.mean_axis(0).as_slice(), &[4.0, 6.0]);
        assert_eq!(x.mean_axis_keepdim(1).as_slice(), &[3.0, 7.0]);
    }

    #[test]
    fn max_min_axis() {
        let x = t(vec![1.0, 9.0, -3.0, 4.0], &[2, 2]);
        assert_eq!(x.max_axis(1).as_slice(), &[9.0, 4.0]);
        assert_eq!(x.min_axis(0).as_slice(), &[-3.0, 4.0]);
    }

    #[test]
    fn reduce_middle_axis_of_3d() {
        let x = Tensor::arange(24); // [0..24)
        let x = Tensor::from_vec(x.into_vec(), &[2, 3, 4]);
        let s = x.sum_axis(1);
        assert_eq!(s.shape(), &[2, 4]);
        // element [0,0] = 0 + 4 + 8 = 12
        assert_eq!(s.at(&[0, 0]), 12.0);
        // element [1,3] = 15 + 19 + 23 = 57
        assert_eq!(s.at(&[1, 3]), 57.0);
    }

    #[test]
    fn var_axis_keepdim() {
        let x = t(vec![1.0, 3.0, 2.0, 2.0], &[2, 2]);
        let v = x.var_axis_keepdim(1);
        assert_eq!(v.shape(), &[2, 1]);
        assert!((v.as_slice()[0] - 1.0).abs() < 1e-6);
        assert!(v.as_slice()[1].abs() < 1e-6);
    }

    #[test]
    fn softmax_rows_sum_to_one() {
        let x = t(vec![1.0, 2.0, 3.0, 1000.0, 1000.0, 1000.0], &[2, 3]);
        let s = x.softmax_last();
        for row in s.as_slice().chunks(3) {
            let sum: f32 = row.iter().sum();
            assert!((sum - 1.0).abs() < 1e-5);
        }
        // Huge identical logits must not produce NaN.
        assert!(s.all_finite());
        assert!((s.at(&[1, 0]) - 1.0 / 3.0).abs() < 1e-5);
    }

    #[test]
    fn log_softmax_consistent_with_softmax() {
        let x = t(vec![0.5, -1.5, 2.0], &[3]);
        let ls = x.log_softmax_last();
        let s = x.softmax_last();
        for (a, b) in ls.as_slice().iter().zip(s.as_slice()) {
            assert!((a.exp() - b).abs() < 1e-5);
        }
    }

    #[test]
    fn argmax_variants() {
        let x = t(vec![1.0, 5.0, 2.0, 9.0, 0.0, 3.0], &[2, 3]);
        assert_eq!(x.argmax(), 3);
        assert_eq!(x.argmax_last(), vec![1, 0]);
    }

    #[test]
    fn reduce_axis_out_of_range_errors() {
        let x = Tensor::ones(&[2, 2]);
        assert!(x.try_reduce_axis(2, false, 0.0, |a, b| a + b).is_err());
    }
}
