//! Elementwise unary and (broadcasting) binary operations.

use crate::shape::{broadcast_shapes, broadcast_strides, numel, strides_for};
use crate::{Result, Tensor};

impl Tensor {
    /// Apply `f` to every element, producing a new tensor.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Tensor {
        Tensor {
            data: self.data.iter().map(|&v| f(v)).collect(),
            shape: self.shape.clone(),
        }
    }

    /// Apply `f` to every element in place.
    pub fn map_inplace(&mut self, f: impl Fn(f32) -> f32) {
        for v in &mut self.data {
            *v = f(*v);
        }
    }

    // ------------------------------------------------------------------
    // Unary ops
    // ------------------------------------------------------------------

    /// Elementwise negation.
    pub fn neg(&self) -> Tensor {
        self.map(|v| -v)
    }

    /// Elementwise absolute value.
    pub fn abs(&self) -> Tensor {
        self.map(f32::abs)
    }

    /// Elementwise square root.
    pub fn sqrt(&self) -> Tensor {
        self.map(f32::sqrt)
    }

    /// Elementwise square.
    pub fn square(&self) -> Tensor {
        self.map(|v| v * v)
    }

    /// Elementwise exponential.
    pub fn exp(&self) -> Tensor {
        self.map(f32::exp)
    }

    /// Elementwise natural logarithm.
    pub fn ln(&self) -> Tensor {
        self.map(f32::ln)
    }

    /// Elementwise sine.
    pub fn sin(&self) -> Tensor {
        self.map(f32::sin)
    }

    /// Elementwise cosine.
    pub fn cos(&self) -> Tensor {
        self.map(f32::cos)
    }

    /// Elementwise hyperbolic tangent.
    pub fn tanh(&self) -> Tensor {
        self.map(f32::tanh)
    }

    /// Elementwise logistic sigmoid.
    pub fn sigmoid(&self) -> Tensor {
        self.map(|v| 1.0 / (1.0 + (-v).exp()))
    }

    /// Elementwise rectified linear unit.
    pub fn relu(&self) -> Tensor {
        self.map(|v| v.max(0.0))
    }

    /// Elementwise GELU (tanh approximation, as used by most DL frameworks).
    pub fn gelu(&self) -> Tensor {
        self.map(gelu_scalar)
    }

    /// Elementwise power with an f32 exponent.
    pub fn powf(&self, e: f32) -> Tensor {
        self.map(|v| v.powf(e))
    }

    /// Elementwise reciprocal.
    pub fn recip(&self) -> Tensor {
        self.map(|v| 1.0 / v)
    }

    /// Clamp all elements into `[lo, hi]`.
    pub fn clamp(&self, lo: f32, hi: f32) -> Tensor {
        self.map(|v| v.clamp(lo, hi))
    }

    // ------------------------------------------------------------------
    // Scalar binary ops
    // ------------------------------------------------------------------

    /// Add a scalar to every element.
    pub fn add_scalar(&self, s: f32) -> Tensor {
        self.map(|v| v + s)
    }

    /// Subtract a scalar from every element.
    pub fn sub_scalar(&self, s: f32) -> Tensor {
        self.map(|v| v - s)
    }

    /// Multiply every element by a scalar.
    pub fn mul_scalar(&self, s: f32) -> Tensor {
        self.map(|v| v * s)
    }

    /// Divide every element by a scalar.
    pub fn div_scalar(&self, s: f32) -> Tensor {
        self.map(|v| v / s)
    }

    // ------------------------------------------------------------------
    // Broadcasting binary ops
    // ------------------------------------------------------------------

    /// Broadcasting elementwise addition.
    pub fn try_add(&self, rhs: &Tensor) -> Result<Tensor> {
        self.zip_broadcast(rhs, "add", |a, b| a + b)
    }

    /// Broadcasting elementwise subtraction.
    pub fn try_sub(&self, rhs: &Tensor) -> Result<Tensor> {
        self.zip_broadcast(rhs, "sub", |a, b| a - b)
    }

    /// Broadcasting elementwise multiplication.
    pub fn try_mul(&self, rhs: &Tensor) -> Result<Tensor> {
        self.zip_broadcast(rhs, "mul", |a, b| a * b)
    }

    /// Broadcasting elementwise division.
    pub fn try_div(&self, rhs: &Tensor) -> Result<Tensor> {
        self.zip_broadcast(rhs, "div", |a, b| a / b)
    }

    /// Panicking wrapper over [`Tensor::try_add`].
    pub fn add(&self, rhs: &Tensor) -> Tensor {
        // ts3-lint: allow(no-unwrap-in-lib) documented panicking convenience wrapper; the shape contract is this method's # Panics section
        self.try_add(rhs).expect("add: incompatible shapes")
    }

    /// Panicking wrapper over [`Tensor::try_sub`].
    pub fn sub(&self, rhs: &Tensor) -> Tensor {
        // ts3-lint: allow(no-unwrap-in-lib) documented panicking convenience wrapper; the shape contract is this method's # Panics section
        self.try_sub(rhs).expect("sub: incompatible shapes")
    }

    /// Panicking wrapper over [`Tensor::try_mul`].
    pub fn mul(&self, rhs: &Tensor) -> Tensor {
        // ts3-lint: allow(no-unwrap-in-lib) documented panicking convenience wrapper; the shape contract is this method's # Panics section
        self.try_mul(rhs).expect("mul: incompatible shapes")
    }

    /// Panicking wrapper over [`Tensor::try_div`].
    pub fn div(&self, rhs: &Tensor) -> Tensor {
        // ts3-lint: allow(no-unwrap-in-lib) documented panicking convenience wrapper; the shape contract is this method's # Panics section
        self.try_div(rhs).expect("div: incompatible shapes")
    }

    /// Broadcasting elementwise maximum.
    pub fn maximum(&self, rhs: &Tensor) -> Tensor {
        // ts3-lint: allow(no-unwrap-in-lib) documented panicking convenience wrapper; the shape contract is this method's # Panics section
        self.zip_broadcast(rhs, "maximum", f32::max).expect("maximum: incompatible shapes")
    }

    /// Broadcasting elementwise minimum.
    pub fn minimum(&self, rhs: &Tensor) -> Tensor {
        // ts3-lint: allow(no-unwrap-in-lib) documented panicking convenience wrapper; the shape contract is this method's # Panics section
        self.zip_broadcast(rhs, "minimum", f32::min).expect("minimum: incompatible shapes")
    }

    /// Combine two tensors elementwise under broadcasting with `f`.
    pub fn zip_broadcast(
        &self,
        rhs: &Tensor,
        op: &'static str,
        f: impl Fn(f32, f32) -> f32,
    ) -> Result<Tensor> {
        // Fast path: identical shapes need no index arithmetic at all.
        if self.shape == rhs.shape {
            let data = self
                .data
                .iter()
                .zip(&rhs.data)
                .map(|(&a, &b)| f(a, b))
                .collect();
            return Ok(Tensor { data, shape: self.shape.clone() });
        }
        let out_shape = broadcast_shapes(&self.shape, &rhs.shape, op)?;
        let n = numel(&out_shape);
        let ls = broadcast_strides(&self.shape, &out_shape);
        let rs = broadcast_strides(&rhs.shape, &out_shape);
        let out_strides = strides_for(&out_shape);
        let mut data = Vec::with_capacity(n);
        let rank = out_shape.len();
        let mut coords = vec![0usize; rank];
        let mut li = 0usize;
        let mut ri = 0usize;
        for _ in 0..n {
            data.push(f(self.data[li], rhs.data[ri]));
            // Increment coords odometer-style, updating li/ri incrementally.
            for ax in (0..rank).rev() {
                coords[ax] += 1;
                li += ls[ax];
                ri += rs[ax];
                if coords[ax] < out_shape[ax] {
                    break;
                }
                coords[ax] = 0;
                li -= ls[ax] * out_shape[ax];
                ri -= rs[ax] * out_shape[ax];
            }
        }
        debug_assert_eq!(data.len(), numel(&out_shape));
        let _ = out_strides;
        Ok(Tensor { data, shape: out_shape })
    }

    /// In-place `self += rhs` for identically shaped tensors (hot path for
    /// gradient accumulation).
    ///
    /// # Panics
    /// Panics on shape mismatch.
    pub fn add_assign(&mut self, rhs: &Tensor) {
        assert_eq!(self.shape, rhs.shape, "add_assign: shape mismatch");
        for (a, b) in self.data.iter_mut().zip(&rhs.data) {
            *a += b;
        }
    }

    /// In-place `self += alpha * rhs` (axpy) for identically shaped tensors.
    pub fn axpy(&mut self, alpha: f32, rhs: &Tensor) {
        assert_eq!(self.shape, rhs.shape, "axpy: shape mismatch");
        for (a, b) in self.data.iter_mut().zip(&rhs.data) {
            *a += alpha * b;
        }
    }
}

/// GELU activation on a single value (tanh approximation).
pub(crate) fn gelu_scalar(v: f32) -> f32 {
    const SQRT_2_OVER_PI: f32 = 0.797_884_6;
    0.5 * v * (1.0 + (SQRT_2_OVER_PI * (v + 0.044_715 * v * v * v)).tanh())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(v: Vec<f32>, s: &[usize]) -> Tensor {
        Tensor::from_vec(v, s)
    }

    #[test]
    fn unary_ops_basic() {
        let x = t(vec![-1.0, 0.0, 4.0], &[3]);
        assert_eq!(x.neg().as_slice(), &[1.0, 0.0, -4.0]);
        assert_eq!(x.abs().as_slice(), &[1.0, 0.0, 4.0]);
        assert_eq!(x.relu().as_slice(), &[0.0, 0.0, 4.0]);
        assert_eq!(x.square().as_slice(), &[1.0, 0.0, 16.0]);
        assert!((x.sqrt().as_slice()[2] - 2.0).abs() < 1e-6);
    }

    #[test]
    fn sigmoid_symmetry() {
        let x = t(vec![-2.0, 0.0, 2.0], &[3]);
        let s = x.sigmoid();
        assert!((s.as_slice()[1] - 0.5).abs() < 1e-6);
        assert!((s.as_slice()[0] + s.as_slice()[2] - 1.0).abs() < 1e-5);
    }

    #[test]
    fn gelu_limits() {
        // gelu(x) -> x for large x, -> 0 for very negative x, = 0 at 0.
        let x = t(vec![-10.0, 0.0, 10.0], &[3]);
        let g = x.gelu();
        assert!(g.as_slice()[0].abs() < 1e-3);
        assert_eq!(g.as_slice()[1], 0.0);
        assert!((g.as_slice()[2] - 10.0).abs() < 1e-3);
    }

    #[test]
    fn scalar_ops() {
        let x = t(vec![1.0, 2.0], &[2]);
        assert_eq!(x.add_scalar(1.0).as_slice(), &[2.0, 3.0]);
        assert_eq!(x.sub_scalar(1.0).as_slice(), &[0.0, 1.0]);
        assert_eq!(x.mul_scalar(3.0).as_slice(), &[3.0, 6.0]);
        assert_eq!(x.div_scalar(2.0).as_slice(), &[0.5, 1.0]);
    }

    #[test]
    fn add_same_shape() {
        let a = t(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]);
        let b = t(vec![10.0, 20.0, 30.0, 40.0], &[2, 2]);
        assert_eq!(a.add(&b).as_slice(), &[11.0, 22.0, 33.0, 44.0]);
    }

    #[test]
    fn broadcast_row_vector() {
        let a = t(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]);
        let row = t(vec![10.0, 20.0, 30.0], &[3]);
        let c = a.add(&row);
        assert_eq!(c.shape(), &[2, 3]);
        assert_eq!(c.as_slice(), &[11.0, 22.0, 33.0, 14.0, 25.0, 36.0]);
    }

    #[test]
    fn broadcast_column_vector() {
        let a = t(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]);
        let col = t(vec![100.0, 200.0], &[2, 1]);
        let c = a.add(&col);
        assert_eq!(c.as_slice(), &[101.0, 102.0, 103.0, 204.0, 205.0, 206.0]);
    }

    #[test]
    fn broadcast_scalar_tensor() {
        let a = t(vec![1.0, 2.0], &[2]);
        let s = Tensor::scalar(5.0);
        assert_eq!(a.mul(&s).as_slice(), &[5.0, 10.0]);
        assert_eq!(s.sub(&a).as_slice(), &[4.0, 3.0]);
    }

    #[test]
    fn broadcast_3d() {
        let a = Tensor::ones(&[2, 1, 3]);
        let b = t(vec![1.0, 2.0], &[2, 1, 1]);
        let c = a.mul(&b);
        assert_eq!(c.shape(), &[2, 1, 3]);
        assert_eq!(c.as_slice(), &[1.0, 1.0, 1.0, 2.0, 2.0, 2.0]);
    }

    #[test]
    fn incompatible_shapes_error() {
        let a = Tensor::ones(&[2, 3]);
        let b = Tensor::ones(&[4]);
        assert!(a.try_add(&b).is_err());
    }

    #[test]
    fn maximum_minimum() {
        let a = t(vec![1.0, 5.0], &[2]);
        let b = t(vec![3.0, 2.0], &[2]);
        assert_eq!(a.maximum(&b).as_slice(), &[3.0, 5.0]);
        assert_eq!(a.minimum(&b).as_slice(), &[1.0, 2.0]);
    }

    #[test]
    fn add_assign_and_axpy() {
        let mut a = t(vec![1.0, 2.0], &[2]);
        let b = t(vec![10.0, 20.0], &[2]);
        a.add_assign(&b);
        assert_eq!(a.as_slice(), &[11.0, 22.0]);
        a.axpy(0.5, &b);
        assert_eq!(a.as_slice(), &[16.0, 32.0]);
    }

    #[test]
    fn clamp_bounds() {
        let x = t(vec![-5.0, 0.5, 5.0], &[3]);
        assert_eq!(x.clamp(-1.0, 1.0).as_slice(), &[-1.0, 0.5, 1.0]);
    }
}
