//! The [`Tensor`] type: a contiguous row-major `f32` buffer plus a shape.

use crate::shape::{numel, strides_for, unravel};
use crate::{Result, TensorError};
use std::fmt;

/// Dense, contiguous, row-major `f32` tensor.
///
/// Cloning a tensor deep-copies its buffer; the model sizes in this
/// repository keep buffers small enough that explicit copies are cheaper to
/// reason about than shared views.
#[derive(Clone, PartialEq)]
pub struct Tensor {
    pub(crate) data: Vec<f32>,
    pub(crate) shape: Vec<usize>,
}

impl Tensor {
    // ---------------------------------------------------------------------
    // Constructors
    // ---------------------------------------------------------------------

    /// Build a tensor from a flat `Vec` and a shape, validating the length.
    pub fn try_from_vec(data: Vec<f32>, shape: &[usize]) -> Result<Self> {
        let expected = numel(shape);
        if data.len() != expected {
            return Err(TensorError::LengthMismatch { expected, actual: data.len() });
        }
        Ok(Tensor { data, shape: shape.to_vec() })
    }

    /// Build a tensor from a flat `Vec` and a shape.
    ///
    /// # Panics
    /// Panics if `data.len()` does not equal the shape product.
    pub fn from_vec(data: Vec<f32>, shape: &[usize]) -> Self {
        // ts3-lint: allow(no-unwrap-in-lib) documented panicking convenience wrapper; the length contract is this method's # Panics section
        Self::try_from_vec(data, shape).expect("Tensor::from_vec: length/shape mismatch")
    }

    /// A 0-dimensional (scalar) tensor.
    pub fn scalar(v: f32) -> Self {
        Tensor { data: vec![v], shape: vec![] }
    }

    /// Tensor filled with `v`.
    pub fn full(shape: &[usize], v: f32) -> Self {
        Tensor { data: vec![v; numel(shape)], shape: shape.to_vec() }
    }

    /// Zero-filled tensor.
    pub fn zeros(shape: &[usize]) -> Self {
        Self::full(shape, 0.0)
    }

    /// One-filled tensor.
    pub fn ones(shape: &[usize]) -> Self {
        Self::full(shape, 1.0)
    }

    /// Zero tensor with the same shape as `other`.
    pub fn zeros_like(other: &Tensor) -> Self {
        Self::zeros(other.shape())
    }

    /// Identity matrix of size `n x n`.
    pub fn eye(n: usize) -> Self {
        let mut t = Self::zeros(&[n, n]);
        for i in 0..n {
            t.data[i * n + i] = 1.0;
        }
        t
    }

    /// `[0, 1, ..., n-1]` as a 1-D tensor.
    pub fn arange(n: usize) -> Self {
        Tensor { data: (0..n).map(|i| i as f32).collect(), shape: vec![n] }
    }

    /// `n` evenly spaced points from `start` to `end` inclusive.
    pub fn linspace(start: f32, end: f32, n: usize) -> Self {
        assert!(n >= 1, "linspace needs n >= 1");
        if n == 1 {
            return Tensor::from_vec(vec![start], &[1]);
        }
        let step = (end - start) / (n - 1) as f32;
        Tensor {
            data: (0..n).map(|i| start + step * i as f32).collect(),
            shape: vec![n],
        }
    }

    // ---------------------------------------------------------------------
    // Accessors
    // ---------------------------------------------------------------------

    /// The tensor shape (row-major dimension list).
    pub fn shape(&self) -> &[usize] {
        &self.shape
    }

    /// Number of axes.
    pub fn rank(&self) -> usize {
        self.shape.len()
    }

    /// Total number of elements.
    pub fn numel(&self) -> usize {
        self.data.len()
    }

    /// Size of a single axis.
    ///
    /// # Panics
    /// Panics if `axis >= rank`.
    pub fn dim(&self, axis: usize) -> usize {
        assert!(axis < self.rank(), "dim: axis {axis} out of range for rank {}", self.rank());
        self.shape[axis]
    }

    /// Row-major strides.
    pub fn strides(&self) -> Vec<usize> {
        strides_for(&self.shape)
    }

    /// Borrow the underlying buffer.
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutably borrow the underlying buffer.
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consume the tensor and return its buffer.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Extract the single element of a scalar (or one-element) tensor.
    ///
    /// # Panics
    /// Panics if the tensor holds more than one element.
    pub fn item(&self) -> f32 {
        assert_eq!(self.numel(), 1, "item() requires exactly one element, got {}", self.numel());
        self.data[0]
    }

    /// Element access by multi-dimensional coordinates.
    ///
    /// # Panics
    /// Panics on rank mismatch or out-of-range coordinates.
    pub fn at(&self, coords: &[usize]) -> f32 {
        self.data[self.flat_index(coords)]
    }

    /// Set an element by multi-dimensional coordinates.
    pub fn set(&mut self, coords: &[usize], v: f32) {
        let idx = self.flat_index(coords);
        self.data[idx] = v;
    }

    fn flat_index(&self, coords: &[usize]) -> usize {
        assert_eq!(
            coords.len(),
            self.rank(),
            "coordinate rank {} does not match tensor rank {}",
            coords.len(),
            self.rank()
        );
        let strides = self.strides();
        let mut idx = 0;
        for (i, (&c, &s)) in coords.iter().zip(&strides).enumerate() {
            assert!(c < self.shape[i], "coordinate {c} out of range for axis {i} (len {})", self.shape[i]);
            idx += c * s;
        }
        idx
    }

    /// True if all elements are finite (no NaN / infinities).
    pub fn all_finite(&self) -> bool {
        self.data.iter().all(|v| v.is_finite())
    }

    /// Maximum absolute difference to another tensor of identical shape.
    ///
    /// # Panics
    /// Panics on shape mismatch.
    pub fn max_abs_diff(&self, other: &Tensor) -> f32 {
        assert_eq!(self.shape, other.shape, "max_abs_diff: shape mismatch");
        self.data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0f32, f32::max)
    }

    /// Approximate equality within an absolute tolerance.
    pub fn allclose(&self, other: &Tensor, atol: f32) -> bool {
        self.shape == other.shape && self.max_abs_diff(other) <= atol
    }
}

impl fmt::Debug for Tensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Tensor(shape={:?}", self.shape)?;
        if self.numel() <= 16 {
            write!(f, ", data={:?})", self.data)
        } else {
            let head: Vec<f32> = self.data[..8].to_vec();
            write!(f, ", data[..8]={head:?}, ...)")
        }
    }
}

impl fmt::Display for Tensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.rank() <= 1 {
            return write!(f, "{:?}", self.data);
        }
        // Print as nested rows for rank >= 2 (flattening leading dims).
        // ts3-lint: allow(no-unwrap-in-lib) rank >= 2 is checked just above, so the shape has a last element
        let cols = *self.shape.last().unwrap();
        let rows = self.numel() / cols.max(1);
        writeln!(f, "[")?;
        for r in 0..rows {
            let coords = unravel(r * cols, &self.shape);
            write!(f, "  {:?}: ", &coords[..coords.len() - 1])?;
            let row = &self.data[r * cols..(r + 1) * cols];
            writeln!(f, "{row:?}")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_vec_validates_length() {
        assert!(Tensor::try_from_vec(vec![1.0; 6], &[2, 3]).is_ok());
        assert!(Tensor::try_from_vec(vec![1.0; 5], &[2, 3]).is_err());
    }

    #[test]
    #[should_panic(expected = "length/shape mismatch")]
    fn from_vec_panics_on_mismatch() {
        let _ = Tensor::from_vec(vec![1.0; 5], &[2, 3]);
    }

    #[test]
    fn scalar_roundtrip() {
        let s = Tensor::scalar(3.5);
        assert_eq!(s.rank(), 0);
        assert_eq!(s.item(), 3.5);
    }

    #[test]
    fn eye_is_identity() {
        let i = Tensor::eye(3);
        assert_eq!(i.at(&[0, 0]), 1.0);
        assert_eq!(i.at(&[0, 1]), 0.0);
        assert_eq!(i.at(&[2, 2]), 1.0);
    }

    #[test]
    fn arange_and_linspace() {
        assert_eq!(Tensor::arange(4).as_slice(), &[0.0, 1.0, 2.0, 3.0]);
        let l = Tensor::linspace(0.0, 1.0, 5);
        assert!((l.as_slice()[4] - 1.0).abs() < 1e-6);
        assert!((l.as_slice()[2] - 0.5).abs() < 1e-6);
        assert_eq!(Tensor::linspace(2.0, 9.0, 1).as_slice(), &[2.0]);
    }

    #[test]
    fn at_and_set_use_row_major_order() {
        let mut t = Tensor::from_vec((0..6).map(|v| v as f32).collect(), &[2, 3]);
        assert_eq!(t.at(&[1, 2]), 5.0);
        t.set(&[0, 1], 9.0);
        assert_eq!(t.as_slice()[1], 9.0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn at_panics_out_of_range() {
        let t = Tensor::zeros(&[2, 2]);
        let _ = t.at(&[2, 0]);
    }

    #[test]
    fn allclose_and_max_abs_diff() {
        let a = Tensor::from_vec(vec![1.0, 2.0], &[2]);
        let b = Tensor::from_vec(vec![1.0, 2.5], &[2]);
        assert!((a.max_abs_diff(&b) - 0.5).abs() < 1e-6);
        assert!(a.allclose(&b, 0.6));
        assert!(!a.allclose(&b, 0.4));
    }

    #[test]
    fn all_finite_detects_nan() {
        let mut t = Tensor::ones(&[3]);
        assert!(t.all_finite());
        t.as_mut_slice()[1] = f32::NAN;
        assert!(!t.all_finite());
    }

    #[test]
    fn debug_truncates_large_tensors() {
        let t = Tensor::zeros(&[100]);
        let s = format!("{t:?}");
        assert!(s.contains("..."));
    }

    #[test]
    fn display_rank2() {
        let t = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]);
        let s = format!("{t}");
        assert!(s.contains("[1.0, 2.0]"));
    }
}
