//! Convolution kernels: `im2col`/`col2im` based 2-D convolution, direct
//! 1-D convolution, and the moving-average pooling used by trend
//! decomposition.
//!
//! Layout conventions (matching the usual DL framework conventions):
//! * conv2d input  `[B, C_in, H, W]`
//! * conv2d weight `[C_out, C_in, KH, KW]`
//! * conv1d input  `[B, C_in, L]`
//! * conv1d weight `[C_out, C_in, K]`

use std::cell::RefCell;

use crate::Tensor;

/// Unfold a `[C, H, W]` sample given as a raw slice into the column
/// matrix layout of [`im2col`], writing into `out` (resized to
/// `c*kh*kw * oh*ow`). Every element of `out` is written — interior
/// spans are bulk-copied from the input rows, padding spans are zero
/// filled — so the buffer can be reused across calls without clearing.
/// This is the allocation-free core behind [`im2col`] and the conv2d
/// batch loop (which keeps a thread-local scratch buffer per worker).
#[allow(clippy::too_many_arguments)] // mirrors im2col geometry
pub fn im2col_into(
    src: &[f32],
    c: usize,
    h: usize,
    w: usize,
    kh: usize,
    kw: usize,
    ph: usize,
    pw: usize,
    out: &mut Vec<f32>,
) {
    assert_eq!(src.len(), c * h * w, "im2col_into: input length mismatch");
    let oh = h + 2 * ph + 1 - kh;
    let ow = w + 2 * pw + 1 - kw;
    out.resize(c * kh * kw * oh * ow, 0.0);
    let ocols = oh * ow;
    for ci in 0..c {
        for ki in 0..kh {
            for kj in 0..kw {
                let row = ((ci * kh + ki) * kw + kj) * ocols;
                // Output columns whose input column jj = oj + kj - pw is
                // in range; everything outside is zero padding.
                let lo = pw.saturating_sub(kj).min(ow);
                let hi = (w + pw).saturating_sub(kj).min(ow).max(lo);
                for oi in 0..oh {
                    let dst = &mut out[row + oi * ow..row + (oi + 1) * ow];
                    // Input row index for this output row / kernel row.
                    let ii = oi + ki;
                    if ii < ph || ii >= h + ph {
                        dst.fill(0.0); // zero padding row
                        continue;
                    }
                    let ii = ii - ph;
                    dst[..lo].fill(0.0);
                    if hi > lo {
                        // Input column for output column `lo` is
                        // lo + kj - pw (non-negative whenever the span
                        // is non-empty).
                        let src_lo = (ci * h + ii) * w + (lo + kj - pw);
                        dst[lo..hi].copy_from_slice(&src[src_lo..src_lo + (hi - lo)]);
                    }
                    dst[hi..].fill(0.0);
                }
            }
        }
    }
}

/// Unfold `input` (`[C, H, W]`) into a `[C*kh*kw, oh*ow]` column matrix for
/// a convolution with the given padding and stride 1.
pub fn im2col(input: &Tensor, kh: usize, kw: usize, ph: usize, pw: usize) -> Tensor {
    assert_eq!(input.rank(), 3, "im2col expects [C,H,W]");
    let (c, h, w) = (input.shape()[0], input.shape()[1], input.shape()[2]);
    let oh = h + 2 * ph + 1 - kh;
    let ow = w + 2 * pw + 1 - kw;
    let mut out = Vec::new();
    im2col_into(input.as_slice(), c, h, w, kh, kw, ph, pw, &mut out);
    Tensor::from_vec(out, &[c * kh * kw, oh * ow])
}

/// Fold a `[C*kh*kw, oh*ow]` column matrix back into `[C, H, W]`,
/// **accumulating** overlapping contributions — the adjoint of [`im2col`].
#[allow(clippy::too_many_arguments)] // mirrors im2col geometry
pub fn col2im(
    cols: &Tensor,
    c: usize,
    h: usize,
    w: usize,
    kh: usize,
    kw: usize,
    ph: usize,
    pw: usize,
) -> Tensor {
    let oh = h + 2 * ph + 1 - kh;
    let ow = w + 2 * pw + 1 - kw;
    assert_eq!(cols.shape(), &[c * kh * kw, oh * ow], "col2im: column shape mismatch");
    let src = cols.as_slice();
    let mut out = vec![0.0f32; c * h * w];
    let ocols = oh * ow;
    for ci in 0..c {
        for ki in 0..kh {
            for kj in 0..kw {
                let row = ((ci * kh + ki) * kw + kj) * ocols;
                for oi in 0..oh {
                    let ii = oi + ki;
                    if ii < ph || ii >= h + ph {
                        continue;
                    }
                    let ii = ii - ph;
                    for oj in 0..ow {
                        let jj = oj + kj;
                        if jj < pw || jj >= w + pw {
                            continue;
                        }
                        let jj = jj - pw;
                        out[(ci * h + ii) * w + jj] += src[row + oi * ow + oj];
                    }
                }
            }
        }
    }
    Tensor::from_vec(out, &[c, h, w])
}

/// 2-D convolution (cross-correlation, as in DL frameworks), stride 1.
///
/// * `input`:  `[B, C_in, H, W]`
/// * `weight`: `[C_out, C_in, KH, KW]`
/// * returns `[B, C_out, OH, OW]` with `OH = H + 2*ph + 1 - KH`.
///
/// Batch entries are independent (`im2col` + matmul per sample), so
/// they are partitioned across threads via [`crate::par`]; each sample
/// is computed by the identical serial kernel, keeping the result
/// bit-identical to a serial run.
pub fn conv2d(input: &Tensor, weight: &Tensor, ph: usize, pw: usize) -> Tensor {
    assert_eq!(input.rank(), 4, "conv2d input must be [B,C,H,W]");
    assert_eq!(weight.rank(), 4, "conv2d weight must be [Co,Ci,KH,KW]");
    let (b, cin, h, w) = (
        input.shape()[0],
        input.shape()[1],
        input.shape()[2],
        input.shape()[3],
    );
    let (cout, cin2, kh, kw) = (
        weight.shape()[0],
        weight.shape()[1],
        weight.shape()[2],
        weight.shape()[3],
    );
    assert_eq!(cin, cin2, "conv2d: channel mismatch (input {cin} vs weight {cin2})");
    assert!(h + 2 * ph >= kh && w + 2 * pw >= kw, "conv2d: kernel larger than padded input");
    let oh = h + 2 * ph + 1 - kh;
    let ow = w + 2 * pw + 1 - kw;
    let mut _span = ts3_obs::span("tensor.conv2d");
    if _span.active() {
        let flops = 2 * b * cout * oh * ow * cin * kh * kw;
        _span.field("b", b);
        _span.field("cin", cin);
        _span.field("cout", cout);
        _span.field("kh", kh);
        _span.field("kw", kw);
        _span.field("flops", flops);
        ts3_obs::counter_add("tensor.conv2d.calls", 1);
        ts3_obs::counter_add("tensor.conv2d.flops", flops as u64);
        ts3_obs::counter_add(
            "tensor.conv2d.bytes",
            (4 * (input.numel() + weight.numel() + b * cout * oh * ow)) as u64,
        );
    }
    let wmat = weight.reshape(&[cout, cin * kh * kw]);
    let sample = cout * oh * ow;
    let in_sample = cin * h * w;
    let mut out = vec![0.0f32; b * sample];
    if sample > 0 {
        thread_local! {
            // Per-worker column-matrix scratch, reused across samples
            // and calls (the persistent pool keeps workers alive, so
            // steady-state conv2d does no per-sample allocation).
            static COLS: RefCell<Vec<f32>> = const { RefCell::new(Vec::new()) };
        }
        let src = input.as_slice();
        crate::par::par_rows_mut(&mut out, sample, 1, |b0, block| {
            COLS.with(|cell| {
                let cols = &mut *cell.borrow_mut();
                for (i, ob) in block.chunks_mut(sample).enumerate() {
                    let x = &src[(b0 + i) * in_sample..(b0 + i + 1) * in_sample];
                    im2col_into(x, cin, h, w, kh, kw, ph, pw, cols);
                    crate::linalg::matmul_block(
                        wmat.as_slice(),
                        cols,
                        ob,
                        cout,
                        cin * kh * kw,
                        oh * ow,
                    );
                }
            });
        });
    }
    Tensor::from_vec(out, &[b, cout, oh, ow])
}

/// 1-D convolution (cross-correlation), stride 1.
///
/// * `input`:  `[B, C_in, L]`
/// * `weight`: `[C_out, C_in, K]`
/// * returns `[B, C_out, L + 2*pad + 1 - K]`.
pub fn conv1d(input: &Tensor, weight: &Tensor, pad: usize) -> Tensor {
    assert_eq!(input.rank(), 3, "conv1d input must be [B,C,L]");
    assert_eq!(weight.rank(), 3, "conv1d weight must be [Co,Ci,K]");
    // Reuse the 2-D kernel with H = 1.
    let (b, c, l) = (input.shape()[0], input.shape()[1], input.shape()[2]);
    let (co, ci, k) = (weight.shape()[0], weight.shape()[1], weight.shape()[2]);
    let x4 = input.reshape(&[b, c, 1, l]);
    let w4 = weight.reshape(&[co, ci, 1, k]);
    let y = conv2d(&x4, &w4, 0, pad);
    let ol = y.shape()[3];
    y.reshape(&[b, co, ol])
}

/// Moving-average along `axis` with window `k`, producing the **same
/// length** via replicate padding — this is exactly the paper's
/// `AvgPool(Padding(X))` trend extractor (Eq. 1).
pub fn moving_avg_same(input: &Tensor, axis: usize, k: usize) -> Tensor {
    assert!(k >= 1, "moving_avg_same: window must be >= 1");
    if k == 1 {
        return input.clone();
    }
    let before = (k - 1) / 2;
    let after = k - 1 - before;
    let padded = input.pad_axis_replicate(axis, before, after);
    // Prefix-sum based windowed mean along `axis`.
    let outer: usize = padded.shape()[..axis].iter().product();
    let n = padded.shape()[axis];
    let inner: usize = padded.shape()[axis + 1..].iter().product();
    let out_n = n + 1 - k;
    let mut out = vec![0.0f32; outer * out_n * inner];
    let src = padded.as_slice();
    for o in 0..outer {
        for i in 0..inner {
            let mut acc = 0.0f64;
            for t in 0..k {
                acc += src[(o * n + t) * inner + i] as f64;
            }
            out[o * out_n * inner + i] = (acc / k as f64) as f32;
            for t in 1..out_n {
                acc += src[(o * n + t + k - 1) * inner + i] as f64;
                acc -= src[(o * n + t - 1) * inner + i] as f64;
                out[(o * out_n + t) * inner + i] = (acc / k as f64) as f32;
            }
        }
    }
    let mut shape = input.shape().to_vec();
    shape[axis] = out_n;
    debug_assert_eq!(out_n, input.shape()[axis]);
    Tensor::from_vec(out, &shape)
}

/// Average-pool along `axis` with non-overlapping windows of size `k`
/// (last partial window averaged over its actual length).
pub fn avg_pool_axis(input: &Tensor, axis: usize, k: usize) -> Tensor {
    assert!(k >= 1, "avg_pool_axis: window must be >= 1");
    let outer: usize = input.shape()[..axis].iter().product();
    let n = input.shape()[axis];
    let inner: usize = input.shape()[axis + 1..].iter().product();
    let out_n = n.div_ceil(k);
    let mut out = vec![0.0f32; outer * out_n * inner];
    let src = input.as_slice();
    for o in 0..outer {
        for t_out in 0..out_n {
            let start = t_out * k;
            let len = k.min(n - start);
            for i in 0..inner {
                let mut acc = 0.0f32;
                for t in start..start + len {
                    acc += src[(o * n + t) * inner + i];
                }
                out[(o * out_n + t_out) * inner + i] = acc / len as f32;
            }
        }
    }
    let mut shape = input.shape().to_vec();
    shape[axis] = out_n;
    Tensor::from_vec(out, &shape)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn im2col_identity_kernel_size_one() {
        let x = Tensor::from_vec((0..12).map(|v| v as f32).collect(), &[1, 3, 4]);
        let cols = im2col(&x, 1, 1, 0, 0);
        assert_eq!(cols.shape(), &[1, 12]);
        assert_eq!(cols.as_slice(), x.as_slice());
    }

    #[test]
    fn im2col_into_matches_reference_and_reuses_dirty_buffers() {
        // Sweep geometries (including pathological padding) against a
        // direct per-element reference, reusing one scratch buffer
        // across all calls to prove every element gets written.
        let mut scratch = vec![f32::NAN; 4]; // dirty, wrong-sized
        for (c, h, w, kh, kw, ph, pw) in [
            (1, 1, 1, 1, 1, 0, 0),
            (2, 4, 5, 3, 3, 1, 1),
            (3, 5, 4, 2, 4, 0, 2),
            (1, 6, 3, 5, 1, 2, 0),
            (2, 3, 3, 3, 3, 2, 2),
            (1, 1, 1, 6, 6, 3, 3), // kw > w + pw: all-padding columns
        ] {
            let x = Tensor::from_vec(
                (0..c * h * w).map(|v| ((v * 31 + 7) as f32 * 0.13).sin()).collect(),
                &[c, h, w],
            );
            let want = im2col(&x, kh, kw, ph, pw);
            im2col_into(x.as_slice(), c, h, w, kh, kw, ph, pw, &mut scratch);
            assert_eq!(
                want.as_slice(),
                &scratch[..],
                "c={c} h={h} w={w} kh={kh} kw={kw} ph={ph} pw={pw}"
            );
        }
    }

    #[test]
    fn conv2d_identity() {
        let x = Tensor::from_vec((0..16).map(|v| v as f32).collect(), &[1, 1, 4, 4]);
        let w = Tensor::from_vec(vec![1.0], &[1, 1, 1, 1]);
        let y = conv2d(&x, &w, 0, 0);
        assert_eq!(y.as_slice(), x.as_slice());
    }

    #[test]
    fn conv2d_mean_filter() {
        let x = Tensor::ones(&[1, 1, 3, 3]);
        let w = Tensor::full(&[1, 1, 3, 3], 1.0 / 9.0);
        let y = conv2d(&x, &w, 0, 0);
        assert_eq!(y.shape(), &[1, 1, 1, 1]);
        assert!((y.item() - 1.0).abs() < 1e-6);
    }

    #[test]
    fn conv2d_same_padding_shape() {
        let x = Tensor::ones(&[2, 3, 5, 7]);
        let w = Tensor::ones(&[4, 3, 3, 3]);
        let y = conv2d(&x, &w, 1, 1);
        assert_eq!(y.shape(), &[2, 4, 5, 7]);
        // Interior value: 3 channels * 9 taps = 27.
        assert!((y.at(&[0, 0, 2, 3]) - 27.0).abs() < 1e-5);
        // Corner sees only 4 taps per channel = 12.
        assert!((y.at(&[0, 0, 0, 0]) - 12.0).abs() < 1e-5);
    }

    #[test]
    fn conv2d_manual_3x3_check() {
        // x = [[1,2],[3,4]], kernel = [[1,0],[0,1]] (no padding) -> 1*1+4*1 = 5
        let x = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[1, 1, 2, 2]);
        let w = Tensor::from_vec(vec![1.0, 0.0, 0.0, 1.0], &[1, 1, 2, 2]);
        let y = conv2d(&x, &w, 0, 0);
        assert_eq!(y.item(), 5.0);
    }

    #[test]
    fn conv1d_matches_manual_correlation() {
        // x = [1,2,3,4], k = [1,-1] -> [1*1+2*-1, 2-3, 3-4] = [-1,-1,-1]
        let x = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[1, 1, 4]);
        let w = Tensor::from_vec(vec![1.0, -1.0], &[1, 1, 2]);
        let y = conv1d(&x, &w, 0);
        assert_eq!(y.shape(), &[1, 1, 3]);
        assert_eq!(y.as_slice(), &[-1.0, -1.0, -1.0]);
    }

    #[test]
    fn conv1d_multichannel_sums_channels() {
        let x = Tensor::from_vec(vec![1.0, 2.0, 10.0, 20.0], &[1, 2, 2]);
        let w = Tensor::from_vec(vec![1.0, 1.0], &[1, 2, 1]);
        let y = conv1d(&x, &w, 0);
        assert_eq!(y.as_slice(), &[11.0, 22.0]);
    }

    #[test]
    fn col2im_is_adjoint_of_im2col() {
        // <im2col(x), y> == <x, col2im(y)> for random-ish x, y.
        let (c, h, w, kh, kw, ph, pw) = (2, 4, 5, 3, 3, 1, 1);
        let x = Tensor::from_vec((0..c * h * w).map(|v| (v as f32).sin()).collect(), &[c, h, w]);
        let cols = im2col(&x, kh, kw, ph, pw);
        let y = Tensor::from_vec(
            (0..cols.numel()).map(|v| ((v * 7 + 3) as f32).cos()).collect(),
            cols.shape(),
        );
        let lhs: f32 = cols.as_slice().iter().zip(y.as_slice()).map(|(a, b)| a * b).sum();
        let back = col2im(&y, c, h, w, kh, kw, ph, pw);
        let rhs: f32 = x.as_slice().iter().zip(back.as_slice()).map(|(a, b)| a * b).sum();
        assert!((lhs - rhs).abs() < 1e-2 * lhs.abs().max(1.0), "{lhs} vs {rhs}");
    }

    #[test]
    fn moving_avg_preserves_length_and_constants() {
        let x = Tensor::full(&[10, 2], 3.0);
        let y = moving_avg_same(&x, 0, 5);
        assert_eq!(y.shape(), &[10, 2]);
        for v in y.as_slice() {
            assert!((v - 3.0).abs() < 1e-6);
        }
    }

    #[test]
    fn moving_avg_smooths_ramp_interior() {
        let x = Tensor::arange(9).reshape(&[9, 1]);
        let y = moving_avg_same(&x, 0, 3);
        // Interior of a ramp is unchanged by centered moving average.
        for t in 1..8 {
            assert!((y.at(&[t, 0]) - t as f32).abs() < 1e-5);
        }
        // Edges are pulled toward the replicated edge value.
        assert!(y.at(&[0, 0]) > 0.0);
    }

    #[test]
    fn moving_avg_window_one_is_identity() {
        let x = Tensor::from_vec(vec![5.0, -2.0, 7.0], &[3, 1]);
        assert_eq!(moving_avg_same(&x, 0, 1), x);
    }

    #[test]
    fn avg_pool_axis_basic_and_ragged() {
        let x = Tensor::arange(5).reshape(&[5, 1]);
        let y = avg_pool_axis(&x, 0, 2);
        assert_eq!(y.shape(), &[3, 1]);
        assert_eq!(y.as_slice(), &[0.5, 2.5, 4.0]);
    }

    #[test]
    fn conv2d_parallel_bit_identical_to_serial() {
        // The batch loop is partitioned by `par`; recompute each sample
        // with the single-sample (hence single-block) path and demand
        // bit equality for every forced thread count.
        let (b, cin, h, w, cout, kh, kw, ph, pw) = (5, 3, 6, 7, 4, 3, 3, 1, 1);
        let x = Tensor::from_vec(
            (0..b * cin * h * w).map(|v| ((v * 13 + 1) as f32 * 0.173).sin()).collect(),
            &[b, cin, h, w],
        );
        let wt = Tensor::from_vec(
            (0..cout * cin * kh * kw).map(|v| ((v * 7 + 5) as f32 * 0.291).cos()).collect(),
            &[cout, cin, kh, kw],
        );
        let batched = conv2d(&x, &wt, ph, pw);
        let mut serial = vec![0.0f32; batched.numel()];
        let sample = batched.numel() / b;
        let wmat = wt.reshape(&[cout, cin * kh * kw]);
        for bi in 0..b {
            let cols = im2col(&x.index_axis(0, bi), kh, kw, ph, pw);
            crate::linalg::matmul_block(
                wmat.as_slice(),
                cols.as_slice(),
                &mut serial[bi * sample..(bi + 1) * sample],
                cout,
                cin * kh * kw,
                (h + 2 * ph + 1 - kh) * (w + 2 * pw + 1 - kw),
            );
        }
        for threads in [1, 2, 3, 5, 8] {
            let mut par = vec![0.0f32; b * sample];
            crate::par::par_rows_mut_in(threads, &mut par, sample, &|b0, block| {
                for (i, ob) in block.chunks_mut(sample).enumerate() {
                    let cols = im2col(&x.index_axis(0, b0 + i), kh, kw, ph, pw);
                    crate::linalg::matmul_block(
                        wmat.as_slice(),
                        cols.as_slice(),
                        ob,
                        cout,
                        cin * kh * kw,
                        (h + 2 * ph + 1 - kh) * (w + 2 * pw + 1 - kw),
                    );
                }
            });
            assert_eq!(
                serial.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                par.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                "threads = {threads}"
            );
        }
        assert_eq!(
            serial.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            batched.as_slice().iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
        );
    }

    #[test]
    fn conv2d_batch_independence() {
        let x0 = Tensor::ones(&[1, 1, 3, 3]);
        let x1 = Tensor::full(&[1, 1, 3, 3], 2.0);
        let x = Tensor::concat(&[&x0, &x1], 0);
        let w = Tensor::ones(&[1, 1, 3, 3]);
        let y = conv2d(&x, &w, 1, 1);
        let y0 = conv2d(&x0, &w, 1, 1);
        let y1 = conv2d(&x1, &w, 1, 1);
        assert!(y.index_axis(0, 0).allclose(&y0.index_axis(0, 0), 1e-6));
        assert!(y.index_axis(0, 1).allclose(&y1.index_axis(0, 0), 1e-6));
    }
}
