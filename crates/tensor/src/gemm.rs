//! Cache-blocked, packed matrix-multiply kernel — the workspace's GEMM.
//!
//! The kernel follows the classic three-level blocking recipe (the one
//! BLIS/MiniTensor use): panels of the operands are **packed** into
//! contiguous, tile-ordered scratch so the innermost loop streams
//! unit-stride data, the block sizes [`MC`]×[`KC`]×[`NC`] keep those
//! panels resident in L1/L2, and an [`MR`]×[`NR`] **register tile** of
//! accumulators amortises every load/store of the output over `KC`
//! multiply-adds. Everything is safe Rust; the fixed-size inner loops
//! are shaped so LLVM's autovectoriser turns them into wide SIMD FMAs.
//!
//! ## Bit-identical-to-naive contract
//!
//! Every output element is produced by **exactly the same sequence of
//! f32 operations** as the reference loop
//! [`crate::linalg::matmul_block_naive`]: for fixed `(i, j)`, the
//! products `a[i,p] * b[p,j]` are folded in one at a time in ascending
//! `p` order, starting from the caller's `out[i,j]`, each step a single
//! fused multiply-add (`f32::mul_add`, one rounding per step — the
//! workspace's uniform matmul arithmetic policy, see
//! `matmul_block_naive`). Blocking only changes *when* each element's
//! partial sums happen (`KC` slabs are visited in ascending `pc`, and
//! the register tile spills the exact partial value between slabs),
//! never their order or rounding — so tiled and naive results are
//! bit-for-bit equal, which the `tiled_matmul_bitwise_equals_naive_sweep`
//! test enforces across ragged shapes. This is what lets the tiled
//! kernel slot under the workspace's "bit-identical across thread
//! counts" determinism contract unchanged.
//!
//! ## Strided operand views
//!
//! Operands are described by [`MatRef`] (base offset + row/column
//! stride), so the same packed kernel serves `A@B`, `A@Bᵀ` and `Aᵀ@B`
//! without materialising a transpose: only the pack-time gather
//! pattern changes, the arithmetic (and hence the bits) stays
//! identical. The transposed entry points on [`crate::Tensor`] feed
//! the autograd backward passes directly.
//!
//! Packing scratch lives in a thread-local and is reused across calls;
//! with the persistent worker pool (see [`crate::par`]) this makes the
//! steady-state kernel allocation-free.

use std::cell::RefCell;

/// Register-tile rows: each micro-kernel invocation produces an
/// `MR x NR` block of the output from registers.
pub(crate) const MR: usize = 4;
/// Register-tile columns (two 8-lane SIMD vectors per row).
pub(crate) const NR: usize = 16;
/// Rows of `A` packed per panel (panel size `MC*KC` floats ~ 64 KiB:
/// comfortably L2-resident).
const MC: usize = 64;
/// Shared-dimension slab: `KC*NR` floats of `B` (~16 KiB) stay
/// L1-resident while a micro-panel column is swept.
const KC: usize = 256;
/// Columns of `B` packed per panel (`KC*NC` floats ~ 256 KiB in L2).
const NC: usize = 256;

/// Below this many multiply-adds (or for degenerate tile shapes) the
/// packing overhead outweighs the register-tile win and the strided
/// naive loop is used instead — bit-identical either way, so the
/// crossover is purely a performance choice.
const PACK_THRESHOLD_FLOPS: usize = 4096;

/// A strided read-only matrix view: element `(i, j)` lives at
/// `data[off + i * rs + j * cs]`.
#[derive(Clone, Copy)]
pub(crate) struct MatRef<'a> {
    pub data: &'a [f32],
    pub off: usize,
    pub rs: usize,
    pub cs: usize,
}

impl<'a> MatRef<'a> {
    /// Row-major `rows x cols` view of a dense slice.
    pub(crate) fn dense(data: &'a [f32], cols: usize) -> MatRef<'a> {
        MatRef { data, off: 0, rs: cols, cs: 1 }
    }

    /// Transposed view of a row-major `rows x cols` slice (i.e. the
    /// `cols x rows` matrix, without moving data).
    pub(crate) fn dense_t(data: &'a [f32], cols: usize) -> MatRef<'a> {
        MatRef { data, off: 0, rs: 1, cs: cols }
    }

    /// The same view shifted down by `rows` matrix rows.
    pub(crate) fn shifted(self, rows: usize) -> MatRef<'a> {
        MatRef { off: self.off + rows * self.rs, ..self }
    }

    #[inline(always)]
    fn at(&self, i: usize, j: usize) -> f32 {
        self.data[self.off + i * self.rs + j * self.cs]
    }
}

thread_local! {
    /// Reusable packing scratch: `(A panel, B panel)`.
    static SCRATCH: RefCell<(Vec<f32>, Vec<f32>)> = const { RefCell::new((Vec::new(), Vec::new())) };
}

/// `out += A @ B` for an `m x k` view `a` and `k x n` view `b`, into the
/// row-major `m x n` buffer `out`. The caller pre-zeroes `out` for a
/// plain product (the kernel accumulates, exactly like the naive loop).
pub(crate) fn gemm(a: MatRef, b: MatRef, out: &mut [f32], m: usize, k: usize, n: usize) {
    debug_assert_eq!(out.len(), m * n);
    if m == 0 || n == 0 || k == 0 {
        return;
    }
    if m < MR || n < NR || m * k * n < PACK_THRESHOLD_FLOPS {
        return gemm_naive(a, b, out, m, k, n);
    }
    SCRATCH.with(|cell| {
        let mut scratch = cell.borrow_mut();
        let (apack, bpack) = &mut *scratch;
        for jc in (0..n).step_by(NC) {
            let nc = NC.min(n - jc);
            for pc in (0..k).step_by(KC) {
                let kc = KC.min(k - pc);
                pack_b(b, pc, jc, kc, nc, bpack);
                for ic in (0..m).step_by(MC) {
                    let mc = MC.min(m - ic);
                    pack_a(a, ic, pc, mc, kc, apack);
                    let a_panels = mc.div_ceil(MR);
                    let b_panels = nc.div_ceil(NR);
                    for jr in 0..b_panels {
                        let nr = NR.min(nc - jr * NR);
                        let bp = &bpack[jr * kc * NR..][..kc * NR];
                        for ir in 0..a_panels {
                            let mr = MR.min(mc - ir * MR);
                            let ap = &apack[ir * kc * MR..][..kc * MR];
                            let tile = (ic + ir * MR) * n + jc + jr * NR;
                            if mr == MR && nr == NR {
                                // Runtime dispatch: the AVX2 transcription is
                                // bitwise-equal to the scalar kernel (see
                                // crate::simd), so this is purely a speed choice.
                                if !crate::simd::micro_full_dispatch(kc, ap, bp, &mut out[tile..], n) {
                                    micro_full(kc, ap, bp, &mut out[tile..], n);
                                }
                            } else {
                                micro_edge(kc, ap, bp, &mut out[tile..], n, mr, nr);
                            }
                        }
                    }
                }
            }
        }
    });
}

/// Pack the `mc x kc` panel of `a` at `(ic, pc)` into `MR`-row
/// micro-panels laid out `[p][i]`, zero-padding the ragged final
/// micro-panel (padded lanes are computed but never stored).
fn pack_a(a: MatRef, ic: usize, pc: usize, mc: usize, kc: usize, buf: &mut Vec<f32>) {
    let panels = mc.div_ceil(MR);
    buf.resize(panels * kc * MR, 0.0);
    for ip in 0..panels {
        let rows = MR.min(mc - ip * MR);
        let dst = &mut buf[ip * kc * MR..][..kc * MR];
        if rows == MR && a.cs == 1 {
            // Full panel of contiguous rows: walk `p` once and emit one
            // interleaved MR-group per step (a vectorisable transpose
            // pattern) instead of MR strided scatter sweeps.
            let base = a.off + (ic + ip * MR) * a.rs + pc;
            let r0 = &a.data[base..][..kc];
            let r1 = &a.data[base + a.rs..][..kc];
            let r2 = &a.data[base + 2 * a.rs..][..kc];
            let r3 = &a.data[base + 3 * a.rs..][..kc];
            for (p, grp) in dst.chunks_exact_mut(MR).enumerate().take(kc) {
                grp[0] = r0[p];
                grp[1] = r1[p];
                grp[2] = r2[p];
                grp[3] = r3[p];
            }
            continue;
        }
        for i in 0..rows {
            let base = a.off + (ic + ip * MR + i) * a.rs + pc * a.cs;
            if a.cs == 1 {
                let src = &a.data[base..][..kc];
                for (p, &v) in src.iter().enumerate() {
                    dst[p * MR + i] = v;
                }
            } else {
                for p in 0..kc {
                    dst[p * MR + i] = a.data[base + p * a.cs];
                }
            }
        }
        if rows < MR {
            for p in 0..kc {
                for i in rows..MR {
                    dst[p * MR + i] = 0.0;
                }
            }
        }
    }
}

/// Pack the `kc x nc` panel of `b` at `(pc, jc)` into `NR`-column
/// micro-panels laid out `[p][j]`, zero-padding the ragged final
/// micro-panel.
fn pack_b(b: MatRef, pc: usize, jc: usize, kc: usize, nc: usize, buf: &mut Vec<f32>) {
    let panels = nc.div_ceil(NR);
    buf.resize(panels * kc * NR, 0.0);
    for jp in 0..panels {
        let cols = NR.min(nc - jp * NR);
        let dst = &mut buf[jp * kc * NR..][..kc * NR];
        for p in 0..kc {
            let base = b.off + (pc + p) * b.rs + (jc + jp * NR) * b.cs;
            let drow = &mut dst[p * NR..][..NR];
            if b.cs == 1 {
                drow[..cols].copy_from_slice(&b.data[base..][..cols]);
            } else {
                for (j, v) in drow[..cols].iter_mut().enumerate() {
                    *v = b.data[base + j * b.cs];
                }
            }
            drow[cols..].fill(0.0);
        }
    }
}

/// Full `MR x NR` register-tile micro-kernel: load the tile from `out`,
/// accumulate `kc` rank-1 updates in ascending `p`, store it back.
/// `row_stride` is the row stride of `out` (the full matrix width).
#[inline(always)]
fn micro_full(kc: usize, ap: &[f32], bp: &[f32], out: &mut [f32], row_stride: usize) {
    let mut acc = [[0.0f32; NR]; MR];
    for (i, row) in acc.iter_mut().enumerate() {
        row.copy_from_slice(&out[i * row_stride..][..NR]);
    }
    for (av, bv) in ap.chunks_exact(MR).zip(bp.chunks_exact(NR)).take(kc) {
        for (i, row) in acc.iter_mut().enumerate() {
            let ai = av[i];
            for (j, acc_ij) in row.iter_mut().enumerate() {
                *acc_ij = ai.mul_add(bv[j], *acc_ij);
            }
        }
    }
    for (i, row) in acc.iter().enumerate() {
        out[i * row_stride..][..NR].copy_from_slice(row);
    }
}

/// Ragged-edge micro-kernel: identical arithmetic on a zero-padded
/// `MR x NR` tile, but only the `mr x nr` valid lanes are loaded from
/// and stored to `out` — padded lanes never escape the registers.
fn micro_edge(
    kc: usize,
    ap: &[f32],
    bp: &[f32],
    out: &mut [f32],
    row_stride: usize,
    mr: usize,
    nr: usize,
) {
    let mut acc = [[0.0f32; NR]; MR];
    for (i, row) in acc.iter_mut().enumerate().take(mr) {
        for (j, acc_ij) in row.iter_mut().enumerate().take(nr) {
            *acc_ij = out[i * row_stride + j];
        }
    }
    for (av, bv) in ap.chunks_exact(MR).zip(bp.chunks_exact(NR)).take(kc) {
        for (i, row) in acc.iter_mut().enumerate() {
            let ai = av[i];
            for (j, acc_ij) in row.iter_mut().enumerate() {
                *acc_ij = ai.mul_add(bv[j], *acc_ij);
            }
        }
    }
    for (i, row) in acc.iter().enumerate().take(mr) {
        for (j, acc_ij) in row.iter().enumerate().take(nr) {
            out[i * row_stride + j] = *acc_ij;
        }
    }
}

/// Strided naive product for shapes below the packing crossover. The
/// loop order adapts to the column stride of `b` (axpy when `b` rows
/// are contiguous, dot-product when `b` columns are), but each output
/// element always accumulates its products in ascending `p` order —
/// bit-identical to the packed kernel and to `matmul_block_naive`.
fn gemm_naive(a: MatRef, b: MatRef, out: &mut [f32], m: usize, k: usize, n: usize) {
    if b.cs == 1 {
        for i in 0..m {
            let out_row = &mut out[i * n..(i + 1) * n];
            for p in 0..k {
                let av = a.at(i, p);
                let b_row = &b.data[b.off + p * b.rs..][..n];
                for (o, &bv) in out_row.iter_mut().zip(b_row) {
                    *o = av.mul_add(bv, *o);
                }
            }
        }
    } else if a.cs == 1 && b.rs == 1 {
        // A rows and B columns are both contiguous: dot-product form.
        for i in 0..m {
            let a_row = &a.data[a.off + i * a.rs..][..k];
            let out_row = &mut out[i * n..(i + 1) * n];
            for (j, o) in out_row.iter_mut().enumerate() {
                let b_col = &b.data[b.off + j * b.cs..][..k];
                let mut acc = *o;
                for (&av, &bv) in a_row.iter().zip(b_col) {
                    acc = av.mul_add(bv, acc);
                }
                *o = acc;
            }
        }
    } else {
        for i in 0..m {
            for j in 0..n {
                let mut acc = out[i * n + j];
                for p in 0..k {
                    acc = a.at(i, p).mul_add(b.at(p, j), acc);
                }
                out[i * n + j] = acc;
            }
        }
    }
}

