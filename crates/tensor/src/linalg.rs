//! Linear algebra: 2-D and batched 3-D matrix multiplication (plain and
//! transposed variants), transpose, and general axis permutation.
//!
//! The matmul kernel is the cache-blocked packed GEMM in [`crate::gemm`]
//! (MC×KC×NC blocking, MR×NR register tile, thread-local packing
//! scratch); the historical unblocked loop survives as
//! [`matmul_block_naive`] and serves as the bitwise reference the tiled
//! kernel is tested against. Large products split their output rows
//! (2-D / shared-rhs) or batch entries (fully batched) across the
//! persistent worker pool via [`crate::par`]; because every row is
//! computed by the identical serial kernel, parallel results are
//! bit-identical to serial ones for any thread count.
//!
//! The transposed entry points [`Tensor::matmul_tb`] (`A @ Bᵀ`) and
//! [`Tensor::matmul_ta`] (`Aᵀ @ B`) feed strided views straight into the
//! packed kernel, so autograd backward passes no longer materialise
//! explicit transposes.

use crate::gemm::{gemm, MatRef};
use crate::shape::strides_for;
use crate::{Result, Tensor, TensorError};

/// Below roughly this many multiply-adds per output block, thread spawn
/// overhead beats the parallel win and the kernels stay serial.
const PAR_GRAIN_FLOPS: usize = 1 << 15;

/// Open the `tensor.matmul` kernel span and bump the flop/byte counters
/// for a `[b,m,k] @ [.,k,n]` product (`b = 1` for the 2-D case,
/// `shared_rhs` when the rhs is a single `[k,n]` block). All work is
/// behind the span's own enabled check, so the disabled path costs one
/// atomic load.
fn matmul_span(b: usize, m: usize, k: usize, n: usize, shared_rhs: bool) -> ts3_obs::Span {
    let mut s = ts3_obs::span("tensor.matmul");
    if s.active() {
        let flops = 2 * b * m * k * n;
        let rhs_elems = if shared_rhs { k * n } else { b * k * n };
        let bytes = 4 * (b * m * k + rhs_elems + b * m * n);
        s.field("b", b);
        s.field("m", m);
        s.field("k", k);
        s.field("n", n);
        s.field("flops", flops);
        ts3_obs::counter_add("tensor.matmul.calls", 1);
        ts3_obs::counter_add("tensor.matmul.flops", flops as u64);
        ts3_obs::counter_add("tensor.matmul.bytes", bytes as u64);
        // Which kernel family (avx2/scalar) served this call: lets
        // serve/stream latency reports attribute shifts to dispatch.
        ts3_obs::counter_add(crate::simd::gemm_dispatch_counter(), 1);
    }
    s
}

/// Multiply an `m x k` row-major block by a `k x n` block into `out`
/// (`m x n`, pre-zeroed by the caller). Delegates to the cache-blocked
/// packed kernel in [`crate::gemm`]; bit-identical to
/// [`matmul_block_naive`] for every shape (enforced by test sweep).
pub(crate) fn matmul_block(lhs: &[f32], rhs: &[f32], out: &mut [f32], m: usize, k: usize, n: usize) {
    gemm(MatRef::dense(lhs, k), MatRef::dense(rhs, n), out, m, k, n);
}

/// Unblocked `i-k-j` kernel, kept as the bitwise reference for the
/// tiled kernel's equivalence tests (and exported for old-vs-new
/// comparisons in benches).
///
/// **Arithmetic policy.** Each accumulation step is a single fused
/// multiply-add (`f32::mul_add`: one rounding per step instead of
/// round(mul)-then-round(add)). Every matmul path in the workspace —
/// this reference, the packed kernel in `crate::gemm`, its strided
/// naive fallback, and the transposed entry points — uses the same
/// `mul_add` fold in ascending `p` order per output element, which is
/// what keeps them all bit-identical to each other (and hence serial ==
/// parallel for any thread cap). On targets with hardware FMA (the
/// committed `.cargo/config.toml` builds with `target-cpu=native`) the
/// fold compiles to one `vfmadd` per step; without hardware FMA,
/// `mul_add` falls back to a correctly-rounded softfloat routine —
/// results stay identical, only speed differs.
///
/// Note this loop deliberately has **no** `lhs == 0.0` skip branch (an
/// earlier revision had one): skipping zero multiplicands makes kernel
/// time data-dependent — sparse-ish activations run measurably faster —
/// which skews benchmarks, and it changes results in IEEE edge cases
/// (`0.0 * x` contributes a signed zero or NaN that the skip would
/// drop, e.g. `out = -0.0` stays `-0.0` when `0.0 * 1.0` is skipped but
/// becomes `+0.0` when added). Every product is folded in
/// unconditionally.
pub fn matmul_block_naive(
    lhs: &[f32],
    rhs: &[f32],
    out: &mut [f32],
    m: usize,
    k: usize,
    n: usize,
) {
    for i in 0..m {
        let out_row = &mut out[i * n..(i + 1) * n];
        for p in 0..k {
            let a = lhs[i * k + p];
            let rhs_row = &rhs[p * n..(p + 1) * n];
            for (o, &r) in out_row.iter_mut().zip(rhs_row) {
                *o = a.mul_add(r, *o);
            }
        }
    }
}

/// [`matmul_block`] with the output rows split across threads. Row `i`
/// of `out` is produced by the same serial kernel either way, so the
/// result is bit-identical to the serial call for any thread count.
pub(crate) fn matmul_block_par(lhs: &[f32], rhs: &[f32], out: &mut [f32], m: usize, k: usize, n: usize) {
    matmul_strided_par(MatRef::dense(lhs, k), MatRef::dense(rhs, n), out, m, k, n);
}

/// Row-parallel strided product: splits the output rows of `a @ b`
/// across the worker pool and runs the packed kernel per block. The
/// strided views let the transposed entry points share this path.
fn matmul_strided_par(a: MatRef, b: MatRef, out: &mut [f32], m: usize, k: usize, n: usize) {
    if m == 0 || n == 0 {
        return;
    }
    // Enough rows per thread that each block does ~PAR_GRAIN_FLOPS work.
    let grain = (PAR_GRAIN_FLOPS / (k * n).max(1)).max(1);
    crate::par::par_rows_mut(out, n, grain, |row0, block| {
        let rows = block.len() / n;
        gemm(a.shifted(row0), b, block, rows, k, n);
    });
}

impl Tensor {
    /// Matrix multiplication.
    ///
    /// Supported rank combinations:
    /// * `[m,k] @ [k,n] -> [m,n]`
    /// * `[b,m,k] @ [k,n] -> [b,m,n]` (shared rhs)
    /// * `[b,m,k] @ [b,k,n] -> [b,m,n]` (batched)
    pub fn try_matmul(&self, rhs: &Tensor) -> Result<Tensor> {
        match (self.rank(), rhs.rank()) {
            (2, 2) => {
                let (m, k) = (self.shape[0], self.shape[1]);
                let (k2, n) = (rhs.shape[0], rhs.shape[1]);
                if k != k2 {
                    return Err(TensorError::ShapeMismatch {
                        lhs: self.shape.clone(),
                        rhs: rhs.shape.clone(),
                        op: "matmul",
                    });
                }
                let _s = matmul_span(1, m, k, n, true);
                let mut out = vec![0.0f32; m * n];
                matmul_block_par(&self.data, &rhs.data, &mut out, m, k, n);
                Ok(Tensor { data: out, shape: vec![m, n] })
            }
            (3, 2) => {
                let (b, m, k) = (self.shape[0], self.shape[1], self.shape[2]);
                let (k2, n) = (rhs.shape[0], rhs.shape[1]);
                if k != k2 {
                    return Err(TensorError::ShapeMismatch {
                        lhs: self.shape.clone(),
                        rhs: rhs.shape.clone(),
                        op: "matmul",
                    });
                }
                let _s = matmul_span(b, m, k, n, true);
                // Shared rhs: `[b,m,k] @ [k,n]` is exactly the 2-D product
                // `[b*m,k] @ [k,n]`, so the row-parallel kernel covers it.
                let mut out = vec![0.0f32; b * m * n];
                matmul_block_par(&self.data, &rhs.data, &mut out, b * m, k, n);
                Ok(Tensor { data: out, shape: vec![b, m, n] })
            }
            (3, 3) => {
                let (b, m, k) = (self.shape[0], self.shape[1], self.shape[2]);
                let (b2, k2, n) = (rhs.shape[0], rhs.shape[1], rhs.shape[2]);
                if k != k2 || b != b2 {
                    return Err(TensorError::ShapeMismatch {
                        lhs: self.shape.clone(),
                        rhs: rhs.shape.clone(),
                        op: "matmul",
                    });
                }
                let _s = matmul_span(b, m, k, n, false);
                let mut out = vec![0.0f32; b * m * n];
                let sample = m * n;
                if sample > 0 {
                    // Batch entries are independent: partition them as
                    // "rows" of width m*n and run the serial kernel per
                    // batch inside each block.
                    let grain = (PAR_GRAIN_FLOPS / (sample * k).max(1)).max(1);
                    crate::par::par_rows_mut(&mut out, sample, grain, |b0, block| {
                        for (i, ob) in block.chunks_mut(sample).enumerate() {
                            let bi = b0 + i;
                            matmul_block(
                                &self.data[bi * m * k..(bi + 1) * m * k],
                                &rhs.data[bi * k * n..(bi + 1) * k * n],
                                ob,
                                m,
                                k,
                                n,
                            );
                        }
                    });
                }
                Ok(Tensor { data: out, shape: vec![b, m, n] })
            }
            _ => Err(TensorError::Invalid(format!(
                "matmul: unsupported rank combination {} @ {}",
                self.rank(),
                rhs.rank()
            ))),
        }
    }

    /// Panicking wrapper over [`Tensor::try_matmul`].
    pub fn matmul(&self, rhs: &Tensor) -> Tensor {
        // ts3-lint: allow(no-unwrap-in-lib) documented panicking convenience wrapper; the shape contract is this method's # Panics section
        self.try_matmul(rhs).expect("matmul: incompatible shapes")
    }

    /// `self @ rhsᵀ` without materialising the transpose.
    ///
    /// Supported rank combinations (mirroring [`Tensor::try_matmul`]):
    /// * `[m,k] @ [n,k]ᵀ -> [m,n]`
    /// * `[b,m,k] @ [n,k]ᵀ -> [b,m,n]` (shared rhs)
    /// * `[b,m,k] @ [b,n,k]ᵀ -> [b,m,n]` (batched)
    ///
    /// Bit-identical to `self.matmul(&rhs.transpose())`: the packed
    /// kernel only changes its pack-time gather pattern, never the
    /// per-element accumulation order.
    pub fn try_matmul_tb(&self, rhs: &Tensor) -> Result<Tensor> {
        match (self.rank(), rhs.rank()) {
            (2, 2) => {
                let (m, k) = (self.shape[0], self.shape[1]);
                let (n, k2) = (rhs.shape[0], rhs.shape[1]);
                if k != k2 {
                    return Err(TensorError::ShapeMismatch {
                        lhs: self.shape.clone(),
                        rhs: rhs.shape.clone(),
                        op: "matmul_tb",
                    });
                }
                let _s = matmul_span(1, m, k, n, true);
                let mut out = vec![0.0f32; m * n];
                matmul_strided_par(
                    MatRef::dense(&self.data, k),
                    MatRef::dense_t(&rhs.data, k),
                    &mut out,
                    m,
                    k,
                    n,
                );
                Ok(Tensor { data: out, shape: vec![m, n] })
            }
            (3, 2) => {
                let (b, m, k) = (self.shape[0], self.shape[1], self.shape[2]);
                let (n, k2) = (rhs.shape[0], rhs.shape[1]);
                if k != k2 {
                    return Err(TensorError::ShapeMismatch {
                        lhs: self.shape.clone(),
                        rhs: rhs.shape.clone(),
                        op: "matmul_tb",
                    });
                }
                let _s = matmul_span(b, m, k, n, true);
                // Shared rhs flattens exactly like try_matmul's (3,2) arm.
                let mut out = vec![0.0f32; b * m * n];
                matmul_strided_par(
                    MatRef::dense(&self.data, k),
                    MatRef::dense_t(&rhs.data, k),
                    &mut out,
                    b * m,
                    k,
                    n,
                );
                Ok(Tensor { data: out, shape: vec![b, m, n] })
            }
            (3, 3) => {
                let (b, m, k) = (self.shape[0], self.shape[1], self.shape[2]);
                let (b2, n, k2) = (rhs.shape[0], rhs.shape[1], rhs.shape[2]);
                if k != k2 || b != b2 {
                    return Err(TensorError::ShapeMismatch {
                        lhs: self.shape.clone(),
                        rhs: rhs.shape.clone(),
                        op: "matmul_tb",
                    });
                }
                let _s = matmul_span(b, m, k, n, false);
                let mut out = vec![0.0f32; b * m * n];
                let sample = m * n;
                if sample > 0 {
                    let grain = (PAR_GRAIN_FLOPS / (sample * k).max(1)).max(1);
                    crate::par::par_rows_mut(&mut out, sample, grain, |b0, block| {
                        for (i, ob) in block.chunks_mut(sample).enumerate() {
                            let bi = b0 + i;
                            gemm(
                                MatRef::dense(&self.data[bi * m * k..(bi + 1) * m * k], k),
                                MatRef::dense_t(&rhs.data[bi * n * k..(bi + 1) * n * k], k),
                                ob,
                                m,
                                k,
                                n,
                            );
                        }
                    });
                }
                Ok(Tensor { data: out, shape: vec![b, m, n] })
            }
            _ => Err(TensorError::Invalid(format!(
                "matmul_tb: unsupported rank combination {} @ {}",
                self.rank(),
                rhs.rank()
            ))),
        }
    }

    /// Panicking wrapper over [`Tensor::try_matmul_tb`].
    pub fn matmul_tb(&self, rhs: &Tensor) -> Tensor {
        // ts3-lint: allow(no-unwrap-in-lib) documented panicking convenience wrapper; the shape contract is this method's # Panics section
        self.try_matmul_tb(rhs).expect("matmul_tb: incompatible shapes")
    }

    /// `selfᵀ @ rhs` without materialising the transpose.
    ///
    /// Supported rank combinations:
    /// * `[m,k]ᵀ @ [m,n] -> [k,n]`
    /// * `[b,m,k]ᵀ @ [b,m,n] -> [b,k,n]` (batched, per-sample transpose)
    ///
    /// Bit-identical to `self.transpose().matmul(rhs)`.
    pub fn try_matmul_ta(&self, rhs: &Tensor) -> Result<Tensor> {
        match (self.rank(), rhs.rank()) {
            (2, 2) => {
                let (m, k) = (self.shape[0], self.shape[1]);
                let (m2, n) = (rhs.shape[0], rhs.shape[1]);
                if m != m2 {
                    return Err(TensorError::ShapeMismatch {
                        lhs: self.shape.clone(),
                        rhs: rhs.shape.clone(),
                        op: "matmul_ta",
                    });
                }
                // Output is [k, n]; the shared dimension is m.
                let _s = matmul_span(1, k, m, n, true);
                let mut out = vec![0.0f32; k * n];
                matmul_strided_par(
                    MatRef::dense_t(&self.data, k),
                    MatRef::dense(&rhs.data, n),
                    &mut out,
                    k,
                    m,
                    n,
                );
                Ok(Tensor { data: out, shape: vec![k, n] })
            }
            (3, 3) => {
                let (b, m, k) = (self.shape[0], self.shape[1], self.shape[2]);
                let (b2, m2, n) = (rhs.shape[0], rhs.shape[1], rhs.shape[2]);
                if m != m2 || b != b2 {
                    return Err(TensorError::ShapeMismatch {
                        lhs: self.shape.clone(),
                        rhs: rhs.shape.clone(),
                        op: "matmul_ta",
                    });
                }
                let _s = matmul_span(b, k, m, n, false);
                let mut out = vec![0.0f32; b * k * n];
                let sample = k * n;
                if sample > 0 {
                    let grain = (PAR_GRAIN_FLOPS / (sample * m).max(1)).max(1);
                    crate::par::par_rows_mut(&mut out, sample, grain, |b0, block| {
                        for (i, ob) in block.chunks_mut(sample).enumerate() {
                            let bi = b0 + i;
                            gemm(
                                MatRef::dense_t(&self.data[bi * m * k..(bi + 1) * m * k], k),
                                MatRef::dense(&rhs.data[bi * m * n..(bi + 1) * m * n], n),
                                ob,
                                k,
                                m,
                                n,
                            );
                        }
                    });
                }
                Ok(Tensor { data: out, shape: vec![b, k, n] })
            }
            _ => Err(TensorError::Invalid(format!(
                "matmul_ta: unsupported rank combination {} @ {}",
                self.rank(),
                rhs.rank()
            ))),
        }
    }

    /// Panicking wrapper over [`Tensor::try_matmul_ta`].
    pub fn matmul_ta(&self, rhs: &Tensor) -> Tensor {
        // ts3-lint: allow(no-unwrap-in-lib) documented panicking convenience wrapper; the shape contract is this method's # Panics section
        self.try_matmul_ta(rhs).expect("matmul_ta: incompatible shapes")
    }

    /// 2-D transpose. For rank-3 tensors, swaps the last two axes
    /// (batched transpose). Materialises a fresh buffer.
    pub fn transpose(&self) -> Tensor {
        match self.rank() {
            2 => {
                let (m, n) = (self.shape[0], self.shape[1]);
                let mut data = vec![0.0f32; m * n];
                for i in 0..m {
                    for j in 0..n {
                        data[j * m + i] = self.data[i * n + j];
                    }
                }
                Tensor { data, shape: vec![n, m] }
            }
            3 => {
                let (b, m, n) = (self.shape[0], self.shape[1], self.shape[2]);
                let mut data = vec![0.0f32; b * m * n];
                for bi in 0..b {
                    let src = &self.data[bi * m * n..(bi + 1) * m * n];
                    let dst = &mut data[bi * m * n..(bi + 1) * m * n];
                    for i in 0..m {
                        for j in 0..n {
                            dst[j * m + i] = src[i * n + j];
                        }
                    }
                }
                Tensor { data, shape: vec![b, n, m] }
            }
            // ts3-lint: allow(no-unwrap-in-lib) documented # Panics contract: transpose supports rank 2/3 only
            r => panic!("transpose: expected rank 2 or 3 tensor, got rank {r}"),
        }
    }

    /// General axis permutation (like `np.transpose(x, axes)`).
    ///
    /// # Panics
    /// Panics if `axes` is not a permutation of `0..rank`.
    pub fn permute(&self, axes: &[usize]) -> Tensor {
        assert_eq!(axes.len(), self.rank(), "permute: axes length must equal rank");
        let mut seen = vec![false; self.rank()];
        for &a in axes {
            assert!(a < self.rank() && !seen[a], "permute: axes must be a permutation");
            seen[a] = true;
        }
        let out_shape: Vec<usize> = axes.iter().map(|&a| self.shape[a]).collect();
        let in_strides = strides_for(&self.shape);
        // Strides of the output walk, expressed in the input buffer.
        let walk: Vec<usize> = axes.iter().map(|&a| in_strides[a]).collect();
        let n = self.numel();
        let mut data = Vec::with_capacity(n);
        let rank = out_shape.len();
        if rank == 0 {
            return self.clone();
        }
        let mut coords = vec![0usize; rank];
        let mut src = 0usize;
        for _ in 0..n {
            data.push(self.data[src]);
            for ax in (0..rank).rev() {
                coords[ax] += 1;
                src += walk[ax];
                if coords[ax] < out_shape[ax] {
                    break;
                }
                coords[ax] = 0;
                // ts3-lint: allow(fma-policy) usize stride walk, not a float accumulation; mul_add does not apply to integers
                src -= walk[ax] * out_shape[ax];
            }
        }
        Tensor { data, shape: out_shape }
    }

    /// Dot product of two 1-D tensors.
    pub fn dot(&self, rhs: &Tensor) -> f32 {
        assert_eq!(self.rank(), 1, "dot: lhs must be 1-D");
        assert_eq!(self.shape, rhs.shape, "dot: shape mismatch");
        self.data.iter().zip(&rhs.data).map(|(a, b)| a * b).sum()
    }

    /// Outer product of two 1-D tensors: `[m] x [n] -> [m,n]`.
    pub fn outer(&self, rhs: &Tensor) -> Tensor {
        assert_eq!(self.rank(), 1, "outer: lhs must be 1-D");
        assert_eq!(rhs.rank(), 1, "outer: rhs must be 1-D");
        let (m, n) = (self.shape[0], rhs.shape[0]);
        let mut data = Vec::with_capacity(m * n);
        for &a in &self.data {
            for &b in &rhs.data {
                data.push(a * b);
            }
        }
        Tensor { data, shape: vec![m, n] }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(v: Vec<f32>, s: &[usize]) -> Tensor {
        Tensor::from_vec(v, s)
    }

    #[test]
    fn matmul_2x2() {
        let a = t(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]);
        let b = t(vec![5.0, 6.0, 7.0, 8.0], &[2, 2]);
        let c = a.matmul(&b);
        assert_eq!(c.as_slice(), &[19.0, 22.0, 43.0, 50.0]);
    }

    #[test]
    fn matmul_rectangular() {
        let a = t(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]);
        let b = t(vec![1.0, 0.0, 0.0, 1.0, 1.0, 1.0], &[3, 2]);
        let c = a.matmul(&b);
        assert_eq!(c.shape(), &[2, 2]);
        assert_eq!(c.as_slice(), &[4.0, 5.0, 10.0, 11.0]);
    }

    #[test]
    fn matmul_identity_preserves() {
        let a = t(vec![3.0, -1.0, 2.0, 0.5], &[2, 2]);
        assert_eq!(a.matmul(&Tensor::eye(2)).as_slice(), a.as_slice());
    }

    #[test]
    fn matmul_batched_shared_rhs() {
        let a = Tensor::from_vec((0..12).map(|v| v as f32).collect(), &[2, 2, 3]);
        let w = Tensor::eye(3);
        let c = a.matmul(&w);
        assert_eq!(c.shape(), &[2, 2, 3]);
        assert_eq!(c.as_slice(), a.as_slice());
    }

    #[test]
    fn matmul_fully_batched() {
        let a = t(vec![1.0, 2.0, 3.0, 4.0, 1.0, 0.0, 0.0, 1.0], &[2, 2, 2]);
        let b = t(vec![1.0, 0.0, 0.0, 1.0, 2.0, 0.0, 0.0, 2.0], &[2, 2, 2]);
        let c = a.matmul(&b);
        assert_eq!(c.as_slice(), &[1.0, 2.0, 3.0, 4.0, 2.0, 0.0, 0.0, 2.0]);
    }

    #[test]
    fn matmul_shape_mismatch_errors() {
        let a = Tensor::ones(&[2, 3]);
        let b = Tensor::ones(&[2, 3]);
        assert!(a.try_matmul(&b).is_err());
        let c = Tensor::ones(&[2]);
        assert!(a.try_matmul(&c).is_err());
    }

    #[test]
    fn transpose_2d() {
        let a = t(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]);
        let at = a.transpose();
        assert_eq!(at.shape(), &[3, 2]);
        assert_eq!(at.as_slice(), &[1.0, 4.0, 2.0, 5.0, 3.0, 6.0]);
    }

    #[test]
    fn transpose_3d_swaps_last_two() {
        let a = Tensor::from_vec((0..12).map(|v| v as f32).collect(), &[2, 2, 3]);
        let at = a.transpose();
        assert_eq!(at.shape(), &[2, 3, 2]);
        assert_eq!(at.at(&[0, 2, 1]), a.at(&[0, 1, 2]));
        assert_eq!(at.at(&[1, 0, 1]), a.at(&[1, 1, 0]));
    }

    #[test]
    fn transpose_involution() {
        let a = t(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]);
        assert_eq!(a.transpose().transpose(), a);
    }

    #[test]
    fn permute_matches_transpose() {
        let a = t(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]);
        assert_eq!(a.permute(&[1, 0]), a.transpose());
    }

    #[test]
    fn permute_3d() {
        let a = Tensor::from_vec((0..24).map(|v| v as f32).collect(), &[2, 3, 4]);
        let p = a.permute(&[2, 0, 1]);
        assert_eq!(p.shape(), &[4, 2, 3]);
        assert_eq!(p.at(&[1, 0, 2]), a.at(&[0, 2, 1]));
        assert_eq!(p.at(&[3, 1, 0]), a.at(&[1, 0, 3]));
    }

    #[test]
    #[should_panic(expected = "permutation")]
    fn permute_rejects_duplicates() {
        let a = Tensor::ones(&[2, 2]);
        let _ = a.permute(&[0, 0]);
    }

    #[test]
    fn dot_and_outer() {
        let a = t(vec![1.0, 2.0, 3.0], &[3]);
        let b = t(vec![4.0, 5.0, 6.0], &[3]);
        assert_eq!(a.dot(&b), 32.0);
        let o = a.outer(&b);
        assert_eq!(o.shape(), &[3, 3]);
        assert_eq!(o.at(&[2, 0]), 12.0);
    }

    #[test]
    fn parallel_matmul_bit_identical_to_serial() {
        // White-box: run the serial reference kernel, then the same
        // worker forced across several thread counts, and require
        // bit-for-bit equality (not allclose).
        let (m, k, n) = (37, 29, 41);
        let a = Tensor::randn(&[m, k], 1);
        let b = Tensor::randn(&[k, n], 2);
        let mut serial = vec![0.0f32; m * n];
        matmul_block(a.as_slice(), b.as_slice(), &mut serial, m, k, n);
        for threads in [2, 3, 7, 16] {
            let mut par = vec![0.0f32; m * n];
            crate::par::par_rows_mut_in(threads, &mut par, n, &|row0, block| {
                let rows = block.len() / n;
                matmul_block(&a.as_slice()[row0 * k..(row0 + rows) * k], b.as_slice(), block, rows, k, n);
            });
            assert_eq!(
                serial.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                par.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                "threads = {threads}"
            );
        }
        // And the public entry point agrees with the serial kernel.
        let c = a.matmul(&b);
        assert_eq!(c.as_slice(), &serial[..]);
    }

    #[test]
    fn parallel_batched_matmul_bit_identical_to_serial() {
        let (b, m, k, n) = (6, 19, 13, 17);
        let x = Tensor::randn(&[b, m, k], 3);
        let w = Tensor::randn(&[b, k, n], 4);
        let mut serial = vec![0.0f32; b * m * n];
        for bi in 0..b {
            matmul_block(
                &x.as_slice()[bi * m * k..(bi + 1) * m * k],
                &w.as_slice()[bi * k * n..(bi + 1) * k * n],
                &mut serial[bi * m * n..(bi + 1) * m * n],
                m,
                k,
                n,
            );
        }
        let got = x.matmul(&w);
        assert_eq!(
            serial.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            got.as_slice().iter().map(|v| v.to_bits()).collect::<Vec<_>>()
        );
        // Shared-rhs flattening: [b,m,k] @ [k,n] == reshape([b*m,k]) @ [k,n].
        let w2 = Tensor::randn(&[k, n], 5);
        let flat = x.reshape(&[b * m, k]).matmul(&w2);
        assert_eq!(x.matmul(&w2).as_slice(), flat.as_slice());
    }

    fn bits(v: &[f32]) -> Vec<u32> {
        v.iter().map(|x| x.to_bits()).collect()
    }

    #[test]
    fn tiled_matmul_bitwise_equals_naive_sweep() {
        // The determinism contract hinges on the packed kernel producing
        // the exact operation sequence of the naive loop. Sweep ragged
        // shapes around every blocking boundary (MR=4, NR=16, MC=64,
        // KC=256) and require bit-for-bit equality, not allclose.
        let dims_mn = [1usize, 2, 3, 5, 7, 8, 13, 16, 17, 31, 33, 64, 65, 100];
        let dims_k = [1usize, 2, 5, 16, 17, 64, 100, 257];
        let mut seed = 100u64;
        for &m in &dims_mn {
            for &n in &dims_mn {
                for &k in &dims_k {
                    // Keep the sweep fast: skip the huge all-large combos.
                    if m * k * n > 1 << 20 {
                        continue;
                    }
                    seed += 1;
                    let a = Tensor::randn(&[m, k], seed);
                    let b = Tensor::randn(&[k, n], seed + 1_000_000);
                    let mut naive = vec![0.0f32; m * n];
                    matmul_block_naive(a.as_slice(), b.as_slice(), &mut naive, m, k, n);
                    let mut tiled = vec![0.0f32; m * n];
                    matmul_block(a.as_slice(), b.as_slice(), &mut tiled, m, k, n);
                    assert_eq!(bits(&naive), bits(&tiled), "m={m} k={k} n={n}");
                }
            }
        }
    }

    #[test]
    fn tiled_matmul_handles_special_values_like_naive() {
        // Zeros, signed zeros, infinities and NaNs must flow through the
        // packed kernel exactly as through the naive loop (no zero-skip).
        let m = 9;
        let k = 21;
        let n = 19;
        let mut av = Vec::with_capacity(m * k);
        for i in 0..m * k {
            av.push(match i % 7 {
                0 => 0.0,
                1 => -0.0,
                2 => f32::INFINITY,
                3 => f32::NEG_INFINITY,
                4 => f32::NAN,
                _ => (i as f32 * 0.37).sin(),
            });
        }
        let bv: Vec<f32> = (0..k * n)
            .map(|i| match i % 5 {
                0 => 0.0,
                1 => -0.0,
                _ => (i as f32 * 0.61).cos(),
            })
            .collect();
        let mut naive = vec![0.0f32; m * n];
        matmul_block_naive(&av, &bv, &mut naive, m, k, n);
        let mut tiled = vec![0.0f32; m * n];
        matmul_block(&av, &bv, &mut tiled, m, k, n);
        assert_eq!(bits(&naive), bits(&tiled));
    }

    #[test]
    fn matmul_tb_matches_materialized_transpose() {
        for (m, k, n) in [(1, 1, 1), (3, 5, 2), (17, 13, 19), (33, 65, 31), (64, 64, 64)] {
            let a = Tensor::randn(&[m, k], (m * 1000 + n) as u64);
            let b = Tensor::randn(&[n, k], (k * 777 + 5) as u64);
            let via_t = a.matmul(&b.transpose());
            let direct = a.matmul_tb(&b);
            assert_eq!(direct.shape(), &[m, n]);
            assert_eq!(bits(via_t.as_slice()), bits(direct.as_slice()), "m={m} k={k} n={n}");
        }
        // Shared-rhs (3,2) and fully batched (3,3) arms.
        let x = Tensor::randn(&[3, 7, 11], 42);
        let w = Tensor::randn(&[5, 11], 43);
        assert_eq!(
            bits(x.matmul(&w.transpose()).as_slice()),
            bits(x.matmul_tb(&w).as_slice())
        );
        let y = Tensor::randn(&[3, 9, 11], 44);
        assert_eq!(
            bits(x.matmul(&y.transpose()).as_slice()),
            bits(x.matmul_tb(&y).as_slice())
        );
        assert!(x.try_matmul_tb(&Tensor::ones(&[5, 12])).is_err());
    }

    #[test]
    fn matmul_ta_matches_materialized_transpose() {
        for (m, k, n) in [(1, 1, 1), (5, 3, 2), (13, 17, 19), (65, 33, 31), (64, 64, 64)] {
            let a = Tensor::randn(&[m, k], (m * 31 + k) as u64);
            let b = Tensor::randn(&[m, n], (n * 17 + 3) as u64);
            let via_t = a.transpose().matmul(&b);
            let direct = a.matmul_ta(&b);
            assert_eq!(direct.shape(), &[k, n]);
            assert_eq!(bits(via_t.as_slice()), bits(direct.as_slice()), "m={m} k={k} n={n}");
        }
        // Batched arm.
        let x = Tensor::randn(&[4, 7, 5], 45);
        let g = Tensor::randn(&[4, 7, 9], 46);
        assert_eq!(
            bits(x.transpose().matmul(&g).as_slice()),
            bits(x.matmul_ta(&g).as_slice())
        );
        assert!(x.try_matmul_ta(&Tensor::ones(&[4, 8, 9])).is_err());
    }

    #[test]
    fn matmul_associativity_with_identity_chain() {
        let a = t(vec![2.0, 1.0, 0.0, 3.0], &[2, 2]);
        let i = Tensor::eye(2);
        let left = a.matmul(&i).matmul(&a);
        let right = a.matmul(&i.matmul(&a));
        assert!(left.allclose(&right, 1e-5));
    }
}
