//! Linear algebra: 2-D and batched 3-D matrix multiplication, transpose,
//! and general axis permutation.
//!
//! The matmul kernel is a cache-friendly `i-k-j` loop: for each output row
//! it streams across the shared dimension and accumulates scaled rows of
//! `rhs`, which keeps the innermost loop a contiguous fused multiply-add
//! that LLVM auto-vectorises. Large products additionally split their
//! output rows (2-D / shared-rhs) or batch entries (fully batched)
//! across threads via [`crate::par`]; because every row is computed by
//! the identical serial kernel, parallel results are bit-identical to
//! serial ones.

use crate::shape::strides_for;
use crate::{Result, Tensor, TensorError};

/// Below roughly this many multiply-adds per output block, thread spawn
/// overhead beats the parallel win and the kernels stay serial.
const PAR_GRAIN_FLOPS: usize = 1 << 15;

/// Open the `tensor.matmul` kernel span and bump the flop/byte counters
/// for a `[b,m,k] @ [.,k,n]` product (`b = 1` for the 2-D case,
/// `shared_rhs` when the rhs is a single `[k,n]` block). All work is
/// behind the span's own enabled check, so the disabled path costs one
/// atomic load.
fn matmul_span(b: usize, m: usize, k: usize, n: usize, shared_rhs: bool) -> ts3_obs::Span {
    let mut s = ts3_obs::span("tensor.matmul");
    if s.active() {
        let flops = 2 * b * m * k * n;
        let rhs_elems = if shared_rhs { k * n } else { b * k * n };
        let bytes = 4 * (b * m * k + rhs_elems + b * m * n);
        s.field("b", b);
        s.field("m", m);
        s.field("k", k);
        s.field("n", n);
        s.field("flops", flops);
        ts3_obs::counter_add("tensor.matmul.calls", 1);
        ts3_obs::counter_add("tensor.matmul.flops", flops as u64);
        ts3_obs::counter_add("tensor.matmul.bytes", bytes as u64);
    }
    s
}

/// Multiply an `m x k` row-major block by a `k x n` block into `out`
/// (`m x n`, pre-zeroed by the caller). Serial reference kernel; also
/// the per-block worker of the parallel path.
pub(crate) fn matmul_block(lhs: &[f32], rhs: &[f32], out: &mut [f32], m: usize, k: usize, n: usize) {
    for i in 0..m {
        let out_row = &mut out[i * n..(i + 1) * n];
        for p in 0..k {
            let a = lhs[i * k + p];
            if a == 0.0 {
                continue;
            }
            let rhs_row = &rhs[p * n..(p + 1) * n];
            for (o, &r) in out_row.iter_mut().zip(rhs_row) {
                *o += a * r;
            }
        }
    }
}

/// [`matmul_block`] with the output rows split across threads. Row `i`
/// of `out` is produced by the same serial kernel either way, so the
/// result is bit-identical to the serial call for any thread count.
pub(crate) fn matmul_block_par(lhs: &[f32], rhs: &[f32], out: &mut [f32], m: usize, k: usize, n: usize) {
    if m == 0 || n == 0 {
        return;
    }
    // Enough rows per thread that each block does ~PAR_GRAIN_FLOPS work.
    let grain = (PAR_GRAIN_FLOPS / (k * n).max(1)).max(1);
    crate::par::par_rows_mut(out, n, grain, |row0, block| {
        let rows = block.len() / n;
        matmul_block(&lhs[row0 * k..(row0 + rows) * k], rhs, block, rows, k, n);
    });
}

impl Tensor {
    /// Matrix multiplication.
    ///
    /// Supported rank combinations:
    /// * `[m,k] @ [k,n] -> [m,n]`
    /// * `[b,m,k] @ [k,n] -> [b,m,n]` (shared rhs)
    /// * `[b,m,k] @ [b,k,n] -> [b,m,n]` (batched)
    pub fn try_matmul(&self, rhs: &Tensor) -> Result<Tensor> {
        match (self.rank(), rhs.rank()) {
            (2, 2) => {
                let (m, k) = (self.shape[0], self.shape[1]);
                let (k2, n) = (rhs.shape[0], rhs.shape[1]);
                if k != k2 {
                    return Err(TensorError::ShapeMismatch {
                        lhs: self.shape.clone(),
                        rhs: rhs.shape.clone(),
                        op: "matmul",
                    });
                }
                let _s = matmul_span(1, m, k, n, true);
                let mut out = vec![0.0f32; m * n];
                matmul_block_par(&self.data, &rhs.data, &mut out, m, k, n);
                Ok(Tensor { data: out, shape: vec![m, n] })
            }
            (3, 2) => {
                let (b, m, k) = (self.shape[0], self.shape[1], self.shape[2]);
                let (k2, n) = (rhs.shape[0], rhs.shape[1]);
                if k != k2 {
                    return Err(TensorError::ShapeMismatch {
                        lhs: self.shape.clone(),
                        rhs: rhs.shape.clone(),
                        op: "matmul",
                    });
                }
                let _s = matmul_span(b, m, k, n, true);
                // Shared rhs: `[b,m,k] @ [k,n]` is exactly the 2-D product
                // `[b*m,k] @ [k,n]`, so the row-parallel kernel covers it.
                let mut out = vec![0.0f32; b * m * n];
                matmul_block_par(&self.data, &rhs.data, &mut out, b * m, k, n);
                Ok(Tensor { data: out, shape: vec![b, m, n] })
            }
            (3, 3) => {
                let (b, m, k) = (self.shape[0], self.shape[1], self.shape[2]);
                let (b2, k2, n) = (rhs.shape[0], rhs.shape[1], rhs.shape[2]);
                if k != k2 || b != b2 {
                    return Err(TensorError::ShapeMismatch {
                        lhs: self.shape.clone(),
                        rhs: rhs.shape.clone(),
                        op: "matmul",
                    });
                }
                let _s = matmul_span(b, m, k, n, false);
                let mut out = vec![0.0f32; b * m * n];
                let sample = m * n;
                if sample > 0 {
                    // Batch entries are independent: partition them as
                    // "rows" of width m*n and run the serial kernel per
                    // batch inside each block.
                    let grain = (PAR_GRAIN_FLOPS / (sample * k).max(1)).max(1);
                    crate::par::par_rows_mut(&mut out, sample, grain, |b0, block| {
                        for (i, ob) in block.chunks_mut(sample).enumerate() {
                            let bi = b0 + i;
                            matmul_block(
                                &self.data[bi * m * k..(bi + 1) * m * k],
                                &rhs.data[bi * k * n..(bi + 1) * k * n],
                                ob,
                                m,
                                k,
                                n,
                            );
                        }
                    });
                }
                Ok(Tensor { data: out, shape: vec![b, m, n] })
            }
            _ => Err(TensorError::Invalid(format!(
                "matmul: unsupported rank combination {} @ {}",
                self.rank(),
                rhs.rank()
            ))),
        }
    }

    /// Panicking wrapper over [`Tensor::try_matmul`].
    pub fn matmul(&self, rhs: &Tensor) -> Tensor {
        self.try_matmul(rhs).expect("matmul: incompatible shapes")
    }

    /// 2-D transpose. For rank-3 tensors, swaps the last two axes
    /// (batched transpose). Materialises a fresh buffer.
    pub fn transpose(&self) -> Tensor {
        match self.rank() {
            2 => {
                let (m, n) = (self.shape[0], self.shape[1]);
                let mut data = vec![0.0f32; m * n];
                for i in 0..m {
                    for j in 0..n {
                        data[j * m + i] = self.data[i * n + j];
                    }
                }
                Tensor { data, shape: vec![n, m] }
            }
            3 => {
                let (b, m, n) = (self.shape[0], self.shape[1], self.shape[2]);
                let mut data = vec![0.0f32; b * m * n];
                for bi in 0..b {
                    let src = &self.data[bi * m * n..(bi + 1) * m * n];
                    let dst = &mut data[bi * m * n..(bi + 1) * m * n];
                    for i in 0..m {
                        for j in 0..n {
                            dst[j * m + i] = src[i * n + j];
                        }
                    }
                }
                Tensor { data, shape: vec![b, n, m] }
            }
            r => panic!("transpose: expected rank 2 or 3 tensor, got rank {r}"),
        }
    }

    /// General axis permutation (like `np.transpose(x, axes)`).
    ///
    /// # Panics
    /// Panics if `axes` is not a permutation of `0..rank`.
    pub fn permute(&self, axes: &[usize]) -> Tensor {
        assert_eq!(axes.len(), self.rank(), "permute: axes length must equal rank");
        let mut seen = vec![false; self.rank()];
        for &a in axes {
            assert!(a < self.rank() && !seen[a], "permute: axes must be a permutation");
            seen[a] = true;
        }
        let out_shape: Vec<usize> = axes.iter().map(|&a| self.shape[a]).collect();
        let in_strides = strides_for(&self.shape);
        // Strides of the output walk, expressed in the input buffer.
        let walk: Vec<usize> = axes.iter().map(|&a| in_strides[a]).collect();
        let n = self.numel();
        let mut data = Vec::with_capacity(n);
        let rank = out_shape.len();
        if rank == 0 {
            return self.clone();
        }
        let mut coords = vec![0usize; rank];
        let mut src = 0usize;
        for _ in 0..n {
            data.push(self.data[src]);
            for ax in (0..rank).rev() {
                coords[ax] += 1;
                src += walk[ax];
                if coords[ax] < out_shape[ax] {
                    break;
                }
                coords[ax] = 0;
                src -= walk[ax] * out_shape[ax];
            }
        }
        Tensor { data, shape: out_shape }
    }

    /// Dot product of two 1-D tensors.
    pub fn dot(&self, rhs: &Tensor) -> f32 {
        assert_eq!(self.rank(), 1, "dot: lhs must be 1-D");
        assert_eq!(self.shape, rhs.shape, "dot: shape mismatch");
        self.data.iter().zip(&rhs.data).map(|(a, b)| a * b).sum()
    }

    /// Outer product of two 1-D tensors: `[m] x [n] -> [m,n]`.
    pub fn outer(&self, rhs: &Tensor) -> Tensor {
        assert_eq!(self.rank(), 1, "outer: lhs must be 1-D");
        assert_eq!(rhs.rank(), 1, "outer: rhs must be 1-D");
        let (m, n) = (self.shape[0], rhs.shape[0]);
        let mut data = Vec::with_capacity(m * n);
        for &a in &self.data {
            for &b in &rhs.data {
                data.push(a * b);
            }
        }
        Tensor { data, shape: vec![m, n] }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(v: Vec<f32>, s: &[usize]) -> Tensor {
        Tensor::from_vec(v, s)
    }

    #[test]
    fn matmul_2x2() {
        let a = t(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]);
        let b = t(vec![5.0, 6.0, 7.0, 8.0], &[2, 2]);
        let c = a.matmul(&b);
        assert_eq!(c.as_slice(), &[19.0, 22.0, 43.0, 50.0]);
    }

    #[test]
    fn matmul_rectangular() {
        let a = t(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]);
        let b = t(vec![1.0, 0.0, 0.0, 1.0, 1.0, 1.0], &[3, 2]);
        let c = a.matmul(&b);
        assert_eq!(c.shape(), &[2, 2]);
        assert_eq!(c.as_slice(), &[4.0, 5.0, 10.0, 11.0]);
    }

    #[test]
    fn matmul_identity_preserves() {
        let a = t(vec![3.0, -1.0, 2.0, 0.5], &[2, 2]);
        assert_eq!(a.matmul(&Tensor::eye(2)).as_slice(), a.as_slice());
    }

    #[test]
    fn matmul_batched_shared_rhs() {
        let a = Tensor::from_vec((0..12).map(|v| v as f32).collect(), &[2, 2, 3]);
        let w = Tensor::eye(3);
        let c = a.matmul(&w);
        assert_eq!(c.shape(), &[2, 2, 3]);
        assert_eq!(c.as_slice(), a.as_slice());
    }

    #[test]
    fn matmul_fully_batched() {
        let a = t(vec![1.0, 2.0, 3.0, 4.0, 1.0, 0.0, 0.0, 1.0], &[2, 2, 2]);
        let b = t(vec![1.0, 0.0, 0.0, 1.0, 2.0, 0.0, 0.0, 2.0], &[2, 2, 2]);
        let c = a.matmul(&b);
        assert_eq!(c.as_slice(), &[1.0, 2.0, 3.0, 4.0, 2.0, 0.0, 0.0, 2.0]);
    }

    #[test]
    fn matmul_shape_mismatch_errors() {
        let a = Tensor::ones(&[2, 3]);
        let b = Tensor::ones(&[2, 3]);
        assert!(a.try_matmul(&b).is_err());
        let c = Tensor::ones(&[2]);
        assert!(a.try_matmul(&c).is_err());
    }

    #[test]
    fn transpose_2d() {
        let a = t(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]);
        let at = a.transpose();
        assert_eq!(at.shape(), &[3, 2]);
        assert_eq!(at.as_slice(), &[1.0, 4.0, 2.0, 5.0, 3.0, 6.0]);
    }

    #[test]
    fn transpose_3d_swaps_last_two() {
        let a = Tensor::from_vec((0..12).map(|v| v as f32).collect(), &[2, 2, 3]);
        let at = a.transpose();
        assert_eq!(at.shape(), &[2, 3, 2]);
        assert_eq!(at.at(&[0, 2, 1]), a.at(&[0, 1, 2]));
        assert_eq!(at.at(&[1, 0, 1]), a.at(&[1, 1, 0]));
    }

    #[test]
    fn transpose_involution() {
        let a = t(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]);
        assert_eq!(a.transpose().transpose(), a);
    }

    #[test]
    fn permute_matches_transpose() {
        let a = t(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]);
        assert_eq!(a.permute(&[1, 0]), a.transpose());
    }

    #[test]
    fn permute_3d() {
        let a = Tensor::from_vec((0..24).map(|v| v as f32).collect(), &[2, 3, 4]);
        let p = a.permute(&[2, 0, 1]);
        assert_eq!(p.shape(), &[4, 2, 3]);
        assert_eq!(p.at(&[1, 0, 2]), a.at(&[0, 2, 1]));
        assert_eq!(p.at(&[3, 1, 0]), a.at(&[1, 0, 3]));
    }

    #[test]
    #[should_panic(expected = "permutation")]
    fn permute_rejects_duplicates() {
        let a = Tensor::ones(&[2, 2]);
        let _ = a.permute(&[0, 0]);
    }

    #[test]
    fn dot_and_outer() {
        let a = t(vec![1.0, 2.0, 3.0], &[3]);
        let b = t(vec![4.0, 5.0, 6.0], &[3]);
        assert_eq!(a.dot(&b), 32.0);
        let o = a.outer(&b);
        assert_eq!(o.shape(), &[3, 3]);
        assert_eq!(o.at(&[2, 0]), 12.0);
    }

    #[test]
    fn parallel_matmul_bit_identical_to_serial() {
        // White-box: run the serial reference kernel, then the same
        // worker forced across several thread counts, and require
        // bit-for-bit equality (not allclose).
        let (m, k, n) = (37, 29, 41);
        let a = Tensor::randn(&[m, k], 1);
        let b = Tensor::randn(&[k, n], 2);
        let mut serial = vec![0.0f32; m * n];
        matmul_block(a.as_slice(), b.as_slice(), &mut serial, m, k, n);
        for threads in [2, 3, 7, 16] {
            let mut par = vec![0.0f32; m * n];
            crate::par::par_rows_mut_in(threads, &mut par, n, &|row0, block| {
                let rows = block.len() / n;
                matmul_block(&a.as_slice()[row0 * k..(row0 + rows) * k], b.as_slice(), block, rows, k, n);
            });
            assert_eq!(
                serial.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                par.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                "threads = {threads}"
            );
        }
        // And the public entry point agrees with the serial kernel.
        let c = a.matmul(&b);
        assert_eq!(c.as_slice(), &serial[..]);
    }

    #[test]
    fn parallel_batched_matmul_bit_identical_to_serial() {
        let (b, m, k, n) = (6, 19, 13, 17);
        let x = Tensor::randn(&[b, m, k], 3);
        let w = Tensor::randn(&[b, k, n], 4);
        let mut serial = vec![0.0f32; b * m * n];
        for bi in 0..b {
            matmul_block(
                &x.as_slice()[bi * m * k..(bi + 1) * m * k],
                &w.as_slice()[bi * k * n..(bi + 1) * k * n],
                &mut serial[bi * m * n..(bi + 1) * m * n],
                m,
                k,
                n,
            );
        }
        let got = x.matmul(&w);
        assert_eq!(
            serial.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            got.as_slice().iter().map(|v| v.to_bits()).collect::<Vec<_>>()
        );
        // Shared-rhs flattening: [b,m,k] @ [k,n] == reshape([b*m,k]) @ [k,n].
        let w2 = Tensor::randn(&[k, n], 5);
        let flat = x.reshape(&[b * m, k]).matmul(&w2);
        assert_eq!(x.matmul(&w2).as_slice(), flat.as_slice());
    }

    #[test]
    fn matmul_associativity_with_identity_chain() {
        let a = t(vec![2.0, 1.0, 0.0, 3.0], &[2, 2]);
        let i = Tensor::eye(2);
        let left = a.matmul(&i).matmul(&a);
        let right = a.matmul(&i.matmul(&a));
        assert!(left.allclose(&right, 1e-5));
    }
}
