//! Deterministic scoped-thread parallel-for over row blocks.
//!
//! This module is the workspace's entire threading substrate (it fills
//! the role `rayon`/`crossbeam` would have played): a single primitive,
//! [`par_rows_mut`], that splits a flat output buffer into contiguous
//! blocks of whole rows and runs a worker on each block inside
//! [`std::thread::scope`].
//!
//! ## Partitioning scheme
//!
//! The buffer's `rows = out.len() / row_width` rows are split into `t`
//! contiguous blocks, where `t = min(max_threads(), rows / grain)` —
//! `grain` is the minimum number of rows worth a thread. Block sizes
//! are `ceil`/`floor` balanced (`rows % t` leading blocks get one extra
//! row), so the partition is a pure function of `(rows, t)`: no work
//! stealing, no scheduler state, no run-to-run variation.
//!
//! ## When results are bit-identical to serial
//!
//! Each worker receives a *disjoint* `&mut` block and the row offset it
//! starts at, and workers never share accumulators. As long as the
//! worker computes each row the same way the serial loop would (true
//! for every use in this crate: matmul row kernels and per-sample
//! convolution), the bytes written are **identical to a serial run for
//! every thread count** — parallelism only changes which thread writes
//! them. That makes `TS3_THREADS=1` vs `TS3_THREADS=8` runs, and runs
//! on different machines, bit-for-bit reproducible.
//!
//! ## Thread-count policy
//!
//! [`max_threads`] reads `TS3_THREADS` (clamped to [1, 256]) or falls
//! back to [`std::thread::available_parallelism`], caching the answer
//! for the process lifetime. Blocks run on freshly scoped threads; at
//! the tensor sizes of this workspace spawn cost is ~10 µs against
//! multi-millisecond kernels, and the last block runs on the calling
//! thread so the single-thread path never spawns at all.

use std::sync::atomic::{AtomicUsize, Ordering};

/// `0` means "not yet initialised from the environment".
static CAP: AtomicUsize = AtomicUsize::new(0);

/// Process-wide worker-count cap (see module docs for the policy).
pub fn max_threads() -> usize {
    let cap = CAP.load(Ordering::Relaxed);
    if cap != 0 {
        return cap;
    }
    let resolved = std::env::var("TS3_THREADS")
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
        .map(|n| n.clamp(1, 256))
        .unwrap_or_else(|| std::thread::available_parallelism().map_or(1, |n| n.get()));
    // Racing initialisers resolve the same value, so last-store-wins is
    // harmless.
    CAP.store(resolved, Ordering::Relaxed);
    resolved
}

/// Override the worker-count cap at runtime (clamped to `[1, 256]`).
/// This exists for tests and calibration tools that compare thread
/// counts within one process (e.g. the `trace_determinism` test);
/// production code should configure `TS3_THREADS` instead.
pub fn set_max_threads(n: usize) {
    CAP.store(n.clamp(1, 256), Ordering::Relaxed);
}

/// Split `out` into contiguous blocks of whole `row_width`-sized rows
/// and run `worker(first_row, block)` on each block, in parallel.
///
/// `grain` is the minimum number of rows that justifies one thread;
/// the thread count never exceeds [`max_threads`]. Results are
/// bit-identical to `worker(0, out)` whenever the worker is row-wise
/// (see module docs).
///
/// # Panics
/// Panics if `row_width == 0` or `out.len()` is not a multiple of
/// `row_width`. Worker panics propagate to the caller.
pub fn par_rows_mut<F>(out: &mut [f32], row_width: usize, grain: usize, worker: F)
where
    F: Fn(usize, &mut [f32]) + Sync,
{
    assert!(row_width > 0, "par_rows_mut: row_width must be positive");
    assert_eq!(out.len() % row_width, 0, "par_rows_mut: ragged buffer");
    let rows = out.len() / row_width;
    let threads = max_threads().min(rows / grain.max(1)).max(1);
    // Observability: one counter per dispatch (never per block, so the
    // value is independent of the thread count), plus a span at the
    // verbose level only — dispatches are far too hot for level 1.
    ts3_obs::counter_add("tensor.par.dispatches", 1);
    let _s = if ts3_obs::verbose() {
        let mut s = ts3_obs::span("tensor.par.dispatch");
        s.field("rows", rows);
        s.field("threads", threads);
        Some(s)
    } else {
        None
    };
    par_rows_mut_in(threads, out, row_width, &worker);
}

/// [`par_rows_mut`] with an explicit thread count — the deterministic
/// core, exposed so tests can force multi-threaded execution on any
/// machine. `threads` is clamped to `[1, rows]`.
pub fn par_rows_mut_in<F>(threads: usize, out: &mut [f32], row_width: usize, worker: &F)
where
    F: Fn(usize, &mut [f32]) + Sync,
{
    assert!(row_width > 0, "par_rows_mut_in: row_width must be positive");
    assert_eq!(out.len() % row_width, 0, "par_rows_mut_in: ragged buffer");
    let rows = out.len() / row_width;
    if rows == 0 {
        return;
    }
    let threads = threads.clamp(1, rows);
    if threads <= 1 {
        worker(0, out);
        return;
    }
    let base = rows / threads;
    let extra = rows % threads;
    std::thread::scope(|scope| {
        let mut rest = out;
        let mut first_row = 0usize;
        for t in 0..threads {
            let block_rows = base + usize::from(t < extra);
            let (block, tail) = rest.split_at_mut(block_rows * row_width);
            rest = tail;
            let row0 = first_row;
            if t + 1 == threads {
                // Run the final block on the calling thread.
                worker(row0, block);
            } else {
                scope.spawn(move || worker(row0, block));
            }
            first_row += block_rows;
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A row-wise worker with data-dependent, order-sensitive values.
    fn fill(first_row: usize, block: &mut [f32], width: usize) {
        for (r, row) in block.chunks_mut(width).enumerate() {
            let gr = first_row + r;
            for (c, v) in row.iter_mut().enumerate() {
                *v = ((gr * 31 + c) as f32 * 0.37).sin() * (gr as f32 + 1.0);
            }
        }
    }

    #[test]
    fn all_thread_counts_match_serial_bitwise() {
        let width = 7;
        let rows = 23;
        let mut serial = vec![0.0f32; rows * width];
        fill(0, &mut serial, width);
        for threads in [1, 2, 3, 4, 8, 23, 64] {
            let mut par = vec![0.0f32; rows * width];
            par_rows_mut_in(threads, &mut par, width, &|r0, block| fill(r0, block, width));
            assert_eq!(
                serial.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                par.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                "threads = {threads}"
            );
        }
    }

    #[test]
    fn partition_covers_every_row_exactly_once() {
        let width = 3;
        let rows = 17;
        let mut out = vec![0.0f32; rows * width];
        par_rows_mut_in(5, &mut out, width, &|_, block| {
            for v in block.iter_mut() {
                *v += 1.0;
            }
        });
        assert!(out.iter().all(|&v| v == 1.0));
    }

    #[test]
    fn auto_grain_runs_serial_for_tiny_work() {
        // 4 rows with grain 8 must not panic and must fill everything.
        let mut out = vec![0.0f32; 4 * 2];
        par_rows_mut(&mut out, 2, 8, |r0, block| {
            for (i, v) in block.iter_mut().enumerate() {
                *v = (r0 * 2 + i) as f32;
            }
        });
        assert_eq!(out, (0..8).map(|v| v as f32).collect::<Vec<_>>());
    }

    #[test]
    fn empty_buffer_is_a_no_op() {
        let mut out: Vec<f32> = vec![];
        par_rows_mut(&mut out, 4, 1, |_, _| panic!("no rows, no calls"));
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn ragged_buffer_panics() {
        let mut out = vec![0.0f32; 5];
        par_rows_mut(&mut out, 2, 1, |_, _| {});
    }

    #[test]
    fn max_threads_is_positive_and_stable() {
        let a = max_threads();
        assert!(a >= 1);
        assert_eq!(a, max_threads());
    }
}
