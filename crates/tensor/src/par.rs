//! Deterministic parallel-for over row blocks, executed on a
//! process-lifetime pool of parked worker threads.
//!
//! This module is the workspace's entire threading substrate (it fills
//! the role `rayon`/`crossbeam` would have played): a single primitive,
//! [`par_rows_mut`], that splits a flat output buffer into contiguous
//! blocks of whole rows and fans the blocks out to a **persistent
//! worker pool**. Workers are spawned lazily on first multi-threaded
//! dispatch, park on a condvar between dispatches, and live for the
//! rest of the process — the hot path never spawns an OS thread.
//!
//! ## Partitioning scheme
//!
//! The buffer's `rows = out.len() / row_width` rows are split into `t`
//! contiguous blocks, where `t = min(max_threads(), rows / grain)` —
//! `grain` is the minimum number of rows worth a thread. Block sizes
//! are `ceil`/`floor` balanced (`rows % t` leading blocks get one extra
//! row), so the partition is a pure function of `(rows, t)`: no work
//! stealing, no scheduler state, no run-to-run variation. The last
//! block always runs on the calling thread, so the single-thread path
//! touches no pool machinery at all.
//!
//! ## When results are bit-identical to serial
//!
//! Each worker receives a *disjoint* `&mut` block and the row offset it
//! starts at, and workers never share accumulators. As long as the
//! worker computes each row the same way the serial loop would (true
//! for every use in this crate: matmul row kernels and per-sample
//! convolution), the bytes written are **identical to a serial run for
//! every thread count** — parallelism only changes which thread writes
//! them. That makes `TS3_THREADS=1` vs `TS3_THREADS=8` runs, and runs
//! on different machines, bit-for-bit reproducible. This also covers
//! the contended fallback below: any dispatch may legally degrade to a
//! serial inline run without changing a single output bit.
//!
//! ## Pool design
//!
//! * One global `Pool` behind a `OnceLock`, holding a mutex-guarded
//!   vector of workers. Each worker owns a single-slot mailbox
//!   (`Mutex<Option<Job>>` + `Condvar`); dispatch fills the mailboxes
//!   of the first `t - 1` workers, runs the final block inline, then
//!   blocks on a completion latch until every job has finished.
//! * The worker vector's mutex doubles as the **dispatch lock**; it is
//!   only ever `try_lock`ed. A nested `par_rows_mut` from inside a
//!   worker closure, or a concurrent dispatch from another caller
//!   thread, simply fails the `try_lock` and runs serially inline —
//!   deadlock-free by construction, and bit-identical by the contract
//!   above.
//! * Worker panics are caught, parked in the latch, and re-raised on
//!   the calling thread once every sibling block has completed
//!   (`resume_unwind`), so a poisoned kernel panics the caller, not the
//!   pool: workers survive and keep serving later dispatches.
//! * Spawning is lazy and monotone: a dispatch that wants `t` threads
//!   tops the pool up to `t - 1` workers. The pool therefore holds at
//!   most `max_threads() - 1` OS threads unless the cap is *raised*
//!   mid-process (see below), and never more than `HARD_MAX - 1`.
//!
//! ## Thread-count policy
//!
//! [`max_threads`] reads `TS3_THREADS` (clamped to `[1, HARD_MAX]`) or
//! falls back to [`std::thread::available_parallelism`], caching the
//! answer for the process lifetime. [`set_max_threads`] overrides the
//! cap at runtime and takes effect on the **next dispatch** even after
//! the pool exists: shrinking masks the surplus workers (they stay
//! parked and unused), growing spawns the missing workers lazily, up to
//! [`HARD_MAX`].
//!
//! ## Schedule fuzzing (`TS3_SCHED_FUZZ`)
//!
//! The bit-identity contract above claims outputs do not depend on
//! *which* worker runs *which* block or in what order the mailboxes are
//! filled. `TS3_SCHED_FUZZ=<seed>` (or [`set_sched_fuzz`]) turns that
//! claim into something testable: every pool dispatch draws a fresh
//! deterministic permutation (seeded from the fuzz seed and a
//! per-dispatch round counter, via `ts3-rng`) of **(a)** the
//! block→worker assignment and **(b)** the mailbox wake order. The
//! partition boundaries themselves never change — only the schedule —
//! so a correct row-wise worker must still produce bitwise-identical
//! buffers. The `sched_fuzz_sweep` integration test sweeps 16 seeds ×
//! several thread counts over matmul/FFT/decomposition/forward and
//! asserts exactly that; a failure means some kernel secretly depends
//! on scheduling (shared accumulator, block-order dependence, data
//! race). The fuzz branch is fully outside the default hot path: one
//! relaxed atomic load when the knob is off.
//!
//! ## Observability
//!
//! `tensor.par.dispatches` counts one per [`par_rows_mut`] call and is
//! independent of the thread count (part of the ts3-obs determinism
//! contract). The `tensor.par.sched.*` counters — `pool_dispatches`,
//! `inline_runs`, `threads_spawned`, `fuzzed_dispatches` — describe
//! *how* the work was scheduled, are inherently thread-count-dependent,
//! and are therefore excluded from cross-thread-count determinism
//! comparisons (the `trace_determinism` test filters `".sched."`
//! names). The same numbers are available untraced through
//! [`pool_stats`].

use std::any::Any;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use ts3_rng::rngs::StdRng;
use ts3_rng::seq::SliceRandom;
use ts3_rng::SeedableRng;

/// Absolute ceiling on the thread cap (and thus `HARD_MAX - 1` pool
/// workers per process), however `TS3_THREADS` / [`set_max_threads`]
/// are abused.
pub const HARD_MAX: usize = 256;

/// `0` means "not yet initialised from the environment".
static CAP: AtomicUsize = AtomicUsize::new(0);

/// Process-wide worker-count cap (see module docs for the policy).
pub fn max_threads() -> usize {
    let cap = CAP.load(Ordering::Relaxed);
    if cap != 0 {
        return cap;
    }
    let resolved = std::env::var("TS3_THREADS")
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
        .map(|n| n.clamp(1, HARD_MAX))
        .unwrap_or_else(|| std::thread::available_parallelism().map_or(1, |n| n.get()));
    // Racing initialisers resolve the same value, so last-store-wins is
    // harmless.
    CAP.store(resolved, Ordering::Relaxed);
    resolved
}

/// Override the worker-count cap at runtime (clamped to `[1, HARD_MAX]`).
///
/// Takes effect on the next dispatch even when the pool is already
/// warm: shrinking leaves the surplus workers parked, growing spawns
/// the missing ones lazily. This exists for tests and calibration tools
/// that compare thread counts within one process (e.g. the
/// `trace_determinism` test); production code should configure
/// `TS3_THREADS` instead.
pub fn set_max_threads(n: usize) {
    CAP.store(n.clamp(1, HARD_MAX), Ordering::Relaxed);
}

// ---------------------------------------------------------------------------
// Schedule fuzzing.

/// `0` = not yet resolved from the environment, `1` = off, `2` = on.
static FUZZ_STATE: AtomicUsize = AtomicUsize::new(0);
static FUZZ_SEED: AtomicU64 = AtomicU64::new(0);
/// Per-dispatch round counter: every fuzzed dispatch draws a distinct
/// permutation even under a fixed seed.
static FUZZ_ROUNDS: AtomicU64 = AtomicU64::new(0);

/// The active schedule-fuzz seed, if fuzzing is enabled.
///
/// Resolved once from `TS3_SCHED_FUZZ` (any value that parses as `u64`
/// enables fuzzing, including `0`); [`set_sched_fuzz`] overrides at
/// runtime. Off is one relaxed atomic load.
pub fn sched_fuzz() -> Option<u64> {
    match FUZZ_STATE.load(Ordering::Acquire) {
        1 => None,
        2 => Some(FUZZ_SEED.load(Ordering::Acquire)),
        _ => {
            let parsed = std::env::var("TS3_SCHED_FUZZ")
                .ok()
                .and_then(|v| v.trim().parse::<u64>().ok());
            set_sched_fuzz(parsed);
            parsed
        }
    }
}

/// Enable (`Some(seed)`) or disable (`None`) schedule fuzzing at
/// runtime, overriding `TS3_SCHED_FUZZ`. Takes effect on the next
/// dispatch. Exists for tests that sweep seeds within one process.
pub fn set_sched_fuzz(seed: Option<u64>) {
    match seed {
        Some(s) => {
            // Seed first, then state: a reader that observes "on" must
            // also observe the seed (Release/Acquire pairing).
            FUZZ_SEED.store(s, Ordering::Release);
            FUZZ_STATE.store(2, Ordering::Release);
        }
        None => FUZZ_STATE.store(1, Ordering::Release),
    }
}

// ---------------------------------------------------------------------------
// Scheduling statistics (plain atomics: usable without ts3-obs tracing).

static SPAWNED: AtomicUsize = AtomicUsize::new(0);
static POOL_DISPATCHES: AtomicU64 = AtomicU64::new(0);
static INLINE_RUNS: AtomicU64 = AtomicU64::new(0);
static FUZZED_DISPATCHES: AtomicU64 = AtomicU64::new(0);
static LAST_THREADS: AtomicUsize = AtomicUsize::new(0);

/// Point-in-time scheduling statistics of the worker pool.
#[derive(Debug, Clone, Copy)]
pub struct PoolStats {
    /// OS threads spawned by the pool over the process lifetime.
    pub threads_spawned: usize,
    /// Dispatches that fanned blocks out to pool workers.
    pub pool_dispatches: u64,
    /// Dispatches that ran serially inline (single-thread partition,
    /// contended pool, or spawn failure).
    pub inline_runs: u64,
    /// Pool dispatches that ran under a fuzzed schedule
    /// (`TS3_SCHED_FUZZ` / [`set_sched_fuzz`]).
    pub fuzzed_dispatches: u64,
    /// Thread count of the most recent dispatch (0 before the first).
    pub last_dispatch_threads: usize,
}

/// Snapshot the pool's scheduling counters. Unlike the mirrored
/// `tensor.par.sched.*` ts3-obs counters this works with tracing
/// disabled, which is what the pool tests use.
pub fn pool_stats() -> PoolStats {
    PoolStats {
        threads_spawned: SPAWNED.load(Ordering::Relaxed),
        pool_dispatches: POOL_DISPATCHES.load(Ordering::Relaxed),
        inline_runs: INLINE_RUNS.load(Ordering::Relaxed),
        fuzzed_dispatches: FUZZED_DISPATCHES.load(Ordering::Relaxed),
        last_dispatch_threads: LAST_THREADS.load(Ordering::Relaxed),
    }
}

// ---------------------------------------------------------------------------
// The pool.

/// Monomorphised trampoline stored in a [`Job`]: reconstructs the
/// caller's closure reference and block slice from raw parts.
///
/// # Safety
/// `ctx` must point to a live `F`, and `ptr/len` to a live, exclusively
/// owned `[f32]` block, for the whole call. The dispatch guarantees
/// both by blocking on the completion latch before its stack frame
/// (which borrows the closure and the buffer) can unwind or return.
unsafe fn trampoline<F: Fn(usize, &mut [f32]) + Sync>(
    ctx: *const (),
    first_row: usize,
    ptr: *mut f32,
    len: usize,
) {
    let f = &*(ctx as *const F);
    f(first_row, std::slice::from_raw_parts_mut(ptr, len));
}

/// One block of work, type-erased so the long-lived worker threads can
/// run closures borrowed from a dispatcher's stack frame.
struct Job {
    // SAFETY: callers of `run` must uphold `trampoline`'s contract —
    // `ctx` points at a live `F` and `ptr/len` at an exclusively owned
    // block — which the dispatch guarantees by pinning its stack frame
    // on the latch until every job completes.
    run: unsafe fn(*const (), usize, *mut f32, usize),
    ctx: *const (),
    first_row: usize,
    ptr: *mut f32,
    len: usize,
    latch: *const Latch,
}
// SAFETY: a Job's raw pointers (closure context, buffer block, latch)
// are only dereferenced while the dispatching stack frame — which owns
// all three referents — is pinned on the completion latch (see
// `trampoline` and `WaitOnDrop`), so sending the Job to a worker thread
// never lets it outlive what it points at. The blocks handed to
// distinct workers are disjoint `split_at_mut` slices, so no two
// threads alias the same `&mut` data.
unsafe impl Send for Job {}

/// Completion latch for one dispatch: counts outstanding jobs and
/// carries the first worker panic back to the caller.
struct Latch {
    state: Mutex<LatchState>,
    cv: Condvar,
}

struct LatchState {
    remaining: usize,
    panic: Option<Box<dyn Any + Send>>,
}

impl Latch {
    fn new(jobs: usize) -> Latch {
        Latch {
            state: Mutex::new(LatchState { remaining: jobs, panic: None }),
            cv: Condvar::new(),
        }
    }

    /// Called by a worker when its job finishes (`panic` carries an
    /// unwind payload if the job panicked). The latch is not touched
    /// after the guard drops, so the caller may free it as soon as
    /// `remaining` hits zero.
    fn complete(&self, panic: Option<Box<dyn Any + Send>>) {
        // ts3-lint: allow(no-unwrap-in-lib) lock/condvar poisoning means a worker panicked; the pool cannot be recovered and aborting is the contract
        let mut s = self.state.lock().unwrap();
        if s.panic.is_none() {
            s.panic = panic;
        } else {
            drop(panic);
        }
        s.remaining -= 1;
        if s.remaining == 0 {
            self.cv.notify_all();
        }
    }

    /// Block until every job has completed, then hand back the first
    /// captured panic payload (if any).
    fn wait(&self) -> Option<Box<dyn Any + Send>> {
        // ts3-lint: allow(no-unwrap-in-lib) lock/condvar poisoning means a worker panicked; the pool cannot be recovered and aborting is the contract
        let mut s = self.state.lock().unwrap();
        while s.remaining > 0 {
            // ts3-lint: allow(no-unwrap-in-lib) lock/condvar poisoning means a worker panicked; the pool cannot be recovered and aborting is the contract
            s = self.cv.wait(s).unwrap();
        }
        s.panic.take()
    }
}

/// Pins a dispatch's stack frame until all its pool jobs are done, even
/// if the inline block panics: the `Drop` impl re-waits on the latch,
/// so no worker can ever observe a dangling closure or buffer pointer.
struct WaitOnDrop<'a>(&'a Latch);

impl Drop for WaitOnDrop<'_> {
    fn drop(&mut self) {
        // ts3-lint: allow(no-unwrap-in-lib) lock/condvar poisoning means a worker panicked; the pool cannot be recovered and aborting is the contract
        let mut s = self.0.state.lock().unwrap();
        while s.remaining > 0 {
            // ts3-lint: allow(no-unwrap-in-lib) lock/condvar poisoning means a worker panicked; the pool cannot be recovered and aborting is the contract
            s = self.0.cv.wait(s).unwrap();
        }
    }
}

/// One parked worker: a single-slot mailbox the dispatcher fills and
/// the worker thread drains.
struct Mailbox {
    slot: Mutex<Option<Job>>,
    cv: Condvar,
}

fn worker_loop(mailbox: Arc<Mailbox>) {
    loop {
        let job = {
            // ts3-lint: allow(no-unwrap-in-lib) lock/condvar poisoning means a worker panicked; the pool cannot be recovered and aborting is the contract
            let mut slot = mailbox.slot.lock().unwrap();
            loop {
                if let Some(job) = slot.take() {
                    break job;
                }
                // ts3-lint: allow(no-unwrap-in-lib) lock/condvar poisoning means a worker panicked; the pool cannot be recovered and aborting is the contract
                slot = mailbox.cv.wait(slot).unwrap();
            }
        };
        // SAFETY: `job.ctx` and `job.ptr/len` satisfy `trampoline`'s
        // contract — the dispatching frame that owns the closure and
        // the buffer is pinned on the latch until this job completes,
        // and each job's block is a disjoint `split_at_mut` slice.
        // AssertUnwindSafe: the job's buffer block is exclusively owned
        // and simply abandoned mid-write on panic; the caller observes
        // the panic, never the half-written block.
        // ts3-lint: allow(unsafe-dataflow) the validity bound lives in the dispatcher's latch pin, not a local length; nothing assertable here
        let result = catch_unwind(AssertUnwindSafe(|| unsafe {
            (job.run)(job.ctx, job.first_row, job.ptr, job.len)
        }));
        // SAFETY: the dispatcher keeps the latch alive until `complete`
        // has decremented `remaining` (it waits under the same mutex),
        // so the pointer is valid for the duration of this borrow.
        // ts3-lint: allow(unsafe-dataflow) lifetime contract enforced by the dispatch latch, not expressible as a local assert
        let latch = unsafe { &*job.latch };
        latch.complete(result.err());
    }
}

struct Pool {
    /// Worker list; the mutex doubles as the dispatch lock (`try_lock`
    /// only — see module docs).
    workers: Mutex<Vec<Arc<Mailbox>>>,
}

fn pool() -> &'static Pool {
    static POOL: OnceLock<Pool> = OnceLock::new();
    POOL.get_or_init(|| Pool { workers: Mutex::new(Vec::new()) })
}

impl Pool {
    /// Top `workers` up to `need` parked threads. Returns `false` if an
    /// OS spawn failed (the dispatch then degrades to inline serial).
    fn ensure_workers(workers: &mut Vec<Arc<Mailbox>>, need: usize) -> bool {
        while workers.len() < need {
            let mailbox = Arc::new(Mailbox {
                slot: Mutex::new(None),
                cv: Condvar::new(),
            });
            let for_thread = Arc::clone(&mailbox);
            let spawned = std::thread::Builder::new()
                .name(format!("ts3-par-{}", workers.len()))
                .spawn(move || worker_loop(for_thread));
            if spawned.is_err() {
                return false;
            }
            SPAWNED.fetch_add(1, Ordering::Relaxed);
            ts3_obs::counter_add("tensor.par.sched.threads_spawned", 1);
            workers.push(mailbox);
        }
        true
    }

    /// Fan `out` out to `threads - 1` pool workers plus the calling
    /// thread. Returns `false` without touching `out` when the pool is
    /// busy (nested or concurrent dispatch) or a worker could not be
    /// spawned; the caller then runs the whole buffer inline.
    fn try_dispatch<F>(&self, threads: usize, out: &mut [f32], row_width: usize, worker: &F) -> bool
    where
        F: Fn(usize, &mut [f32]) + Sync,
    {
        debug_assert!(threads >= 2);
        let Ok(mut workers) = self.workers.try_lock() else {
            return false;
        };
        if !Pool::ensure_workers(&mut workers, threads - 1) {
            return false;
        }
        POOL_DISPATCHES.fetch_add(1, Ordering::Relaxed);
        ts3_obs::counter_add("tensor.par.sched.pool_dispatches", 1);

        let rows = out.len() / row_width;
        let base = rows / threads;
        let extra = rows % threads;
        let latch = Latch::new(threads - 1);
        let ctx = worker as *const F as *const ();
        let mut rest = out;
        let mut first_row = 0usize;
        {
            // From here until the guard drops, this frame is pinned:
            // workers may hold pointers into `worker`, `out` and `latch`.
            let _pin = WaitOnDrop(&latch);
            if let Some(seed) = sched_fuzz() {
                // Fuzz mode: identical partition boundaries, permuted
                // block→worker assignment and mailbox wake order (see
                // module docs). Carve all `threads` blocks up front so
                // any block can go to any slot.
                FUZZED_DISPATCHES.fetch_add(1, Ordering::Relaxed);
                ts3_obs::counter_add("tensor.par.sched.fuzzed_dispatches", 1);
                let round = FUZZ_ROUNDS.fetch_add(1, Ordering::Relaxed);
                let mut rng =
                    StdRng::seed_from_u64(seed ^ round.wrapping_mul(0x9E37_79B9_7F4A_7C15));
                let mut blocks: Vec<Option<(usize, &mut [f32])>> = Vec::with_capacity(threads);
                for t in 0..threads {
                    let block_rows = base + usize::from(t < extra);
                    let (block, tail) = rest.split_at_mut(block_rows * row_width);
                    rest = tail;
                    blocks.push(Some((first_row, block)));
                    first_row += block_rows;
                }
                // `assign[k]` is the block handed to the k-th filled
                // mailbox (the last entry stays on the calling thread);
                // `wake` permutes which mailbox is filled k-th.
                let mut assign: Vec<usize> = (0..threads).collect();
                assign.shuffle(&mut rng);
                let mut wake: Vec<usize> = (0..threads - 1).collect();
                wake.shuffle(&mut rng);
                for (k, &w) in wake.iter().enumerate() {
                    // ts3-lint: allow(no-unwrap-in-lib) assign is a permutation of 0..threads, so each take() hits a distinct still-filled slot
                    let (row0, block) = blocks[assign[k]].take().unwrap();
                    let job = Job {
                        run: trampoline::<F>,
                        ctx,
                        first_row: row0,
                        ptr: block.as_mut_ptr(),
                        len: block.len(),
                        latch: &latch,
                    };
                    // ts3-lint: allow(no-unwrap-in-lib) lock/condvar poisoning means a worker panicked; the pool cannot be recovered and aborting is the contract
                    let mut slot = workers[w].slot.lock().unwrap();
                    debug_assert!(slot.is_none(), "mailbox busy under dispatch lock");
                    *slot = Some(job);
                    workers[w].cv.notify_one();
                }
                // ts3-lint: allow(no-unwrap-in-lib) assign is a permutation of 0..threads, so each take() hits a distinct still-filled slot
                let (row0, block) = blocks[assign[threads - 1]].take().unwrap();
                worker(row0, block);
            } else {
                for (t, mailbox) in workers.iter().take(threads - 1).enumerate() {
                    let block_rows = base + usize::from(t < extra);
                    let (block, tail) = rest.split_at_mut(block_rows * row_width);
                    rest = tail;
                    let job = Job {
                        run: trampoline::<F>,
                        ctx,
                        first_row,
                        ptr: block.as_mut_ptr(),
                        len: block.len(),
                        latch: &latch,
                    };
                    // ts3-lint: allow(no-unwrap-in-lib) lock/condvar poisoning means a worker panicked; the pool cannot be recovered and aborting is the contract
                    let mut slot = mailbox.slot.lock().unwrap();
                    debug_assert!(slot.is_none(), "mailbox busy under dispatch lock");
                    *slot = Some(job);
                    mailbox.cv.notify_one();
                    first_row += block_rows;
                }
                // Final block on the calling thread (exactly the
                // scoped-spawn era behaviour, so the single- and
                // multi-thread partitions agree element-for-element).
                worker(first_row, rest);
            }
        }
        if let Some(payload) = latch.wait() {
            resume_unwind(payload);
        }
        true
    }
}

// ---------------------------------------------------------------------------
// Public entry points.

/// Split `out` into contiguous blocks of whole `row_width`-sized rows
/// and run `worker(first_row, block)` on each block, in parallel on the
/// persistent pool.
///
/// `grain` is the minimum number of rows that justifies one thread;
/// the thread count never exceeds [`max_threads`]. Results are
/// bit-identical to `worker(0, out)` whenever the worker is row-wise
/// (see module docs).
///
/// # Panics
/// Panics if `row_width == 0` or `out.len()` is not a multiple of
/// `row_width`. Worker panics propagate to the caller.
pub fn par_rows_mut<F>(out: &mut [f32], row_width: usize, grain: usize, worker: F)
where
    F: Fn(usize, &mut [f32]) + Sync,
{
    assert!(row_width > 0, "par_rows_mut: row_width must be positive");
    assert_eq!(out.len() % row_width, 0, "par_rows_mut: ragged buffer");
    let rows = out.len() / row_width;
    let threads = max_threads().min(rows / grain.max(1)).max(1);
    // Observability: one counter per dispatch (never per block, so the
    // value is independent of the thread count), plus a span at the
    // verbose level only — dispatches are far too hot for level 1.
    ts3_obs::counter_add("tensor.par.dispatches", 1);
    let _s = if ts3_obs::verbose() {
        let mut s = ts3_obs::span("tensor.par.dispatch");
        s.field("rows", rows);
        s.field("threads", threads);
        Some(s)
    } else {
        None
    };
    par_rows_mut_in(threads, out, row_width, &worker);
}

/// [`par_rows_mut`] with an explicit thread count — the deterministic
/// core, exposed so tests can force multi-threaded execution on any
/// machine. `threads` is clamped to `[1, rows]`.
pub fn par_rows_mut_in<F>(threads: usize, out: &mut [f32], row_width: usize, worker: &F)
where
    F: Fn(usize, &mut [f32]) + Sync,
{
    assert!(row_width > 0, "par_rows_mut_in: row_width must be positive");
    assert_eq!(out.len() % row_width, 0, "par_rows_mut_in: ragged buffer");
    let rows = out.len() / row_width;
    if rows == 0 {
        return;
    }
    let threads = threads.clamp(1, rows).min(HARD_MAX);
    LAST_THREADS.store(threads, Ordering::Relaxed);
    if threads >= 2 && pool().try_dispatch(threads, out, row_width, worker) {
        return;
    }
    INLINE_RUNS.fetch_add(1, Ordering::Relaxed);
    ts3_obs::counter_add("tensor.par.sched.inline_runs", 1);
    worker(0, out);
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A row-wise worker with data-dependent, order-sensitive values.
    fn fill(first_row: usize, block: &mut [f32], width: usize) {
        for (r, row) in block.chunks_mut(width).enumerate() {
            let gr = first_row + r;
            for (c, v) in row.iter_mut().enumerate() {
                *v = ((gr * 31 + c) as f32 * 0.37).sin() * (gr as f32 + 1.0);
            }
        }
    }

    #[test]
    fn all_thread_counts_match_serial_bitwise() {
        let width = 7;
        let rows = 23;
        let mut serial = vec![0.0f32; rows * width];
        fill(0, &mut serial, width);
        for threads in [1, 2, 3, 4, 8, 23, 64] {
            let mut par = vec![0.0f32; rows * width];
            par_rows_mut_in(threads, &mut par, width, &|r0, block| fill(r0, block, width));
            assert_eq!(
                serial.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                par.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                "threads = {threads}"
            );
        }
    }

    #[test]
    fn partition_covers_every_row_exactly_once() {
        let width = 3;
        let rows = 17;
        let mut out = vec![0.0f32; rows * width];
        par_rows_mut_in(5, &mut out, width, &|_, block| {
            for v in block.iter_mut() {
                *v += 1.0;
            }
        });
        assert!(out.iter().all(|&v| v == 1.0));
    }

    #[test]
    fn auto_grain_runs_serial_for_tiny_work() {
        // 4 rows with grain 8 must not panic and must fill everything.
        let mut out = vec![0.0f32; 4 * 2];
        par_rows_mut(&mut out, 2, 8, |r0, block| {
            for (i, v) in block.iter_mut().enumerate() {
                *v = (r0 * 2 + i) as f32;
            }
        });
        assert_eq!(out, (0..8).map(|v| v as f32).collect::<Vec<_>>());
    }

    #[test]
    fn empty_buffer_is_a_no_op() {
        let mut out: Vec<f32> = vec![];
        par_rows_mut(&mut out, 4, 1, |_, _| panic!("no rows, no calls"));
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn ragged_buffer_panics() {
        let mut out = vec![0.0f32; 5];
        par_rows_mut(&mut out, 2, 1, |_, _| {});
    }

    #[test]
    fn max_threads_is_positive_and_stable() {
        let a = max_threads();
        assert!(a >= 1);
        assert_eq!(a, max_threads());
    }

    #[test]
    fn fuzzed_schedules_are_bitwise_identical() {
        let width = 5;
        let rows = 29;
        let mut serial = vec![0.0f32; rows * width];
        fill(0, &mut serial, width);
        let serial_bits: Vec<u32> = serial.iter().map(|v| v.to_bits()).collect();
        for seed in 0..8u64 {
            set_sched_fuzz(Some(seed));
            for threads in [2, 3, 5] {
                let mut par = vec![0.0f32; rows * width];
                par_rows_mut_in(threads, &mut par, width, &|r0, block| fill(r0, block, width));
                assert_eq!(
                    serial_bits,
                    par.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                    "seed = {seed}, threads = {threads}"
                );
            }
        }
        set_sched_fuzz(None);
    }

    #[test]
    fn nested_dispatch_from_worker_degrades_to_inline() {
        // A worker that itself calls par_rows_mut_in must not deadlock:
        // the inner call fails the dispatch try_lock and runs serial.
        let width = 4;
        let mut out = vec![0.0f32; 8 * width];
        par_rows_mut_in(4, &mut out, width, &|r0, block| {
            let mut inner = vec![0.0f32; 2 * width];
            par_rows_mut_in(2, &mut inner, width, &|ir0, iblock| {
                fill(ir0, iblock, width)
            });
            for (r, row) in block.chunks_mut(width).enumerate() {
                for (c, v) in row.iter_mut().enumerate() {
                    *v = inner[c] + (r0 + r) as f32;
                }
            }
        });
        let mut reference = vec![0.0f32; 2 * width];
        fill(0, &mut reference, width);
        for (r, row) in out.chunks(width).enumerate() {
            for (c, &v) in row.iter().enumerate() {
                assert_eq!(v.to_bits(), (reference[c] + r as f32).to_bits());
            }
        }
    }
}
