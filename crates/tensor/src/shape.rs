//! Shape algebra: stride computation, broadcasting, and index arithmetic.

use crate::{Result, TensorError};

/// A thin alias documenting intent: shapes are row-major dimension lists.
pub type Shape = Vec<usize>;

/// Row-major strides for a contiguous tensor of the given shape.
///
/// The last axis always has stride 1 (for non-empty shapes); a scalar shape
/// `[]` yields an empty stride list.
pub fn strides_for(shape: &[usize]) -> Vec<usize> {
    let mut strides = vec![0; shape.len()];
    let mut acc = 1usize;
    for (i, &dim) in shape.iter().enumerate().rev() {
        strides[i] = acc;
        acc *= dim;
    }
    strides
}

/// Number of elements implied by a shape (product of dimensions).
pub fn numel(shape: &[usize]) -> usize {
    shape.iter().product()
}

/// Compute the broadcast result shape of two operand shapes using NumPy
/// rules: align from the right; each pair of dims must be equal or one of
/// them must be 1.
pub fn broadcast_shapes(lhs: &[usize], rhs: &[usize], op: &'static str) -> Result<Shape> {
    let rank = lhs.len().max(rhs.len());
    let mut out = vec![0; rank];
    for i in 0..rank {
        let l = if i < rank - lhs.len() { 1 } else { lhs[i - (rank - lhs.len())] };
        let r = if i < rank - rhs.len() { 1 } else { rhs[i - (rank - rhs.len())] };
        out[i] = if l == r {
            l
        } else if l == 1 {
            r
        } else if r == 1 {
            l
        } else {
            return Err(TensorError::ShapeMismatch { lhs: lhs.to_vec(), rhs: rhs.to_vec(), op });
        };
    }
    Ok(out)
}

/// Strides for an operand broadcast to `out_shape`: broadcast dims get
/// stride 0 so that repeated reads hit the same element.
pub fn broadcast_strides(shape: &[usize], out_shape: &[usize]) -> Vec<usize> {
    let base = strides_for(shape);
    let offset = out_shape.len() - shape.len();
    let mut out = vec![0; out_shape.len()];
    for i in 0..shape.len() {
        out[offset + i] = if shape[i] == 1 && out_shape[offset + i] != 1 { 0 } else { base[i] };
    }
    out
}

/// Convert a flat row-major index into multi-dimensional coordinates.
pub fn unravel(mut flat: usize, shape: &[usize]) -> Vec<usize> {
    let mut coords = vec![0; shape.len()];
    for i in (0..shape.len()).rev() {
        coords[i] = flat % shape[i];
        flat /= shape[i];
    }
    coords
}

/// Convert multi-dimensional coordinates into a flat offset using strides.
pub fn ravel(coords: &[usize], strides: &[usize]) -> usize {
    coords.iter().zip(strides).map(|(c, s)| c * s).sum()
}

/// Validate that `axis < rank`, returning a typed error otherwise.
pub fn check_axis(axis: usize, rank: usize) -> Result<()> {
    if axis >= rank {
        Err(TensorError::AxisOutOfRange { axis, rank })
    } else {
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strides_row_major() {
        assert_eq!(strides_for(&[2, 3, 4]), vec![12, 4, 1]);
        assert_eq!(strides_for(&[5]), vec![1]);
        assert_eq!(strides_for(&[]), Vec::<usize>::new());
    }

    #[test]
    fn numel_products() {
        assert_eq!(numel(&[2, 3, 4]), 24);
        assert_eq!(numel(&[]), 1);
        assert_eq!(numel(&[0, 7]), 0);
    }

    #[test]
    fn broadcast_equal_shapes() {
        assert_eq!(broadcast_shapes(&[2, 3], &[2, 3], "t").unwrap(), vec![2, 3]);
    }

    #[test]
    fn broadcast_scalar_and_vector() {
        assert_eq!(broadcast_shapes(&[], &[4], "t").unwrap(), vec![4]);
        assert_eq!(broadcast_shapes(&[4], &[], "t").unwrap(), vec![4]);
    }

    #[test]
    fn broadcast_ones_expand() {
        assert_eq!(broadcast_shapes(&[2, 1, 4], &[3, 1], "t").unwrap(), vec![2, 3, 4]);
        assert_eq!(broadcast_shapes(&[1], &[5, 5], "t").unwrap(), vec![5, 5]);
    }

    #[test]
    fn broadcast_incompatible_errors() {
        let err = broadcast_shapes(&[2, 3], &[4, 3], "myop").unwrap_err();
        match err {
            TensorError::ShapeMismatch { op, .. } => assert_eq!(op, "myop"),
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn broadcast_strides_zero_on_expanded_dims() {
        // shape [3,1] broadcast into [2,3,4]: leading dim absent -> 0,
        // the 3-dim keeps its stride, the 1-dim is expanded -> 0.
        assert_eq!(broadcast_strides(&[3, 1], &[2, 3, 4]), vec![0, 1, 0]);
    }

    #[test]
    fn unravel_ravel_roundtrip() {
        let shape = [2, 3, 4];
        let strides = strides_for(&shape);
        for flat in 0..numel(&shape) {
            let coords = unravel(flat, &shape);
            assert_eq!(ravel(&coords, &strides), flat);
        }
    }

    #[test]
    fn check_axis_bounds() {
        assert!(check_axis(1, 2).is_ok());
        assert!(check_axis(2, 2).is_err());
    }
}
