//! Runtime-dispatched explicit SIMD kernels (AVX2 + FMA) and the
//! process-wide dispatch policy they share with `ts3-signal`'s
//! butterfly kernels.
//!
//! ## Bitwise-equality contract
//!
//! Every explicit SIMD kernel in the workspace is a *lane-parallel
//! transcription* of its scalar reference: each output element sees the
//! same sequence of f32 operations, in the same order, with the same
//! rounding behaviour. Concretely, every scalar `a.mul_add(b, c)`
//! becomes one `_mm256_fmadd_ps` lane and every
//! `a.mul_add(-b, c)` becomes one `_mm256_fnmadd_ps` lane — both are
//! single-rounding fused operations, so SIMD and scalar results are
//! **bit-for-bit identical**. The sweep tests
//! (`tensor/tests/simd_equivalence.rs`, `signal/tests/simd_fft.rs`)
//! enforce this, which is what lets runtime dispatch slot under the
//! workspace determinism contract: which kernel ran is an observability
//! fact (`.sched.` counters, trace manifests), never a numeric one.
//!
//! ## Dispatch policy
//!
//! The AVX2 path runs only when the host CPU reports `avx2` **and**
//! `fma` (checked once, cached — same pattern as
//! [`crate::par::max_threads`]) and the `TS3_SIMD` environment variable
//! is not `0`. `TS3_SIMD=0` forces the scalar reference path for
//! debugging; [`set_simd_enabled`] overrides the cap at runtime for
//! tests and calibration tools that compare both paths in one process.
//! On non-x86_64 targets everything resolves to the scalar path at
//! compile time.

use std::sync::atomic::{AtomicU8, Ordering};

/// Dispatch mode: `0` = not yet resolved, `1` = scalar, `2` = AVX2+FMA.
static MODE: AtomicU8 = AtomicU8::new(0);

const SCALAR: u8 = 1;
const AVX2: u8 = 2;

/// What the hardware (and target) supports, ignoring the env override.
fn hw_mode() -> u8 {
    #[cfg(target_arch = "x86_64")]
    {
        if std::arch::is_x86_feature_detected!("avx2")
            && std::arch::is_x86_feature_detected!("fma")
        {
            return AVX2;
        }
    }
    SCALAR
}

/// Resolve the dispatch mode once: `TS3_SIMD=0` forces scalar, anything
/// else defers to runtime CPU-feature detection.
fn mode() -> u8 {
    let m = MODE.load(Ordering::Relaxed);
    if m != 0 {
        return m;
    }
    let forced_scalar = std::env::var("TS3_SIMD").is_ok_and(|v| v.trim() == "0");
    let resolved = if forced_scalar { SCALAR } else { hw_mode() };
    // Racing initialisers resolve the same value; last-store-wins is
    // harmless (same pattern as `par::max_threads`).
    MODE.store(resolved, Ordering::Relaxed);
    resolved
}

/// True when the explicit AVX2+FMA kernels are selected.
pub fn avx2_active() -> bool {
    mode() == AVX2
}

/// Override the SIMD dispatch at runtime: `set_simd_enabled(false)`
/// forces the scalar reference path, `set_simd_enabled(true)` restores
/// hardware detection (which may still resolve to scalar on hosts
/// without AVX2+FMA). Exists for the SIMD-vs-scalar bitwise sweep tests
/// and bench tooling; production code should configure `TS3_SIMD`.
pub fn set_simd_enabled(enabled: bool) {
    MODE.store(if enabled { hw_mode() } else { SCALAR }, Ordering::Relaxed);
}

/// Name of the selected kernel family, for trace manifests and bench
/// reports (`"avx2"` or `"scalar"`).
pub fn kernel_name() -> &'static str {
    if avx2_active() {
        "avx2"
    } else {
        "scalar"
    }
}

/// `.sched.`-namespaced dispatch counter for the gemm entry points —
/// which kernel family served a matmul call. Scheduling metadata, so it
/// is excluded from cross-run determinism comparisons (the outputs are
/// bitwise identical either way).
pub fn gemm_dispatch_counter() -> &'static str {
    if avx2_active() {
        "tensor.gemm.sched.dispatch_avx2"
    } else {
        "tensor.gemm.sched.dispatch_scalar"
    }
}

/// Run the packed `MR x NR` micro-kernel through the AVX2 path if it is
/// selected; returns `false` when the caller should run the scalar
/// reference instead (non-x86_64 target, missing CPU features, or
/// `TS3_SIMD=0`).
#[inline]
pub(crate) fn micro_full_dispatch(
    kc: usize,
    ap: &[f32],
    bp: &[f32],
    out: &mut [f32],
    row_stride: usize,
) -> bool {
    #[cfg(target_arch = "x86_64")]
    if avx2_active() {
        // SAFETY: avx2_active() only returns true after runtime
        // detection confirmed this CPU executes AVX2 and FMA.
        // ts3-lint: allow(unsafe-dataflow) cpu-feature gate, not an indexing bound; avx2_active() is the runtime check and the callee asserts its own slice bounds
        unsafe { micro_full_avx2(kc, ap, bp, out, row_stride) };
        return true;
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        let _ = (kc, ap, bp, out, row_stride);
    }
    false
}

/// AVX2+FMA transcription of [`crate::gemm`]'s `micro_full`: a 4x16
/// register tile held in eight `__m256` accumulators, updated with one
/// broadcast-FMA per `(p, row)` step in ascending `p` — the exact
/// operation sequence of the scalar kernel, so results are bitwise
/// identical (see module docs).
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2", enable = "fma")]
// SAFETY: `unsafe` only because of `target_feature` — the dispatch
// wrapper calls this solely after `avx2_active()` confirmed AVX2+FMA.
// Raw pointer loads/stores are covered by the panel/output length
// asserts at the top of the body.
unsafe fn micro_full_avx2(kc: usize, ap: &[f32], bp: &[f32], out: &mut [f32], row_stride: usize) {
    use crate::gemm::{MR, NR};
    use core::arch::x86_64::*;
    // The bounds the raw loads/stores below rely on; the scalar kernel
    // enforces the same ones through slice indexing.
    assert!(ap.len() >= kc * MR, "micro_full_avx2: A panel too short");
    assert!(bp.len() >= kc * NR, "micro_full_avx2: B panel too short");
    assert!(
        out.len() >= (MR - 1) * row_stride + NR,
        "micro_full_avx2: output tile out of bounds"
    );
    let o = out.as_mut_ptr();
    // SAFETY: every pointer below stays inside `out[0 .. (MR-1)*row_stride + NR]`,
    // `ap[0 .. kc*MR]` or `bp[0 .. kc*NR]`, which the asserts above proved
    // in-bounds; loads/stores are unaligned-safe (`loadu`/`storeu`).
    unsafe {
        let mut acc: [[__m256; 2]; MR] = [[_mm256_setzero_ps(); 2]; MR];
        for (i, row) in acc.iter_mut().enumerate() {
            row[0] = _mm256_loadu_ps(o.add(i * row_stride));
            row[1] = _mm256_loadu_ps(o.add(i * row_stride + 8));
        }
        let a = ap.as_ptr();
        let b = bp.as_ptr();
        for p in 0..kc {
            let b0 = _mm256_loadu_ps(b.add(p * NR));
            let b1 = _mm256_loadu_ps(b.add(p * NR + 8));
            for (i, row) in acc.iter_mut().enumerate() {
                let ai = _mm256_broadcast_ss(&*a.add(p * MR + i));
                row[0] = _mm256_fmadd_ps(ai, b0, row[0]);
                row[1] = _mm256_fmadd_ps(ai, b1, row[1]);
            }
        }
        for (i, row) in acc.iter().enumerate() {
            _mm256_storeu_ps(o.add(i * row_stride), row[0]);
            _mm256_storeu_ps(o.add(i * row_stride + 8), row[1]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kernel_name_matches_active_flag() {
        let name = kernel_name();
        assert_eq!(name == "avx2", avx2_active());
        assert!(name == "avx2" || name == "scalar");
    }

    #[test]
    fn set_simd_enabled_round_trips() {
        let initial = avx2_active();
        set_simd_enabled(false);
        assert!(!avx2_active());
        assert_eq!(kernel_name(), "scalar");
        assert_eq!(gemm_dispatch_counter(), "tensor.gemm.sched.dispatch_scalar");
        set_simd_enabled(true);
        // Restoring re-runs hardware detection, so the flag returns to
        // whatever this host supports.
        assert_eq!(avx2_active(), hw_mode() == AVX2);
        set_simd_enabled(initial);
    }
}
