//! Seeded random tensor construction (normal, uniform, Xavier/Kaiming).

use crate::shape::numel;
use crate::Tensor;
use ts3_rng::rngs::StdRng;
use ts3_rng::{normal_f32, Rng, SeedableRng};

impl Tensor {
    /// Standard-normal tensor from a caller-provided RNG (Box–Muller
    /// via [`ts3_rng::normal_f32`], the workspace's one normal sampler).
    pub fn randn_with(shape: &[usize], rng: &mut StdRng) -> Tensor {
        let data = (0..numel(shape)).map(|_| normal_f32(rng)).collect();
        Tensor { data, shape: shape.to_vec() }
    }

    /// Standard-normal tensor from a fixed seed (deterministic).
    pub fn randn(shape: &[usize], seed: u64) -> Tensor {
        let mut rng = StdRng::seed_from_u64(seed);
        Self::randn_with(shape, &mut rng)
    }

    /// Uniform `[lo, hi)` tensor from a caller-provided RNG.
    pub fn rand_uniform_with(shape: &[usize], lo: f32, hi: f32, rng: &mut StdRng) -> Tensor {
        let data = (0..numel(shape)).map(|_| rng.gen_range(lo..hi)).collect();
        Tensor { data, shape: shape.to_vec() }
    }

    /// Uniform `[lo, hi)` tensor from a fixed seed.
    pub fn rand_uniform(shape: &[usize], lo: f32, hi: f32, seed: u64) -> Tensor {
        let mut rng = StdRng::seed_from_u64(seed);
        Self::rand_uniform_with(shape, lo, hi, &mut rng)
    }

    /// Xavier/Glorot uniform initialisation for a weight of shape
    /// `[fan_out, fan_in, ...]` (extra axes fold into fan_in, matching
    /// conv kernels).
    pub fn xavier_uniform(shape: &[usize], rng: &mut StdRng) -> Tensor {
        assert!(shape.len() >= 2, "xavier_uniform needs rank >= 2");
        let fan_out = shape[0];
        let fan_in: usize = shape[1..].iter().product();
        let bound = (6.0 / (fan_in + fan_out) as f32).sqrt();
        Self::rand_uniform_with(shape, -bound, bound, rng)
    }

    /// Kaiming/He normal initialisation (`std = sqrt(2/fan_in)`), suited to
    /// ReLU-family activations.
    pub fn kaiming_normal(shape: &[usize], rng: &mut StdRng) -> Tensor {
        assert!(shape.len() >= 2, "kaiming_normal needs rank >= 2");
        let fan_in: usize = shape[1..].iter().product();
        let std = (2.0 / fan_in as f32).sqrt();
        let mut t = Self::randn_with(shape, rng);
        t.map_inplace(|v| v * std);
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn randn_is_deterministic_per_seed() {
        let a = Tensor::randn(&[100], 42);
        let b = Tensor::randn(&[100], 42);
        let c = Tensor::randn(&[100], 43);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn randn_has_roughly_unit_moments() {
        let t = Tensor::randn(&[10_000], 7);
        assert!(t.mean().abs() < 0.05, "mean {}", t.mean());
        assert!((t.std() - 1.0).abs() < 0.05, "std {}", t.std());
    }

    #[test]
    fn uniform_respects_bounds() {
        let t = Tensor::rand_uniform(&[1000], -2.0, 3.0, 11);
        assert!(t.min() >= -2.0);
        assert!(t.max() < 3.0);
        assert!((t.mean() - 0.5).abs() < 0.2);
    }

    #[test]
    fn xavier_bound_matches_formula() {
        let mut rng = StdRng::seed_from_u64(1);
        let t = Tensor::xavier_uniform(&[64, 32], &mut rng);
        let bound = (6.0f32 / 96.0).sqrt();
        assert!(t.max() <= bound && t.min() >= -bound);
        assert!(t.max() > bound * 0.8, "should come close to the bound");
    }

    #[test]
    fn kaiming_std_scales_with_fan_in() {
        let mut rng = StdRng::seed_from_u64(2);
        let t = Tensor::kaiming_normal(&[16, 512], &mut rng);
        let expected = (2.0f32 / 512.0).sqrt();
        assert!((t.std() - expected).abs() < expected * 0.2);
    }
}
