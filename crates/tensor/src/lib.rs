//! # ts3-tensor
//!
//! A dense, row-major, `f32` n-dimensional tensor library written from
//! scratch for the TS3Net reproduction. It provides exactly the operations
//! the paper's model zoo needs: broadcasting elementwise arithmetic,
//! reductions, (batched) matrix multiplication, 1-D/2-D convolution via
//! `im2col`, shape manipulation (reshape / permute / slice / concat / pad),
//! and seeded random initialisation.
//!
//! ## Design
//!
//! * Tensors are always **contiguous row-major**; operations that would
//!   produce strided views (`permute`, `slice`) materialise a fresh buffer.
//!   At the model sizes used in this repository the copy cost is negligible
//!   and it keeps every kernel branch-free.
//! * The API comes in two flavours: fallible `try_*` methods returning
//!   [`Result<_, TensorError>`] for boundary code (loading data, user
//!   configuration), and panicking wrappers with descriptive messages for
//!   model internals where a shape mismatch is a programming error.
//! * Everything is `f32`. Reductions accumulate in `f64` where it is cheap
//!   to do so (full-tensor `sum`/`mean`) to keep long-series statistics
//!   stable.
//!
//! ## Example
//!
//! ```
//! use ts3_tensor::Tensor;
//!
//! let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]);
//! let b = Tensor::eye(2);
//! let c = a.matmul(&b);
//! assert_eq!(c.as_slice(), &[1.0, 2.0, 3.0, 4.0]);
//! ```

pub mod conv;
mod elementwise;
mod error;
mod gemm;
mod init;
mod linalg;
mod manip;
pub mod par;
mod reduce;
pub mod shape;
pub mod simd;
mod tensor;

pub use conv::{avg_pool_axis, col2im, conv1d, conv2d, im2col, im2col_into, moving_avg_same};
pub use error::TensorError;
pub use linalg::matmul_block_naive;
pub use shape::{broadcast_shapes, strides_for, Shape};
pub use tensor::Tensor;

/// Convenience result alias used across the crate.
pub type Result<T> = std::result::Result<T, TensorError>;
