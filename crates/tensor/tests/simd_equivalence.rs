//! SIMD-vs-scalar bitwise equivalence sweep for the gemm micro-kernel.
//!
//! The AVX2 kernel in `ts3_tensor::simd` is a lane-parallel
//! transcription of the scalar reference (every `mul_add` becomes one
//! fused `_mm256_fmadd_ps` lane, same order), so the two dispatch modes
//! must produce **bit-for-bit identical** matmul results. That identity
//! is what makes runtime dispatch legal under the workspace determinism
//! contract; this sweep enforces it across packed tiles, ragged edge
//! tiles, and the sub-threshold naive path.
//!
//! Everything runs inside one `#[test]` because the dispatch override
//! is process-global: a single test owns the toggle sequence. (Other
//! tests running concurrently are unaffected *because* the modes are
//! bitwise-equal — the property proven here.)

use ts3_tensor::simd::{avx2_active, set_simd_enabled};
use ts3_tensor::Tensor;

fn bits(t: &Tensor) -> Vec<u32> {
    t.as_slice().iter().map(|v| v.to_bits()).collect()
}

#[test]
fn gemm_simd_and_scalar_are_bitwise_identical() {
    set_simd_enabled(true);
    if !avx2_active() {
        // Host has no AVX2+FMA: both modes resolve to the scalar
        // kernel and the sweep is vacuous.
        eprintln!("simd_equivalence: no AVX2+FMA on this host, skipping sweep");
        return;
    }
    // (m, k, n) shapes: full 4x16 tiles, ragged M/N/K edges around the
    // MR=4 / NR=16 / KC=256 blocking, and tiny sub-threshold cases that
    // take the naive path.
    let shapes: &[(usize, usize, usize)] = &[
        (1, 1, 1),
        (3, 5, 7),
        (4, 8, 16),
        (5, 9, 17),
        (8, 16, 32),
        (13, 31, 47),
        (16, 64, 16),
        (33, 17, 65),
        (64, 64, 64),
        (64, 300, 48),
        (128, 128, 128),
    ];
    for (i, &(m, k, n)) in shapes.iter().enumerate() {
        let a = Tensor::randn(&[m, k], 100 + i as u64);
        let b = Tensor::randn(&[k, n], 200 + i as u64);
        set_simd_enabled(false);
        let scalar = a.matmul(&b);
        set_simd_enabled(true);
        let simd = a.matmul(&b);
        assert_eq!(
            bits(&scalar),
            bits(&simd),
            "gemm dispatch modes diverged at m={m} k={k} n={n}"
        );
        // Transposed-B entry point shares the packing path.
        let bt = Tensor::randn(&[n, k], 300 + i as u64);
        set_simd_enabled(false);
        let scalar_tb = a.matmul_tb(&bt);
        set_simd_enabled(true);
        let simd_tb = a.matmul_tb(&bt);
        assert_eq!(
            bits(&scalar_tb),
            bits(&simd_tb),
            "matmul_tb dispatch modes diverged at m={m} k={k} n={n}"
        );
    }
    set_simd_enabled(true);
}
