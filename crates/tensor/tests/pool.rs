//! Lifecycle tests for the persistent worker pool behind
//! `ts3_tensor::par`. This is an integration-test binary so it owns the
//! process-global pool and thread-cap state outright — the assertions
//! on `pool_stats()` would be meaningless inside the crate's unit-test
//! process, where every other test dispatches too.
//!
//! Everything runs inside ONE #[test] so the scenario owns the pool's
//! whole lifetime ordering (spawn counts are process-cumulative).

use ts3_tensor::par::{max_threads, par_rows_mut, pool_stats, set_max_threads};
use ts3_tensor::Tensor;

/// Deterministic row worker used throughout the scenario.
fn fill(first_row: usize, block: &mut [f32], width: usize) {
    for (r, row) in block.chunks_mut(width).enumerate() {
        let gr = first_row + r;
        for (c, v) in row.iter_mut().enumerate() {
            *v = ((gr * 17 + c * 3) as f32 * 0.29).sin() * (gr as f32 + 0.5);
        }
    }
}

fn run_dispatch(rows: usize, width: usize) -> Vec<f32> {
    let mut out = vec![0.0f32; rows * width];
    // grain 1 so the partition uses the full thread cap.
    par_rows_mut(&mut out, width, 1, |r0, block| fill(r0, block, width));
    out
}

#[test]
fn pool_lifecycle_scenario() {
    let width = 5;
    let rows = 64;
    let mut serial = vec![0.0f32; rows * width];
    fill(0, &mut serial, width);
    let bits = |v: &[f32]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();

    // --- Cold pool at cap 4: first dispatch spawns exactly cap-1 workers.
    set_max_threads(4);
    assert_eq!(max_threads(), 4);
    assert_eq!(pool_stats().threads_spawned, 0, "pool must be lazy");
    let first = run_dispatch(rows, width);
    assert_eq!(bits(&serial), bits(&first));
    let s = pool_stats();
    assert_eq!(s.last_dispatch_threads, 4);
    assert_eq!(s.threads_spawned, 3, "cap 4 => exactly 3 workers");
    assert!(s.pool_dispatches >= 1);

    // --- Warm pool: many dispatches, zero further spawns (the "no
    // per-call thread spawns on the hot path" acceptance criterion).
    for _ in 0..50 {
        let out = run_dispatch(rows, width);
        assert_eq!(bits(&serial), bits(&out));
    }
    let s = pool_stats();
    assert_eq!(s.threads_spawned, 3, "warm dispatches must never spawn");
    assert!(s.pool_dispatches >= 51);

    // --- Shrink the cap mid-process: surplus workers are masked, not
    // killed — the next dispatch uses 2 threads and spawns nothing.
    set_max_threads(2);
    let out = run_dispatch(rows, width);
    assert_eq!(bits(&serial), bits(&out));
    let s = pool_stats();
    assert_eq!(s.last_dispatch_threads, 2, "late cap shrink must take effect");
    assert_eq!(s.threads_spawned, 3, "shrink must not spawn or respawn");

    // --- Grow the cap past the initial pool size: the missing workers
    // are spawned lazily on the next dispatch.
    set_max_threads(7);
    let out = run_dispatch(rows, width);
    assert_eq!(bits(&serial), bits(&out));
    let s = pool_stats();
    assert_eq!(s.last_dispatch_threads, 7, "late cap growth must take effect");
    assert_eq!(s.threads_spawned, 6, "growth tops the pool up to cap-1");

    // --- Cap 1 routes inline without touching the pool.
    set_max_threads(1);
    let inline_before = pool_stats().inline_runs;
    let out = run_dispatch(rows, width);
    assert_eq!(bits(&serial), bits(&out));
    let s = pool_stats();
    assert_eq!(s.last_dispatch_threads, 1);
    assert!(s.inline_runs > inline_before);
    assert_eq!(s.threads_spawned, 6);

    // --- A panicking worker block propagates to the caller...
    set_max_threads(4);
    let caught = std::panic::catch_unwind(|| {
        let mut out = vec![0.0f32; 8 * width];
        par_rows_mut(&mut out, width, 1, |r0, block| {
            if r0 == 0 {
                panic!("poisoned worker block");
            }
            fill(r0, block, width);
        });
    });
    let payload = caught.expect_err("worker panic must reach the caller");
    let msg = payload
        .downcast_ref::<&str>()
        .copied()
        .map(str::to_owned)
        .or_else(|| payload.downcast_ref::<String>().cloned())
        .unwrap_or_default();
    assert!(msg.contains("poisoned worker block"), "unexpected payload: {msg}");

    // ...and the pool survives it: same workers, correct results after.
    let out = run_dispatch(rows, width);
    assert_eq!(bits(&serial), bits(&out));
    let s = pool_stats();
    assert_eq!(s.last_dispatch_threads, 4);
    assert_eq!(s.threads_spawned, 6, "panic recovery must not respawn workers");

    // --- Real kernels ride the warm pool bit-identically: matmul at
    // several caps against the cap-1 reference.
    let a = Tensor::randn(&[37, 29], 11);
    let b = Tensor::randn(&[29, 41], 12);
    set_max_threads(1);
    let reference = a.matmul(&b);
    for cap in [2, 4, 7] {
        set_max_threads(cap);
        let got = a.matmul(&b);
        assert_eq!(
            bits(reference.as_slice()),
            bits(got.as_slice()),
            "matmul differs at cap {cap}"
        );
    }

    // Process-lifetime spawn ceiling: never more than the largest
    // cap-1 seen, regardless of how many dispatches ran.
    assert_eq!(pool_stats().threads_spawned, 6);
}
