//! SIMD-vs-scalar bitwise equivalence sweep for the FFT butterfly
//! kernels.
//!
//! `ts3_signal::fft_simd` transcribes the planar `stage_pass` and the
//! block-transposed `row_butterfly` onto AVX2+FMA lanes with the exact
//! scalar operation sequence (the canonical `cmul_fma` rotation becomes
//! one `_mm256_fnmadd_ps` + `_mm256_fmadd_ps` pair per component), so
//! both dispatch modes must produce bit-for-bit identical transforms.
//! One `#[test]` owns the process-global dispatch toggle.

use ts3_signal::complex::Complex32;
use ts3_signal::fft::{convolve_real, fft, ifft, rfft_half};
use ts3_tensor::simd::{avx2_active, set_simd_enabled};

fn cbits(v: &[Complex32]) -> Vec<(u32, u32)> {
    v.iter().map(|z| (z.re.to_bits(), z.im.to_bits())).collect()
}

fn fbits(v: &[f32]) -> Vec<u32> {
    v.iter().map(|f| f.to_bits()).collect()
}

#[test]
fn fft_simd_and_scalar_are_bitwise_identical() {
    set_simd_enabled(true);
    if !avx2_active() {
        eprintln!("simd_fft: no AVX2+FMA on this host, skipping sweep");
        return;
    }
    // Power-of-two sizes cover both planar shapes: n < 128 runs the
    // scalar-unrolled early stages + stage_pass tails, n >= 128 runs
    // the block-transposed row_butterfly path. Non-power-of-two sizes
    // route the same kernels through Bluestein's inner transform.
    for n in [2usize, 8, 16, 32, 64, 128, 256, 1024, 12, 96, 100, 31] {
        let x: Vec<Complex32> = (0..n)
            .map(|i| Complex32::new((i as f32 * 0.29).sin(), (i as f32 * 0.83).cos()))
            .collect();
        set_simd_enabled(false);
        let fwd_scalar = fft(&x);
        let inv_scalar = ifft(&fwd_scalar);
        set_simd_enabled(true);
        let fwd_simd = fft(&x);
        let inv_simd = ifft(&fwd_simd);
        assert_eq!(cbits(&fwd_scalar), cbits(&fwd_simd), "fft diverged at n={n}");
        assert_eq!(cbits(&inv_scalar), cbits(&inv_simd), "ifft diverged at n={n}");
    }
    // Real-input entry points (packed rfft + its convolution consumer).
    for n in [4usize, 16, 96, 256, 1024] {
        let x: Vec<f32> = (0..n).map(|i| (i as f32 * 0.41).sin() + 0.02 * i as f32).collect();
        set_simd_enabled(false);
        let half_scalar = rfft_half(&x);
        set_simd_enabled(true);
        let half_simd = rfft_half(&x);
        assert_eq!(cbits(&half_scalar), cbits(&half_simd), "rfft_half diverged at n={n}");
    }
    let a: Vec<f32> = (0..96).map(|i| (i as f32 * 0.23).cos()).collect();
    let b: Vec<f32> = (0..24).map(|i| (i as f32 * 0.57).sin()).collect();
    set_simd_enabled(false);
    let conv_scalar = convolve_real(&a, &b);
    set_simd_enabled(true);
    let conv_simd = convolve_real(&a, &b);
    assert_eq!(fbits(&conv_scalar), fbits(&conv_simd), "convolve_real diverged");
    set_simd_enabled(true);
}
