//! Integration properties of the continuous wavelet transform engine:
//! ridge tracking, time localisation, adjoint consistency across wavelet
//! kinds and sizes, and inverse-transform quality.

use ts3_rng::rngs::StdRng;
use ts3_rng::{Rng, SeedableRng};
use ts3_signal::{sample_wavelet, scale_set, CwtPlan, WaveletKind};

fn sinusoid(t_len: usize, period: f32, phase: f32) -> Vec<f32> {
    (0..t_len)
        .map(|t| (std::f32::consts::TAU * t as f32 / period + phase).sin())
        .collect()
}

#[test]
fn ridge_frequency_is_monotone_in_signal_frequency() {
    // Sweeping the input period must sweep the argmax sub-band
    // monotonically (higher frequency -> higher band index).
    let plan = CwtPlan::new(128, 12, WaveletKind::ComplexGaussian);
    let band_of = |period: f32| -> usize {
        let amp = plan.amplitude(&sinusoid(128, period, 0.0));
        (0..12)
            .max_by(|&a, &b| {
                let ea: f32 = amp[a * 128..(a + 1) * 128].iter().map(|v| v * v).sum();
                let eb: f32 = amp[b * 128..(b + 1) * 128].iter().map(|v| v * v).sum();
                ea.partial_cmp(&eb).unwrap()
            })
            .unwrap()
    };
    let bands: Vec<usize> = [64.0f32, 32.0, 16.0, 8.0].iter().map(|&p| band_of(p)).collect();
    for w in bands.windows(2) {
        assert!(w[0] <= w[1], "ridge bands not monotone: {bands:?}");
    }
}

#[test]
fn burst_is_localised_in_time() {
    // A Gaussian-windowed burst at t0 must concentrate TF energy near t0.
    let t_len = 128;
    let t0 = 90.0f32;
    let x: Vec<f32> = (0..t_len)
        .map(|t| {
            let d = (t as f32 - t0) / 6.0;
            (-d * d).exp() * (std::f32::consts::TAU * t as f32 / 8.0).sin()
        })
        .collect();
    let plan = CwtPlan::new(t_len, 10, WaveletKind::ComplexGaussian);
    let amp = plan.amplitude(&x);
    // Column-wise total energy.
    let col_energy: Vec<f32> = (0..t_len)
        .map(|t| (0..10).map(|l| amp[l * t_len + t].powi(2)).sum())
        .collect();
    let peak = col_energy
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
        .unwrap()
        .0;
    assert!(
        (peak as f32 - t0).abs() < 12.0,
        "energy peak at {peak}, burst at {t0}"
    );
}

#[test]
fn phase_invariance_of_band_energy() {
    // The order-0 complex Gaussian spans only ~1 carrier cycle, so the
    // pointwise amplitude does wobble with phase; the per-band energy in
    // the interior, however, must be phase-invariant.
    let plan = CwtPlan::new(96, 8, WaveletKind::ComplexGaussian);
    let a = plan.amplitude(&sinusoid(96, 16.0, 0.0));
    let b = plan.amplitude(&sinusoid(96, 16.0, 1.3));
    for l in 0..8 {
        let ea: f32 = (24..72).map(|t| a[l * 96 + t].powi(2)).sum();
        let eb: f32 = (24..72).map(|t| b[l * 96 + t].powi(2)).sum();
        assert!(
            (ea - eb).abs() < 0.2 * ea.max(1.0),
            "band {l}: energy {ea} vs {eb}"
        );
    }
}

#[test]
fn all_wavelet_kinds_have_consistent_adjoints() {
    for kind in WaveletKind::ALL {
        let plan = CwtPlan::new(40, 5, kind);
        let x: Vec<f32> = (0..40).map(|i| ((i * 17 % 13) as f32 - 6.0) * 0.2).collect();
        let n = 5 * 40;
        let g_re: Vec<f32> = (0..n).map(|i| ((i * 5 % 7) as f32 - 3.0) * 0.1).collect();
        let g_im: Vec<f32> = (0..n).map(|i| ((i * 11 % 9) as f32 - 4.0) * 0.1).collect();
        let (y_re, y_im) = plan.forward_complex(&x);
        let lhs: f32 = y_re.iter().zip(&g_re).map(|(a, b)| a * b).sum::<f32>()
            + y_im.iter().zip(&g_im).map(|(a, b)| a * b).sum::<f32>();
        let xt = plan.adjoint(&g_re, &g_im);
        let rhs: f32 = x.iter().zip(&xt).map(|(a, b)| a * b).sum();
        assert!(
            (lhs - rhs).abs() < 2e-2 * lhs.abs().max(1.0),
            "{kind:?}: <Wx,g> = {lhs} but <x,W'g> = {rhs}"
        );
    }
}

#[test]
fn scale_set_spacing_matches_eq6() {
    for lambda in [4usize, 16, 100] {
        let s = scale_set(lambda);
        for (i, &si) in s.iter().enumerate() {
            let want = 2.0 * lambda as f32 / (i + 1) as f32;
            assert!((si - want).abs() < 1e-4);
        }
    }
}

#[test]
fn filter_lengths_grow_with_scale() {
    let mut prev = 0usize;
    for s in [1.0f32, 2.0, 4.0, 8.0, 16.0] {
        let (taps, half) = sample_wavelet(WaveletKind::ComplexGaussian1, s);
        assert_eq!(taps.len(), 2 * half + 1);
        assert!(half > prev);
        prev = half;
    }
}

// The two randomised properties below sweep 8 seeded cases each
// (formerly proptest): deterministic, reproducible, dependency-free.

#[test]
fn inverse_of_forward_tracks_bandlimited_signals() {
    let mut rng = StdRng::seed_from_u64(0xC3A7_0001);
    for case in 0..8 {
        let period = rng.gen_range(10.0f32..40.0);
        let plan = CwtPlan::new(128, 16, WaveletKind::ComplexGaussian);
        let x = sinusoid(128, period, 0.7);
        let (re, _) = plan.forward_complex(&x);
        let y = plan.inverse(&re);
        let err: f32 = x[20..108].iter().zip(&y[20..108]).map(|(a, b)| (a - b).powi(2)).sum();
        let energy: f32 = x[20..108].iter().map(|a| a * a).sum();
        assert!(
            err < 0.5 * energy,
            "case {case}, period {period}: rel err {}",
            err / energy
        );
    }
}

#[test]
fn amplitude_scales_linearly() {
    let mut rng = StdRng::seed_from_u64(0xC3A7_0002);
    for case in 0..8 {
        let gain = rng.gen_range(0.5f32..4.0);
        let plan = CwtPlan::new(64, 6, WaveletKind::ComplexGaussian);
        let x = sinusoid(64, 12.0, 0.0);
        let xs: Vec<f32> = x.iter().map(|v| v * gain).collect();
        let a = plan.amplitude(&x);
        let b = plan.amplitude(&xs);
        for (u, v) in a.iter().zip(&b) {
            assert!(
                (u * gain - v).abs() < 1e-2 * (u * gain).abs().max(0.1),
                "case {case}, gain {gain}"
            );
        }
    }
}
