//! Tie-breaking determinism for top-k period selection.
//!
//! The ordering contract on `topk_periods_from_spectrum` says bins are
//! ranked by descending amplitude with **exact** amplitude ties broken
//! by ascending frequency (longer period wins). These tests pin that
//! contract with spectra containing genuinely equal-magnitude bins —
//! both handcrafted and produced by the real FFT path — and assert the
//! selection is identical across repeat runs and worker-pool thread
//! caps.

use ts3_rng::rngs::StdRng;
use ts3_rng::{Rng, SeedableRng};
use ts3_signal::{topk_periods, topk_periods_from_spectrum, topk_periods_multi, PeriodComponent};
use ts3_tensor::par::set_max_threads;
use ts3_tensor::Tensor;

fn freqs(comps: &[PeriodComponent]) -> Vec<usize> {
    comps.iter().map(|c| c.frequency).collect()
}

#[test]
fn exact_ties_select_ascending_frequency() {
    // Handcrafted periodogram: bins 3, 7 and 12 share the exact same
    // amplitude and everything else is strictly smaller. The contract
    // says the tied bins appear in ascending frequency order.
    let t = 32;
    let mut mean_amp = vec![0.25f32; t / 2 + 1];
    mean_amp[3] = 2.0;
    mean_amp[7] = 2.0;
    mean_amp[12] = 2.0;
    let top = topk_periods_from_spectrum(&mean_amp, t, 3);
    assert_eq!(freqs(&top), vec![3, 7, 12]);
    // A partial take of a tied group keeps the same prefix.
    let top2 = topk_periods_from_spectrum(&mean_amp, t, 2);
    assert_eq!(freqs(&top2), vec![3, 7]);
    // Ties below a strictly larger bin keep it on top.
    mean_amp[5] = 3.0;
    let top3 = topk_periods_from_spectrum(&mean_amp, t, 3);
    assert_eq!(freqs(&top3), vec![5, 3, 7]);
}

#[test]
fn impulse_spectrum_ties_every_bin_through_the_real_fft() {
    // A unit impulse at sample 0 has |X_f| = 1 exactly for every bin —
    // an all-way tie produced by the actual rfft, not by construction.
    // Selection must walk bins in ascending frequency.
    let t = 64;
    let mut x = vec![0.0f32; t];
    x[0] = 1.0;
    let top = topk_periods(&x, 5);
    assert_eq!(freqs(&top), vec![1, 2, 3, 4, 5]);
    assert_eq!(top[0].period, t); // f = 1 -> the longest period wins
    for pair in top.windows(2) {
        assert_eq!(
            pair[0].amplitude.to_bits(),
            pair[1].amplitude.to_bits(),
            "impulse bins must tie exactly"
        );
    }
}

#[test]
fn tied_selection_is_stable_across_runs_and_thread_caps() {
    // Seeded multichannel input plus an injected exact tie: the full
    // component list (frequency, period, amplitude bits) must be
    // identical run-to-run and at 1 vs 4 worker threads.
    let t = 96;
    let c = 3;
    let select = || -> Vec<(usize, usize, u32)> {
        let mut rng = StdRng::seed_from_u64(4242);
        let mut data = vec![0.0f32; t * c];
        for v in data.iter_mut() {
            *v = rng.gen::<f32>() - 0.5;
        }
        // Two pure tones, equal power, in disjoint channels: their mean
        // amplitudes collide exactly only if the arithmetic is
        // deterministic, which is exactly what we want to observe.
        for i in 0..t {
            let phase = std::f32::consts::TAU * i as f32;
            data[i * c] += (phase * 4.0 / t as f32).sin() * 5.0;
            data[i * c + 1] += (phase * 4.0 / t as f32).sin() * 5.0;
        }
        let x = Tensor::from_vec(data, &[t, c]);
        topk_periods_multi(&x, 8)
            .into_iter()
            .map(|p| (p.frequency, p.period, p.amplitude.to_bits()))
            .collect()
    };
    set_max_threads(1);
    let a = select();
    let b = select();
    set_max_threads(4);
    let c1 = select();
    set_max_threads(1);
    assert_eq!(a, b, "repeat runs diverged");
    assert_eq!(a, c1, "thread cap changed the selection");
    assert_eq!(a[0].0, 4, "the injected tone must dominate");
}
