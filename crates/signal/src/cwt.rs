//! Continuous wavelet transform (paper Eq. 5–8), its adjoint (used for
//! back-propagation through the fixed wavelet filter bank), and a linear
//! inverse transform `IWT` (Eq. 9).
//!
//! All transforms are FFT convolutions, planned **per scale**: each
//! scale `i` uses the smallest power-of-two length `m_i >= T + N_i`
//! that keeps its *consumed* output window alias-free, not the largest
//! scale's full linear-convolution length. Every consumer reads only
//! the "same"-aligned window `[N_i, N_i + T)` of the convolution, and
//! cyclic wraparound at length `m >= T + N` folds `linear[j + m]` only
//! onto `j < N` — outside the window — so the shorter transform is
//! exact where it is read (taps longer than `m` fold mod `m` at plan
//! build, which the same argument covers). The taps shrink rapidly
//! with `i` (`N_i = O(lambda / i)`), so most of the bank runs at a
//! half or a quarter of the worst-case FFT length — the bulk of the
//! former `O(lambda * T_max log T_max)` cost. The signal
//! spectrum is computed once per distinct length (scales are ordered,
//! so each length is a contiguous run) through the packed real-input
//! transform ([`crate::fft::RealPlan`] — half-size complex FFT plus
//! conjugate mirror), and every scale is then a pointwise product plus
//! one inverse FFT at its own length.
//!
//! The plan holds the cached FFT plans for each length and runs every
//! scale through reusable per-thread scratch buffers, so a warm
//! `forward_complex`/`adjoint` call performs no per-scale allocation
//! and no per-call twiddle recomputation.

use std::cell::RefCell;
use std::sync::Arc;

use crate::complex::Complex32;
use crate::fft::{next_pow2, plan_for, real_plan_for, Plan, RealPlan};
use crate::wavelet::{sample_wavelet, scale_set, WaveletKind};
use ts3_tensor::Tensor;

thread_local! {
    /// Per-thread `(signal spectrum, per-scale product, real padding)`
    /// scratch shared by all CWT plans on this thread; every element is
    /// overwritten before use, so reuse across plans/calls cannot leak
    /// state.
    static CWT_SCRATCH: RefCell<(Vec<Complex32>, Vec<Complex32>, Vec<f32>)> =
        const { RefCell::new((Vec::new(), Vec::new(), Vec::new())) };
}

/// Precomputed CWT plan for a fixed `(series length, lambda, wavelet)`.
pub struct CwtPlan {
    /// Series length `T`.
    pub t_len: usize,
    /// Number of spectral sub-bands (the paper's hyper-parameter lambda).
    pub lambda: usize,
    /// Wavelet generating function used by this plan.
    pub kind: WaveletKind,
    /// Scale factors `s_i = 2 lambda / i`.
    pub scales: Vec<f32>,
    /// Half filter length `N_i` per scale.
    half: Vec<usize>,
    /// Per-scale FFT length (power of two covering `T + 2 N_i`).
    /// Non-increasing in `i` — the taps shrink with the scale — so
    /// equal lengths form contiguous runs.
    fft_lens: Vec<usize>,
    /// Per scale: FFT of the *reversed* conjugated taps (for forward
    /// correlation), at that scale's FFT length.
    filt_fwd: Vec<Vec<Complex32>>,
    /// Per scale: FFT of the conjugated taps as-is (for the adjoint).
    filt_adj: Vec<Vec<Complex32>>,
    /// Reconstruction weights for the inverse transform, including the
    /// empirically calibrated admissibility constant.
    recon: Vec<f32>,
    /// Per-scale cached complex FFT plans (shared with every other user
    /// of each size through [`plan_for`]).
    plans: Vec<Arc<Plan>>,
    /// Per-scale cached real-input plans for the forward signal
    /// spectrum.
    rplans: Vec<Arc<RealPlan>>,
}

impl CwtPlan {
    /// Build a plan for series of length `t_len` with `lambda` sub-bands.
    pub fn new(t_len: usize, lambda: usize, kind: WaveletKind) -> Self {
        assert!(t_len >= 2, "CwtPlan: series length must be >= 2");
        assert!(lambda >= 1, "CwtPlan: lambda must be >= 1");
        let scales = scale_set(lambda);
        let mut half = Vec::with_capacity(lambda);
        let mut taps_all = Vec::with_capacity(lambda);
        for &s in &scales {
            let (taps, n) = sample_wavelet(kind, s);
            half.push(n);
            taps_all.push(taps);
        }
        // Per-scale FFT lengths: the smallest power of two with the
        // consumed window `[N, N + T)` alias-free under cyclic
        // convolution (see the module docs) — each scale pays for its
        // own support, and only the half of it the outputs depend on.
        let fft_lens: Vec<usize> = half.iter().map(|&n| next_pow2(t_len + n)).collect();
        let plans: Vec<Arc<Plan>> = fft_lens.iter().map(|&m| plan_for(m)).collect();
        let rplans: Vec<Arc<RealPlan>> = fft_lens.iter().map(|&m| real_plan_for(m)).collect();
        let mut filt_fwd = Vec::with_capacity(lambda);
        let mut filt_adj = Vec::with_capacity(lambda);
        for (i, taps) in taps_all.iter().enumerate() {
            let m = fft_lens[i];
            let fft = &plans[i];
            // Forward: correlation with c = conj(psi) (Eq. 5 uses the
            // conjugate), implemented as linear convolution with the
            // reversed taps.
            let c: Vec<Complex32> = taps.iter().map(|z| z.conj()).collect();
            // Taps may exceed the scale's FFT length for the widest
            // scales (2N+1 > m); folding them mod m is exactly the
            // cyclic-convolution identity the length bound relies on.
            let mut rev = vec![Complex32::ZERO; m];
            for (j, &v) in c.iter().rev().enumerate() {
                rev[j % m] += v;
            }
            fft.fft_inplace(&mut rev, false);
            filt_fwd.push(rev);
            // Adjoint: out[k] = Re( linconv(g_re + i g_im, conj(c))[k+N] ),
            // and conj(c) is the original (unconjugated) wavelet taps.
            let mut fwd = vec![Complex32::ZERO; m];
            for (j, &v) in taps.iter().enumerate() {
                fwd[j % m] += v;
            }
            fft.fft_inplace(&mut fwd, false);
            filt_adj.push(fwd);
        }
        // Inverse-transform weights: delta-s_i / s_i^{3/2}, then calibrate
        // the global admissibility constant against a broadband reference
        // so that IWT(Re(WT(x))) ~= x.
        let mut recon: Vec<f32> = (0..lambda)
            .map(|i| {
                let ds = if i + 1 < lambda {
                    scales[i] - scales[i + 1]
                } else {
                    scales[i] - scales[i] / 2.0
                };
                ds / scales[i].powf(1.5)
            })
            .collect();
        let mut plan = CwtPlan {
            t_len,
            lambda,
            kind,
            scales,
            half,
            fft_lens,
            filt_fwd,
            filt_adj,
            recon: recon.clone(),
            plans,
            rplans,
        };
        let c = plan.calibrate_reconstruction();
        for w in recon.iter_mut() {
            *w *= c;
        }
        plan.recon = recon;
        plan
    }

    /// Least-squares calibration of the reconstruction constant using a
    /// deterministic broadband reference signal.
    fn calibrate_reconstruction(&self) -> f32 {
        let t = self.t_len;
        // Deterministic pseudo-broadband reference: a sum of incommensurate
        // sinusoids spanning the analysed band.
        let x: Vec<f32> = (0..t)
            .map(|i| {
                let ti = i as f32;
                (0.37 * ti).sin() + 0.7 * (0.11 * ti + 1.0).sin() + 0.5 * (0.73 * ti + 2.0).sin()
            })
            .collect();
        let (re, _im) = self.forward_complex(&x);
        let y = self.inverse_raw(&re, &self.recon_unit());
        let xy: f32 = x.iter().zip(&y).map(|(a, b)| a * b).sum();
        let yy: f32 = y.iter().map(|b| b * b).sum();
        if yy > 1e-12 {
            xy / yy
        } else {
            1.0
        }
    }

    fn recon_unit(&self) -> Vec<f32> {
        (0..self.lambda)
            .map(|i| {
                let ds = if i + 1 < self.lambda {
                    self.scales[i] - self.scales[i + 1]
                } else {
                    self.scales[i] - self.scales[i] / 2.0
                };
                ds / self.scales[i].powf(1.5)
            })
            .collect()
    }

    /// Frequencies `F_i = F_c / s_i` of each sub-band given the wavelet's
    /// central frequency.
    pub fn band_frequencies(&self, f_c: f32) -> Vec<f32> {
        self.scales.iter().map(|&s| f_c / s).collect()
    }

    /// Run one filter bank over a real signal, handing each scale's
    /// "same"-aligned output row to `sink(scale, row)`. The signal
    /// spectrum is computed once per distinct FFT length (through the
    /// packed real-input transform plus conjugate mirror) and every
    /// scale reuses per-thread buffers — a warm call allocates nothing.
    fn apply_bank_into(
        &self,
        x: &[f32],
        bank: &[Vec<Complex32>],
        mut sink: impl FnMut(usize, &[Complex32]),
    ) {
        assert_eq!(x.len(), self.t_len, "apply_bank: signal length mismatch");
        CWT_SCRATCH.with(|cell| {
            let mut scratch = cell.borrow_mut();
            let (spec, prod, pad) = &mut *scratch;
            let mut cur_len = 0usize;
            for (i, filt) in bank.iter().enumerate() {
                let m = self.fft_lens[i];
                if m != cur_len {
                    // New length run: real-input transform of the
                    // zero-padded signal, mirrored to the full spectrum
                    // (the filters are complex, so products need all
                    // `m` bins).
                    pad.clear();
                    pad.resize(m, 0.0);
                    pad[..self.t_len].copy_from_slice(x);
                    self.rplans[i].forward_full_into(pad, spec);
                    cur_len = m;
                }
                // Every element of `prod[..m]` is overwritten before the
                // transform, so the buffer reuse cannot leak state.
                prod.resize(m, Complex32::ZERO);
                for ((dst, &a), &b) in prod.iter_mut().zip(spec.iter()).zip(filt) {
                    *dst = a * b;
                }
                self.plans[i].fft_inplace(prod, true);
                // The taps occupy 2N+1 slots; "same" alignment starts at N.
                let n = self.half[i];
                // For the reversed filter the peak is at index 2N - N = N as
                // well (taps are symmetric in length), so both orientations
                // share the offset.
                sink(i, &prod[n..n + self.t_len]);
            }
        });
    }

    /// Open a kernel span for one CWT entry point, tagged with the plan
    /// geometry, and bump the per-entry call counter.
    fn cwt_obs(&self, name: &'static str, counter: &'static str) -> ts3_obs::Span {
        let mut s = ts3_obs::span(name);
        if s.active() {
            s.field("t_len", self.t_len);
            s.field("lambda", self.lambda);
            ts3_obs::counter_add(counter, 1);
        }
        s
    }

    /// Forward CWT of a real signal: returns `(re, im)` each of length
    /// `lambda * T` (row i = sub-band i).
    pub fn forward_complex(&self, x: &[f32]) -> (Vec<f32>, Vec<f32>) {
        let _s = self.cwt_obs("signal.cwt.forward", "signal.cwt.forward.calls");
        let mut re = Vec::with_capacity(self.lambda * self.t_len);
        let mut im = Vec::with_capacity(self.lambda * self.t_len);
        self.apply_bank_into(x, &self.filt_fwd, |_, row| {
            for z in row {
                re.push(z.re);
                im.push(z.im);
            }
        });
        (re, im)
    }

    /// Adjoint of [`CwtPlan::forward_complex`]: maps cotangents
    /// `(g_re, g_im)` of shape `lambda * T` back to a length-`T` cotangent
    /// of the input signal. Satisfies
    /// `<forward(x), (g_re, g_im)> == <x, adjoint(g_re, g_im)>`.
    pub fn adjoint(&self, g_re: &[f32], g_im: &[f32]) -> Vec<f32> {
        let _s = self.cwt_obs("signal.cwt.adjoint", "signal.cwt.adjoint.calls");
        assert_eq!(g_re.len(), self.lambda * self.t_len);
        assert_eq!(g_im.len(), self.lambda * self.t_len);
        let mut out = vec![0.0f32; self.t_len];
        CWT_SCRATCH.with(|cell| {
            let mut scratch = cell.borrow_mut();
            let (spec, _, _) = &mut *scratch;
            for i in 0..self.lambda {
                // Forward was y_re = corr(x, Re c), y_im = corr(x, Im c) with
                // c = conj(psi), so the adjoint is
                //   out[k] = sum_b g_re[b] Re(c[k-b+N]) + g_im[b] Im(c[k-b+N])
                //          = Re( linconv(g_re + i g_im, conj(c))[k + N] )
                // and conj(c) = psi, whose causal-tap FFT is `filt_adj`.
                // The cotangent rows are genuinely complex, so this path
                // stays on the complex transform — at each scale's own
                // FFT length.
                let row_re = &g_re[i * self.t_len..(i + 1) * self.t_len];
                let row_im = &g_im[i * self.t_len..(i + 1) * self.t_len];
                spec.clear();
                spec.resize(self.fft_lens[i], Complex32::ZERO);
                for (dst, (&a, &b)) in spec.iter_mut().zip(row_re.iter().zip(row_im)) {
                    *dst = Complex32::new(a, b);
                }
                self.plans[i].fft_inplace(spec, false);
                for (a, &b) in spec.iter_mut().zip(&self.filt_adj[i]) {
                    *a *= b;
                }
                self.plans[i].fft_inplace(spec, true);
                let n = self.half[i];
                for (k, dst) in out.iter_mut().enumerate() {
                    *dst += spec[k + n].re;
                }
            }
        });
        out
    }

    /// Amplitude TF distribution `Amp(WT(x))` (Eq. 7): `lambda * T` values,
    /// row-major `[lambda, T]`.
    pub fn amplitude(&self, x: &[f32]) -> Vec<f32> {
        let _s = self.cwt_obs("signal.cwt.forward", "signal.cwt.forward.calls");
        let mut amp = Vec::with_capacity(self.lambda * self.t_len);
        // Streams straight off the convolution rows instead of routing
        // through `forward_complex`'s split re/im buffers; the fused
        // `sqrt(re^2 + im^2)` matches the magnitude the model path
        // (`cwt_amp`) computes and vectorizes where `hypot` cannot.
        self.apply_bank_into(x, &self.filt_fwd, |_, row| {
            amp.extend(row.iter().map(|z| z.im.mul_add(z.im, z.re * z.re).sqrt()));
        });
        amp
    }

    /// Linear inverse transform of a real `[lambda, T]` coefficient grid
    /// (Eq. 9's `IWT`): weighted sum across scales with calibrated
    /// admissibility constant.
    pub fn inverse(&self, w: &[f32]) -> Vec<f32> {
        let _s = self.cwt_obs("signal.cwt.inverse", "signal.cwt.inverse.calls");
        self.inverse_raw(w, &self.recon)
    }

    fn inverse_raw(&self, w: &[f32], weights: &[f32]) -> Vec<f32> {
        assert_eq!(w.len(), self.lambda * self.t_len, "inverse: coefficient grid mismatch");
        // Fixed-width array views + `mul_add`, the workspace's reliable
        // vectorisation idiom (see crates/signal/src/fft.rs): one fused
        // multiply-add per accumulation step, packed lanes guaranteed.
        const LANES: usize = 16;
        let mut out = vec![0.0f32; self.t_len];
        for i in 0..self.lambda {
            let wi = weights[i];
            let row = &w[i * self.t_len..(i + 1) * self.t_len];
            let mut j = 0;
            while j + LANES <= self.t_len {
                // ts3-lint: allow(no-unwrap-in-lib) slice length is exactly LANES by the loop stride; conversion cannot fail
                let d: &mut [f32; LANES] = (&mut out[j..j + LANES]).try_into().unwrap();
                // ts3-lint: allow(no-unwrap-in-lib) slice length is exactly LANES by the loop stride; conversion cannot fail
                let s: &[f32; LANES] = (&row[j..j + LANES]).try_into().unwrap();
                for l in 0..LANES {
                    d[l] = s[l].mul_add(wi, d[l]);
                }
                j += LANES;
            }
            for (dst, &v) in out[j..].iter_mut().zip(&row[j..]) {
                *dst = v.mul_add(wi, *dst);
            }
        }
        out
    }

    /// Adjoint of [`CwtPlan::inverse`]: maps a length-`T` cotangent to a
    /// `[lambda, T]` cotangent (each row scaled by its weight).
    pub fn inverse_adjoint(&self, g: &[f32]) -> Vec<f32> {
        assert_eq!(g.len(), self.t_len, "inverse_adjoint: length mismatch");
        let mut out = Vec::with_capacity(self.lambda * self.t_len);
        for i in 0..self.lambda {
            let wi = self.recon[i];
            out.extend(g.iter().map(|&v| wi * v));
        }
        out
    }

    /// Convenience: amplitude TF tensor of shape `[lambda, T]`.
    pub fn amplitude_tensor(&self, x: &[f32]) -> Tensor {
        Tensor::from_vec(self.amplitude(x), &[self.lambda, self.t_len])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sinusoid(t_len: usize, period: f32) -> Vec<f32> {
        (0..t_len)
            .map(|t| (2.0 * std::f32::consts::PI * t as f32 / period).sin())
            .collect()
    }

    #[test]
    fn amplitude_shape_and_finiteness() {
        let plan = CwtPlan::new(96, 8, WaveletKind::ComplexGaussian);
        let x = sinusoid(96, 24.0);
        let amp = plan.amplitude_tensor(&x);
        assert_eq!(amp.shape(), &[8, 96]);
        assert!(amp.all_finite());
        assert!(amp.max() > 0.0);
    }

    #[test]
    fn warm_calls_are_byte_identical() {
        // Scratch/plan reuse must not perturb results: repeated forward
        // and adjoint calls on a warm plan return identical bytes, and
        // a second plan of the same geometry agrees with the first.
        let plan = CwtPlan::new(96, 8, WaveletKind::ComplexGaussian);
        let x = sinusoid(96, 18.0);
        let g: Vec<f32> = (0..8 * 96).map(|i| ((i * 11 + 3) as f32 * 0.07).sin()).collect();
        let bits = |v: &[f32]| v.iter().map(|f| f.to_bits()).collect::<Vec<_>>();
        let (re0, im0) = plan.forward_complex(&x);
        let adj0 = plan.adjoint(&g, &g);
        for _ in 0..3 {
            let (re, im) = plan.forward_complex(&x);
            assert_eq!(bits(&re0), bits(&re));
            assert_eq!(bits(&im0), bits(&im));
            assert_eq!(bits(&adj0), bits(&plan.adjoint(&g, &g)));
        }
        let plan2 = CwtPlan::new(96, 8, WaveletKind::ComplexGaussian);
        let (re2, _) = plan2.forward_complex(&x);
        assert_eq!(bits(&re0), bits(&re2));
    }

    #[test]
    fn cwt_localises_frequency() {
        // A low-frequency sinusoid must put most energy into low-frequency
        // rows (small i <-> large scale <-> low F_i), and a high-frequency
        // one into high-frequency rows.
        let plan = CwtPlan::new(128, 12, WaveletKind::ComplexGaussian);
        let energy_profile = |x: &[f32]| -> Vec<f32> {
            let amp = plan.amplitude(x);
            (0..plan.lambda)
                .map(|i| amp[i * 128..(i + 1) * 128].iter().map(|v| v * v).sum::<f32>())
                .collect()
        };
        let low = energy_profile(&sinusoid(128, 64.0));
        let high = energy_profile(&sinusoid(128, 6.0));
        let argmax = |v: &[f32]| {
            v.iter()
                .enumerate()
                .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
                .unwrap()
                .0
        };
        assert!(argmax(&low) < argmax(&high), "low {low:?}\nhigh {high:?}");
    }

    #[test]
    fn cwt_is_linear() {
        let plan = CwtPlan::new(64, 6, WaveletKind::ComplexGaussian);
        let a = sinusoid(64, 10.0);
        let b = sinusoid(64, 23.0);
        let sum: Vec<f32> = a.iter().zip(&b).map(|(x, y)| x + y).collect();
        let (ra, ia) = plan.forward_complex(&a);
        let (rb, ib) = plan.forward_complex(&b);
        let (rs, is) = plan.forward_complex(&sum);
        for i in 0..ra.len() {
            assert!((ra[i] + rb[i] - rs[i]).abs() < 1e-3);
            assert!((ia[i] + ib[i] - is[i]).abs() < 1e-3);
        }
    }

    #[test]
    fn adjoint_matches_transpose() {
        // <W x, g> == <x, W^T g> for arbitrary x, g.
        let plan = CwtPlan::new(48, 5, WaveletKind::ComplexGaussian);
        let x: Vec<f32> = (0..48).map(|i| ((i * 13 % 7) as f32 - 3.0) * 0.3).collect();
        let n = plan.lambda * plan.t_len;
        let g_re: Vec<f32> = (0..n).map(|i| ((i * 7 % 11) as f32 - 5.0) * 0.1).collect();
        let g_im: Vec<f32> = (0..n).map(|i| ((i * 3 % 13) as f32 - 6.0) * 0.1).collect();
        let (y_re, y_im) = plan.forward_complex(&x);
        let lhs: f32 = y_re.iter().zip(&g_re).map(|(a, b)| a * b).sum::<f32>()
            + y_im.iter().zip(&g_im).map(|(a, b)| a * b).sum::<f32>();
        let xt = plan.adjoint(&g_re, &g_im);
        let rhs: f32 = x.iter().zip(&xt).map(|(a, b)| a * b).sum();
        assert!(
            (lhs - rhs).abs() < 1e-2 * lhs.abs().max(1.0),
            "lhs {lhs} rhs {rhs}"
        );
    }

    #[test]
    fn inverse_reconstructs_bandlimited_signal() {
        let plan = CwtPlan::new(128, 16, WaveletKind::ComplexGaussian);
        let x = sinusoid(128, 20.0);
        let (re, _) = plan.forward_complex(&x);
        let y = plan.inverse(&re);
        // Compare on the interior (boundary effects at the edges).
        let err: f32 = x[16..112]
            .iter()
            .zip(&y[16..112])
            .map(|(a, b)| (a - b) * (a - b))
            .sum::<f32>()
            / 96.0;
        let energy: f32 = x[16..112].iter().map(|a| a * a).sum::<f32>() / 96.0;
        assert!(err < 0.35 * energy, "relative error {} too large", err / energy);
    }

    #[test]
    fn inverse_adjoint_matches_transpose() {
        let plan = CwtPlan::new(32, 4, WaveletKind::ComplexGaussian);
        let w: Vec<f32> = (0..128).map(|i| (i as f32 * 0.17).sin()).collect();
        let g: Vec<f32> = (0..32).map(|i| (i as f32 * 0.31).cos()).collect();
        let lhs: f32 = plan.inverse(&w).iter().zip(&g).map(|(a, b)| a * b).sum();
        let rhs: f32 = w
            .iter()
            .zip(plan.inverse_adjoint(&g).iter())
            .map(|(a, b)| a * b)
            .sum();
        assert!((lhs - rhs).abs() < 1e-3 * lhs.abs().max(1.0));
    }

    #[test]
    fn band_frequencies_increase_with_index() {
        let plan = CwtPlan::new(64, 8, WaveletKind::ComplexGaussian);
        let f = plan.band_frequencies(0.16);
        for w in f.windows(2) {
            assert!(w[0] < w[1]);
        }
    }

    #[test]
    fn different_wavelets_give_different_distributions() {
        let x = sinusoid(64, 16.0);
        let a = CwtPlan::new(64, 6, WaveletKind::ComplexGaussian).amplitude(&x);
        let b = CwtPlan::new(64, 6, WaveletKind::ComplexGaussian1).amplitude(&x);
        let diff: f32 = a.iter().zip(&b).map(|(x, y)| (x - y).abs()).sum();
        assert!(diff > 1e-2);
    }
}
