//! FFT-based multi-periodicity detection (paper Eq. 2): the top-k
//! frequencies by amplitude and their implied period lengths
//! `p_i = ceil(T / f_i)`.

use crate::fft::rfft;
use ts3_tensor::Tensor;

/// One detected periodic component.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PeriodComponent {
    /// Frequency index `f` in `1..=T/2` (cycles per window).
    pub frequency: usize,
    /// Implied period length `ceil(T / f)` in samples.
    pub period: usize,
    /// Mean amplitude of that frequency bin across channels.
    pub amplitude: f32,
}

/// Top-k dominant periods of a univariate series (Eq. 2).
pub fn topk_periods(x: &[f32], k: usize) -> Vec<PeriodComponent> {
    topk_periods_multi(&Tensor::from_vec(x.to_vec(), &[x.len(), 1]), k)
}

/// Top-k dominant periods of a multivariate `[T, C]` series; amplitudes
/// are averaged across channels (the TimesNet convention the paper
/// follows).
pub fn topk_periods_multi(x: &Tensor, k: usize) -> Vec<PeriodComponent> {
    assert_eq!(x.rank(), 2, "topk_periods_multi expects [T, C]");
    let (t, c) = (x.shape()[0], x.shape()[1]);
    assert!(t >= 4, "series too short for period detection");
    let half = t / 2;
    let mut mean_amp = vec![0.0f32; half + 1];
    for ch in 0..c {
        let col: Vec<f32> = (0..t).map(|i| x.at(&[i, ch])).collect();
        let spec = rfft(&col);
        for (f, dst) in mean_amp.iter_mut().enumerate().take(half + 1) {
            *dst += spec[f].abs() / c as f32;
        }
    }
    // Exclude DC (f = 0): the trend part carries it.
    let mut bins: Vec<(usize, f32)> = (1..=half).map(|f| (f, mean_amp[f])).collect();
    bins.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
    bins.truncate(k);
    bins.into_iter()
        .map(|(f, amplitude)| PeriodComponent {
            frequency: f,
            period: t.div_ceil(f),
            amplitude,
        })
        .collect()
}

/// The single dominant period (`p_1` / the paper's `T_f`), falling back to
/// `t/2` if the spectrum is degenerate (e.g. all-zero input).
pub fn dominant_period(x: &Tensor) -> usize {
    let comps = topk_periods_multi(x, 1);
    let t = x.shape()[0];
    match comps.first() {
        Some(c) if c.amplitude > 1e-12 => c.period.clamp(2, t),
        _ => (t / 2).max(2),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sin_series(t: usize, period: usize) -> Vec<f32> {
        (0..t)
            .map(|i| (2.0 * std::f32::consts::PI * i as f32 / period as f32).sin())
            .collect()
    }

    #[test]
    fn detects_single_period() {
        let x = sin_series(96, 24);
        let p = topk_periods(&x, 1);
        assert_eq!(p[0].frequency, 4); // 96 / 24
        assert_eq!(p[0].period, 24);
    }

    #[test]
    fn detects_two_mixed_periods() {
        let t = 96;
        let a = sin_series(t, 24);
        let b = sin_series(t, 8);
        let x: Vec<f32> = a.iter().zip(&b).map(|(u, v)| 2.0 * u + v).collect();
        let p = topk_periods(&x, 2);
        let periods: Vec<usize> = p.iter().map(|c| c.period).collect();
        assert!(periods.contains(&24), "{periods:?}");
        assert!(periods.contains(&8), "{periods:?}");
        // The stronger component must rank first.
        assert_eq!(p[0].period, 24);
    }

    #[test]
    fn multichannel_averages_amplitudes() {
        let t = 64;
        let mut data = Vec::new();
        for i in 0..t {
            data.push((2.0 * std::f32::consts::PI * i as f32 / 16.0).sin()); // ch 0
            data.push((2.0 * std::f32::consts::PI * i as f32 / 16.0).cos()); // ch 1
        }
        let x = Tensor::from_vec(data, &[t, 2]);
        let p = topk_periods_multi(&x, 1);
        assert_eq!(p[0].period, 16);
    }

    #[test]
    fn dc_offset_is_ignored() {
        let x: Vec<f32> = sin_series(64, 16).iter().map(|v| v + 100.0).collect();
        let p = topk_periods(&x, 1);
        assert_eq!(p[0].period, 16);
    }

    #[test]
    fn dominant_period_fallback_on_flat_series() {
        let x = Tensor::zeros(&[32, 1]);
        assert_eq!(dominant_period(&x), 16);
    }

    #[test]
    fn period_formula_is_ceiling() {
        // T = 10, f = 3 -> p = ceil(10/3) = 4.
        let t = 10;
        let x: Vec<f32> = (0..t)
            .map(|i| (2.0 * std::f32::consts::PI * 3.0 * i as f32 / t as f32).sin())
            .collect();
        let p = topk_periods(&x, 1);
        assert_eq!(p[0].frequency, 3);
        assert_eq!(p[0].period, 4);
    }

    #[test]
    fn k_larger_than_bins_is_truncated() {
        let x = sin_series(16, 4);
        let p = topk_periods(&x, 100);
        assert_eq!(p.len(), 8); // T/2 bins
    }
}
