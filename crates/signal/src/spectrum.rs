//! FFT-based multi-periodicity detection (paper Eq. 2): the top-k
//! frequencies by amplitude and their implied period lengths
//! `p_i = ceil(T / f_i)`.

use crate::fft::rfft_half;
use ts3_tensor::Tensor;

/// One detected periodic component.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PeriodComponent {
    /// Frequency index `f` in `1..=T/2` (cycles per window).
    pub frequency: usize,
    /// Implied period length `ceil(T / f)` in samples.
    pub period: usize,
    /// Mean amplitude of that frequency bin across channels.
    pub amplitude: f32,
}

/// Top-k dominant periods of a univariate series (Eq. 2).
pub fn topk_periods(x: &[f32], k: usize) -> Vec<PeriodComponent> {
    topk_periods_multi(&Tensor::from_vec(x.to_vec(), &[x.len(), 1]), k)
}

/// Accumulate one channel's amplitude spectrum into a channel-mean
/// periodogram: `mean_amp[f] += |rfft(col)[f]| / c`.
///
/// Shared by the batch tensor path and the streaming crate so both
/// compute the mean periodogram with the *same* arithmetic in the same
/// order — a prerequisite for the bitwise batch/stream equivalence
/// contract. `mean_amp` must have `col.len() / 2 + 1` entries and the
/// caller accumulates channels in ascending order.
pub fn accumulate_channel_amplitude(col: &[f32], c: usize, mean_amp: &mut [f32]) {
    let half = col.len() / 2;
    assert_eq!(mean_amp.len(), half + 1, "periodogram length mismatch");
    // Only bins 0..=T/2 are consumed, so the packed half-spectrum
    // transform suffices — half the FFT work of the former full rfft.
    let spec = rfft_half(col);
    for (f, dst) in mean_amp.iter_mut().enumerate().take(half + 1) {
        *dst += spec[f].abs() / c as f32;
    }
}

/// Channel-mean amplitude spectrum of a `[T, C]` series: bins `0..=T/2`.
pub fn mean_amplitude_spectrum(x: &Tensor) -> Vec<f32> {
    assert_eq!(x.rank(), 2, "mean_amplitude_spectrum expects [T, C]");
    let (t, c) = (x.shape()[0], x.shape()[1]);
    let half = t / 2;
    let mut mean_amp = vec![0.0f32; half + 1];
    for ch in 0..c {
        let col: Vec<f32> = (0..t).map(|i| x.at(&[i, ch])).collect();
        accumulate_channel_amplitude(&col, c, &mut mean_amp);
    }
    mean_amp
}

/// Select the top-k periods from a precomputed channel-mean amplitude
/// spectrum (`mean_amp[f]` for `f in 0..=T/2`, as produced by
/// [`mean_amplitude_spectrum`] or a sliding-DFT monitor).
///
/// Ordering contract: bins are ranked by **descending amplitude**, and
/// bins with exactly equal amplitude by **ascending frequency** — lower
/// frequency (longer period) wins a tie. The tie-break is explicit (not
/// an artifact of sort stability), so the selection is a pure function
/// of the spectrum values: deterministic across thread counts, repeat
/// runs, and the batch/streaming implementations.
pub fn topk_periods_from_spectrum(mean_amp: &[f32], t: usize, k: usize) -> Vec<PeriodComponent> {
    let half = t / 2;
    assert_eq!(mean_amp.len(), half + 1, "periodogram length mismatch");
    // Exclude DC (f = 0): the trend part carries it.
    let mut bins: Vec<(usize, f32)> = (1..=half).map(|f| (f, mean_amp[f])).collect();
    bins.sort_by(|a, b| {
        b.1.partial_cmp(&a.1)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then_with(|| a.0.cmp(&b.0))
    });
    bins.truncate(k);
    bins.into_iter()
        .map(|(f, amplitude)| PeriodComponent {
            frequency: f,
            period: t.div_ceil(f),
            amplitude,
        })
        .collect()
}

/// Top-k dominant periods of a multivariate `[T, C]` series; amplitudes
/// are averaged across channels (the TimesNet convention the paper
/// follows). Tie-breaking is documented on
/// [`topk_periods_from_spectrum`].
pub fn topk_periods_multi(x: &Tensor, k: usize) -> Vec<PeriodComponent> {
    assert_eq!(x.rank(), 2, "topk_periods_multi expects [T, C]");
    let t = x.shape()[0];
    assert!(t >= 4, "series too short for period detection");
    topk_periods_from_spectrum(&mean_amplitude_spectrum(x), t, k)
}

/// Dominant-period selection from a precomputed spectrum: top-1 of
/// [`topk_periods_from_spectrum`] clamped to `[2, t]`, falling back to
/// `t/2` when the spectrum is degenerate (e.g. all-zero input).
pub fn dominant_period_from_spectrum(mean_amp: &[f32], t: usize) -> usize {
    let comps = topk_periods_from_spectrum(mean_amp, t, 1);
    match comps.first() {
        Some(c) if c.amplitude > 1e-12 => c.period.clamp(2, t),
        _ => (t / 2).max(2),
    }
}

/// The single dominant period (`p_1` / the paper's `T_f`), falling back to
/// `t/2` if the spectrum is degenerate (e.g. all-zero input).
pub fn dominant_period(x: &Tensor) -> usize {
    assert_eq!(x.rank(), 2, "dominant_period expects [T, C]");
    let t = x.shape()[0];
    assert!(t >= 4, "series too short for period detection");
    dominant_period_from_spectrum(&mean_amplitude_spectrum(x), t)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sin_series(t: usize, period: usize) -> Vec<f32> {
        (0..t)
            .map(|i| (2.0 * std::f32::consts::PI * i as f32 / period as f32).sin())
            .collect()
    }

    #[test]
    fn detects_single_period() {
        let x = sin_series(96, 24);
        let p = topk_periods(&x, 1);
        assert_eq!(p[0].frequency, 4); // 96 / 24
        assert_eq!(p[0].period, 24);
    }

    #[test]
    fn detects_two_mixed_periods() {
        let t = 96;
        let a = sin_series(t, 24);
        let b = sin_series(t, 8);
        let x: Vec<f32> = a.iter().zip(&b).map(|(u, v)| 2.0 * u + v).collect();
        let p = topk_periods(&x, 2);
        let periods: Vec<usize> = p.iter().map(|c| c.period).collect();
        assert!(periods.contains(&24), "{periods:?}");
        assert!(periods.contains(&8), "{periods:?}");
        // The stronger component must rank first.
        assert_eq!(p[0].period, 24);
    }

    #[test]
    fn multichannel_averages_amplitudes() {
        let t = 64;
        let mut data = Vec::new();
        for i in 0..t {
            data.push((2.0 * std::f32::consts::PI * i as f32 / 16.0).sin()); // ch 0
            data.push((2.0 * std::f32::consts::PI * i as f32 / 16.0).cos()); // ch 1
        }
        let x = Tensor::from_vec(data, &[t, 2]);
        let p = topk_periods_multi(&x, 1);
        assert_eq!(p[0].period, 16);
    }

    #[test]
    fn dc_offset_is_ignored() {
        let x: Vec<f32> = sin_series(64, 16).iter().map(|v| v + 100.0).collect();
        let p = topk_periods(&x, 1);
        assert_eq!(p[0].period, 16);
    }

    #[test]
    fn dominant_period_fallback_on_flat_series() {
        let x = Tensor::zeros(&[32, 1]);
        assert_eq!(dominant_period(&x), 16);
    }

    #[test]
    fn period_formula_is_ceiling() {
        // T = 10, f = 3 -> p = ceil(10/3) = 4.
        let t = 10;
        let x: Vec<f32> = (0..t)
            .map(|i| (2.0 * std::f32::consts::PI * 3.0 * i as f32 / t as f32).sin())
            .collect();
        let p = topk_periods(&x, 1);
        assert_eq!(p[0].frequency, 3);
        assert_eq!(p[0].period, 4);
    }

    #[test]
    fn k_larger_than_bins_is_truncated() {
        let x = sin_series(16, 4);
        let p = topk_periods(&x, 100);
        assert_eq!(p.len(), 8); // T/2 bins
    }
}
