//! Complex Gaussian wavelets (paper Eq. 3–4) and their scale sets (Eq. 6).
//!
//! The mother wavelet is `psi(t) = C_p * d^p/dt^p ( e^{-it} e^{-t^2} )`;
//! the paper uses the base form (order 0 in our notation, `cgau`-style).
//! The TF-Block's multi-branch structure uses *different* wavelet
//! generating functions per branch — we provide the first three envelope
//! derivatives, matching the `cgau1/cgau2/cgau3` family.

use crate::complex::Complex32;
use crate::fft::amplitude_spectrum;

/// Which complex Gaussian wavelet to use as the generating function.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum WaveletKind {
    /// `C_0 e^{-it} e^{-t^2}` — the paper's Eq. 3.
    ComplexGaussian,
    /// First derivative of the complex Gaussian.
    ComplexGaussian1,
    /// Second derivative of the complex Gaussian.
    ComplexGaussian2,
}

impl WaveletKind {
    /// All supported kinds, in branch order.
    pub const ALL: [WaveletKind; 3] = [
        WaveletKind::ComplexGaussian,
        WaveletKind::ComplexGaussian1,
        WaveletKind::ComplexGaussian2,
    ];

    /// Human-readable name.
    pub fn name(self) -> &'static str {
        match self {
            WaveletKind::ComplexGaussian => "cgau",
            WaveletKind::ComplexGaussian1 => "cgau1",
            WaveletKind::ComplexGaussian2 => "cgau2",
        }
    }

    /// Unnormalised wavelet value at time `t`.
    ///
    /// With `f(t) = e^{-it - t^2}`, the derivatives are
    /// `f' = (-i - 2t) f` and `f'' = ((-i - 2t)^2 - 2) f`.
    pub fn eval_raw(self, t: f32) -> Complex32 {
        let envelope = (-t * t).exp();
        let osc = Complex32::from_angle(-t); // e^{-it}
        let f = osc.scale(envelope);
        match self {
            WaveletKind::ComplexGaussian => f,
            WaveletKind::ComplexGaussian1 => Complex32::new(-2.0 * t, -1.0) * f,
            WaveletKind::ComplexGaussian2 => {
                let g = Complex32::new(-2.0 * t, -1.0);
                (g * g + Complex32::from_real(-2.0)) * f
            }
        }
    }
}

/// The half-support (in mother-wavelet time units) beyond which the
/// Gaussian envelope is negligible (`e^{-16} ~ 1e-7`).
pub const SUPPORT: f32 = 4.0;

/// Sample the wavelet of `kind` at scale `s`: taps `psi_s[n] =
/// (1/sqrt(s)) psi(n/s)` for `n in [-N, N]` with `N = ceil(SUPPORT * s)`,
/// normalised to unit energy (the `C_p` of Eq. 3).
///
/// Returns `(taps, half_len N)`; `taps.len() == 2N + 1`.
pub fn sample_wavelet(kind: WaveletKind, scale: f32) -> (Vec<Complex32>, usize) {
    assert!(scale > 0.0, "wavelet scale must be positive");
    let n = (SUPPORT * scale).ceil() as usize;
    let n = n.max(1);
    let inv_sqrt_s = 1.0 / scale.sqrt();
    let mut taps: Vec<Complex32> = (-(n as i64)..=n as i64)
        .map(|i| kind.eval_raw(i as f32 / scale).scale(inv_sqrt_s))
        .collect();
    // Unit-energy normalisation (C_p in Eq. 3).
    let energy: f32 = taps.iter().map(|z| z.norm_sqr()).sum();
    if energy > 0.0 {
        let inv = 1.0 / energy.sqrt();
        for z in taps.iter_mut() {
            *z = z.scale(inv);
        }
    }
    (taps, n)
}

/// The paper's scale set (Eq. 6): `s_i = 2*lambda / i` for `i = 1..=lambda`.
pub fn scale_set(lambda: usize) -> Vec<f32> {
    assert!(lambda >= 1, "lambda must be >= 1");
    (1..=lambda).map(|i| 2.0 * lambda as f32 / i as f32).collect()
}

/// Central frequency `F_c` of a wavelet kind in cycles per mother-time
/// unit, measured numerically as the peak of the sampled wavelet's
/// amplitude spectrum (mirrors how DL toolkits obtain `F_c`).
pub fn central_frequency(kind: WaveletKind) -> f32 {
    // Sample the mother wavelet densely: 16 samples per time unit.
    let rate = 16.0f32;
    let (taps, _) = sample_wavelet(kind, rate);
    let re: Vec<f32> = taps.iter().map(|z| z.re).collect();
    let n = re.len();
    let amp = amplitude_spectrum(&re);
    // Find peak over positive frequencies.
    let half = n / 2;
    let peak = amp[1..half]
        .iter()
        .enumerate()
        // ts3-lint: allow(no-unwrap-in-lib) scores are sums of finite f32s, so partial_cmp is always Some
        .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
        .map(|(i, _)| i + 1)
        .unwrap_or(1);
    peak as f32 / n as f32 * rate
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_set_matches_eq6() {
        let s = scale_set(4);
        assert_eq!(s, vec![8.0, 4.0, 8.0 / 3.0, 2.0]);
        assert_eq!(scale_set(100).len(), 100);
        // Scales decrease with i; frequencies F_c/s increase.
        for w in s.windows(2) {
            assert!(w[0] > w[1]);
        }
    }

    #[test]
    fn wavelet_has_unit_energy() {
        for kind in WaveletKind::ALL {
            for s in [1.0f32, 2.5, 10.0] {
                let (taps, _) = sample_wavelet(kind, s);
                let e: f32 = taps.iter().map(|z| z.norm_sqr()).sum();
                assert!((e - 1.0).abs() < 1e-4, "{kind:?} s={s}: energy {e}");
            }
        }
    }

    #[test]
    fn wavelet_length_scales_with_scale() {
        let (t1, n1) = sample_wavelet(WaveletKind::ComplexGaussian, 2.0);
        let (t2, n2) = sample_wavelet(WaveletKind::ComplexGaussian, 8.0);
        assert!(n2 > n1);
        assert_eq!(t1.len(), 2 * n1 + 1);
        assert_eq!(t2.len(), 2 * n2 + 1);
    }

    #[test]
    fn wavelet_decays_at_support_edge() {
        let (taps, _) = sample_wavelet(WaveletKind::ComplexGaussian, 5.0);
        let centre = taps[taps.len() / 2].abs();
        let edge = taps[0].abs();
        assert!(edge < centre * 1e-4, "edge {edge} centre {centre}");
    }

    #[test]
    fn wavelet_near_zero_mean() {
        // Admissibility: the derivative wavelets have exactly zero mean;
        // the order-0 complex Gaussian (the paper's Eq. 3) only has a
        // *small* mean because its Gaussian bandwidth overlaps DC.
        for (kind, tol) in [
            (WaveletKind::ComplexGaussian, 0.2),
            (WaveletKind::ComplexGaussian1, 0.02),
            (WaveletKind::ComplexGaussian2, 0.02),
        ] {
            let (taps, _) = sample_wavelet(kind, 8.0);
            let mean_re: f32 = taps.iter().map(|z| z.re).sum::<f32>() / taps.len() as f32;
            let peak = taps.iter().map(|z| z.abs()).fold(0.0f32, f32::max);
            assert!(mean_re.abs() < tol * peak, "{kind:?}: mean {mean_re} vs peak {peak}");
        }
    }

    #[test]
    fn central_frequency_is_positive_and_reasonable() {
        for kind in WaveletKind::ALL {
            let fc = central_frequency(kind);
            // e^{-it} oscillates at 1/(2 pi) ~ 0.159 cycles/unit; the
            // envelope derivative shifts it upward slightly.
            assert!(fc > 0.05 && fc < 1.0, "{kind:?}: fc = {fc}");
        }
    }

    #[test]
    fn derivative_orders_differ() {
        let a = WaveletKind::ComplexGaussian.eval_raw(0.5);
        let b = WaveletKind::ComplexGaussian1.eval_raw(0.5);
        let c = WaveletKind::ComplexGaussian2.eval_raw(0.5);
        assert!((a - b).abs() > 1e-3);
        assert!((b - c).abs() > 1e-3);
    }
}
