//! # ts3-signal
//!
//! Signal-processing substrate for the TS3Net reproduction:
//!
//! * [`complex`] — minimal complex arithmetic;
//! * [`fft`] — radix-2 + Bluestein FFT of arbitrary length, real-input
//!   helpers, FFT-based linear convolution;
//! * [`spectrum`] — multi-periodicity detection via top-k FFT amplitudes
//!   (paper Eq. 2);
//! * [`wavelet`] — complex Gaussian wavelets and the paper's scale set
//!   (Eq. 3–6);
//! * [`cwt`] — planned continuous wavelet transform, its adjoint (for
//!   autograd) and a calibrated linear inverse (Eq. 5–9);
//! * [`decompose`] — trend decomposition, spectrum gradients and the full
//!   triple decomposition (Eq. 1, 9–11).
//!
//! ```
//! use ts3_signal::decompose::{triple_decompose, TripleConfig};
//! use ts3_tensor::Tensor;
//!
//! let x: Vec<f32> = (0..96).map(|t| (t as f32 / 12.0).sin() + 0.01 * t as f32).collect();
//! let x = Tensor::from_vec(x, &[96, 1]);
//! let d = triple_decompose(&x, &TripleConfig::default());
//! assert!(d.reconstruct().allclose(&x, 1e-3));
//! ```

pub mod complex;
pub mod cwt;
pub mod decompose;
pub mod fft;
mod fft_simd;
pub mod spectrum;
pub mod wavelet;

pub use complex::Complex32;
pub use cwt::CwtPlan;
pub use decompose::{
    sgd_channel, spectrum_gradient, spectrum_gradient_rows, trend_decompose, triple_decompose,
    TripleConfig, TripleDecomposition,
};
pub use spectrum::{
    accumulate_channel_amplitude, dominant_period, dominant_period_from_spectrum,
    mean_amplitude_spectrum, topk_periods, topk_periods_from_spectrum, topk_periods_multi,
    PeriodComponent,
};
pub use wavelet::{central_frequency, sample_wavelet, scale_set, WaveletKind};
