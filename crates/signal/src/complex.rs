//! Minimal complex arithmetic for FFT/wavelet work.

use std::ops::{Add, AddAssign, Div, Mul, MulAssign, Neg, Sub};

/// Complex number with `f32` components.
///
/// `repr(C)` pins the `(re, im)` pair layout so the SIMD kernels in
/// `fft_simd` may view `&[Complex32]` as interleaved `f32` lanes.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
#[repr(C)]
pub struct Complex32 {
    pub re: f32,
    pub im: f32,
}

impl Complex32 {
    /// Construct from real and imaginary parts.
    pub const fn new(re: f32, im: f32) -> Self {
        Complex32 { re, im }
    }

    /// The additive identity.
    pub const ZERO: Complex32 = Complex32::new(0.0, 0.0);

    /// The multiplicative identity.
    pub const ONE: Complex32 = Complex32::new(1.0, 0.0);

    /// The imaginary unit.
    pub const I: Complex32 = Complex32::new(0.0, 1.0);

    /// Purely real complex number.
    pub const fn from_real(re: f32) -> Self {
        Complex32::new(re, 0.0)
    }

    /// `e^{i theta}` on the unit circle.
    pub fn from_angle(theta: f32) -> Self {
        Complex32::new(theta.cos(), theta.sin())
    }

    /// Complex conjugate.
    pub fn conj(self) -> Self {
        Complex32::new(self.re, -self.im)
    }

    /// Modulus (absolute value).
    pub fn abs(self) -> f32 {
        self.re.hypot(self.im)
    }

    /// Squared modulus.
    pub fn norm_sqr(self) -> f32 {
        self.re * self.re + self.im * self.im
    }

    /// Argument (phase angle) in radians.
    pub fn arg(self) -> f32 {
        self.im.atan2(self.re)
    }

    /// Multiply by a real scalar.
    pub fn scale(self, s: f32) -> Self {
        Complex32::new(self.re * s, self.im * s)
    }
}

impl Add for Complex32 {
    type Output = Complex32;
    fn add(self, rhs: Self) -> Self {
        Complex32::new(self.re + rhs.re, self.im + rhs.im)
    }
}

impl AddAssign for Complex32 {
    fn add_assign(&mut self, rhs: Self) {
        self.re += rhs.re;
        self.im += rhs.im;
    }
}

impl Sub for Complex32 {
    type Output = Complex32;
    fn sub(self, rhs: Self) -> Self {
        Complex32::new(self.re - rhs.re, self.im - rhs.im)
    }
}

impl Mul for Complex32 {
    type Output = Complex32;
    fn mul(self, rhs: Self) -> Self {
        Complex32::new(
            self.re * rhs.re - self.im * rhs.im,
            self.re * rhs.im + self.im * rhs.re,
        )
    }
}

impl MulAssign for Complex32 {
    fn mul_assign(&mut self, rhs: Self) {
        *self = *self * rhs;
    }
}

impl Div for Complex32 {
    type Output = Complex32;
    fn div(self, rhs: Self) -> Self {
        let d = rhs.norm_sqr();
        Complex32::new(
            (self.re * rhs.re + self.im * rhs.im) / d,
            (self.im * rhs.re - self.re * rhs.im) / d,
        )
    }
}

impl Neg for Complex32 {
    type Output = Complex32;
    fn neg(self) -> Self {
        Complex32::new(-self.re, -self.im)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic_identities() {
        let z = Complex32::new(3.0, -4.0);
        assert_eq!(z + Complex32::ZERO, z);
        assert_eq!(z * Complex32::ONE, z);
        assert_eq!(z.abs(), 5.0);
        assert_eq!(z.norm_sqr(), 25.0);
        assert_eq!(-z, Complex32::new(-3.0, 4.0));
    }

    #[test]
    fn i_squared_is_minus_one() {
        assert_eq!(Complex32::I * Complex32::I, Complex32::new(-1.0, 0.0));
    }

    #[test]
    fn conjugate_multiplication_gives_norm() {
        let z = Complex32::new(2.0, 7.0);
        let zz = z * z.conj();
        assert!((zz.re - z.norm_sqr()).abs() < 1e-5);
        assert!(zz.im.abs() < 1e-5);
    }

    #[test]
    fn division_inverts_multiplication() {
        let a = Complex32::new(1.5, -2.0);
        let b = Complex32::new(0.5, 3.0);
        let c = (a * b) / b;
        assert!((c.re - a.re).abs() < 1e-5);
        assert!((c.im - a.im).abs() < 1e-5);
    }

    #[test]
    fn from_angle_on_unit_circle() {
        let z = Complex32::from_angle(std::f32::consts::FRAC_PI_2);
        assert!(z.re.abs() < 1e-6);
        assert!((z.im - 1.0).abs() < 1e-6);
        assert!((z.abs() - 1.0).abs() < 1e-6);
        assert!((z.arg() - std::f32::consts::FRAC_PI_2).abs() < 1e-6);
    }
}
