//! AVX2+FMA transcriptions of the planar FFT butterfly kernels in
//! [`crate::fft`], behind the process-wide dispatch policy of
//! [`ts3_tensor::simd`].
//!
//! Each kernel maps the scalar reference's operations 1:1 onto packed
//! lanes: the canonical twiddle rotation `cmul_fma` —
//! `re = fma(qi, -wi, qr*wr)`, `im = fma(qi, wr, qr*wi)` — becomes one
//! `_mm256_fnmadd_ps` and one `_mm256_fmadd_ps` per component, both
//! single-rounding fused ops, so SIMD and scalar butterflies are
//! **bitwise identical** (sweep-asserted in `signal/tests/simd_fft.rs`).
//! Dispatch is therefore an observability fact, never a numeric one.

use crate::complex::Complex32;
use crate::fft::cmul_fma;

/// Run one contiguous butterfly span through the AVX2 path if selected;
/// returns `false` when the caller should run the scalar reference
/// (non-x86_64 target, missing CPU features, or `TS3_SIMD=0`).
#[inline]
pub(crate) fn stage_pass_dispatch(
    ur: &mut [f32],
    ui: &mut [f32],
    vr: &mut [f32],
    vi: &mut [f32],
    swr: &[f32],
    swi: &[f32],
) -> bool {
    #[cfg(target_arch = "x86_64")]
    if ts3_tensor::simd::avx2_active() {
        // SAFETY: avx2_active() only returns true after runtime
        // detection confirmed this CPU executes AVX2 and FMA.
        // ts3-lint: allow(unsafe-dataflow) cpu-feature gate, not an indexing bound; avx2_active() is the runtime check and the callee asserts its own slice bounds
        unsafe { stage_pass_avx2(ur, ui, vr, vi, swr, swi) };
        return true;
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        let _ = (ur, ui, vr, vi, swr, swi);
    }
    false
}

/// Run one broadcast-twiddle 16-lane row butterfly through the AVX2
/// path if selected; returns `false` for the scalar fallback.
#[inline]
pub(crate) fn row_butterfly_dispatch(
    ur: &mut [f32; 16],
    ui: &mut [f32; 16],
    vr: &mut [f32; 16],
    vi: &mut [f32; 16],
    wr: f32,
    wi: f32,
) -> bool {
    #[cfg(target_arch = "x86_64")]
    if ts3_tensor::simd::avx2_active() {
        // SAFETY: avx2_active() only returns true after runtime
        // detection confirmed this CPU executes AVX2 and FMA.
        // ts3-lint: allow(unsafe-dataflow) cpu-feature gate on fixed [f32; 16] arrays; no data-dependent bounds exist
        unsafe { row_butterfly_avx2(ur, ui, vr, vi, wr, wi) };
        return true;
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        let _ = (ur, ui, vr, vi, wr, wi);
    }
    false
}

/// Run the real-FFT "unsplit" recombination (`RealPlan` forward
/// post-pass: `out[k] = E[k] + W^k·O[k]` for `k in 1..h`, `h =
/// z.len()`) through the AVX2 path if selected; returns `false` for
/// the scalar fallback in `fft.rs`. `out` must hold at least `h`
/// elements (bins `1..h` are written; the caller fills `0` and `h`).
#[inline]
pub(crate) fn unsplit_dispatch(
    z: &[Complex32],
    twr: &[f32],
    twi: &[f32],
    out: &mut [Complex32],
) -> bool {
    #[cfg(target_arch = "x86_64")]
    if ts3_tensor::simd::avx2_active() {
        // SAFETY: avx2_active() only returns true after runtime
        // detection confirmed this CPU executes AVX2 and FMA.
        // ts3-lint: allow(unsafe-dataflow) cpu-feature gate, not an indexing bound; avx2_active() is the runtime check and the callee asserts its own slice bounds
        unsafe { unsplit_avx2(z, twr, twi, out) };
        return true;
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        let _ = (z, twr, twi, out);
    }
    false
}

/// Planar-input variant of [`unsplit_dispatch`]: the half spectrum
/// arrives as the butterfly stages' planar `(re, im)` scratch
/// (`h = re.len()`), skipping the interleave/deinterleave round trip
/// the packed form pays. Same per-bin operations, same `false` scalar
/// fallback contract.
#[inline]
pub(crate) fn unsplit_planar_dispatch(
    re: &[f32],
    im: &[f32],
    twr: &[f32],
    twi: &[f32],
    out: &mut [Complex32],
) -> bool {
    #[cfg(target_arch = "x86_64")]
    if ts3_tensor::simd::avx2_active() {
        // SAFETY: avx2_active() only returns true after runtime
        // detection confirmed this CPU executes AVX2 and FMA.
        // ts3-lint: allow(unsafe-dataflow) cpu-feature gate, not an indexing bound; avx2_active() is the runtime check and the callee asserts its own slice bounds
        unsafe { unsplit_planar_avx2(re, im, twr, twi, out) };
        return true;
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        let _ = (re, im, twr, twi, out);
    }
    false
}

/// Write the conjugate mirror `out[n-k] = conj(out[k])` for
/// `k in 1..h` (`n = out.len()`, `h = n/2`) through the AVX2 path if
/// selected; returns `false` for the scalar fallback.
#[inline]
pub(crate) fn mirror_dispatch(out: &mut [Complex32]) -> bool {
    #[cfg(target_arch = "x86_64")]
    if ts3_tensor::simd::avx2_active() {
        // SAFETY: avx2_active() only returns true after runtime
        // detection confirmed this CPU executes AVX2 and FMA.
        // ts3-lint: allow(unsafe-dataflow) cpu-feature gate, not an indexing bound; avx2_active() is the runtime check and the callee bounds itself on out.len()
        unsafe { mirror_avx2(out) };
        return true;
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        let _ = out;
    }
    false
}

/// AVX2+FMA transcription of `stage_pass`: combine the low half
/// `(ur, ui)` with the twiddled high half `(vr, vi)` eight lanes at a
/// time, scalar `cmul_fma` on the tail. Identical per-element operation
/// sequence to the scalar kernel (lane grouping never mixes elements).
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2", enable = "fma")]
// SAFETY: `unsafe` only because of `target_feature` — callers must
// have verified AVX2+FMA via `ts3_tensor::simd::avx2_active()`. All
// memory access is through bounds-checked slices and unaligned
// loadu/storeu on `&mut [f32]` we exclusively own.
unsafe fn stage_pass_avx2(
    ur: &mut [f32],
    ui: &mut [f32],
    vr: &mut [f32],
    vi: &mut [f32],
    swr: &[f32],
    swi: &[f32],
) {
    use core::arch::x86_64::*;
    let half = ur.len();
    assert!(
        half == ui.len()
            && half == vr.len()
            && half == vi.len()
            && half == swr.len()
            && half == swi.len(),
        "stage_pass_avx2: span length mismatch"
    );
    let mut j = 0;
    // SAFETY: all six slices have length `half` (asserted above) and
    // every unaligned load/store below covers `j .. j + 8` with
    // `j + 8 <= half`, so no access leaves its slice.
    unsafe {
        while j + 8 <= half {
            let vrv = _mm256_loadu_ps(vr.as_ptr().add(j));
            let viv = _mm256_loadu_ps(vi.as_ptr().add(j));
            let wrv = _mm256_loadu_ps(swr.as_ptr().add(j));
            let wiv = _mm256_loadu_ps(swi.as_ptr().add(j));
            // cmul_fma: tr = fma(vi, -wi, vr*wr), ti = fma(vi, wr, vr*wi).
            let tr = _mm256_fnmadd_ps(viv, wiv, _mm256_mul_ps(vrv, wrv));
            let ti = _mm256_fmadd_ps(viv, wrv, _mm256_mul_ps(vrv, wiv));
            let urv = _mm256_loadu_ps(ur.as_ptr().add(j));
            let uiv = _mm256_loadu_ps(ui.as_ptr().add(j));
            _mm256_storeu_ps(ur.as_mut_ptr().add(j), _mm256_add_ps(urv, tr));
            _mm256_storeu_ps(ui.as_mut_ptr().add(j), _mm256_add_ps(uiv, ti));
            _mm256_storeu_ps(vr.as_mut_ptr().add(j), _mm256_sub_ps(urv, tr));
            _mm256_storeu_ps(vi.as_mut_ptr().add(j), _mm256_sub_ps(uiv, ti));
            j += 8;
        }
    }
    while j < half {
        let (tr, ti) = cmul_fma(vr[j], vi[j], swr[j], swi[j]);
        let pr = ur[j];
        let pi = ui[j];
        ur[j] = pr + tr;
        ui[j] = pi + ti;
        vr[j] = pr - tr;
        vi[j] = pi - ti;
        j += 1;
    }
}

/// AVX2+FMA transcription of `row_butterfly`'s lane loop: sixteen
/// independent butterflies against one broadcast twiddle, as two packs
/// of eight lanes.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2", enable = "fma")]
// SAFETY: `unsafe` only because of `target_feature` — callers must
// have verified AVX2+FMA via `ts3_tensor::simd::avx2_active()`. The
// fixed `[f32; 16]` arrays make every 8-lane offset (0 and 8) in
// bounds by construction.
unsafe fn row_butterfly_avx2(
    ur: &mut [f32; 16],
    ui: &mut [f32; 16],
    vr: &mut [f32; 16],
    vi: &mut [f32; 16],
    wr: f32,
    wi: f32,
) {
    use core::arch::x86_64::*;
    // SAFETY: all arrays are exactly 16 floats, so offsets 0 and 8 with
    // 8-lane unaligned loads/stores stay in-bounds.
    // ts3-lint: allow(unsafe-dataflow) bounds are the fixed [f32; 16] types themselves; there is no runtime length to assert
    unsafe {
        let wrv = _mm256_set1_ps(wr);
        let wiv = _mm256_set1_ps(wi);
        for off in [0usize, 8] {
            let vrv = _mm256_loadu_ps(vr.as_ptr().add(off));
            let viv = _mm256_loadu_ps(vi.as_ptr().add(off));
            let tr = _mm256_fnmadd_ps(viv, wiv, _mm256_mul_ps(vrv, wrv));
            let ti = _mm256_fmadd_ps(viv, wrv, _mm256_mul_ps(vrv, wiv));
            let urv = _mm256_loadu_ps(ur.as_ptr().add(off));
            let uiv = _mm256_loadu_ps(ui.as_ptr().add(off));
            _mm256_storeu_ps(ur.as_mut_ptr().add(off), _mm256_add_ps(urv, tr));
            _mm256_storeu_ps(ui.as_mut_ptr().add(off), _mm256_add_ps(uiv, ti));
            _mm256_storeu_ps(vr.as_mut_ptr().add(off), _mm256_sub_ps(urv, tr));
            _mm256_storeu_ps(vi.as_mut_ptr().add(off), _mm256_sub_ps(uiv, ti));
        }
    }
}

/// Split two consecutive 4-complex loads (`p .. p + 16` floats of
/// interleaved `(re, im)` pairs) into planar `(re, im)` 8-lane vectors.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
// SAFETY: `unsafe` for `target_feature` and the raw loads — callers
// guarantee AVX2 and that `p .. p + 16` floats are in bounds.
#[inline]
unsafe fn deinterleave8(
    p: *const f32,
) -> (core::arch::x86_64::__m256, core::arch::x86_64::__m256) {
    use core::arch::x86_64::*;
    // SAFETY: caller contract — 16 in-bounds floats at `p`.
    // ts3-lint: allow(unsafe-dataflow) raw-pointer helper with no length of its own; each caller asserts the 16-float bound at its call site
    unsafe {
        let v0 = _mm256_loadu_ps(p); //        r0 i0 r1 i1 | r2 i2 r3 i3
        let v1 = _mm256_loadu_ps(p.add(8)); // r4 i4 r5 i5 | r6 i6 r7 i7
        let t0 = _mm256_shuffle_ps(v0, v1, 0b10_00_10_00); // r0 r1 r4 r5 | r2 r3 r6 r7
        let t1 = _mm256_shuffle_ps(v0, v1, 0b11_01_11_01); // i0 i1 i4 i5 | i2 i3 i6 i7
        // Reorder the 64-bit pairs [0,2,1,3] to ascending lane order.
        let re = _mm256_castpd_ps(_mm256_permute4x64_pd(_mm256_castps_pd(t0), 0b11_01_10_00));
        let im = _mm256_castpd_ps(_mm256_permute4x64_pd(_mm256_castps_pd(t1), 0b11_01_10_00));
        (re, im)
    }
}

/// AVX2+FMA transcription of the `RealPlan` forward unsplit loop: for
/// each `k`, combine `Z[k]` with `conj(Z[h-k])` into even/odd spectra
/// and rotate the odd part by `W^k` — eight bins per iteration, with
/// the reversed `Z[h-k]` run loaded contiguously and lane-reversed.
/// The scalar tail (and any `h < 16`) replays the exact reference loop.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2", enable = "fma")]
// SAFETY: `unsafe` only because of `target_feature` — callers must
// have verified AVX2+FMA via `ts3_tensor::simd::avx2_active()`. Raw
// loads/stores are covered by the length asserts below; `Complex32` is
// `repr(C)`, so `&[Complex32]` is valid interleaved-f32 lane storage.
unsafe fn unsplit_avx2(z: &[Complex32], twr: &[f32], twi: &[f32], out: &mut [Complex32]) {
    use core::arch::x86_64::*;
    let h = z.len();
    assert!(
        twr.len() >= h && twi.len() >= h && out.len() >= h,
        "unsplit_avx2: buffer length mismatch"
    );
    let mut k = 1;
    // SAFETY: for each 8-bin step, `a` covers z[k .. k+8] and the
    // reversed run covers z[h-k-7 ..= h-k]; with `k >= 1` and
    // `k + 8 <= h` both stay inside `z`, twiddle loads stay inside
    // `twr`/`twi` (len >= h), and stores cover out[k .. k+8] with
    // `k + 7 <= h - 1 < out.len()`.
    unsafe {
        let half = _mm256_set1_ps(0.5);
        let rev = _mm256_setr_epi32(7, 6, 5, 4, 3, 2, 1, 0);
        while k + 8 <= h {
            let (ar, ai) = deinterleave8(z.as_ptr().add(k).cast::<f32>());
            let (zr_f, zi_f) = deinterleave8(z.as_ptr().add(h - k - 7).cast::<f32>());
            // Lane j holds z[h-k-j] after the reversal, pairing with
            // a's lane j = z[k+j] exactly as the scalar loop does.
            let zr = _mm256_permutevar8x32_ps(zr_f, rev);
            let zi = _mm256_permutevar8x32_ps(zi_f, rev);
            // b = conj(Z[h-k]): b.re = zr, b.im = -zi. Adding/subbing
            // the negation is IEEE-identical to direct sub/add.
            let er = _mm256_mul_ps(_mm256_add_ps(ar, zr), half);
            let ei = _mm256_mul_ps(_mm256_sub_ps(ai, zi), half);
            let or_ = _mm256_mul_ps(_mm256_add_ps(ai, zi), half);
            let oi = _mm256_mul_ps(_mm256_sub_ps(zr, ar), half);
            let wrv = _mm256_loadu_ps(twr.as_ptr().add(k));
            let wiv = _mm256_loadu_ps(twi.as_ptr().add(k));
            // cmul_fma(or_, oi, wr, wi) lane-for-lane.
            let tr = _mm256_fnmadd_ps(oi, wiv, _mm256_mul_ps(or_, wrv));
            let ti = _mm256_fmadd_ps(oi, wrv, _mm256_mul_ps(or_, wiv));
            let re = _mm256_add_ps(er, tr);
            let im = _mm256_add_ps(ei, ti);
            // Interleave back to (re, im) pairs and store out[k..k+8].
            let lo = _mm256_unpacklo_ps(re, im); // r0 i0 r1 i1 | r4 i4 r5 i5
            let hi = _mm256_unpackhi_ps(re, im); // r2 i2 r3 i3 | r6 i6 r7 i7
            let q = out.as_mut_ptr().add(k).cast::<f32>();
            _mm256_storeu_ps(q, _mm256_permute2f128_ps(lo, hi, 0x20));
            _mm256_storeu_ps(q.add(8), _mm256_permute2f128_ps(lo, hi, 0x31));
            k += 8;
        }
    }
    while k < h {
        let a = z[k];
        let b = z[h - k].conj();
        let er = (a.re + b.re) * 0.5;
        let ei = (a.im + b.im) * 0.5;
        let or_ = (a.im - b.im) * 0.5;
        let oi = (b.re - a.re) * 0.5;
        let (tr, ti) = cmul_fma(or_, oi, twr[k], twi[k]);
        out[k] = Complex32::new(er + tr, ei + ti);
        k += 1;
    }
}

/// AVX2+FMA planar unsplit: identical per-bin operation sequence to
/// [`unsplit_avx2`], but `Z[k]` comes from planar `(re, im)` arrays —
/// plain 8-lane loads replace the interleaved shuffle cascade on both
/// the forward and the reversed run. The scalar tail replays the exact
/// reference loop over the planar buffers.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2", enable = "fma")]
// SAFETY: `unsafe` only because of `target_feature` — callers must
// have verified AVX2+FMA via `ts3_tensor::simd::avx2_active()`. Raw
// loads/stores are covered by the length asserts below; `Complex32` is
// `repr(C)`, so `&mut [Complex32]` is valid interleaved-f32 storage.
unsafe fn unsplit_planar_avx2(
    re: &[f32],
    im: &[f32],
    twr: &[f32],
    twi: &[f32],
    out: &mut [Complex32],
) {
    use core::arch::x86_64::*;
    let h = re.len();
    assert!(
        im.len() == h && twr.len() >= h && twi.len() >= h && out.len() >= h,
        "unsplit_planar_avx2: buffer length mismatch"
    );
    let mut k = 1;
    // SAFETY: for each 8-bin step, the forward loads cover re/im[k ..
    // k+8] and the reversed loads cover re/im[h-k-7 ..= h-k]; with
    // `k >= 1` and `k + 8 <= h` both stay inside the length-`h`
    // buffers, twiddle loads stay inside `twr`/`twi` (len >= h), and
    // stores cover out[k .. k+8] with `k + 7 <= h - 1 < out.len()`.
    unsafe {
        let half = _mm256_set1_ps(0.5);
        let rev = _mm256_setr_epi32(7, 6, 5, 4, 3, 2, 1, 0);
        while k + 8 <= h {
            let ar = _mm256_loadu_ps(re.as_ptr().add(k));
            let ai = _mm256_loadu_ps(im.as_ptr().add(k));
            // Lane j holds Z[h-k-j] after the reversal, pairing with
            // a's lane j = Z[k+j] exactly as the scalar loop does.
            let zr = _mm256_permutevar8x32_ps(_mm256_loadu_ps(re.as_ptr().add(h - k - 7)), rev);
            let zi = _mm256_permutevar8x32_ps(_mm256_loadu_ps(im.as_ptr().add(h - k - 7)), rev);
            // b = conj(Z[h-k]): b.re = zr, b.im = -zi. Adding/subbing
            // the negation is IEEE-identical to direct sub/add.
            let er = _mm256_mul_ps(_mm256_add_ps(ar, zr), half);
            let ei = _mm256_mul_ps(_mm256_sub_ps(ai, zi), half);
            let or_ = _mm256_mul_ps(_mm256_add_ps(ai, zi), half);
            let oi = _mm256_mul_ps(_mm256_sub_ps(zr, ar), half);
            let wrv = _mm256_loadu_ps(twr.as_ptr().add(k));
            let wiv = _mm256_loadu_ps(twi.as_ptr().add(k));
            // cmul_fma(or_, oi, wr, wi) lane-for-lane.
            let tr = _mm256_fnmadd_ps(oi, wiv, _mm256_mul_ps(or_, wrv));
            let ti = _mm256_fmadd_ps(oi, wrv, _mm256_mul_ps(or_, wiv));
            let xr = _mm256_add_ps(er, tr);
            let xi = _mm256_add_ps(ei, ti);
            // Interleave back to (re, im) pairs and store out[k..k+8].
            let lo = _mm256_unpacklo_ps(xr, xi);
            let hi = _mm256_unpackhi_ps(xr, xi);
            let q = out.as_mut_ptr().add(k).cast::<f32>();
            _mm256_storeu_ps(q, _mm256_permute2f128_ps(lo, hi, 0x20));
            _mm256_storeu_ps(q.add(8), _mm256_permute2f128_ps(lo, hi, 0x31));
            k += 8;
        }
    }
    while k < h {
        let (ar, ai) = (re[k], im[k]);
        let (br, bi) = (re[h - k], -im[h - k]);
        let er = (ar + br) * 0.5;
        let ei = (ai + bi) * 0.5;
        let or_ = (ai - bi) * 0.5;
        let oi = (br - ar) * 0.5;
        let (tr, ti) = cmul_fma(or_, oi, twr[k], twi[k]);
        out[k] = Complex32::new(er + tr, ei + ti);
        k += 1;
    }
}

/// AVX2 conjugate mirror `out[n-k] = conj(out[k])`: four complexes per
/// step — one sign-flip of the `im` lanes plus a pair-wise lane
/// reversal. Pure data movement and sign negation, so bitwise equality
/// with the scalar loop is structural.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
// SAFETY: `unsafe` only because of `target_feature` — callers must
// have verified AVX2 via `ts3_tensor::simd::avx2_active()`. Raw
// loads/stores are in bounds per the loop-condition argument below;
// `Complex32` is `repr(C)` interleaved-f32 storage.
unsafe fn mirror_avx2(out: &mut [Complex32]) {
    use core::arch::x86_64::*;
    let n = out.len();
    let h = n / 2;
    let mut k = 1;
    // SAFETY: while `k + 4 <= h`, the load covers out[k .. k+4] (max
    // index h-1) and the store covers out[n-k-3 ..= n-k] (min index
    // n-h-1+... = h+1 at k = h-4... >= h+1 for all k in range; max
    // index n-1). Load and store regions never overlap (k+3 < h < n-k-3
    // + 1 for k <= h-4), and both stay inside `out`.
    // ts3-lint: allow(unsafe-dataflow) the bound is the loop condition `k + 4 <= h`, proven in the SAFETY argument; an assert would duplicate the guard
    unsafe {
        // Flipping the sign bit of the `im` lanes == scalar `conj`.
        let conj_mask = _mm256_setr_ps(0.0, -0.0, 0.0, -0.0, 0.0, -0.0, 0.0, -0.0);
        // Reverse the four complex pairs: [c0 c1 | c2 c3] -> [c3 c2 | c1 c0].
        let rev_pairs = _mm256_setr_epi32(6, 7, 4, 5, 2, 3, 0, 1);
        while k + 4 <= h {
            let v = _mm256_loadu_ps(out.as_ptr().add(k).cast::<f32>());
            let c = _mm256_xor_ps(v, conj_mask);
            let r = _mm256_permutevar8x32_ps(c, rev_pairs);
            _mm256_storeu_ps(out.as_mut_ptr().add(n - k - 3).cast::<f32>(), r);
            k += 4;
        }
    }
    while k < h {
        out[n - k] = out[k].conj();
        k += 1;
    }
}
