//! The paper's decomposition pipeline operating on raw (non-autograd)
//! tensors: trend decomposition (Eq. 1), spectrum-gradient computation
//! (Eq. 9), and the full triple decomposition (Eq. 10–11).
//!
//! These functions are the *data-side* reference implementation; the
//! differentiable in-network S-GD layer in `ts3net-core` mirrors them on
//! autograd variables and is tested against these outputs.

use crate::cwt::CwtPlan;
use crate::spectrum::dominant_period;
use crate::wavelet::WaveletKind;
use ts3_tensor::{moving_avg_same, Tensor};

/// Default moving-average kernel set for trend extraction, following the
/// multi-scale pooling used by MICN/Autoformer-style decompositions.
pub const DEFAULT_TREND_KERNELS: [usize; 3] = [13, 17, 25];

/// Trend decomposition (Eq. 1): `X = trend + seasonal`, where the trend is
/// the mean of several replicate-padded moving averages.
///
/// Input and outputs are `[T, C]`.
pub fn trend_decompose(x: &Tensor, kernels: &[usize]) -> (Tensor, Tensor) {
    assert_eq!(x.rank(), 2, "trend_decompose expects [T, C]");
    assert!(!kernels.is_empty(), "trend_decompose needs at least one kernel");
    let mut _s = ts3_obs::span("signal.trend_decompose");
    if _s.active() {
        _s.field("t", x.shape()[0]);
        _s.field("c", x.shape()[1]);
        _s.field("kernels", kernels.len());
        ts3_obs::counter_add("signal.trend_decompose.calls", 1);
    }
    let mut trend = Tensor::zeros_like(x);
    for &k in kernels {
        trend.add_assign(&moving_avg_same(x, 0, k));
    }
    let trend = trend.div_scalar(kernels.len() as f32);
    let seasonal = x.sub(&trend);
    (trend, seasonal)
}

/// The spectrum gradient of a `[lambda, T]` TF grid (Eq. 9): the grid is
/// split along time into `u = ceil(T / t_f)` chunks and differenced,
/// with `S^0 = 0` so the first chunk passes through unchanged.
pub fn spectrum_gradient(tf: &Tensor, t_f: usize) -> Tensor {
    assert_eq!(tf.rank(), 2, "spectrum_gradient expects [lambda, T]");
    assert!(t_f >= 1, "sub-series length must be >= 1");
    let mut _s = ts3_obs::span("signal.spectrum_gradient");
    if _s.active() {
        _s.field("lambda", tf.shape()[0]);
        _s.field("t", tf.shape()[1]);
        _s.field("t_f", t_f);
        ts3_obs::counter_add("signal.spectrum_gradient.calls", 1);
    }
    let (lambda, t) = (tf.shape()[0], tf.shape()[1]);
    let mut out = vec![0.0f32; lambda * t];
    spectrum_gradient_rows(tf.as_slice(), lambda, t, t_f, &mut out);
    Tensor::from_vec(out, &[lambda, t])
}

/// Slice-level core of [`spectrum_gradient`]: differences a row-major
/// `[lambda, T]` grid `src` into `out` without constructing tensors.
///
/// Shared by the batch path above and the streaming crate
/// (`ts3-stream`), which replays the identical arithmetic per pulse so
/// that streaming emits stay bitwise equal to the batch decomposition.
pub fn spectrum_gradient_rows(src: &[f32], lambda: usize, t: usize, t_f: usize, out: &mut [f32]) {
    assert!(t_f >= 1, "sub-series length must be >= 1");
    assert_eq!(src.len(), lambda * t, "spectrum_gradient_rows: src length");
    assert_eq!(out.len(), lambda * t, "spectrum_gradient_rows: out length");
    for li in 0..lambda {
        let row = &src[li * t..(li + 1) * t];
        let dst = &mut out[li * t..(li + 1) * t];
        let mut start = 0usize;
        let mut prev_start: Option<usize> = None;
        while start < t {
            let len = t_f.min(t - start);
            let (head, tail) = dst[start..start + len].split_at_mut(match prev_start {
                // S^{i-1} may be shorter than t_f at the tail; missing
                // columns are treated as zero, i.e. passed through
                // (`x - 0.0 == x` bitwise for every f32, so the copy
                // below is exact).
                Some(p) => len.min(start - p),
                None => 0,
            });
            if let Some(p) = prev_start {
                let cur = &row[start..start + head.len()];
                let prev = &row[p..p + head.len()];
                for ((d, &c), &pv) in head.iter_mut().zip(cur).zip(prev) {
                    *d = c - pv;
                }
            }
            tail.copy_from_slice(&row[start + head.len()..start + len]);
            prev_start = Some(start);
            start += len;
        }
    }
}

/// Result of the spectrum-gradient decomposition of a seasonal channel.
#[derive(Debug, Clone)]
pub struct SgdChannel {
    /// The TF distribution `X_2D = Amp(WT(x))`, `[lambda, T]` (Eq. 8).
    pub tf: Tensor,
    /// The spectrum gradient `Delta_2D`, `[lambda, T]` (Eq. 9).
    pub delta_2d: Tensor,
    /// `Delta_1D = IWT(Delta_2D)`, `[T]` (Eq. 9).
    pub delta_1d: Vec<f32>,
    /// The regular part `x - Delta_1D`, `[T]` (Eq. 10).
    pub regular: Vec<f32>,
}

/// Spectrum-gradient decomposition (S-GD, Eq. 10–11) of one channel.
pub fn sgd_channel(x: &[f32], plan: &CwtPlan, t_f: usize) -> SgdChannel {
    assert_eq!(x.len(), plan.t_len, "sgd_channel: length mismatch with plan");
    let tf = plan.amplitude_tensor(x);
    let delta_2d = spectrum_gradient(&tf, t_f);
    let delta_1d = plan.inverse(delta_2d.as_slice());
    let regular: Vec<f32> = x.iter().zip(&delta_1d).map(|(a, b)| a - b).collect();
    SgdChannel { tf, delta_2d, delta_1d, regular }
}

/// Full triple decomposition of a `[T, C]` series.
#[derive(Debug, Clone)]
pub struct TripleDecomposition {
    /// Trend part, `[T, C]`.
    pub trend: Tensor,
    /// Seasonal part (`x - trend`), `[T, C]`.
    pub seasonal: Tensor,
    /// Regular part of the seasonal component, `[T, C]` (Eq. 10).
    pub regular: Tensor,
    /// `Delta_1D` fluctuation projected to 1-D, `[T, C]`.
    pub fluctuant_1d: Tensor,
    /// The fluctuant part `Delta_2D`, `[lambda, T, C]` (Eq. 10).
    pub fluctuant_2d: Tensor,
    /// TF distribution of the seasonal part, `[lambda, T, C]`.
    pub tf: Tensor,
    /// The dominant sub-series length `T_f` used for chunking.
    pub t_f: usize,
}

impl TripleDecomposition {
    /// Reconstruction `trend + regular + fluctuant_1d`, which equals the
    /// original series exactly (Eq. 10 is an exact split of the seasonal
    /// part).
    pub fn reconstruct(&self) -> Tensor {
        self.trend.add(&self.regular).add(&self.fluctuant_1d)
    }
}

/// Configuration for [`triple_decompose`].
#[derive(Debug, Clone)]
pub struct TripleConfig {
    /// Number of spectral sub-bands (the paper's lambda; default 100,
    /// scaled profiles use less).
    pub lambda: usize,
    /// Wavelet generating function.
    pub wavelet: WaveletKind,
    /// Trend moving-average kernels.
    pub trend_kernels: Vec<usize>,
    /// Sub-series length; `None` selects the dominant FFT period.
    pub t_f: Option<usize>,
}

impl Default for TripleConfig {
    fn default() -> Self {
        TripleConfig {
            lambda: 16,
            wavelet: WaveletKind::ComplexGaussian,
            trend_kernels: DEFAULT_TREND_KERNELS.to_vec(),
            t_f: None,
        }
    }
}

/// The paper's triple decomposition (Fig. 1 / Section III-B): decouple a
/// `[T, C]` series into trend-part, regular-part and fluctuant-part.
pub fn triple_decompose(x: &Tensor, cfg: &TripleConfig) -> TripleDecomposition {
    assert_eq!(x.rank(), 2, "triple_decompose expects [T, C]");
    let (t, c) = (x.shape()[0], x.shape()[1]);
    let mut _s = ts3_obs::span("signal.triple_decompose");
    if _s.active() {
        _s.field("t", t);
        _s.field("c", c);
        _s.field("lambda", cfg.lambda);
        ts3_obs::counter_add("signal.triple_decompose.calls", 1);
    }
    let (trend, seasonal) = trend_decompose(x, &cfg.trend_kernels);
    let t_f = cfg.t_f.unwrap_or_else(|| dominant_period(&seasonal)).clamp(2, t);
    let plan = CwtPlan::new(t, cfg.lambda, cfg.wavelet);
    let mut regular = Tensor::zeros(&[t, c]);
    let mut fluct_1d = Tensor::zeros(&[t, c]);
    let mut fluct_2d = Tensor::zeros(&[cfg.lambda, t, c]);
    let mut tf_all = Tensor::zeros(&[cfg.lambda, t, c]);
    for ch in 0..c {
        let col: Vec<f32> = (0..t).map(|i| seasonal.at(&[i, ch])).collect();
        let s = sgd_channel(&col, &plan, t_f);
        for i in 0..t {
            regular.set(&[i, ch], s.regular[i]);
            fluct_1d.set(&[i, ch], s.delta_1d[i]);
        }
        for li in 0..cfg.lambda {
            for i in 0..t {
                fluct_2d.set(&[li, i, ch], s.delta_2d.at(&[li, i]));
                tf_all.set(&[li, i, ch], s.tf.at(&[li, i]));
            }
        }
    }
    TripleDecomposition {
        trend,
        seasonal,
        regular,
        fluctuant_1d: fluct_1d,
        fluctuant_2d: fluct_2d,
        tf: tf_all,
        t_f,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mixed_series(t: usize) -> Tensor {
        let data: Vec<f32> = (0..t)
            .map(|i| {
                let ti = i as f32;
                0.05 * ti                                   // trend
                    + (2.0 * std::f32::consts::PI * ti / 24.0).sin()  // periodic
                    + 0.3 * (2.0 * std::f32::consts::PI * ti / 7.0).sin()
            })
            .collect();
        Tensor::from_vec(data, &[t, 1])
    }

    #[test]
    fn trend_plus_seasonal_is_exact() {
        let x = mixed_series(96);
        let (trend, seasonal) = trend_decompose(&x, &DEFAULT_TREND_KERNELS);
        assert!(trend.add(&seasonal).allclose(&x, 1e-4));
    }

    #[test]
    fn trend_captures_linear_drift() {
        let x = mixed_series(192);
        let (trend, _) = trend_decompose(&x, &DEFAULT_TREND_KERNELS);
        // Trend should be monotone-ish: end well above start.
        let first = trend.at(&[10, 0]);
        let last = trend.at(&[181, 0]);
        assert!(last > first + 5.0, "trend did not capture drift: {first} .. {last}");
    }

    #[test]
    fn trend_of_pure_oscillation_is_small() {
        let t = 96;
        let data: Vec<f32> = (0..t)
            .map(|i| (2.0 * std::f32::consts::PI * i as f32 / 12.0).sin())
            .collect();
        let x = Tensor::from_vec(data, &[t, 1]);
        let (trend, _) = trend_decompose(&x, &[13, 25]);
        // Replicate padding inflates the trend near the edges (as in the
        // reference PyTorch implementations); check the interior.
        let interior = trend.narrow(0, 13, t - 26);
        assert!(interior.abs().max() < 0.15, "max interior trend {}", interior.abs().max());
    }

    #[test]
    fn spectrum_gradient_first_chunk_passthrough() {
        let tf = Tensor::from_vec((0..12).map(|v| v as f32).collect(), &[2, 6]);
        let g = spectrum_gradient(&tf, 3);
        // First chunk: S^1 - 0 = S^1.
        assert_eq!(g.at(&[0, 0]), 0.0);
        assert_eq!(g.at(&[0, 2]), 2.0);
        // Second chunk: S^2 - S^1 -> constant 3 for this ramp.
        assert_eq!(g.at(&[0, 3]), 3.0);
        assert_eq!(g.at(&[1, 5]), 3.0);
    }

    #[test]
    fn spectrum_gradient_of_periodic_grid_vanishes_after_first_chunk() {
        // A grid that repeats every t_f columns has zero gradient beyond
        // the first chunk: the "regular" pattern.
        let (lambda, t, t_f) = (3, 12, 4);
        let mut data = Vec::new();
        for li in 0..lambda {
            for i in 0..t {
                data.push(((i % t_f) as f32 + li as f32).sin());
            }
        }
        let tf = Tensor::from_vec(data, &[lambda, t]);
        let g = spectrum_gradient(&tf, t_f);
        for li in 0..lambda {
            for i in t_f..t {
                assert!(g.at(&[li, i]).abs() < 1e-6);
            }
        }
    }

    #[test]
    fn spectrum_gradient_ragged_tail() {
        let tf = Tensor::from_vec((0..7).map(|v| v as f32).collect(), &[1, 7]);
        let g = spectrum_gradient(&tf, 3);
        assert_eq!(g.shape(), &[1, 7]);
        // Tail chunk has length 1: 6 - 3 = 3.
        assert_eq!(g.at(&[0, 6]), 3.0);
    }

    #[test]
    fn triple_decomposition_reconstructs_exactly() {
        let x = mixed_series(96);
        let cfg = TripleConfig { lambda: 8, ..Default::default() };
        let d = triple_decompose(&x, &cfg);
        let rec = d.reconstruct();
        assert!(rec.allclose(&x, 1e-3), "max diff {}", rec.max_abs_diff(&x));
    }

    #[test]
    fn stable_periodic_series_has_small_fluctuant_part() {
        // A perfectly periodic series whose period divides T_f produces a
        // near-repeating TF grid -> small fluctuant part away from the
        // first chunk.
        let t = 96;
        let data: Vec<f32> = (0..t)
            .map(|i| (2.0 * std::f32::consts::PI * i as f32 / 24.0).sin())
            .collect();
        let x = Tensor::from_vec(data, &[t, 1]);
        let cfg = TripleConfig { lambda: 8, t_f: Some(24), trend_kernels: vec![25], ..Default::default() };
        let d = triple_decompose(&x, &cfg);
        // Energy of fluctuant part beyond the first chunk should be small
        // relative to the seasonal energy.
        let seas_energy: f32 = d.seasonal.as_slice().iter().map(|v| v * v).sum();
        let fl: Vec<f32> = (24..t).map(|i| d.fluctuant_1d.at(&[i, 0])).collect();
        let fl_energy: f32 = fl.iter().map(|v| v * v).sum();
        assert!(
            fl_energy < 0.3 * seas_energy,
            "fluctuant energy {fl_energy} vs seasonal {seas_energy}"
        );
    }

    #[test]
    fn amplitude_modulated_series_has_larger_fluctuant_part() {
        let t = 96;
        let stable: Vec<f32> = (0..t)
            .map(|i| (2.0 * std::f32::consts::PI * i as f32 / 24.0).sin())
            .collect();
        let modulated: Vec<f32> = (0..t)
            .map(|i| {
                let env = 1.0 + 0.8 * (2.0 * std::f32::consts::PI * i as f32 / 96.0).sin();
                env * (2.0 * std::f32::consts::PI * i as f32 / 24.0).sin()
            })
            .collect();
        let cfg = TripleConfig { lambda: 8, t_f: Some(24), trend_kernels: vec![25], ..Default::default() };
        let energy = |v: &[f32]| -> f32 {
            let x = Tensor::from_vec(v.to_vec(), &[t, 1]);
            let d = triple_decompose(&x, &cfg);
            d.fluctuant_1d.as_slice()[24..].iter().map(|v| v * v).sum()
        };
        assert!(energy(&modulated) > 2.0 * energy(&stable));
    }

    #[test]
    fn multichannel_decomposition_is_channelwise() {
        let t = 48;
        let mut data = Vec::new();
        for i in 0..t {
            data.push((i as f32 / 8.0).sin());
            data.push((i as f32 / 5.0).cos() * 2.0);
        }
        let x = Tensor::from_vec(data, &[t, 2]);
        let cfg = TripleConfig { lambda: 6, t_f: Some(12), ..Default::default() };
        let d = triple_decompose(&x, &cfg);
        assert_eq!(d.regular.shape(), &[t, 2]);
        assert_eq!(d.fluctuant_2d.shape(), &[6, t, 2]);
        assert!(d.reconstruct().allclose(&x, 1e-3));
    }
}
