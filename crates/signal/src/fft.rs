//! Fast Fourier Transform: iterative radix-2 Cooley–Tukey for power-of-two
//! lengths and Bluestein's chirp-z algorithm for arbitrary lengths, plus
//! real-input helpers.

use crate::complex::Complex32;

/// Round `n` up to the next power of two.
pub fn next_pow2(n: usize) -> usize {
    n.next_power_of_two()
}

/// In-place radix-2 FFT. `inverse` selects the sign of the exponent; the
/// inverse additionally divides by `n`, so `ifft(fft(x)) == x`.
///
/// # Panics
/// Panics if `data.len()` is not a power of two.
fn fft_pow2(data: &mut [Complex32], inverse: bool) {
    let n = data.len();
    assert!(n.is_power_of_two(), "fft_pow2 requires power-of-two length, got {n}");
    if n <= 1 {
        return;
    }
    // Bit-reversal permutation.
    let bits = n.trailing_zeros();
    for i in 0..n {
        let j = i.reverse_bits() >> (usize::BITS - bits);
        if j > i {
            data.swap(i, j);
        }
    }
    // Butterfly passes.
    let sign = if inverse { 1.0f64 } else { -1.0f64 };
    let mut len = 2;
    while len <= n {
        let ang = sign * 2.0 * std::f64::consts::PI / len as f64;
        let wlen = Complex32::new(ang.cos() as f32, ang.sin() as f32);
        for start in (0..n).step_by(len) {
            let mut w = Complex32::ONE;
            for k in 0..len / 2 {
                let u = data[start + k];
                let v = data[start + k + len / 2] * w;
                data[start + k] = u + v;
                data[start + k + len / 2] = u - v;
                w *= wlen;
            }
        }
        len <<= 1;
    }
    if inverse {
        let inv = 1.0 / n as f32;
        for v in data.iter_mut() {
            *v = v.scale(inv);
        }
    }
}

/// Bluestein chirp-z transform: FFT of arbitrary length `n` expressed as a
/// convolution of length `>= 2n-1`, evaluated with radix-2 FFTs.
fn fft_bluestein(input: &[Complex32], inverse: bool) -> Vec<Complex32> {
    let n = input.len();
    let m = next_pow2(2 * n - 1);
    let sign = if inverse { 1.0f64 } else { -1.0f64 };
    // Chirp factors w_k = exp(sign * i * pi * k^2 / n), computed with k^2
    // reduced mod 2n to stay accurate for large k.
    let chirp: Vec<Complex32> = (0..n)
        .map(|k| {
            let e = (k as u64 * k as u64) % (2 * n as u64);
            let ang = sign * std::f64::consts::PI * e as f64 / n as f64;
            Complex32::new(ang.cos() as f32, ang.sin() as f32)
        })
        .collect();
    let mut a = vec![Complex32::ZERO; m];
    for k in 0..n {
        a[k] = input[k] * chirp[k];
    }
    let mut b = vec![Complex32::ZERO; m];
    for k in 0..n {
        let c = chirp[k].conj();
        b[k] = c;
        if k != 0 {
            b[m - k] = c;
        }
    }
    fft_pow2(&mut a, false);
    fft_pow2(&mut b, false);
    for (x, y) in a.iter_mut().zip(&b) {
        *x *= *y;
    }
    fft_pow2(&mut a, true);
    let mut out: Vec<Complex32> = (0..n).map(|k| a[k] * chirp[k]).collect();
    if inverse {
        let inv = 1.0 / n as f32;
        for v in out.iter_mut() {
            *v = v.scale(inv);
        }
    }
    out
}

/// Observability for one public FFT entry: counters at level 1 (these
/// calls are too hot for per-call spans), a span only at the verbose
/// level.
fn fft_obs(n: usize) -> Option<ts3_obs::Span> {
    ts3_obs::counter_add("signal.fft.calls", 1);
    ts3_obs::counter_add("signal.fft.points", n as u64);
    if ts3_obs::verbose() {
        let mut s = ts3_obs::span("signal.fft");
        s.field("n", n);
        Some(s)
    } else {
        None
    }
}

/// Forward FFT of a complex sequence of **any** length.
pub fn fft(input: &[Complex32]) -> Vec<Complex32> {
    if input.len() <= 1 {
        return input.to_vec();
    }
    let _s = fft_obs(input.len());
    if input.len().is_power_of_two() {
        let mut buf = input.to_vec();
        fft_pow2(&mut buf, false);
        buf
    } else {
        fft_bluestein(input, false)
    }
}

/// Inverse FFT of a complex sequence of any length (normalised by `1/n`).
pub fn ifft(input: &[Complex32]) -> Vec<Complex32> {
    if input.len() <= 1 {
        return input.to_vec();
    }
    let _s = fft_obs(input.len());
    if input.len().is_power_of_two() {
        let mut buf = input.to_vec();
        fft_pow2(&mut buf, true);
        buf
    } else {
        fft_bluestein(input, true)
    }
}

/// In-place power-of-two FFT, exposed for planned/buffered callers (the CWT
/// engine) that want to avoid per-call allocation.
pub fn fft_pow2_inplace(data: &mut [Complex32], inverse: bool) {
    fft_pow2(data, inverse);
}

/// Forward FFT of a real sequence; returns the full complex spectrum.
pub fn rfft(input: &[f32]) -> Vec<Complex32> {
    let buf: Vec<Complex32> = input.iter().map(|&v| Complex32::from_real(v)).collect();
    fft(&buf)
}

/// Amplitude spectrum `|FFT(x)|` of a real sequence (full length).
pub fn amplitude_spectrum(input: &[f32]) -> Vec<f32> {
    rfft(input).iter().map(|z| z.abs()).collect()
}

/// Naive O(n^2) DFT — reference implementation used only by tests.
pub fn dft_naive(input: &[Complex32]) -> Vec<Complex32> {
    let n = input.len();
    (0..n)
        .map(|k| {
            let mut acc = Complex32::ZERO;
            for (t, &x) in input.iter().enumerate() {
                let ang = -2.0 * std::f64::consts::PI * (k as f64) * (t as f64) / n as f64;
                acc += x * Complex32::new(ang.cos() as f32, ang.sin() as f32);
            }
            acc
        })
        .collect()
}

/// Linear convolution of two real sequences via FFT
/// (`len = a.len() + b.len() - 1`).
pub fn convolve_real(a: &[f32], b: &[f32]) -> Vec<f32> {
    if a.is_empty() || b.is_empty() {
        return Vec::new();
    }
    let out_len = a.len() + b.len() - 1;
    let m = next_pow2(out_len);
    let mut fa = vec![Complex32::ZERO; m];
    for (dst, &v) in fa.iter_mut().zip(a) {
        *dst = Complex32::from_real(v);
    }
    let mut fb = vec![Complex32::ZERO; m];
    for (dst, &v) in fb.iter_mut().zip(b) {
        *dst = Complex32::from_real(v);
    }
    fft_pow2(&mut fa, false);
    fft_pow2(&mut fb, false);
    for (x, y) in fa.iter_mut().zip(&fb) {
        *x *= *y;
    }
    fft_pow2(&mut fa, true);
    fa[..out_len].iter().map(|z| z.re).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: &[Complex32], b: &[Complex32], tol: f32) {
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(b) {
            assert!(
                (x.re - y.re).abs() < tol && (x.im - y.im).abs() < tol,
                "{x:?} vs {y:?}"
            );
        }
    }

    #[test]
    fn fft_of_impulse_is_flat() {
        let mut x = vec![Complex32::ZERO; 8];
        x[0] = Complex32::ONE;
        let y = fft(&x);
        for z in y {
            assert!((z.re - 1.0).abs() < 1e-5 && z.im.abs() < 1e-5);
        }
    }

    #[test]
    fn fft_of_constant_concentrates_at_dc() {
        let x = vec![Complex32::ONE; 16];
        let y = fft(&x);
        assert!((y[0].re - 16.0).abs() < 1e-4);
        for z in &y[1..] {
            assert!(z.abs() < 1e-4);
        }
    }

    #[test]
    fn fft_matches_naive_dft_pow2() {
        let x: Vec<Complex32> = (0..16)
            .map(|i| Complex32::new((i as f32).sin(), (i as f32 * 0.7).cos()))
            .collect();
        assert_close(&fft(&x), &dft_naive(&x), 1e-3);
    }

    #[test]
    fn fft_matches_naive_dft_non_pow2() {
        for n in [3usize, 5, 6, 7, 12, 15, 31, 96] {
            let x: Vec<Complex32> = (0..n)
                .map(|i| Complex32::new((i as f32 * 0.3).sin(), (i as f32 * 1.1).cos()))
                .collect();
            assert_close(&fft(&x), &dft_naive(&x), 2e-3);
        }
    }

    #[test]
    fn ifft_inverts_fft() {
        for n in [8usize, 13, 96, 100] {
            let x: Vec<Complex32> = (0..n)
                .map(|i| Complex32::new((i as f32).cos(), (i as f32 * 0.5).sin()))
                .collect();
            let y = ifft(&fft(&x));
            assert_close(&x, &y, 1e-3);
        }
    }

    #[test]
    fn rfft_of_sinusoid_peaks_at_its_frequency() {
        let n = 64;
        let f = 5.0;
        let x: Vec<f32> = (0..n)
            .map(|t| (2.0 * std::f32::consts::PI * f * t as f32 / n as f32).sin())
            .collect();
        let amp = amplitude_spectrum(&x);
        // Peak must be at bin 5 (and mirror bin 59); magnitude n/2.
        let peak = amp[1..n / 2]
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap()
            .0
            + 1;
        assert_eq!(peak, 5);
        assert!((amp[5] - n as f32 / 2.0).abs() < 0.5);
    }

    #[test]
    fn parseval_energy_conservation() {
        let n = 32;
        let x: Vec<f32> = (0..n).map(|t| ((t * t) as f32 * 0.01).sin()).collect();
        let time_energy: f32 = x.iter().map(|v| v * v).sum();
        let freq_energy: f32 =
            rfft(&x).iter().map(|z| z.norm_sqr()).sum::<f32>() / n as f32;
        assert!((time_energy - freq_energy).abs() < 1e-2 * time_energy.max(1.0));
    }

    #[test]
    fn fft_linearity() {
        let n = 24;
        let a: Vec<Complex32> = (0..n).map(|i| Complex32::from_real(i as f32)).collect();
        let b: Vec<Complex32> =
            (0..n).map(|i| Complex32::new(0.0, (i as f32).sin())).collect();
        let sum: Vec<Complex32> = a.iter().zip(&b).map(|(&x, &y)| x + y).collect();
        let lhs = fft(&sum);
        let fa = fft(&a);
        let fb = fft(&b);
        let rhs: Vec<Complex32> = fa.iter().zip(&fb).map(|(&x, &y)| x + y).collect();
        assert_close(&lhs, &rhs, 1e-2);
    }

    #[test]
    fn convolve_real_matches_manual() {
        // [1,2,3] * [1,1] = [1,3,5,3]
        let y = convolve_real(&[1.0, 2.0, 3.0], &[1.0, 1.0]);
        assert_eq!(y.len(), 4);
        for (got, want) in y.iter().zip([1.0, 3.0, 5.0, 3.0]) {
            assert!((got - want).abs() < 1e-4);
        }
    }

    #[test]
    fn convolve_empty_is_empty() {
        assert!(convolve_real(&[], &[1.0]).is_empty());
    }

    #[test]
    fn tiny_lengths() {
        assert_eq!(fft(&[]).len(), 0);
        let one = fft(&[Complex32::new(2.0, 3.0)]);
        assert_eq!(one[0], Complex32::new(2.0, 3.0));
    }
}
