//! # ts3-data
//!
//! Data substrate for the TS3Net reproduction:
//!
//! * [`synthetic`] — deterministic generators mirroring the paper's nine
//!   benchmarks (Table II): trend + stable periodicities + dynamic
//!   spectral fluctuation + noise, with per-dataset parameters;
//! * [`window`] — standardised sliding-window forecasting tasks with
//!   train/val/test borders and mini-batching;
//! * [`mask`] — pointwise imputation masks (Table V) and noise injection
//!   (Table VIII);
//! * [`scaler`] — per-channel standardisation;
//! * [`csv`] — loader for the real benchmark CSVs when available, so the
//!   same harness runs on the originals.
//!
//! ```
//! use ts3_data::{spec_by_name, ForecastTask, Split};
//!
//! let spec = spec_by_name("ETTh1").unwrap();
//! let raw = spec.generate(0);
//! let task = ForecastTask::new(&raw, 96, 96, spec.split);
//! let (x, y) = task.window(Split::Train, 0);
//! assert_eq!(x.shape(), &[96, 7]);
//! assert_eq!(y.shape(), &[96, 7]);
//! ```

pub mod csv;
pub mod mask;
pub mod scaler;
pub mod synthetic;
pub mod window;

pub use csv::{load_csv, parse_csv, try_load_benchmark};
pub use mask::{inject_noise, mask_batch, MaskedBatch};
pub use scaler::StandardScaler;
pub use synthetic::{catalog, catalog_with_scale, spec_by_name, PeriodSpec, SeriesSpec};
pub use window::{ForecastTask, Split};
