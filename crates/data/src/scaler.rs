//! Per-channel standardisation, fit on the training split only (the
//! protocol every baseline paper follows).

use ts3_tensor::Tensor;

/// Per-channel mean/std scaler.
#[derive(Debug, Clone)]
pub struct StandardScaler {
    /// Per-channel means.
    pub mean: Vec<f32>,
    /// Per-channel standard deviations (floored at a small epsilon).
    pub std: Vec<f32>,
}

impl StandardScaler {
    /// Fit on a `[N, C]` training slice.
    pub fn fit(data: &Tensor) -> Self {
        assert_eq!(data.rank(), 2, "StandardScaler::fit expects [N, C]");
        let (n, c) = (data.shape()[0], data.shape()[1]);
        assert!(n > 0, "cannot fit a scaler on an empty series");
        let mut mean = vec![0.0f64; c];
        #[allow(clippy::needless_range_loop)] // (i, ch) grid walk
        for i in 0..n {
            for ch in 0..c {
                mean[ch] += data.at(&[i, ch]) as f64;
            }
        }
        for m in mean.iter_mut() {
            *m /= n as f64;
        }
        let mut var = vec![0.0f64; c];
        for i in 0..n {
            for ch in 0..c {
                let d = data.at(&[i, ch]) as f64 - mean[ch];
                var[ch] += d * d;
            }
        }
        let std: Vec<f32> = var
            .iter()
            .map(|v| ((v / n as f64).sqrt() as f32).max(1e-6))
            .collect();
        StandardScaler {
            mean: mean.into_iter().map(|m| m as f32).collect(),
            std,
        }
    }

    /// Standardise a `[.., C]` tensor channel-wise (last axis = channels).
    pub fn transform(&self, data: &Tensor) -> Tensor {
        // ts3-lint: allow(no-unwrap-in-lib) rank >= 1 is the documented input contract of the scaler API
        let c = *data.shape().last().expect("transform: rank >= 1 required");
        assert_eq!(c, self.mean.len(), "channel count mismatch");
        let mut out = data.clone();
        let slice = out.as_mut_slice();
        for (i, v) in slice.iter_mut().enumerate() {
            let ch = i % c;
            *v = (*v - self.mean[ch]) / self.std[ch];
        }
        out
    }

    /// Invert [`StandardScaler::transform`].
    pub fn inverse_transform(&self, data: &Tensor) -> Tensor {
        // ts3-lint: allow(no-unwrap-in-lib) rank >= 1 is the documented input contract of the scaler API
        let c = *data.shape().last().expect("inverse_transform: rank >= 1 required");
        assert_eq!(c, self.mean.len(), "channel count mismatch");
        let mut out = data.clone();
        let slice = out.as_mut_slice();
        for (i, v) in slice.iter_mut().enumerate() {
            let ch = i % c;
            *v = *v * self.std[ch] + self.mean[ch];
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fit_computes_channel_statistics() {
        let data = Tensor::from_vec(vec![1.0, 10.0, 3.0, 30.0], &[2, 2]);
        let s = StandardScaler::fit(&data);
        assert_eq!(s.mean, vec![2.0, 20.0]);
        assert_eq!(s.std, vec![1.0, 10.0]);
    }

    #[test]
    fn transform_standardises() {
        let data = Tensor::from_vec(vec![1.0, 10.0, 3.0, 30.0], &[2, 2]);
        let s = StandardScaler::fit(&data);
        let z = s.transform(&data);
        assert_eq!(z.as_slice(), &[-1.0, -1.0, 1.0, 1.0]);
    }

    #[test]
    fn roundtrip_is_identity() {
        let data = Tensor::randn(&[50, 3], 5).mul_scalar(4.0).add_scalar(7.0);
        let s = StandardScaler::fit(&data);
        let back = s.inverse_transform(&s.transform(&data));
        assert!(back.allclose(&data, 1e-3));
    }

    #[test]
    fn constant_channel_does_not_divide_by_zero() {
        let data = Tensor::full(&[10, 1], 5.0);
        let s = StandardScaler::fit(&data);
        let z = s.transform(&data);
        assert!(z.all_finite());
        assert_eq!(z.as_slice()[0], 0.0);
    }

    #[test]
    fn transform_applies_to_3d_batches() {
        let train = Tensor::from_vec(vec![0.0, 2.0, 4.0, 6.0], &[4, 1]);
        let s = StandardScaler::fit(&train);
        let batch = Tensor::from_vec(vec![3.0, 3.0], &[1, 2, 1]);
        let z = s.transform(&batch);
        assert_eq!(z.shape(), &[1, 2, 1]);
        assert!((z.as_slice()[0] - 0.0).abs() < 1e-6);
    }
}
