//! Synthetic dataset generators mirroring the statistical character of the
//! paper's nine benchmarks (Table II).
//!
//! Each generator produces a multivariate series with exactly the three
//! ingredients the paper's triple decomposition targets (Section I):
//!
//! 1. a slow **trend** (piecewise linear drift),
//! 2. **stable periodicities** (per-channel phases and amplitudes),
//! 3. **dynamic spectral fluctuation** — amplitude-modulated carriers and
//!    transient oscillation bursts whose instantaneous spectrum changes
//!    over time, plus optional random-walk components,
//!
//! with per-dataset parameters (dimension, dominant periods, burstiness,
//! noise floor) chosen to mirror each real dataset's description in the
//! paper. See DESIGN.md §1 for why this substitution preserves the
//! experiments' comparative structure.

use ts3_rng::rngs::StdRng;
use ts3_rng::{normal_f32, Rng, SeedableRng};
use ts3_tensor::Tensor;

/// One periodic ingredient of a synthetic series.
#[derive(Debug, Clone)]
pub struct PeriodSpec {
    /// Period length in samples.
    pub period: f32,
    /// Base amplitude.
    pub amplitude: f32,
    /// Depth of slow amplitude modulation in `[0, 1]` — this is what
    /// creates the paper's "fluctuant" spectral dynamics.
    pub modulation: f32,
}

/// Full description of one synthetic benchmark.
#[derive(Debug, Clone)]
pub struct SeriesSpec {
    /// Dataset name (matches the paper's naming).
    pub name: &'static str,
    /// Number of variates (paper's `Dim`, capped for wide datasets —
    /// documented in DESIGN.md).
    pub dims: usize,
    /// Total length of the generated series.
    pub len: usize,
    /// Periodic ingredients.
    pub periods: Vec<PeriodSpec>,
    /// Linear-drift scale per 1000 steps.
    pub trend_scale: f32,
    /// Expected number of transient oscillation bursts per 1000 steps.
    pub burst_rate: f32,
    /// Random-walk component scale (dominates for Exchange-like data).
    pub random_walk: f32,
    /// White-noise standard deviation.
    pub noise_std: f32,
    /// Sampling-frequency label for Table II.
    pub freq_label: &'static str,
    /// Scenario label for Table II.
    pub info_label: &'static str,
    /// Train/val/test split fractions.
    pub split: (f32, f32, f32),
}

impl SeriesSpec {
    /// Generate the series as a `[len, dims]` tensor, deterministically
    /// from `seed`.
    pub fn generate(&self, seed: u64) -> Tensor {
        let mut rng = StdRng::seed_from_u64(seed ^ hash_name(self.name));
        let t_len = self.len;
        let c = self.dims;
        let mut cols: Vec<Vec<f32>> = (0..c).map(|ch| self.generate_channel(ch, &mut rng)).collect();
        // Cross-channel structure: the upper half of the channels is
        // additionally driven by a lagged nonlinear function of a lower
        // channel (real multivariate benchmarks — load feeders, road
        // sensors, weather variables — are strongly cross-correlated with
        // delays). Channel-mixing models can exploit this; channel-
        // independent ones cannot, mirroring the paper's comparisons.
        if c >= 2 {
            let lag = Self::COUPLING_LAG;
            for ch in c / 2..c {
                let src = ch - c / 2;
                let gain = 0.8 + 0.1 * (ch % 3) as f32;
                let driver: Vec<f32> = cols[src].clone();
                let col = &mut cols[ch];
                for t in lag..t_len {
                    col[t] += gain * (driver[t - lag]).tanh();
                }
            }
        }
        let mut data = vec![0.0f32; t_len * c];
        for (ch, col) in cols.iter().enumerate() {
            for (t, &v) in col.iter().enumerate() {
                data[t * c + ch] = v;
            }
        }
        Tensor::from_vec(data, &[t_len, c])
    }

    /// Lag (in samples) used by the cross-channel coupling.
    pub const COUPLING_LAG: usize = 5;

    fn generate_channel(&self, ch: usize, rng: &mut StdRng) -> Vec<f32> {
        let t_len = self.len;
        let mut out = vec![0.0f32; t_len];

        // 1. Piecewise-linear trend: a few random knots.
        let knots = 4usize;
        let mut slope = rng.gen_range(-1.0f32..1.0) * self.trend_scale / 1000.0;
        let mut level = rng.gen_range(-1.0f32..1.0);
        let seg = (t_len / knots).max(1);
        for (t, dst) in out.iter_mut().enumerate() {
            if t > 0 && t % seg == 0 {
                slope = rng.gen_range(-1.0f32..1.0) * self.trend_scale / 1000.0;
            }
            level += slope;
            *dst += level;
        }

        // 2. Stable periodicities with per-channel phase/amplitude jitter,
        //    each optionally amplitude-modulated by a slow envelope.
        for (pi, p) in self.periods.iter().enumerate() {
            let phase = rng.gen_range(0.0f32..std::f32::consts::TAU);
            let amp = p.amplitude * rng.gen_range(0.7f32..1.3);
            // Envelope period: slow (4-10 periods of the carrier).
            let env_period = p.period * rng.gen_range(4.0f32..10.0);
            let env_phase = rng.gen_range(0.0f32..std::f32::consts::TAU);
            for (t, dst) in out.iter_mut().enumerate() {
                let tf = t as f32;
                let env = 1.0
                    + p.modulation
                        * (std::f32::consts::TAU * tf / env_period + env_phase).sin();
                let carrier =
                    (std::f32::consts::TAU * tf / p.period + phase + pi as f32).sin();
                *dst += amp * env * carrier;
            }
        }

        // 3. Transient oscillation bursts: localized packets at random
        //    frequencies — the purely "fluctuant" spectral events.
        let expected = self.burst_rate * t_len as f32 / 1000.0;
        let n_bursts = sample_poissonish(expected, rng);
        for _ in 0..n_bursts {
            let centre = rng.gen_range(0..t_len) as f32;
            let width = rng.gen_range(5.0f32..30.0);
            let freq = rng.gen_range(0.05f32..0.45);
            let amp = rng.gen_range(0.5f32..1.5);
            let phase = rng.gen_range(0.0f32..std::f32::consts::TAU);
            let lo = ((centre - 3.0 * width).floor().max(0.0)) as usize;
            let hi = ((centre + 3.0 * width).ceil() as usize).min(t_len);
            for (t, dst) in out.iter_mut().enumerate().take(hi).skip(lo) {
                let d = (t as f32 - centre) / width;
                let env = (-d * d).exp();
                *dst += amp * env * (std::f32::consts::TAU * freq * t as f32 + phase).sin();
            }
        }

        // 4. Random walk (integrated noise) — dominates for exchange-rate
        //    style data.
        if self.random_walk > 0.0 {
            let mut acc = 0.0f32;
            for dst in out.iter_mut() {
                acc += normal_f32(rng) * self.random_walk;
                *dst += acc;
            }
        }

        // 5. White observation noise.
        if self.noise_std > 0.0 {
            for dst in out.iter_mut() {
                *dst += normal_f32(rng) * self.noise_std;
            }
        }
        // Per-channel offset so channels are distinguishable.
        let offset = ch as f32 * 0.1;
        for dst in out.iter_mut() {
            *dst += offset;
        }
        out
    }
}

/// Cheap Poisson-ish sampler (normal approximation, clamped).
fn sample_poissonish(mean: f32, rng: &mut StdRng) -> usize {
    if mean <= 0.0 {
        return 0;
    }
    let v = mean + normal_f32(rng) * mean.sqrt();
    v.round().max(0.0) as usize
}

fn hash_name(name: &str) -> u64 {
    // FNV-1a for deterministic per-dataset seeding.
    let mut h: u64 = 0xcbf29ce484222325;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// Length multiplier for the generated catalog; 1.0 gives the default
/// scaled sizes, smaller values give smoke-test sizes.
pub fn catalog_with_scale(scale: f32) -> Vec<SeriesSpec> {
    let s = |n: usize| ((n as f32 * scale) as usize).max(400);
    vec![
        SeriesSpec {
            name: "ETTm1",
            dims: 7,
            len: s(8000),
            periods: vec![
                PeriodSpec { period: 96.0, amplitude: 1.0, modulation: 0.3 },
                PeriodSpec { period: 24.0, amplitude: 0.5, modulation: 0.4 },
            ],
            trend_scale: 2.0,
            burst_rate: 1.5,
            random_walk: 0.0,
            noise_std: 0.2,
            freq_label: "15 mins",
            info_label: "Electricity",
            split: (0.6, 0.2, 0.2),
        },
        SeriesSpec {
            name: "ETTm2",
            dims: 7,
            len: s(8000),
            periods: vec![
                PeriodSpec { period: 96.0, amplitude: 1.2, modulation: 0.2 },
                PeriodSpec { period: 48.0, amplitude: 0.4, modulation: 0.3 },
            ],
            trend_scale: 3.0,
            burst_rate: 0.8,
            random_walk: 0.0,
            noise_std: 0.15,
            freq_label: "15 mins",
            info_label: "Electricity",
            split: (0.6, 0.2, 0.2),
        },
        SeriesSpec {
            name: "ETTh1",
            dims: 7,
            len: s(2400),
            periods: vec![
                PeriodSpec { period: 24.0, amplitude: 1.0, modulation: 0.35 },
                PeriodSpec { period: 168.0, amplitude: 0.6, modulation: 0.25 },
            ],
            trend_scale: 2.5,
            burst_rate: 2.0,
            random_walk: 0.0,
            noise_std: 0.25,
            freq_label: "Hourly",
            info_label: "Electricity",
            split: (0.6, 0.2, 0.2),
        },
        SeriesSpec {
            name: "ETTh2",
            dims: 7,
            len: s(2400),
            periods: vec![
                PeriodSpec { period: 24.0, amplitude: 0.8, modulation: 0.5 },
                PeriodSpec { period: 168.0, amplitude: 0.5, modulation: 0.3 },
            ],
            trend_scale: 3.5,
            burst_rate: 2.5,
            random_walk: 0.01,
            noise_std: 0.3,
            freq_label: "Hourly",
            info_label: "Electricity",
            split: (0.6, 0.2, 0.2),
        },
        SeriesSpec {
            name: "Electricity",
            dims: 24, // paper: 321 clients; capped for CPU budget (DESIGN.md)
            len: s(4000),
            periods: vec![
                PeriodSpec { period: 24.0, amplitude: 1.2, modulation: 0.2 },
                PeriodSpec { period: 168.0, amplitude: 0.8, modulation: 0.15 },
            ],
            trend_scale: 1.5,
            burst_rate: 1.0,
            random_walk: 0.0,
            noise_std: 0.15,
            freq_label: "Hourly",
            info_label: "Electricity",
            split: (0.7, 0.1, 0.2),
        },
        SeriesSpec {
            name: "Traffic",
            dims: 24, // paper: 862 roads; capped for CPU budget (DESIGN.md)
            len: s(3200),
            periods: vec![
                PeriodSpec { period: 24.0, amplitude: 1.5, modulation: 0.25 },
                PeriodSpec { period: 168.0, amplitude: 1.0, modulation: 0.2 },
            ],
            trend_scale: 0.8,
            burst_rate: 4.0, // congestion spikes
            random_walk: 0.0,
            noise_std: 0.3,
            freq_label: "Hourly",
            info_label: "Transportation",
            split: (0.7, 0.1, 0.2),
        },
        SeriesSpec {
            name: "Weather",
            dims: 21,
            len: s(6000),
            periods: vec![
                PeriodSpec { period: 144.0, amplitude: 1.0, modulation: 0.3 },
                PeriodSpec { period: 36.0, amplitude: 0.3, modulation: 0.4 },
            ],
            trend_scale: 4.0,
            burst_rate: 1.2,
            random_walk: 0.02,
            noise_std: 0.2,
            freq_label: "10 mins",
            info_label: "Weather",
            split: (0.7, 0.1, 0.2),
        },
        SeriesSpec {
            name: "Exchange",
            dims: 8,
            len: s(2000),
            periods: vec![PeriodSpec { period: 120.0, amplitude: 0.1, modulation: 0.5 }],
            trend_scale: 1.0,
            burst_rate: 0.3,
            random_walk: 0.08, // dominated by the random walk
            noise_std: 0.02,
            freq_label: "Daily",
            info_label: "Exchange rate",
            split: (0.7, 0.1, 0.2),
        },
        SeriesSpec {
            name: "ILI",
            dims: 7,
            len: s(900),
            periods: vec![
                PeriodSpec { period: 52.0, amplitude: 1.5, modulation: 0.5 },
                PeriodSpec { period: 26.0, amplitude: 0.4, modulation: 0.6 },
            ],
            trend_scale: 5.0,
            burst_rate: 3.0, // epidemic waves
            random_walk: 0.01,
            noise_std: 0.25,
            freq_label: "Weekly",
            info_label: "Illness",
            split: (0.7, 0.1, 0.2),
        },
    ]
}

/// The default catalog of all nine benchmarks.
pub fn catalog() -> Vec<SeriesSpec> {
    catalog_with_scale(1.0)
}

/// Look up one benchmark spec by (case-insensitive) name.
pub fn spec_by_name(name: &str) -> Option<SeriesSpec> {
    catalog().into_iter().find(|s| s.name.eq_ignore_ascii_case(name))
}

#[cfg(test)]
mod tests {
    use super::*;
    use ts3_tensor::Tensor as T;

    #[test]
    fn catalog_has_nine_benchmarks() {
        let c = catalog();
        assert_eq!(c.len(), 9);
        let names: Vec<&str> = c.iter().map(|s| s.name).collect();
        for want in ["ETTm1", "ETTh2", "Electricity", "Traffic", "Weather", "Exchange", "ILI"] {
            assert!(names.contains(&want), "missing {want}");
        }
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let spec = spec_by_name("ETTh1").unwrap();
        let a = spec.generate(7);
        let b = spec.generate(7);
        let c = spec.generate(8);
        assert_eq!(a, b);
        assert!(a.max_abs_diff(&c) > 1e-3);
    }

    #[test]
    fn generated_shapes_match_spec() {
        for spec in catalog_with_scale(0.1) {
            let x = spec.generate(1);
            assert_eq!(x.shape(), &[spec.len, spec.dims], "{}", spec.name);
            assert!(x.all_finite(), "{} produced non-finite values", spec.name);
        }
    }

    #[test]
    fn dominant_period_is_recoverable() {
        // The strongest periodic ingredient must be detectable by FFT on a
        // window — the property TS3Net's period detection relies on.
        let spec = spec_by_name("ETTh1").unwrap();
        let x = spec.generate(3);
        // Use a 336-step window, channel 0, remove mean.
        let col: Vec<f32> = (1000..1336).map(|t| x.at(&[t, 0])).collect();
        let mean: f32 = col.iter().sum::<f32>() / col.len() as f32;
        let centered: Vec<f32> = col.iter().map(|v| v - mean).collect();
        // Autocorrelation at lag 24 should clearly beat lag 17 (off-period).
        let ac = |lag: usize| -> f32 {
            centered[..centered.len() - lag]
                .iter()
                .zip(&centered[lag..])
                .map(|(a, b)| a * b)
                .sum::<f32>()
        };
        assert!(ac(24) > ac(17), "lag-24 autocorrelation should dominate");
    }

    #[test]
    fn exchange_is_random_walk_like() {
        // First differences of Exchange should be much smaller than the
        // values themselves (integrated process).
        let spec = spec_by_name("Exchange").unwrap();
        let x = spec.generate(2);
        let col: Vec<f32> = (0..spec.len).map(|t| x.at(&[t, 0])).collect();
        let val_std = {
            let m = col.iter().sum::<f32>() / col.len() as f32;
            (col.iter().map(|v| (v - m) * (v - m)).sum::<f32>() / col.len() as f32).sqrt()
        };
        let diff_std = {
            let d: Vec<f32> = col.windows(2).map(|w| w[1] - w[0]).collect();
            let m = d.iter().sum::<f32>() / d.len() as f32;
            (d.iter().map(|v| (v - m) * (v - m)).sum::<f32>() / d.len() as f32).sqrt()
        };
        assert!(val_std > 4.0 * diff_std, "val {val_std} diff {diff_std}");
    }

    #[test]
    fn channels_are_distinct() {
        let spec = spec_by_name("ETTm1").unwrap();
        let x = spec.generate(1);
        let c0: Vec<f32> = (0..200).map(|t| x.at(&[t, 0])).collect();
        let c1: Vec<f32> = (0..200).map(|t| x.at(&[t, 1])).collect();
        let diff: f32 = c0.iter().zip(&c1).map(|(a, b)| (a - b).abs()).sum();
        assert!(diff > 1.0);
    }

    #[test]
    fn scale_reduces_length_with_floor() {
        let tiny = catalog_with_scale(0.01);
        for spec in tiny {
            assert!(spec.len >= 400);
        }
    }

    #[test]
    fn ili_is_short_and_weekly() {
        let spec = spec_by_name("ILI").unwrap();
        assert!(spec.len < spec_by_name("ETTm1").unwrap().len);
        assert_eq!(spec.freq_label, "Weekly");
    }

    #[test]
    fn generate_tensor_type_is_t_by_c() {
        let spec = spec_by_name("ILI").unwrap();
        let x: T = spec.generate(0);
        assert_eq!(x.rank(), 2);
    }
}
