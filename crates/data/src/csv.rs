//! Minimal CSV loader for real benchmark files: if the user drops the
//! original `ETTh1.csv` etc. into `data/`, the harness trains on the real
//! series instead of the synthetic stand-in.

use std::fs;
use std::io;
use std::path::Path;
use ts3_tensor::Tensor;

/// Load a numeric CSV into `[N, C]`. The first row is treated as a header
/// if any field fails to parse as a number; a leading date column (any
/// unparsable first field) is skipped on every row.
pub fn load_csv(path: &Path) -> io::Result<Tensor> {
    let text = fs::read_to_string(path)?;
    parse_csv(&text).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))
}

/// Parse CSV text; see [`load_csv`].
pub fn parse_csv(text: &str) -> Result<Tensor, String> {
    let mut rows: Vec<Vec<f32>> = Vec::new();
    let mut width: Option<usize> = None;
    for (ln, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let fields: Vec<&str> = line.split(',').map(str::trim).collect();
        // Skip a leading non-numeric column (dates).
        let start = usize::from(fields[0].parse::<f32>().is_err());
        let parsed: Result<Vec<f32>, _> =
            fields[start..].iter().map(|f| f.parse::<f32>()).collect();
        match parsed {
            Ok(vals) if !vals.is_empty() => {
                if let Some(w) = width {
                    if vals.len() != w {
                        return Err(format!(
                            "line {}: expected {} numeric fields, got {}",
                            ln + 1,
                            w,
                            vals.len()
                        ));
                    }
                } else {
                    width = Some(vals.len());
                }
                rows.push(vals);
            }
            _ if ln == 0 => continue, // header row
            Err(e) => return Err(format!("line {}: {e}", ln + 1)),
            Ok(_) => return Err(format!("line {}: no numeric fields", ln + 1)),
        }
    }
    let c = width.ok_or("no data rows")?;
    let n = rows.len();
    let mut data = Vec::with_capacity(n * c);
    for row in rows {
        data.extend(row);
    }
    Ok(Tensor::from_vec(data, &[n, c]))
}

/// Look for `data/<name>.csv` relative to the workspace root and load it
/// if present.
pub fn try_load_benchmark(name: &str) -> Option<Tensor> {
    let candidates = [
        format!("data/{name}.csv"),
        format!("../data/{name}.csv"),
        format!("../../data/{name}.csv"),
    ];
    for cand in candidates {
        let p = Path::new(&cand);
        if p.exists() {
            return load_csv(p).ok();
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_plain_numeric_csv() {
        let t = parse_csv("1.0,2.0\n3.0,4.0\n").unwrap();
        assert_eq!(t.shape(), &[2, 2]);
        assert_eq!(t.as_slice(), &[1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    fn skips_header_and_date_column() {
        let text = "date,HUFL,HULL\n2016-07-01 00:00:00,5.827,2.009\n2016-07-01 01:00:00,5.693,2.076\n";
        let t = parse_csv(text).unwrap();
        assert_eq!(t.shape(), &[2, 2]);
        assert!((t.at(&[0, 0]) - 5.827).abs() < 1e-4);
        assert!((t.at(&[1, 1]) - 2.076).abs() < 1e-4);
    }

    #[test]
    fn rejects_ragged_rows() {
        assert!(parse_csv("1,2\n3\n").is_err());
    }

    #[test]
    fn rejects_empty_input() {
        assert!(parse_csv("").is_err());
        assert!(parse_csv("a,b,c\n").is_err());
    }

    #[test]
    fn ignores_blank_lines() {
        let t = parse_csv("1,2\n\n3,4\n\n").unwrap();
        assert_eq!(t.shape(), &[2, 2]);
    }

    #[test]
    fn missing_benchmark_returns_none() {
        assert!(try_load_benchmark("definitely-not-a-dataset").is_none());
    }
}
