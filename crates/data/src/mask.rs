//! Imputation masking (paper Table V): randomly hide a ratio of time
//! points in length-96 windows; the model reconstructs them.

use ts3_rng::rngs::StdRng;
use ts3_rng::{normal_f32, Rng, SeedableRng};
use ts3_tensor::Tensor;

/// A masked batch for the imputation task.
#[derive(Debug, Clone)]
pub struct MaskedBatch {
    /// Input with masked positions zeroed, same shape as the original.
    pub masked: Tensor,
    /// Mask tensor: 1 where the value was **hidden** (loss positions),
    /// 0 where it was observed.
    pub mask: Tensor,
    /// The original (ground-truth) values.
    pub target: Tensor,
}

/// Mask `ratio` of the points of a `[B, T, C]` batch (pointwise masking,
/// the TimesNet protocol). Deterministic per seed.
pub fn mask_batch(x: &Tensor, ratio: f32, seed: u64) -> MaskedBatch {
    assert!((0.0..1.0).contains(&ratio), "mask ratio must be in [0, 1)");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut mask = Tensor::zeros(x.shape());
    for m in mask.as_mut_slice() {
        if rng.gen::<f32>() < ratio {
            *m = 1.0;
        }
    }
    let keep = mask.map(|m| 1.0 - m);
    MaskedBatch {
        masked: x.mul(&keep),
        mask,
        target: x.clone(),
    }
}

/// Inject noise into `ratio` of the points of a `[N, C]` series, drawing
/// noise from the per-channel standard deviation of the original signal
/// (the robustness experiment of Table VIII).
pub fn inject_noise(x: &Tensor, ratio: f32, seed: u64) -> Tensor {
    assert_eq!(x.rank(), 2, "inject_noise expects [N, C]");
    assert!((0.0..=1.0).contains(&ratio), "noise ratio must be in [0, 1]");
    if ratio == 0.0 {
        return x.clone();
    }
    let (n, c) = (x.shape()[0], x.shape()[1]);
    // Per-channel std of the source series: noise "follows the
    // distribution characteristics of the original signal".
    let mut std = vec![0.0f32; c];
    #[allow(clippy::needless_range_loop)] // per-channel stats gather
    for ch in 0..c {
        let col: Vec<f32> = (0..n).map(|i| x.at(&[i, ch])).collect();
        let mean: f32 = col.iter().sum::<f32>() / n as f32;
        std[ch] = (col.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / n as f32).sqrt();
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out = x.clone();
    for i in 0..n {
        #[allow(clippy::needless_range_loop)] // paired (i, ch) indexing
        for ch in 0..c {
            if rng.gen::<f32>() < ratio {
                let g = normal_f32(&mut rng);
                let v = out.at(&[i, ch]);
                out.set(&[i, ch], v + g * std[ch]);
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mask_ratio_is_respected() {
        let x = Tensor::ones(&[4, 96, 7]);
        for ratio in [0.125f32, 0.25, 0.375, 0.5] {
            let mb = mask_batch(&x, ratio, 3);
            let actual = mb.mask.sum() / mb.mask.numel() as f32;
            assert!(
                (actual - ratio).abs() < 0.03,
                "ratio {ratio}: measured {actual}"
            );
        }
    }

    #[test]
    fn masked_positions_are_zeroed() {
        let x = Tensor::full(&[2, 10, 3], 5.0);
        let mb = mask_batch(&x, 0.5, 1);
        for (m, v) in mb.mask.as_slice().iter().zip(mb.masked.as_slice()) {
            if *m == 1.0 {
                assert_eq!(*v, 0.0);
            } else {
                assert_eq!(*v, 5.0);
            }
        }
        assert_eq!(mb.target, x);
    }

    #[test]
    fn mask_is_deterministic_per_seed() {
        let x = Tensor::ones(&[1, 50, 2]);
        assert_eq!(mask_batch(&x, 0.3, 9).mask, mask_batch(&x, 0.3, 9).mask);
        assert_ne!(mask_batch(&x, 0.3, 9).mask, mask_batch(&x, 0.3, 10).mask);
    }

    #[test]
    fn zero_ratio_noise_is_identity() {
        let x = Tensor::randn(&[100, 2], 4);
        assert_eq!(inject_noise(&x, 0.0, 1), x);
    }

    #[test]
    fn noise_perturbs_roughly_ratio_points() {
        let x = Tensor::randn(&[2000, 1], 5);
        let y = inject_noise(&x, 0.1, 2);
        let changed = x
            .as_slice()
            .iter()
            .zip(y.as_slice())
            .filter(|(a, b)| a != b)
            .count();
        let frac = changed as f32 / x.numel() as f32;
        assert!((frac - 0.1).abs() < 0.03, "changed fraction {frac}");
    }

    #[test]
    fn noise_scale_follows_signal_std() {
        let x = Tensor::randn(&[5000, 1], 6).mul_scalar(10.0);
        let y = inject_noise(&x, 1.0, 3);
        let diff = y.sub(&x);
        // Injected noise std should be close to the signal std (10).
        assert!((diff.std() - 10.0).abs() < 1.0, "noise std {}", diff.std());
    }
}
