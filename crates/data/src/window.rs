//! Sliding-window forecasting datasets: train/val/test splits, window
//! extraction and mini-batching, following the TimesNet evaluation
//! protocol the paper adopts (lookback 96, horizons {96, 192, 336, 720}).

use crate::scaler::StandardScaler;
use ts3_rng::rngs::StdRng;
use ts3_rng::seq::SliceRandom;
use ts3_rng::SeedableRng;
use ts3_tensor::Tensor;

/// Which split of a dataset to read.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Split {
    /// Training windows.
    Train,
    /// Validation windows (early stopping).
    Val,
    /// Test windows (reported metrics).
    Test,
}

/// A forecasting task over one raw series: standardised windows of
/// `(lookback, horizon)` with split borders.
pub struct ForecastTask {
    /// Standardised full series `[N, C]`.
    pub data: Tensor,
    /// Scaler fitted on the train slice.
    pub scaler: StandardScaler,
    /// Lookback window length `T`.
    pub lookback: usize,
    /// Prediction horizon `H`.
    pub horizon: usize,
    borders: [(usize, usize); 3],
}

impl ForecastTask {
    /// Build a task from a raw `[N, C]` series with split fractions
    /// `(train, val, test)`. Val/test slices are extended backwards by the
    /// lookback so their first windows are usable, mirroring the reference
    /// protocol.
    pub fn new(
        raw: &Tensor,
        lookback: usize,
        horizon: usize,
        split: (f32, f32, f32),
    ) -> ForecastTask {
        assert_eq!(raw.rank(), 2, "ForecastTask expects [N, C]");
        let n = raw.shape()[0];
        let n_train = (n as f32 * split.0) as usize;
        let n_test = (n as f32 * split.2) as usize;
        let n_val = n - n_train - n_test;
        assert!(
            n_train > lookback + horizon && n_val + lookback > lookback + horizon,
            "series too short for lookback {lookback} + horizon {horizon} (n = {n})"
        );
        let train_slice = raw.narrow(0, 0, n_train);
        let scaler = StandardScaler::fit(&train_slice);
        let data = scaler.transform(raw);
        let borders = [
            (0, n_train),
            (n_train - lookback, n_train + n_val),
            (n - n_test - lookback, n),
        ];
        ForecastTask { data, scaler, lookback, horizon, borders }
    }

    /// Number of windows available in a split.
    pub fn len(&self, split: Split) -> usize {
        let (lo, hi) = self.borders[split_index(split)];
        (hi - lo).saturating_sub(self.lookback + self.horizon) + 1
    }

    /// True if the split holds no complete window.
    pub fn is_empty(&self, split: Split) -> bool {
        self.len(split) == 0
    }

    /// Number of channels.
    pub fn channels(&self) -> usize {
        self.data.shape()[1]
    }

    /// Fetch window `i` of a split: `(x [T, C], y [H, C])`.
    pub fn window(&self, split: Split, i: usize) -> (Tensor, Tensor) {
        let (lo, _) = self.borders[split_index(split)];
        assert!(i < self.len(split), "window index out of range");
        let start = lo + i;
        let x = self.data.narrow(0, start, self.lookback);
        let y = self.data.narrow(0, start + self.lookback, self.horizon);
        (x, y)
    }

    /// Assemble a batch of windows into `(x [B, T, C], y [B, H, C])`.
    pub fn batch(&self, split: Split, indices: &[usize]) -> (Tensor, Tensor) {
        let mut xs = Vec::with_capacity(indices.len());
        let mut ys = Vec::with_capacity(indices.len());
        for &i in indices {
            let (x, y) = self.window(split, i);
            xs.push(x);
            ys.push(y);
        }
        let xr: Vec<&Tensor> = xs.iter().collect();
        let yr: Vec<&Tensor> = ys.iter().collect();
        (Tensor::stack(&xr, 0), Tensor::stack(&yr, 0))
    }

    /// Shuffled batch index lists for one epoch, optionally capped at
    /// `max_batches` (the scaled training profile).
    pub fn epoch_batches(
        &self,
        split: Split,
        batch_size: usize,
        seed: u64,
        max_batches: Option<usize>,
    ) -> Vec<Vec<usize>> {
        let n = self.len(split);
        let mut order: Vec<usize> = (0..n).collect();
        if split == Split::Train {
            let mut rng = StdRng::seed_from_u64(seed);
            order.shuffle(&mut rng);
        }
        let mut batches: Vec<Vec<usize>> = order
            .chunks(batch_size)
            .filter(|c| c.len() == batch_size || split != Split::Train)
            .map(|c| c.to_vec())
            .collect();
        if let Some(m) = max_batches {
            batches.truncate(m);
        }
        batches
    }
}

fn split_index(split: Split) -> usize {
    match split {
        Split::Train => 0,
        Split::Val => 1,
        Split::Test => 2,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ramp(n: usize, c: usize) -> Tensor {
        Tensor::from_vec((0..n * c).map(|v| v as f32).collect(), &[n, c])
    }

    #[test]
    fn splits_are_disjoint_in_targets() {
        // Train targets end before test targets start.
        let raw = ramp(1000, 1);
        let task = ForecastTask::new(&raw, 24, 12, (0.6, 0.2, 0.2));
        let (_, train_last_y) = task.window(Split::Train, task.len(Split::Train) - 1);
        let (_, test_first_y) = task.window(Split::Test, 0);
        // De-standardise mentally: raw is increasing, so compare transforms.
        assert!(train_last_y.max() <= test_first_y.min());
    }

    #[test]
    fn window_alignment_x_precedes_y() {
        let raw = ramp(500, 1);
        let task = ForecastTask::new(&raw, 10, 5, (0.7, 0.1, 0.2));
        let (x, y) = task.window(Split::Train, 3);
        assert_eq!(x.shape(), &[10, 1]);
        assert_eq!(y.shape(), &[5, 1]);
        // y follows x immediately: standardisation preserves order and
        // equal spacing on a ramp.
        let step = x.at(&[1, 0]) - x.at(&[0, 0]);
        assert!((y.at(&[0, 0]) - (x.at(&[9, 0]) + step)).abs() < 1e-4);
    }

    #[test]
    fn len_counts_complete_windows() {
        let raw = ramp(200, 2);
        let task = ForecastTask::new(&raw, 20, 10, (0.6, 0.2, 0.2));
        // Train region: [0, 120) -> 120 - 30 + 1 = 91 windows.
        assert_eq!(task.len(Split::Train), 91);
        assert!(!task.is_empty(Split::Val));
        assert!(!task.is_empty(Split::Test));
        assert_eq!(task.channels(), 2);
    }

    #[test]
    fn batch_stacks_windows() {
        let raw = ramp(300, 2);
        let task = ForecastTask::new(&raw, 16, 8, (0.6, 0.2, 0.2));
        let (x, y) = task.batch(Split::Train, &[0, 5, 7]);
        assert_eq!(x.shape(), &[3, 16, 2]);
        assert_eq!(y.shape(), &[3, 8, 2]);
    }

    #[test]
    fn epoch_batches_shuffle_and_cap() {
        let raw = ramp(400, 1);
        let task = ForecastTask::new(&raw, 16, 8, (0.6, 0.2, 0.2));
        let b1 = task.epoch_batches(Split::Train, 8, 1, None);
        let b2 = task.epoch_batches(Split::Train, 8, 2, None);
        assert_ne!(b1[0], b2[0], "different seeds should shuffle differently");
        // All train batches are full.
        assert!(b1.iter().all(|b| b.len() == 8));
        let capped = task.epoch_batches(Split::Train, 8, 1, Some(3));
        assert_eq!(capped.len(), 3);
        // Eval batches keep the ragged tail and are ordered.
        let ev = task.epoch_batches(Split::Test, 7, 0, None);
        let total: usize = ev.iter().map(|b| b.len()).sum();
        assert_eq!(total, task.len(Split::Test));
        assert_eq!(ev[0][0], 0);
    }

    #[test]
    fn training_data_is_standardised() {
        let raw = ramp(500, 1).mul_scalar(3.0).add_scalar(100.0);
        let task = ForecastTask::new(&raw, 24, 12, (0.6, 0.2, 0.2));
        let train = task.data.narrow(0, 0, 300);
        assert!(train.mean().abs() < 1e-3);
        assert!((train.std() - 1.0).abs() < 1e-2);
    }

    #[test]
    #[should_panic(expected = "too short")]
    fn too_short_series_panics() {
        let raw = ramp(50, 1);
        let _ = ForecastTask::new(&raw, 96, 96, (0.6, 0.2, 0.2));
    }
}
