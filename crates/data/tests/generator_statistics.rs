//! Statistical checks over every synthetic benchmark: the structure the
//! paper's method targets (trend, stable periodicity, fluctuation) must
//! actually be present and recoverable in each generated series.

use ts3_data::{catalog_with_scale, spec_by_name, ForecastTask, Split};
use ts3_tensor::Tensor;

fn column(x: &Tensor, ch: usize, range: std::ops::Range<usize>) -> Vec<f32> {
    range.map(|t| x.at(&[t, ch])).collect()
}

fn autocorr(xs: &[f32], lag: usize) -> f32 {
    let mean = xs.iter().sum::<f32>() / xs.len() as f32;
    let var: f32 = xs.iter().map(|v| (v - mean).powi(2)).sum();
    if var < 1e-9 {
        return 0.0;
    }
    xs[..xs.len() - lag]
        .iter()
        .zip(&xs[lag..])
        .map(|(a, b)| (a - mean) * (b - mean))
        .sum::<f32>()
        / var
}

/// Remove low-frequency content (trend / random walk) by subtracting a
/// centred moving average of width `window`, so the autocorrelation
/// measures the periodic component rather than the walk realisation.
fn detrend(xs: &[f32], window: usize) -> Vec<f32> {
    let half = window / 2;
    (0..xs.len())
        .map(|t| {
            let lo = t.saturating_sub(half);
            let hi = (t + half + 1).min(xs.len());
            let mean = xs[lo..hi].iter().sum::<f32>() / (hi - lo) as f32;
            xs[t] - mean
        })
        .collect()
}

#[test]
fn every_dataset_has_its_declared_dominant_period() {
    for spec in catalog_with_scale(0.3) {
        let x = spec.generate(11);
        let period = spec.periods[0].period.round() as usize;
        if 3 * period + 64 > spec.len {
            continue; // window too short to measure
        }
        // Average over channels: single-channel autocorrelation is noisy
        // for walk-dominated specs (Exchange), the ensemble mean is not.
        let (mut on, mut off) = (0.0f32, 0.0f32);
        for ch in 0..spec.dims {
            let col = detrend(&column(&x, ch, 64..64 + 3 * period), period);
            on += autocorr(&col, period);
            off += autocorr(&col, period + period / 3 + 1);
        }
        assert!(
            on > off,
            "{}: mean autocorr at declared period {period} ({on}) not above off-period ({off})",
            spec.name
        );
    }
}

#[test]
fn every_dataset_windows_cleanly_at_paper_settings() {
    for spec in catalog_with_scale(1.0) {
        let lookback = if spec.name == "ILI" { 36 } else { 96 };
        let horizon = if spec.name == "ILI" { 24 } else { 96 };
        let raw = spec.generate(1);
        let task = ForecastTask::new(&raw, lookback, horizon, spec.split);
        for split in [Split::Train, Split::Val, Split::Test] {
            assert!(
                task.len(split) >= 1,
                "{}: split {split:?} has no windows",
                spec.name
            );
        }
    }
}

#[test]
fn coupled_channels_correlate_with_lag() {
    // The cross-channel coupling drives channel c/2 + j from channel j
    // with a known lag; the lagged correlation must beat the instant one.
    let spec = spec_by_name("ETTh1").unwrap();
    let x = spec.generate(21);
    let n = 600.min(spec.len);
    let c = spec.dims;
    let src = column(&x, 0, 0..n);
    let dst = column(&x, c / 2, 0..n);
    let lag = ts3_data::SeriesSpec::COUPLING_LAG;
    let corr = |a: &[f32], b: &[f32]| -> f32 {
        let ma = a.iter().sum::<f32>() / a.len() as f32;
        let mb = b.iter().sum::<f32>() / b.len() as f32;
        let num: f32 = a.iter().zip(b).map(|(x, y)| (x - ma) * (y - mb)).sum();
        let da: f32 = a.iter().map(|x| (x - ma).powi(2)).sum();
        let db: f32 = b.iter().map(|y| (y - mb).powi(2)).sum();
        num / (da * db).sqrt().max(1e-9)
    };
    let lagged = corr(&src[..n - lag], &dst[lag..]);
    assert!(
        lagged > 0.1,
        "lagged cross-channel correlation too weak: {lagged}"
    );
}

#[test]
fn noise_floor_varies_across_datasets() {
    // ETTm2 is specified smoother than ETTh2: first-difference variance
    // (after removing the periodic part crudely via differencing at the
    // period) should reflect that.
    let smooth = spec_by_name("ETTm2").unwrap();
    let rough = spec_by_name("ETTh2").unwrap();
    assert!(smooth.noise_std < rough.noise_std);
}

#[test]
fn split_fractions_sum_to_one() {
    for spec in catalog_with_scale(0.1) {
        let (a, b, c) = spec.split;
        assert!((a + b + c - 1.0).abs() < 1e-5, "{}", spec.name);
        assert!(a > 0.0 && b > 0.0 && c > 0.0);
    }
}

#[test]
fn ili_is_the_short_benchmark() {
    let lens: Vec<(String, usize)> = catalog_with_scale(1.0)
        .into_iter()
        .map(|s| (s.name.to_string(), s.len))
        .collect();
    let ili = lens.iter().find(|(n, _)| n == "ILI").unwrap().1;
    for (name, len) in &lens {
        if name != "ILI" {
            assert!(*len > ili, "{name} ({len}) should exceed ILI ({ili})");
        }
    }
}
