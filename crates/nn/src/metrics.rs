//! Evaluation metrics (non-differentiable, computed on plain tensors):
//! MSE and MAE as reported in every table of the paper.

use ts3_tensor::Tensor;

/// Mean squared error between prediction and target.
pub fn mse(pred: &Tensor, target: &Tensor) -> f32 {
    assert_eq!(pred.shape(), target.shape(), "mse: shape mismatch");
    pred.sub(target).square().mean()
}

/// Mean absolute error between prediction and target.
pub fn mae(pred: &Tensor, target: &Tensor) -> f32 {
    assert_eq!(pred.shape(), target.shape(), "mae: shape mismatch");
    pred.sub(target).abs().mean()
}

/// Masked MSE over the positions where `mask == 1`.
pub fn masked_mse(pred: &Tensor, target: &Tensor, mask: &Tensor) -> f32 {
    let diff = pred.sub(target).square().mul(mask);
    let w = mask.sum().max(1.0);
    diff.sum() / w
}

/// Masked MAE over the positions where `mask == 1`.
pub fn masked_mae(pred: &Tensor, target: &Tensor, mask: &Tensor) -> f32 {
    let diff = pred.sub(target).abs().mul(mask);
    let w = mask.sum().max(1.0);
    diff.sum() / w
}


/// Fill hidden positions (mask == 1) of a `[B, T, C]` batch with each
/// (batch, channel)'s observed mean — the shared starting point for every
/// imputation model.
pub fn mean_fill(masked: &Tensor, mask: &Tensor) -> Tensor {
    assert_eq!(masked.shape(), mask.shape(), "mean_fill: shape mismatch");
    assert_eq!(masked.rank(), 3, "mean_fill expects [B, T, C]");
    let (b, t, c) = (masked.shape()[0], masked.shape()[1], masked.shape()[2]);
    let mut filled = masked.clone();
    for bi in 0..b {
        for ci in 0..c {
            let mut sum = 0.0f32;
            let mut cnt = 0.0f32;
            for ti in 0..t {
                if mask.at(&[bi, ti, ci]) == 0.0 {
                    sum += masked.at(&[bi, ti, ci]);
                    cnt += 1.0;
                }
            }
            let mean = if cnt > 0.0 { sum / cnt } else { 0.0 };
            for ti in 0..t {
                if mask.at(&[bi, ti, ci]) == 1.0 {
                    filled.set(&[bi, ti, ci], mean);
                }
            }
        }
    }
    filled
}

/// Streaming mean aggregator for per-batch metric values.
#[derive(Debug, Default, Clone)]
pub struct Average {
    sum: f64,
    count: u64,
}

impl Average {
    /// Fresh aggregator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add one observation.
    pub fn push(&mut self, v: f32) {
        self.sum += v as f64;
        self.count += 1;
    }

    /// Add an observation with a weight (e.g. batch size).
    pub fn push_weighted(&mut self, v: f32, w: f32) {
        self.sum += (v as f64) * (w as f64);
        self.count += w as u64;
    }

    /// Current mean (0 if empty).
    pub fn mean(&self) -> f32 {
        if self.count == 0 {
            0.0
        } else {
            (self.sum / self.count as f64) as f32
        }
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mse_mae_basic() {
        let p = Tensor::from_vec(vec![1.0, 2.0], &[2]);
        let t = Tensor::from_vec(vec![0.0, 4.0], &[2]);
        assert!((mse(&p, &t) - 2.5).abs() < 1e-6);
        assert!((mae(&p, &t) - 1.5).abs() < 1e-6);
    }

    #[test]
    fn perfect_prediction_is_zero() {
        let p = Tensor::randn(&[10], 1);
        assert_eq!(mse(&p, &p), 0.0);
        assert_eq!(mae(&p, &p), 0.0);
    }

    #[test]
    fn masked_metrics_ignore_unmasked() {
        let p = Tensor::from_vec(vec![1.0, 100.0], &[2]);
        let t = Tensor::zeros(&[2]);
        let m = Tensor::from_vec(vec![1.0, 0.0], &[2]);
        assert!((masked_mse(&p, &t, &m) - 1.0).abs() < 1e-6);
        assert!((masked_mae(&p, &t, &m) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn masked_metrics_empty_mask_is_zero() {
        let p = Tensor::ones(&[4]);
        let t = Tensor::zeros(&[4]);
        let m = Tensor::zeros(&[4]);
        assert_eq!(masked_mse(&p, &t, &m), 0.0);
    }

    #[test]
    fn average_accumulates() {
        let mut a = Average::new();
        a.push(1.0);
        a.push(3.0);
        assert_eq!(a.mean(), 2.0);
        assert_eq!(a.count(), 2);
        a.push_weighted(10.0, 2.0);
        assert_eq!(a.mean(), 6.0);
    }

    #[test]
    fn average_empty_is_zero() {
        assert_eq!(Average::new().mean(), 0.0);
    }
}
