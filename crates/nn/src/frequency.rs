//! Frequency-domain blocks used by the FEDformer and Autoformer baselines.
//!
//! Both blocks express the DFT as fixed constant matrices, so gradients
//! flow through ordinary matmuls — no complex-valued autograd needed.

use crate::module::{Ctx, Module};
use ts3_rng::rngs::StdRng;
use ts3_autograd::{Param, Var};
use ts3_signal::fft::rfft;
use ts3_tensor::Tensor;

/// Build the real/imaginary DFT analysis matrices of size `[t, modes]`
/// restricted to the first `modes` non-negative frequencies:
/// `Re[t,k] = cos(2 pi k t / T)`, `Im[t,k] = -sin(2 pi k t / T)`.
pub fn dft_matrices(t: usize, modes: usize) -> (Tensor, Tensor) {
    let mut re = vec![0.0f32; t * modes];
    let mut im = vec![0.0f32; t * modes];
    for ti in 0..t {
        for k in 0..modes {
            let ang = 2.0 * std::f64::consts::PI * (k as f64) * (ti as f64) / t as f64;
            re[ti * modes + k] = ang.cos() as f32;
            im[ti * modes + k] = -(ang.sin() as f32);
        }
    }
    (
        Tensor::from_vec(re, &[t, modes]),
        Tensor::from_vec(im, &[t, modes]),
    )
}

/// FEDformer-style Fourier-enhanced block: project the time axis onto a
/// truncated set of Fourier modes, scale each mode with learnable
/// per-mode/per-channel weights, and project back. Linear in `T`.
pub struct FourierBlock {
    /// Learnable per-mode scaling for the real part, `[modes, d]`.
    pub weight_re: Param,
    /// Learnable per-mode scaling for the imaginary part, `[modes, d]`.
    pub weight_im: Param,
    modes: usize,
}

impl FourierBlock {
    /// A block keeping `modes` low frequencies for width-`d` features.
    pub fn new(name: &str, modes: usize, d: usize, rng: &mut StdRng) -> Self {
        FourierBlock {
            weight_re: Param::new(
                format!("{name}.w_re"),
                Tensor::rand_uniform_with(&[modes, d], 0.5, 1.5, rng),
            ),
            weight_im: Param::new(
                format!("{name}.w_im"),
                Tensor::rand_uniform_with(&[modes, d], 0.5, 1.5, rng),
            ),
            modes,
        }
    }
}

impl Module for FourierBlock {
    fn forward(&self, x: &Var, ctx: &mut Ctx) -> Var {
        let _ = ctx;
        assert_eq!(x.shape().len(), 3, "FourierBlock expects [B, T, D]");
        let t = x.shape()[1];
        let modes = self.modes.min(t / 2 + 1);
        let (re_m, im_m) = dft_matrices(t, modes);
        // Analysis: [B, T, D] -> transpose time/feature handled by viewing
        // the projection as X^T ops; easier: Xf_re[b, k, d] via matmul over
        // the time axis. Permute to [B, D, T] then matmul [T, modes].
        let xt = x.permute(&[0, 2, 1]); // [B, D, T]
        let xf_re = xt.matmul(&Var::constant(re_m.clone())); // [B, D, modes]
        let xf_im = xt.matmul(&Var::constant(im_m.clone()));
        // Learnable per-mode complex scaling (elementwise, diagonal mixing):
        // (a + bi)(w_re + i w_im) = (a w_re - b w_im) + i (a w_im + b w_re).
        let w_re = self.weight_re.var().transpose(); // [d, modes]
        let w_im = self.weight_im.var().transpose();
        let y_re = xf_re.mul(&w_re).sub(&xf_im.mul(&w_im));
        let y_im = xf_re.mul(&w_im).add(&xf_im.mul(&w_re));
        // Synthesis (inverse DFT restricted to the kept modes):
        // x[t] = (2/T) * sum_k ( Re X_k cos(...) - Im X_k sin(...) ),
        // i.e. y_time = (2/T) (y_re @ Re^T + y_im @ Im^T) with the DC mode
        // halved; we fold constants into the synthesis matrices.
        let mut syn_re = re_m;
        let mut syn_im = im_m;
        let scale = 2.0 / t as f32;
        syn_re.map_inplace(|v| v * scale);
        syn_im.map_inplace(|v| v * scale);
        // Halve DC column.
        for ti in 0..t {
            let v = syn_re.at(&[ti, 0]);
            syn_re.set(&[ti, 0], v * 0.5);
        }
        let y_time = y_re
            .matmul(&Var::constant(syn_re.transpose()))
            .add(&y_im.matmul(&Var::constant(syn_im.transpose()))); // [B, D, T]
        y_time.permute(&[0, 2, 1])
    }

    fn params(&self) -> Vec<Param> {
        vec![self.weight_re.clone(), self.weight_im.clone()]
    }
}

/// Autoformer's auto-correlation mechanism (simplified): estimate the
/// series' dominant time delays from the autocorrelation (via FFT), then
/// aggregate time-rolled versions of the values weighted by a softmax over
/// the delay scores. The delay selection is treated as a data-dependent
/// constant (no gradient through the argtop-k), matching how the original
/// implementation back-propagates mainly through the rolled aggregation.
pub struct AutoCorrelationBlock {
    /// Number of delays to aggregate (`k = c * ln(L)` in the paper; here a
    /// fixed small count).
    pub top_k: usize,
}

impl AutoCorrelationBlock {
    /// Aggregating the `top_k` strongest delays.
    pub fn new(top_k: usize) -> Self {
        AutoCorrelationBlock { top_k }
    }

    /// Mean autocorrelation (over batch and channels) at every lag,
    /// computed via the Wiener–Khinchin theorem.
    fn mean_autocorr(x: &Tensor) -> Vec<f32> {
        let (b, t, d) = (x.shape()[0], x.shape()[1], x.shape()[2]);
        let mut acc = vec![0.0f64; t];
        for bi in 0..b {
            for di in 0..d {
                let col: Vec<f32> = (0..t).map(|ti| x.at(&[bi, ti, di])).collect();
                let spec = rfft(&col);
                let power: Vec<f32> = spec.iter().map(|z| z.norm_sqr()).collect();
                // Inverse FFT of the power spectrum = autocorrelation.
                let pc: Vec<ts3_signal::Complex32> = power
                    .iter()
                    .map(|&p| ts3_signal::Complex32::from_real(p))
                    .collect();
                let ac = ts3_signal::fft::ifft(&pc);
                for (lag, dst) in acc.iter_mut().enumerate() {
                    *dst += ac[lag].re as f64;
                }
            }
        }
        acc.into_iter().map(|v| (v / (b * d) as f64) as f32).collect()
    }
}

impl Module for AutoCorrelationBlock {
    fn forward(&self, x: &Var, _ctx: &mut Ctx) -> Var {
        assert_eq!(x.shape().len(), 3, "AutoCorrelationBlock expects [B, T, D]");
        let t = x.shape()[1];
        let ac = Self::mean_autocorr(x.value());
        // Rank non-zero lags by autocorrelation.
        let mut lags: Vec<(usize, f32)> = (1..t).map(|l| (l, ac[l])).collect();
        lags.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
        lags.truncate(self.top_k.max(1));
        // Softmax weights over the selected lag scores (constants).
        let max = lags.iter().map(|l| l.1).fold(f32::NEG_INFINITY, f32::max);
        let exps: Vec<f32> = lags.iter().map(|l| (l.1 - max).exp()).collect();
        let z: f32 = exps.iter().sum();
        // Aggregate rolled series.
        let mut out: Option<Var> = None;
        for ((lag, _), w) in lags.iter().zip(exps) {
            let rolled = if *lag == 0 {
                x.clone()
            } else {
                // roll along time: concat(x[lag..], x[..lag])
                let tail = x.narrow(1, *lag, t - *lag);
                let head = x.narrow(1, 0, *lag);
                Var::concat(&[&tail, &head], 1)
            };
            let term = rolled.mul_scalar(w / z);
            out = Some(match out {
                Some(acc) => acc.add(&term),
                None => term,
            });
        }
        // ts3-lint: allow(no-unwrap-in-lib) the lag set is non-empty by construction, so the fold always produces a value
        out.expect("at least one lag aggregated")
    }

    fn params(&self) -> Vec<Param> {
        vec![]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ts3_rng::SeedableRng;

    #[test]
    fn dft_matrices_match_rfft() {
        let t = 16;
        let x: Vec<f32> = (0..t).map(|i| (i as f32 * 0.7).sin()).collect();
        let (re_m, im_m) = dft_matrices(t, t / 2 + 1);
        let spec = rfft(&x);
        #[allow(clippy::needless_range_loop)]
        for k in 0..t / 2 + 1 {
            let re: f32 = (0..t).map(|ti| x[ti] * re_m.at(&[ti, k])).sum();
            let im: f32 = (0..t).map(|ti| x[ti] * im_m.at(&[ti, k])).sum();
            assert!((re - spec[k].re).abs() < 1e-3, "k={k} re {re} vs {}", spec[k].re);
            assert!((im - spec[k].im).abs() < 1e-3, "k={k} im {im} vs {}", spec[k].im);
        }
    }

    #[test]
    fn fourier_block_reconstructs_lowpass_identity() {
        // With unit weights and all modes kept, the block acts as a
        // (lossless for band-limited input) DFT round-trip.
        let mut rng = StdRng::seed_from_u64(3);
        let t = 16;
        let fb = FourierBlock::new("fb", t / 2 + 1, 1, &mut rng);
        fb.weight_re.set_value(Tensor::ones(&[t / 2 + 1, 1]));
        fb.weight_im.set_value(Tensor::zeros(&[t / 2 + 1, 1]));
        let x: Vec<f32> = (0..t)
            .map(|i| (2.0 * std::f32::consts::PI * i as f32 / 8.0).sin() + 0.5)
            .collect();
        let xv = Var::constant(Tensor::from_vec(x.clone(), &[1, t, 1]));
        let mut ctx = Ctx::eval();
        let y = fb.forward(&xv, &mut ctx);
        for (got, want) in y.value().as_slice().iter().zip(&x) {
            assert!((got - want).abs() < 0.15, "{got} vs {want}");
        }
    }

    #[test]
    fn fourier_block_is_differentiable() {
        let mut rng = StdRng::seed_from_u64(4);
        let fb = FourierBlock::new("fb", 4, 3, &mut rng);
        let mut ctx = Ctx::train(0);
        let x = Var::constant(Tensor::randn(&[2, 12, 3], 5));
        let loss = fb.forward(&x, &mut ctx).square().sum();
        for p in fb.params() {
            p.zero_grad();
        }
        loss.backward();
        assert!(fb.weight_re.grad_norm() > 0.0);
        assert!(fb.weight_im.grad_norm() > 0.0);
    }

    #[test]
    fn autocorrelation_detects_period() {
        // A period-8 series: lag 8 should dominate the aggregation, making
        // the output close to the input (rolled by a full period).
        let t = 32;
        let x: Vec<f32> = (0..t)
            .map(|i| (2.0 * std::f32::consts::PI * i as f32 / 8.0).sin())
            .collect();
        let xv = Var::constant(Tensor::from_vec(x.clone(), &[1, t, 1]));
        let block = AutoCorrelationBlock::new(1);
        let mut ctx = Ctx::eval();
        let y = block.forward(&xv, &mut ctx);
        let err: f32 = y
            .value()
            .as_slice()
            .iter()
            .zip(&x)
            .map(|(a, b)| (a - b).abs())
            .sum::<f32>()
            / t as f32;
        assert!(err < 0.05, "mean abs err {err}");
    }

    #[test]
    fn autocorrelation_gradient_flows() {
        let x = Var::constant(Tensor::randn(&[1, 16, 2], 8));
        let block = AutoCorrelationBlock::new(3);
        let mut ctx = Ctx::eval();
        block.forward(&x, &mut ctx).sum().backward();
        assert!(x.grad().is_some());
        let g = x.grad().unwrap();
        // Weights form a convex combination: gradient of sum wrt every
        // input element is 1.
        assert!((g.mean() - 1.0).abs() < 1e-4);
    }
}
