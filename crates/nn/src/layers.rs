//! Core layers: Linear, Conv1d/Conv2d, LayerNorm, Dropout, activations,
//! and MLP.

use crate::module::{Ctx, Module};
use ts3_rng::rngs::StdRng;
use ts3_rng::Rng;
use ts3_autograd::{Param, Var};
use ts3_tensor::Tensor;

/// Fully connected layer `y = x W + b`, applied to the last axis of a
/// rank-2 (`[N, in]`) or rank-3 (`[B, N, in]`) input.
pub struct Linear {
    /// Weight of shape `[in, out]`.
    pub weight: Param,
    /// Optional bias of shape `[out]`.
    pub bias: Option<Param>,
}

impl Linear {
    /// Xavier-initialised linear layer.
    pub fn new(name: &str, in_dim: usize, out_dim: usize, bias: bool, rng: &mut StdRng) -> Self {
        // Xavier over [out, in] then transpose to [in, out] storage.
        let w = Tensor::xavier_uniform(&[out_dim, in_dim], rng).transpose();
        Linear {
            weight: Param::new(format!("{name}.weight"), w),
            bias: if bias {
                Some(Param::new(format!("{name}.bias"), Tensor::zeros(&[out_dim])))
            } else {
                None
            },
        }
    }

    /// Input feature dimension.
    pub fn in_dim(&self) -> usize {
        self.weight.shape()[0]
    }

    /// Output feature dimension.
    pub fn out_dim(&self) -> usize {
        self.weight.shape()[1]
    }
}

impl Module for Linear {
    fn forward(&self, x: &Var, _ctx: &mut Ctx) -> Var {
        let y = x.matmul(&self.weight.var());
        match &self.bias {
            Some(b) => y.add(&b.var()),
            None => y,
        }
    }

    fn params(&self) -> Vec<Param> {
        let mut p = vec![self.weight.clone()];
        if let Some(b) = &self.bias {
            p.push(b.clone());
        }
        p
    }
}

/// 1-D convolution layer over `[B, C, L]` input with "same" padding.
pub struct Conv1d {
    /// Kernel `[Co, Ci, K]`.
    pub weight: Param,
    /// Bias `[Co]`.
    pub bias: Param,
    /// Symmetric padding producing same-length output for odd `K`.
    pub pad: usize,
}

impl Conv1d {
    /// Kaiming-initialised conv layer with same-length padding (odd `k`).
    pub fn new(name: &str, c_in: usize, c_out: usize, k: usize, rng: &mut StdRng) -> Self {
        assert!(k % 2 == 1, "Conv1d uses odd kernels for same-length output");
        Conv1d {
            weight: Param::new(
                format!("{name}.weight"),
                Tensor::kaiming_normal(&[c_out, c_in, k], rng),
            ),
            bias: Param::new(format!("{name}.bias"), Tensor::zeros(&[c_out])),
            pad: k / 2,
        }
    }
}

impl Module for Conv1d {
    fn forward(&self, x: &Var, _ctx: &mut Ctx) -> Var {
        let y = x.conv1d(&self.weight.var(), self.pad);
        // Bias broadcast over [B, Co, L]: reshape to [Co, 1].
        let co = self.bias.shape()[0];
        y.add(&self.bias.var().reshape(&[co, 1]))
    }

    fn params(&self) -> Vec<Param> {
        vec![self.weight.clone(), self.bias.clone()]
    }
}

/// 2-D convolution layer over `[B, C, H, W]` with "same" padding.
pub struct Conv2d {
    /// Kernel `[Co, Ci, KH, KW]`.
    pub weight: Param,
    /// Bias `[Co]`.
    pub bias: Param,
    /// Padding `(ph, pw)`.
    pub pad: (usize, usize),
}

impl Conv2d {
    /// Kaiming-initialised square-kernel conv with same-size padding.
    pub fn new(name: &str, c_in: usize, c_out: usize, k: usize, rng: &mut StdRng) -> Self {
        assert!(k % 2 == 1, "Conv2d uses odd kernels for same-size output");
        Conv2d {
            weight: Param::new(
                format!("{name}.weight"),
                Tensor::kaiming_normal(&[c_out, c_in, k, k], rng),
            ),
            bias: Param::new(format!("{name}.bias"), Tensor::zeros(&[c_out])),
            pad: (k / 2, k / 2),
        }
    }
}

impl Module for Conv2d {
    fn forward(&self, x: &Var, _ctx: &mut Ctx) -> Var {
        let y = x.conv2d(&self.weight.var(), self.pad.0, self.pad.1);
        let co = self.bias.shape()[0];
        y.add(&self.bias.var().reshape(&[co, 1, 1]))
    }

    fn params(&self) -> Vec<Param> {
        vec![self.weight.clone(), self.bias.clone()]
    }
}

/// Layer normalisation over the last axis.
pub struct LayerNorm {
    /// Gain `[d]`.
    pub gain: Param,
    /// Bias `[d]`.
    pub bias: Param,
    /// Variance epsilon.
    pub eps: f32,
}

impl LayerNorm {
    /// Unit-gain zero-bias layer norm for feature dimension `d`.
    pub fn new(name: &str, d: usize) -> Self {
        LayerNorm {
            gain: Param::new(format!("{name}.gain"), Tensor::ones(&[d])),
            bias: Param::new(format!("{name}.bias"), Tensor::zeros(&[d])),
            eps: 1e-5,
        }
    }
}

impl Module for LayerNorm {
    fn forward(&self, x: &Var, _ctx: &mut Ctx) -> Var {
        x.layer_norm_last(&self.gain.var(), &self.bias.var(), self.eps)
    }

    fn params(&self) -> Vec<Param> {
        vec![self.gain.clone(), self.bias.clone()]
    }
}

/// Inverted dropout: at train time zeroes each element with probability
/// `p` and rescales by `1/(1-p)`; identity at eval time.
pub struct Dropout {
    /// Drop probability in `[0, 1)`.
    pub p: f32,
}

impl Dropout {
    /// Dropout with probability `p`.
    pub fn new(p: f32) -> Self {
        assert!((0.0..1.0).contains(&p), "dropout p must be in [0,1)");
        Dropout { p }
    }
}

impl Module for Dropout {
    fn forward(&self, x: &Var, ctx: &mut Ctx) -> Var {
        if !ctx.training || self.p == 0.0 {
            return x.clone();
        }
        let keep = 1.0 - self.p;
        let mask = Tensor::from_vec(
            (0..x.value().numel())
                .map(|_| if ctx.rng.gen::<f32>() < keep { 1.0 / keep } else { 0.0 })
                .collect(),
            x.shape(),
        );
        x.apply_mask(&mask)
    }

    fn params(&self) -> Vec<Param> {
        vec![]
    }
}

/// Activation functions as zero-parameter modules.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Activation {
    /// Rectified linear unit.
    Relu,
    /// Gaussian error linear unit (tanh approximation).
    Gelu,
    /// Hyperbolic tangent.
    Tanh,
    /// Identity (no-op).
    Identity,
}

impl Module for Activation {
    fn forward(&self, x: &Var, _ctx: &mut Ctx) -> Var {
        match self {
            Activation::Relu => x.relu(),
            Activation::Gelu => x.gelu(),
            Activation::Tanh => x.tanh(),
            Activation::Identity => x.clone(),
        }
    }

    fn params(&self) -> Vec<Param> {
        vec![]
    }
}

/// Two-layer MLP with configurable hidden width, activation and dropout —
/// the prediction-head shape used throughout the paper (Eq. 14–16).
pub struct Mlp {
    /// Input projection.
    pub fc1: Linear,
    /// Output projection.
    pub fc2: Linear,
    /// Activation between the two projections.
    pub act: Activation,
    /// Dropout after the activation.
    pub drop: Dropout,
}

impl Mlp {
    /// Build an `in -> hidden -> out` MLP.
    pub fn new(
        name: &str,
        in_dim: usize,
        hidden: usize,
        out_dim: usize,
        act: Activation,
        dropout: f32,
        rng: &mut StdRng,
    ) -> Self {
        Mlp {
            fc1: Linear::new(&format!("{name}.fc1"), in_dim, hidden, true, rng),
            fc2: Linear::new(&format!("{name}.fc2"), hidden, out_dim, true, rng),
            act,
            drop: Dropout::new(dropout),
        }
    }
}

impl Module for Mlp {
    fn forward(&self, x: &Var, ctx: &mut Ctx) -> Var {
        let h = self.fc1.forward(x, ctx);
        let h = self.act.forward(&h, ctx);
        let h = self.drop.forward(&h, ctx);
        self.fc2.forward(&h, ctx)
    }

    fn params(&self) -> Vec<Param> {
        let mut p = self.fc1.params();
        p.extend(self.fc2.params());
        p
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ts3_rng::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(42)
    }

    #[test]
    fn linear_shapes_2d_and_3d() {
        let l = Linear::new("l", 4, 3, true, &mut rng());
        let mut ctx = Ctx::eval();
        let y2 = l.forward(&Var::constant(Tensor::ones(&[5, 4])), &mut ctx);
        assert_eq!(y2.shape(), &[5, 3]);
        let y3 = l.forward(&Var::constant(Tensor::ones(&[2, 5, 4])), &mut ctx);
        assert_eq!(y3.shape(), &[2, 5, 3]);
        assert_eq!(l.in_dim(), 4);
        assert_eq!(l.out_dim(), 3);
        assert_eq!(l.num_params(), 15);
    }

    #[test]
    fn linear_no_bias() {
        let l = Linear::new("l", 2, 2, false, &mut rng());
        assert_eq!(l.params().len(), 1);
    }

    #[test]
    fn linear_learns_identity() {
        // Train a 1x1 linear layer to y = 2x.
        let l = Linear::new("l", 1, 1, false, &mut rng());
        let mut ctx = Ctx::train(0);
        for _ in 0..200 {
            let x = Var::constant(Tensor::from_vec(vec![1.0, 2.0, 3.0], &[3, 1]));
            let t = Tensor::from_vec(vec![2.0, 4.0, 6.0], &[3, 1]);
            let loss = l.forward(&x, &mut ctx).mse_loss(&t);
            for p in l.params() {
                p.zero_grad();
            }
            loss.backward();
            for p in l.params() {
                p.update_with(|v, g| v.axpy(-0.05, g));
            }
        }
        assert!((l.weight.value().item() - 2.0).abs() < 1e-2);
    }

    #[test]
    fn conv1d_same_length() {
        let c = Conv1d::new("c", 3, 5, 3, &mut rng());
        let mut ctx = Ctx::eval();
        let y = c.forward(&Var::constant(Tensor::ones(&[2, 3, 10])), &mut ctx);
        assert_eq!(y.shape(), &[2, 5, 10]);
    }

    #[test]
    fn conv2d_same_size() {
        let c = Conv2d::new("c", 2, 4, 3, &mut rng());
        let mut ctx = Ctx::eval();
        let y = c.forward(&Var::constant(Tensor::ones(&[1, 2, 6, 8])), &mut ctx);
        assert_eq!(y.shape(), &[1, 4, 6, 8]);
    }

    #[test]
    fn layer_norm_zero_mean_unit_var() {
        let ln = LayerNorm::new("ln", 8);
        let mut ctx = Ctx::eval();
        let x = Var::constant(Tensor::randn(&[4, 8], 3).mul_scalar(5.0).add_scalar(10.0));
        let y = ln.forward(&x, &mut ctx);
        for row in y.value().as_slice().chunks(8) {
            let mean: f32 = row.iter().sum::<f32>() / 8.0;
            assert!(mean.abs() < 1e-4);
        }
    }

    #[test]
    fn dropout_eval_is_identity_train_masks() {
        let d = Dropout::new(0.5);
        let x = Var::constant(Tensor::ones(&[1000]));
        let mut ec = Ctx::eval();
        assert_eq!(d.forward(&x, &mut ec).value().as_slice(), x.value().as_slice());
        let mut tc = Ctx::train(7);
        let y = d.forward(&x, &mut tc);
        let zeros = y.value().as_slice().iter().filter(|&&v| v == 0.0).count();
        assert!(zeros > 350 && zeros < 650, "zeros = {zeros}");
        // Kept values are rescaled by 1/keep = 2.
        assert!(y.value().as_slice().iter().all(|&v| v == 0.0 || (v - 2.0).abs() < 1e-6));
    }

    #[test]
    fn activation_variants() {
        let mut ctx = Ctx::eval();
        let x = Var::constant(Tensor::from_vec(vec![-1.0, 1.0], &[2]));
        assert_eq!(Activation::Relu.forward(&x, &mut ctx).value().as_slice(), &[0.0, 1.0]);
        assert_eq!(Activation::Identity.forward(&x, &mut ctx).value().as_slice(), &[-1.0, 1.0]);
        assert!(Activation::Tanh.forward(&x, &mut ctx).value().as_slice()[1] < 1.0);
        assert!(Activation::Gelu.forward(&x, &mut ctx).value().as_slice()[0] < 0.0);
    }

    #[test]
    fn mlp_shape_and_params() {
        let m = Mlp::new("m", 6, 12, 3, Activation::Gelu, 0.1, &mut rng());
        let mut ctx = Ctx::eval();
        let y = m.forward(&Var::constant(Tensor::ones(&[4, 6])), &mut ctx);
        assert_eq!(y.shape(), &[4, 3]);
        assert_eq!(m.params().len(), 4);
        assert_eq!(m.num_params(), 6 * 12 + 12 + 12 * 3 + 3);
    }
}
