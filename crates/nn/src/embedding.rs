//! Series embedding: value projection plus fixed sinusoidal positional
//! encoding — the "same input embedding for all base models" the paper's
//! experimental protocol prescribes.

use crate::layers::{Dropout, Linear};
use crate::module::{Ctx, Module};
use ts3_rng::rngs::StdRng;
use ts3_autograd::{Param, Var};
use ts3_tensor::Tensor;

/// Classic sinusoidal positional table of shape `[len, d_model]`.
pub fn sinusoidal_encoding(len: usize, d_model: usize) -> Tensor {
    let mut data = vec![0.0f32; len * d_model];
    for pos in 0..len {
        for i in 0..d_model {
            let div = (10000f64).powf((2 * (i / 2)) as f64 / d_model as f64);
            let ang = pos as f64 / div;
            data[pos * d_model + i] = if i % 2 == 0 { ang.sin() } else { ang.cos() } as f32;
        }
    }
    Tensor::from_vec(data, &[len, d_model])
}

/// Value + positional embedding of a `[B, T, C]` series into `[B, T, D]`.
pub struct DataEmbedding {
    /// Per-timestep value projection `C -> D`.
    pub value: Linear,
    /// Dropout after embedding.
    pub drop: Dropout,
    /// Model width.
    pub d_model: usize,
}

impl DataEmbedding {
    /// Build an embedding for `c_in` channels into width `d_model`.
    pub fn new(name: &str, c_in: usize, d_model: usize, dropout: f32, rng: &mut StdRng) -> Self {
        DataEmbedding {
            value: Linear::new(&format!("{name}.value"), c_in, d_model, true, rng),
            drop: Dropout::new(dropout),
            d_model,
        }
    }
}

impl Module for DataEmbedding {
    fn forward(&self, x: &Var, ctx: &mut Ctx) -> Var {
        assert_eq!(x.shape().len(), 3, "DataEmbedding expects [B, T, C]");
        let t = x.shape()[1];
        let v = self.value.forward(x, ctx);
        let pe = Var::constant(sinusoidal_encoding(t, self.d_model));
        let y = v.add(&pe); // broadcast over batch
        self.drop.forward(&y, ctx)
    }

    fn params(&self) -> Vec<Param> {
        self.value.params()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ts3_rng::SeedableRng;

    #[test]
    fn sinusoidal_encoding_properties() {
        let pe = sinusoidal_encoding(16, 8);
        assert_eq!(pe.shape(), &[16, 8]);
        // Position 0: sin(0)=0 on even dims, cos(0)=1 on odd dims.
        assert_eq!(pe.at(&[0, 0]), 0.0);
        assert_eq!(pe.at(&[0, 1]), 1.0);
        // All values bounded by 1.
        assert!(pe.abs().max() <= 1.0 + 1e-6);
        // Rows differ.
        assert!(pe.index_axis(0, 1).max_abs_diff(&pe.index_axis(0, 5)) > 1e-3);
    }

    #[test]
    fn data_embedding_shape() {
        let mut rng = StdRng::seed_from_u64(1);
        let emb = DataEmbedding::new("emb", 7, 16, 0.0, &mut rng);
        let mut ctx = Ctx::eval();
        let y = emb.forward(&Var::constant(Tensor::ones(&[2, 24, 7])), &mut ctx);
        assert_eq!(y.shape(), &[2, 24, 16]);
    }

    #[test]
    fn data_embedding_is_differentiable() {
        let mut rng = StdRng::seed_from_u64(2);
        let emb = DataEmbedding::new("emb", 3, 4, 0.0, &mut rng);
        let mut ctx = Ctx::train(0);
        let x = Var::constant(Tensor::randn(&[1, 8, 3], 5));
        let loss = emb.forward(&x, &mut ctx).square().sum();
        for p in emb.params() {
            p.zero_grad();
        }
        loss.backward();
        assert!(emb.value.weight.grad_norm() > 0.0);
    }
}
