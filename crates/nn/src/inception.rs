//! Inception-style multi-kernel 2-D convolution block — the
//! `ConvBackbone` of the paper's TF-Block (Eq. 13), also used by the
//! TimesNet baseline.

use crate::layers::Conv2d;
use crate::module::{Ctx, Module};
use crate::Activation;
use ts3_rng::rngs::StdRng;
use ts3_autograd::{Param, Var};

/// Parallel same-padded 2-D convolutions with kernel sizes `{1, 3, 5}`
/// whose outputs are averaged, followed by a GELU and a second multi-scale
/// stage projecting back to the input width.
pub struct InceptionBlock {
    stage1: Vec<Conv2d>,
    stage2: Vec<Conv2d>,
}

impl InceptionBlock {
    /// Build a block `c_in -> hidden -> c_in` with the default kernel set.
    pub fn new(name: &str, c_in: usize, hidden: usize, rng: &mut StdRng) -> Self {
        let kernels = [1usize, 3, 5];
        InceptionBlock {
            stage1: kernels
                .iter()
                .map(|&k| Conv2d::new(&format!("{name}.s1.k{k}"), c_in, hidden, k, rng))
                .collect(),
            stage2: kernels
                .iter()
                .map(|&k| Conv2d::new(&format!("{name}.s2.k{k}"), hidden, c_in, k, rng))
                .collect(),
        }
    }

    fn multi_scale(convs: &[Conv2d], x: &Var, ctx: &mut Ctx) -> Var {
        let mut acc: Option<Var> = None;
        for conv in convs {
            let y = conv.forward(x, ctx);
            acc = Some(match acc {
                Some(a) => a.add(&y),
                None => y,
            });
        }
        // ts3-lint: allow(no-unwrap-in-lib) the kernel list is non-empty by construction, so the fold always produces a value
        acc.expect("at least one kernel").mul_scalar(1.0 / convs.len() as f32)
    }
}

impl Module for InceptionBlock {
    fn forward(&self, x: &Var, ctx: &mut Ctx) -> Var {
        assert_eq!(x.shape().len(), 4, "InceptionBlock expects [B, C, H, W]");
        let h = Self::multi_scale(&self.stage1, x, ctx);
        let h = Activation::Gelu.forward(&h, ctx);
        Self::multi_scale(&self.stage2, &h, ctx)
    }

    fn params(&self) -> Vec<Param> {
        self.stage1
            .iter()
            .chain(self.stage2.iter())
            .flat_map(|c| c.params())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ts3_rng::SeedableRng;
    use ts3_tensor::Tensor;

    #[test]
    fn inception_preserves_spatial_shape() {
        let mut rng = StdRng::seed_from_u64(5);
        let block = InceptionBlock::new("inc", 4, 6, &mut rng);
        let mut ctx = Ctx::eval();
        let y = block.forward(&Var::constant(Tensor::randn(&[2, 4, 8, 12], 1)), &mut ctx);
        assert_eq!(y.shape(), &[2, 4, 8, 12]);
        assert!(y.value().all_finite());
    }

    #[test]
    fn inception_param_count() {
        let mut rng = StdRng::seed_from_u64(6);
        let block = InceptionBlock::new("inc", 2, 3, &mut rng);
        // stage1: (1+9+25) kernels * 2*3 weights + 3 biases each;
        // stage2 symmetric with 2 out channels.
        let expected = (1 + 9 + 25) * 6 + 3 * 3 + (1 + 9 + 25) * 6 + 3 * 2;
        assert_eq!(block.num_params(), expected);
    }

    #[test]
    fn inception_trains_toward_zero() {
        let mut rng = StdRng::seed_from_u64(7);
        let block = InceptionBlock::new("inc", 2, 2, &mut rng);
        let mut ctx = Ctx::train(0);
        let x = Var::constant(Tensor::randn(&[1, 2, 4, 6], 2).mul_scalar(0.5));
        let target = Tensor::zeros(&[1, 2, 4, 6]);
        let losses: Vec<f32> = (0..5)
            .map(|_| {
                let loss = block.forward(&x, &mut ctx).mse_loss(&target);
                for p in block.params() {
                    p.zero_grad();
                }
                loss.backward();
                for p in block.params() {
                    p.update_with(|v, g| v.axpy(-0.1, g));
                }
                loss.value().item()
            })
            .collect();
        assert!(losses.last().unwrap() < losses.first().unwrap());
    }
}
