//! # ts3-nn
//!
//! Neural-network layers, optimisers, losses and metrics built on
//! [`ts3_autograd`] — everything the TS3Net model and its eleven baselines
//! need:
//!
//! * [`module`] — the [`Module`] trait, forward [`Ctx`] and [`Sequential`];
//! * [`layers`] — Linear, Conv1d/Conv2d, LayerNorm, Dropout, activations,
//!   MLP;
//! * [`embedding`] — value + sinusoidal positional series embedding;
//! * [`attention`] — multi-head attention (full / ProbSparse / pyramidal)
//!   and the Transformer encoder layer;
//! * [`frequency`] — Fourier-enhanced block (FEDformer) and
//!   auto-correlation aggregation (Autoformer);
//! * [`inception`] — the multi-kernel 2-D conv backbone (TF-Block /
//!   TimesNet);
//! * [`optim`] — Adam / SGD, gradient clipping, the `type1` LR schedule;
//! * [`metrics`] — MSE / MAE (plain and masked) and streaming averages.

pub mod attention;
pub mod checkpoint;
pub mod embedding;
pub mod frequency;
pub mod inception;
pub mod layers;
pub mod metrics;
pub mod module;
pub mod optim;

pub use attention::{AttentionKind, EncoderLayer, MultiHeadAttention};
pub use checkpoint::{Checkpoint, TensorRecord};
pub use embedding::{sinusoidal_encoding, DataEmbedding};
pub use frequency::{dft_matrices, AutoCorrelationBlock, FourierBlock};
pub use inception::InceptionBlock;
pub use layers::{Activation, Conv1d, Conv2d, Dropout, LayerNorm, Linear, Mlp};
pub use metrics::{mae, masked_mae, masked_mse, mean_fill, mse, Average};
pub use module::{Ctx, Module, Sequential};
pub use optim::{lr_type1, Adam, Optimizer, Sgd};
