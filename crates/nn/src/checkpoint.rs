//! Parameter checkpointing: save/load the weights of any model that
//! exposes its [`Param`] list (every `ForecastModel`/`ImputationModel` in
//! this workspace) as a JSON file keyed by parameter name.
//!
//! The on-disk format is `{"params": {<name>: {"shape": [...],
//! "data": [...]}}}`, written through [`ts3_json`] (values round-trip
//! bit-exactly at f32 precision — see that crate's number policy).

use std::collections::BTreeMap;
use std::io;
use std::path::Path;
use ts3_autograd::Param;
use ts3_json::Json;
use ts3_tensor::Tensor;

/// Serialisable snapshot of one named tensor.
#[derive(Debug, Clone, PartialEq)]
pub struct TensorRecord {
    /// Row-major shape.
    pub shape: Vec<usize>,
    /// Flat row-major values.
    pub data: Vec<f32>,
}

/// A whole-model checkpoint: parameter name -> tensor.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Checkpoint {
    /// Named parameter snapshots (sorted for stable files).
    pub params: BTreeMap<String, TensorRecord>,
}

impl Checkpoint {
    /// Snapshot the current values of a parameter list.
    ///
    /// Returns an error naming the first duplicated parameter name —
    /// a checkpoint keyed by name would silently drop one of the two
    /// tensors otherwise, and the caller (a user-supplied model) is in
    /// a far better position to fix its naming than an abort is.
    pub fn capture(params: &[Param]) -> Result<Checkpoint, String> {
        let mut map = BTreeMap::new();
        for p in params {
            let rec = TensorRecord {
                shape: p.shape(),
                data: p.value().as_slice().to_vec(),
            };
            if map.insert(p.name().to_string(), rec).is_some() {
                return Err(format!(
                    "cannot checkpoint: duplicate parameter name `{}` \
                     (checkpoints are keyed by name and would drop one tensor)",
                    p.name()
                ));
            }
        }
        Ok(Checkpoint { params: map })
    }

    /// Restore the snapshot into a parameter list (matched by name).
    ///
    /// Returns an error naming the first missing or shape-mismatched
    /// parameter, leaving already-written parameters restored.
    pub fn restore(&self, params: &[Param]) -> Result<(), String> {
        for p in params {
            let rec = self
                .params
                .get(p.name())
                .ok_or_else(|| format!("checkpoint missing parameter `{}`", p.name()))?;
            if rec.shape != p.shape() {
                return Err(format!(
                    "shape mismatch for `{}`: checkpoint {:?} vs model {:?}",
                    p.name(),
                    rec.shape,
                    p.shape()
                ));
            }
            p.set_value(Tensor::from_vec(rec.data.clone(), &rec.shape));
        }
        Ok(())
    }

    /// Lower to a [`Json`] document.
    pub fn to_json(&self) -> Json {
        let mut params = Json::Obj(Vec::with_capacity(self.params.len()));
        for (name, rec) in &self.params {
            params.insert(
                name.clone(),
                Json::obj([
                    ("shape", Json::from_iter(rec.shape.iter().copied())),
                    ("data", Json::from_iter(rec.data.iter().copied())),
                ]),
            );
        }
        Json::obj([("params", params)])
    }

    /// Reconstruct from a [`Json`] document, validating the schema.
    pub fn from_json(doc: &Json) -> Result<Checkpoint, String> {
        let entries = doc
            .get("params")
            .and_then(Json::as_object)
            .ok_or("checkpoint: missing `params` object")?;
        let mut params = BTreeMap::new();
        for (name, rec) in entries {
            let shape = rec
                .get("shape")
                .and_then(Json::as_array)
                .ok_or_else(|| format!("checkpoint `{name}`: missing `shape` array"))?
                .iter()
                .map(|v| v.as_usize())
                .collect::<Option<Vec<usize>>>()
                .ok_or_else(|| format!("checkpoint `{name}`: non-integer shape entry"))?;
            let data = rec
                .get("data")
                .and_then(Json::as_array)
                .ok_or_else(|| format!("checkpoint `{name}`: missing `data` array"))?
                .iter()
                .map(|v| v.as_f32())
                .collect::<Option<Vec<f32>>>()
                .ok_or_else(|| format!("checkpoint `{name}`: non-numeric data entry"))?;
            if shape.iter().product::<usize>() != data.len() {
                return Err(format!(
                    "checkpoint `{name}`: shape {:?} does not match {} values",
                    shape,
                    data.len()
                ));
            }
            params.insert(name.clone(), TensorRecord { shape, data });
        }
        Ok(Checkpoint { params })
    }

    /// Write to a JSON file.
    pub fn save(&self, path: &Path) -> io::Result<()> {
        std::fs::write(path, self.to_json().to_string())
    }

    /// Read from a JSON file.
    pub fn load(path: &Path) -> io::Result<Checkpoint> {
        let text = std::fs::read_to_string(path)?;
        let doc = Json::parse(&text)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
        Checkpoint::from_json(&doc).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))
    }

    /// Total scalar count in the checkpoint.
    pub fn numel(&self) -> usize {
        self.params.values().map(|r| r.data.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params() -> Vec<Param> {
        vec![
            Param::new("a", Tensor::from_vec(vec![1.0, 2.0], &[2])),
            Param::new("b", Tensor::from_vec(vec![3.0, 4.0, 5.0, 6.0], &[2, 2])),
        ]
    }

    #[test]
    fn capture_restore_round_trip() {
        let ps = params();
        let snap = Checkpoint::capture(&ps).unwrap();
        assert_eq!(snap.numel(), 6);
        // Mutate, then restore.
        ps[0].set_value(Tensor::zeros(&[2]));
        snap.restore(&ps).unwrap();
        assert_eq!(ps[0].value().as_slice(), &[1.0, 2.0]);
    }

    #[test]
    fn restore_rejects_missing_and_mismatched() {
        let snap = Checkpoint::capture(&params()[..1]).unwrap();
        let other = vec![Param::new("c", Tensor::zeros(&[1]))];
        assert!(snap.restore(&other).unwrap_err().contains("missing"));
        let wrong = vec![Param::new("a", Tensor::zeros(&[3]))];
        assert!(snap.restore(&wrong).unwrap_err().contains("shape mismatch"));
    }

    #[test]
    fn save_load_file_round_trip() {
        let dir = std::env::temp_dir().join("ts3_ckpt_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("model.json");
        let ps = params();
        Checkpoint::capture(&ps).unwrap().save(&path).unwrap();
        let loaded = Checkpoint::load(&path).unwrap();
        ps[1].set_value(Tensor::zeros(&[2, 2]));
        loaded.restore(&ps).unwrap();
        assert_eq!(ps[1].value().as_slice(), &[3.0, 4.0, 5.0, 6.0]);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn json_round_trip_preserves_awkward_f32s() {
        let values = vec![0.1f32, -0.0, f32::MIN_POSITIVE, 1e-40, f32::MAX, 1.0 / 3.0];
        let ps = vec![Param::new("w", Tensor::from_vec(values.clone(), &[6]))];
        let snap = Checkpoint::capture(&ps).unwrap();
        let back = Checkpoint::from_json(&Json::parse(&snap.to_json().to_string()).unwrap())
            .unwrap();
        let got = &back.params["w"].data;
        for (a, b) in values.iter().zip(got) {
            assert_eq!(a.to_bits(), b.to_bits(), "{a:?} vs {b:?}");
        }
    }

    #[test]
    fn load_rejects_malformed_files() {
        let dir = std::env::temp_dir().join("ts3_ckpt_bad");
        std::fs::create_dir_all(&dir).unwrap();
        for (stem, text) in [
            ("not_json", "]["),
            ("wrong_schema", r#"{"weights": {}}"#),
            ("shape_mismatch", r#"{"params": {"w": {"shape": [3], "data": [1, 2]}}}"#),
            ("bad_shape", r#"{"params": {"w": {"shape": [1.5], "data": [1]}}}"#),
        ] {
            let path = dir.join(format!("{stem}.json"));
            std::fs::write(&path, text).unwrap();
            let err = Checkpoint::load(&path).unwrap_err();
            assert_eq!(err.kind(), std::io::ErrorKind::InvalidData, "{stem}");
            std::fs::remove_file(&path).ok();
        }
    }

    #[test]
    fn duplicate_names_are_an_error() {
        let ps = vec![
            Param::new("x", Tensor::zeros(&[1])),
            Param::new("x", Tensor::zeros(&[1])),
        ];
        let err = Checkpoint::capture(&ps).unwrap_err();
        assert!(err.contains("duplicate parameter name `x`"), "{err}");
    }
}
