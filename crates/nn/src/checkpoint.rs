//! Parameter checkpointing: save/load the weights of any model that
//! exposes its [`Param`] list (every `ForecastModel`/`ImputationModel` in
//! this workspace) as a JSON file keyed by parameter name.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::io;
use std::path::Path;
use ts3_autograd::Param;
use ts3_tensor::Tensor;

/// Serialisable snapshot of one named tensor.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TensorRecord {
    /// Row-major shape.
    pub shape: Vec<usize>,
    /// Flat row-major values.
    pub data: Vec<f32>,
}

/// A whole-model checkpoint: parameter name -> tensor.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Checkpoint {
    /// Named parameter snapshots (sorted for stable files).
    pub params: BTreeMap<String, TensorRecord>,
}

impl Checkpoint {
    /// Snapshot the current values of a parameter list.
    ///
    /// # Panics
    /// Panics if two parameters share a name (checkpoints would silently
    /// drop one otherwise).
    pub fn capture(params: &[Param]) -> Checkpoint {
        let mut map = BTreeMap::new();
        for p in params {
            let rec = TensorRecord {
                shape: p.shape(),
                data: p.value().as_slice().to_vec(),
            };
            let prev = map.insert(p.name().to_string(), rec);
            assert!(prev.is_none(), "duplicate parameter name `{}`", p.name());
        }
        Checkpoint { params: map }
    }

    /// Restore the snapshot into a parameter list (matched by name).
    ///
    /// Returns an error naming the first missing or shape-mismatched
    /// parameter, leaving already-written parameters restored.
    pub fn restore(&self, params: &[Param]) -> Result<(), String> {
        for p in params {
            let rec = self
                .params
                .get(p.name())
                .ok_or_else(|| format!("checkpoint missing parameter `{}`", p.name()))?;
            if rec.shape != p.shape() {
                return Err(format!(
                    "shape mismatch for `{}`: checkpoint {:?} vs model {:?}",
                    p.name(),
                    rec.shape,
                    p.shape()
                ));
            }
            p.set_value(Tensor::from_vec(rec.data.clone(), &rec.shape));
        }
        Ok(())
    }

    /// Write to a JSON file.
    pub fn save(&self, path: &Path) -> io::Result<()> {
        let json = serde_json::to_string(self)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
        std::fs::write(path, json)
    }

    /// Read from a JSON file.
    pub fn load(path: &Path) -> io::Result<Checkpoint> {
        let json = std::fs::read_to_string(path)?;
        serde_json::from_str(&json).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))
    }

    /// Total scalar count in the checkpoint.
    pub fn numel(&self) -> usize {
        self.params.values().map(|r| r.data.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params() -> Vec<Param> {
        vec![
            Param::new("a", Tensor::from_vec(vec![1.0, 2.0], &[2])),
            Param::new("b", Tensor::from_vec(vec![3.0, 4.0, 5.0, 6.0], &[2, 2])),
        ]
    }

    #[test]
    fn capture_restore_round_trip() {
        let ps = params();
        let snap = Checkpoint::capture(&ps);
        assert_eq!(snap.numel(), 6);
        // Mutate, then restore.
        ps[0].set_value(Tensor::zeros(&[2]));
        snap.restore(&ps).unwrap();
        assert_eq!(ps[0].value().as_slice(), &[1.0, 2.0]);
    }

    #[test]
    fn restore_rejects_missing_and_mismatched() {
        let snap = Checkpoint::capture(&params()[..1]);
        let other = vec![Param::new("c", Tensor::zeros(&[1]))];
        assert!(snap.restore(&other).unwrap_err().contains("missing"));
        let wrong = vec![Param::new("a", Tensor::zeros(&[3]))];
        assert!(snap.restore(&wrong).unwrap_err().contains("shape mismatch"));
    }

    #[test]
    fn save_load_file_round_trip() {
        let dir = std::env::temp_dir().join("ts3_ckpt_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("model.json");
        let ps = params();
        Checkpoint::capture(&ps).save(&path).unwrap();
        let loaded = Checkpoint::load(&path).unwrap();
        ps[1].set_value(Tensor::zeros(&[2, 2]));
        loaded.restore(&ps).unwrap();
        assert_eq!(ps[1].value().as_slice(), &[3.0, 4.0, 5.0, 6.0]);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    #[should_panic(expected = "duplicate parameter name")]
    fn duplicate_names_panic() {
        let ps = vec![
            Param::new("x", Tensor::zeros(&[1])),
            Param::new("x", Tensor::zeros(&[1])),
        ];
        let _ = Checkpoint::capture(&ps);
    }
}
