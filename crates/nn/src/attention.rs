//! Multi-head scaled dot-product attention and the standard Transformer
//! encoder layer — the backbone shared by the Transformer-family baselines
//! (Informer, Pyraformer, Non-stationary Transformer, PatchTST, TSD-Trans).

use crate::layers::{Dropout, LayerNorm, Linear, Mlp};
use crate::module::{Ctx, Module};
use crate::Activation;
use ts3_rng::rngs::StdRng;
use ts3_autograd::{Param, Var};
use ts3_tensor::Tensor;

/// Variants of the attention score computation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AttentionKind {
    /// Full O(L^2) attention.
    Full,
    /// ProbSparse-style attention (Informer): only the top-u most "active"
    /// queries attend; the rest copy the mean of values. `u = ceil(ln L)
    /// * factor`.
    ProbSparse {
        /// Sparsity factor (Informer uses 5).
        factor: usize,
    },
    /// Pyramidal-style attention (Pyraformer, simplified): each query
    /// attends only to a local window plus a coarse set of strided
    /// "summary" positions.
    Pyramidal {
        /// Local window half-size.
        window: usize,
        /// Stride of the coarse level.
        stride: usize,
    },
}

/// Multi-head attention over `[B, L, D]` inputs.
pub struct MultiHeadAttention {
    wq: Linear,
    wk: Linear,
    wv: Linear,
    wo: Linear,
    heads: usize,
    kind: AttentionKind,
    drop: Dropout,
}

impl MultiHeadAttention {
    /// Build an attention layer of width `d_model` with `heads` heads.
    pub fn new(
        name: &str,
        d_model: usize,
        heads: usize,
        kind: AttentionKind,
        dropout: f32,
        rng: &mut StdRng,
    ) -> Self {
        assert!(d_model.is_multiple_of(heads), "d_model must be divisible by heads");
        MultiHeadAttention {
            wq: Linear::new(&format!("{name}.wq"), d_model, d_model, true, rng),
            wk: Linear::new(&format!("{name}.wk"), d_model, d_model, true, rng),
            wv: Linear::new(&format!("{name}.wv"), d_model, d_model, true, rng),
            wo: Linear::new(&format!("{name}.wo"), d_model, d_model, true, rng),
            heads,
            kind,
            drop: Dropout::new(dropout),
        }
    }

    /// Cross-attention forward (`q` comes from `x`, `k`/`v` from `mem`).
    pub fn forward_kv(&self, x: &Var, mem: &Var, ctx: &mut Ctx) -> Var {
        let (b, lq, d) = (x.shape()[0], x.shape()[1], x.shape()[2]);
        let lk = mem.shape()[1];
        let h = self.heads;
        let dh = d / h;
        let split = |v: &Var, l: usize| -> Var {
            // [B, L, D] -> [B*h, L, dh]
            v.reshape(&[b, l, h, dh])
                .permute(&[0, 2, 1, 3])
                .reshape(&[b * h, l, dh])
        };
        let q = split(&self.wq.forward(x, ctx), lq);
        let k = split(&self.wk.forward(mem, ctx), lk);
        let v = split(&self.wv.forward(mem, ctx), lk);
        let scale = 1.0 / (dh as f32).sqrt();
        let scores = q.matmul_tb(&k).mul_scalar(scale); // [B*h, Lq, Lk]
        let scores = self.mask_scores(scores, lq, lk);
        let attn = scores.softmax_last();
        let attn = self.drop.forward(&attn, ctx);
        let out = attn.matmul(&v); // [B*h, Lq, dh]
        let merged = out
            .reshape(&[b, h, lq, dh])
            .permute(&[0, 2, 1, 3])
            .reshape(&[b, lq, d]);
        self.wo.forward(&merged, ctx)
    }

    /// Apply the kind-specific sparsity pattern by adding a large negative
    /// constant to masked score entries.
    fn mask_scores(&self, scores: Var, lq: usize, lk: usize) -> Var {
        match self.kind {
            AttentionKind::Full => scores,
            AttentionKind::ProbSparse { factor } => {
                // Keep the top-u queries by score "activity" (max - mean of
                // the score row, measured on the current values, treated as
                // a constant selection); inactive queries attend uniformly.
                let u = (((lq as f32).ln().ceil() as usize) * factor).clamp(1, lq);
                let val = scores.value();
                let bh = val.shape()[0];
                let mut mask = Tensor::zeros(val.shape());
                for bi in 0..bh {
                    // Activity score per query row.
                    let mut act: Vec<(usize, f32)> = (0..lq)
                        .map(|qi| {
                            let row: Vec<f32> =
                                (0..lk).map(|ki| val.at(&[bi, qi, ki])).collect();
                            let max = row.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
                            let mean: f32 = row.iter().sum::<f32>() / lk as f32;
                            (qi, max - mean)
                        })
                        .collect();
                    act.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
                    // Queries outside the top-u are flattened to uniform
                    // attention by zeroing their scores via the mask.
                    for &(qi, _) in act.iter().skip(u) {
                        for ki in 0..lk {
                            mask.set(&[bi, qi, ki], 1.0);
                        }
                    }
                }
                // masked rows -> all scores equal -> uniform softmax.
                let keep = mask.map(|m| 1.0 - m);
                scores.apply_mask(&keep)
            }
            AttentionKind::Pyramidal { window, stride } => {
                let mut bias = Tensor::zeros(&[lq, lk]);
                for qi in 0..lq {
                    for ki in 0..lk {
                        let local = ki + window >= qi && ki <= qi + window;
                        let coarse = ki % stride.max(1) == 0;
                        if !(local || coarse) {
                            bias.set(&[qi, ki], -1e9);
                        }
                    }
                }
                scores.add(&Var::constant(bias))
            }
        }
    }
}

impl Module for MultiHeadAttention {
    fn forward(&self, x: &Var, ctx: &mut Ctx) -> Var {
        self.forward_kv(x, x, ctx)
    }

    fn params(&self) -> Vec<Param> {
        let mut p = self.wq.params();
        p.extend(self.wk.params());
        p.extend(self.wv.params());
        p.extend(self.wo.params());
        p
    }
}

/// Pre-norm Transformer encoder layer: attention + feed-forward with
/// residual connections.
pub struct EncoderLayer {
    /// Self-attention.
    pub attn: MultiHeadAttention,
    /// Feed-forward network.
    pub ffn: Mlp,
    norm1: LayerNorm,
    norm2: LayerNorm,
}

impl EncoderLayer {
    /// Build an encoder layer with hidden FFN width `d_ff`.
    pub fn new(
        name: &str,
        d_model: usize,
        heads: usize,
        d_ff: usize,
        kind: AttentionKind,
        dropout: f32,
        rng: &mut StdRng,
    ) -> Self {
        EncoderLayer {
            attn: MultiHeadAttention::new(&format!("{name}.attn"), d_model, heads, kind, dropout, rng),
            ffn: Mlp::new(&format!("{name}.ffn"), d_model, d_ff, d_model, Activation::Gelu, dropout, rng),
            norm1: LayerNorm::new(&format!("{name}.norm1"), d_model),
            norm2: LayerNorm::new(&format!("{name}.norm2"), d_model),
        }
    }
}

impl Module for EncoderLayer {
    fn forward(&self, x: &Var, ctx: &mut Ctx) -> Var {
        let h = x.add(&self.attn.forward(&self.norm1.forward(x, ctx), ctx));
        h.add(&self.ffn.forward(&self.norm2.forward(&h, ctx), ctx))
    }

    fn params(&self) -> Vec<Param> {
        let mut p = self.attn.params();
        p.extend(self.ffn.params());
        p.extend(self.norm1.params());
        p.extend(self.norm2.params());
        p
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ts3_rng::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(11)
    }

    #[test]
    fn full_attention_shape() {
        let a = MultiHeadAttention::new("a", 8, 2, AttentionKind::Full, 0.0, &mut rng());
        let mut ctx = Ctx::eval();
        let y = a.forward(&Var::constant(Tensor::randn(&[2, 10, 8], 1)), &mut ctx);
        assert_eq!(y.shape(), &[2, 10, 8]);
        assert!(y.value().all_finite());
    }

    #[test]
    fn probsparse_attention_shape() {
        let a = MultiHeadAttention::new(
            "a",
            8,
            2,
            AttentionKind::ProbSparse { factor: 2 },
            0.0,
            &mut rng(),
        );
        let mut ctx = Ctx::eval();
        let y = a.forward(&Var::constant(Tensor::randn(&[1, 12, 8], 2)), &mut ctx);
        assert_eq!(y.shape(), &[1, 12, 8]);
        assert!(y.value().all_finite());
    }

    #[test]
    fn pyramidal_attention_shape() {
        let a = MultiHeadAttention::new(
            "a",
            8,
            2,
            AttentionKind::Pyramidal { window: 2, stride: 4 },
            0.0,
            &mut rng(),
        );
        let mut ctx = Ctx::eval();
        let y = a.forward(&Var::constant(Tensor::randn(&[1, 16, 8], 3)), &mut ctx);
        assert_eq!(y.shape(), &[1, 16, 8]);
        assert!(y.value().all_finite());
    }

    #[test]
    fn cross_attention_uses_memory_length() {
        let a = MultiHeadAttention::new("a", 8, 2, AttentionKind::Full, 0.0, &mut rng());
        let mut ctx = Ctx::eval();
        let x = Var::constant(Tensor::randn(&[1, 5, 8], 4));
        let mem = Var::constant(Tensor::randn(&[1, 9, 8], 5));
        let y = a.forward_kv(&x, &mem, &mut ctx);
        assert_eq!(y.shape(), &[1, 5, 8]);
    }

    #[test]
    fn encoder_layer_trains() {
        let layer = EncoderLayer::new("e", 8, 2, 16, AttentionKind::Full, 0.0, &mut rng());
        let mut ctx = Ctx::train(0);
        let x = Var::constant(Tensor::randn(&[2, 6, 8], 6).mul_scalar(0.5));
        let target = Tensor::zeros(&[2, 6, 8]);
        let l0 = {
            let loss = layer.forward(&x, &mut ctx).mse_loss(&target);
            for p in layer.params() {
                p.zero_grad();
            }
            loss.backward();
            loss.value().item()
        };
        for p in layer.params() {
            p.update_with(|v, g| v.axpy(-0.05, g));
        }
        let l1 = layer.forward(&x, &mut ctx).mse_loss(&target).value().item();
        assert!(l1 < l0, "loss did not decrease: {l0} -> {l1}");
    }

    #[test]
    fn attention_rows_sum_to_one_through_uniformity_check() {
        // With identical tokens the attention output must equal the value
        // projection of that token (softmax uniform over identical keys).
        let a = MultiHeadAttention::new("a", 4, 1, AttentionKind::Full, 0.0, &mut rng());
        let mut ctx = Ctx::eval();
        let row = Tensor::randn(&[1, 1, 4], 7);
        let x = Var::constant(row.repeat_axis(1, 6));
        let y = a.forward(&x, &mut ctx);
        let first = y.value().narrow(1, 0, 1);
        for i in 1..6 {
            assert!(y.value().narrow(1, i, 1).allclose(&first, 1e-4));
        }
    }
}
