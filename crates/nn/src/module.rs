//! The [`Module`] trait and the forward-pass context.

use ts3_rng::rngs::StdRng;
use ts3_rng::SeedableRng;
use ts3_autograd::{Param, Var};

/// Per-forward-pass context: training/eval mode and the RNG driving
/// stochastic layers (dropout).
pub struct Ctx {
    /// True during training (enables dropout).
    pub training: bool,
    /// RNG for stochastic layers; owned by the context so a fixed seed
    /// makes whole training runs reproducible.
    pub rng: StdRng,
}

impl Ctx {
    /// Training-mode context with a fixed seed.
    pub fn train(seed: u64) -> Ctx {
        Ctx { training: true, rng: StdRng::seed_from_u64(seed) }
    }

    /// Evaluation-mode context (stochastic layers become identity).
    pub fn eval() -> Ctx {
        Ctx { training: false, rng: StdRng::seed_from_u64(0) }
    }
}

/// A neural-network building block: a pure function of its input plus a
/// set of trainable parameters.
pub trait Module {
    /// Run the forward pass, extending the autograd graph.
    fn forward(&self, x: &Var, ctx: &mut Ctx) -> Var;

    /// All trainable parameters (used by optimisers and checkpointing).
    fn params(&self) -> Vec<Param>;

    /// Total number of scalar weights.
    fn num_params(&self) -> usize {
        self.params().iter().map(|p| p.numel()).sum()
    }
}

/// Sequential container.
pub struct Sequential {
    layers: Vec<Box<dyn Module>>,
}

impl Sequential {
    /// Build from a list of layers.
    pub fn new(layers: Vec<Box<dyn Module>>) -> Self {
        Sequential { layers }
    }

    /// Number of layers.
    pub fn len(&self) -> usize {
        self.layers.len()
    }

    /// True if the container holds no layers.
    pub fn is_empty(&self) -> bool {
        self.layers.is_empty()
    }
}

impl Module for Sequential {
    fn forward(&self, x: &Var, ctx: &mut Ctx) -> Var {
        let mut h = x.clone();
        for layer in &self.layers {
            h = layer.forward(&h, ctx);
        }
        h
    }

    fn params(&self) -> Vec<Param> {
        self.layers.iter().flat_map(|l| l.params()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ts3_tensor::Tensor;

    struct Scale(f32);
    impl Module for Scale {
        fn forward(&self, x: &Var, _ctx: &mut Ctx) -> Var {
            x.mul_scalar(self.0)
        }
        fn params(&self) -> Vec<Param> {
            vec![]
        }
    }

    #[test]
    fn sequential_composes_in_order() {
        let seq = Sequential::new(vec![Box::new(Scale(2.0)), Box::new(Scale(5.0))]);
        let mut ctx = Ctx::eval();
        let y = seq.forward(&Var::constant(Tensor::from_vec(vec![1.0], &[1])), &mut ctx);
        assert_eq!(y.value().as_slice(), &[10.0]);
        assert_eq!(seq.len(), 2);
        assert!(!seq.is_empty());
        assert_eq!(seq.num_params(), 0);
    }

    #[test]
    fn ctx_modes() {
        assert!(Ctx::train(1).training);
        assert!(!Ctx::eval().training);
    }
}
