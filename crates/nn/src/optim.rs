//! Optimisers (Adam, SGD), gradient clipping, and the halving learning-rate
//! schedule used by the paper's training protocol (TimesNet-style
//! `lradj = type1`).

use ts3_autograd::Param;
use ts3_tensor::Tensor;

/// Shared optimiser interface.
pub trait Optimizer {
    /// Apply one update step from the accumulated gradients, then clear
    /// them.
    fn step(&mut self);
    /// Clear accumulated gradients without stepping.
    fn zero_grad(&self);
    /// Current learning rate.
    fn lr(&self) -> f32;
    /// Override the learning rate (for schedules).
    fn set_lr(&mut self, lr: f32);
}

/// Adam with the paper's defaults: `beta1 = 0.9`, `beta2 = 0.999`.
pub struct Adam {
    params: Vec<Param>,
    lr: f32,
    beta1: f32,
    beta2: f32,
    eps: f32,
    t: u64,
    m: Vec<Tensor>,
    v: Vec<Tensor>,
}

impl Adam {
    /// Build Adam over a parameter list (Table III configuration).
    pub fn new(params: Vec<Param>, lr: f32) -> Self {
        let m = params.iter().map(|p| Tensor::zeros(&p.shape())).collect();
        let v = params.iter().map(|p| Tensor::zeros(&p.shape())).collect();
        Adam { params, lr, beta1: 0.9, beta2: 0.999, eps: 1e-8, t: 0, m, v }
    }

    /// Clip the global gradient norm to `max_norm` before stepping.
    pub fn clip_grad_norm(&self, max_norm: f32) {
        let total: f32 = self
            .params
            .iter()
            .map(|p| {
                let n = p.grad_norm();
                n * n
            })
            .sum::<f32>()
            .sqrt();
        if ts3_obs::enabled() {
            ts3_obs::gauge_set("optim.grad_norm", total as f64);
            ts3_obs::observe("optim.grad_norm", total as f64);
        }
        if total > max_norm && total > 0.0 {
            ts3_obs::counter_add("optim.grad_clips", 1);
            let scale = max_norm / total;
            for p in &self.params {
                p.scale_grad(scale);
            }
        }
    }
}

impl Optimizer for Adam {
    fn step(&mut self) {
        ts3_obs::counter_add("optim.adam.steps", 1);
        self.t += 1;
        let b1t = 1.0 - self.beta1.powi(self.t as i32);
        let b2t = 1.0 - self.beta2.powi(self.t as i32);
        let (lr, b1, b2, eps) = (self.lr, self.beta1, self.beta2, self.eps);
        for (i, p) in self.params.iter().enumerate() {
            let m = &mut self.m[i];
            let v = &mut self.v[i];
            p.update_with(|value, grad| {
                for j in 0..grad.numel() {
                    let g = grad.as_slice()[j];
                    let mj = b1 * m.as_slice()[j] + (1.0 - b1) * g;
                    let vj = b2 * v.as_slice()[j] + (1.0 - b2) * g * g;
                    m.as_mut_slice()[j] = mj;
                    v.as_mut_slice()[j] = vj;
                    let mhat = mj / b1t;
                    let vhat = vj / b2t;
                    value.as_mut_slice()[j] -= lr * mhat / (vhat.sqrt() + eps);
                }
            });
            p.zero_grad();
        }
    }

    fn zero_grad(&self) {
        for p in &self.params {
            p.zero_grad();
        }
    }

    fn lr(&self) -> f32 {
        self.lr
    }

    fn set_lr(&mut self, lr: f32) {
        self.lr = lr;
    }
}

/// Plain stochastic gradient descent with optional momentum.
pub struct Sgd {
    params: Vec<Param>,
    lr: f32,
    momentum: f32,
    velocity: Vec<Tensor>,
}

impl Sgd {
    /// Build SGD; `momentum = 0` gives vanilla gradient descent.
    pub fn new(params: Vec<Param>, lr: f32, momentum: f32) -> Self {
        let velocity = params.iter().map(|p| Tensor::zeros(&p.shape())).collect();
        Sgd { params, lr, momentum, velocity }
    }
}

impl Optimizer for Sgd {
    fn step(&mut self) {
        let (lr, mu) = (self.lr, self.momentum);
        for (i, p) in self.params.iter().enumerate() {
            let vel = &mut self.velocity[i];
            p.update_with(|value, grad| {
                for j in 0..grad.numel() {
                    let v = mu * vel.as_slice()[j] + grad.as_slice()[j];
                    vel.as_mut_slice()[j] = v;
                    value.as_mut_slice()[j] -= lr * v;
                }
            });
            p.zero_grad();
        }
    }

    fn zero_grad(&self) {
        for p in &self.params {
            p.zero_grad();
        }
    }

    fn lr(&self) -> f32 {
        self.lr
    }

    fn set_lr(&mut self, lr: f32) {
        self.lr = lr;
    }
}

/// The `type1` schedule from the reference protocol: halve the learning
/// rate every epoch after the first.
pub fn lr_type1(initial: f32, epoch: usize) -> f32 {
    initial * 0.5f32.powi(epoch as i32)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ts3_autograd::Var;

    fn quadratic_step(opt: &mut dyn Optimizer, p: &Param) -> f32 {
        // loss = (w - 3)^2
        let w = p.var();
        let loss = w.add_scalar(-3.0).square().sum();
        opt.zero_grad();
        loss.backward();
        opt.step();
        loss.value().item()
    }

    #[test]
    fn adam_minimises_quadratic() {
        let p = Param::new("w", Tensor::zeros(&[1]));
        let mut opt = Adam::new(vec![p.clone()], 0.1);
        let mut last = f32::INFINITY;
        for _ in 0..200 {
            last = quadratic_step(&mut opt, &p);
        }
        assert!(last < 1e-3, "final loss {last}");
        assert!((p.value().item() - 3.0).abs() < 0.05);
    }

    #[test]
    fn sgd_minimises_quadratic() {
        let p = Param::new("w", Tensor::zeros(&[1]));
        let mut opt = Sgd::new(vec![p.clone()], 0.1, 0.5);
        for _ in 0..100 {
            quadratic_step(&mut opt, &p);
        }
        assert!((p.value().item() - 3.0).abs() < 0.05);
    }

    #[test]
    fn adam_step_clears_grad() {
        let p = Param::new("w", Tensor::zeros(&[1]));
        let mut opt = Adam::new(vec![p.clone()], 0.01);
        p.var().backward_with(Tensor::ones(&[1]));
        assert!(p.grad_norm() > 0.0);
        opt.step();
        assert_eq!(p.grad_norm(), 0.0);
    }

    #[test]
    fn clip_grad_norm_bounds_total() {
        let a = Param::new("a", Tensor::zeros(&[2]));
        let b = Param::new("b", Tensor::zeros(&[2]));
        let opt = Adam::new(vec![a.clone(), b.clone()], 0.01);
        Var::concat(&[&a.var(), &b.var()], 0)
            .backward_with(Tensor::from_vec(vec![3.0, 0.0, 0.0, 4.0], &[4]));
        opt.clip_grad_norm(1.0);
        let total = (a.grad_norm().powi(2) + b.grad_norm().powi(2)).sqrt();
        assert!((total - 1.0).abs() < 1e-5);
    }

    #[test]
    fn clip_noop_when_below_threshold() {
        let a = Param::new("a", Tensor::zeros(&[1]));
        let opt = Adam::new(vec![a.clone()], 0.01);
        a.var().backward_with(Tensor::from_vec(vec![0.5], &[1]));
        opt.clip_grad_norm(10.0);
        assert!((a.grad_norm() - 0.5).abs() < 1e-6);
    }

    #[test]
    fn lr_schedule_halves() {
        assert_eq!(lr_type1(1e-3, 0), 1e-3);
        assert_eq!(lr_type1(1e-3, 1), 5e-4);
        assert_eq!(lr_type1(1e-3, 3), 1.25e-4);
    }

    #[test]
    fn set_lr_round_trips() {
        let mut opt = Adam::new(vec![], 0.1);
        assert_eq!(opt.lr(), 0.1);
        opt.set_lr(0.05);
        assert_eq!(opt.lr(), 0.05);
    }
}
