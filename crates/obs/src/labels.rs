//! Labeled (dimensional) metrics: the fixed-cardinality registry behind
//! `counter_add_l` / `gauge_set_l` / `observe_l`.
//!
//! The plain registry in [`crate::metrics`] keys series by a
//! `&'static str` name only — perfect for kernel counters, useless for
//! "which *tenant* is slow". This module adds a second registry keyed by
//! `(name, sorted label set)`, stored in `BTreeMap`s so iteration order
//! (and therefore every dump and the text exposition) is deterministic
//! by construction — the same reason the FFT plan cache and autograd
//! backward use `BTreeMap` (see PR 5 in `CHANGES.md`).
//!
//! Design constraints, in order:
//!
//! * **Fixed cardinality.** Label values are caller-supplied strings
//!   (tenant ids, model names); an unbounded set would turn the registry
//!   into a leak. Each metric name admits at most
//!   [`MAX_SERIES_PER_METRIC`] distinct label sets; further sets are
//!   dropped and counted in [`LabeledSnapshot::dropped_series`], never
//!   silently lost.
//! * **Exact tail latencies.** Labeled histograms keep the same
//!   log-bucketed 1-2-5 ladder as the plain registry *and* (up to
//!   [`MAX_EXACT_SAMPLES`] observations) the raw samples, so snapshots
//!   report exact nearest-rank p50/p90/p99 rather than bucket upper
//!   bounds. Past the cap the buckets keep counting and percentiles
//!   degrade to bucket-resolution upper bounds ([`HistStats::exact`]
//!   says which you got).
//! * **Zero-label fast path.** The plain `counter_add`/`gauge_set`/
//!   `observe` API is unchanged and remains the right call for
//!   label-free series; this registry is only touched by `_l` calls.
//!
//! Like everything in `ts3-obs`, recording is gated on `TS3_TRACE >= 1`
//! and the disabled path is one relaxed atomic load.

use crate::gate;
use crate::metrics::HIST_BOUNDS;
use std::collections::BTreeMap;
use std::sync::{Mutex, OnceLock};

/// Most distinct label sets one metric name may accumulate; later sets
/// are dropped (and counted) to keep cardinality production-safe.
pub const MAX_SERIES_PER_METRIC: usize = 64;

/// Raw samples kept per labeled histogram for exact percentiles; beyond
/// this the buckets keep counting but percentiles become bucket upper
/// bounds.
pub const MAX_EXACT_SAMPLES: usize = 8_192;

/// A canonical label set: `(key, value)` pairs sorted by key. Two call
/// sites naming the same labels in a different order hit the same
/// series.
pub type LabelSet = Vec<(&'static str, String)>;

fn canon(labels: &[(&'static str, &str)]) -> LabelSet {
    let mut v: LabelSet = labels.iter().map(|(k, val)| (*k, (*val).to_string())).collect();
    v.sort_by_key(|(k, _)| *k);
    v
}

/// One labeled histogram: ladder buckets plus (while under the sample
/// cap) the raw observations.
#[derive(Debug, Clone)]
struct LabeledHist {
    count: u64,
    sum: f64,
    buckets: Vec<u64>,
    samples: Vec<f64>,
    samples_capped: bool,
}

#[derive(Default)]
struct LabeledRegistry {
    counters: BTreeMap<(&'static str, LabelSet), u64>,
    gauges: BTreeMap<(&'static str, LabelSet), f64>,
    hists: BTreeMap<(&'static str, LabelSet), LabeledHist>,
    dropped_series: u64,
}

impl LabeledRegistry {
    /// True when `name` may still admit the (new) series `key`.
    fn admits<V>(
        map: &BTreeMap<(&'static str, LabelSet), V>,
        key: &(&'static str, LabelSet),
    ) -> bool {
        map.contains_key(key)
            || map.keys().filter(|(n, _)| *n == key.0).count() < MAX_SERIES_PER_METRIC
    }
}

fn registry() -> &'static Mutex<LabeledRegistry> {
    static R: OnceLock<Mutex<LabeledRegistry>> = OnceLock::new();
    R.get_or_init(|| Mutex::new(LabeledRegistry::default()))
}

/// Add `delta` to the counter `name` with `labels` (created at zero on
/// first use). No-op when tracing is disabled; dropped (and counted)
/// past the per-metric cardinality cap.
pub fn counter_add_l(name: &'static str, labels: &[(&'static str, &str)], delta: u64) {
    if !gate::enabled() {
        return;
    }
    let key = (name, canon(labels));
    // ts3-lint: allow(no-unwrap-in-lib) registry mutex poisoning means a recording thread panicked; metrics state is unrecoverable
    let mut r = registry().lock().unwrap();
    if !LabeledRegistry::admits(&r.counters, &key) {
        r.dropped_series += 1;
        return;
    }
    *r.counters.entry(key).or_insert(0) += delta;
}

/// Set the gauge `name` with `labels` to `value` (last write wins).
/// No-op when tracing is disabled.
pub fn gauge_set_l(name: &'static str, labels: &[(&'static str, &str)], value: f64) {
    if !gate::enabled() {
        return;
    }
    let key = (name, canon(labels));
    // ts3-lint: allow(no-unwrap-in-lib) registry mutex poisoning means a recording thread panicked; metrics state is unrecoverable
    let mut r = registry().lock().unwrap();
    if !LabeledRegistry::admits(&r.gauges, &key) {
        r.dropped_series += 1;
        return;
    }
    r.gauges.insert(key, value);
}

/// Record `value` into the labeled log-bucketed histogram `name`. NaN
/// observations are dropped like the plain registry's.
pub fn observe_l(name: &'static str, labels: &[(&'static str, &str)], value: f64) {
    if !gate::enabled() || value.is_nan() {
        return;
    }
    let idx = crate::metrics::bucket_index(value);
    let key = (name, canon(labels));
    // ts3-lint: allow(no-unwrap-in-lib) registry mutex poisoning means a recording thread panicked; metrics state is unrecoverable
    let mut r = registry().lock().unwrap();
    if !LabeledRegistry::admits(&r.hists, &key) {
        r.dropped_series += 1;
        return;
    }
    let h = r.hists.entry(key).or_insert_with(|| LabeledHist {
        count: 0,
        sum: 0.0,
        buckets: vec![0; HIST_BOUNDS.len() + 1],
        samples: Vec::new(),
        samples_capped: false,
    });
    h.count += 1;
    h.sum += value;
    h.buckets[idx] += 1;
    if h.samples.len() < MAX_EXACT_SAMPLES {
        h.samples.push(value);
    } else {
        h.samples_capped = true;
    }
}

/// Percentile statistics of one labeled histogram.
#[derive(Debug, Clone, PartialEq)]
pub struct HistStats {
    /// Observation count.
    pub count: u64,
    /// Sum of observations.
    pub sum: f64,
    /// Nearest-rank median.
    pub p50: f64,
    /// Nearest-rank 90th percentile.
    pub p90: f64,
    /// Nearest-rank 99th percentile.
    pub p99: f64,
    /// True when the percentiles are exact (computed from raw samples);
    /// false when the sample cap was hit and they are ladder-bucket
    /// upper bounds.
    pub exact: bool,
    /// Per-bucket counts on the shared [`HIST_BOUNDS`] ladder (tail
    /// bucket is overflow).
    pub buckets: Vec<u64>,
}

/// Nearest-rank percentile of an ascending-sorted slice (0.0 for empty).
fn rank(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() - 1) as f64 * q).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

/// Bucket-resolution percentile: the upper bound of the ladder bucket
/// containing the nearest-rank observation.
fn bucket_rank(buckets: &[u64], count: u64, q: f64) -> f64 {
    if count == 0 {
        return 0.0;
    }
    let target = (((count - 1) as f64) * q).round() as u64;
    let mut seen = 0u64;
    for (i, &c) in buckets.iter().enumerate() {
        seen += c;
        if c > 0 && seen > target {
            return if i < HIST_BOUNDS.len() { HIST_BOUNDS[i] } else { f64::INFINITY };
        }
    }
    f64::INFINITY
}

impl HistStats {
    fn from_hist(h: &LabeledHist) -> HistStats {
        let (p50, p90, p99, exact) = if h.samples_capped {
            (
                bucket_rank(&h.buckets, h.count, 0.50),
                bucket_rank(&h.buckets, h.count, 0.90),
                bucket_rank(&h.buckets, h.count, 0.99),
                false,
            )
        } else {
            let mut sorted = h.samples.clone();
            sorted.sort_by(f64::total_cmp);
            (rank(&sorted, 0.50), rank(&sorted, 0.90), rank(&sorted, 0.99), true)
        };
        HistStats { count: h.count, sum: h.sum, p50, p90, p99, exact, buckets: h.buckets.clone() }
    }
}

/// A point-in-time copy of the labeled registry, every family ordered by
/// `(name, labels)` (the `BTreeMap` order), so dumps and expositions are
/// deterministic.
#[derive(Debug, Clone, Default)]
pub struct LabeledSnapshot {
    /// `(name, labels)` → accumulated counter value.
    pub counters: Vec<((&'static str, LabelSet), u64)>,
    /// `(name, labels)` → last gauge value.
    pub gauges: Vec<((&'static str, LabelSet), f64)>,
    /// `(name, labels)` → histogram statistics.
    pub hists: Vec<((&'static str, LabelSet), HistStats)>,
    /// Writes rejected by the per-metric cardinality cap.
    pub dropped_series: u64,
}

/// Snapshot the labeled registry.
pub fn labeled_snapshot() -> LabeledSnapshot {
    // ts3-lint: allow(no-unwrap-in-lib) registry mutex poisoning means a recording thread panicked; metrics state is unrecoverable
    let r = registry().lock().unwrap();
    LabeledSnapshot {
        counters: r.counters.iter().map(|(k, v)| (k.clone(), *v)).collect(),
        gauges: r.gauges.iter().map(|(k, v)| (k.clone(), *v)).collect(),
        hists: r.hists.iter().map(|(k, h)| (k.clone(), HistStats::from_hist(h))).collect(),
        dropped_series: r.dropped_series,
    }
}

/// Clear every labeled series and the dropped-series count.
pub fn reset_labeled() {
    // ts3-lint: allow(no-unwrap-in-lib) registry mutex poisoning means a recording thread panicked; metrics state is unrecoverable
    let mut r = registry().lock().unwrap();
    r.counters.clear();
    r.gauges.clear();
    r.hists.clear();
    r.dropped_series = 0;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::test_lock;

    #[test]
    fn disabled_labeled_registry_records_nothing() {
        let _g = test_lock();
        crate::set_level(0);
        reset_labeled();
        counter_add_l("c", &[("tenant", "0")], 5);
        gauge_set_l("g", &[("tenant", "0")], 1.0);
        observe_l("h", &[("tenant", "0")], 0.5);
        let s = labeled_snapshot();
        assert!(s.counters.is_empty() && s.gauges.is_empty() && s.hists.is_empty());
        assert_eq!(s.dropped_series, 0);
    }

    #[test]
    fn label_order_is_canonicalized_and_series_accumulate() {
        let _g = test_lock();
        crate::set_level(1);
        reset_labeled();
        counter_add_l("serve.requests", &[("tenant", "1"), ("model", "DLinear")], 2);
        counter_add_l("serve.requests", &[("model", "DLinear"), ("tenant", "1")], 3);
        counter_add_l("serve.requests", &[("tenant", "0"), ("model", "TS3Net")], 1);
        gauge_set_l("depth", &[("tenant", "0")], 4.0);
        gauge_set_l("depth", &[("tenant", "0")], 2.0);
        let s = labeled_snapshot();
        assert_eq!(s.counters.len(), 2, "swapped label order must hit the same series");
        // BTreeMap order: "DLinear" sorts before "TS3Net".
        let (key, v) = &s.counters[0];
        assert_eq!(key.0, "serve.requests");
        assert_eq!(key.1, vec![("model", "DLinear".to_string()), ("tenant", "1".to_string())]);
        assert_eq!(*v, 5);
        assert_eq!(s.gauges[0].1, 2.0, "gauge is last-write-wins");
        crate::set_level(0);
        reset_labeled();
    }

    #[test]
    fn labeled_hist_reports_exact_percentiles() {
        let _g = test_lock();
        crate::set_level(1);
        reset_labeled();
        // 1..=100 ticks: exact nearest-rank percentiles are knowable.
        for v in 1..=100u64 {
            observe_l("lat", &[("tenant", "0")], v as f64);
        }
        let s = labeled_snapshot();
        let (_, h) = &s.hists[0];
        assert_eq!(h.count, 100);
        assert!(h.exact);
        assert_eq!(h.p50, 51.0); // round(99 * 0.5) = 50 -> sorted[50]
        assert_eq!(h.p90, 90.0); // round(99 * 0.9) = 89 -> sorted[89]
        assert_eq!(h.p99, 99.0); // round(99 * 0.99) = 98 -> sorted[98]
        assert_eq!(h.sum, 5050.0);
        crate::set_level(0);
        reset_labeled();
    }

    #[test]
    fn cardinality_cap_drops_and_counts_new_series() {
        let _g = test_lock();
        crate::set_level(1);
        reset_labeled();
        for i in 0..(MAX_SERIES_PER_METRIC + 5) {
            let v = i.to_string();
            counter_add_l("capped", &[("tenant", v.as_str())], 1);
        }
        // Existing series still accept writes at the cap.
        counter_add_l("capped", &[("tenant", "0")], 1);
        let s = labeled_snapshot();
        let capped: Vec<_> = s.counters.iter().filter(|((n, _), _)| *n == "capped").collect();
        assert_eq!(capped.len(), MAX_SERIES_PER_METRIC);
        assert_eq!(s.dropped_series, 5);
        assert_eq!(capped[0].1, 2, "series under the cap keep accumulating");
        crate::set_level(0);
        reset_labeled();
    }

    #[test]
    fn sample_cap_degrades_to_bucket_upper_bounds() {
        let _g = test_lock();
        crate::set_level(1);
        reset_labeled();
        for _ in 0..(MAX_EXACT_SAMPLES + 10) {
            observe_l("big", &[], 3.0);
        }
        let s = labeled_snapshot();
        let (_, h) = &s.hists[0];
        assert_eq!(h.count, (MAX_EXACT_SAMPLES + 10) as u64);
        assert!(!h.exact);
        assert_eq!(h.p50, 5.0, "3.0 lands in the (2, 5] ladder bucket");
        assert_eq!(h.p99, 5.0);
        crate::set_level(0);
        reset_labeled();
    }
}
