//! The metrics registry: named counters, gauges and fixed-bucket
//! histograms behind the same `TS3_TRACE` gate as tracing.
//!
//! All three families share one process-global registry (linear-probe
//! `Vec`s under a mutex — the workspace registers tens of series, not
//! thousands). Counters are monotone `u64` sums; gauges hold the last
//! written value; histograms count observations into a fixed 1-2-5
//! decade ladder so two runs bucket identically with no configuration.

use crate::gate;
use std::sync::{Mutex, OnceLock};

/// Fixed histogram bucket upper bounds: a 1-2-5 ladder covering
/// `1e-9 ..= 1e9` (units are whatever the caller observes — seconds,
/// norms, ratios). Values above the last bound land in the overflow
/// bucket at index `HIST_BOUNDS.len()`.
pub const HIST_BOUNDS: [f64; 55] = [
    1e-9, 2e-9, 5e-9, 1e-8, 2e-8, 5e-8, 1e-7, 2e-7, 5e-7, 1e-6, 2e-6, 5e-6, 1e-5, 2e-5, 5e-5,
    1e-4, 2e-4, 5e-4, 1e-3, 2e-3, 5e-3, 1e-2, 2e-2, 5e-2, 1e-1, 2e-1, 5e-1, 1e0, 2e0, 5e0, 1e1,
    2e1, 5e1, 1e2, 2e2, 5e2, 1e3, 2e3, 5e3, 1e4, 2e4, 5e4, 1e5, 2e5, 5e5, 1e6, 2e6, 5e6, 1e7,
    2e7, 5e7, 1e8, 2e8, 5e8, 1e9,
];

/// One histogram: observation count, running sum, and per-bucket counts
/// (length `HIST_BOUNDS.len() + 1`; the tail bucket is overflow).
#[derive(Debug, Clone)]
pub struct HistSnapshot {
    /// Total observations.
    pub count: u64,
    /// Sum of observed values.
    pub sum: f64,
    /// Per-bucket observation counts.
    pub buckets: Vec<u64>,
}

#[derive(Default)]
struct Registry {
    counters: Vec<(&'static str, u64)>,
    gauges: Vec<(&'static str, f64)>,
    hists: Vec<(&'static str, HistSnapshot)>,
}

fn registry() -> &'static Mutex<Registry> {
    static R: OnceLock<Mutex<Registry>> = OnceLock::new();
    R.get_or_init(|| Mutex::new(Registry::default()))
}

/// Add `delta` to the counter `name` (created at zero on first use).
/// No-op when tracing is disabled.
#[inline]
pub fn counter_add(name: &'static str, delta: u64) {
    if !gate::enabled() {
        return;
    }
    // ts3-lint: allow(no-unwrap-in-lib) registry mutex poisoning means a recording thread panicked; metrics state is unrecoverable
    let mut r = registry().lock().unwrap();
    match r.counters.iter_mut().find(|(k, _)| *k == name) {
        Some((_, v)) => *v += delta,
        None => r.counters.push((name, delta)),
    }
}

/// Set the gauge `name` to `value` (last write wins). No-op when
/// tracing is disabled.
#[inline]
pub fn gauge_set(name: &'static str, value: f64) {
    if !gate::enabled() {
        return;
    }
    // ts3-lint: allow(no-unwrap-in-lib) registry mutex poisoning means a recording thread panicked; metrics state is unrecoverable
    let mut r = registry().lock().unwrap();
    match r.gauges.iter_mut().find(|(k, _)| *k == name) {
        Some((_, v)) => *v = value,
        None => r.gauges.push((name, value)),
    }
}

/// Index of the 1-2-5 ladder bucket for `value` (overflow = last index).
pub fn bucket_index(value: f64) -> usize {
    HIST_BOUNDS.iter().position(|&b| value <= b).unwrap_or(HIST_BOUNDS.len())
}

/// Record `value` into the fixed-bucket histogram `name`. No-op when
/// tracing is disabled; NaN observations are dropped.
#[inline]
pub fn observe(name: &'static str, value: f64) {
    if !gate::enabled() || value.is_nan() {
        return;
    }
    let idx = bucket_index(value);
    // ts3-lint: allow(no-unwrap-in-lib) registry mutex poisoning means a recording thread panicked; metrics state is unrecoverable
    let mut r = registry().lock().unwrap();
    let hi = match r.hists.iter().position(|(k, _)| *k == name) {
        Some(i) => i,
        None => {
            r.hists.push((
                name,
                HistSnapshot { count: 0, sum: 0.0, buckets: vec![0; HIST_BOUNDS.len() + 1] },
            ));
            r.hists.len() - 1
        }
    };
    let hist = &mut r.hists[hi].1;
    hist.count += 1;
    hist.sum += value;
    hist.buckets[idx] += 1;
}

/// A point-in-time copy of the registry, each family sorted by name so
/// dumps diff cleanly and the determinism test can compare directly.
#[derive(Debug, Clone, Default)]
pub struct MetricsSnapshot {
    /// Counter name → accumulated value.
    pub counters: Vec<(&'static str, u64)>,
    /// Gauge name → last value.
    pub gauges: Vec<(&'static str, f64)>,
    /// Histogram name → snapshot.
    pub hists: Vec<(&'static str, HistSnapshot)>,
}

/// Snapshot the registry (sorted by name within each family).
pub fn metrics_snapshot() -> MetricsSnapshot {
    // ts3-lint: allow(no-unwrap-in-lib) registry mutex poisoning means a recording thread panicked; metrics state is unrecoverable
    let r = registry().lock().unwrap();
    let mut snap = MetricsSnapshot {
        counters: r.counters.clone(),
        gauges: r.gauges.clone(),
        hists: r.hists.clone(),
    };
    snap.counters.sort_by_key(|(k, _)| *k);
    snap.gauges.sort_by_key(|(k, _)| *k);
    snap.hists.sort_by_key(|(k, _)| *k);
    snap
}

/// Clear every counter, gauge and histogram.
pub fn reset_metrics() {
    // ts3-lint: allow(no-unwrap-in-lib) registry mutex poisoning means a recording thread panicked; metrics state is unrecoverable
    let mut r = registry().lock().unwrap();
    r.counters.clear();
    r.gauges.clear();
    r.hists.clear();
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::test_lock;

    #[test]
    fn disabled_registry_records_nothing() {
        let _g = test_lock();
        crate::set_level(0);
        reset_metrics();
        counter_add("c", 5);
        gauge_set("g", 1.0);
        observe("h", 0.5);
        let s = metrics_snapshot();
        assert!(s.counters.is_empty() && s.gauges.is_empty() && s.hists.is_empty());
    }

    #[test]
    fn counters_gauges_histograms_accumulate() {
        let _g = test_lock();
        crate::set_level(1);
        reset_metrics();
        counter_add("b.calls", 2);
        counter_add("a.calls", 1);
        counter_add("b.calls", 3);
        gauge_set("norm", 1.5);
        gauge_set("norm", 0.5);
        observe("dur", 0.003);
        observe("dur", 0.03);
        observe("dur", 1e12); // overflow bucket
        let s = metrics_snapshot();
        assert_eq!(s.counters, vec![("a.calls", 1), ("b.calls", 5)]);
        assert_eq!(s.gauges, vec![("norm", 0.5)]);
        let (_, h) = &s.hists[0];
        assert_eq!(h.count, 3);
        assert_eq!(h.buckets[bucket_index(0.003)], 1);
        assert_eq!(h.buckets[bucket_index(0.03)], 1);
        assert_eq!(h.buckets[HIST_BOUNDS.len()], 1);
        crate::set_level(0);
        reset_metrics();
    }

    #[test]
    fn bucket_index_ladder() {
        assert_eq!(bucket_index(0.0), 0);
        assert_eq!(bucket_index(1e-9), 0);
        assert_eq!(bucket_index(1.1e-9), 1);
        assert_eq!(bucket_index(1.0), 27);
        assert_eq!(bucket_index(2e9), HIST_BOUNDS.len());
    }

    #[test]
    fn bucket_index_edge_cases() {
        // Every exact bound lands in its own bucket (bounds are upper
        // bounds, comparison is `<=`), and the next representable value
        // up spills into the following one.
        for (i, &b) in HIST_BOUNDS.iter().enumerate() {
            assert_eq!(bucket_index(b), i, "exact bound {b}");
            let expected_next = if i + 1 < HIST_BOUNDS.len() { i + 1 } else { HIST_BOUNDS.len() };
            assert_eq!(bucket_index(b * (1.0 + 1e-12)), expected_next, "just above {b}");
        }
        // Zero and negatives clamp into the first bucket.
        assert_eq!(bucket_index(0.0), 0);
        assert_eq!(bucket_index(-0.0), 0);
        assert_eq!(bucket_index(-1.0), 0);
        assert_eq!(bucket_index(f64::NEG_INFINITY), 0);
        assert_eq!(bucket_index(f64::MIN_POSITIVE), 0);
        // Overflow: above the last bound, and +inf.
        assert_eq!(bucket_index(1e9 + 1.0), HIST_BOUNDS.len());
        assert_eq!(bucket_index(f64::INFINITY), HIST_BOUNDS.len());
        // NaN compares false with every bound, so it falls through to
        // the overflow index — `observe` drops NaN before ever getting
        // here, but the function itself must not panic or index out of
        // bounds.
        assert_eq!(bucket_index(f64::NAN), HIST_BOUNDS.len());
    }

    #[test]
    fn observe_drops_nan_but_counts_infinity() {
        let _g = test_lock();
        crate::set_level(1);
        reset_metrics();
        observe("edge", f64::NAN);
        let s = metrics_snapshot();
        assert!(s.hists.is_empty(), "NaN observation must be dropped");
        observe("edge", f64::INFINITY);
        let s = metrics_snapshot();
        assert_eq!(s.hists[0].1.count, 1);
        assert_eq!(s.hists[0].1.buckets[HIST_BOUNDS.len()], 1, "inf lands in overflow");
        crate::set_level(0);
        reset_metrics();
    }
}
