//! The [`ts3_json`] sink: serialise the span tree and the metrics
//! registry as `Json` documents (the schema documented in README
//! §Observability) and honour `TS3_METRICS_OUT`.

use crate::metrics::{MetricsSnapshot, HIST_BOUNDS};
use crate::trace::{EventRec, FieldValue, SpanRec};
use ts3_json::Json;

fn field_to_json(v: &FieldValue) -> Json {
    match v {
        FieldValue::I64(v) => Json::Num(*v as f64),
        FieldValue::U64(v) => Json::Num(*v as f64),
        FieldValue::F64(v) => Json::Num(*v),
        FieldValue::Bool(v) => Json::Bool(*v),
        FieldValue::Str(v) => Json::Str((*v).to_string()),
        FieldValue::Owned(v) => Json::Str(v.clone()),
    }
}

fn fields_to_json(fields: &[(&'static str, FieldValue)]) -> Json {
    Json::Obj(fields.iter().map(|(k, v)| (k.to_string(), field_to_json(v))).collect())
}

fn event_to_json(e: &EventRec) -> Json {
    Json::obj([
        ("name", Json::Str(e.name.to_string())),
        ("at_us", Json::Num(e.at_ns as f64 / 1e3)),
        ("fields", fields_to_json(&e.fields)),
    ])
}

fn span_to_json(spans: &[SpanRec], events: &[EventRec], i: usize) -> Json {
    let s = &spans[i];
    let mut node = Json::obj([
        ("name", Json::Str(s.name.to_string())),
        ("start_us", Json::Num(s.start_ns as f64 / 1e3)),
        ("dur_us", Json::Num(s.dur_ns as f64 / 1e3)),
    ]);
    if !s.fields.is_empty() {
        node.insert("fields", fields_to_json(&s.fields));
    }
    let evs: Vec<Json> =
        events.iter().filter(|e| e.parent == Some(s.id)).map(event_to_json).collect();
    if !evs.is_empty() {
        node.insert("events", Json::Arr(evs));
    }
    let children: Vec<Json> = (0..spans.len())
        .filter(|&c| spans[c].parent == Some(s.id))
        .map(|c| span_to_json(spans, events, c))
        .collect();
    if !children.is_empty() {
        node.insert("children", Json::Arr(children));
    }
    node
}

/// Serialise recorded spans and events as a nested tree: an array of
/// root spans (events embedded under their parent span) plus an
/// `orphan_events` array for events fired outside any span.
pub fn trace_to_json(spans: &[SpanRec], events: &[EventRec]) -> Json {
    let mut spans: Vec<SpanRec> = spans.to_vec();
    spans.sort_by_key(|s| s.id);
    // A parent id that overflowed the collector cap leaves a dangling
    // link; treat such spans as roots so nothing is silently lost.
    let known: Vec<u64> = spans.iter().map(|s| s.id).collect();
    for s in &mut spans {
        if let Some(p) = s.parent {
            if !known.contains(&p) {
                s.parent = None;
            }
        }
    }
    let roots: Vec<Json> = (0..spans.len())
        .filter(|&i| spans[i].parent.is_none())
        .map(|i| span_to_json(&spans, events, i))
        .collect();
    let orphans: Vec<Json> =
        events.iter().filter(|e| e.parent.is_none()).map(event_to_json).collect();
    Json::obj([("spans", Json::Arr(roots)), ("orphan_events", Json::Arr(orphans))])
}

/// Serialise a metrics snapshot: counters and gauges as flat objects,
/// histograms with count/sum and only their non-empty buckets (keyed by
/// upper bound) so the dump stays readable.
pub fn metrics_to_json(snap: &MetricsSnapshot) -> Json {
    let counters =
        Json::Obj(snap.counters.iter().map(|(k, v)| (k.to_string(), Json::Num(*v as f64))).collect());
    let gauges =
        Json::Obj(snap.gauges.iter().map(|(k, v)| (k.to_string(), Json::Num(*v))).collect());
    let hists = Json::Obj(
        snap.hists
            .iter()
            .map(|(k, h)| {
                let buckets = Json::Obj(
                    h.buckets
                        .iter()
                        .enumerate()
                        .filter(|(_, &c)| c > 0)
                        .map(|(i, &c)| {
                            let key = if i < HIST_BOUNDS.len() {
                                format!("le_{}", HIST_BOUNDS[i])
                            } else {
                                "overflow".to_string()
                            };
                            (key, Json::Num(c as f64))
                        })
                        .collect(),
                );
                (
                    k.to_string(),
                    Json::obj([
                        ("count", Json::Num(h.count as f64)),
                        ("sum", Json::Num(h.sum)),
                        ("buckets", buckets),
                    ]),
                )
            })
            .collect(),
    );
    Json::obj([("counters", counters), ("gauges", gauges), ("histograms", hists)])
}

/// One-call dump of everything the process has recorded: the span tree,
/// the metrics registry and the dropped-record count.
pub fn dump_json() -> Json {
    let (spans, events, dropped) = crate::trace::snapshot_records();
    Json::obj([
        ("trace", trace_to_json(&spans, &events)),
        ("metrics", metrics_to_json(&crate::metrics_snapshot())),
        ("dropped_records", Json::Num(dropped as f64)),
    ])
}

/// Aggregate recorded spans into folded-stacks text — one line per
/// distinct span stack path, `root;child;leaf <self_us>` — the input
/// format flamegraph tooling eats directly. Self-time is the span's
/// duration minus its children's (clamped at zero so clock jitter
/// never produces negative samples); lines are sorted by path, so the
/// *set of paths* is deterministic even though the microsecond values
/// are wallclock.
pub fn folded_stacks(spans: &[SpanRec]) -> String {
    let mut spans: Vec<SpanRec> = spans.to_vec();
    spans.sort_by_key(|s| s.id);
    let index_of = |id: u64| spans.iter().position(|s| s.id == id);
    // Self time = duration minus direct children's durations.
    let mut self_ns: Vec<u64> = spans.iter().map(|s| s.dur_ns).collect();
    for s in &spans {
        if let Some(pi) = s.parent.and_then(index_of) {
            self_ns[pi] = self_ns[pi].saturating_sub(s.dur_ns);
        }
    }
    let mut folded: std::collections::BTreeMap<String, u64> = std::collections::BTreeMap::new();
    for (i, s) in spans.iter().enumerate() {
        let mut path = vec![s.name];
        let mut cur = s.parent;
        while let Some(pi) = cur.and_then(index_of) {
            path.push(spans[pi].name);
            cur = spans[pi].parent;
        }
        path.reverse();
        *folded.entry(path.join(";")).or_insert(0) += self_ns[i] / 1_000;
    }
    let mut out = String::new();
    for (path, us) in &folded {
        out.push_str(path);
        out.push(' ');
        out.push_str(&us.to_string());
        out.push('\n');
    }
    out
}

/// If `TS3_METRICS_OUT` is set, write the current metrics registry
/// there as pretty JSON. Returns the path written.
pub fn write_metrics_out() -> std::io::Result<Option<String>> {
    let Some(path) = crate::gate::metrics_out() else { return Ok(None) };
    let doc = metrics_to_json(&crate::metrics_snapshot());
    std::fs::write(&path, doc.to_string_pretty())?;
    Ok(Some(path))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::test_lock;

    #[test]
    fn trace_and_metrics_round_trip_through_parser() {
        let _g = test_lock();
        crate::set_level(1);
        crate::reset();
        {
            let mut s = crate::span("export.outer");
            s.field("m", 4u64);
            let _inner = crate::span("export.inner");
            crate::event("tick", |f| {
                f.set("loss", 0.25f64);
                f.set("why", "test");
            });
        }
        crate::counter_add("export.calls", 3);
        crate::gauge_set("export.norm", 2.0);
        crate::observe("export.dur", 0.01);
        let doc = dump_json();
        let text = doc.to_string_pretty();
        let parsed = Json::parse(&text).expect("dump parses");
        let roots = parsed.get("trace").unwrap().get("spans").unwrap().as_array().unwrap();
        assert_eq!(roots.len(), 1);
        assert_eq!(roots[0].get("name").unwrap().as_str(), Some("export.outer"));
        let children = roots[0].get("children").unwrap().as_array().unwrap();
        assert_eq!(children[0].get("name").unwrap().as_str(), Some("export.inner"));
        let events = children[0].get("events").unwrap().as_array().unwrap();
        assert_eq!(events[0].get("name").unwrap().as_str(), Some("tick"));
        assert_eq!(
            events[0].get("fields").unwrap().get("loss").unwrap().as_f64(),
            Some(0.25)
        );
        let m = parsed.get("metrics").unwrap();
        assert_eq!(m.get("counters").unwrap().get("export.calls").unwrap().as_usize(), Some(3));
        assert_eq!(m.get("gauges").unwrap().get("export.norm").unwrap().as_f64(), Some(2.0));
        let h = m.get("histograms").unwrap().get("export.dur").unwrap();
        assert_eq!(h.get("count").unwrap().as_usize(), Some(1));
        crate::set_level(0);
        crate::reset();
    }

    #[test]
    fn folded_stacks_paths_and_self_time() {
        let _g = test_lock();
        crate::set_level(1);
        crate::reset();
        {
            let _outer = crate::span("outer");
            {
                let _inner = crate::span("inner");
            }
            {
                let _inner = crate::span("inner");
            }
        }
        let (spans, _, _) = crate::trace::snapshot_records();
        let folded = folded_stacks(&spans);
        let lines: Vec<&str> = folded.lines().collect();
        assert_eq!(lines.len(), 2, "two distinct paths: {folded}");
        assert!(lines[0].starts_with("outer "), "paths sorted: {folded}");
        assert!(lines[1].starts_with("outer;inner "), "repeat paths merge: {folded}");
        crate::set_level(0);
        crate::reset();
    }
}
