//! Per-request trace timelines: where did *this* request's latency go?
//!
//! Aggregate metrics answer "is the fleet healthy"; a timeline answers
//! "where did request 4127's five milliseconds go". This module mints a
//! [`RequestCtx`] id at enqueue time and collects one record per request
//! as it moves through the serving spine:
//!
//! ```text
//! submitted ──queue-wait──▶ seen ──coalesce-hold──▶ flushed
//!     (enqueue tick)   (coalescer first eval)   (batch formed)
//!          ──execute (per plan stage, ns)──▶ responded
//! ```
//!
//! Tick-valued segments (queue-wait, hold, respond) come from the
//! serving layer's **virtual clock** and are therefore deterministic;
//! per-stage execute times are wallclock nanoseconds (this file is on
//! the `ts3lint.json` wallclock allowlist for exactly that reason) and
//! are excluded from [`deterministic_digest`], which is what the
//! cross-thread-count test compares.
//!
//! Export is [`timeline_to_json`] → a `ts3.timeline.v1` document with
//! the raw request/batch records plus a per-tenant nearest-rank
//! p50/p90/p99 tick-latency summary. Like the trace collector, storage
//! is capped ([`MAX_REQUESTS`]/[`MAX_BATCHES`]) with overflow counted,
//! and everything is gated on `TS3_TRACE >= 1` — the disabled path is
//! one relaxed atomic load and allocates nothing.

use crate::gate;
use std::cell::RefCell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;
use ts3_json::Json;

/// Hard cap on stored request records (overflow counted, not stored).
pub const MAX_REQUESTS: usize = 65_536;
/// Hard cap on stored batch records.
pub const MAX_BATCHES: usize = 16_384;

/// Timeline identity of one in-flight request. Minted by
/// [`begin_request`]; `RequestCtx(0)` is the inert id handed out when
/// tracing is disabled, and every later `mark_*` on it is a no-op —
/// call sites thread the ctx through unconditionally and pay nothing
/// on the disabled path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RequestCtx(pub u64);

impl RequestCtx {
    /// The inert id: recording disabled or cap exceeded.
    pub const NONE: RequestCtx = RequestCtx(0);

    /// True when this ctx refers to a live timeline record.
    #[inline]
    pub fn active(&self) -> bool {
        self.0 != 0
    }
}

/// One request's life, tick-stamped by the serving layer's virtual
/// clock. `u64::MAX` in an "optional" tick field means the transition
/// was never recorded (e.g. the run ended with the request queued).
#[derive(Debug, Clone)]
pub struct ReqRec {
    /// Timeline id ([`RequestCtx`] payload).
    pub id: u64,
    /// Owning tenant.
    pub tenant: usize,
    /// Tick the request entered the server queue.
    pub submitted: u64,
    /// Tick the coalescer first evaluated it (`u64::MAX` if never).
    pub seen: u64,
    /// Tick its batch was formed (`u64::MAX` if never flushed).
    pub flushed: u64,
    /// Batch timeline id it rode in (0 if never flushed).
    pub batch: u64,
    /// Size of that batch.
    pub batch_size: usize,
    /// Tick the response was sent (`u64::MAX` if never).
    pub responded: u64,
    /// Deadline tick the client asked for.
    pub deadline: u64,
    /// Whether the response missed that deadline.
    pub missed: bool,
}

/// One executed batch: which stages ran and what each cost.
#[derive(Debug, Clone)]
pub struct BatchRec {
    /// Batch timeline id (shared by its requests' `batch` field).
    pub id: u64,
    /// Tenant whose plan executed.
    pub tenant: usize,
    /// Tick the batch executed.
    pub tick: u64,
    /// Requests in the batch.
    pub size: usize,
    /// `(stage name, wallclock ns)` in execution order.
    pub stages: Vec<(String, u64)>,
    /// Wallclock ns for the whole execute (stages + stacking/reply).
    pub total_ns: u64,
}

#[derive(Default)]
struct TimelineStore {
    requests: Vec<ReqRec>,
    batches: Vec<BatchRec>,
    dropped: u64,
}

fn store() -> &'static Mutex<TimelineStore> {
    static S: OnceLock<Mutex<TimelineStore>> = OnceLock::new();
    S.get_or_init(|| Mutex::new(TimelineStore::default()))
}

static NEXT_REQ: AtomicU64 = AtomicU64::new(1);
static NEXT_BATCH: AtomicU64 = AtomicU64::new(1);

thread_local! {
    /// Batch record under construction on this thread (the serve
    /// executor), receiving stage marks from `stage_scope`.
    static CURRENT_BATCH: RefCell<Option<BatchRec>> = const { RefCell::new(None) };
}

/// Mint a timeline id for a request entering the queue at tick
/// `submitted`. Returns [`RequestCtx::NONE`] (inert) when tracing is
/// disabled or the request cap is hit.
pub fn begin_request(tenant: usize, submitted: u64, deadline: u64) -> RequestCtx {
    if !gate::enabled() {
        return RequestCtx::NONE;
    }
    // ts3-lint: allow(no-unwrap-in-lib) timeline mutex poisoning means a recording thread panicked; timeline state is unrecoverable
    let mut s = store().lock().unwrap();
    if s.requests.len() >= MAX_REQUESTS {
        s.dropped += 1;
        return RequestCtx::NONE;
    }
    let id = NEXT_REQ.fetch_add(1, Ordering::Relaxed);
    s.requests.push(ReqRec {
        id,
        tenant,
        submitted,
        seen: u64::MAX,
        flushed: u64::MAX,
        batch: 0,
        batch_size: 0,
        responded: u64::MAX,
        deadline,
        missed: false,
    });
    RequestCtx(id)
}

fn with_req(ctx: RequestCtx, f: impl FnOnce(&mut ReqRec)) {
    if !ctx.active() {
        return;
    }
    // ts3-lint: allow(no-unwrap-in-lib) timeline mutex poisoning means a recording thread panicked; timeline state is unrecoverable
    let mut s = store().lock().unwrap();
    if let Some(r) = s.requests.iter_mut().rev().find(|r| r.id == ctx.0) {
        f(r);
    }
}

/// Record the coalescer's first evaluation of the request at `tick`
/// (the end of its queue-wait segment). Idempotent: only the first
/// call sticks.
pub fn mark_seen(ctx: RequestCtx, tick: u64) {
    with_req(ctx, |r| {
        if r.seen == u64::MAX {
            r.seen = tick;
        }
    });
}

/// Record the request's batch assignment at flush time.
pub fn mark_flushed(ctx: RequestCtx, tick: u64, batch: u64, batch_size: usize) {
    with_req(ctx, |r| {
        r.flushed = tick;
        r.batch = batch;
        r.batch_size = batch_size;
    });
}

/// Record the response leaving the server at `tick`.
pub fn mark_respond(ctx: RequestCtx, tick: u64, missed: bool) {
    with_req(ctx, |r| {
        r.responded = tick;
        r.missed = missed;
    });
}

/// RAII guard for one batch execution on the current thread. Stage
/// scopes opened while it lives attach to it; dropping files the
/// record (with total wallclock ns) and returns its id via
/// [`BatchGuard::id`] read before the drop.
pub struct BatchGuard {
    id: u64,
    start: Option<Instant>,
}

impl BatchGuard {
    /// Timeline id of this batch (0 when inert).
    #[inline]
    pub fn id(&self) -> u64 {
        self.id
    }
}

/// Open a batch-execution scope at `tick` for `tenant`, covering
/// `size` requests. Inert (id 0, no clock read) when tracing is
/// disabled or the batch cap is hit.
pub fn begin_batch(tenant: usize, tick: u64, size: usize) -> BatchGuard {
    if !gate::enabled() {
        return BatchGuard { id: 0, start: None };
    }
    {
        // ts3-lint: allow(no-unwrap-in-lib) timeline mutex poisoning means a recording thread panicked; timeline state is unrecoverable
        let mut s = store().lock().unwrap();
        if s.batches.len() >= MAX_BATCHES {
            s.dropped += 1;
            return BatchGuard { id: 0, start: None };
        }
    }
    let id = NEXT_BATCH.fetch_add(1, Ordering::Relaxed);
    CURRENT_BATCH.with(|b| {
        *b.borrow_mut() = Some(BatchRec {
            id,
            tenant,
            tick,
            size,
            stages: Vec::new(),
            total_ns: 0,
        });
    });
    BatchGuard { id, start: Some(Instant::now()) }
}

impl Drop for BatchGuard {
    fn drop(&mut self) {
        let Some(start) = self.start else { return };
        let total_ns = start.elapsed().as_nanos() as u64;
        let rec = CURRENT_BATCH.with(|b| b.borrow_mut().take());
        let Some(mut rec) = rec else { return };
        rec.total_ns = total_ns;
        // ts3-lint: allow(no-unwrap-in-lib) timeline mutex poisoning means a recording thread panicked; timeline state is unrecoverable
        let mut s = store().lock().unwrap();
        if s.batches.len() < MAX_BATCHES {
            s.batches.push(rec);
        } else {
            s.dropped += 1;
        }
    }
}

/// RAII guard timing one plan stage inside the current batch scope.
pub struct StageGuard {
    name: Option<String>,
    start: Option<Instant>,
}

/// Time one named stage of the batch currently executing on this
/// thread. Inert when tracing is disabled or no batch scope is open —
/// `CompiledPlan::run` calls this unconditionally and eager/test runs
/// outside a batch pay only the gate load.
pub fn stage_scope(name: &str) -> StageGuard {
    if !gate::enabled() || !CURRENT_BATCH.with(|b| b.borrow().is_some()) {
        return StageGuard { name: None, start: None };
    }
    StageGuard { name: Some(name.to_string()), start: Some(Instant::now()) }
}

impl Drop for StageGuard {
    fn drop(&mut self) {
        let (Some(name), Some(start)) = (self.name.take(), self.start) else { return };
        let dur_ns = start.elapsed().as_nanos() as u64;
        CURRENT_BATCH.with(|b| {
            if let Some(rec) = b.borrow_mut().as_mut() {
                rec.stages.push((name, dur_ns));
            }
        });
    }
}

/// Snapshot the timeline: `(requests, batches, dropped)`.
pub fn timeline_snapshot() -> (Vec<ReqRec>, Vec<BatchRec>, u64) {
    // ts3-lint: allow(no-unwrap-in-lib) timeline mutex poisoning means a recording thread panicked; timeline state is unrecoverable
    let s = store().lock().unwrap();
    (s.requests.clone(), s.batches.clone(), s.dropped)
}

/// Clear every timeline record and the dropped count.
pub fn reset_timeline() {
    // ts3-lint: allow(no-unwrap-in-lib) timeline mutex poisoning means a recording thread panicked; timeline state is unrecoverable
    let mut s = store().lock().unwrap();
    s.requests.clear();
    s.batches.clear();
    s.dropped = 0;
    CURRENT_BATCH.with(|b| *b.borrow_mut() = None);
}

fn tick_json(t: u64) -> Json {
    if t == u64::MAX {
        Json::Null
    } else {
        Json::Num(t as f64)
    }
}

/// Nearest-rank percentile of an ascending-sorted slice (0 for empty).
fn rank_u64(sorted: &[u64], q: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let idx = ((sorted.len() - 1) as f64 * q).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

/// Render the timeline as a `ts3.timeline.v1` document: raw request
/// records with their tick segments (`queue_wait` = seen − submitted,
/// `hold` = flushed − seen, `respond` = responded − flushed), batch
/// records with per-stage wallclock ns, and a per-tenant nearest-rank
/// p50/p90/p99 summary over responded-request tick latencies.
pub fn timeline_to_json() -> Json {
    let (requests, batches, dropped) = timeline_snapshot();
    let req_json: Json = requests
        .iter()
        .map(|r| {
            let seg = |hi: u64, lo: u64| {
                if hi == u64::MAX || lo == u64::MAX {
                    Json::Null
                } else {
                    Json::Num(hi.saturating_sub(lo) as f64)
                }
            };
            Json::obj([
                ("id", Json::Num(r.id as f64)),
                ("tenant", Json::Num(r.tenant as f64)),
                ("submitted", Json::Num(r.submitted as f64)),
                ("seen", tick_json(r.seen)),
                ("flushed", tick_json(r.flushed)),
                ("responded", tick_json(r.responded)),
                ("deadline", Json::Num(r.deadline as f64)),
                ("missed", Json::Bool(r.missed)),
                ("batch", Json::Num(r.batch as f64)),
                ("batch_size", Json::Num(r.batch_size as f64)),
                (
                    "segments",
                    Json::obj([
                        ("queue_wait", seg(r.seen, r.submitted)),
                        ("hold", seg(r.flushed, r.seen)),
                        ("respond", seg(r.responded, r.flushed)),
                        ("total", seg(r.responded, r.submitted)),
                    ]),
                ),
            ])
        })
        .collect();
    let batch_json: Json = batches
        .iter()
        .map(|b| {
            let stages: Json = b
                .stages
                .iter()
                .map(|(name, ns)| {
                    Json::obj([
                        ("stage", Json::Str(name.clone())),
                        ("dur_ns", Json::Num(*ns as f64)),
                    ])
                })
                .collect();
            Json::obj([
                ("id", Json::Num(b.id as f64)),
                ("tenant", Json::Num(b.tenant as f64)),
                ("tick", Json::Num(b.tick as f64)),
                ("size", Json::Num(b.size as f64)),
                ("stages", stages),
                ("total_ns", Json::Num(b.total_ns as f64)),
            ])
        })
        .collect();
    // Per-tenant tick-latency summary over responded requests,
    // BTreeMap so tenant order is deterministic.
    let mut per_tenant: std::collections::BTreeMap<usize, Vec<u64>> =
        std::collections::BTreeMap::new();
    let mut misses: std::collections::BTreeMap<usize, u64> = std::collections::BTreeMap::new();
    for r in &requests {
        if r.responded != u64::MAX {
            per_tenant.entry(r.tenant).or_default().push(r.responded - r.submitted);
            *misses.entry(r.tenant).or_insert(0) += u64::from(r.missed);
        }
    }
    let tenants: Json = per_tenant
        .iter()
        .map(|(tenant, lats)| {
            let mut sorted = lats.clone();
            sorted.sort_unstable();
            Json::obj([
                ("tenant", Json::Num(*tenant as f64)),
                ("responded", Json::Num(sorted.len() as f64)),
                ("deadline_missed", Json::Num(misses.get(tenant).copied().unwrap_or(0) as f64)),
                ("p50_ticks", Json::Num(rank_u64(&sorted, 0.50) as f64)),
                ("p90_ticks", Json::Num(rank_u64(&sorted, 0.90) as f64)),
                ("p99_ticks", Json::Num(rank_u64(&sorted, 0.99) as f64)),
            ])
        })
        .collect();
    Json::obj([
        ("schema", Json::Str("ts3.timeline.v1".to_string())),
        ("requests", req_json),
        ("batches", batch_json),
        ("tenants", tenants),
        ("dropped_records", Json::Num(dropped as f64)),
    ])
}

/// Deterministic view of the timeline for cross-thread-count
/// comparisons: every tick-valued field and batch assignment, **no
/// wallclock ns**. Two runs of the same lockstep sim must produce the
/// same digest at any `TS3_THREADS` cap.
pub fn deterministic_digest() -> String {
    let (requests, batches, dropped) = timeline_snapshot();
    let mut out = String::new();
    for r in &requests {
        out.push_str(&format!(
            "r tenant={} sub={} seen={} flush={} resp={} dl={} miss={} bsize={}\n",
            r.tenant,
            r.submitted,
            r.seen as i64,
            r.flushed as i64,
            r.responded as i64,
            r.deadline,
            r.missed,
            r.batch_size,
        ));
    }
    for b in &batches {
        let stages: Vec<&str> = b.stages.iter().map(|(n, _)| n.as_str()).collect();
        out.push_str(&format!(
            "b tenant={} tick={} size={} stages={}\n",
            b.tenant,
            b.tick,
            b.size,
            stages.join(","),
        ));
    }
    out.push_str(&format!("dropped={dropped}\n"));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::test_lock;

    #[test]
    fn disabled_timeline_is_inert() {
        let _g = test_lock();
        crate::set_level(0);
        reset_timeline();
        let ctx = begin_request(0, 1, 5);
        assert!(!ctx.active());
        mark_seen(ctx, 2);
        mark_respond(ctx, 3, false);
        let guard = begin_batch(0, 2, 1);
        assert_eq!(guard.id(), 0);
        drop(guard);
        let (reqs, batches, dropped) = timeline_snapshot();
        assert!(reqs.is_empty() && batches.is_empty() && dropped == 0);
    }

    #[test]
    fn request_life_cycle_segments() {
        let _g = test_lock();
        crate::set_level(1);
        reset_timeline();
        let ctx = begin_request(3, 10, 20);
        assert!(ctx.active());
        mark_seen(ctx, 11);
        mark_seen(ctx, 15); // idempotent: first seen wins
        let batch_id;
        {
            let guard = begin_batch(3, 12, 4);
            batch_id = guard.id();
            {
                let _s = stage_scope("decompose");
            }
            {
                let _s = stage_scope("head");
            }
        }
        mark_flushed(ctx, 12, batch_id, 4);
        mark_respond(ctx, 12, false);
        let (reqs, batches, _) = timeline_snapshot();
        let r = &reqs[0];
        assert_eq!((r.submitted, r.seen, r.flushed, r.responded), (10, 11, 12, 12));
        assert_eq!(r.batch, batch_id);
        assert!(!r.missed);
        let b = &batches[0];
        assert_eq!(b.size, 4);
        assert_eq!(b.stages.len(), 2);
        assert_eq!(b.stages[0].0, "decompose");
        let json = timeline_to_json();
        assert_eq!(json.get("schema").and_then(|s| s.as_str()), Some("ts3.timeline.v1"));
        let req = &json.get("requests").and_then(|r| r.as_array()).unwrap()[0];
        let seg = req.get("segments").unwrap();
        assert_eq!(seg.get("queue_wait").and_then(|v| v.as_f64()), Some(1.0));
        assert_eq!(seg.get("hold").and_then(|v| v.as_f64()), Some(1.0));
        assert_eq!(seg.get("respond").and_then(|v| v.as_f64()), Some(0.0));
        crate::set_level(0);
        reset_timeline();
    }

    #[test]
    fn stage_scope_outside_batch_is_inert() {
        let _g = test_lock();
        crate::set_level(1);
        reset_timeline();
        {
            let _s = stage_scope("orphan");
        }
        let (_, batches, _) = timeline_snapshot();
        assert!(batches.is_empty());
        crate::set_level(0);
        reset_timeline();
    }

    #[test]
    fn digest_excludes_wallclock() {
        let _g = test_lock();
        crate::set_level(1);
        reset_timeline();
        let ctx = begin_request(0, 0, 4);
        mark_seen(ctx, 1);
        {
            let g = begin_batch(0, 1, 1);
            let id = g.id();
            mark_flushed(ctx, 1, id, 1);
            let _s = stage_scope("stage0");
        }
        mark_respond(ctx, 1, false);
        let d = deterministic_digest();
        assert!(d.contains("r tenant=0 sub=0 seen=1 flush=1 resp=1 dl=4 miss=false bsize=1"));
        assert!(d.contains("stages=stage0"));
        assert!(!d.contains("ns"), "digest must not embed wallclock: {d}");
        crate::set_level(0);
        reset_timeline();
    }
}
