//! # ts3-obs
//!
//! The workspace's observability substrate: structured tracing (nestable
//! spans + key/value events collected in memory) and a metrics registry
//! (counters, gauges, fixed-bucket histograms), with sinks for
//! human-readable stderr and [`ts3_json`] export. It fills the role the
//! `tracing` + `metrics` crates would play in a non-hermetic build, with
//! zero external dependencies.
//!
//! Since the v2 telemetry pass the crate also carries the production
//! serving pipeline — each layer answering a different question:
//!
//! * [`labels`] — *which tenant is slow?* Fixed-cardinality dimensional
//!   metrics ([`counter_add_l`] etc.) with exact p50/p90/p99 labeled
//!   histograms; the plain static-name API stays as the zero-label fast
//!   path.
//! * [`timeline`] — *where did this request's latency go?* A
//!   [`RequestCtx`] minted at enqueue, tracked through
//!   queue-wait → coalesce-hold → per-stage execute → respond, exported
//!   as `ts3.timeline.v1`.
//! * [`flight`] — *what happened right before it broke?* A bounded
//!   event ring + rolling deadline-miss SLO window, dumping a
//!   `ts3.flight.v1` postmortem on threshold crossing or panic.
//! * [`expo`] — Prometheus-style text exposition of both registries,
//!   byte-deterministic ordering; [`folded_stacks`] renders span
//!   self-time for flamegraph tooling.
//!
//! ## Gating
//!
//! Everything hangs off one env-gated level, read once per process:
//!
//! * `TS3_TRACE=0` (and unset) — disabled. Every entry point degenerates
//!   to a single relaxed atomic load; [`span`] returns an inert guard and
//!   **allocates nothing** (covered by the `no_alloc_when_disabled`
//!   test).
//! * `TS3_TRACE=1` — spans, events and metrics are recorded in memory
//!   for later export (the bench harness writes
//!   `results/<stem>.trace.json`).
//! * `TS3_TRACE=2` — as level 1, plus a live human-readable echo of
//!   every completed span and event on stderr.
//!
//! `TS3_METRICS_OUT=<path>` additionally asks the process to dump the
//! metrics registry as JSON to `<path>` (honoured by
//! `ts3_bench::manifest` and by [`export::write_metrics_out`]).
//! `TS3_TRACE_MAX_SPANS=<n>` lowers the stored-span cap (default
//! [`trace::MAX_SPANS`]) so long runs — benchmark loops in particular —
//! produce compact manifests; overflow is counted in `dropped_records`,
//! never silently lost.
//!
//! ## Determinism contract
//!
//! Counter values and the span *tree shape* (names + nesting + event
//! names, not durations) are pure functions of the executed work, never
//! of the thread count: instrumented kernels open their spans on the
//! calling thread, and nothing increments a counter per worker block.
//! `TS3_THREADS=1` and `TS3_THREADS=8` runs therefore produce identical
//! dumps modulo timing fields — asserted by the cross-crate
//! `trace_determinism` test in `ts3-bench`.
//!
//! **Exception — `.sched.` counters.** Counters with a `.sched.` name
//! segment (`tensor.par.sched.*`, `signal.fft.sched.plans_built`)
//! record *scheduling and caching* decisions — pool dispatch vs. inline
//! runs, plan-cache builds — which legitimately depend on the thread
//! cap and on process history. Determinism comparisons must exclude
//! them (the `trace_determinism` test filters on the `.sched.`
//! substring); everything else remains thread-count-invariant.
//!
//! ## Example
//!
//! ```
//! ts3_obs::set_level(1);
//! {
//!     let mut s = ts3_obs::span("demo.outer");
//!     s.field("answer", 42u64);
//!     ts3_obs::event("demo.tick", |f| f.set("step", 1u64));
//!     ts3_obs::counter_add("demo.ticks", 1);
//! }
//! assert_eq!(ts3_obs::tree_shape(), "demo.outer[demo.tick]");
//! ts3_obs::reset();
//! ts3_obs::set_level(0);
//! ```

pub mod expo;
pub mod export;
pub mod flight;
pub mod gate;
pub mod labels;
pub mod metrics;
pub mod timeline;
pub mod trace;

pub use export::{dump_json, folded_stacks, metrics_to_json, trace_to_json};
pub use gate::{enabled, explicitly_silent, level, metrics_out, set_level, verbose};
pub use labels::{
    counter_add_l, gauge_set_l, labeled_snapshot, observe_l, reset_labeled, HistStats,
    LabeledSnapshot,
};
pub use metrics::{
    counter_add, gauge_set, metrics_snapshot, observe, reset_metrics, HistSnapshot,
    MetricsSnapshot,
};
pub use timeline::{
    begin_batch, begin_request, deterministic_digest, mark_flushed, mark_respond, mark_seen,
    reset_timeline, stage_scope, timeline_snapshot, timeline_to_json, RequestCtx,
};
pub use trace::{
    dropped_counts, event, reset_trace, snapshot_records, span, tree_shape, EventRec, FieldValue,
    Fields, Span, SpanRec,
};

/// Clear every recorded span, event, metric, labeled series and
/// timeline record (the gate level and the flight recorder — which is
/// armed explicitly via [`flight::configure`] — are left untouched).
/// Intended for tests and multi-run tools that want one dump per run.
pub fn reset() {
    reset_trace();
    reset_metrics();
    reset_labeled();
    reset_timeline();
}
