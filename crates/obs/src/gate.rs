//! The env gate: one process-wide trace level plus the metrics output
//! path, each read from the environment once and cached.

use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::OnceLock;

/// Sentinel meaning "not yet initialised from the environment".
const UNINIT: u8 = u8::MAX;

static LEVEL: AtomicU8 = AtomicU8::new(UNINIT);

fn init_from_env() -> u8 {
    let parsed = std::env::var("TS3_TRACE")
        .ok()
        .and_then(|v| v.trim().parse::<u8>().ok())
        .unwrap_or(0)
        .min(2);
    // Racing initialisers parse the same env var, so any winner stores
    // the same value.
    LEVEL.store(parsed, Ordering::Relaxed);
    parsed
}

/// Current trace level: `0` disabled, `1` collect, `2` collect + live
/// stderr echo. The first call parses `TS3_TRACE`; later calls are a
/// single relaxed atomic load.
#[inline]
pub fn level() -> u8 {
    let l = LEVEL.load(Ordering::Relaxed);
    if l == UNINIT {
        init_from_env()
    } else {
        l
    }
}

/// Override the trace level at runtime (clamped to `0..=2`). Tools and
/// tests use this to force collection on or off regardless of the
/// environment; library code should only ever *read* the level.
pub fn set_level(l: u8) {
    LEVEL.store(l.min(2), Ordering::Relaxed);
}

/// True when tracing collects anything at all (`TS3_TRACE >= 1`).
#[inline]
pub fn enabled() -> bool {
    level() >= 1
}

/// True when completed spans and events should also echo to stderr
/// (`TS3_TRACE=2`).
#[inline]
pub fn verbose() -> bool {
    level() >= 2
}

/// True only when the user *explicitly* exported `TS3_TRACE=0` (unset
/// does not count). Progress reporters use this to distinguish "default
/// run, print liveness lines" from "CI asked for silence".
pub fn explicitly_silent() -> bool {
    static SILENT: OnceLock<bool> = OnceLock::new();
    *SILENT.get_or_init(|| std::env::var("TS3_TRACE").map(|v| v.trim() == "0").unwrap_or(false))
}

/// The `TS3_METRICS_OUT` path, if set and non-empty: where the process
/// should dump its metrics registry as JSON on completion.
pub fn metrics_out() -> Option<String> {
    static OUT: OnceLock<Option<String>> = OnceLock::new();
    OUT.get_or_init(|| std::env::var("TS3_METRICS_OUT").ok().filter(|v| !v.trim().is_empty()))
        .clone()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_level_clamps_and_round_trips() {
        let before = level();
        set_level(7);
        assert_eq!(level(), 2);
        assert!(enabled() && verbose());
        set_level(0);
        assert_eq!(level(), 0);
        assert!(!enabled() && !verbose());
        set_level(before);
    }
}
