//! Structured tracing: nestable spans with monotonic timing, key/value
//! events, and the thread-aware in-memory collector behind them.
//!
//! Spans are RAII guards: [`span`] records entry, [`Drop`] records the
//! monotonic duration and files the record. Nesting is tracked with a
//! per-thread span stack, so concurrently-open spans on different
//! threads never corrupt each other's parent links. Records land in one
//! process-global collector (a mutex around two `Vec`s) with a hard
//! capacity cap — overflowing spans/events are counted, not stored, so
//! a pathological run degrades gracefully instead of exhausting memory.

use crate::gate;
use std::cell::RefCell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

/// Default hard cap on stored span records (overflow is counted in
/// `dropped`). Override with `TS3_TRACE_MAX_SPANS` — benchmark runs set
/// it low so their committed `ts3.trace.v1` manifests stay a few
/// hundred KB instead of dumping 100k near-identical kernel spans.
pub const MAX_SPANS: usize = 100_000;
/// Hard cap on stored event records.
pub const MAX_EVENTS: usize = 100_000;

/// Effective span cap: `TS3_TRACE_MAX_SPANS` if set, else [`MAX_SPANS`].
/// Read once per process — changing the env var later has no effect.
pub(crate) fn max_spans() -> usize {
    static CAP: OnceLock<usize> = OnceLock::new();
    *CAP.get_or_init(|| {
        std::env::var("TS3_TRACE_MAX_SPANS")
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok())
            .unwrap_or(MAX_SPANS)
    })
}

/// A typed key/value payload attached to spans and events.
#[derive(Debug, Clone, PartialEq)]
pub enum FieldValue {
    /// Signed integer.
    I64(i64),
    /// Unsigned integer (counters, sizes, epochs).
    U64(u64),
    /// Float (losses, rates, norms).
    F64(f64),
    /// Boolean flag.
    Bool(bool),
    /// Static string (reasons, labels).
    Str(&'static str),
    /// Owned string (rare: dynamic labels).
    Owned(String),
}

impl From<i64> for FieldValue {
    fn from(v: i64) -> Self {
        FieldValue::I64(v)
    }
}
impl From<u64> for FieldValue {
    fn from(v: u64) -> Self {
        FieldValue::U64(v)
    }
}
impl From<usize> for FieldValue {
    fn from(v: usize) -> Self {
        FieldValue::U64(v as u64)
    }
}
impl From<f64> for FieldValue {
    fn from(v: f64) -> Self {
        FieldValue::F64(v)
    }
}
impl From<f32> for FieldValue {
    fn from(v: f32) -> Self {
        FieldValue::F64(v as f64)
    }
}
impl From<bool> for FieldValue {
    fn from(v: bool) -> Self {
        FieldValue::Bool(v)
    }
}
impl From<&'static str> for FieldValue {
    fn from(v: &'static str) -> Self {
        FieldValue::Str(v)
    }
}
impl From<String> for FieldValue {
    fn from(v: String) -> Self {
        FieldValue::Owned(v)
    }
}

impl FieldValue {
    /// Render for the stderr sink (`k=v` right-hand side).
    pub fn render(&self) -> String {
        match self {
            FieldValue::I64(v) => v.to_string(),
            FieldValue::U64(v) => v.to_string(),
            FieldValue::F64(v) => format!("{v:.6}"),
            FieldValue::Bool(v) => v.to_string(),
            FieldValue::Str(v) => (*v).to_string(),
            FieldValue::Owned(v) => v.clone(),
        }
    }
}

/// A completed span as stored by the collector.
#[derive(Debug, Clone)]
pub struct SpanRec {
    /// Creation-order id (1-based; 0 is never issued).
    pub id: u64,
    /// Enclosing span on the same thread, if any.
    pub parent: Option<u64>,
    /// Static span name (dot-separated, e.g. `tensor.matmul`).
    pub name: &'static str,
    /// Nanoseconds since the process trace epoch at span entry.
    pub start_ns: u64,
    /// Monotonic span duration in nanoseconds.
    pub dur_ns: u64,
    /// Key/value payload recorded via [`Span::field`].
    pub fields: Vec<(&'static str, FieldValue)>,
}

/// A point event as stored by the collector.
#[derive(Debug, Clone)]
pub struct EventRec {
    /// Span open on the emitting thread when the event fired, if any.
    pub parent: Option<u64>,
    /// Static event name (e.g. `epoch`, `early_stop`).
    pub name: &'static str,
    /// Nanoseconds since the process trace epoch.
    pub at_ns: u64,
    /// Key/value payload.
    pub fields: Vec<(&'static str, FieldValue)>,
}

#[derive(Default)]
struct Collector {
    spans: Vec<SpanRec>,
    events: Vec<EventRec>,
    dropped_spans: u64,
    dropped_events: u64,
}

fn collector() -> &'static Mutex<Collector> {
    static C: OnceLock<Mutex<Collector>> = OnceLock::new();
    C.get_or_init(|| Mutex::new(Collector::default()))
}

/// Monotonic nanoseconds since the first trace call in this process.
fn now_ns() -> u64 {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    EPOCH.get_or_init(Instant::now).elapsed().as_nanos() as u64
}

static NEXT_ID: AtomicU64 = AtomicU64::new(1);

thread_local! {
    /// Ids of the spans currently open on this thread, innermost last.
    static STACK: RefCell<Vec<u64>> = const { RefCell::new(Vec::new()) };
}

/// Mutable field bag handed to [`event`] closures.
#[derive(Default)]
pub struct Fields(pub(crate) Vec<(&'static str, FieldValue)>);

impl Fields {
    /// Attach `key = value`.
    pub fn set(&mut self, key: &'static str, value: impl Into<FieldValue>) {
        self.0.push((key, value.into()));
    }
}

/// RAII span guard. Created by [`span`]; files its record on drop.
///
/// When tracing is disabled the guard is inert: no id is assigned, no
/// clock is read, and **nothing is allocated** (`Vec::new` is
/// allocation-free) — the cost is one atomic load in [`span`] plus a
/// no-op drop.
pub struct Span {
    id: u64,
    name: &'static str,
    parent: Option<u64>,
    start_ns: u64,
    start: Option<Instant>,
    fields: Vec<(&'static str, FieldValue)>,
}

impl Span {
    #[inline]
    fn disabled(name: &'static str) -> Span {
        Span { id: 0, name, parent: None, start_ns: 0, start: None, fields: Vec::new() }
    }

    /// True when this guard is actually recording.
    #[inline]
    pub fn active(&self) -> bool {
        self.start.is_some()
    }

    /// Attach `key = value` to the span record (no-op when inert).
    pub fn field(&mut self, key: &'static str, value: impl Into<FieldValue>) {
        if self.active() {
            self.fields.push((key, value.into()));
        }
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        let Some(start) = self.start else { return };
        let dur_ns = start.elapsed().as_nanos() as u64;
        STACK.with(|s| {
            let mut s = s.borrow_mut();
            if s.last() == Some(&self.id) {
                s.pop();
            }
        });
        let rec = SpanRec {
            id: self.id,
            parent: self.parent,
            name: self.name,
            start_ns: self.start_ns,
            dur_ns,
            fields: std::mem::take(&mut self.fields),
        };
        if gate::verbose() {
            let fields: String = rec
                .fields
                .iter()
                .map(|(k, v)| format!(" {k}={}", v.render()))
                .collect();
            eprintln!("[ts3 span] {} {:.3}ms{}", rec.name, dur_ns as f64 / 1e6, fields);
        }
        // ts3-lint: allow(no-unwrap-in-lib) collector mutex poisoning means a tracing thread panicked; trace state is unrecoverable
        let mut c = collector().lock().unwrap();
        if c.spans.len() < max_spans() {
            c.spans.push(rec);
        } else {
            c.dropped_spans += 1;
        }
    }
}

/// Open a span named `name` on the current thread. The returned guard
/// records entry/exit with monotonic timing; bind it (`let _s = ...`) so
/// it stays open for the intended scope.
#[inline]
pub fn span(name: &'static str) -> Span {
    if !gate::enabled() {
        return Span::disabled(name);
    }
    let id = NEXT_ID.fetch_add(1, Ordering::Relaxed);
    let parent = STACK.with(|s| {
        let mut s = s.borrow_mut();
        let parent = s.last().copied();
        s.push(id);
        parent
    });
    Span { id, name, parent, start_ns: now_ns(), start: Some(Instant::now()), fields: Vec::new() }
}

/// Record a point event named `name`. The closure populating the field
/// bag only runs when tracing is enabled, so call sites pay nothing on
/// the disabled path — not even argument formatting.
pub fn event(name: &'static str, fill: impl FnOnce(&mut Fields)) {
    if !gate::enabled() {
        return;
    }
    let mut fields = Fields::default();
    fill(&mut fields);
    let rec = EventRec {
        parent: STACK.with(|s| s.borrow().last().copied()),
        name,
        at_ns: now_ns(),
        fields: fields.0,
    };
    if gate::verbose() {
        let fields: String =
            rec.fields.iter().map(|(k, v)| format!(" {k}={}", v.render())).collect();
        eprintln!("[ts3 event] {}{}", rec.name, fields);
    }
    // ts3-lint: allow(no-unwrap-in-lib) collector mutex poisoning means a tracing thread panicked; trace state is unrecoverable
    let mut c = collector().lock().unwrap();
    if c.events.len() < MAX_EVENTS {
        c.events.push(rec);
    } else {
        c.dropped_events += 1;
    }
}

/// Clone the collector contents: `(spans, events, dropped)`. Spans and
/// events are in record order (span record order = completion order;
/// ids give creation order). The third element is the *total* dropped
/// count; [`dropped_counts`] splits it by record kind.
pub fn snapshot_records() -> (Vec<SpanRec>, Vec<EventRec>, u64) {
    // ts3-lint: allow(no-unwrap-in-lib) collector mutex poisoning means a tracing thread panicked; trace state is unrecoverable
    let c = collector().lock().unwrap();
    (c.spans.clone(), c.events.clone(), c.dropped_spans + c.dropped_events)
}

/// Records rejected by the capacity caps, split as
/// `(dropped_spans, dropped_events)`. A non-zero span count means the
/// trace is truncated and `TS3_TRACE_MAX_SPANS` (or the work volume)
/// should be revisited — `trace_check` warns on it.
pub fn dropped_counts() -> (u64, u64) {
    // ts3-lint: allow(no-unwrap-in-lib) collector mutex poisoning means a tracing thread panicked; trace state is unrecoverable
    let c = collector().lock().unwrap();
    (c.dropped_spans, c.dropped_events)
}

/// Clear all recorded spans and events.
pub fn reset_trace() {
    // ts3-lint: allow(no-unwrap-in-lib) collector mutex poisoning means a tracing thread panicked; trace state is unrecoverable
    let mut c = collector().lock().unwrap();
    c.spans.clear();
    c.events.clear();
    c.dropped_spans = 0;
    c.dropped_events = 0;
}

/// Canonical description of the span tree *shape*: names, nesting and
/// event names in creation order — no ids, durations or field values.
/// Two runs doing the same work produce the same string regardless of
/// thread count or machine speed, which is what the determinism test
/// compares.
///
/// Grammar: `span := name '[' events ']'? '(' children ')'?`, siblings
/// comma-separated; orphan events (no open span) are appended at the end
/// after `;`.
pub fn tree_shape() -> String {
    let (mut spans, events, _) = snapshot_records();
    spans.sort_by_key(|s| s.id);
    let mut out = String::new();
    let roots: Vec<usize> =
        (0..spans.len()).filter(|&i| parent_index(&spans, i).is_none()).collect();
    for (n, &i) in roots.iter().enumerate() {
        if n > 0 {
            out.push(',');
        }
        write_shape(&spans, &events, i, &mut out);
    }
    let orphans: Vec<&EventRec> = events.iter().filter(|e| e.parent.is_none()).collect();
    if !orphans.is_empty() {
        out.push(';');
        for (n, e) in orphans.iter().enumerate() {
            if n > 0 {
                out.push(',');
            }
            out.push_str(e.name);
        }
    }
    out
}

fn parent_index(spans: &[SpanRec], i: usize) -> Option<usize> {
    spans[i].parent.and_then(|p| spans.iter().position(|s| s.id == p))
}

fn write_shape(spans: &[SpanRec], events: &[EventRec], i: usize, out: &mut String) {
    out.push_str(spans[i].name);
    let evs: Vec<&EventRec> =
        events.iter().filter(|e| e.parent == Some(spans[i].id)).collect();
    if !evs.is_empty() {
        out.push('[');
        for (n, e) in evs.iter().enumerate() {
            if n > 0 {
                out.push(',');
            }
            out.push_str(e.name);
        }
        out.push(']');
    }
    let children: Vec<usize> =
        (0..spans.len()).filter(|&c| parent_index(spans, c) == Some(i)).collect();
    if !children.is_empty() {
        out.push('(');
        for (n, &c) in children.iter().enumerate() {
            if n > 0 {
                out.push(',');
            }
            write_shape(spans, events, c, out);
        }
        out.push(')');
    }
}

#[cfg(test)]
pub(crate) fn test_lock() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_span_is_inert() {
        let _g = test_lock();
        crate::set_level(0);
        reset_trace();
        {
            let mut s = span("never");
            assert!(!s.active());
            s.field("k", 1u64);
            event("never_event", |f| f.set("x", 1u64));
        }
        let (spans, events, dropped) = snapshot_records();
        assert!(spans.is_empty() && events.is_empty() && dropped == 0);
    }

    #[test]
    fn spans_nest_and_events_attach() {
        let _g = test_lock();
        crate::set_level(1);
        reset_trace();
        {
            let mut outer = span("outer");
            outer.field("m", 3u64);
            {
                let _inner = span("inner");
                event("tick", |f| f.set("i", 0u64));
            }
            event("done", |_| {});
        }
        event("orphan", |_| {});
        assert_eq!(tree_shape(), "outer[done](inner[tick]);orphan");
        let (spans, _, _) = snapshot_records();
        // Completion order: inner closes first.
        assert_eq!(spans[0].name, "inner");
        assert_eq!(spans[1].name, "outer");
        assert_eq!(spans[1].fields, vec![("m", FieldValue::U64(3))]);
        assert!(spans[0].parent == Some(spans[1].id));
        crate::set_level(0);
        reset_trace();
    }

    #[test]
    fn field_value_conversions_render() {
        assert_eq!(FieldValue::from(3usize).render(), "3");
        assert_eq!(FieldValue::from(-2i64).render(), "-2");
        assert_eq!(FieldValue::from(true).render(), "true");
        assert_eq!(FieldValue::from("why").render(), "why");
        assert_eq!(FieldValue::from(1.5f32), FieldValue::F64(1.5));
    }
}
