//! Prometheus-style text exposition of the metrics registries.
//!
//! [`render`] merges the plain ([`crate::metrics`]) and labeled
//! ([`crate::labels`]) registries into one text document in the
//! Prometheus exposition format — `# TYPE` headers, `name{labels}
//! value` samples, cumulative `_bucket{le="..."}` histogram lines —
//! so any standard scraper/grapher can ingest a ts3 dump without a
//! converter.
//!
//! Ordering is **deterministic by construction**: families sort by
//! sanitized name, series within a family by their canonical label
//! set (already sorted by key), buckets by ladder position. Two runs
//! that record the same values render byte-identical text — that is a
//! verify.sh gate, so treat any ordering change here as
//! schema-breaking.
//!
//! Metric names arrive dot-separated (`serve.queue_depth`) and leave
//! underscore-separated (`serve_queue_depth`) per the exposition
//! grammar; label values are escaped (`\`, `"`, newline).

use crate::labels::{labeled_snapshot, HistStats, LabelSet};
use crate::metrics::{metrics_snapshot, HIST_BOUNDS};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Dots and other non-grammar characters become underscores.
fn sanitize(name: &str) -> String {
    name.chars()
        .map(|c| if c.is_ascii_alphanumeric() || c == '_' || c == ':' { c } else { '_' })
        .collect()
}

fn escape_label(v: &str) -> String {
    v.replace('\\', "\\\\").replace('"', "\\\"").replace('\n', "\\n")
}

/// `{k="v",k2="v2"}` for a canonical label set; empty string for none.
/// `extra` appends one more pair (used for `le`/`quantile`).
fn label_block(labels: &LabelSet, extra: Option<(&str, &str)>) -> String {
    let mut pairs: Vec<String> =
        labels.iter().map(|(k, v)| format!("{k}=\"{}\"", escape_label(v))).collect();
    if let Some((k, v)) = extra {
        pairs.push(format!("{k}=\"{v}\""));
    }
    if pairs.is_empty() {
        String::new()
    } else {
        format!("{{{}}}", pairs.join(","))
    }
}

/// Prometheus float rendering: shortest round-trip, `+Inf` for the
/// unbounded bucket.
fn num(v: f64) -> String {
    if v == f64::INFINITY {
        "+Inf".to_string()
    } else {
        format!("{v}")
    }
}

/// Cumulative `_bucket` lines + `_sum`/`_count` for one histogram
/// series on the shared ladder. Empty buckets are skipped (except the
/// mandatory `+Inf`), keeping the document proportional to data.
fn write_hist(
    out: &mut String,
    name: &str,
    labels: &LabelSet,
    buckets: &[u64],
    count: u64,
    sum: f64,
) {
    let mut cum = 0u64;
    for (i, &c) in buckets.iter().enumerate() {
        cum += c;
        if c == 0 {
            continue;
        }
        let le = if i < HIST_BOUNDS.len() { num(HIST_BOUNDS[i]) } else { "+Inf".to_string() };
        let _ = writeln!(out, "{name}_bucket{} {cum}", label_block(labels, Some(("le", &le))));
    }
    let _ = writeln!(out, "{name}_bucket{} {count}", label_block(labels, Some(("le", "+Inf"))));
    let _ = writeln!(out, "{name}_sum{} {}", label_block(labels, None), num(sum));
    let _ = writeln!(out, "{name}_count{} {count}", label_block(labels, None));
}

/// Render both registries as one Prometheus exposition document.
///
/// Families appear sorted by sanitized name; a plain (unlabeled)
/// series and labeled series of the same name share one family, the
/// unlabeled sample first. Labeled histograms additionally emit
/// `{quantile="0.5|0.9|0.99"}` summary lines from their exact (or
/// bucket-bound, see [`HistStats::exact`]) percentiles.
pub fn render() -> String {
    let plain = metrics_snapshot();
    let labeled = labeled_snapshot();

    // name -> (unlabeled value, labeled series) per family kind.
    let mut counters: BTreeMap<String, (Option<u64>, Vec<(LabelSet, u64)>)> = BTreeMap::new();
    for (name, v) in &plain.counters {
        counters.entry(sanitize(name)).or_default().0 = Some(*v);
    }
    for ((name, labels), v) in &labeled.counters {
        counters.entry(sanitize(name)).or_default().1.push((labels.clone(), *v));
    }
    let mut gauges: BTreeMap<String, (Option<f64>, Vec<(LabelSet, f64)>)> = BTreeMap::new();
    for (name, v) in &plain.gauges {
        gauges.entry(sanitize(name)).or_default().0 = Some(*v);
    }
    for ((name, labels), v) in &labeled.gauges {
        gauges.entry(sanitize(name)).or_default().1.push((labels.clone(), *v));
    }
    type HistFamily = (Option<crate::metrics::HistSnapshot>, Vec<(LabelSet, HistStats)>);
    let mut hists: BTreeMap<String, HistFamily> = BTreeMap::new();
    for (name, h) in &plain.hists {
        hists.entry(sanitize(name)).or_default().0 = Some(h.clone());
    }
    for ((name, labels), h) in &labeled.hists {
        hists.entry(sanitize(name)).or_default().1.push((labels.clone(), h.clone()));
    }

    let mut out = String::new();
    for (name, (plain_v, series)) in &counters {
        let _ = writeln!(out, "# TYPE {name} counter");
        if let Some(v) = plain_v {
            let _ = writeln!(out, "{name} {v}");
        }
        for (labels, v) in series {
            let _ = writeln!(out, "{name}{} {v}", label_block(labels, None));
        }
    }
    for (name, (plain_v, series)) in &gauges {
        let _ = writeln!(out, "# TYPE {name} gauge");
        if let Some(v) = plain_v {
            let _ = writeln!(out, "{name} {}", num(*v));
        }
        for (labels, v) in series {
            let _ = writeln!(out, "{name}{} {}", label_block(labels, None), num(*v));
        }
    }
    for (name, (plain_h, series)) in &hists {
        let _ = writeln!(out, "# TYPE {name} histogram");
        if let Some(h) = plain_h {
            write_hist(&mut out, name, &Vec::new(), &h.buckets, h.count, h.sum);
        }
        for (labels, h) in series {
            write_hist(&mut out, name, labels, &h.buckets, h.count, h.sum);
            for (q, v) in [("0.5", h.p50), ("0.9", h.p90), ("0.99", h.p99)] {
                let _ = writeln!(
                    out,
                    "{name}{} {}",
                    label_block(labels, Some(("quantile", q))),
                    num(v)
                );
            }
        }
    }
    if labeled.dropped_series > 0 {
        let _ = writeln!(out, "# TYPE ts3_obs_dropped_series counter");
        let _ = writeln!(out, "ts3_obs_dropped_series {}", labeled.dropped_series);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::test_lock;

    #[test]
    fn exposition_is_deterministic_and_merges_families() {
        let _g = test_lock();
        crate::set_level(1);
        crate::reset();
        crate::counter_add("serve.requests", 7);
        crate::labels::counter_add_l("serve.requests", &[("tenant", "1")], 4);
        crate::labels::counter_add_l("serve.requests", &[("tenant", "0")], 3);
        crate::gauge_set("serve.queue_depth", 2.0);
        crate::observe("serve.coalesce_hold", 1.0);
        crate::labels::observe_l("serve.latency_ticks", &[("tenant", "0")], 2.0);
        crate::labels::observe_l("serve.latency_ticks", &[("tenant", "0")], 4.0);
        let a = render();
        let b = render();
        assert_eq!(a, b, "same state must render byte-identical");
        assert!(a.contains("# TYPE serve_requests counter\nserve_requests 7\n"));
        assert!(a.contains("serve_requests{tenant=\"0\"} 3\n"));
        assert!(a.contains("serve_requests{tenant=\"1\"} 4\n"));
        let t0 = a.find("tenant=\"0\"").unwrap();
        let t1 = a.find("tenant=\"1\"").unwrap();
        assert!(t0 < t1, "series sorted by label set");
        assert!(a.contains("serve_queue_depth 2\n"));
        assert!(a.contains("serve_coalesce_hold_bucket{le=\"+Inf\"} 1\n"));
        assert!(a.contains("serve_latency_ticks_bucket{tenant=\"0\",le=\"2\"} 1\n"));
        // Nearest-rank over [2, 4]: round(0.5) rounds up, so p50 = 4.
        assert!(a.contains("serve_latency_ticks{tenant=\"0\",quantile=\"0.5\"} 4\n"));
        assert!(a.contains("serve_latency_ticks{tenant=\"0\",quantile=\"0.99\"} 4\n"));
        assert!(a.contains("serve_latency_ticks_count{tenant=\"0\"} 2\n"));
        crate::set_level(0);
        crate::reset();
    }

    #[test]
    fn label_values_are_escaped() {
        let _g = test_lock();
        crate::set_level(1);
        crate::reset();
        crate::labels::counter_add_l("odd", &[("k", "a\"b\\c")], 1);
        let text = render();
        assert!(text.contains("odd{k=\"a\\\"b\\\\c\"} 1\n"));
        crate::set_level(0);
        crate::reset();
    }
}
